// Dynamic demonstrates the Table 2 scenario: a dynamic DSE with a budget of
// only 100 iterations, the regime where the paper argues explainability
// matters most (e.g. deploying accelerator overlays on FPGAs where
// constraints arrive just before deployment). It races Explainable-DSE
// against random search and HyperMapper 2.0 on MobileNetV2.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/opt"
	"xdse/internal/search"
	"xdse/internal/workload"
)

func main() {
	const budget = 100
	model := workload.MobileNetV2()
	fmt.Printf("dynamic DSE: %s, %d-iteration budget, constraints area<75mm2 power<4W latency<%.0fms\n\n",
		model.Name, budget, model.MaxLatencyMs)

	run := func(name string, mk func(space *arch.Space, cons eval.Constraints) search.Optimizer) {
		space := arch.EdgeSpace()
		cons := eval.EdgeConstraints()
		ev := eval.New(eval.Config{
			Space:       space,
			Models:      []*workload.Model{model},
			Constraints: cons,
			Mode:        eval.FixedDataflow,
			Seed:        1,
		})
		start := time.Now()
		tr := mk(space, cons).Run(ev.Problem(budget), rand.New(rand.NewSource(7)))
		elapsed := time.Since(start)

		best := "no feasible design"
		if tr.Best != nil {
			best = fmt.Sprintf("%.2f ms", tr.BestObjective())
		}
		fmt.Printf("%-22s best %-18s %3d designs  %6.0f%% feasible acquisitions  %v\n",
			name, best, tr.Evaluations, tr.FeasibleFraction()*100, elapsed.Round(time.Millisecond))
	}

	run("RandomSearch", func(*arch.Space, eval.Constraints) search.Optimizer {
		return opt.Random{}
	})
	run("HyperMapper2.0", func(*arch.Space, eval.Constraints) search.Optimizer {
		return opt.HyperMapper{}
	})
	run("ReinforcementLearning", func(*arch.Space, eval.Constraints) search.Optimizer {
		return opt.RL{}
	})
	run("ExplainableDSE", func(space *arch.Space, cons eval.Constraints) search.Optimizer {
		return dse.New(accelmodel.New(space, cons))
	})

	fmt.Println("\n(Explainable-DSE typically lands a feasible, low-latency design within")
	fmt.Println(" tens of iterations while the black-box techniques are still sampling.)")
}
