// Codesign demonstrates the tightly coupled hardware/mapping co-exploration
// of §4.8 on the BERT workload: the DSE optimizes per-layer mappings for
// every hardware candidate (dMazeRunner-style pruned search) and acquires
// hardware that mitigates the bottlenecks of those software-optimized
// executions. The same exploration with the fixed output-stationary
// dataflow is run for comparison.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

func explore(model *workload.Model, mode eval.MapperMode, budget int) (*eval.Evaluator, *eval.Result, int, time.Duration) {
	space := arch.EdgeSpace()
	cons := eval.EdgeConstraints()
	ev := eval.New(eval.Config{
		Space:       space,
		Models:      []*workload.Model{model},
		Constraints: cons,
		Mode:        mode,
		MapTrials:   500,
		Seed:        1,
	})
	ex := dse.New(accelmodel.New(space, cons))
	start := time.Now()
	tr := ex.Run(ev.Problem(budget), rand.New(rand.NewSource(1)))
	if tr.Best == nil {
		return ev, nil, tr.Evaluations, time.Since(start)
	}
	return ev, ev.Evaluate(tr.Best), tr.Evaluations, time.Since(start)
}

func main() {
	model := workload.BERT()
	fmt.Printf("codesign exploration for %s (%d operators, %d unique GEMM shapes)\n\n",
		model.Name, model.TotalLayers(), model.UniqueLayers())

	_, fixed, fixedIters, fixedTime := explore(model, eval.FixedDataflow, 150)
	_, co, coIters, coTime := explore(model, eval.PrunedMappings, 150)

	report := func(label string, r *eval.Result, iters int, d time.Duration) {
		fmt.Printf("-- %s (%d designs, %v) --\n", label, iters, d.Round(time.Millisecond))
		if r == nil {
			fmt.Println("   no feasible design found")
			return
		}
		fmt.Printf("   design: %v\n", r.Design)
		fmt.Printf("   latency %.2f ms | area %.1f mm^2 | power %.2f W | energy %.1f mJ\n",
			r.LatencyMs, r.AreaMM2, r.PowerW, r.Models[0].EnergyMJ)
	}
	report("fixed output-stationary dataflow", fixed, fixedIters, fixedTime)
	fmt.Println()
	report("tightly-coupled codesign", co, coIters, coTime)

	if co != nil {
		fmt.Println("\nper-layer codesigned mappings (spatial split / stationarity / bottleneck):")
		for _, le := range co.Models[0].Layers {
			m := le.Mapping
			factor := "T_comp"
			if op, tn := le.Perf.MaxTNoC(); tn > le.Perf.TComp && tn > le.Perf.TDMA {
				factor = "T_noc_" + op.String()
			} else if le.Perf.TDMA > le.Perf.TComp {
				factor = "T_dma"
			}
			fmt.Printf("   %-14s K/C/Y/X spatial %d/%d/%d/%d, dram-stationary %v, noc-stationary %v -> %s\n",
				le.Layer.Name,
				m.Factor(mapping.DimK, mapping.LvlSpatial),
				m.Factor(mapping.DimC, mapping.LvlSpatial),
				m.Factor(mapping.DimY, mapping.LvlSpatial),
				m.Factor(mapping.DimX, mapping.LvlSpatial),
				m.DRAMStationary, m.NoCStationary, factor)
		}
	}

	if fixed != nil && co != nil {
		fmt.Printf("\ncodesign vs fixed dataflow: %.2fx latency\n", fixed.LatencyMs/co.LatencyMs)
	}
}
