// Quickstart walks through the core workflow of the library, mirroring the
// paper's Fig. 6 example: evaluate a ResNet-18 edge accelerator design,
// render the bottleneck tree of its critical layer, and let Explainable-DSE
// optimize the design while printing its per-attempt reasoning.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/bottleneck"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/workload"
)

func main() {
	// 1. The Table 1 design space and constraints of an edge accelerator.
	space := arch.EdgeSpace()
	cons := eval.EdgeConstraints()
	model := workload.ResNet18()
	fmt.Printf("design space: %s candidate designs\n", space.Size())
	fmt.Printf("workload: %s (%d operators, %d unique shapes, %.2f GMACs)\n\n",
		model.Name, model.TotalLayers(), model.UniqueLayers(), float64(model.TotalMACs())/1e9)

	// 2. Evaluate a mid-range design with the analytical cost model.
	ev := eval.New(eval.Config{
		Space:       space,
		Models:      []*workload.Model{model},
		Constraints: cons,
		Mode:        eval.FixedDataflow,
		Seed:        1,
	})
	pt := space.Initial()
	pt[arch.PPEs] = 2 // 256 PEs
	pt[arch.PL1] = 4  // 128 B register files
	pt[arch.PL2] = 3  // 512 KB scratchpad
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PVirt0+op] = 2
	}
	r := ev.Evaluate(pt)
	fmt.Printf("evaluated %v\n", r.Design)
	fmt.Printf("  latency %.2f ms | area %.1f mm^2 | power %.2f W | feasible=%v\n\n",
		r.LatencyMs, r.AreaMM2, r.PowerW, r.Feasible)

	// 3. The bottleneck model (Fig. 8): explicitly analyzable, unlike a
	// single-number cost model.
	worst := 0
	for i, le := range r.Models[0].Layers {
		if le.TotalCycles > r.Models[0].Layers[worst].TotalCycles {
			worst = i
		}
	}
	le := r.Models[0].Layers[worst]
	fmt.Printf("bottleneck tree of the costliest layer (%s):\n", le.Layer.Name)
	fmt.Print(bottleneck.Render(accelmodel.LatencyTree(le, r.Design)))
	fmt.Println()

	// 4. Let Explainable-DSE drive: every acquisition is explained.
	fmt.Println("--- Explainable-DSE exploration (per-attempt reasoning below) ---")
	explorer := dse.New(accelmodel.New(space, cons))
	explorer.Opts.Log = os.Stdout
	trace := explorer.Run(ev.Problem(150), rand.New(rand.NewSource(1)))

	fmt.Printf("\nconverged after %d design evaluations\n", trace.Evaluations)
	if trace.Best == nil {
		fmt.Println("no feasible design found")
		return
	}
	best := ev.Evaluate(trace.Best)
	fmt.Printf("best design: %v\n", best.Design)
	fmt.Printf("  latency %.2f ms (ceiling %.0f ms) | area %.1f mm^2 | power %.2f W\n",
		best.LatencyMs, model.MaxLatencyMs, best.AreaMM2, best.PowerW)
}
