// Customdomain demonstrates the decoupling the paper's API section (§4.3)
// promises: the Explainable-DSE engine is domain-independent, and a designer
// can express a bottleneck model for an entirely different system and reuse
// the same search mechanism.
//
// The domain here is a three-stage video-analytics pipeline (decode ->
// detect -> encode) running on a shared server: the design parameters are
// the worker count of each stage and the inter-stage queue depth; the cost
// is end-to-end frame latency, bounded by the slowest stage (a max-rooted
// bottleneck tree) plus queueing delay; the constraint is a core budget.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"xdse/internal/arch"
	"xdse/internal/bottleneck"
	"xdse/internal/dse"
	"xdse/internal/search"
)

// Stage work per frame in milliseconds on a single worker.
var stageWorkMs = [3]float64{8, 45, 12}

var stageNames = [3]string{"decode", "detect", "encode"}

const (
	coreBudget = 24   // total workers across stages
	latencySLO = 40.0 // ms per frame
)

// pipelineSpace builds the design space: three worker counts and a queue
// depth. The arch.Space machinery is domain-agnostic: parameters are just
// named ordered value lists.
func pipelineSpace() *arch.Space {
	workers := []int{1, 2, 3, 4, 6, 8, 12, 16}
	s := &arch.Space{FreqMHz: 1}
	for i := 0; i < 3; i++ {
		s.Params = append(s.Params, arch.Param{Name: stageNames[i] + "_workers", Values: workers})
	}
	s.Params = append(s.Params, arch.Param{Name: "queue_depth", Values: []int{1, 2, 4, 8, 16, 32}})
	return s
}

// pipelineEval is the domain evaluation payload.
type pipelineEval struct {
	workers [3]int
	queue   int
	stageMs [3]float64
	queueMs float64
	cores   int
}

func evaluatePipeline(space *arch.Space, pt arch.Point) search.Costs {
	ev := &pipelineEval{queue: space.Params[3].Values[pt[3]]}
	for i := 0; i < 3; i++ {
		ev.workers[i] = space.Params[i].Values[pt[i]]
		ev.cores += ev.workers[i]
		ev.stageMs[i] = stageWorkMs[i] / float64(ev.workers[i])
	}
	// Shallow queues stall the pipeline between stages.
	ev.queueMs = 6.0 / float64(ev.queue)

	slowest := math.Max(ev.stageMs[0], math.Max(ev.stageMs[1], ev.stageMs[2]))
	latency := slowest + ev.queueMs
	feasible := ev.cores <= coreBudget && latency <= latencySLO
	return search.Costs{
		Objective:      latency,
		Feasible:       feasible,
		MeetsAreaPower: ev.cores <= coreBudget,
		BudgetUtil:     (float64(ev.cores)/coreBudget + latency/latencySLO) / 2,
		Violations:     boolToInt(ev.cores > coreBudget) + boolToInt(latency > latencySLO),
		Raw:            ev,
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// pipelineModel implements dse.DomainModel for the pipeline: this is all
// the domain knowledge the engine needs (the Fig. 7 artifacts: a tree, a
// parameter dictionary, and mitigation subroutines).
type pipelineModel struct {
	space *arch.Space
}

// tree builds the populated bottleneck tree for one evaluation.
func (m *pipelineModel) tree(ev *pipelineEval) *bottleneck.Node {
	stages := make([]*bottleneck.Node, 3)
	for i := 0; i < 3; i++ {
		stages[i] = bottleneck.NewLeaf("T_"+stageNames[i], ev.stageMs[i]).
			WithParams(stageNames[i] + "_workers")
	}
	return bottleneck.Add("frame_latency",
		bottleneck.Max("T_slowest_stage", stages...),
		bottleneck.NewLeaf("T_queueing", ev.queueMs).WithParams("queue_depth"),
	)
}

func (m *pipelineModel) SubCosts(raw any) []float64 {
	ev := raw.(*pipelineEval)
	slowest := math.Max(ev.stageMs[0], math.Max(ev.stageMs[1], ev.stageMs[2]))
	return []float64{slowest + ev.queueMs}
}

func (m *pipelineModel) MitigateObjective(raw any, sub, k int) ([]search.Prediction, string) {
	ev := raw.(*pipelineEval)
	root := m.tree(ev)
	var preds []search.Prediction
	for _, bn := range bottleneck.Analyze(root, k) {
		s := bn.Scaling
		if s <= 1.001 {
			s = 2
		}
		for _, param := range bn.Params {
			idx := paramIndex(m.space, param)
			if idx < 0 {
				continue
			}
			cur := m.space.Params[idx].Values[0] // resolved below from ev
			switch {
			case param == "queue_depth":
				cur = ev.queue
			default:
				for i := 0; i < 3; i++ {
					if param == stageNames[i]+"_workers" {
						cur = ev.workers[i]
					}
				}
			}
			preds = append(preds, search.Prediction{
				Param: idx,
				Value: int(math.Ceil(s * float64(cur))),
				Why:   fmt.Sprintf("%s bound: scale %s by %.2fx", bn.Factor.Name, param, s),
			})
		}
	}
	return preds, bottleneck.Render(root)
}

func (m *pipelineModel) MitigateConstraints(raw any) ([]search.Prediction, string) {
	ev := raw.(*pipelineEval)
	if ev.cores <= coreBudget {
		return nil, ""
	}
	// Shrink the stage with the most idle capacity (lowest time).
	idle := 0
	for i := 1; i < 3; i++ {
		if ev.stageMs[i] < ev.stageMs[idle] {
			idle = i
		}
	}
	return []search.Prediction{{
		Param:  idle,
		Value:  ev.workers[idle] / 2,
		Reduce: true,
		Why:    fmt.Sprintf("core budget exceeded (%d/%d): halve %s workers", ev.cores, coreBudget, stageNames[idle]),
	}}, "core budget bottleneck"
}

func paramIndex(s *arch.Space, name string) int {
	for i, p := range s.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

func main() {
	space := pipelineSpace()
	model := &pipelineModel{space: space}
	problem := &search.Problem{
		Space:  space,
		Budget: 40,
		Evaluate: func(pt arch.Point) search.Costs {
			return evaluatePipeline(space, pt)
		},
	}

	fmt.Println("Explainable-DSE on a video-analytics pipeline (custom domain):")
	fmt.Printf("  stages decode/detect/encode, %d-core budget, %.0f ms SLO\n\n", coreBudget, latencySLO)

	explorer := dse.New(model)
	explorer.Opts.Log = os.Stdout
	tr := explorer.Run(problem, rand.New(rand.NewSource(1)))

	if tr.Best == nil {
		fmt.Println("\nno feasible configuration found")
		return
	}
	ev := evaluatePipeline(space, tr.Best).Raw.(*pipelineEval)
	fmt.Printf("\nbest configuration after %d evaluations:\n", tr.Evaluations)
	for i := 0; i < 3; i++ {
		fmt.Printf("  %-6s: %2d workers (%.1f ms/frame)\n", stageNames[i], ev.workers[i], ev.stageMs[i])
	}
	fmt.Printf("  queue : %d deep (%.1f ms stall)\n", ev.queue, ev.queueMs)
	fmt.Printf("  frame latency %.2f ms on %d/%d cores\n", tr.BestObjective(), ev.cores, coreBudget)
}
