package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedDeclarationsAreDocumented enforces the documentation standard:
// every exported type, function, method, and var/const group in the library
// packages carries a doc comment.
func TestExportedDeclarationsAreDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					missing = append(missing, pos(fset, dd.Pos())+" func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && dd.Doc == nil && sp.Doc == nil {
							missing = append(missing, pos(fset, sp.Pos())+" type "+sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && dd.Doc == nil && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, pos(fset, name.Pos())+" value "+name.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported declarations lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + itoa(position.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
