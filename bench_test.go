// The root benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index) as testing.B
// benchmarks, plus the ablation benches for the design decisions DESIGN.md
// calls out. Budgets are scaled down so a full -bench=. pass completes in
// minutes; XDSE_FULL=1 restores paper scale.
//
// Reported custom metrics: best feasible latency (ms), designs evaluated,
// and feasible-acquisition fractions, so `go test -bench` output captures
// the shape of each result, not just the wall time of regenerating it.
package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/exp"
	"xdse/internal/mapping"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// benchConfig is the reduced-budget configuration used by all benches.
func benchConfig() exp.Config {
	cfg := exp.FromEnv()
	if cfg.Budget == 300 { // reduced mode: shrink further for bench loops
		cfg.Budget = 150
		cfg.CodesignBudget = 50
		cfg.MapTrials = 200
	}
	cfg.Out = io.Discard
	return cfg
}

// reportTrace publishes trace metrics on the bench.
func reportRun(b *testing.B, r exp.Run) {
	b.Helper()
	if r.Trace.Best != nil {
		b.ReportMetric(r.Trace.BestObjective(), "ms-latency")
	}
	b.ReportMetric(float64(r.Evaluations), "designs")
	b.ReportMetric(r.Trace.FeasibleFraction()*100, "%feasible")
}

// explainTech returns the named technique from the roster.
func technique(name string) exp.Technique {
	for _, t := range exp.AllTechniques() {
		if t.Name == name {
			return t
		}
	}
	panic("unknown technique " + name)
}

// BenchmarkFig3 regenerates Fig. 3 (efficiency/feasibility/agility of the
// EfficientNetB0 exploration) for the two headline techniques.
func BenchmarkFig3(b *testing.B) {
	cfg := benchConfig()
	for _, name := range []string{"HyperMapper2.0-FixDF", "ExplainableDSE-FixDF"} {
		b.Run(name, func(b *testing.B) {
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), cfg, technique(name), workload.EfficientNetB0(), cfg.Budget)
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkFig4 regenerates the toy two-parameter exploration of Fig. 4.
func BenchmarkFig4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		runs := exp.RunFig4(context.Background(), cfg)
		if i == b.N-1 && runs[1].Trace.Best != nil {
			b.ReportMetric(runs[1].Trace.BestObjective(), "ms-latency")
		}
	}
}

// BenchmarkFig9 regenerates one column of the Fig. 9 static exploration
// (ResNet18) across the technique roster classes.
func BenchmarkFig9(b *testing.B) {
	cfg := benchConfig()
	for _, name := range []string{
		"RandomSearch-FixDF", "HyperMapper2.0-FixDF", "ExplainableDSE-FixDF",
		"RandomSearch-Codesign", "ExplainableDSE-Codesign",
	} {
		b.Run(name, func(b *testing.B) {
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), cfg, technique(name), workload.ResNet18(), 0)
				if last.Evaluations == 0 {
					b.Fatal("no evaluations")
				}
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkFig10 measures the exploration wall time per technique (the bars
// of Fig. 10) — the bench time per op IS the figure's quantity.
func BenchmarkFig10(b *testing.B) {
	cfg := benchConfig()
	for _, name := range []string{"HyperMapper2.0-FixDF", "ExplainableDSE-FixDF"} {
		b.Run(name, func(b *testing.B) {
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), cfg, technique(name), workload.MobileNetV2(), 0)
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkFig11 regenerates the latency-over-iterations curves for the
// Transformer workload.
func BenchmarkFig11(b *testing.B) {
	cfg := benchConfig()
	for _, name := range []string{"RandomSearch-FixDF", "ExplainableDSE-FixDF"} {
		b.Run(name, func(b *testing.B) {
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), cfg, technique(name), workload.Transformer(), 0)
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkFig12 regenerates the feasibility-of-acquisitions analysis.
func BenchmarkFig12(b *testing.B) {
	cfg := benchConfig()
	for _, name := range []string{"ReinforcementLearning-FixDF", "ExplainableDSE-FixDF"} {
		b.Run(name, func(b *testing.B) {
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), cfg, technique(name), workload.ResNet50(), 0)
			}
			b.ReportMetric(last.Trace.AreaPowerFraction()*100, "%feasible-ap")
			b.ReportMetric(last.Trace.FeasibleFraction()*100, "%feasible-all")
		})
	}
}

// BenchmarkTable2 regenerates the 100-iteration dynamic DSE of Table 2.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for _, name := range []string{"RandomSearch-FixDF", "HyperMapper2.0-FixDF", "ExplainableDSE-FixDF"} {
		b.Run(name, func(b *testing.B) {
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), cfg, technique(name), workload.BERT(), cfg.DynamicBudget)
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkTable3 reports the per-acquisition objective reduction metric.
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	for _, name := range []string{"RandomSearch-FixDF", "ExplainableDSE-FixDF"} {
		b.Run(name, func(b *testing.B) {
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), cfg, technique(name), workload.VGG16(), 0)
			}
			b.ReportMetric(last.Trace.ReductionPerAttempt(), "%reduction/attempt")
		})
	}
}

// BenchmarkTable7 regenerates the mapping-space size analysis.
func BenchmarkTable7(b *testing.B) {
	cfg := benchConfig()
	cfg.Models = workload.Suite()
	for i := 0; i < b.N; i++ {
		rows := exp.RunTable7(cfg)
		if len(rows) != 11 {
			b.Fatal("table7 incomplete")
		}
	}
}

// BenchmarkFig14 regenerates the Edge TPU / Eyeriss case-study comparison.
func BenchmarkFig14(b *testing.B) {
	cfg := benchConfig()
	cfg.CodesignBudget = 30
	var rows []exp.Fig14Row
	for i := 0; i < b.N; i++ {
		rows = exp.RunFig14(context.Background(), cfg)
	}
	if len(rows) > 0 && rows[0].DSEFPS > 0 {
		b.ReportMetric(rows[0].DSEFPS, "fps")
	}
}

// BenchmarkFig15 regenerates the black-box-mapper comparison on ResNet18.
func BenchmarkFig15(b *testing.B) {
	cfg := benchConfig()
	var res []exp.Fig15Result
	for i := 0; i < b.N; i++ {
		res = exp.RunFig15(cfg)
	}
	for _, r := range res {
		if r.TotalMs > 0 {
			b.ReportMetric(r.TotalMs, "ms-"+r.Technique)
		}
	}
}

// --- Ablation benches for the design decisions DESIGN.md calls out ---

func benchAblation(b *testing.B, opts dse.Options, model *workload.Model, budget int) {
	b.Helper()
	var best float64
	var evals int
	for i := 0; i < b.N; i++ {
		space := arch.EdgeSpace()
		cons := eval.EdgeConstraints()
		ev := eval.New(eval.Config{
			Space: space, Models: []*workload.Model{model}, Constraints: cons,
			Mode: eval.FixedDataflow, Seed: 1,
		})
		ex := dse.New(accelmodel.New(space, cons))
		ex.Opts = opts
		tr := ex.Run(ev.Problem(budget), rand.New(rand.NewSource(1)))
		best = tr.BestObjective()
		evals = ev.Evaluations()
	}
	b.ReportMetric(best, "ms-latency")
	b.ReportMetric(float64(evals), "designs")
}

// BenchmarkAblationAggregation compares the §4.4(i) aggregation rules.
func BenchmarkAblationAggregation(b *testing.B) {
	for _, agg := range []dse.Aggregation{dse.AggregateMin, dse.AggregateMax, dse.AggregateMean} {
		b.Run(agg.String(), func(b *testing.B) {
			benchAblation(b, dse.Options{Aggregate: agg}, workload.EfficientNetB0(), 150)
		})
	}
}

// BenchmarkAblationTopK compares the §4.4(ii) sub-function filtering.
func BenchmarkAblationTopK(b *testing.B) {
	for _, k := range []int{1, 5, 1 << 20} {
		name := map[int]string{1: "top1", 5: "top5-paper", 1 << 20: "all"}[k]
		b.Run(name, func(b *testing.B) {
			opts := dse.Options{TopK: k}
			if k > 5 {
				opts.ThresholdScale = 1e-9
			}
			benchAblation(b, opts, workload.EfficientNetB0(), 150)
		})
	}
}

// BenchmarkAblationBudget compares the §4.6 constraint-budget-aware update
// against plain greedy feasible-min.
func BenchmarkAblationBudget(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "budget-aware"
		if disable {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			benchAblation(b, dse.Options{DisableBudgetAwareUpdate: disable}, workload.ResNet50(), 150)
		})
	}
}

// BenchmarkAblationAcquisition compares §4.5 one-parameter-per-candidate
// acquisition against joint updates.
func BenchmarkAblationAcquisition(b *testing.B) {
	for _, joint := range []bool{false, true} {
		name := "per-parameter"
		if joint {
			name = "joint"
		}
		b.Run(name, func(b *testing.B) {
			benchAblation(b, dse.Options{JointAcquisition: joint}, workload.MobileNetV2(), 150)
		})
	}
}

// BenchmarkBatchEvaluation compares a serial exploration against the same
// exploration with the batch-evaluation worker pool enabled. The traces are
// bit-identical by the determinism contract; on multi-core machines the
// pooled run evaluates each attempt's candidate batch concurrently, so the
// wall-time ratio is the batch layer's speedup on real evaluations.
func BenchmarkBatchEvaluation(b *testing.B) {
	cfg := benchConfig()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			var last exp.Run
			for i := 0; i < b.N; i++ {
				last = exp.RunOne(context.Background(), c, technique("ExplainableDSE-Codesign"), workload.ResNet18(), 30)
			}
			reportRun(b, last)
		})
	}
}

// --- Substrate microbenchmarks: the costs behind every DSE iteration ---

// BenchmarkPerfEvaluate measures one analytical cost-model evaluation.
func BenchmarkPerfEvaluate(b *testing.B) {
	space := arch.EdgeSpace()
	d := space.MustDecode(space.Initial())
	l := workload.ResNet18().Layers[1]
	m := mapping.FixedOutputStationary(l, d.PEs, d.L1Bytes, d.L2Bytes())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		perf.Evaluate(d, l, m)
	}
}

// BenchmarkMappingSearch measures one per-layer mapping optimization.
func BenchmarkMappingSearch(b *testing.B) {
	space := arch.EdgeSpace()
	pt := space.Initial()
	pt[arch.PPEs] = 3
	pt[arch.PL1] = 4
	pt[arch.PL2] = 3
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PVirt0+op] = 3
	}
	d := space.MustDecode(pt)
	l := workload.ResNet18().Layers[1]
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := mapping.GenConfig{PEs: d.PEs, L1Bytes: d.L1Bytes, L2Bytes: d.L2Bytes(), MaxN: 300, BaseValid: perf.ValidFn(d, l)}
			mapping.EnumeratePruned(l, cfg, perf.CostFn(d, l))
		}
	})
	b.Run("random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			mapping.RandomSearch(l, 300, rng, perf.CostFn(d, l))
		}
	})
}

// BenchmarkDesignEvaluation measures one full design evaluation per mode.
func BenchmarkDesignEvaluation(b *testing.B) {
	for _, mode := range []eval.MapperMode{eval.FixedDataflow, eval.PrunedMappings} {
		b.Run(mode.String(), func(b *testing.B) {
			space := arch.EdgeSpace()
			for i := 0; i < b.N; i++ {
				ev := eval.New(eval.Config{
					Space: space, Models: []*workload.Model{workload.ResNet18()},
					Constraints: eval.EdgeConstraints(), Mode: mode, MapTrials: 200, Seed: 1,
				})
				ev.Evaluate(space.Initial())
			}
		})
	}
}
