module xdse

go 1.22
