package perf

import (
	"math/rand"
	"testing"

	"xdse/internal/mapping"
)

// TestEvaluateCyclesZeroAllocs pins the Tier-1 hot path to zero heap
// allocations — both on the memoized ordering-sweep path (nine calls per
// fill) and on the memo-miss path (a fresh fill every call). The enumeration
// inner loop makes ~43k of these calls per layer search; one allocation per
// call would reintroduce the GC pressure the context exists to remove.
func TestEvaluateCyclesZeroAllocs(t *testing.T) {
	l := testLayer()
	d := testDesign()
	ctx := NewContext(d, l)
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(31))

	fillA := mapping.Random(dims, rng)
	fillB := fillA
	fillB.F[mapping.DimK][mapping.LvlRF], fillB.F[mapping.DimK][mapping.LvlDRAM] =
		fillB.F[mapping.DimK][mapping.LvlDRAM], fillB.F[mapping.DimK][mapping.LvlRF]

	ord := 0
	if allocs := testing.AllocsPerRun(200, func() {
		m := fillA
		m.DRAMStationary = mapping.Tensor(ord % 3)
		m.NoCStationary = mapping.Tensor((ord / 3) % 3)
		ord++
		ctx.EvaluateCycles(&m)
	}); allocs != 0 {
		t.Errorf("memoized ordering sweep allocates %.1f per call, want 0", allocs)
	}

	flip := false
	if allocs := testing.AllocsPerRun(200, func() {
		m := fillA
		if flip {
			m = fillB
		}
		flip = !flip
		ctx.EvaluateCycles(&m)
	}); allocs != 0 {
		t.Errorf("fill-memo miss path allocates %.1f per call, want 0", allocs)
	}
}

// TestRebindMatchesNewContext: a rebound context must be indistinguishable
// from a context built from scratch for the new design, and rebinding must
// leave the receiver untouched.
func TestRebindMatchesNewContext(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, l := range propertyLayers() {
		dims := mapping.Dims(l)
		for i := 0; i < 20; i++ {
			d1, d2 := randDesign(rng), randDesign(rng)
			ctx1 := NewContext(d1, l)
			m0 := mapping.Random(dims, rng)
			ctx1.EvaluateCycles(&m0) // populate the fill memo before rebinding

			reb := ctx1.Rebind(d2)
			fresh := NewContext(d2, l)
			for trial := 0; trial < 20; trial++ {
				m := mapping.Random(dims, rng)
				gc, gok := reb.EvaluateCycles(&m)
				wc, wok := fresh.EvaluateCycles(&m)
				if gc != wc || gok != wok {
					t.Fatalf("%s: rebound fast path (%v,%v) != fresh (%v,%v) for %v",
						l.Name, gc, gok, wc, wok, m)
				}
				if gb, wb := reb.Evaluate(m), fresh.Evaluate(m); gb != wb {
					t.Fatalf("%s: rebound Evaluate diverged from fresh context", l.Name)
				}
			}
			if ctx1.Design() != d1 {
				t.Fatalf("%s: Rebind mutated the receiver's design", l.Name)
			}
			gc, gok := ctx1.EvaluateCycles(&m0)
			w := Evaluate(d1, l, m0)
			if gok != w.Valid || (gok && gc != w.Cycles) {
				t.Fatalf("%s: receiver's memo corrupted by Rebind", l.Name)
			}
		}
	}
}

// TestEnumerateTrajectoryMatchesSlowPath runs the production pruned search
// with the Tier-1 fast-path cost against a reference cost that calls the
// full Tier-2 evaluation on every candidate, in all three production
// configurations — cold, warm-started, and warm-started with the
// DeltaEvaluate probe — and demands the complete Result (best mapping,
// cycles, trial counts, cost-call counts, pruning counts) be identical.
func TestEnumerateTrajectoryMatchesSlowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	warmChecked := 0
	for _, l := range propertyLayers() {
		for i := 0; i < 6; i++ {
			d := randDesign(rng)
			slowCost := func(m *mapping.Mapping) (float64, bool) {
				b := Evaluate(d, l, *m)
				return b.Cycles, b.Valid
			}
			newCfg := func() mapping.GenConfig {
				return mapping.GenConfig{PEs: d.PEs, L1Bytes: d.L1Bytes, L2Bytes: d.L2Bytes(), MaxN: 600}
			}

			// Cold: no pruning, every candidate costed.
			cold := mapping.EnumeratePruned(l, newCfg(), NewContext(d, l).Cost())
			coldRef := mapping.EnumeratePruned(l, newCfg(), slowCost)
			if cold != coldRef {
				t.Fatalf("%s: cold fast-path result %+v != slow-path %+v", l.Name, cold, coldRef)
			}
			if !cold.Found {
				continue
			}

			// Warm: lower-bound pruning seeded by an incumbent probe.
			inc := cold.Best
			warmCfg := newCfg()
			warmCfg.CostLB = CostLowerBoundFn(l)
			warmCfg.Incumbent = &inc
			warm := mapping.EnumeratePruned(l, warmCfg, NewContext(d, l).Cost())
			refCfg := newCfg()
			refCfg.CostLB = CostLowerBoundFn(l)
			refCfg.Incumbent = &inc
			warmRef := mapping.EnumeratePruned(l, refCfg, slowCost)
			if warm != warmRef {
				t.Fatalf("%s: warm fast-path result %+v != slow-path %+v", l.Name, warm, warmRef)
			}
			if warm.Best != cold.Best || warm.Cycles != cold.Cycles || warm.Evaluated != cold.Evaluated {
				t.Fatalf("%s: warm result diverged from cold (%+v vs %+v)", l.Name, warm, cold)
			}

			// Warm + delta probe: the incumbent's breakdown from a previous
			// design answers the probe through DeltaEvaluate, exactly as
			// internal/eval wires it. The whole Result must still match.
			prevDesign := randDesign(rng)
			prev := NewContext(prevDesign, l).Evaluate(inc)
			ctx := NewContext(d, l)
			deltaCfg := newCfg()
			deltaCfg.CostLB = CostLowerBoundFn(l)
			deltaCfg.Incumbent = &inc
			deltaCfg.ProbeCost = func(m *mapping.Mapping) (float64, bool) {
				b := ctx.DeltaEvaluate(&prev, *m)
				return b.Cycles, b.Valid
			}
			delta := mapping.EnumeratePruned(l, deltaCfg, ctx.Cost())
			if delta != warm {
				t.Fatalf("%s: delta-probe result %+v != plain warm %+v", l.Name, delta, warm)
			}
			warmChecked++
		}
	}
	if warmChecked < 10 {
		t.Fatalf("only %d warm trajectories compared", warmChecked)
	}
}

// TestEnumerateSearchAllocsRealCost pins the allocation count of a full
// pruned enumeration driven by the real Tier-1 cost (the mapping-package
// regression test uses a synthetic cost). After the divisor/spread memos are
// warm, a search over hundreds of candidates must amortize to a handful of
// allocations — any per-candidate allocation in EvaluateCycles blows the
// bound immediately.
func TestEnumerateSearchAllocsRealCost(t *testing.T) {
	l := testLayer()
	d := testDesign()
	cfg := mapping.GenConfig{PEs: d.PEs, L1Bytes: d.L1Bytes, L2Bytes: d.L2Bytes(), MaxN: 600}
	ctx := NewContext(d, l)
	cost := ctx.Cost()
	warm := mapping.EnumeratePruned(l, cfg, cost) // warm the divisor/spread memos
	if !warm.Found {
		t.Fatal("no mapping found")
	}
	allocs := testing.AllocsPerRun(20, func() {
		c := cfg
		c.CostLB = CostLowerBoundFn(l)
		mapping.EnumeratePruned(l, c, cost)
	})
	if allocs > 16 {
		t.Fatalf("real-cost enumeration allocates %.0f times per search; Tier-1 hot path has regressed", allocs)
	}
}
