package perf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// testDesign returns a roomy design that accepts most mappings.
func testDesign() arch.Design {
	d := arch.Design{
		PEs: 256, L1Bytes: 1024, L2KB: 1024, OffchipMBps: 8192,
		NoCWidthBits: 64, FreqMHz: 500,
	}
	for op := range d.PhysLinks {
		d.PhysLinks[op] = 64
		d.VirtLinks[op] = 512
	}
	return d
}

func testLayer() workload.Layer {
	return workload.Layer{Kind: workload.Conv, Name: "t", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1}
}

// sequentialMapping places everything at the DRAM level.
func sequentialMapping(l workload.Layer) mapping.Mapping {
	dims := mapping.Dims(l)
	var m mapping.Mapping
	for d := mapping.Dim(0); d < mapping.NumDims; d++ {
		for lv := mapping.Level(0); lv < mapping.NumLevels; lv++ {
			m.F[d][lv] = 1
		}
		m.F[d][mapping.LvlDRAM] = dims[d]
	}
	return m
}

func TestSequentialMappingValid(t *testing.T) {
	l := testLayer()
	b := Evaluate(testDesign(), l, sequentialMapping(l))
	if !b.Valid {
		t.Fatalf("sequential mapping invalid: %s", b.Incompat)
	}
	if b.PEsUsed != 1 {
		t.Fatalf("PEs used = %d, want 1", b.PEsUsed)
	}
	dims := mapping.Dims(l)
	wantMACs := float64(dims[0] * dims[1] * dims[2] * dims[3] * dims[4] * dims[5])
	if b.MACs != wantMACs {
		t.Fatalf("MACs = %v, want %v", b.MACs, wantMACs)
	}
	if b.TComp != wantMACs {
		t.Fatalf("TComp = %v, want %v (1 PE)", b.TComp, wantMACs)
	}
}

func TestLatencyIsMaxOfFactors(t *testing.T) {
	l := testLayer()
	d := testDesign()
	b := Evaluate(d, l, mapping.FixedOutputStationary(l, d.PEs, d.L1Bytes, d.L2Bytes()))
	if !b.Valid {
		t.Fatalf("invalid: %s", b.Incompat)
	}
	maxF := b.TComp
	for _, op := range arch.Operands {
		if b.TNoC[op] > maxF {
			maxF = b.TNoC[op]
		}
	}
	if b.TDMA > maxF {
		maxF = b.TDMA
	}
	if b.Cycles != maxF {
		t.Fatalf("Cycles = %v, max factor = %v", b.Cycles, maxF)
	}
}

func TestTDMAIsSumOfOperands(t *testing.T) {
	l := testLayer()
	d := testDesign()
	b := Evaluate(d, l, sequentialMapping(l))
	sum := 0.0
	for _, op := range arch.Operands {
		sum += b.TDMAOp[op]
	}
	if diff := b.TDMA - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("TDMA %v != sum of operands %v", b.TDMA, sum)
	}
}

func TestMorePEsReduceTComp(t *testing.T) {
	l := testLayer()
	d := testDesign()
	m := sequentialMapping(l)
	seq := Evaluate(d, l, m)

	dims := mapping.Dims(l)
	m.F[mapping.DimK][mapping.LvlSpatial] = 16
	m.F[mapping.DimK][mapping.LvlDRAM] = dims[mapping.DimK] / 16
	par := Evaluate(d, l, m)
	if !par.Valid {
		t.Fatalf("parallel mapping invalid: %s", par.Incompat)
	}
	if par.TComp*15 > seq.TComp {
		t.Fatalf("16x spatial K should cut TComp ~16x: %v -> %v", seq.TComp, par.TComp)
	}
}

func TestMoreBandwidthReducesTDMA(t *testing.T) {
	l := testLayer()
	m := sequentialMapping(l)
	d := testDesign()
	slow := Evaluate(d, l, m)
	d.OffchipMBps *= 4
	fast := Evaluate(d, l, m)
	if fast.TDMA >= slow.TDMA {
		t.Fatalf("4x bandwidth did not reduce TDMA: %v -> %v", slow.TDMA, fast.TDMA)
	}
}

func TestWiderNoCReducesTNoC(t *testing.T) {
	l := testLayer()
	d := testDesign()
	m := mapping.FixedOutputStationary(l, d.PEs, d.L1Bytes, d.L2Bytes())
	narrow := Evaluate(d, l, m)
	d2 := d
	d2.NoCWidthBits = 256
	wide := Evaluate(d2, l, m)
	for _, op := range arch.Operands {
		if wide.TNoC[op] > narrow.TNoC[op] {
			t.Fatalf("wider NoC increased %v time: %v -> %v", op, narrow.TNoC[op], wide.TNoC[op])
		}
	}
}

func TestVirtualUnicastIncompatibility(t *testing.T) {
	l := testLayer()
	d := testDesign()
	for op := range d.PhysLinks {
		d.PhysLinks[op] = 1
		d.VirtLinks[op] = 1
	}
	dims := mapping.Dims(l)
	m := sequentialMapping(l)
	m.F[mapping.DimK][mapping.LvlSpatial] = 16
	m.F[mapping.DimK][mapping.LvlDRAM] = dims[mapping.DimK] / 16
	b := Evaluate(d, l, m)
	if b.Valid {
		t.Fatal("16 groups over 1 physical x 1 virtual link must be incompatible")
	}
	if b.IncompatCount < 1 {
		t.Fatal("incompatibilities not counted")
	}
	// W, Ord, Owr all need 16-way sharing (K indexes all of them).
	if b.IncompatCount < 3 {
		t.Fatalf("IncompatCount = %d, want >= 3 (W, Ord, Owr)", b.IncompatCount)
	}
}

func TestBufferOverflowInvalid(t *testing.T) {
	l := testLayer()
	d := testDesign()
	d.L1Bytes = 2 // 1 element: three tensors cannot fit
	b := Evaluate(d, l, sequentialMapping(l))
	if b.Valid {
		t.Fatal("RF overflow must be invalid")
	}
}

func TestRFOverflowDetected(t *testing.T) {
	l := testLayer()
	d := testDesign()
	m := sequentialMapping(l)
	dims := mapping.Dims(l)
	m.F[mapping.DimC][mapping.LvlRF] = dims[mapping.DimC]
	m.F[mapping.DimC][mapping.LvlDRAM] = 1
	m.F[mapping.DimR][mapping.LvlRF] = dims[mapping.DimR]
	m.F[mapping.DimR][mapping.LvlDRAM] = 1
	m.F[mapping.DimS][mapping.LvlRF] = dims[mapping.DimS]
	m.F[mapping.DimS][mapping.LvlDRAM] = 1
	d.L1Bytes = 64
	b := Evaluate(d, l, m)
	if b.Valid {
		t.Fatal("32*3*3 weights cannot fit 64B RF")
	}
}

func TestOffchipTrafficAtLeastTensorSizes(t *testing.T) {
	// Off-chip traffic per operand is at least the (padded) tensor size:
	// everything must be fetched at least once and outputs written once.
	l := testLayer()
	d := testDesign()
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for i := 0; i < 500 && checked < 50; i++ {
		m := mapping.Random(dims, rng)
		b := Evaluate(d, l, m)
		if !b.Valid {
			continue
		}
		checked++
		wBytes := float64(mapping.PaddedTensorElems(l, dims, mapping.TW)) * workload.BytesPerElem
		oBytes := float64(mapping.PaddedTensorElems(l, dims, mapping.TO)) * workload.BytesPerElem
		if b.DataOffchip[arch.OpW] < wBytes {
			t.Fatalf("W traffic %v < tensor %v", b.DataOffchip[arch.OpW], wBytes)
		}
		if b.DataOffchip[arch.OpOWr] < oBytes {
			t.Fatalf("Owr traffic %v < tensor %v", b.DataOffchip[arch.OpOWr], oBytes)
		}
		if b.DataOffchip[arch.OpORd] < 0 {
			t.Fatalf("negative Ord traffic")
		}
	}
	if checked < 10 {
		t.Fatalf("only %d valid mappings sampled", checked)
	}
}

func TestNoCTrafficAtLeastOffchip(t *testing.T) {
	// Data entering from DRAM also crosses the NoC at least once for the
	// streamed operands (W, I).
	l := testLayer()
	d := testDesign()
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		m := mapping.Random(dims, rng)
		b := Evaluate(d, l, m)
		if !b.Valid {
			continue
		}
		for _, op := range []arch.Operand{arch.OpW, arch.OpI} {
			if b.DataNoC[op]+1e-9 < b.DataOffchip[op] {
				t.Fatalf("%v: NoC traffic %v < off-chip %v (mapping %v)", op, b.DataNoC[op], b.DataOffchip[op], m)
			}
		}
	}
}

func TestOutputStationaryAvoidsPsumSpill(t *testing.T) {
	l := testLayer()
	d := testDesign()
	m := sequentialMapping(l)
	m.DRAMStationary = mapping.TO
	m.NoCStationary = mapping.TO
	b := Evaluate(d, l, m)
	if b.DataOffchip[arch.OpORd] != 0 {
		t.Fatalf("output-stationary psum reads = %v, want 0", b.DataOffchip[arch.OpORd])
	}
	// Weight-stationary with split reduction spills partial sums.
	m.DRAMStationary = mapping.TW
	b2 := Evaluate(d, l, m)
	if b2.DataOffchip[arch.OpORd] <= 0 {
		t.Fatal("weight-stationary with DRAM-level reduction must spill psums")
	}
}

func TestDeterminismProperty(t *testing.T) {
	l := testLayer()
	d := testDesign()
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(17))
	f := func(uint8) bool {
		m := mapping.Random(dims, rng)
		a, b := Evaluate(d, l, m), Evaluate(d, l, m)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostFnMatchesEvaluate(t *testing.T) {
	l := testLayer()
	d := testDesign()
	m := sequentialMapping(l)
	c, ok := CostFn(d, l)(&m)
	b := Evaluate(d, l, m)
	if ok != b.Valid || c != b.Cycles {
		t.Fatal("CostFn disagrees with Evaluate")
	}
	if !ValidFn(d, l)(m) {
		t.Fatal("ValidFn disagrees")
	}
}

func TestMaxTNoC(t *testing.T) {
	b := Breakdown{}
	b.TNoC[arch.OpI] = 5
	b.TNoC[arch.OpOWr] = 9
	op, v := b.MaxTNoC()
	if op != arch.OpOWr || v != 9 {
		t.Fatalf("MaxTNoC = %v %v", op, v)
	}
}

func TestGEMMAndDepthwiseEvaluate(t *testing.T) {
	d := testDesign()
	layers := []workload.Layer{
		{Kind: workload.Gemm, Name: "g", K: 1000, C: 512, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Mult: 1},
		{Kind: workload.DWConv, Name: "dw", K: 96, C: 1, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Mult: 1},
	}
	for _, l := range layers {
		b := Evaluate(d, l, sequentialMapping(l))
		if !b.Valid {
			t.Fatalf("%s: %s", l.Name, b.Incompat)
		}
		if b.Cycles <= 0 {
			t.Fatalf("%s: non-positive cycles", l.Name)
		}
	}
}
