package perf

import (
	"math/rand"
	"reflect"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// TestMappingSubKeyCoversDesign is the guard behind the layer-cache sub-key
// derivation rule (docs/EXTENDING.md): every field of arch.Design must be
// explicitly classified here as either folded into MappingSubKey or proven
// irrelevant to Evaluate. Adding a field to arch.Design without classifying
// it fails this test, which is the point — an unclassified field read by
// Evaluate would silently poison the layer-grain mapping cache.
func TestMappingSubKeyCoversDesign(t *testing.T) {
	// Fields whose values are folded into the sub-key directly.
	keyed := map[string]bool{
		"PEs": true, "L1Bytes": true, "L2KB": true,
		"NoCWidthBits": true, "PhysLinks": true, "VirtLinks": true,
	}
	// Fields Evaluate consumes only through BytesPerCycle; the sub-key
	// captures their gcd-reduced ratio rather than the raw values.
	ratio := map[string]bool{"OffchipMBps": true, "FreqMHz": true}

	typ := reflect.TypeOf(arch.Design{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if !keyed[name] && !ratio[name] {
			t.Errorf("arch.Design field %q is not classified for MappingSubKey; "+
				"if perf.Evaluate reads it, fold it into the key, otherwise list it here as irrelevant", name)
		}
	}
}

// TestMappingSubKeyRatio checks the bandwidth/frequency pair only enters the
// key as a ratio: scaling both leaves the key unchanged, scaling one does
// not.
func TestMappingSubKeyRatio(t *testing.T) {
	d := testDesign()
	scaled := d
	scaled.OffchipMBps *= 3
	scaled.FreqMHz *= 3
	if MappingSubKey(d) != MappingSubKey(scaled) {
		t.Fatalf("same bytes/cycle ratio produced different sub-keys:\n%s\n%s",
			MappingSubKey(d), MappingSubKey(scaled))
	}
	faster := d
	faster.OffchipMBps *= 2
	if MappingSubKey(d) == MappingSubKey(faster) {
		t.Fatalf("different bandwidth collapsed to one sub-key: %s", MappingSubKey(d))
	}
}

// TestMappingSubKeyDistinguishes perturbs every keyed parameter and checks
// the key moves.
func TestMappingSubKeyDistinguishes(t *testing.T) {
	base := testDesign()
	perturb := map[string]func(*arch.Design){
		"PEs":          func(d *arch.Design) { d.PEs *= 2 },
		"L1Bytes":      func(d *arch.Design) { d.L1Bytes *= 2 },
		"L2KB":         func(d *arch.Design) { d.L2KB *= 2 },
		"NoCWidthBits": func(d *arch.Design) { d.NoCWidthBits *= 2 },
		"PhysLinks":    func(d *arch.Design) { d.PhysLinks[arch.OpI] /= 2 },
		"VirtLinks":    func(d *arch.Design) { d.VirtLinks[arch.OpOWr] /= 2 },
	}
	for name, fn := range perturb {
		d := base
		fn(&d)
		if MappingSubKey(d) == MappingSubKey(base) {
			t.Errorf("perturbing %s did not change the sub-key", name)
		}
	}
}

// TestMappingSubKeySoundness is the semantic property behind the cache: two
// designs with equal sub-keys must produce identical breakdowns for every
// (layer, mapping) pair. Exercised with random mappings on a design pair
// that differs in raw frequency/bandwidth but shares the ratio.
func TestMappingSubKeySoundness(t *testing.T) {
	a := testDesign()
	b := a
	b.OffchipMBps *= 4
	b.FreqMHz *= 4
	if MappingSubKey(a) != MappingSubKey(b) {
		t.Fatal("test premise broken: designs should share a sub-key")
	}
	l := testLayer()
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		m := mapping.Random(dims, rng)
		ba, bb := Evaluate(a, l, m), Evaluate(b, l, m)
		if ba != bb {
			t.Fatalf("equal sub-keys but different breakdowns for mapping %v", m)
		}
	}
}

// TestCostLowerBound checks the bound certificate: for random mappings the
// reported cycles never fall below the bound at the mapping's spatial
// occupancy.
func TestCostLowerBound(t *testing.T) {
	d := testDesign()
	l := testLayer()
	lb := CostLowerBoundFn(l)
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for i := 0; i < 500; i++ {
		m := mapping.Random(dims, rng)
		b := Evaluate(d, l, m)
		if !b.Valid {
			continue
		}
		checked++
		if b.Cycles < lb(m.SpatialPEs()) {
			t.Fatalf("cycles %v below certified bound %v (PEs %d)", b.Cycles, lb(m.SpatialPEs()), m.SpatialPEs())
		}
	}
	if checked == 0 {
		t.Fatal("no valid mapping sampled; bound never exercised")
	}
	// The bound must also hold for a GEMM layer (different padded dims).
	g := workload.Layer{Kind: workload.Gemm, Name: "g", K: 128, C: 256, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Mult: 1}
	glb := CostLowerBoundFn(g)
	gm := sequentialMapping(g)
	if b := Evaluate(d, g, gm); b.Valid && b.Cycles < glb(1) {
		t.Fatalf("GEMM cycles %v below bound %v", b.Cycles, glb(1))
	}
}
