// Package perf is the analytical latency and execution-characteristics
// model of the accelerator template, standing in for the dMazeRunner cost
// model the paper builds on. For a (design, layer, mapping) triple it
// produces the full factor breakdown of the paper's Fig. 8 latency tree —
// computation time, per-operand NoC time, and DMA time — plus every
// execution characteristic §4.7 lists as input to bottleneck mitigation
// (off-chip and NoC traffic per operand, NoC group/broadcast geometry,
// per-tensor buffer allocations, and remaining exploitable reuse).
package perf

import (
	"fmt"
	"math"
	"strings"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// dmaBurstSetupCycles is the fixed DMA overhead charged per non-contiguous
// burst (dMazeRunner models this overhead of non-contiguous accesses).
const dmaBurstSetupCycles = 8.0

// Breakdown is the full evaluation of one layer execution. All times are in
// accelerator cycles; all data volumes in bytes.
type Breakdown struct {
	// Valid reports whether the mapping is compatible with the design.
	Valid bool
	// Incompat explains the incompatibility when Valid is false.
	Incompat string
	// IncompatCount is the number of distinct incompatibilities (e.g.
	// operand NoCs short on time-shared unicast); the constraint budget
	// uses it so partial fixes register as progress.
	IncompatCount int

	TComp float64
	TNoC  [arch.NumOperands]float64
	TDMA  float64
	// TDMAOp is the per-operand share of the DMA time (TDMA is their sum).
	TDMAOp [arch.NumOperands]float64
	// Cycles is the layer latency: max(TComp, max TNoC, TDMA).
	Cycles float64

	// PEsUsed is the spatial occupancy of the mapping.
	PEsUsed int

	// DataOffchip is the per-operand off-chip traffic.
	DataOffchip [arch.NumOperands]float64
	// DataNoC is the per-operand L2-to-PE traffic.
	DataNoC [arch.NumOperands]float64
	// NoCGroups is the number of PE groups needing distinct data per
	// operand (max concurrent unicast demand).
	NoCGroups [arch.NumOperands]int
	// NoCBytesPerGroup is the broadcast size per group per load.
	NoCBytesPerGroup [arch.NumOperands]float64
	// VirtNeeded is the required time-sharing degree per operand NoC.
	VirtNeeded [arch.NumOperands]int

	// DataRF and DataSPM are the per-tensor buffer allocations (bytes).
	DataRF  [mapping.NumTensors]float64
	DataSPM [mapping.NumTensors]float64
	// ReuseAvailRF and ReuseAvailSPM are the remaining refetch factors a
	// larger RF / scratchpad could eliminate (1 = fully reused already).
	ReuseAvailRF  [mapping.NumTensors]float64
	ReuseAvailSPM [mapping.NumTensors]float64

	// MACs is the padded MAC count executed.
	MACs float64
}

// OperandTensor maps an operand NoC to the logical tensor it carries.
func OperandTensor(op arch.Operand) mapping.Tensor {
	switch op {
	case arch.OpW:
		return mapping.TW
	case arch.OpI:
		return mapping.TI
	default:
		return mapping.TO
	}
}

// Evaluate computes the breakdown of executing one occurrence of layer l on
// design d under mapping m.
func Evaluate(d arch.Design, l workload.Layer, m mapping.Mapping) Breakdown {
	var b Breakdown
	dims := mapping.Dims(l)

	// Structural validity: factors must cover padded dims exactly.
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		prod := 1
		for lv := mapping.Level(0); lv < mapping.NumLevels; lv++ {
			prod *= m.Factor(dim, lv)
		}
		if prod != dims[dim] {
			b.Incompat = "tiling does not cover loop extent"
			b.IncompatCount = 1
			return b
		}
	}
	b.PEsUsed = m.SpatialPEs()
	if b.PEsUsed > d.PEs {
		b.Incompat = "spatial tiling exceeds PE count"
		b.IncompatCount = 1
		return b
	}
	if rf := mapping.RFTileBytes(l, m); rf > int64(d.L1Bytes) {
		b.Incompat = "RF tile exceeds L1 capacity"
		b.IncompatCount = 1
		return b
	}
	if l2 := mapping.L2TileBytes(l, m); l2 > int64(d.L2Bytes()) {
		b.Incompat = "L2 tile exceeds scratchpad capacity"
		b.IncompatCount = 1
		return b
	}

	// Computation time: padded MACs over occupied PEs.
	macs := 1.0
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		macs *= float64(dims[dim])
	}
	b.MACs = macs
	b.TComp = macs / float64(b.PEsUsed)

	// Refetch factors per tensor at the two memory boundaries.
	kind := l.Kind
	prodIrrelevant := func(t mapping.Tensor, lv mapping.Level) float64 {
		p := 1.0
		for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
			if !mapping.Indexes(kind, t, dim) {
				p *= float64(m.Factor(dim, lv))
			}
		}
		return p
	}
	psumProd := func(lv mapping.Level) float64 {
		p := 1.0
		for _, dim := range mapping.ReductionDims(kind) {
			p *= float64(m.Factor(dim, lv))
		}
		return p
	}
	refetchDRAM := func(t mapping.Tensor) float64 {
		if t == mapping.TO {
			if m.DRAMStationary == mapping.TO {
				return 1
			}
			return psumProd(mapping.LvlDRAM)
		}
		if t == m.DRAMStationary {
			return 1
		}
		return prodIrrelevant(t, mapping.LvlDRAM)
	}
	refetchNoC := func(t mapping.Tensor) float64 {
		if t == mapping.TO {
			if m.NoCStationary == mapping.TO {
				return 1
			}
			return psumProd(mapping.LvlL2)
		}
		if t == m.NoCStationary {
			return 1
		}
		return prodIrrelevant(t, mapping.LvlL2)
	}

	size := func(t mapping.Tensor) float64 {
		return float64(mapping.PaddedTensorElems(l, dims, t)) * workload.BytesPerElem
	}

	// Off-chip traffic (bytes) per operand.
	psumDRAM := refetchDRAM(mapping.TO)
	b.DataOffchip[arch.OpW] = size(mapping.TW) * refetchDRAM(mapping.TW)
	b.DataOffchip[arch.OpI] = size(mapping.TI) * refetchDRAM(mapping.TI)
	b.DataOffchip[arch.OpOWr] = size(mapping.TO) * psumDRAM
	b.DataOffchip[arch.OpORd] = size(mapping.TO) * (psumDRAM - 1)

	// NoC traffic (bytes) per operand.
	psumNoC := psumDRAM * refetchNoC(mapping.TO)
	b.DataNoC[arch.OpW] = size(mapping.TW) * refetchDRAM(mapping.TW) * refetchNoC(mapping.TW)
	b.DataNoC[arch.OpI] = size(mapping.TI) * refetchDRAM(mapping.TI) * refetchNoC(mapping.TI)
	b.DataNoC[arch.OpOWr] = size(mapping.TO) * psumNoC
	b.DataNoC[arch.OpORd] = size(mapping.TO) * (psumNoC - 1)

	// NoC geometry and per-operand communication time.
	for _, op := range arch.Operands {
		t := OperandTensor(op)
		groups := 1
		for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
			if mapping.Indexes(kind, t, dim) {
				groups *= m.Factor(dim, mapping.LvlSpatial)
			}
		}
		b.NoCGroups[op] = groups
		bpg := float64(mapping.RFTileElems(l, m, t)) * workload.BytesPerElem
		b.NoCBytesPerGroup[op] = bpg

		links := d.PhysLinks[op]
		if links > groups {
			links = groups
		}
		shares := (groups + d.PhysLinks[op] - 1) / d.PhysLinks[op]
		if shares < 1 {
			shares = 1
		}
		b.VirtNeeded[op] = shares
		if shares > d.VirtLinks[op] {
			// Record every short NoC rather than bailing at the
			// first, so mitigation can target all of them and
			// partial fixes count as constraint-budget progress.
			if b.Incompat != "" {
				b.Incompat += "; "
			}
			b.Incompat += "spatial parallelism needs more time-shared unicast than " + op.String() + " NoC supports"
			b.IncompatCount++
		}

		if b.DataNoC[op] <= 0 {
			continue
		}
		loads := b.DataNoC[op] / (float64(groups) * bpg)
		perGroupCycles := math.Ceil(bpg * 8 / float64(d.NoCWidthBits))
		b.TNoC[op] = loads * float64(shares) * perGroupCycles
	}

	// DMA time: additive over operands, with per-burst setup overhead for
	// non-contiguous accesses.
	bpc := d.BytesPerCycle()
	burstBytes := func(t mapping.Tensor) float64 {
		th := func(dim mapping.Dim) float64 { return float64(m.TileThrough(dim, mapping.LvlL2)) }
		switch t {
		case mapping.TW:
			return th(mapping.DimC) * th(mapping.DimS) * workload.BytesPerElem
		case mapping.TI:
			x := (th(mapping.DimX)-1)*float64(l.Stride) + th(mapping.DimS)
			return x * workload.BytesPerElem
		default:
			return th(mapping.DimX) * workload.BytesPerElem
		}
	}
	for _, op := range arch.Operands {
		bytes := b.DataOffchip[op]
		if bytes <= 0 {
			continue
		}
		burst := burstBytes(OperandTensor(op))
		if burst < workload.BytesPerElem {
			burst = workload.BytesPerElem
		}
		b.TDMAOp[op] = bytes/bpc + bytes/burst*dmaBurstSetupCycles
		b.TDMA += b.TDMAOp[op]
	}

	// Buffer allocations and remaining reuse.
	for t := mapping.Tensor(0); t < mapping.NumTensors; t++ {
		b.DataRF[t] = float64(mapping.RFTileElems(l, m, t)) * workload.BytesPerElem
		b.DataSPM[t] = float64(mapping.L2TileElems(l, m, t)) * workload.BytesPerElem
		b.ReuseAvailRF[t] = refetchNoC(t)
		b.ReuseAvailSPM[t] = refetchDRAM(t)
	}

	b.Cycles = b.TComp
	for _, op := range arch.Operands {
		if b.TNoC[op] > b.Cycles {
			b.Cycles = b.TNoC[op]
		}
	}
	if b.TDMA > b.Cycles {
		b.Cycles = b.TDMA
	}
	b.Valid = b.IncompatCount == 0
	return b
}

// MaxTNoC returns the slowest operand NoC and its time.
func (b *Breakdown) MaxTNoC() (arch.Operand, float64) {
	best, bestT := arch.OpW, b.TNoC[arch.OpW]
	for _, op := range arch.Operands[1:] {
		if b.TNoC[op] > bestT {
			best, bestT = op, b.TNoC[op]
		}
	}
	return best, bestT
}

// MappingSubKey returns a canonical key of exactly the design parameters
// Evaluate reads: PEs, the L1/L2 capacities, the NoC width and per-operand
// physical/virtual link counts, and the off-chip-bandwidth-to-frequency
// ratio (Evaluate only ever consumes OffchipMBps and FreqMHz through
// BytesPerCycle, so the ratio is captured as a gcd-reduced integer pair —
// two designs at different clocks but the same bytes/cycle share a key).
// Two designs with equal sub-keys are indistinguishable to Evaluate for
// every (layer, mapping) pair, which is what makes the layer-grain mapping
// cache in internal/eval sound. When adding a field to arch.Design that
// Evaluate reads, extend this key (TestMappingSubKeyCoversDesign guards
// against forgetting).
func MappingSubKey(d arch.Design) string {
	num, den := d.OffchipMBps, d.FreqMHz
	if den <= 0 {
		num, den = 0, 1
	}
	if num < 0 {
		num = 0
	}
	if g := gcd(num, den); g > 1 {
		num, den = num/g, den/g
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pe%d,l1:%d,l2:%d,noc%d,bpc%d/%d", d.PEs, d.L1Bytes, d.L2Bytes(), d.NoCWidthBits, num, den)
	for _, op := range arch.Operands {
		fmt.Fprintf(&b, ",%v:%dx%d", op, d.PhysLinks[op], d.VirtLinks[op])
	}
	return b.String()
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// CostLowerBoundFn returns a certified lower bound on the cycles Evaluate
// can report for any valid mapping of layer l occupying the given number of
// spatial PEs: Cycles = max(TComp, ...) >= TComp = paddedMACs/PEsUsed. The
// pruned enumerator uses it to skip cost calls that provably cannot beat an
// incumbent without changing the search result.
func CostLowerBoundFn(l workload.Layer) func(spatialPEs int) float64 {
	dims := mapping.Dims(l)
	macs := 1.0
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		macs *= float64(dims[dim])
	}
	return func(spatialPEs int) float64 {
		if spatialPEs < 1 {
			spatialPEs = 1
		}
		return macs / float64(spatialPEs)
	}
}

// CostFn adapts Evaluate into the mapping.Cost callback for design d and
// layer l.
func CostFn(d arch.Design, l workload.Layer) mapping.Cost {
	return func(m mapping.Mapping) (float64, bool) {
		b := Evaluate(d, l, m)
		return b.Cycles, b.Valid
	}
}

// ValidFn adapts Evaluate into a validity-only predicate, used by the
// pruned enumerator to reject whole spatial bases in one probe.
func ValidFn(d arch.Design, l workload.Layer) func(mapping.Mapping) bool {
	return func(m mapping.Mapping) bool {
		return Evaluate(d, l, m).Valid
	}
}
