// Package perf is the analytical latency and execution-characteristics
// model of the accelerator template, standing in for the dMazeRunner cost
// model the paper builds on. For a (design, layer, mapping) triple it
// produces the full factor breakdown of the paper's Fig. 8 latency tree —
// computation time, per-operand NoC time, and DMA time — plus every
// execution characteristic §4.7 lists as input to bottleneck mitigation
// (off-chip and NoC traffic per operand, NoC group/broadcast geometry,
// per-tensor buffer allocations, and remaining exploitable reuse).
package perf

import (
	"strconv"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// dmaBurstSetupCycles is the fixed DMA overhead charged per non-contiguous
// burst (dMazeRunner models this overhead of non-contiguous accesses).
const dmaBurstSetupCycles = 8.0

// Breakdown is the full evaluation of one layer execution. All times are in
// accelerator cycles; all data volumes in bytes.
type Breakdown struct {
	// Valid reports whether the mapping is compatible with the design.
	Valid bool
	// Incompat explains the incompatibility when Valid is false.
	Incompat string
	// IncompatCount is the number of distinct incompatibilities (e.g.
	// operand NoCs short on time-shared unicast); the constraint budget
	// uses it so partial fixes register as progress.
	IncompatCount int

	TComp float64
	TNoC  [arch.NumOperands]float64
	TDMA  float64
	// TDMAOp is the per-operand share of the DMA time (TDMA is their sum).
	TDMAOp [arch.NumOperands]float64
	// Cycles is the layer latency: max(TComp, max TNoC, TDMA).
	Cycles float64

	// PEsUsed is the spatial occupancy of the mapping.
	PEsUsed int

	// DataOffchip is the per-operand off-chip traffic.
	DataOffchip [arch.NumOperands]float64
	// DataNoC is the per-operand L2-to-PE traffic.
	DataNoC [arch.NumOperands]float64
	// NoCGroups is the number of PE groups needing distinct data per
	// operand (max concurrent unicast demand).
	NoCGroups [arch.NumOperands]int
	// NoCBytesPerGroup is the broadcast size per group per load.
	NoCBytesPerGroup [arch.NumOperands]float64
	// VirtNeeded is the required time-sharing degree per operand NoC.
	VirtNeeded [arch.NumOperands]int

	// DataRF and DataSPM are the per-tensor buffer allocations (bytes).
	DataRF  [mapping.NumTensors]float64
	DataSPM [mapping.NumTensors]float64
	// ReuseAvailRF and ReuseAvailSPM are the remaining refetch factors a
	// larger RF / scratchpad could eliminate (1 = fully reused already).
	ReuseAvailRF  [mapping.NumTensors]float64
	ReuseAvailSPM [mapping.NumTensors]float64

	// MACs is the padded MAC count executed.
	MACs float64
}

// OperandTensor maps an operand NoC to the logical tensor it carries.
func OperandTensor(op arch.Operand) mapping.Tensor {
	switch op {
	case arch.OpW:
		return mapping.TW
	case arch.OpI:
		return mapping.TI
	default:
		return mapping.TO
	}
}

// Evaluate computes the breakdown of executing one occurrence of layer l on
// design d under mapping m. It is the Tier-2 full evaluation; callers that
// evaluate many mappings of one (design, layer) pair should build an
// EvalContext once and use its EvaluateCycles fast path (Tier 1) in the
// inner loop instead.
func Evaluate(d arch.Design, l workload.Layer, m mapping.Mapping) Breakdown {
	return NewContext(d, l).Evaluate(m)
}

// MaxTNoC returns the slowest operand NoC and its time.
func (b *Breakdown) MaxTNoC() (arch.Operand, float64) {
	best, bestT := arch.OpW, b.TNoC[arch.OpW]
	for _, op := range arch.Operands[1:] {
		if b.TNoC[op] > bestT {
			best, bestT = op, b.TNoC[op]
		}
	}
	return best, bestT
}

// MappingSubKey returns a canonical key of exactly the design parameters
// Evaluate reads: PEs, the L1/L2 capacities, the NoC width and per-operand
// physical/virtual link counts, and the off-chip-bandwidth-to-frequency
// ratio (Evaluate only ever consumes OffchipMBps and FreqMHz through
// BytesPerCycle, so the ratio is captured as a gcd-reduced integer pair —
// two designs at different clocks but the same bytes/cycle share a key).
// Two designs with equal sub-keys are indistinguishable to Evaluate for
// every (layer, mapping) pair, which is what makes the layer-grain mapping
// cache in internal/eval sound. When adding a field to arch.Design that
// Evaluate reads, extend this key (TestMappingSubKeyCoversDesign guards
// against forgetting).
func MappingSubKey(d arch.Design) string {
	num, den := d.OffchipMBps, d.FreqMHz
	if den <= 0 {
		num, den = 0, 1
	}
	if num < 0 {
		num = 0
	}
	if g := gcd(num, den); g > 1 {
		num, den = num/g, den/g
	}
	// Built with strconv appends rather than fmt (this runs once per layer
	// search and showed up at ~10% of a warm campaign under fmt). The byte
	// layout is identical to the original
	// "pe%d,l1:%d,l2:%d,noc%d,bpc%d/%d" + ",%v:%dx%d" format — persisted
	// cache records key on this string, so the layout must not change
	// without retiring them (see ModelVersion).
	b := make([]byte, 0, 96)
	b = append(b, "pe"...)
	b = strconv.AppendInt(b, int64(d.PEs), 10)
	b = append(b, ",l1:"...)
	b = strconv.AppendInt(b, int64(d.L1Bytes), 10)
	b = append(b, ",l2:"...)
	b = strconv.AppendInt(b, int64(d.L2Bytes()), 10)
	b = append(b, ",noc"...)
	b = strconv.AppendInt(b, int64(d.NoCWidthBits), 10)
	b = append(b, ",bpc"...)
	b = strconv.AppendInt(b, int64(num), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(den), 10)
	for _, op := range arch.Operands {
		b = append(b, ',')
		b = append(b, op.String()...)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(d.PhysLinks[op]), 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, int64(d.VirtLinks[op]), 10)
	}
	return string(b)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// CostLowerBoundFn returns a certified lower bound on the cycles Evaluate
// can report for any valid mapping of layer l occupying the given number of
// spatial PEs: Cycles = max(TComp, ...) >= TComp = paddedMACs/PEsUsed. The
// pruned enumerator uses it to skip cost calls that provably cannot beat an
// incumbent without changing the search result.
func CostLowerBoundFn(l workload.Layer) func(spatialPEs int) float64 {
	dims := mapping.Dims(l)
	macs := 1.0
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		macs *= float64(dims[dim])
	}
	return func(spatialPEs int) float64 {
		if spatialPEs < 1 {
			spatialPEs = 1
		}
		return macs / float64(spatialPEs)
	}
}

// CostFn adapts the evaluation into the mapping.Cost callback for design d
// and layer l, backed by a fresh EvalContext's Tier-1 fast path. For a
// valid mapping the cycles are bit-identical to Evaluate(d, l, m).Cycles;
// an invalid mapping reports (0, false) without a latency. The returned
// closure owns a mutable fill memo and is not safe for concurrent use —
// call CostFn once per goroutine.
func CostFn(d arch.Design, l workload.Layer) mapping.Cost {
	return NewContext(d, l).Cost()
}

// ValidFn adapts the evaluation into a validity-only predicate, used by the
// pruned enumerator to reject whole spatial bases in one probe. Like
// CostFn, the returned closure is not safe for concurrent use.
func ValidFn(d arch.Design, l workload.Layer) func(mapping.Mapping) bool {
	return NewContext(d, l).Valid()
}
