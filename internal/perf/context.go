package perf

import (
	"math"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// EvalContext is the two-tier evaluation engine for one (design, layer)
// pair. Everything mapping-independent is precomputed at construction —
// smooth-padded dims, the padded MAC count, per-tensor whole-layer sizes,
// tensor-indexing and reduction-dim bitmasks, and the design-derived DMA and
// NoC constants — so the enumeration inner loop pays only for what actually
// varies per candidate.
//
// Tier 1 is EvaluateCycles: a slim (cycles, valid) evaluation for the
// mapping-search hot loop that skips the per-operand breakdown arrays
// mapping.Cost never reads. It additionally memoizes the most recent
// temporal fill (the factor matrix m.F): the pruned enumerator tries all
// nine stationary-tensor orderings of each fill back-to-back, and every
// fill-dependent quantity — structural validity, buffer fits, refetch
// products, NoC geometry, DMA bursts — is stationary-independent, so eight
// of nine calls reduce to a handful of multiplications.
//
// Tier 2 is EvalContext.Evaluate: the full Breakdown, used for the winning
// mapping, bottleneck analysis, and mitigation. Both tiers share the same
// refetch/burst helpers and mirror the package-level Evaluate expression by
// expression, so their cycles are bit-identical (see the cycle-exactness
// contract in DESIGN.md §13 and TestFastPathMatchesEvaluateProperty).
//
// An EvalContext is NOT safe for concurrent use: the fill memo is mutable
// state. Build one context per goroutine (internal/eval builds one per
// layer search).
type EvalContext struct {
	d arch.Design
	l workload.Layer

	// Layer-derived precomputes (design-independent).
	kind workload.Kind
	dims [mapping.NumDims]int
	macs float64
	// sizeB is the whole-layer padded tensor size in bytes.
	sizeB [mapping.NumTensors]float64
	// idxMask[t] has bit d set when dimension d indexes tensor t.
	idxMask [mapping.NumTensors]uint8
	// redMask has bit d set when dimension d is a reduction (psum) dim.
	redMask uint8

	// Design-derived precomputes (rebound by Rebind).
	bpc     float64
	nocW    float64
	l2Bytes int64

	// Fill memo: the mapping-factor-dependent, stationary-independent state
	// of the most recently evaluated temporal fill.
	fillOK bool
	fill   fillState
}

// fillState caches every quantity of one temporal fill (a factor matrix
// m.F) that does not depend on the stationary-tensor ordering.
type fillState struct {
	f  [mapping.NumDims][mapping.NumLevels]int
	ok bool // fill is structurally valid, fits buffers/PEs/NoC sharing

	pes   int
	tcomp float64

	// prodIrrDRAM/prodIrrL2 are prodIrrelevant(t, level) for TW and TI
	// (TO refetch goes through the psum products instead).
	prodIrrDRAM [mapping.NumTensors]float64
	prodIrrL2   [mapping.NumTensors]float64
	psumDRAM    float64
	psumL2      float64

	// Per-operand NoC geometry: groups*bytesPerGroup (the loads divisor),
	// the time-sharing degree as a float, the per-group broadcast cycles,
	// and the clamped DMA burst size.
	groupsBpg [arch.NumOperands]float64
	sharesF   [arch.NumOperands]float64
	perGroup  [arch.NumOperands]float64
	burst     [arch.NumOperands]float64
}

// NewContext builds the evaluation context of layer l on design d,
// precomputing every mapping-independent factor of the cost tree.
func NewContext(d arch.Design, l workload.Layer) *EvalContext {
	c := &EvalContext{l: l, kind: l.Kind}
	c.dims = mapping.Dims(l)
	macs := 1.0
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		macs *= float64(c.dims[dim])
	}
	c.macs = macs
	for t := mapping.Tensor(0); t < mapping.NumTensors; t++ {
		c.sizeB[t] = float64(mapping.PaddedTensorElems(l, c.dims, t)) * workload.BytesPerElem
		for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
			if mapping.Indexes(c.kind, t, dim) {
				c.idxMask[t] |= 1 << uint(dim)
			}
		}
	}
	for _, dim := range mapping.ReductionDims(c.kind) {
		c.redMask |= 1 << uint(dim)
	}
	c.bindDesign(d)
	return c
}

// bindDesign (re)derives the design-dependent constants and invalidates the
// fill memo (its NoC-sharing and burst terms embed the old design).
func (c *EvalContext) bindDesign(d arch.Design) {
	c.d = d
	c.bpc = d.BytesPerCycle()
	c.nocW = float64(d.NoCWidthBits)
	c.l2Bytes = int64(d.L2Bytes())
	c.fillOK = false
}

// Rebind returns a context for the same layer on a different design,
// reusing every layer-derived precompute (the dirty-subtree rule at context
// granularity: a design edit never invalidates dims, MAC counts, tensor
// sizes, or index masks). The receiver is left untouched.
func (c *EvalContext) Rebind(d arch.Design) *EvalContext {
	nc := *c
	nc.bindDesign(d)
	return &nc
}

// Design returns the bound design.
func (c *EvalContext) Design() arch.Design { return c.d }

// Layer returns the bound layer.
func (c *EvalContext) Layer() workload.Layer { return c.l }

// prodIrr is Evaluate's prodIrrelevant: the product of level-lv factors of
// the dimensions NOT indexing tensor t, in ascending dimension order (the
// multiplication order fixes the float rounding and must not change).
func (c *EvalContext) prodIrr(m *mapping.Mapping, t mapping.Tensor, lv mapping.Level) float64 {
	p := 1.0
	mask := c.idxMask[t]
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		if mask&(1<<uint(dim)) == 0 {
			p *= float64(m.Factor(dim, lv))
		}
	}
	return p
}

// psumProd is Evaluate's psumProd: the product of level-lv factors of the
// reduction dimensions, in ascending dimension order (ReductionDims lists
// them ascending, so the rounding matches the original closure).
func (c *EvalContext) psumProd(m *mapping.Mapping, lv mapping.Level) float64 {
	p := 1.0
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		if c.redMask&(1<<uint(dim)) != 0 {
			p *= float64(m.Factor(dim, lv))
		}
	}
	return p
}

// refetchDRAM is the off-chip refetch factor of tensor t under mapping m.
func (c *EvalContext) refetchDRAM(m *mapping.Mapping, t mapping.Tensor) float64 {
	if t == mapping.TO {
		if m.DRAMStationary == mapping.TO {
			return 1
		}
		return c.psumProd(m, mapping.LvlDRAM)
	}
	if t == m.DRAMStationary {
		return 1
	}
	return c.prodIrr(m, t, mapping.LvlDRAM)
}

// refetchNoC is the L2-to-PE refetch factor of tensor t under mapping m.
func (c *EvalContext) refetchNoC(m *mapping.Mapping, t mapping.Tensor) float64 {
	if t == mapping.TO {
		if m.NoCStationary == mapping.TO {
			return 1
		}
		return c.psumProd(m, mapping.LvlL2)
	}
	if t == m.NoCStationary {
		return 1
	}
	return c.prodIrr(m, t, mapping.LvlL2)
}

// burstBytes is the contiguous DMA burst size of tensor t under mapping m,
// before the one-element clamp.
func (c *EvalContext) burstBytes(m *mapping.Mapping, t mapping.Tensor) float64 {
	switch t {
	case mapping.TW:
		return float64(m.TileThrough(mapping.DimC, mapping.LvlL2)) *
			float64(m.TileThrough(mapping.DimS, mapping.LvlL2)) * workload.BytesPerElem
	case mapping.TI:
		x := (float64(m.TileThrough(mapping.DimX, mapping.LvlL2))-1)*float64(c.l.Stride) +
			float64(m.TileThrough(mapping.DimS, mapping.LvlL2))
		return x * workload.BytesPerElem
	default:
		return float64(m.TileThrough(mapping.DimX, mapping.LvlL2)) * workload.BytesPerElem
	}
}

// computeFill populates the fill memo for mapping m's factor matrix. After
// it returns, c.fill.ok reports whether any ordering of this fill can be
// valid (validity is stationary-independent: structural coverage, PE and
// buffer fits, and NoC time-sharing demand all ignore the stationary
// tensors).
func (c *EvalContext) computeFill(m *mapping.Mapping) {
	fs := &c.fill
	fs.f = m.F
	fs.ok = false
	c.fillOK = true

	// Structural validity: factors must cover padded dims exactly.
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		prod := 1
		for lv := mapping.Level(0); lv < mapping.NumLevels; lv++ {
			prod *= m.Factor(dim, lv)
		}
		if prod != c.dims[dim] {
			return
		}
	}
	pes := m.SpatialPEs()
	if pes > c.d.PEs {
		return
	}
	if mapping.RFTileBytes(c.l, m) > int64(c.d.L1Bytes) {
		return
	}
	if mapping.L2TileBytes(c.l, m) > c.l2Bytes {
		return
	}
	fs.pes = pes
	fs.tcomp = c.macs / float64(pes)

	for t := mapping.Tensor(0); t < mapping.TO; t++ {
		fs.prodIrrDRAM[t] = c.prodIrr(m, t, mapping.LvlDRAM)
		fs.prodIrrL2[t] = c.prodIrr(m, t, mapping.LvlL2)
	}
	fs.psumDRAM = c.psumProd(m, mapping.LvlDRAM)
	fs.psumL2 = c.psumProd(m, mapping.LvlL2)

	for _, op := range arch.Operands {
		t := OperandTensor(op)
		groups := 1
		mask := c.idxMask[t]
		for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
			if mask&(1<<uint(dim)) != 0 {
				groups *= m.Factor(dim, mapping.LvlSpatial)
			}
		}
		shares := (groups + c.d.PhysLinks[op] - 1) / c.d.PhysLinks[op]
		if shares < 1 {
			shares = 1
		}
		if shares > c.d.VirtLinks[op] {
			return
		}
		bpg := float64(mapping.RFTileElems(c.l, m, t)) * workload.BytesPerElem
		fs.groupsBpg[op] = float64(groups) * bpg
		fs.sharesF[op] = float64(shares)
		fs.perGroup[op] = math.Ceil(bpg * 8 / c.nocW)
		burst := c.burstBytes(m, t)
		if burst < workload.BytesPerElem {
			burst = workload.BytesPerElem
		}
		fs.burst[op] = burst
	}
	fs.ok = true
}

// EvaluateCycles is the Tier-1 fast path: the layer latency of mapping m in
// cycles and whether the mapping is valid on the bound design. For a valid
// mapping the cycles are bit-identical to Evaluate(d, l, m).Cycles; for an
// invalid one it reports (0, false) without computing a latency (every
// search-loop caller gates on ok before reading the cycles). It allocates
// nothing.
func (c *EvalContext) EvaluateCycles(m *mapping.Mapping) (float64, bool) {
	if !c.fillOK || c.fill.f != m.F {
		c.computeFill(m)
	}
	fs := &c.fill
	if !fs.ok {
		return 0, false
	}

	// Ordering-dependent refetch selection: the stationary tensors only
	// pick between a precomputed product and 1.
	refDRAMW, refDRAMI, psumDRAM := fs.prodIrrDRAM[mapping.TW], fs.prodIrrDRAM[mapping.TI], fs.psumDRAM
	switch m.DRAMStationary {
	case mapping.TW:
		refDRAMW = 1
	case mapping.TI:
		refDRAMI = 1
	default:
		psumDRAM = 1
	}
	refNoCW, refNoCI, refNoCO := fs.prodIrrL2[mapping.TW], fs.prodIrrL2[mapping.TI], fs.psumL2
	switch m.NoCStationary {
	case mapping.TW:
		refNoCW = 1
	case mapping.TI:
		refNoCI = 1
	default:
		refNoCO = 1
	}

	// Traffic, mirroring Evaluate's expressions (and their association)
	// exactly: off = size*refDRAM, noc = (size*refDRAM)*refNoC.
	var off, noc [arch.NumOperands]float64
	psumNoC := psumDRAM * refNoCO
	off[arch.OpW] = c.sizeB[mapping.TW] * refDRAMW
	off[arch.OpI] = c.sizeB[mapping.TI] * refDRAMI
	off[arch.OpOWr] = c.sizeB[mapping.TO] * psumDRAM
	off[arch.OpORd] = c.sizeB[mapping.TO] * (psumDRAM - 1)
	noc[arch.OpW] = off[arch.OpW] * refNoCW
	noc[arch.OpI] = off[arch.OpI] * refNoCI
	noc[arch.OpOWr] = c.sizeB[mapping.TO] * psumNoC
	noc[arch.OpORd] = c.sizeB[mapping.TO] * (psumNoC - 1)

	cycles := fs.tcomp
	for _, op := range arch.Operands {
		if noc[op] <= 0 {
			continue
		}
		loads := noc[op] / fs.groupsBpg[op]
		t := loads * fs.sharesF[op] * fs.perGroup[op]
		if t > cycles {
			cycles = t
		}
	}
	tdma := 0.0
	for _, op := range arch.Operands {
		bytes := off[op]
		if bytes <= 0 {
			continue
		}
		tdma += bytes/c.bpc + bytes/fs.burst[op]*dmaBurstSetupCycles
	}
	if tdma > cycles {
		cycles = tdma
	}
	return cycles, true
}

// Evaluate is the Tier-2 full evaluation: the complete Breakdown of mapping
// m on the bound (design, layer) pair. It is an exact port of the
// package-level Evaluate and shares the refetch/burst helpers with Tier 1.
func (c *EvalContext) Evaluate(m mapping.Mapping) Breakdown {
	var b Breakdown
	d := c.d

	// Structural validity: factors must cover padded dims exactly.
	for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
		prod := 1
		for lv := mapping.Level(0); lv < mapping.NumLevels; lv++ {
			prod *= m.Factor(dim, lv)
		}
		if prod != c.dims[dim] {
			b.Incompat = "tiling does not cover loop extent"
			b.IncompatCount = 1
			return b
		}
	}
	b.PEsUsed = m.SpatialPEs()
	if b.PEsUsed > d.PEs {
		b.Incompat = "spatial tiling exceeds PE count"
		b.IncompatCount = 1
		return b
	}
	if rf := mapping.RFTileBytes(c.l, &m); rf > int64(d.L1Bytes) {
		b.Incompat = "RF tile exceeds L1 capacity"
		b.IncompatCount = 1
		return b
	}
	if l2 := mapping.L2TileBytes(c.l, &m); l2 > c.l2Bytes {
		b.Incompat = "L2 tile exceeds scratchpad capacity"
		b.IncompatCount = 1
		return b
	}

	// Computation time: padded MACs over occupied PEs.
	b.MACs = c.macs
	b.TComp = c.macs / float64(b.PEsUsed)

	// Off-chip traffic (bytes) per operand.
	psumDRAM := c.refetchDRAM(&m, mapping.TO)
	b.DataOffchip[arch.OpW] = c.sizeB[mapping.TW] * c.refetchDRAM(&m, mapping.TW)
	b.DataOffchip[arch.OpI] = c.sizeB[mapping.TI] * c.refetchDRAM(&m, mapping.TI)
	b.DataOffchip[arch.OpOWr] = c.sizeB[mapping.TO] * psumDRAM
	b.DataOffchip[arch.OpORd] = c.sizeB[mapping.TO] * (psumDRAM - 1)

	// NoC traffic (bytes) per operand.
	psumNoC := psumDRAM * c.refetchNoC(&m, mapping.TO)
	b.DataNoC[arch.OpW] = c.sizeB[mapping.TW] * c.refetchDRAM(&m, mapping.TW) * c.refetchNoC(&m, mapping.TW)
	b.DataNoC[arch.OpI] = c.sizeB[mapping.TI] * c.refetchDRAM(&m, mapping.TI) * c.refetchNoC(&m, mapping.TI)
	b.DataNoC[arch.OpOWr] = c.sizeB[mapping.TO] * psumNoC
	b.DataNoC[arch.OpORd] = c.sizeB[mapping.TO] * (psumNoC - 1)

	// NoC geometry and per-operand communication time.
	for _, op := range arch.Operands {
		t := OperandTensor(op)
		groups := 1
		mask := c.idxMask[t]
		for dim := mapping.Dim(0); dim < mapping.NumDims; dim++ {
			if mask&(1<<uint(dim)) != 0 {
				groups *= m.Factor(dim, mapping.LvlSpatial)
			}
		}
		b.NoCGroups[op] = groups
		bpg := float64(mapping.RFTileElems(c.l, &m, t)) * workload.BytesPerElem
		b.NoCBytesPerGroup[op] = bpg

		shares := (groups + d.PhysLinks[op] - 1) / d.PhysLinks[op]
		if shares < 1 {
			shares = 1
		}
		b.VirtNeeded[op] = shares
		if shares > d.VirtLinks[op] {
			// Record every short NoC rather than bailing at the
			// first, so mitigation can target all of them and
			// partial fixes count as constraint-budget progress.
			if b.Incompat != "" {
				b.Incompat += "; "
			}
			b.Incompat += "spatial parallelism needs more time-shared unicast than " + op.String() + " NoC supports"
			b.IncompatCount++
		}

		if b.DataNoC[op] <= 0 {
			continue
		}
		loads := b.DataNoC[op] / (float64(groups) * bpg)
		perGroupCycles := math.Ceil(bpg * 8 / c.nocW)
		b.TNoC[op] = loads * float64(shares) * perGroupCycles
	}

	// DMA time: additive over operands, with per-burst setup overhead for
	// non-contiguous accesses.
	for _, op := range arch.Operands {
		bytes := b.DataOffchip[op]
		if bytes <= 0 {
			continue
		}
		burst := c.burstBytes(&m, OperandTensor(op))
		if burst < workload.BytesPerElem {
			burst = workload.BytesPerElem
		}
		b.TDMAOp[op] = bytes/c.bpc + bytes/burst*dmaBurstSetupCycles
		b.TDMA += b.TDMAOp[op]
	}

	// Buffer allocations and remaining reuse.
	for t := mapping.Tensor(0); t < mapping.NumTensors; t++ {
		b.DataRF[t] = float64(mapping.RFTileElems(c.l, &m, t)) * workload.BytesPerElem
		b.DataSPM[t] = float64(mapping.L2TileElems(c.l, &m, t)) * workload.BytesPerElem
		b.ReuseAvailRF[t] = c.refetchNoC(&m, t)
		b.ReuseAvailSPM[t] = c.refetchDRAM(&m, t)
	}

	b.Cycles = b.TComp
	for _, op := range arch.Operands {
		if b.TNoC[op] > b.Cycles {
			b.Cycles = b.TNoC[op]
		}
	}
	if b.TDMA > b.Cycles {
		b.Cycles = b.TDMA
	}
	b.Valid = b.IncompatCount == 0
	return b
}

// DeltaEvaluate is the incremental (dirty-subtree) re-evaluation: the
// Breakdown of mapping m on the bound design, recomputed from a previous
// Breakdown of the SAME (layer shape, mapping) pair on a possibly different
// design. Only the factors downstream of design parameters are recomputed —
// capacity and NoC-sharing validity, VirtNeeded/TNoC (links, NoC width),
// and TDMA (off-chip bandwidth) — while the design-independent subtrees
// (MACs, TComp, all traffic volumes, NoC group geometry, buffer
// allocations, remaining reuse) are carried over from prev. The result is
// bit-identical to Evaluate(m).
//
// A prev with MACs == 0 was cut short by a validity early-return and lacks
// the carried subtrees, so it falls back to the full evaluation (as does a
// nil prev).
func (c *EvalContext) DeltaEvaluate(prev *Breakdown, m mapping.Mapping) Breakdown {
	if prev == nil || prev.MACs == 0 {
		return c.Evaluate(m)
	}
	var b Breakdown
	d := c.d

	// prev.MACs > 0 proves the fill covers the loop extents (structural
	// validity is design-independent); the capacity checks re-run against
	// this design's thresholds, reproducing Evaluate's early-return shapes.
	b.PEsUsed = prev.PEsUsed
	if b.PEsUsed > d.PEs {
		b.Incompat = "spatial tiling exceeds PE count"
		b.IncompatCount = 1
		return b
	}
	if rf := mapping.RFTileBytes(c.l, &m); rf > int64(d.L1Bytes) {
		b.Incompat = "RF tile exceeds L1 capacity"
		b.IncompatCount = 1
		return b
	}
	if l2 := mapping.L2TileBytes(c.l, &m); l2 > c.l2Bytes {
		b.Incompat = "L2 tile exceeds scratchpad capacity"
		b.IncompatCount = 1
		return b
	}

	// Design-independent subtrees: carried over unchanged.
	b.MACs, b.TComp = prev.MACs, prev.TComp
	b.DataOffchip, b.DataNoC = prev.DataOffchip, prev.DataNoC
	b.NoCGroups, b.NoCBytesPerGroup = prev.NoCGroups, prev.NoCBytesPerGroup
	b.DataRF, b.DataSPM = prev.DataRF, prev.DataSPM
	b.ReuseAvailRF, b.ReuseAvailSPM = prev.ReuseAvailRF, prev.ReuseAvailSPM

	// NoC sharing and communication time: downstream of PhysLinks,
	// VirtLinks, and NoCWidthBits.
	for _, op := range arch.Operands {
		groups := b.NoCGroups[op]
		bpg := b.NoCBytesPerGroup[op]
		shares := (groups + d.PhysLinks[op] - 1) / d.PhysLinks[op]
		if shares < 1 {
			shares = 1
		}
		b.VirtNeeded[op] = shares
		if shares > d.VirtLinks[op] {
			if b.Incompat != "" {
				b.Incompat += "; "
			}
			b.Incompat += "spatial parallelism needs more time-shared unicast than " + op.String() + " NoC supports"
			b.IncompatCount++
		}

		if b.DataNoC[op] <= 0 {
			continue
		}
		loads := b.DataNoC[op] / (float64(groups) * bpg)
		perGroupCycles := math.Ceil(bpg * 8 / c.nocW)
		b.TNoC[op] = loads * float64(shares) * perGroupCycles
	}

	// DMA time: downstream of the off-chip bandwidth (bytes/cycle); the
	// burst sizes depend only on the mapping.
	for _, op := range arch.Operands {
		bytes := b.DataOffchip[op]
		if bytes <= 0 {
			continue
		}
		burst := c.burstBytes(&m, OperandTensor(op))
		if burst < workload.BytesPerElem {
			burst = workload.BytesPerElem
		}
		b.TDMAOp[op] = bytes/c.bpc + bytes/burst*dmaBurstSetupCycles
		b.TDMA += b.TDMAOp[op]
	}

	b.Cycles = b.TComp
	for _, op := range arch.Operands {
		if b.TNoC[op] > b.Cycles {
			b.Cycles = b.TNoC[op]
		}
	}
	if b.TDMA > b.Cycles {
		b.Cycles = b.TDMA
	}
	b.Valid = b.IncompatCount == 0
	return b
}

// Cost adapts the Tier-1 fast path into the mapping.Cost callback. The
// returned closure shares the context's fill memo and is therefore not safe
// for concurrent use.
func (c *EvalContext) Cost() mapping.Cost {
	return c.EvaluateCycles
}

// Valid adapts the Tier-1 fast path into a validity-only predicate (the
// pruned enumerator's per-spatial-base probe). Like Cost, the closure is
// not safe for concurrent use.
func (c *EvalContext) Valid() func(mapping.Mapping) bool {
	return func(m mapping.Mapping) bool {
		_, ok := c.EvaluateCycles(&m)
		return ok
	}
}
