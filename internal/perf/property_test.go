package perf

import (
	"math/rand"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// TestResourceGrowthNeverHurtsProperty is the monotonicity invariant the
// whole bottleneck-mitigation scheme rests on: for a FIXED mapping, growing
// any single hardware resource never increases the layer latency. (Growing
// buffers can change which mappings are legal, but never the cost of a
// mapping that was already legal.)
func TestResourceGrowthNeverHurtsProperty(t *testing.T) {
	layers := []workload.Layer{
		{Kind: workload.Conv, Name: "c", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1},
		{Kind: workload.Gemm, Name: "g", K: 768, C: 768, Y: 1, X: 384, R: 1, S: 1, Stride: 1, Mult: 1},
		{Kind: workload.DWConv, Name: "d", K: 96, C: 1, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Mult: 1},
	}
	grow := []struct {
		name string
		mut  func(*arch.Design)
	}{
		{"PEs", func(d *arch.Design) { d.PEs *= 2 }},
		{"L1", func(d *arch.Design) { d.L1Bytes *= 2 }},
		{"L2", func(d *arch.Design) { d.L2KB *= 2 }},
		{"BW", func(d *arch.Design) { d.OffchipMBps *= 2 }},
		{"width", func(d *arch.Design) { d.NoCWidthBits *= 2 }},
		{"links", func(d *arch.Design) {
			for op := range d.PhysLinks {
				d.PhysLinks[op] *= 2
			}
		}},
		{"virt", func(d *arch.Design) {
			for op := range d.VirtLinks {
				d.VirtLinks[op] *= 8
			}
		}},
	}
	rng := rand.New(rand.NewSource(21))
	base := testDesign()
	for _, l := range layers {
		dims := mapping.Dims(l)
		checked := 0
		for trial := 0; trial < 1500 && checked < 60; trial++ {
			m := mapping.Random(dims, rng)
			before := Evaluate(base, l, m)
			if !before.Valid {
				continue
			}
			checked++
			for _, g := range grow {
				d := base
				g.mut(&d)
				after := Evaluate(d, l, m)
				if !after.Valid {
					t.Fatalf("%s/%s: growth invalidated a valid mapping", l.Name, g.name)
				}
				if after.Cycles > before.Cycles*(1+1e-9) {
					t.Fatalf("%s: growing %s increased latency %v -> %v (mapping %v)",
						l.Name, g.name, before.Cycles, after.Cycles, m)
				}
			}
		}
		if checked < 15 {
			t.Fatalf("%s: only %d valid samples", l.Name, checked)
		}
	}
}

// TestTrafficNonNegativeProperty: no operand ever reports negative traffic
// or time under random mappings.
func TestTrafficNonNegativeProperty(t *testing.T) {
	l := testLayer()
	d := testDesign()
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 500; i++ {
		b := Evaluate(d, l, mapping.Random(dims, rng))
		if !b.Valid {
			continue
		}
		for _, op := range arch.Operands {
			if b.DataOffchip[op] < 0 || b.DataNoC[op] < 0 || b.TNoC[op] < 0 || b.TDMAOp[op] < 0 {
				t.Fatalf("negative quantity for %v: %+v", op, b)
			}
		}
		if b.TComp <= 0 || b.Cycles <= 0 {
			t.Fatal("non-positive time")
		}
	}
}
