package perf

import (
	"math/rand"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// TestResourceGrowthNeverHurtsProperty is the monotonicity invariant the
// whole bottleneck-mitigation scheme rests on: for a FIXED mapping, growing
// any single hardware resource never increases the layer latency. (Growing
// buffers can change which mappings are legal, but never the cost of a
// mapping that was already legal.)
func TestResourceGrowthNeverHurtsProperty(t *testing.T) {
	layers := []workload.Layer{
		{Kind: workload.Conv, Name: "c", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1},
		{Kind: workload.Gemm, Name: "g", K: 768, C: 768, Y: 1, X: 384, R: 1, S: 1, Stride: 1, Mult: 1},
		{Kind: workload.DWConv, Name: "d", K: 96, C: 1, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Mult: 1},
	}
	grow := []struct {
		name string
		mut  func(*arch.Design)
	}{
		{"PEs", func(d *arch.Design) { d.PEs *= 2 }},
		{"L1", func(d *arch.Design) { d.L1Bytes *= 2 }},
		{"L2", func(d *arch.Design) { d.L2KB *= 2 }},
		{"BW", func(d *arch.Design) { d.OffchipMBps *= 2 }},
		{"width", func(d *arch.Design) { d.NoCWidthBits *= 2 }},
		{"links", func(d *arch.Design) {
			for op := range d.PhysLinks {
				d.PhysLinks[op] *= 2
			}
		}},
		{"virt", func(d *arch.Design) {
			for op := range d.VirtLinks {
				d.VirtLinks[op] *= 8
			}
		}},
	}
	rng := rand.New(rand.NewSource(21))
	base := testDesign()
	for _, l := range layers {
		dims := mapping.Dims(l)
		checked := 0
		for trial := 0; trial < 1500 && checked < 60; trial++ {
			m := mapping.Random(dims, rng)
			before := Evaluate(base, l, m)
			if !before.Valid {
				continue
			}
			checked++
			for _, g := range grow {
				d := base
				g.mut(&d)
				after := Evaluate(d, l, m)
				if !after.Valid {
					t.Fatalf("%s/%s: growth invalidated a valid mapping", l.Name, g.name)
				}
				if after.Cycles > before.Cycles*(1+1e-9) {
					t.Fatalf("%s: growing %s increased latency %v -> %v (mapping %v)",
						l.Name, g.name, before.Cycles, after.Cycles, m)
				}
			}
		}
		if checked < 15 {
			t.Fatalf("%s: only %d valid samples", l.Name, checked)
		}
	}
}

// randDesign draws a design across the whole modeling envelope — tiny PEs to
// large arrays, starved to roomy buffers, narrow to wide NoCs — so the
// differential tests cover both validity regimes, not just designs that
// accept most mappings.
func randDesign(rng *rand.Rand) arch.Design {
	d := arch.Design{
		PEs:          1 << (4 + rng.Intn(6)),
		L1Bytes:      64 << rng.Intn(6),
		L2KB:         64 << rng.Intn(5),
		OffchipMBps:  []int{1024, 4096, 8192, 25600}[rng.Intn(4)],
		NoCWidthBits: 16 * (1 + rng.Intn(8)),
		FreqMHz:      []int{200, 500, 1000}[rng.Intn(3)],
	}
	for op := range d.PhysLinks {
		d.PhysLinks[op] = 1 << rng.Intn(7)
		d.VirtLinks[op] = []int{1, 8, 64, 512}[rng.Intn(4)]
	}
	return d
}

// propertyLayers are the operator shapes the differential properties sweep:
// all three kinds, including a strided conv (halo tiles) and a strided
// depthwise (channel-tied inputs).
func propertyLayers() []workload.Layer {
	return []workload.Layer{
		{Kind: workload.Conv, Name: "c3", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1},
		{Kind: workload.Conv, Name: "c7s2", K: 64, C: 3, Y: 112, X: 112, R: 7, S: 7, Stride: 2, Mult: 1},
		{Kind: workload.Gemm, Name: "g", K: 768, C: 768, Y: 1, X: 384, R: 1, S: 1, Stride: 1, Mult: 1},
		{Kind: workload.DWConv, Name: "dw", K: 96, C: 1, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Mult: 1},
		{Kind: workload.DWConv, Name: "dws2", K: 144, C: 1, Y: 28, X: 28, R: 3, S: 3, Stride: 2, Mult: 1},
	}
}

// TestFastPathMatchesEvaluateProperty is the two-tier cycle-exactness
// contract: over randomized designs x layers x mappings, the Tier-1
// EvaluateCycles must agree with the Tier-2 full Breakdown on validity
// always, and bit-exactly (==, no epsilon) on cycles whenever valid. Each
// fill is swept through all nine stationary orderings on one shared context
// so the fill memo's hit path is exercised as hard as the enumerator does,
// and corrupted fills check the invalid side of the memo.
func TestFastPathMatchesEvaluateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, l := range propertyLayers() {
		dims := mapping.Dims(l)
		valid, invalid := 0, 0
		for di := 0; di < 12; di++ {
			d := randDesign(rng)
			ctx := NewContext(d, l)
			for trial := 0; trial < 60; trial++ {
				var m mapping.Mapping
				switch {
				case trial == 0:
					// Always-valid anchor: every design accepts the
					// all-sequential mapping, so both sides of the
					// comparison are exercised even on starved designs.
					m = sequentialMapping(l)
				case trial%5 == 4:
					// Structurally invalid mutant: break loop coverage.
					m = mapping.Random(dims, rng)
					m.F[mapping.Dim(rng.Intn(int(mapping.NumDims)))][mapping.LvlDRAM] += 1 + rng.Intn(3)
				default:
					m = mapping.Random(dims, rng)
				}
				for ds := mapping.Tensor(0); ds < mapping.NumTensors; ds++ {
					for ns := mapping.Tensor(0); ns < mapping.NumTensors; ns++ {
						m.DRAMStationary, m.NoCStationary = ds, ns
						got, ok := ctx.EvaluateCycles(&m)
						want := Evaluate(d, l, m)
						if ok != want.Valid {
							t.Fatalf("%s: fast path ok=%v, Evaluate valid=%v (%q) for %v on %+v",
								l.Name, ok, want.Valid, want.Incompat, m, d)
						}
						if !ok {
							invalid++
							continue
						}
						valid++
						if got != want.Cycles {
							t.Fatalf("%s: fast path %v != Evaluate %v (diff %g) for %v on %+v",
								l.Name, got, want.Cycles, got-want.Cycles, m, d)
						}
					}
				}
			}
		}
		if valid < 100 || invalid < 100 {
			t.Fatalf("%s: unbalanced sample (%d valid, %d invalid)", l.Name, valid, invalid)
		}
	}
}

// TestDeltaEvaluateMatchesEvaluateProperty: re-evaluating a known mapping on
// a mutated design through the dirty-subtree path must reproduce the full
// evaluation bit-for-bit — including the early-return shapes when the new
// design rejects the mapping, and the fallback when prev carries no subtrees.
func TestDeltaEvaluateMatchesEvaluateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, l := range propertyLayers() {
		dims := mapping.Dims(l)
		carried := 0
		for pair := 0; pair < 40; pair++ {
			d1, d2 := randDesign(rng), randDesign(rng)
			ctx1 := NewContext(d1, l)
			ctx2 := ctx1.Rebind(d2)
			for trial := 0; trial < 25; trial++ {
				var m mapping.Mapping
				switch {
				case trial == 0:
					m = sequentialMapping(l) // always carries subtrees
				case trial%7 == 6:
					m = mapping.Random(dims, rng)
					m.F[mapping.Dim(rng.Intn(int(mapping.NumDims)))][mapping.LvlRF] += 1
				default:
					m = mapping.Random(dims, rng)
				}
				prev := ctx1.Evaluate(m)
				want := ctx2.Evaluate(m)
				if got := ctx2.DeltaEvaluate(&prev, m); got != want {
					t.Fatalf("%s: DeltaEvaluate diverged from Evaluate\n got: %+v\nwant: %+v\nprev: %+v",
						l.Name, got, want, prev)
				}
				if got := ctx2.DeltaEvaluate(nil, m); got != want {
					t.Fatalf("%s: nil-prev DeltaEvaluate diverged from Evaluate", l.Name)
				}
				if prev.MACs > 0 {
					carried++
				}
			}
		}
		if carried < 40 {
			t.Fatalf("%s: only %d delta evaluations carried subtrees", l.Name, carried)
		}
	}
}

// TestTrafficNonNegativeProperty: no operand ever reports negative traffic
// or time under random mappings.
func TestTrafficNonNegativeProperty(t *testing.T) {
	l := testLayer()
	d := testDesign()
	dims := mapping.Dims(l)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 500; i++ {
		b := Evaluate(d, l, mapping.Random(dims, rng))
		if !b.Valid {
			continue
		}
		for _, op := range arch.Operands {
			if b.DataOffchip[op] < 0 || b.DataNoC[op] < 0 || b.TNoC[op] < 0 || b.TDMAOp[op] < 0 {
				t.Fatalf("negative quantity for %v: %+v", op, b)
			}
		}
		if b.TComp <= 0 || b.Cycles <= 0 {
			t.Fatal("non-positive time")
		}
	}
}
