package perf

import (
	"testing"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// Edge-case coverage: prime-sized dimensions (smooth padding), 1-D
// convolutions, large GEMMs, and the burst-overhead model.

func TestPrimeDimensionsPadAndEvaluate(t *testing.T) {
	// ViT's sequence length 197 and wav2vec2's 551 frames are prime-ish;
	// the padded model must still evaluate consistently.
	d := testDesign()
	layers := []workload.Layer{
		{Kind: workload.Gemm, Name: "vit", K: 197, C: 768, Y: 1, X: 197, R: 1, S: 1, Stride: 1, Mult: 1},
		{Kind: workload.Gemm, Name: "w2v", K: 551, C: 768, Y: 1, X: 551, R: 1, S: 1, Stride: 1, Mult: 1},
	}
	for _, l := range layers {
		dims := mapping.Dims(l)
		for _, dim := range dims {
			if mapping.Smooth(dim) != dim {
				t.Fatalf("%s: dim %d not smooth after padding", l.Name, dim)
			}
		}
		b := Evaluate(d, l, mapping.FixedOutputStationary(l, d.PEs, d.L1Bytes, d.L2Bytes()))
		if !b.Valid {
			t.Fatalf("%s: %s", l.Name, b.Incompat)
		}
		if b.MACs < float64(l.MACs()) {
			t.Fatalf("%s: padded MACs %v < real %d", l.Name, b.MACs, l.MACs())
		}
		// Padding waste is bounded (7-smooth numbers are dense).
		if b.MACs > 1.6*float64(l.MACs()) {
			t.Fatalf("%s: padding waste too high: %v vs %d", l.Name, b.MACs, l.MACs())
		}
	}
}

func TestOneDConvolution(t *testing.T) {
	// wav2vec2 feature extractor: 1-D conv with the time axis on X.
	l := workload.Layer{Kind: workload.Conv, Name: "feat", K: 512, C: 512, Y: 1, X: 551, R: 1, S: 3, Stride: 2, Mult: 1}
	d := testDesign()
	b := Evaluate(d, l, mapping.FixedOutputStationary(l, d.PEs, d.L1Bytes, d.L2Bytes()))
	if !b.Valid {
		t.Fatal(b.Incompat)
	}
	if b.Cycles <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestBurstOverheadShrinksWithLargerTiles(t *testing.T) {
	// Larger contiguous L2 tiles mean fewer DMA bursts and lower
	// fixed overhead — the dMazeRunner non-contiguous-access effect.
	l := testLayer()
	d := testDesign()
	dims := mapping.Dims(l)

	small := sequentialMapping(l)
	big := sequentialMapping(l)
	big.F[mapping.DimX][mapping.LvlL2] = dims[mapping.DimX]
	big.F[mapping.DimX][mapping.LvlDRAM] = 1

	bs := Evaluate(d, l, small)
	bb := Evaluate(d, l, big)
	if !bs.Valid || !bb.Valid {
		t.Fatal("mappings invalid")
	}
	// Same off-chip volume for the input, strictly less DMA time with
	// the contiguous tile.
	if bb.TDMAOp[arch.OpI] >= bs.TDMAOp[arch.OpI] {
		t.Fatalf("contiguous tiles did not reduce I DMA time: %v vs %v",
			bb.TDMAOp[arch.OpI], bs.TDMAOp[arch.OpI])
	}
}

func TestGEMMNoCGroupsFollowSpatialSplit(t *testing.T) {
	l := workload.Layer{Kind: workload.Gemm, Name: "g", K: 64, C: 64, Y: 1, X: 8, R: 1, S: 1, Stride: 1, Mult: 1}
	d := testDesign()
	m := sequentialMapping(l)
	dims := mapping.Dims(l)
	m.F[mapping.DimK][mapping.LvlSpatial] = 8
	m.F[mapping.DimK][mapping.LvlDRAM] = dims[mapping.DimK] / 8
	m.F[mapping.DimX][mapping.LvlSpatial] = 4
	m.F[mapping.DimX][mapping.LvlDRAM] = dims[mapping.DimX] / 4
	b := Evaluate(d, l, m)
	if !b.Valid {
		t.Fatal(b.Incompat)
	}
	// W indexed by K,C: 8 groups. I indexed by C,X: 4 groups. O: 32.
	if b.NoCGroups[arch.OpW] != 8 {
		t.Fatalf("W groups = %d, want 8", b.NoCGroups[arch.OpW])
	}
	if b.NoCGroups[arch.OpI] != 4 {
		t.Fatalf("I groups = %d, want 4", b.NoCGroups[arch.OpI])
	}
	if b.NoCGroups[arch.OpOWr] != 32 {
		t.Fatalf("O groups = %d, want 32", b.NoCGroups[arch.OpOWr])
	}
}

func TestDepthwiseGroupsUseK(t *testing.T) {
	l := workload.Layer{Kind: workload.DWConv, Name: "dw", K: 32, C: 1, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Mult: 1}
	d := testDesign()
	m := sequentialMapping(l)
	m.F[mapping.DimK][mapping.LvlSpatial] = 4
	m.F[mapping.DimK][mapping.LvlDRAM] = mapping.Dims(l)[mapping.DimK] / 4
	b := Evaluate(d, l, m)
	if !b.Valid {
		t.Fatal(b.Incompat)
	}
	// Depthwise inputs are indexed by K, so the I NoC also sees 4 groups.
	if b.NoCGroups[arch.OpI] != 4 {
		t.Fatalf("depthwise I groups = %d, want 4", b.NoCGroups[arch.OpI])
	}
}

func TestStationaryTensorReducesItsTraffic(t *testing.T) {
	l := testLayer()
	d := testDesign()
	dims := mapping.Dims(l)
	m := sequentialMapping(l)
	// Split the DRAM level so refetch factors exist.
	m.F[mapping.DimK][mapping.LvlL2] = 4
	m.F[mapping.DimK][mapping.LvlDRAM] = dims[mapping.DimK] / 4

	m.DRAMStationary = mapping.TI
	wi := Evaluate(d, l, m)
	m.DRAMStationary = mapping.TW
	ww := Evaluate(d, l, m)
	if !wi.Valid || !ww.Valid {
		t.Fatal("invalid")
	}
	// K splits at DRAM don't index I, so I is refetched unless
	// stationary; W is indexed by K so its traffic is identical.
	if wi.DataOffchip[arch.OpI] > ww.DataOffchip[arch.OpI] {
		t.Fatalf("I-stationary increased I traffic: %v vs %v",
			wi.DataOffchip[arch.OpI], ww.DataOffchip[arch.OpI])
	}
}
