package perf

import (
	"crypto/sha256"
	"fmt"

	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// modelVersionSeed is the manual half of the cost-model version: bump it
// whenever Evaluate's arithmetic changes in a way the constants below do not
// capture (a new factor in the latency tree, a changed rounding rule, a
// reinterpreted mapping field). Forgetting to bump it after such a change
// would let the persistent evaluation cache (internal/evalcache) serve
// results computed by the old model — see docs/EXTENDING.md.
const modelVersionSeed = "perf-model-v1"

// ModelVersion returns a short content-derived identifier of the cost model:
// a hash over the manual seed above and every constant the latency and
// traffic arithmetic bakes in (DMA burst overhead, element width, and the
// dimensionalities of the mapping space). The persistent evaluation cache
// stamps each record with this string, so changing any of these inputs
// silently retires every entry computed under the old model instead of
// replaying stale costs.
func ModelVersion() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf(
		"%s;dma_burst=%g;bytes_per_elem=%g;dims=%d;levels=%d;tensors=%d",
		modelVersionSeed, dmaBurstSetupCycles, float64(workload.BytesPerElem),
		int(mapping.NumDims), int(mapping.NumLevels), int(mapping.NumTensors))))
	return fmt.Sprintf("%x", sum[:8])
}
