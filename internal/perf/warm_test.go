package perf

import (
	"testing"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// warmTestDesigns returns a few designs with distinct mapping sub-keys, from
// roomy to tight, to exercise warm-starting across near-miss designs.
func warmTestDesigns() []arch.Design {
	roomy := testDesign()
	tightL1 := roomy
	tightL1.L1Bytes = 64
	fewPEs := roomy
	fewPEs.PEs = 64
	slowNoC := roomy
	slowNoC.NoCWidthBits = 16
	for op := range slowNoC.PhysLinks {
		slowNoC.PhysLinks[op] = 4
	}
	return []arch.Design{roomy, tightL1, fewPEs, slowNoC}
}

func warmTestLayers() []workload.Layer {
	return []workload.Layer{
		{Kind: workload.Conv, Name: "c1", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1},
		{Kind: workload.Conv, Name: "c2", K: 128, C: 64, Y: 7, X: 7, R: 3, S: 3, Stride: 2, Mult: 1},
		{Kind: workload.DWConv, Name: "dw", K: 96, C: 96, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Mult: 1},
		{Kind: workload.Gemm, Name: "g", K: 256, C: 512, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Mult: 1},
	}
}

func genCfg(d arch.Design, l workload.Layer, maxN int) mapping.GenConfig {
	return mapping.GenConfig{
		PEs: d.PEs, L1Bytes: d.L1Bytes, L2Bytes: d.L2Bytes(),
		MinN: 10, MaxN: maxN, BaseValid: ValidFn(d, l),
	}
}

// TestWarmEnumerationBitIdentical is the strict warm-start contract: for
// every (design, layer) pair, enumeration with a cost lower bound — seeded
// by an incumbent found on a *different* design — must return exactly the
// cold run's best mapping, cycles, Found flag, and Evaluated count. Only
// CostCalls/LBPruned may differ.
func TestWarmEnumerationBitIdentical(t *testing.T) {
	designs := warmTestDesigns()
	for _, l := range warmTestLayers() {
		// Harvest incumbents: the cold best of each design.
		incumbents := make([]*mapping.Mapping, len(designs))
		colds := make([]mapping.Result, len(designs))
		for i, d := range designs {
			colds[i] = mapping.EnumeratePruned(l, genCfg(d, l, 300), CostFn(d, l))
			if colds[i].Found {
				m := colds[i].Best
				incumbents[i] = &m
			}
		}
		for i, d := range designs {
			for j := range designs {
				if incumbents[j] == nil {
					continue
				}
				cfg := genCfg(d, l, 300)
				cfg.CostLB = CostLowerBoundFn(l)
				cfg.Incumbent = incumbents[j]
				warm := mapping.EnumeratePruned(l, cfg, CostFn(d, l))
				cold := colds[i]
				if warm.Best != cold.Best || warm.Cycles != cold.Cycles ||
					warm.Found != cold.Found || warm.Evaluated != cold.Evaluated {
					t.Errorf("layer %s design %d incumbent-from %d: warm result diverges\ncold: %+v cycles=%v eval=%d\nwarm: %+v cycles=%v eval=%d (fallback=%v)",
						l.Name, i, j, cold.Best, cold.Cycles, cold.Evaluated,
						warm.Best, warm.Cycles, warm.Evaluated, warm.WarmFallback)
				}
				if warm.CostCalls > cold.CostCalls+1 {
					t.Errorf("layer %s design %d: warm made more cost calls (%d) than cold (%d) + probe",
						l.Name, i, warm.CostCalls, cold.CostCalls)
				}
			}
		}
	}
}

// TestWarmSelfIncumbentPrunes checks the intended speedup exists: probing a
// design's own best mapping should prune cost calls without changing the
// result (the exact situation of a near-miss re-search).
func TestWarmSelfIncumbentPrunes(t *testing.T) {
	d := testDesign()
	l := warmTestLayers()[0]
	cold := mapping.EnumeratePruned(l, genCfg(d, l, 300), CostFn(d, l))
	if !cold.Found {
		t.Skip("no mapping found on roomy design")
	}
	m := cold.Best
	cfg := genCfg(d, l, 300)
	cfg.CostLB = CostLowerBoundFn(l)
	cfg.Incumbent = &m
	warm := mapping.EnumeratePruned(l, cfg, CostFn(d, l))
	if warm.Best != cold.Best || warm.Cycles != cold.Cycles || warm.Evaluated != cold.Evaluated {
		t.Fatal("self-incumbent warm run changed the result")
	}
	if warm.LBPruned == 0 {
		t.Fatal("self-incumbent warm run pruned nothing; the bound is not engaging")
	}
}
