package energy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xdse/internal/arch"
)

func baseDesign() arch.Design {
	s := arch.EdgeSpace()
	return s.MustDecode(s.Initial())
}

func TestEstimatePositive(t *testing.T) {
	var m Model
	e := m.Estimate(baseDesign())
	if e.AreaMM2 <= 0 || e.MaxPowerW <= 0 {
		t.Fatalf("non-positive estimates: %+v", e)
	}
	if e.MACPJ <= 0 || e.RFAccessPJ <= 0 || e.L2AccessPJ <= 0 || e.DRAMPerByte <= 0 || e.NoCPerByte <= 0 {
		t.Fatal("non-positive access energies")
	}
}

func TestComponentBreakdownSums(t *testing.T) {
	var m Model
	e := m.Estimate(baseDesign())
	var area, power float64
	for c := Component(0); c < NumComponents; c++ {
		area += e.AreaByComp[c]
		power += e.PowerByComp[c]
	}
	if diff := area - e.AreaMM2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("area breakdown sum %v != total %v", area, e.AreaMM2)
	}
	if diff := power - e.MaxPowerW; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("power breakdown sum %v != total %v", power, e.MaxPowerW)
	}
}

// TestMonotonicity verifies the property the DSE's constraint mitigation
// relies on: growing any resource never shrinks area or power.
func TestMonotonicity(t *testing.T) {
	var m Model
	grow := []struct {
		name string
		mut  func(*arch.Design)
	}{
		{"PEs", func(d *arch.Design) { d.PEs *= 2 }},
		{"L1", func(d *arch.Design) { d.L1Bytes *= 2 }},
		{"L2", func(d *arch.Design) { d.L2KB *= 2 }},
		{"BW", func(d *arch.Design) { d.OffchipMBps *= 2 }},
		{"NoCWidth", func(d *arch.Design) { d.NoCWidthBits *= 2 }},
		{"PhysLinks", func(d *arch.Design) {
			for op := range d.PhysLinks {
				d.PhysLinks[op] *= 2
			}
		}},
	}
	for _, g := range grow {
		d := baseDesign()
		before := m.Estimate(d)
		g.mut(&d)
		after := m.Estimate(d)
		if after.AreaMM2 < before.AreaMM2 {
			t.Errorf("%s: area shrank %v -> %v", g.name, before.AreaMM2, after.AreaMM2)
		}
		if after.MaxPowerW < before.MaxPowerW {
			t.Errorf("%s: power shrank %v -> %v", g.name, before.MaxPowerW, after.MaxPowerW)
		}
	}
}

func TestMaxDesignExceedsEdgeConstraints(t *testing.T) {
	// The largest design must bust the 75 mm^2 / 4 W envelope, otherwise
	// the Table 1 constraints never bind and the constrained-DSE
	// machinery is untested by construction.
	s := arch.EdgeSpace()
	pt := s.Initial()
	for i := range pt {
		pt[i] = len(s.Params[i].Values) - 1
	}
	var m Model
	e := m.Estimate(s.MustDecode(pt))
	if e.AreaMM2 <= 75 {
		t.Errorf("max design area %v <= 75mm2; constraint can never bind", e.AreaMM2)
	}
	if e.MaxPowerW <= 4 {
		t.Errorf("max design power %v <= 4W; constraint can never bind", e.MaxPowerW)
	}
}

func TestMinDesignWithinEdgeConstraints(t *testing.T) {
	s := arch.EdgeSpace()
	var m Model
	e := m.Estimate(s.MustDecode(s.Initial()))
	if e.AreaMM2 >= 75 || e.MaxPowerW >= 4 {
		t.Fatalf("minimal design already violates constraints: %v mm2, %v W", e.AreaMM2, e.MaxPowerW)
	}
}

func TestSRAMEnergyGrowsWithCapacity(t *testing.T) {
	var m Model
	small := baseDesign()
	big := small
	big.L2KB = 4096
	if m.Estimate(big).L2AccessPJ <= m.Estimate(small).L2AccessPJ {
		t.Fatal("larger SRAM must cost more per access (CACTI-like)")
	}
}

func TestEstimateDeterministicProperty(t *testing.T) {
	var m Model
	s := arch.EdgeSpace()
	f := func(seed int64) bool {
		pt := s.Random(rand.New(rand.NewSource(seed)))
		a := m.Estimate(s.MustDecode(pt))
		b := m.Estimate(s.MustDecode(pt))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentString(t *testing.T) {
	names := map[Component]string{
		CompPEs: "PE-array", CompRF: "RFs", CompL2: "L2-SPM",
		CompNoC: "NoCs", CompDMA: "DMA", CompCtrl: "control",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("component %d = %q, want %q", c, c.String(), want)
		}
	}
}
