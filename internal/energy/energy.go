// Package energy estimates silicon area, peak power, and per-access energy
// of accelerator designs, standing in for the Accelergy + CACTI/Aladdin
// stack the paper uses (45 nm technology). Estimates are analytical,
// component-wise, and monotone in each design parameter; the DSE only
// relies on these properties, not on absolute calibration.
package energy

import (
	"math"

	"xdse/internal/arch"
)

// 45 nm component coefficients. Values are of the order published for
// Eyeriss-class designs: a 16-bit MAC near 2 pJ and 2500 um^2, register
// files near 1 pJ/access, SRAM macros around 0.45 um^2/bit with CACTI-like
// sqrt growth of access energy, and DRAM accesses near 80 pJ/byte.
const (
	macEnergyPJ          = 2.0    // per 16-bit MAC
	macAreaMM2           = 0.0025 // per MAC unit
	rfEnergyPJ           = 1.0    // per 2-byte register-file access
	rfAreaMM2PB          = 6.0e-6 // per byte of register file
	sramAreaMM2PKB       = 0.0044 // per KB of shared scratchpad (incl. periphery)
	sramEnergyBasePJ     = 4.0    // per 2-byte access of a 64 KB macro
	dramEnergyPJPB       = 80.0   // per byte moved over the DRAM interface
	nocEnergyPJPB        = 1.0    // per byte moved over one NoC hop
	nocAreaMM2PerBitLink = 1.6e-5 // wiring+buffering per bit of width per link
	dmaAreaMM2           = 0.25   // DMA engine and DRAM PHY share
	ctrlAreaMM2          = 0.5    // global control overhead

	// l2FeedCapBytes bounds the scratchpad's per-cycle read bandwidth
	// (banked ports); peak L2 power is limited by the ports, not by the
	// aggregate width of every NoC link it fans out to.
	l2FeedCapBytes = 128.0
)

// Component identifies an area/power contributor of the design; the
// area/power bottleneck trees used under unmet constraints are built from
// these names.
type Component int

const (
	// CompPEs is the MAC array.
	CompPEs Component = iota
	// CompRF is the per-PE register files.
	CompRF
	// CompL2 is the shared scratchpad.
	CompL2
	// CompNoC is the operand NoCs.
	CompNoC
	// CompDMA is the DMA engine and DRAM interface.
	CompDMA
	// CompCtrl is the global control overhead.
	CompCtrl
	// NumComponents is the component count.
	NumComponents
)

// String names the component.
func (c Component) String() string {
	switch c {
	case CompPEs:
		return "PE-array"
	case CompRF:
		return "RFs"
	case CompL2:
		return "L2-SPM"
	case CompNoC:
		return "NoCs"
	case CompDMA:
		return "DMA"
	case CompCtrl:
		return "control"
	}
	return "component"
}

// Estimate is the area/power report of a design, with per-component
// breakdowns, plus the per-access energy table the performance model uses
// to integrate energy over an execution.
type Estimate struct {
	AreaMM2     float64
	MaxPowerW   float64
	AreaByComp  [NumComponents]float64
	PowerByComp [NumComponents]float64

	// Per-event energies in picojoules.
	MACPJ       float64 // one MAC operation
	RFAccessPJ  float64 // one 2-byte RF access
	L2AccessPJ  float64 // one 2-byte scratchpad access
	DRAMPerByte float64 // one byte over the DRAM interface
	NoCPerByte  float64 // one byte over a NoC
}

// Model estimates area/power/access-energy for designs of the edge
// accelerator template. The zero value is ready to use.
type Model struct{}

// Estimate computes the report for a design.
func (Model) Estimate(d arch.Design) Estimate {
	var e Estimate
	pes := float64(d.PEs)

	// CACTI-like access energy growth with macro capacity.
	l2AccessPJ := sramEnergyBasePJ * math.Sqrt(float64(d.L2KB)/64.0)
	rfAccessPJ := rfEnergyPJ * math.Sqrt(float64(d.L1Bytes)/64.0)
	if rfAccessPJ < 0.3 {
		rfAccessPJ = 0.3
	}

	e.MACPJ = macEnergyPJ
	e.RFAccessPJ = rfAccessPJ
	e.L2AccessPJ = l2AccessPJ
	e.DRAMPerByte = dramEnergyPJPB
	e.NoCPerByte = nocEnergyPJPB

	// Area.
	e.AreaByComp[CompPEs] = pes * macAreaMM2
	e.AreaByComp[CompRF] = pes * float64(d.L1Bytes) * rfAreaMM2PB
	e.AreaByComp[CompL2] = float64(d.L2KB) * sramAreaMM2PKB
	nocArea := 0.0
	for op := range d.PhysLinks {
		nocArea += float64(d.NoCWidthBits) * float64(d.PhysLinks[op]) * nocAreaMM2PerBitLink
		// Virtual (time-shared) unicast needs per-link staging buffers.
		nocArea += float64(d.NoCWidthBits) * math.Log2(float64(d.VirtLinks[op])+1) * nocAreaMM2PerBitLink
	}
	e.AreaByComp[CompNoC] = nocArea
	// DMA area grows mildly with provisioned bandwidth.
	e.AreaByComp[CompDMA] = dmaAreaMM2 * math.Sqrt(float64(d.OffchipMBps)/1024.0)
	e.AreaByComp[CompCtrl] = ctrlAreaMM2
	for _, a := range e.AreaByComp {
		e.AreaMM2 += a
	}

	// Peak power: every component active in the same cycle.
	wattsPerPJ := float64(d.FreqMHz) * 1e6 * 1e-12 // pJ/cycle -> W
	e.PowerByComp[CompPEs] = pes * macEnergyPJ * wattsPerPJ
	e.PowerByComp[CompRF] = pes * 2 * rfAccessPJ * wattsPerPJ // read+write per cycle
	// L2 feeds the NoCs up to its banked port bandwidth each cycle.
	nocBytesPerCycle := 0.0
	for op := range d.PhysLinks {
		nocBytesPerCycle += float64(d.NoCWidthBits) / 8.0 * float64(d.PhysLinks[op])
	}
	l2Feed := math.Min(nocBytesPerCycle, l2FeedCapBytes)
	e.PowerByComp[CompL2] = l2Feed / 2.0 * l2AccessPJ * wattsPerPJ
	e.PowerByComp[CompNoC] = nocBytesPerCycle * nocEnergyPJPB * wattsPerPJ
	e.PowerByComp[CompDMA] = d.BytesPerCycle() * dramEnergyPJPB * wattsPerPJ
	e.PowerByComp[CompCtrl] = 0.05 // fixed control/clock tree share in W
	for _, p := range e.PowerByComp {
		e.MaxPowerW += p
	}
	return e
}
