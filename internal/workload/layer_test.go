package workload

import (
	"testing"
	"testing/quick"
)

func TestConvArithmetic(t *testing.T) {
	// 3x3 conv, 16 out channels, 8 in channels, 10x10 output, stride 1.
	l := conv("c", 16, 8, 10, 10, 3, 3, 1, 1)
	if got, want := l.MACs(), int64(16*8*10*10*3*3); got != want {
		t.Fatalf("MACs = %d, want %d", got, want)
	}
	if got, want := l.WeightElems(), int64(16*8*3*3); got != want {
		t.Fatalf("weights = %d, want %d", got, want)
	}
	if got, want := l.InY(), 12; got != want {
		t.Fatalf("InY = %d, want %d", got, want)
	}
	if got, want := l.InputElems(), int64(8*12*12); got != want {
		t.Fatalf("inputs = %d, want %d", got, want)
	}
	if got, want := l.OutputElems(), int64(16*10*10); got != want {
		t.Fatalf("outputs = %d, want %d", got, want)
	}
}

func TestStridedConvHalo(t *testing.T) {
	l := conv("c", 4, 3, 112, 112, 7, 7, 2, 1)
	if got, want := l.InY(), (112-1)*2+7; got != want {
		t.Fatalf("InY = %d, want %d", got, want)
	}
}

func TestDWConvArithmetic(t *testing.T) {
	l := dw("d", 32, 8, 8, 3, 3, 1, 1)
	if got, want := l.MACs(), int64(32*8*8*3*3); got != want {
		t.Fatalf("MACs = %d, want %d", got, want)
	}
	if got, want := l.WeightElems(), int64(32*3*3); got != want {
		t.Fatalf("weights = %d, want %d", got, want)
	}
	// Depthwise inputs span K channels.
	if got, want := l.InputElems(), int64(32*10*10); got != want {
		t.Fatalf("inputs = %d, want %d", got, want)
	}
}

func TestGemmArithmetic(t *testing.T) {
	l := gemm("g", 100, 50, 7, 1)
	if got, want := l.MACs(), int64(100*50*7); got != want {
		t.Fatalf("MACs = %d, want %d", got, want)
	}
	if got, want := l.WeightElems(), int64(100*50); got != want {
		t.Fatalf("weights = %d, want %d", got, want)
	}
	if got, want := l.InputElems(), int64(50*7); got != want {
		t.Fatalf("inputs = %d, want %d", got, want)
	}
	if got, want := l.OutputElems(), int64(100*7); got != want {
		t.Fatalf("outputs = %d, want %d", got, want)
	}
}

func TestNormalizedZeroSafety(t *testing.T) {
	var l Layer
	l.K = 4
	if l.MACs() <= 0 {
		t.Fatal("zero-dims layer should still have positive MACs")
	}
	if l.InY() < 1 || l.InX() < 1 {
		t.Fatal("halo must stay positive")
	}
}

func TestLayerPropertyInputsCoverOutputs(t *testing.T) {
	// Input spatial extent always >= output extent for stride>=1.
	f := func(y, r, stride uint8) bool {
		l := Layer{K: 1, C: 1, Y: int(y%64) + 1, X: 1, R: int(r%7) + 1, S: 1, Stride: int(stride%3) + 1}
		return l.InY() >= l.Y && l.InY() >= l.R
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadGemm(t *testing.T) {
	m := &Model{Name: "bad", MaxLatencyMs: 1, Layers: []Layer{
		{Name: "g", Kind: Gemm, K: 8, C: 8, Y: 2, X: 4, R: 1, S: 1, Stride: 1, Mult: 1},
	}}
	if err := m.Validate(); err == nil {
		t.Fatal("GEMM with Y=2 must be rejected")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	m := &Model{Name: "empty", MaxLatencyMs: 1}
	if err := m.Validate(); err == nil {
		t.Fatal("empty model must be rejected")
	}
	m2 := &Model{Name: "nolimit", Layers: []Layer{conv("c", 1, 1, 1, 1, 1, 1, 1, 1)}}
	if err := m2.Validate(); err == nil {
		t.Fatal("model without latency constraint must be rejected")
	}
}

func TestKindString(t *testing.T) {
	if Conv.String() != "CONV" || DWConv.String() != "DWCONV" || Gemm.String() != "GEMM" {
		t.Fatal("kind names wrong")
	}
}
