package workload

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// This file implements a textual workload definition so users can explore
// accelerators for their own DNNs without writing Go — the workload-side
// counterpart of the §4.2 design-space specification.
//
// Grammar (one declaration per line; '#' starts a comment):
//
//	model <name> latency <max-ms>
//	conv <name> <K> <C> <Y> <X> <R> <S> <stride> <mult>
//	dw   <name> <K> <Y> <X> <R> <S> <stride> <mult>
//	gemm <name> <M> <K> <N> <mult>
//
// Example:
//
//	model TinyNet latency 10
//	conv stem 16 3 32 32 3 3 1 1
//	dw   dw1  16 32 32 3 3 1 2
//	gemm head 10 16 1 1

// ParseModel parses one workload definition.
func ParseModel(spec string) (*Model, error) {
	m := &Model{Class: VisionLight}
	sc := bufio.NewScanner(strings.NewReader(spec))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "model":
			err = parseModelHeader(m, fields)
		case "conv":
			err = appendLayer(m, Conv, fields, 9)
		case "dw":
			err = appendLayer(m, DWConv, fields, 8)
		case "gemm":
			err = appendLayer(m, Gemm, fields, 5)
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("workload: spec line %d: %w", lineNo, err)
		}
	}
	if m.Name == "" {
		return nil, fmt.Errorf("workload: spec has no model header")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseModelHeader(m *Model, fields []string) error {
	if m.Name != "" {
		return fmt.Errorf("duplicate model header")
	}
	if len(fields) != 4 || fields[2] != "latency" {
		return fmt.Errorf("model wants '<name> latency <max-ms>'")
	}
	ms, err := strconv.ParseFloat(fields[3], 64)
	if err != nil || ms <= 0 {
		return fmt.Errorf("bad latency ceiling %q", fields[3])
	}
	m.Name = fields[1]
	m.MaxLatencyMs = ms
	return nil
}

func appendLayer(m *Model, kind Kind, fields []string, want int) error {
	if len(fields) != 1+want {
		return fmt.Errorf("%s wants %d operands", fields[0], want)
	}
	nums := make([]int, want-1)
	for i := range nums {
		v, err := strconv.Atoi(fields[2+i])
		if err != nil || v <= 0 {
			return fmt.Errorf("bad value %q", fields[2+i])
		}
		nums[i] = v
	}
	name := fields[1]
	var l Layer
	switch kind {
	case Conv:
		l = Layer{Name: name, Kind: Conv,
			K: nums[0], C: nums[1], Y: nums[2], X: nums[3],
			R: nums[4], S: nums[5], Stride: nums[6], Mult: nums[7]}
	case DWConv:
		l = Layer{Name: name, Kind: DWConv,
			K: nums[0], C: 1, Y: nums[1], X: nums[2],
			R: nums[3], S: nums[4], Stride: nums[5], Mult: nums[6]}
	case Gemm:
		l = Layer{Name: name, Kind: Gemm,
			K: nums[0], C: nums[1], Y: 1, X: nums[2],
			R: 1, S: 1, Stride: 1, Mult: nums[3]}
	}
	m.Layers = append(m.Layers, l)
	return nil
}
