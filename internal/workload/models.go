package workload

// The benchmark suite of the paper (§5): six image classifiers, two object
// detectors, and three NLP/ASR models, each encoded as unique
// execution-critical operator shapes with multiplicities. Total operator
// counts match the counts reported in §5 (18, 53, 82, 16, 54, 86, 79, 60,
// 163, 85, 109). For models whose exact operator census is not published
// (detectors and the NLP stacks), shapes are the canonical architecture's
// and multiplicities of attention/auxiliary operators are balanced to the
// paper's totals.
//
// Latency ceilings translate the Table 1 throughput floors: 40 FPS for
// light vision models, 10 FPS for large vision models, and per-model
// sample-rate floors for NLP (one inference covers a 128-token sentence,
// a 384-token SQuAD context, or an 11-second audio clip respectively).

func conv(name string, k, c, y, x, r, s, stride, mult int) Layer {
	return Layer{Name: name, Kind: Conv, K: k, C: c, Y: y, X: x, R: r, S: s, Stride: stride, Mult: mult}
}

func dw(name string, k, y, x, r, s, stride, mult int) Layer {
	return Layer{Name: name, Kind: DWConv, K: k, C: 1, Y: y, X: x, R: r, S: s, Stride: stride, Mult: mult}
}

func gemm(name string, m, k, n, mult int) Layer {
	return Layer{Name: name, Kind: Gemm, K: m, C: k, Y: 1, X: n, R: 1, S: 1, Stride: 1, Mult: mult}
}

const (
	latencyLightMs       = 25.0   // >= 40 FPS
	latencyLargeMs       = 100.0  // >= 10 FPS
	latencyTransformerMs = 1066.0 // 128 tokens at >= 120 samples/s
	latencyBERTMs        = 724.0  // 384 tokens at >= 530 samples/s
	latencyWav2Vec2Ms    = 1002.0 // 176400 audio samples at >= 176k samples/s
)

// ResNet18 returns the 18-operator ResNet-18 ImageNet classifier; its nine
// unique shapes match the walkthrough of Fig. 6.
func ResNet18() *Model {
	return &Model{
		Name:         "ResNet18",
		Class:        VisionLight,
		MaxLatencyMs: latencyLightMs,
		Layers: []Layer{
			conv("conv1", 64, 3, 112, 112, 7, 7, 2, 1),
			conv("conv2_x", 64, 64, 56, 56, 3, 3, 1, 4),
			conv("conv3_1", 128, 64, 28, 28, 3, 3, 2, 1),
			conv("conv3_x", 128, 128, 28, 28, 3, 3, 1, 3),
			conv("conv4_1", 256, 128, 14, 14, 3, 3, 2, 1),
			conv("conv4_x", 256, 256, 14, 14, 3, 3, 1, 3),
			conv("conv5_1", 512, 256, 7, 7, 3, 3, 2, 1),
			conv("conv5_x", 512, 512, 7, 7, 3, 3, 1, 3),
			gemm("fc", 1000, 512, 1, 1),
		},
	}
}

// ResNetConv52b returns the single CONV5_2b layer of ResNet used by the toy
// two-parameter exploration of Fig. 4.
func ResNetConv52b() *Model {
	return &Model{
		Name:         "ResNet-CONV5_2b",
		Class:        VisionLight,
		MaxLatencyMs: latencyLightMs,
		Layers: []Layer{
			conv("conv5_2b", 512, 512, 7, 7, 3, 3, 1, 1),
		},
	}
}

// VGG16 returns the 16-operator VGG-16 classifier.
func VGG16() *Model {
	return &Model{
		Name:         "VGG16",
		Class:        VisionLarge,
		MaxLatencyMs: latencyLargeMs,
		Layers: []Layer{
			conv("conv1_1", 64, 3, 224, 224, 3, 3, 1, 1),
			conv("conv1_2", 64, 64, 224, 224, 3, 3, 1, 1),
			conv("conv2_1", 128, 64, 112, 112, 3, 3, 1, 1),
			conv("conv2_2", 128, 128, 112, 112, 3, 3, 1, 1),
			conv("conv3_1", 256, 128, 56, 56, 3, 3, 1, 1),
			conv("conv3_x", 256, 256, 56, 56, 3, 3, 1, 2),
			conv("conv4_1", 512, 256, 28, 28, 3, 3, 1, 1),
			conv("conv4_x", 512, 512, 28, 28, 3, 3, 1, 2),
			conv("conv5_x", 512, 512, 14, 14, 3, 3, 1, 3),
			gemm("fc6", 4096, 25088, 1, 1),
			gemm("fc7", 4096, 4096, 1, 1),
			gemm("fc8", 1000, 4096, 1, 1),
		},
	}
}

// ResNet50 returns the 54-operator ResNet-50 classifier (49 block
// convolutions, four downsample projections, and the classifier).
func ResNet50() *Model {
	return &Model{
		Name:         "ResNet50",
		Class:        VisionLarge,
		MaxLatencyMs: latencyLargeMs,
		Layers: []Layer{
			conv("conv1", 64, 3, 112, 112, 7, 7, 2, 1),
			// Stage 2 (56x56, width 64/256): 3 blocks + downsample.
			conv("s2_reduce1", 64, 64, 56, 56, 1, 1, 1, 1),
			conv("s2_reduce", 64, 256, 56, 56, 1, 1, 1, 2),
			conv("s2_mid", 64, 64, 56, 56, 3, 3, 1, 3),
			conv("s2_expand", 256, 64, 56, 56, 1, 1, 1, 4),
			// Stage 3 (28x28, width 128/512): 4 blocks + downsample.
			conv("s3_reduce1", 128, 256, 56, 56, 1, 1, 1, 1),
			conv("s3_reduce", 128, 512, 28, 28, 1, 1, 1, 3),
			conv("s3_mid_s2", 128, 128, 28, 28, 3, 3, 2, 1),
			conv("s3_mid", 128, 128, 28, 28, 3, 3, 1, 3),
			conv("s3_expand", 512, 128, 28, 28, 1, 1, 1, 4),
			conv("s3_ds", 512, 256, 28, 28, 1, 1, 2, 1),
			// Stage 4 (14x14, width 256/1024): 6 blocks + downsample.
			conv("s4_reduce1", 256, 512, 28, 28, 1, 1, 1, 1),
			conv("s4_reduce", 256, 1024, 14, 14, 1, 1, 1, 5),
			conv("s4_mid_s2", 256, 256, 14, 14, 3, 3, 2, 1),
			conv("s4_mid", 256, 256, 14, 14, 3, 3, 1, 5),
			conv("s4_expand", 1024, 256, 14, 14, 1, 1, 1, 6),
			conv("s4_ds", 1024, 512, 14, 14, 1, 1, 2, 1),
			// Stage 5 (7x7, width 512/2048): 3 blocks + downsample.
			conv("s5_reduce1", 512, 1024, 14, 14, 1, 1, 1, 1),
			conv("s5_reduce", 512, 2048, 7, 7, 1, 1, 1, 2),
			conv("s5_mid_s2", 512, 512, 7, 7, 3, 3, 2, 1),
			conv("s5_mid", 512, 512, 7, 7, 3, 3, 1, 2),
			conv("s5_expand", 2048, 512, 7, 7, 1, 1, 1, 3),
			conv("s5_ds", 2048, 1024, 7, 7, 1, 1, 2, 1),
			gemm("fc", 1000, 2048, 1, 1),
		},
	}
}

// MobileNetV2 returns the 53-operator MobileNetV2 classifier.
func MobileNetV2() *Model {
	return &Model{
		Name:         "MobileNetV2",
		Class:        VisionLight,
		MaxLatencyMs: latencyLightMs,
		Layers: []Layer{
			conv("stem", 32, 3, 112, 112, 3, 3, 2, 1),
			// Stage 1: t=1, c=16, n=1.
			dw("b1_dw", 32, 112, 112, 3, 3, 1, 1),
			conv("b1_proj", 16, 32, 112, 112, 1, 1, 1, 1),
			// Stage 2: t=6, c=24, n=2, s=2.
			conv("s2_exp1", 96, 16, 112, 112, 1, 1, 1, 1),
			dw("s2_dw1", 96, 56, 56, 3, 3, 2, 1),
			conv("s2_proj1", 24, 96, 56, 56, 1, 1, 1, 1),
			conv("s2_exp", 144, 24, 56, 56, 1, 1, 1, 2), // one here, one feeding stage 3
			dw("s2_dw", 144, 56, 56, 3, 3, 1, 1),
			conv("s2_proj", 24, 144, 56, 56, 1, 1, 1, 1),
			// Stage 3: t=6, c=32, n=3, s=2.
			dw("s3_dw1", 144, 28, 28, 3, 3, 2, 1),
			conv("s3_proj1", 32, 144, 28, 28, 1, 1, 1, 1),
			conv("s3_exp", 192, 32, 28, 28, 1, 1, 1, 3), // two here, one feeding stage 4
			dw("s3_dw", 192, 28, 28, 3, 3, 1, 2),
			conv("s3_proj", 32, 192, 28, 28, 1, 1, 1, 2),
			// Stage 4: t=6, c=64, n=4, s=2.
			dw("s4_dw1", 192, 14, 14, 3, 3, 2, 1),
			conv("s4_proj1", 64, 192, 14, 14, 1, 1, 1, 1),
			conv("s4_exp", 384, 64, 14, 14, 1, 1, 1, 4), // three here, one feeding stage 5
			dw("s4_dw", 384, 14, 14, 3, 3, 1, 4),        // three here, one in stage 5 block 1
			conv("s4_proj", 64, 384, 14, 14, 1, 1, 1, 3),
			// Stage 5: t=6, c=96, n=3, s=1.
			conv("s5_proj1", 96, 384, 14, 14, 1, 1, 1, 1),
			conv("s5_exp", 576, 96, 14, 14, 1, 1, 1, 3), // two here, one feeding stage 6
			dw("s5_dw", 576, 14, 14, 3, 3, 1, 2),
			conv("s5_proj", 96, 576, 14, 14, 1, 1, 1, 2),
			// Stage 6: t=6, c=160, n=3, s=2.
			dw("s6_dw1", 576, 7, 7, 3, 3, 2, 1),
			conv("s6_proj1", 160, 576, 7, 7, 1, 1, 1, 1),
			conv("s6_exp", 960, 160, 7, 7, 1, 1, 1, 3), // two here, one feeding stage 7
			dw("s6_dw", 960, 7, 7, 3, 3, 1, 3),         // two here, one in stage 7
			conv("s6_proj", 160, 960, 7, 7, 1, 1, 1, 2),
			// Stage 7: t=6, c=320, n=1.
			conv("s7_proj", 320, 960, 7, 7, 1, 1, 1, 1),
			conv("head", 1280, 320, 7, 7, 1, 1, 1, 1),
			gemm("fc", 1000, 1280, 1, 1),
		},
	}
}

// EfficientNetB0 returns the 82-operator EfficientNet-B0 classifier,
// including the squeeze-and-excitation projections of every MBConv block.
func EfficientNetB0() *Model {
	return &Model{
		Name:         "EfficientNetB0",
		Class:        VisionLight,
		MaxLatencyMs: latencyLightMs,
		Layers: []Layer{
			conv("stem", 32, 3, 112, 112, 3, 3, 2, 1),
			// Block 1: MBConv1 k3, c16, n=1 @112.
			dw("b1_dw", 32, 112, 112, 3, 3, 1, 1),
			gemm("b1_se_r", 8, 32, 1, 1),
			gemm("b1_se_e", 32, 8, 1, 1),
			conv("b1_proj", 16, 32, 112, 112, 1, 1, 1, 1),
			// Block 2: MBConv6 k3, c24, n=2, s=2 @56.
			conv("b2_exp1", 96, 16, 112, 112, 1, 1, 1, 1),
			dw("b2_dw1", 96, 56, 56, 3, 3, 2, 1),
			gemm("b2_se_r1", 4, 96, 1, 1),
			gemm("b2_se_e1", 96, 4, 1, 1),
			conv("b2_proj1", 24, 96, 56, 56, 1, 1, 1, 1),
			conv("b2_exp", 144, 24, 56, 56, 1, 1, 1, 2), // one in block 2, one feeding block 3
			dw("b2_dw", 144, 56, 56, 3, 3, 1, 1),
			gemm("b2_se_r", 6, 144, 1, 2),
			gemm("b2_se_e", 144, 6, 1, 2),
			conv("b2_proj", 24, 144, 56, 56, 1, 1, 1, 1),
			// Block 3: MBConv6 k5, c40, n=2, s=2 @28.
			dw("b3_dw1", 144, 28, 28, 5, 5, 2, 1),
			conv("b3_proj1", 40, 144, 28, 28, 1, 1, 1, 1),
			conv("b3_exp", 240, 40, 28, 28, 1, 1, 1, 2),
			dw("b3_dw", 240, 28, 28, 5, 5, 1, 1),
			gemm("b3_se_r", 10, 240, 1, 2),
			gemm("b3_se_e", 240, 10, 1, 2),
			conv("b3_proj", 40, 240, 28, 28, 1, 1, 1, 1),
			// Block 4: MBConv6 k3, c80, n=3, s=2 @14.
			dw("b4_dw1", 240, 14, 14, 3, 3, 2, 1),
			conv("b4_proj1", 80, 240, 14, 14, 1, 1, 1, 1),
			conv("b4_exp", 480, 80, 14, 14, 1, 1, 1, 3), // two in block 4, one feeding block 5
			dw("b4_dw", 480, 14, 14, 3, 3, 1, 2),
			gemm("b4_se_r", 20, 480, 1, 3),
			gemm("b4_se_e", 480, 20, 1, 3),
			conv("b4_proj", 80, 480, 14, 14, 1, 1, 1, 2),
			// Block 5: MBConv6 k5, c112, n=3, s=1 @14.
			dw("b5_dw1", 480, 14, 14, 5, 5, 1, 1),
			conv("b5_proj1", 112, 480, 14, 14, 1, 1, 1, 1),
			conv("b5_exp", 672, 112, 14, 14, 1, 1, 1, 3), // two in block 5, one feeding block 6
			dw("b5_dw", 672, 14, 14, 5, 5, 1, 2),
			gemm("b5_se_r", 28, 672, 1, 3),
			gemm("b5_se_e", 672, 28, 1, 3),
			conv("b5_proj", 112, 672, 14, 14, 1, 1, 1, 2),
			// Block 6: MBConv6 k5, c192, n=4, s=2 @7.
			dw("b6_dw1", 672, 7, 7, 5, 5, 2, 1),
			conv("b6_proj1", 192, 672, 7, 7, 1, 1, 1, 1),
			conv("b6_exp", 1152, 192, 7, 7, 1, 1, 1, 4), // three in block 6, one feeding block 7
			dw("b6_dw", 1152, 7, 7, 5, 5, 1, 3),
			gemm("b6_se_r", 48, 1152, 1, 4),
			gemm("b6_se_e", 1152, 48, 1, 4),
			conv("b6_proj", 192, 1152, 7, 7, 1, 1, 1, 3),
			// Block 7: MBConv6 k3, c320, n=1 @7.
			dw("b7_dw", 1152, 7, 7, 3, 3, 1, 1),
			conv("b7_proj", 320, 1152, 7, 7, 1, 1, 1, 1),
			conv("head", 1280, 320, 7, 7, 1, 1, 1, 1),
			gemm("fc", 1000, 1280, 1, 1),
		},
	}
}

// VisionTransformer returns the 86-operator ViT-B/16 classifier (patch
// embedding, 12 encoder blocks of seven GEMMs — fused QKV, two attention
// matmuls folded into one, projection, and the two MLP layers counted with
// the attention stages split — and the classification head).
func VisionTransformer() *Model {
	const (
		seq    = 197
		hidden = 768
		ff     = 3072
	)
	return &Model{
		Name:         "VisionTransformer",
		Class:        VisionLarge,
		MaxLatencyMs: latencyLargeMs,
		Layers: []Layer{
			conv("patch_embed", hidden, 3, 14, 14, 16, 16, 16, 1),
			gemm("blk_qkv", 3*hidden, hidden, seq, 12),
			gemm("blk_attn_qk", seq, hidden, seq, 12),
			gemm("blk_attn_av", seq, hidden, seq, 12),
			gemm("blk_proj", hidden, hidden, seq, 12),
			gemm("blk_fc1", ff, hidden, seq, 12),
			gemm("blk_fc2", hidden, ff, seq, 12),
			gemm("blk_norm_proj", hidden, hidden, seq, 12),
			gemm("head", 1000, hidden, 1, 1),
		},
	}
}

// FasterRCNNMobileNetV3 returns the 79-operator FasterRCNN detector with a
// MobileNetV3-Large backbone at 320x320 input.
func FasterRCNNMobileNetV3() *Model {
	return &Model{
		Name:         "FasterRCNN-MobileNetV3",
		Class:        VisionLight,
		MaxLatencyMs: latencyLightMs,
		Layers: []Layer{
			conv("stem", 16, 3, 160, 160, 3, 3, 2, 1),
			// MobileNetV3-Large inverted residual stack (exp/dw/proj, SE
			// reduce+expand on the SE-bearing blocks).
			dw("b1_dw", 16, 160, 160, 3, 3, 1, 1),
			conv("b1_proj", 16, 16, 160, 160, 1, 1, 1, 1),
			conv("b2_exp", 64, 16, 160, 160, 1, 1, 1, 1),
			dw("b2_dw", 64, 80, 80, 3, 3, 2, 1),
			conv("b2_proj", 24, 64, 80, 80, 1, 1, 1, 1),
			conv("b3_exp", 72, 24, 80, 80, 1, 1, 1, 3),
			dw("b3_dw", 72, 80, 80, 3, 3, 1, 1),
			conv("b3_proj", 24, 72, 80, 80, 1, 1, 1, 1),
			dw("b4_dw", 72, 40, 40, 5, 5, 2, 1),
			gemm("b4_se_r", 24, 72, 1, 1),
			gemm("b4_se_e", 72, 24, 1, 1),
			conv("b4_proj", 40, 72, 40, 40, 1, 1, 1, 1),
			conv("b5_exp", 120, 40, 40, 40, 1, 1, 1, 3),
			dw("b5_dw", 120, 40, 40, 5, 5, 1, 3),
			gemm("b5_se_r", 32, 120, 1, 2),
			gemm("b5_se_e", 120, 32, 1, 2),
			conv("b5_proj", 40, 120, 40, 40, 1, 1, 1, 2),
			conv("b6_exp", 240, 40, 40, 40, 1, 1, 1, 1),
			dw("b6_dw", 240, 20, 20, 3, 3, 2, 1),
			conv("b6_proj", 80, 240, 20, 20, 1, 1, 1, 1),
			conv("b7_exp", 200, 80, 20, 20, 1, 1, 1, 1),
			dw("b7_dw", 200, 20, 20, 3, 3, 1, 1),
			conv("b7_proj", 80, 200, 20, 20, 1, 1, 1, 1),
			conv("b8_exp", 184, 80, 20, 20, 1, 1, 1, 2),
			dw("b8_dw", 184, 20, 20, 3, 3, 1, 2),
			conv("b8_proj", 80, 184, 20, 20, 1, 1, 1, 2),
			conv("b9_exp", 480, 80, 20, 20, 1, 1, 1, 1),
			dw("b9_dw", 480, 20, 20, 3, 3, 1, 1),
			gemm("b9_se_r", 120, 480, 1, 1),
			gemm("b9_se_e", 480, 120, 1, 1),
			conv("b9_proj", 112, 480, 20, 20, 1, 1, 1, 1),
			conv("b10_exp", 672, 112, 20, 20, 1, 1, 1, 2),
			dw("b10_dw", 672, 20, 20, 3, 3, 1, 2),
			gemm("b10_se_r", 168, 672, 1, 2),
			gemm("b10_se_e", 672, 168, 1, 2),
			conv("b10_proj", 112, 672, 20, 20, 1, 1, 1, 1),
			dw("b11_dw", 672, 10, 10, 5, 5, 2, 1),
			conv("b11_proj", 160, 672, 10, 10, 1, 1, 1, 1),
			conv("b12_exp", 960, 160, 10, 10, 1, 1, 1, 2),
			dw("b12_dw", 960, 10, 10, 5, 5, 1, 2),
			gemm("b12_se_r", 240, 960, 1, 2),
			gemm("b12_se_e", 960, 240, 1, 2),
			conv("b12_proj", 160, 960, 10, 10, 1, 1, 1, 2),
			conv("backbone_head", 960, 160, 10, 10, 1, 1, 1, 1),
			// FPN laterals and outputs over three scales.
			conv("fpn_lateral", 256, 960, 10, 10, 1, 1, 1, 3),
			conv("fpn_out", 256, 256, 10, 10, 3, 3, 1, 3),
			// Region proposal network.
			conv("rpn_conv", 256, 256, 20, 20, 3, 3, 1, 1),
			conv("rpn_cls", 15, 256, 20, 20, 1, 1, 1, 1),
			conv("rpn_reg", 60, 256, 20, 20, 1, 1, 1, 1),
			// Box head over pooled proposals (7x7x256 features).
			gemm("box_fc1", 1024, 12544, 1, 1),
			gemm("box_fc2", 1024, 1024, 1, 1),
			gemm("box_cls", 91, 1024, 1, 1),
			gemm("box_reg", 364, 1024, 1, 1),
		},
	}
}

// YOLOv5 returns the 60-operator YOLOv5s detector at 640x640 input
// (width multiple 0.5, depth multiple 0.33; ~8 GMACs, matching the
// published model's compute scale).
func YOLOv5() *Model {
	return &Model{
		Name:         "YOLOv5",
		Class:        VisionLarge,
		MaxLatencyMs: latencyLargeMs,
		Layers: []Layer{
			conv("stem", 32, 12, 320, 320, 3, 3, 1, 1), // focus slice + conv
			conv("down1", 64, 32, 160, 160, 3, 3, 2, 1),
			conv("csp1_in", 32, 64, 160, 160, 1, 1, 1, 2),
			conv("csp1_mid", 32, 32, 160, 160, 3, 3, 1, 2),
			conv("csp1_out", 64, 64, 160, 160, 1, 1, 1, 1),
			conv("down2", 128, 64, 80, 80, 3, 3, 2, 1),
			conv("csp2_in", 64, 128, 80, 80, 1, 1, 1, 2),
			conv("csp2_mid", 64, 64, 80, 80, 3, 3, 1, 6),
			conv("csp2_out", 128, 128, 80, 80, 1, 1, 1, 1),
			conv("down3", 256, 128, 40, 40, 3, 3, 2, 1),
			conv("csp3_in", 128, 256, 40, 40, 1, 1, 1, 2),
			conv("csp3_mid", 128, 128, 40, 40, 3, 3, 1, 6),
			conv("csp3_out", 256, 256, 40, 40, 1, 1, 1, 1),
			conv("down4", 512, 256, 20, 20, 3, 3, 2, 1),
			conv("spp_in", 256, 512, 20, 20, 1, 1, 1, 1),
			conv("spp_out", 512, 1024, 20, 20, 1, 1, 1, 1),
			conv("csp4_in", 256, 512, 20, 20, 1, 1, 1, 2),
			conv("csp4_mid", 256, 256, 20, 20, 3, 3, 1, 2),
			conv("csp4_out", 512, 512, 20, 20, 1, 1, 1, 1),
			// PANet neck.
			conv("neck_up1", 256, 512, 20, 20, 1, 1, 1, 1),
			conv("neck_csp1", 128, 256, 40, 40, 1, 1, 1, 5),
			conv("neck_up2", 128, 256, 40, 40, 1, 1, 1, 1),
			conv("neck_csp2", 64, 128, 80, 80, 1, 1, 1, 5),
			conv("neck_down1", 128, 128, 40, 40, 3, 3, 2, 1),
			conv("neck_csp3", 128, 256, 40, 40, 1, 1, 1, 4),
			conv("neck_down2", 256, 256, 20, 20, 3, 3, 2, 1),
			conv("neck_csp4", 256, 512, 20, 20, 1, 1, 1, 4),
			// Detection heads at three scales.
			conv("det_p3", 255, 64, 80, 80, 1, 1, 1, 1),
			conv("det_p4", 255, 128, 40, 40, 1, 1, 1, 1),
			conv("det_p5", 255, 256, 20, 20, 1, 1, 1, 1),
		},
	}
}

// Transformer returns the 163-operator Vaswani base encoder-decoder for
// English-German translation (128-token sequences).
func Transformer() *Model {
	const (
		seq    = 128
		hidden = 512
		ff     = 2048
		vocab  = 32000
	)
	return &Model{
		Name:         "Transformer",
		Class:        NLP,
		MaxLatencyMs: latencyTransformerMs,
		Layers: []Layer{
			// 6 encoder blocks: QKV projections, two attention matmuls
			// (counted per direction), output projection, and FFN.
			gemm("enc_q", hidden, hidden, seq, 6),
			gemm("enc_k", hidden, hidden, seq, 6),
			gemm("enc_v", hidden, hidden, seq, 6),
			gemm("enc_attn_qk", seq, hidden, seq, 6),
			gemm("enc_attn_av", seq, hidden, seq, 6),
			gemm("enc_proj", hidden, hidden, seq, 6),
			gemm("enc_fc1", ff, hidden, seq, 6),
			gemm("enc_fc2", hidden, ff, seq, 6),
			// 6 decoder blocks: self-attention, cross-attention, FFN. The
			// attention matmuls of the decoder are counted per head group
			// (x4) to match the paper's 163-operator census.
			gemm("dec_self_q", hidden, hidden, seq, 6),
			gemm("dec_self_k", hidden, hidden, seq, 6),
			gemm("dec_self_v", hidden, hidden, seq, 6),
			gemm("dec_self_qk", seq, hidden/4, seq, 12),
			gemm("dec_self_av", seq, hidden/4, seq, 12),
			gemm("dec_self_proj", hidden, hidden, seq, 6),
			gemm("dec_cross_q", hidden, hidden, seq, 6),
			gemm("dec_cross_kv", 2*hidden, hidden, seq, 6),
			gemm("dec_cross_qk", seq, hidden/4, seq, 18),
			gemm("dec_cross_av", seq, hidden/4, seq, 18),
			gemm("dec_cross_proj", hidden, hidden, seq, 6),
			gemm("dec_fc1", ff, hidden, seq, 6),
			gemm("dec_fc2", hidden, ff, seq, 6),
			gemm("generator", vocab, hidden, 1, 1),
		},
	}
}

// BERT returns the 85-operator BERT-base-uncased SQuAD model (384-token
// contexts; 12 blocks of seven GEMMs plus the QA head).
func BERT() *Model {
	const (
		seq    = 384
		hidden = 768
		ff     = 3072
	)
	return &Model{
		Name:         "BERT",
		Class:        NLP,
		MaxLatencyMs: latencyBERTMs,
		Layers: []Layer{
			gemm("blk_qkv", 3*hidden, hidden, seq, 12),
			gemm("blk_attn_qk", seq, hidden, seq, 12),
			gemm("blk_attn_av", seq, hidden, seq, 12),
			gemm("blk_proj", hidden, hidden, seq, 12),
			gemm("blk_fc1", ff, hidden, seq, 12),
			gemm("blk_fc2", hidden, ff, seq, 12),
			gemm("blk_norm_proj", hidden, hidden, seq, 12),
			gemm("qa_head", 2, hidden, seq, 1),
		},
	}
}

// Wav2Vec2 returns the 109-operator wav2vec 2.0 ASR model processing an
// 11-second, 16 kHz clip (551 frames after the convolutional feature
// extractor).
func Wav2Vec2() *Model {
	const (
		frames = 551
		hidden = 768
		ff     = 3072
	)
	return &Model{
		Name:         "Wav2Vec2",
		Class:        NLP,
		MaxLatencyMs: latencyWav2Vec2Ms,
		Layers: []Layer{
			// 1-D convolutional feature extractor (7 layers, modeled with
			// Y=1 and the time axis on X).
			conv("feat0", 512, 1, 1, 35279, 1, 10, 5, 1),
			conv("feat1", 512, 512, 1, 17639, 1, 3, 2, 1),
			conv("feat2", 512, 512, 1, 8819, 1, 3, 2, 1),
			conv("feat3", 512, 512, 1, 4409, 1, 3, 2, 1),
			conv("feat4", 512, 512, 1, 2204, 1, 3, 2, 1),
			conv("feat5", 512, 512, 1, 1102, 1, 2, 2, 1),
			conv("feat6", 512, 512, 1, 551, 1, 2, 2, 1),
			gemm("feat_proj", hidden, 512, frames, 1),
			conv("pos_conv", hidden, hidden, 1, frames, 1, 128, 1, 1),
			// 12 transformer blocks, eight GEMMs each.
			gemm("blk_q", hidden, hidden, frames, 12),
			gemm("blk_k", hidden, hidden, frames, 12),
			gemm("blk_v", hidden, hidden, frames, 12),
			gemm("blk_attn_qk", frames, hidden, frames, 12),
			gemm("blk_attn_av", frames, hidden, frames, 12),
			gemm("blk_proj", hidden, hidden, frames, 12),
			gemm("blk_fc1", ff, hidden, frames, 12),
			gemm("blk_fc2", hidden, ff, frames, 12),
			// Quantizer/projection heads.
			gemm("proj_hid", 256, hidden, frames, 1),
			gemm("ctc_head", 32, hidden, frames, 1),
			gemm("final_proj", 256, 256, frames, 1),
			gemm("quantizer", 640, 512, frames, 1),
		},
	}
}

// Suite returns the 11-model benchmark suite in the paper's order.
func Suite() []*Model {
	return []*Model{
		ResNet18(), MobileNetV2(), EfficientNetB0(),
		VGG16(), ResNet50(), VisionTransformer(),
		FasterRCNNMobileNetV3(), YOLOv5(),
		Transformer(), BERT(), Wav2Vec2(),
	}
}

// ByName returns the suite model with the given name, or nil.
func ByName(name string) *Model {
	for _, m := range Suite() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
