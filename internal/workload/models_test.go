package workload

import "testing"

// TestSuiteOperatorCounts pins the per-model operator totals to the counts
// the paper reports in §5.
func TestSuiteOperatorCounts(t *testing.T) {
	want := map[string]int{
		"ResNet18": 18, "MobileNetV2": 53, "EfficientNetB0": 82,
		"VGG16": 16, "ResNet50": 54, "VisionTransformer": 86,
		"FasterRCNN-MobileNetV3": 79, "YOLOv5": 60,
		"Transformer": 163, "BERT": 85, "Wav2Vec2": 109,
	}
	suite := Suite()
	if len(suite) != 11 {
		t.Fatalf("suite has %d models, want 11", len(suite))
	}
	for _, m := range suite {
		if got := m.TotalLayers(); got != want[m.Name] {
			t.Errorf("%s: %d operators, want %d", m.Name, got, want[m.Name])
		}
	}
}

func TestSuiteValidates(t *testing.T) {
	for _, m := range Suite() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestResNet18UniqueShapes(t *testing.T) {
	// The Fig. 6 walkthrough notes nine unique tensor shapes.
	if got := ResNet18().UniqueLayers(); got != 9 {
		t.Fatalf("ResNet18 unique layers = %d, want 9", got)
	}
}

func TestSuiteMACsPlausible(t *testing.T) {
	// Published MAC counts (ballpark): ResNet18 ~1.8G, VGG16 ~15.5G,
	// MobileNetV2 ~0.3G, ResNet50 ~4.1G. Our encodings must land within
	// ~35% of those (halo and head details shift the totals slightly).
	want := map[string]float64{
		"ResNet18": 1.8e9, "VGG16": 15.5e9, "MobileNetV2": 0.3e9, "ResNet50": 4.1e9,
	}
	for name, w := range want {
		m := ByName(name)
		got := float64(m.TotalMACs())
		if got < 0.65*w || got > 1.35*w {
			t.Errorf("%s MACs = %.3g, want ~%.3g", name, got, w)
		}
	}
}

func TestClassConstraints(t *testing.T) {
	for _, m := range Suite() {
		switch m.Class {
		case VisionLight:
			if m.MaxLatencyMs != 25 {
				t.Errorf("%s: light vision ceiling = %v", m.Name, m.MaxLatencyMs)
			}
		case VisionLarge:
			if m.MaxLatencyMs != 100 {
				t.Errorf("%s: large vision ceiling = %v", m.Name, m.MaxLatencyMs)
			}
		case NLP:
			if m.MaxLatencyMs < 100 {
				t.Errorf("%s: NLP ceiling = %v", m.Name, m.MaxLatencyMs)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("BERT") == nil {
		t.Fatal("BERT missing")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown model should be nil")
	}
}

func TestResNetConv52bShape(t *testing.T) {
	m := ResNetConv52b()
	l := m.Layers[0]
	if l.K != 512 || l.C != 512 || l.Y != 7 || l.R != 3 {
		t.Fatalf("CONV5_2b shape wrong: %v", l)
	}
}

func TestMultiplicityWeighting(t *testing.T) {
	m := ResNet18()
	var unique int64
	for _, l := range m.Layers {
		unique += l.MACs()
	}
	if m.TotalMACs() <= unique {
		t.Fatal("multiplicity-weighted MACs must exceed unique-layer MACs")
	}
}
