package workload

import (
	"strings"
	"testing"
)

const tinySpec = `
# a tiny test network
model TinyNet latency 10
conv stem 16 3 32 32 3 3 1 1
dw   dw1  16 32 32 3 3 1 2
gemm head 10 16 1 1
`

func TestParseModel(t *testing.T) {
	m, err := ParseModel(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "TinyNet" || m.MaxLatencyMs != 10 {
		t.Fatalf("header = %+v", m)
	}
	if m.TotalLayers() != 4 || m.UniqueLayers() != 3 {
		t.Fatalf("layers: total=%d unique=%d", m.TotalLayers(), m.UniqueLayers())
	}
	if m.Layers[0].Kind != Conv || m.Layers[0].C != 3 {
		t.Fatalf("conv = %+v", m.Layers[0])
	}
	if m.Layers[1].Kind != DWConv || m.Layers[1].C != 1 || m.Layers[1].Mult != 2 {
		t.Fatalf("dw = %+v", m.Layers[1])
	}
	if m.Layers[2].Kind != Gemm || m.Layers[2].K != 10 || m.Layers[2].X != 1 {
		t.Fatalf("gemm = %+v", m.Layers[2])
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseModelErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "conv c 1 1 1 1 1 1 1 1\n",
		"double header":    "model A latency 1\nmodel B latency 1\n",
		"bad latency":      "model A latency x\n",
		"bad directive":    "model A latency 1\npool p 1\n",
		"arity":            "model A latency 1\nconv c 1 1 1\n",
		"zero value":       "model A latency 1\ngemm g 0 16 1 1\n",
		"no layers":        "model A latency 1\n",
		"negative value":   "model A latency 1\ngemm g -3 16 1 1\n",
		"bad header shape": "model A 10\n",
	}
	for name, spec := range cases {
		if _, err := ParseModel(spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseModelErrorCarriesLine(t *testing.T) {
	_, err := ParseModel("model A latency 1\nconv ok 1 1 1 1 1 1 1 1\nconv bad 1\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error without line number: %v", err)
	}
}
