// Package workload models DNN inference workloads as lists of
// execution-critical operators (CONV, depthwise CONV, GEMM) with tensor
// shapes and occurrence multiplicities, mirroring the 11-model benchmark
// suite of the Explainable-DSE paper (§5).
//
// Only unique tensor shapes are stored; Mult records how many times the
// shape occurs in the network so whole-network costs are weighted sums over
// unique layers, exactly as the paper's DSE analyzes per-layer bottlenecks
// of layers "with unique tensor shapes".
package workload

import (
	"fmt"
	"strconv"
)

// Kind is the operator class of a layer.
type Kind int

const (
	// Conv is a standard convolution.
	Conv Kind = iota
	// DWConv is a depthwise (per-channel) convolution.
	DWConv
	// Gemm is a dense matrix multiply; GEMM(M,N,K) is stored as
	// K=M (output rows), C=K (reduction), X=N (columns), Y=R=S=1.
	Gemm
)

// String names the operator kind.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "CONV"
	case DWConv:
		return "DWCONV"
	case Gemm:
		return "GEMM"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// BytesPerElem is the fixed data precision of the study (int16).
const BytesPerElem = 2

// Layer is one unique execution-critical operator of a DNN.
type Layer struct {
	Name   string
	Kind   Kind
	K      int // output channels (CONV) / output rows M (GEMM)
	C      int // input channels (CONV) / reduction depth (GEMM)
	Y, X   int // output spatial extents (GEMM: Y=1, X=columns N)
	R, S   int // filter spatial extents (GEMM: 1)
	Stride int // spatial stride (>=1)
	Mult   int // number of occurrences of this exact shape in the DNN
}

// normalized returns the layer with zero-valued dims promoted to 1 so the
// arithmetic below never divides by or multiplies with zero.
func (l Layer) normalized() Layer {
	one := func(v int) int {
		if v < 1 {
			return 1
		}
		return v
	}
	l.K, l.C = one(l.K), one(l.C)
	l.Y, l.X = one(l.Y), one(l.X)
	l.R, l.S = one(l.R), one(l.S)
	l.Stride = one(l.Stride)
	l.Mult = one(l.Mult)
	return l
}

// MACs returns the multiply-accumulate count of one occurrence.
func (l Layer) MACs() int64 {
	n := l.normalized()
	m := int64(n.K) * int64(n.Y) * int64(n.X) * int64(n.R) * int64(n.S)
	if n.Kind != DWConv {
		m *= int64(n.C)
	}
	return m
}

// InY returns the input spatial height implied by output height and filter.
func (l Layer) InY() int {
	n := l.normalized()
	return (n.Y-1)*n.Stride + n.R
}

// InX returns the input spatial width.
func (l Layer) InX() int {
	n := l.normalized()
	return (n.X-1)*n.Stride + n.S
}

// WeightElems returns the element count of the weight tensor.
func (l Layer) WeightElems() int64 {
	n := l.normalized()
	w := int64(n.K) * int64(n.R) * int64(n.S)
	if n.Kind == Conv || n.Kind == Gemm {
		w *= int64(n.C)
	}
	return w
}

// InputElems returns the element count of the input tensor.
func (l Layer) InputElems() int64 {
	n := l.normalized()
	ch := int64(n.C)
	if n.Kind == DWConv {
		ch = int64(n.K)
	}
	return ch * int64(l.InY()) * int64(l.InX())
}

// OutputElems returns the element count of the output tensor.
func (l Layer) OutputElems() int64 {
	n := l.normalized()
	return int64(n.K) * int64(n.Y) * int64(n.X)
}

// ShapeKey returns a canonical key of everything the mapping search reads
// from the layer: the operator kind, the normalized loop extents, and the
// stride. Name and Mult are deliberately excluded — Mult only scales
// whole-network totals after the per-occurrence search has run, so two
// layers with equal shape keys have identical mapping-search results on any
// given design.
func (l Layer) ShapeKey() string {
	n := l.normalized()
	// Built with strconv appends rather than fmt (this runs once per layer
	// per design evaluation and fmt showed up in warm-campaign profiles).
	// The byte layout is identical to the original
	// "%d|%d,%d,%d,%d,%d,%d|%d" format — persisted cache records key on
	// this string, so the layout must not change without retiring them.
	b := make([]byte, 0, 48)
	b = strconv.AppendInt(b, int64(n.Kind), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(n.K), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(n.C), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(n.Y), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(n.X), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(n.R), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(n.S), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(n.Stride), 10)
	return string(b)
}

// String renders the shape in a compact loop-nest notation.
func (l Layer) String() string {
	n := l.normalized()
	return fmt.Sprintf("%s %s K%d C%d Y%d X%d R%d S%d s%d x%d",
		n.Name, n.Kind, n.K, n.C, n.Y, n.X, n.R, n.S, n.Stride, n.Mult)
}

// Class partitions the benchmark suite for constraint selection (Table 1).
type Class int

const (
	// VisionLight models must sustain >=40 FPS at the edge.
	VisionLight Class = iota
	// VisionLarge models must sustain >=10 FPS.
	VisionLarge
	// NLP models carry model-specific sample-rate floors.
	NLP
)

// Model is a DNN workload: its unique layers and its execution-constraint
// class. MaxLatencyMs is the single-stream latency ceiling implied by the
// model's Table 1 throughput floor.
type Model struct {
	Name         string
	Class        Class
	Layers       []Layer
	MaxLatencyMs float64
}

// TotalLayers returns the operator count including multiplicities; the paper
// reports these totals in §5 and the suite in models.go matches them.
func (m *Model) TotalLayers() int {
	t := 0
	for _, l := range m.Layers {
		t += l.normalized().Mult
	}
	return t
}

// UniqueLayers returns the number of distinct tensor shapes.
func (m *Model) UniqueLayers() int { return len(m.Layers) }

// TotalMACs returns the network MAC count including multiplicities.
func (m *Model) TotalMACs() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.MACs() * int64(l.normalized().Mult)
	}
	return t
}

// Validate checks structural sanity of the model definition.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("workload: model %s has no layers", m.Name)
	}
	if m.MaxLatencyMs <= 0 {
		return fmt.Errorf("workload: model %s has no latency constraint", m.Name)
	}
	for _, l := range m.Layers {
		n := l.normalized()
		if n.Kind == Gemm && (n.Y != 1 || n.R != 1 || n.S != 1) {
			return fmt.Errorf("workload: GEMM layer %s must have Y=R=S=1", n.Name)
		}
		if l.K <= 0 || l.Mult <= 0 {
			return fmt.Errorf("workload: layer %s has non-positive K or Mult", l.Name)
		}
	}
	return nil
}
