package opt

import (
	"math"
	"math/rand"
)

// mlp is a one-hidden-layer perceptron with tanh activation, trained by
// REINFORCE through manual backpropagation. It serves as the policy network
// of the ConfuciuX-style baseline (the original uses an LSTM/MLP policy;
// the paper's methodology section generalizes it, and so do we).
type mlp struct {
	in, hidden, out int
	w1              [][]float64 // hidden x in
	b1              []float64
	w2              [][]float64 // out x hidden
	b2              []float64

	// forward-pass caches for backprop
	x []float64
	h []float64
}

func newMLP(in, hidden, out int, rng *rand.Rand) *mlp {
	m := &mlp{in: in, hidden: hidden, out: out}
	scale1 := math.Sqrt(2.0 / float64(in))
	scale2 := math.Sqrt(2.0 / float64(hidden))
	m.w1 = randMatrix(hidden, in, scale1, rng)
	m.b1 = make([]float64, hidden)
	m.w2 = randMatrix(out, hidden, scale2, rng)
	m.b2 = make([]float64, out)
	return m
}

func randMatrix(rows, cols int, scale float64, rng *rand.Rand) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64() * scale
		}
	}
	return m
}

// forward computes the output logits for input x, caching activations.
func (m *mlp) forward(x []float64) []float64 {
	m.x = append(m.x[:0], x...)
	if cap(m.h) < m.hidden {
		m.h = make([]float64, m.hidden)
	}
	m.h = m.h[:m.hidden]
	for i := 0; i < m.hidden; i++ {
		sum := m.b1[i]
		for j := 0; j < m.in; j++ {
			sum += m.w1[i][j] * x[j]
		}
		m.h[i] = math.Tanh(sum)
	}
	out := make([]float64, m.out)
	for i := 0; i < m.out; i++ {
		sum := m.b2[i]
		for j := 0; j < m.hidden; j++ {
			sum += m.w2[i][j] * m.h[j]
		}
		out[i] = sum
	}
	return out
}

// backward applies one SGD step given the gradient of the loss w.r.t. the
// output logits of the LAST forward call.
func (m *mlp) backward(dOut []float64, lr float64) {
	// Gradients w.r.t. hidden activations.
	dh := make([]float64, m.hidden)
	for i := 0; i < m.out; i++ {
		g := dOut[i]
		if g == 0 {
			continue
		}
		for j := 0; j < m.hidden; j++ {
			dh[j] += g * m.w2[i][j]
			m.w2[i][j] -= lr * g * m.h[j]
		}
		m.b2[i] -= lr * g
	}
	// Through tanh.
	for j := 0; j < m.hidden; j++ {
		g := dh[j] * (1 - m.h[j]*m.h[j])
		if g == 0 {
			continue
		}
		for k := 0; k < m.in; k++ {
			m.w1[j][k] -= lr * g * m.x[k]
		}
		m.b1[j] -= lr * g
	}
}
