package opt

import (
	"math"
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
	"xdse/internal/surrogate"
)

// HyperMapper is the HyperMapper 2.0-style constrained Bayesian optimizer
// [Nardi et al., MASCOTS'19] the paper uses as its strongest baseline: a
// random-forest surrogate for the objective plus a random-forest
// feasibility classifier; acquisition picks, from a random pool, the point
// with the lowest predicted objective among those predicted feasible
// (falling back to the highest feasibility probability when none are).
type HyperMapper struct {
	// Warmup is the number of initial random samples (default 20).
	Warmup int
	// Pool is the acquisition candidate pool size (default 500).
	Pool int
	// MaxFit caps surrogate training-set size (default 400).
	MaxFit int
}

// Name implements search.Optimizer.
func (HyperMapper) Name() string { return "HyperMapper2.0" }

// Run implements search.Optimizer.
func (h HyperMapper) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: h.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	warmup := h.Warmup
	if warmup <= 0 {
		warmup = 20
	}
	pool := h.Pool
	if pool <= 0 {
		pool = 500
	}
	maxFit := h.MaxFit
	if maxFit <= 0 {
		maxFit = 400
	}

	var xs [][]float64
	var objs []float64 // log-compressed penalized objective
	var feas []float64 // 1 = feasible
	observe := func(pts []arch.Point) bool {
		costs, ok := evalRecord(t, p, pts)
		for i, c := range costs {
			xs = append(xs, normalize(p, pts[i]))
			objs = append(objs, math.Log10(score(c)+1))
			if c.Feasible {
				feas = append(feas, 1)
			} else {
				feas = append(feas, 0)
			}
		}
		return ok
	}

	// The warmup population is model-independent: sample it up front and
	// evaluate through the worker pool in one batch. The acquisition loop
	// below refits the forests per pick, so it stays sequential.
	warm := make([]arch.Point, clampBatch(t, p, warmup))
	for i := range warm {
		warm[i] = p.Space.Random(rng)
	}
	if !observe(warm) {
		return t
	}

	cfg := surrogate.DefaultForestConfig()
	for {
		fx, fo, ff := xs, objs, feas
		if len(fx) > maxFit {
			fx, fo, ff = fx[len(fx)-maxFit:], fo[len(fo)-maxFit:], ff[len(ff)-maxFit:]
		}
		reg := surrogate.FitForest(fx, fo, cfg, rng)
		cls := surrogate.FitForest(fx, ff, cfg, rng)

		var bestFeasPt, bestAnyPt arch.Point
		bestFeasObj, bestAnyProb := math.Inf(1), math.Inf(-1)
		for i := 0; i < pool; i++ {
			pt := p.Space.Random(rng)
			x := normalize(p, pt)
			prob := cls.Predict(x)
			obj := reg.Predict(x)
			if prob >= 0.5 && obj < bestFeasObj {
				bestFeasObj, bestFeasPt = obj, pt
			}
			if prob > bestAnyProb {
				bestAnyProb, bestAnyPt = prob, pt
			}
		}
		next := bestFeasPt
		if next == nil {
			next = bestAnyPt
		}
		if !observe([]arch.Point{next}) {
			return t
		}
	}
}
