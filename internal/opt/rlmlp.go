package opt

import (
	"math"
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// RLMLP is the neural variant of the ConfuciuX-style baseline: an MLP
// policy network assigns parameters sequentially — the state encodes which
// parameter is being decided plus the partial assignment so far — trained
// with REINFORCE against a running baseline. It is slower per iteration
// than the factored-categorical RL but can capture inter-parameter
// structure, mirroring the original's LSTM/MLP policy more closely.
type RLMLP struct {
	// Hidden is the hidden-layer width (default 32).
	Hidden int
	// LearningRate for the policy updates (default 0.05).
	LearningRate float64
	// Epsilon is the exploration floor (default 0.05).
	Epsilon float64
	// Batch is the number of episodes rolled out from the frozen policy
	// network per round and evaluated through the problem's worker pool.
	// The default 1 is classic per-episode REINFORCE; larger batches
	// apply the gradient updates sequentially in rollout order after the
	// round evaluates, so the trace depends only on Batch and the seed,
	// never on Workers.
	Batch int
}

// Name implements search.Optimizer.
func (RLMLP) Name() string { return "ReinforcementLearning-MLP" }

// Run implements search.Optimizer.
func (r RLMLP) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: r.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	hidden := r.Hidden
	if hidden <= 0 {
		hidden = 32
	}
	lr := r.LearningRate
	if lr <= 0 {
		lr = 0.05
	}
	eps := r.Epsilon
	if eps <= 0 {
		eps = 0.05
	}

	nParams := len(p.Space.Params)
	maxOpts := 0
	for _, prm := range p.Space.Params {
		if n := len(prm.Values); n > maxOpts {
			maxOpts = n
		}
	}
	// State: one-hot parameter id + normalized partial assignment.
	net := newMLP(2*nParams, hidden, maxOpts, rng)

	type step struct {
		state  []float64
		probs  []float64
		action int
	}

	policy := func(state []float64, options int) ([]float64, int) {
		logits := net.forward(state)
		maxL := math.Inf(-1)
		for i := 0; i < options; i++ {
			if logits[i] > maxL {
				maxL = logits[i]
			}
		}
		probs := make([]float64, options)
		sum := 0.0
		for i := 0; i < options; i++ {
			probs[i] = math.Exp(logits[i] - maxL)
			sum += probs[i]
		}
		for i := range probs {
			probs[i] = probs[i]/sum*(1-eps) + eps/float64(options)
		}
		u := rng.Float64()
		acc := 0.0
		action := options - 1
		for i, pr := range probs {
			acc += pr
			if u <= acc {
				action = i
				break
			}
		}
		return probs, action
	}

	batch := r.Batch
	if batch < 1 {
		batch = 1
	}
	baseline := 0.0
	episodes := 0
	for {
		// Roll out a round of episodes from the frozen network on this
		// goroutine, evaluate them in parallel, then apply the REINFORCE
		// updates sequentially in rollout order.
		n := clampBatch(t, p, batch)
		pts := make([]arch.Point, n)
		rollouts := make([][]step, n)
		for k := range pts {
			pt := make(arch.Point, nParams)
			steps := make([]step, 0, nParams)
			state := make([]float64, 2*nParams)
			for i := 0; i < nParams; i++ {
				for j := range state {
					state[j] = 0
				}
				state[i] = 1
				for j := 0; j < i; j++ {
					n := len(p.Space.Params[j].Values)
					if n > 1 {
						state[nParams+j] = float64(pt[j]) / float64(n-1)
					}
				}
				probs, action := policy(state, len(p.Space.Params[i].Values))
				pt[i] = action
				steps = append(steps, step{append([]float64(nil), state...), probs, action})
			}
			pts[k], rollouts[k] = pt, steps
		}

		costs, record := evalRecord(t, p, pts)
		for k, c := range costs {
			reward := -math.Log10(score(c) + 1)
			episodes++
			if episodes == 1 {
				baseline = reward
			} else {
				baseline = 0.9*baseline + 0.1*reward
			}
			adv := reward - baseline

			// REINFORCE: descend on -adv*log pi, i.e. dLogits = adv*(pi - onehot).
			for _, st := range rollouts[k] {
				net.forward(st.state) // refresh caches
				grad := make([]float64, maxOpts)
				for i, pr := range st.probs {
					grad[i] = adv * pr
				}
				grad[st.action] -= adv
				net.backward(grad, lr)
			}
		}
		if !record {
			return t
		}
	}
}
