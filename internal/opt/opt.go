// Package opt implements the non-explainable DSE baselines the paper
// compares against (§5): non-feedback techniques (grid search, random
// search) and black-box feedback optimizations (simulated annealing, a
// genetic algorithm, Gaussian-process Bayesian optimization, a
// HyperMapper 2.0-style constrained random-forest optimizer, and a
// ConfuciuX-style reinforcement-learning explorer generalized to arbitrary
// parameter lists and constraints). All of them see exactly the same
// problem interface as Explainable-DSE and differ only in how they acquire
// the next candidates.
package opt

import (
	"math"

	"xdse/internal/search"
)

// infeasiblePenalty dominates any real objective so penalized scores order
// infeasible points strictly after feasible ones, and less-violating
// infeasible points first.
const infeasiblePenalty = 1e9

// score is the penalized objective black-box techniques minimize: the plain
// objective for feasible points, a constraint-utilization penalty otherwise.
func score(c search.Costs) float64 {
	if c.Feasible {
		return c.Objective
	}
	b := c.BudgetUtil
	if math.IsInf(b, 1) || math.IsNaN(b) {
		b = 1e6
	}
	return infeasiblePenalty * (1 + b)
}

// normalize maps a point to the unit hypercube for surrogate models.
func normalize(p *search.Problem, pt []int) []float64 {
	x := make([]float64, len(pt))
	for i, v := range pt {
		n := len(p.Space.Params[i].Values)
		if n > 1 {
			x[i] = float64(v) / float64(n-1)
		}
	}
	return x
}
