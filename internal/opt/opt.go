// Package opt implements the non-explainable DSE baselines the paper
// compares against (§5): non-feedback techniques (grid search, random
// search) and black-box feedback optimizations (simulated annealing, a
// genetic algorithm, Gaussian-process Bayesian optimization, a
// HyperMapper 2.0-style constrained random-forest optimizer, and a
// ConfuciuX-style reinforcement-learning explorer generalized to arbitrary
// parameter lists and constraints). All of them see exactly the same
// problem interface as Explainable-DSE and differ only in how they acquire
// the next candidates.
package opt

import (
	"math"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// infeasiblePenalty dominates any real objective so penalized scores order
// infeasible points strictly after feasible ones, and less-violating
// infeasible points first.
const infeasiblePenalty = 1e9

// score is the penalized objective black-box techniques minimize: the plain
// objective for feasible points, a constraint-utilization penalty otherwise.
func score(c search.Costs) float64 {
	if c.Feasible {
		return c.Objective
	}
	b := c.BudgetUtil
	if math.IsInf(b, 1) || math.IsNaN(b) {
		b = 1e6
	}
	return infeasiblePenalty * (1 + b)
}

// evalRecord pushes a candidate batch through the problem's bounded worker
// pool and records the results in deterministic candidate order. It returns
// the costs (for optimizers that feed them back into their models) and
// whether the budget allows further acquisitions. All randomness must have
// happened on the caller's goroutine while generating pts.
//
// A cancelled batch is never recorded and ends the run (false return): the
// interrupted trace is a clean batch-boundary prefix of the uninterrupted
// acquisition sequence, which is what the kill-and-resume contract needs.
// Every baseline routes its evaluations through here, so this check covers
// all of them.
func evalRecord(t *search.Trace, p *search.Problem, pts []arch.Point) ([]search.Costs, bool) {
	costs := p.EvaluateBatch(pts)
	if p.Cancelled() {
		return costs, false
	}
	return costs, t.RecordBatch(p, pts, costs)
}

// chunkSize is the streaming batch granularity for optimizers whose
// acquisitions are independent (grid/random search): a few points per
// worker keeps the pool busy without outrunning the budget by much. The
// trace is chunk-size independent — recording order and the budget cutoff
// depend only on the generated point sequence.
func chunkSize(p *search.Problem) int {
	n := p.Workers
	if n < 1 {
		n = 1
	}
	return 4 * n
}

// clampBatch bounds a desired batch size by the remaining unique-evaluation
// budget, so streaming optimizers never hand the evaluator designs the
// trace could not accept. Callers invoke it only while budget remains, so
// the result is at least 1.
func clampBatch(t *search.Trace, p *search.Problem, n int) int {
	if rem := p.Budget - t.Evaluations; n > rem {
		n = rem
	}
	if n < 1 {
		n = 1
	}
	return n
}

// normalize maps a point to the unit hypercube for surrogate models.
func normalize(p *search.Problem, pt []int) []float64 {
	x := make([]float64, len(pt))
	for i, v := range pt {
		n := len(p.Space.Params[i].Values)
		if n > 1 {
			x[i] = float64(v) / float64(n-1)
		}
	}
	return x
}
