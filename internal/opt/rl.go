package opt

import (
	"math"
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// RL is the ConfuciuX-style reinforcement-learning baseline [Kao et al.,
// MICRO'20], generalized — as the paper's methodology section describes —
// to an arbitrary number of parameters, differing option counts per
// parameter, and constraint-aware rewards. The policy is a factored
// categorical distribution (independent softmax logits per parameter)
// trained with REINFORCE against a running-baseline advantage; the reward
// is the negated, log-compressed, constraint-penalized objective.
type RL struct {
	// LearningRate for the policy-gradient updates (default 0.15).
	LearningRate float64
	// Epsilon is the exploration floor mixed into the policy
	// (default 0.05).
	Epsilon float64
	// Batch is the number of episodes sampled from the frozen policy per
	// round and evaluated through the problem's worker pool. The default
	// 1 is classic per-episode REINFORCE; larger batches apply the policy
	// updates sequentially in sampling order after the round evaluates,
	// so the trace depends only on Batch and the seed, never on Workers.
	Batch int
}

// Name implements search.Optimizer.
func (RL) Name() string { return "ReinforcementLearning" }

// Run implements search.Optimizer.
func (r RL) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: r.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	lr := r.LearningRate
	if lr <= 0 {
		lr = 0.15
	}
	eps := r.Epsilon
	if eps <= 0 {
		eps = 0.05
	}

	logits := make([][]float64, len(p.Space.Params))
	for i, prm := range p.Space.Params {
		logits[i] = make([]float64, len(prm.Values))
	}

	softmax := func(l []float64) []float64 {
		maxL := math.Inf(-1)
		for _, v := range l {
			if v > maxL {
				maxL = v
			}
		}
		out := make([]float64, len(l))
		sum := 0.0
		for i, v := range l {
			out[i] = math.Exp(v - maxL)
			sum += out[i]
		}
		for i := range out {
			out[i] = out[i]/sum*(1-eps) + eps/float64(len(out))
		}
		return out
	}
	sample := func(probs []float64) int {
		u := rng.Float64()
		acc := 0.0
		for i, pr := range probs {
			acc += pr
			if u <= acc {
				return i
			}
		}
		return len(probs) - 1
	}

	batch := r.Batch
	if batch < 1 {
		batch = 1
	}
	baseline := 0.0
	episodes := 0
	for {
		// Sample a round of episodes from the frozen policy on this
		// goroutine, evaluate them in parallel, then apply the REINFORCE
		// updates sequentially in sampling order.
		n := clampBatch(t, p, batch)
		pts := make([]arch.Point, n)
		probs := make([][][]float64, n)
		for k := range pts {
			pt := make(arch.Point, len(logits))
			pr := make([][]float64, len(logits))
			for i := range logits {
				pr[i] = softmax(logits[i])
				pt[i] = sample(pr[i])
			}
			pts[k], probs[k] = pt, pr
		}
		costs, record := evalRecord(t, p, pts)
		for k, c := range costs {
			reward := -math.Log10(score(c) + 1)
			episodes++
			if episodes == 1 {
				baseline = reward
			} else {
				baseline = 0.9*baseline + 0.1*reward
			}
			adv := reward - baseline

			for i := range logits {
				for j := range logits[i] {
					grad := -probs[k][i][j]
					if j == pts[k][i] {
						grad += 1
					}
					logits[i][j] += lr * adv * grad
				}
			}
		}
		if !record {
			return t
		}
	}
}
