package opt

import (
	"math/rand"
	"sort"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// Genetic is the evolutionary baseline (the paper uses scikit-opt):
// tournament selection, uniform crossover, and per-gene mutation over value
// indices, with the penalized objective as fitness.
type Genetic struct {
	// Pop is the population size (default 20).
	Pop int
	// MutationRate is the per-gene mutation probability (default 0.1).
	MutationRate float64
	// Elite is the number of top individuals carried over (default 2).
	Elite int
}

// Name implements search.Optimizer.
func (Genetic) Name() string { return "GeneticAlgorithm" }

// Run implements search.Optimizer.
func (g Genetic) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: g.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	pop := g.Pop
	if pop <= 0 {
		pop = 20
	}
	if pop > p.Budget {
		pop = max(p.Budget, 2)
	}
	mut := g.MutationRate
	if mut <= 0 {
		mut = 0.1
	}
	elite := g.Elite
	if elite <= 0 {
		elite = 2
	}

	type indiv struct {
		pt    arch.Point
		score float64
	}
	evalBatch := func(pts []arch.Point) ([]indiv, bool) {
		costs, ok := evalRecord(t, p, pts)
		inds := make([]indiv, len(pts))
		for i, c := range costs {
			inds[i] = indiv{pts[i], score(c)}
		}
		return inds, ok
	}

	// The initial population is sampled up front on this goroutine (the
	// RNG stream never leaves it) and evaluated through the worker pool.
	pts := make([]arch.Point, clampBatch(t, p, pop))
	for i := range pts {
		pts[i] = p.Space.Random(rng)
	}
	cur, ok := evalBatch(pts)
	if !ok {
		return t
	}

	tournament := func() indiv {
		a, b := cur[rng.Intn(len(cur))], cur[rng.Intn(len(cur))]
		if a.score <= b.score {
			return a
		}
		return b
	}

	for {
		sort.Slice(cur, func(i, j int) bool { return cur[i].score < cur[j].score })
		next := make([]indiv, 0, pop)
		next = append(next, cur[:min(elite, len(cur))]...)
		for len(next) < pop {
			// Breed a whole batch of children from the frozen parent
			// generation (selection only reads cur, so breeding order
			// fully determines the RNG stream), then evaluate them in
			// parallel and record in breeding order.
			children := make([]arch.Point, clampBatch(t, p, pop-len(next)))
			for j := range children {
				a, b := tournament(), tournament()
				child := make(arch.Point, len(a.pt))
				for i := range child {
					if rng.Intn(2) == 0 {
						child[i] = a.pt[i]
					} else {
						child[i] = b.pt[i]
					}
					if rng.Float64() < mut {
						child[i] = rng.Intn(len(p.Space.Params[i].Values))
					}
				}
				children[j] = child
			}
			inds, ok := evalBatch(children)
			next = append(next, inds...)
			if !ok {
				return t
			}
		}
		cur = next
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
