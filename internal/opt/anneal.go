package opt

import (
	"math"
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// Anneal is the simulated-annealing baseline (the paper uses SciPy's):
// single-site neighbor moves over value indices with a geometric cooling
// schedule over the penalized objective.
type Anneal struct {
	// T0 is the initial temperature as a fraction of the initial
	// penalized score (default 0.5).
	T0 float64
	// Alpha is the per-step cooling factor (default tuned to reach ~1e-3
	// of T0 by budget exhaustion).
	Alpha float64
	// Batch is the number of neighbor proposals drawn from the current
	// state per round and evaluated through the problem's worker pool.
	// The default 1 is classic sequential annealing; larger batches draw
	// all proposals from the frozen round-start state and then apply the
	// acceptance rule to them sequentially in proposal order, so the
	// trace depends only on Batch and the seed, never on Workers.
	Batch int
}

// Name implements search.Optimizer.
func (Anneal) Name() string { return "SimulatedAnnealing" }

// Run implements search.Optimizer.
func (a Anneal) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: a.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	cur := p.Start()
	curCosts := p.Evaluate(cur)
	if p.Cancelled() {
		return t
	}
	if !t.Record(p, cur, curCosts) {
		return t
	}
	curScore := score(curCosts)

	t0 := a.T0
	if t0 <= 0 {
		t0 = 0.5
	}
	alpha := a.Alpha
	if alpha <= 0 {
		alpha = math.Pow(1e-3, 1.0/float64(max(p.Budget, 2)))
	}
	temp := t0 * math.Abs(curScore)
	if temp == 0 || math.IsInf(temp, 0) {
		temp = t0 * infeasiblePenalty
	}

	batch := a.Batch
	if batch < 1 {
		batch = 1
	}
	for {
		// Propose a round of neighbors on this goroutine (the RNG stream
		// stays here), evaluate them in parallel, then run the acceptance
		// rule over the results in proposal order.
		pts := make([]arch.Point, clampBatch(t, p, batch))
		for i := range pts {
			pts[i] = neighbor(p.Space, cur, rng)
		}
		costs, record := evalRecord(t, p, pts)
		for i, c := range costs {
			nextScore := score(c)
			if nextScore <= curScore || rng.Float64() < math.Exp(-(nextScore-curScore)/math.Max(temp, 1e-12)) {
				cur, curScore = pts[i], nextScore
			}
			temp *= alpha
		}
		if !record {
			return t
		}
	}
}

// neighbor moves one random parameter by +-1 index.
func neighbor(space *arch.Space, pt arch.Point, rng *rand.Rand) arch.Point {
	next := pt.Clone()
	for tries := 0; tries < 8; tries++ {
		i := rng.Intn(len(space.Params))
		delta := 1
		if rng.Intn(2) == 0 {
			delta = -1
		}
		idx := space.Clamp(i, pt[i]+delta)
		if idx != pt[i] {
			next[i] = idx
			return next
		}
	}
	// Degenerate corner: re-randomize one parameter.
	i := rng.Intn(len(space.Params))
	next[i] = rng.Intn(len(space.Params[i].Values))
	return next
}
