package opt

import (
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// Grid is the non-feedback grid search baseline: it statically reduces the
// space to an evenly-strided lattice sized to the budget and evaluates it
// exhaustively in shuffled order (so partial budgets still cover the space).
type Grid struct{}

// Name implements search.Optimizer.
func (Grid) Name() string { return "GridSearch" }

// Run implements search.Optimizer.
func (Grid) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: Grid{}.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	// Pick per-parameter value-subset sizes so the lattice roughly
	// matches the budget: walk the parameters round-robin, giving each
	// one more sample point while the lattice still fits ~2x the budget.
	nParams := len(p.Space.Params)
	counts := make([]int, nParams)
	for i := range counts {
		counts[i] = 1
	}
	lattice := 1
	for grown := true; grown; {
		grown = false
		for i, prm := range p.Space.Params {
			if counts[i] >= len(prm.Values) {
				continue
			}
			if next := lattice / counts[i] * (counts[i] + 1); next <= 2*p.Budget {
				lattice = next
				counts[i]++
				grown = true
			}
		}
	}
	subsets := make([][]int, nParams)
	for i, prm := range p.Space.Params {
		n := len(prm.Values)
		k := counts[i]
		for j := 0; j < k; j++ {
			idx := j * (n - 1) / max(k-1, 1)
			subsets[i] = append(subsets[i], idx)
		}
	}

	// Enumerate the lattice in mixed-radix order into a shuffled list.
	total := 1
	for _, s := range subsets {
		total *= len(s)
	}
	order := rng.Perm(total)
	decode := func(code int) arch.Point {
		pt := make(arch.Point, nParams)
		for i := range subsets {
			pt[i] = subsets[i][code%len(subsets[i])]
			code /= len(subsets[i])
		}
		return pt
	}
	// Stream the shuffled lattice through the worker pool in chunks
	// clamped to the remaining budget. Lattice points are unique, so the
	// clamp is exact and the trace never overruns the budget.
	for off := 0; off < len(order); {
		n := min(clampBatch(t, p, chunkSize(p)), len(order)-off)
		pts := make([]arch.Point, n)
		for i := range pts {
			pts[i] = decode(order[off+i])
		}
		off += n
		if _, ok := evalRecord(t, p, pts); !ok {
			break
		}
	}
	return t
}

// Random is the non-feedback uniform random search baseline.
type Random struct{}

// Name implements search.Optimizer.
func (Random) Name() string { return "RandomSearch" }

// Run implements search.Optimizer.
func (Random) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: Random{}.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()
	// Sample chunks on this goroutine (one uninterrupted RNG stream) and
	// fan each chunk out across the worker pool. The recorded trace is the
	// same prefix of that stream regardless of chunk size or worker count:
	// RecordBatch stops at the budget and drops the rest of the chunk.
	for {
		pts := make([]arch.Point, clampBatch(t, p, chunkSize(p)))
		for i := range pts {
			pts[i] = p.Space.Random(rng)
		}
		if _, ok := evalRecord(t, p, pts); !ok {
			return t
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
