package opt

import (
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// Grid is the non-feedback grid search baseline: it statically reduces the
// space to an evenly-strided lattice sized to the budget and evaluates it
// exhaustively in shuffled order (so partial budgets still cover the space).
type Grid struct{}

// Name implements search.Optimizer.
func (Grid) Name() string { return "GridSearch" }

// Run implements search.Optimizer.
func (Grid) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: Grid{}.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	// Pick per-parameter value-subset sizes so the lattice roughly
	// matches the budget: walk the parameters round-robin, giving each
	// one more sample point while the lattice still fits ~2x the budget.
	nParams := len(p.Space.Params)
	counts := make([]int, nParams)
	for i := range counts {
		counts[i] = 1
	}
	lattice := 1
	for grown := true; grown; {
		grown = false
		for i, prm := range p.Space.Params {
			if counts[i] >= len(prm.Values) {
				continue
			}
			if next := lattice / counts[i] * (counts[i] + 1); next <= 2*p.Budget {
				lattice = next
				counts[i]++
				grown = true
			}
		}
	}
	subsets := make([][]int, nParams)
	for i, prm := range p.Space.Params {
		n := len(prm.Values)
		k := counts[i]
		for j := 0; j < k; j++ {
			idx := j * (n - 1) / max(k-1, 1)
			subsets[i] = append(subsets[i], idx)
		}
	}

	// Enumerate the lattice in mixed-radix order into a shuffled list.
	total := 1
	for _, s := range subsets {
		total *= len(s)
	}
	order := rng.Perm(total)
	for _, code := range order {
		pt := make(arch.Point, nParams)
		c := code
		for i := range subsets {
			pt[i] = subsets[i][c%len(subsets[i])]
			c /= len(subsets[i])
		}
		if !t.Record(p, pt, p.Evaluate(pt)) {
			break
		}
	}
	return t
}

// Random is the non-feedback uniform random search baseline.
type Random struct{}

// Name implements search.Optimizer.
func (Random) Name() string { return "RandomSearch" }

// Run implements search.Optimizer.
func (Random) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: Random{}.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()
	for {
		pt := p.Space.Random(rng)
		if !t.Record(p, pt, p.Evaluate(pt)) {
			return t
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
