package opt

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// synthProblem is a cheap separable minimization over the edge space: the
// objective rewards moving every index toward its target, and feasibility
// requires the first parameter to stay in the lower half (a constraint all
// constrained optimizers must learn). Its memo is lock-protected so tests
// may raise Workers above 1.
func synthProblem(budget int) *search.Problem {
	space := arch.EdgeSpace()
	var mu sync.Mutex
	cache := map[string]search.Costs{}
	return &search.Problem{
		Space:  space,
		Budget: budget,
		Evaluate: func(pt arch.Point) search.Costs {
			mu.Lock()
			defer mu.Unlock()
			if c, ok := cache[pt.Key()]; ok {
				return c
			}
			obj := 1.0
			for i, v := range pt {
				n := len(space.Params[i].Values)
				target := (n - 1) / 2
				d := float64(v-target) / float64(n)
				obj += d * d * 100
			}
			feasible := pt[0] <= len(space.Params[0].Values)/2
			util := 0.4
			violations := 0
			if !feasible {
				util = 1.5
				violations = 1
			}
			c := search.Costs{
				Objective: obj, Feasible: feasible,
				MeetsAreaPower: feasible, BudgetUtil: util, Violations: violations,
			}
			cache[pt.Key()] = c
			return c
		},
	}
}

// runAll exercises one optimizer and checks the universal contracts.
func checkOptimizer(t *testing.T, o search.Optimizer, budget int, wantBest float64) {
	t.Helper()
	p := synthProblem(budget)
	tr := o.Run(p, rand.New(rand.NewSource(42)))
	if tr.Evaluations > budget {
		t.Fatalf("%s: %d evaluations > budget %d", o.Name(), tr.Evaluations, budget)
	}
	if len(tr.Steps) != tr.Evaluations+tr.RepeatSteps {
		t.Fatalf("%s: steps %d != evaluations %d + repeats %d",
			o.Name(), len(tr.Steps), tr.Evaluations, tr.RepeatSteps)
	}
	if tr.Best == nil {
		t.Fatalf("%s: found no feasible point", o.Name())
	}
	if !tr.BestCosts.Feasible {
		t.Fatalf("%s: best point infeasible", o.Name())
	}
	if tr.BestObjective() > wantBest {
		t.Fatalf("%s: best %v > %v", o.Name(), tr.BestObjective(), wantBest)
	}
	// Best-so-far must be monotone non-increasing.
	prev := math.Inf(1)
	for _, s := range tr.Steps {
		if s.BestSoFar > prev {
			t.Fatalf("%s: best-so-far increased", o.Name())
		}
		prev = s.BestSoFar
	}
}

func TestGrid(t *testing.T)        { checkOptimizer(t, Grid{}, 600, 300) }
func TestRandom(t *testing.T)      { checkOptimizer(t, Random{}, 600, 90) }
func TestAnneal(t *testing.T)      { checkOptimizer(t, Anneal{}, 600, 70) }
func TestGenetic(t *testing.T)     { checkOptimizer(t, Genetic{}, 600, 70) }
func TestBayes(t *testing.T)       { checkOptimizer(t, Bayes{}, 200, 90) }
func TestHyperMapper(t *testing.T) { checkOptimizer(t, HyperMapper{}, 300, 90) }
func TestRL(t *testing.T)          { checkOptimizer(t, RL{}, 600, 90) }

func TestFeedbackBeatsRandomOnAverage(t *testing.T) {
	// The feedback optimizers should outperform pure random search on
	// the smooth synthetic objective given the same budget (averaged
	// over seeds to avoid flakiness).
	avg := func(o search.Optimizer) float64 {
		sum := 0.0
		for seed := int64(1); seed <= 5; seed++ {
			p := synthProblem(400)
			tr := o.Run(p, rand.New(rand.NewSource(seed)))
			sum += math.Min(tr.BestObjective(), 1000)
		}
		return sum / 5
	}
	rnd := avg(Random{})
	for _, o := range []search.Optimizer{Anneal{}, Genetic{}} {
		if got := avg(o); got > rnd*1.1 {
			t.Errorf("%s avg %v worse than random %v", o.Name(), got, rnd)
		}
	}
}

func TestScorePenalizesInfeasible(t *testing.T) {
	feas := search.Costs{Objective: 1e6, Feasible: true}
	infeas := search.Costs{Objective: 0.1, Feasible: false, BudgetUtil: 1.2}
	if score(feas) >= score(infeas) {
		t.Fatal("any feasible point must score below any infeasible point")
	}
	worse := search.Costs{Feasible: false, BudgetUtil: 3.0}
	if score(infeas) >= score(worse) {
		t.Fatal("less-violating infeasible points must score lower")
	}
	inf := search.Costs{Feasible: false, BudgetUtil: math.Inf(1)}
	if math.IsInf(score(inf), 1) || math.IsNaN(score(inf)) {
		t.Fatal("score must stay finite")
	}
}

func TestNormalize(t *testing.T) {
	p := synthProblem(1)
	pt := p.Space.Initial()
	x := normalize(p, pt)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("initial point normalizes to %v", x)
		}
	}
	for i := range pt {
		pt[i] = len(p.Space.Params[i].Values) - 1
	}
	for _, v := range normalize(p, pt) {
		if v != 1 {
			t.Fatal("max point must normalize to all ones")
		}
	}
}

func TestGridCoversBudget(t *testing.T) {
	p := synthProblem(500)
	tr := Grid{}.Run(p, rand.New(rand.NewSource(1)))
	if tr.Evaluations < 250 {
		t.Fatalf("grid evaluated only %d of 500 budget", tr.Evaluations)
	}
}

func TestNeighborMoves(t *testing.T) {
	space := arch.EdgeSpace()
	rng := rand.New(rand.NewSource(3))
	pt := space.Initial()
	for i := 0; i < 100; i++ {
		nb := neighbor(space, pt, rng)
		diff := 0
		for j := range nb {
			if nb[j] != pt[j] {
				diff++
				if nb[j] < 0 || nb[j] >= len(space.Params[j].Values) {
					t.Fatal("neighbor out of range")
				}
			}
		}
		if diff != 1 {
			t.Fatalf("neighbor changed %d params", diff)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	for _, o := range []search.Optimizer{Random{}, Anneal{}, Genetic{}, RL{}, HyperMapper{Warmup: 5, Pool: 50}} {
		a := o.Run(synthProblem(60), rand.New(rand.NewSource(9)))
		b := o.Run(synthProblem(60), rand.New(rand.NewSource(9)))
		if a.BestObjective() != b.BestObjective() {
			t.Errorf("%s: non-deterministic results", o.Name())
		}
	}
}

func TestRLMLP(t *testing.T) { checkOptimizer(t, RLMLP{}, 400, 90) }

func TestMLPLearnsXORishFunction(t *testing.T) {
	// Supervised sanity of the policy network's backprop: fit a small
	// nonlinear function by gradient descent on squared error.
	rng := rand.New(rand.NewSource(7))
	net := newMLP(2, 16, 1, rng)
	f := func(a, b float64) float64 {
		if (a > 0.5) != (b > 0.5) {
			return 1
		}
		return 0
	}
	for epoch := 0; epoch < 30000; epoch++ {
		a, b := rng.Float64(), rng.Float64()
		out := net.forward([]float64{a, b})
		grad := []float64{2 * (out[0] - f(a, b))}
		net.backward(grad, 0.1)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		out := net.forward([]float64{a, b})
		pred := 0.0
		if out[0] > 0.5 {
			pred = 1
		}
		if pred == f(a, b) {
			correct++
		}
	}
	if correct < 170 {
		t.Fatalf("MLP learned %d/200", correct)
	}
}
