package opt

import (
	"math"
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/search"
	"xdse/internal/surrogate"
)

// Bayes is the Gaussian-process Bayesian-optimization baseline (the paper
// uses the fmfn/BayesianOptimization package): an RBF-kernel GP over the
// unit-normalized parameter indices, fitted to the log-compressed penalized
// objective, with expected-improvement acquisition over a random candidate
// pool.
type Bayes struct {
	// Warmup is the number of initial random samples (default 10).
	Warmup int
	// Pool is the acquisition candidate pool size (default 300).
	Pool int
	// MaxFit caps the number of samples the GP is fitted to (default
	// 150; the most recent samples are kept, O(n^3) fitting otherwise
	// dominates).
	MaxFit int
	// Lengthscale is the RBF kernel lengthscale (default 0.3).
	Lengthscale float64
}

// Name implements search.Optimizer.
func (Bayes) Name() string { return "BayesianOptimization" }

// Run implements search.Optimizer.
func (b Bayes) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	t := &search.Trace{Name: b.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	warmup := b.Warmup
	if warmup <= 0 {
		warmup = 10
	}
	pool := b.Pool
	if pool <= 0 {
		pool = 300
	}
	maxFit := b.MaxFit
	if maxFit <= 0 {
		maxFit = 150
	}
	ls := b.Lengthscale
	if ls <= 0 {
		ls = 0.3
	}

	var xs [][]float64
	var ys []float64
	observe := func(pts []arch.Point) bool {
		costs, ok := evalRecord(t, p, pts)
		for i, c := range costs {
			xs = append(xs, normalize(p, pts[i]))
			ys = append(ys, math.Log10(score(c)+1))
		}
		return ok
	}

	// The warmup population is independent of the model, so it is sampled
	// up front and evaluated through the worker pool in one batch. The
	// acquisition loop below is inherently sequential (each pick needs the
	// refitted GP) and evaluates one point at a time.
	warm := make([]arch.Point, clampBatch(t, p, warmup))
	for i := range warm {
		warm[i] = p.Space.Random(rng)
	}
	if !observe(warm) {
		return t
	}

	for {
		fx, fy := xs, ys
		if len(fx) > maxFit {
			fx, fy = fx[len(fx)-maxFit:], fy[len(fy)-maxFit:]
		}
		gp := surrogate.FitGP(fx, fy, ls)

		bestY := math.Inf(1)
		for _, y := range fy {
			if y < bestY {
				bestY = y
			}
		}

		var bestPt arch.Point
		bestEI := math.Inf(-1)
		for i := 0; i < pool; i++ {
			pt := p.Space.Random(rng)
			mu, sigma := gp.Predict(normalize(p, pt))
			ei := surrogate.ExpectedImprovement(mu, sigma, bestY)
			if ei > bestEI {
				bestEI, bestPt = ei, pt
			}
		}
		if !observe([]arch.Point{bestPt}) {
			return t
		}
	}
}
