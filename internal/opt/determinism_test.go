package opt

import (
	"math/rand"
	"testing"

	"xdse/internal/search"
)

// assertTracesEqual pins two traces bit-identical: same acquisition
// sequence, same costs, same budget accounting, same best solution.
func assertTracesEqual(t *testing.T, name string, a, b *search.Trace) {
	t.Helper()
	if a.Evaluations != b.Evaluations || a.RepeatSteps != b.RepeatSteps {
		t.Fatalf("%s: accounting differs: %d/%d evaluations, %d/%d repeats",
			name, a.Evaluations, b.Evaluations, a.RepeatSteps, b.RepeatSteps)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("%s: %d vs %d steps", name, len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Point.Key() != sb.Point.Key() {
			t.Fatalf("%s: step %d acquired %v vs %v", name, i, sa.Point, sb.Point)
		}
		if sa.Costs != sb.Costs || sa.BestSoFar != sb.BestSoFar {
			t.Fatalf("%s: step %d costs differ: %+v vs %+v", name, i, sa.Costs, sb.Costs)
		}
	}
	if (a.Best == nil) != (b.Best == nil) {
		t.Fatalf("%s: one trace found a solution, the other did not", name)
	}
	if a.Best != nil && (a.Best.Key() != b.Best.Key() || a.BestCosts != b.BestCosts) {
		t.Fatalf("%s: best %v (%v) vs %v (%v)",
			name, a.Best, a.BestCosts.Objective, b.Best, b.BestCosts.Objective)
	}
}

// TestSerialParallelTraceEquality is the determinism contract of the batch
// layer: for every baseline optimizer, a run with Workers=8 must produce a
// trace bit-identical to the same run with Workers=1, including batched
// variants of the sequential techniques.
func TestSerialParallelTraceEquality(t *testing.T) {
	cases := []struct {
		name string
		mk   func() search.Optimizer
	}{
		{"Grid", func() search.Optimizer { return Grid{} }},
		{"Random", func() search.Optimizer { return Random{} }},
		{"Anneal", func() search.Optimizer { return Anneal{} }},
		{"Anneal-Batch4", func() search.Optimizer { return Anneal{Batch: 4} }},
		{"Genetic", func() search.Optimizer { return Genetic{} }},
		{"Bayes", func() search.Optimizer { return Bayes{Warmup: 8, Pool: 40} }},
		{"HyperMapper", func() search.Optimizer { return HyperMapper{Warmup: 8, Pool: 40} }},
		{"RL", func() search.Optimizer { return RL{} }},
		{"RL-Batch4", func() search.Optimizer { return RL{Batch: 4} }},
		{"RLMLP-Batch3", func() search.Optimizer { return RLMLP{Batch: 3} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := synthProblem(60)
			serial.Workers = 1
			parallel := synthProblem(60)
			parallel.Workers = 8
			a := tc.mk().Run(serial, rand.New(rand.NewSource(5)))
			b := tc.mk().Run(parallel, rand.New(rand.NewSource(5)))
			assertTracesEqual(t, tc.name, a, b)
		})
	}
}

// TestBatchedVariantsStayInBudget covers the batched sequential techniques
// against budget overruns and accounting drift under a parallel pool.
func TestBatchedVariantsStayInBudget(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    search.Optimizer
	}{
		{"Anneal", Anneal{Batch: 8}},
		{"RL", RL{Batch: 8}},
		{"RLMLP", RLMLP{Batch: 8}},
	} {
		p := synthProblem(50)
		p.Workers = 4
		tr := tc.o.Run(p, rand.New(rand.NewSource(11)))
		if tr.Evaluations > p.Budget {
			t.Errorf("%s: %d evaluations > budget %d", tc.name, tr.Evaluations, p.Budget)
		}
		if len(tr.Steps) != tr.Evaluations+tr.RepeatSteps {
			t.Errorf("%s: steps %d != evaluations %d + repeats %d",
				tc.name, len(tr.Steps), tr.Evaluations, tr.RepeatSteps)
		}
	}
}
