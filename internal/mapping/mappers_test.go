package mapping

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"xdse/internal/workload"
)

// covers reports whether every dimension's factors multiply to the padded
// extent — the structural invariant of a valid mapping.
func covers(m Mapping, dims [NumDims]int) bool {
	for d := Dim(0); d < NumDims; d++ {
		p := 1
		for lv := Level(0); lv < NumLevels; lv++ {
			p *= m.Factor(d, lv)
		}
		if p != dims[d] {
			return false
		}
	}
	return true
}

func testLayer() workload.Layer {
	return workload.Layer{Kind: workload.Conv, Name: "t", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1}
}

func TestRandomMappingCoversProperty(t *testing.T) {
	l := testLayer()
	dims := Dims(l)
	rng := rand.New(rand.NewSource(1))
	f := func() bool { return covers(Random(dims, rng), dims) }
	if err := quick.Check(func(uint8) bool { return f() }, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedOutputStationaryFits(t *testing.T) {
	// The fixed dataflow must produce buffer-fitting mappings for every
	// suite layer on both the smallest and a mid-size design.
	configs := []struct{ pes, l1, l2 int }{
		{64, 8, 64 * 1024},
		{512, 128, 512 * 1024},
		{4096, 1024, 4096 * 1024},
	}
	for _, m := range workload.Suite() {
		for _, l := range m.Layers {
			for _, c := range configs {
				mp := FixedOutputStationary(l, c.pes, c.l1, c.l2)
				if !covers(mp, Dims(l)) {
					t.Fatalf("%s/%s: mapping does not cover dims", m.Name, l.Name)
				}
				if got := RFTileBytes(l, &mp); got > int64(c.l1) {
					t.Fatalf("%s/%s: RF tile %dB > %dB", m.Name, l.Name, got, c.l1)
				}
				if got := L2TileBytes(l, &mp); got > int64(c.l2) {
					t.Fatalf("%s/%s: L2 tile %dB > %dB", m.Name, l.Name, got, c.l2)
				}
				if mp.SpatialPEs() > c.pes {
					t.Fatalf("%s/%s: %d PEs > %d", m.Name, l.Name, mp.SpatialPEs(), c.pes)
				}
			}
		}
	}
}

func TestFixedOutputStationaryIsOutputStationary(t *testing.T) {
	mp := FixedOutputStationary(testLayer(), 256, 128, 256*1024)
	if mp.DRAMStationary != TO || mp.NoCStationary != TO {
		t.Fatal("fixed dataflow must keep outputs stationary")
	}
}

// fitCost is a synthetic cost: valid iff tiles fit the given budget, cost
// favors more spatial parallelism.
func fitCost(l workload.Layer, pes, l1, l2 int) Cost {
	dims := Dims(l)
	return func(m *Mapping) (float64, bool) {
		if !covers(*m, dims) || m.SpatialPEs() > pes {
			return 0, false
		}
		if RFTileBytes(l, m) > int64(l1) || L2TileBytes(l, m) > int64(l2) {
			return 0, false
		}
		return 1e9 / float64(m.SpatialPEs()), true
	}
}

func TestRandomSearchFindsValid(t *testing.T) {
	l := testLayer()
	rng := rand.New(rand.NewSource(2))
	res := RandomSearch(l, 2000, rng, fitCost(l, 256, 512, 256*1024))
	if !res.Found {
		t.Fatal("random search found nothing")
	}
	if res.Evaluated != 2000 {
		t.Fatalf("evaluated %d, want 2000", res.Evaluated)
	}
}

func TestEnumeratePrunedFindsValidUnderTinyBuffers(t *testing.T) {
	// The regression of the minimal edge design: L1 = 8 bytes only
	// admits near-sequential mappings; the enumerator must still reach
	// them within budget.
	l := testLayer()
	cost := fitCost(l, 64, 8, 64*1024)
	res := EnumeratePruned(l, GenConfig{PEs: 64, L1Bytes: 8, L2Bytes: 64 * 1024, MaxN: 400}, cost)
	if !res.Found {
		t.Fatal("pruned enumeration found nothing under tiny buffers")
	}
	if res.Evaluated > 400 {
		t.Fatalf("budget exceeded: %d", res.Evaluated)
	}
}

func TestEnumeratePrunedPrefersUtilization(t *testing.T) {
	l := testLayer()
	cost := fitCost(l, 256, 1024, 1024*1024)
	res := EnumeratePruned(l, GenConfig{PEs: 256, L1Bytes: 1024, L2Bytes: 1024 * 1024, MaxN: 2000}, cost)
	if !res.Found {
		t.Fatal("nothing found")
	}
	// With generous buffers the search must occupy a healthy share of
	// the PE array (cost = 1e9/PEs, so Cycles reflects 1/utilization).
	if got := 1e9 / res.Cycles; got < 64 {
		t.Fatalf("best mapping uses only %.0f PEs", got)
	}
}

func TestEnumeratePrunedBaseValidSkipsEverything(t *testing.T) {
	l := testLayer()
	calls := 0
	cost := func(*Mapping) (float64, bool) { calls++; return 1, true }
	res := EnumeratePruned(l, GenConfig{PEs: 64, MaxN: 100, BaseValid: func(Mapping) bool { return false }}, cost)
	if res.Found || calls != 0 {
		t.Fatalf("BaseValid=false must suppress all evaluations (calls=%d)", calls)
	}
}

func TestPickSpread(t *testing.T) {
	vs := []int{1, 2, 4, 8, 16, 32, 64}
	got := pickSpread(vs, 3)
	if len(got) != 3 || got[0] != 64 {
		t.Fatalf("pickSpread = %v", got)
	}
	all := pickSpread(vs, 10)
	if len(all) != len(vs) || all[0] != 64 || all[len(all)-1] != 1 {
		t.Fatalf("pickSpread full = %v", all)
	}
}

func TestBlackBoxMappersRespectBudgetAndValidity(t *testing.T) {
	l := testLayer()
	cost := fitCost(l, 256, 512, 256*1024)
	dims := Dims(l)
	for name, fn := range map[string]func(workload.Layer, int, *rand.Rand, Cost) Result{
		"random":  RandomSearch,
		"anneal":  AnnealSearch,
		"genetic": GeneticSearch,
		"bayes":   BayesSearch,
	} {
		rng := rand.New(rand.NewSource(5))
		res := fn(l, 300, rng, cost)
		if res.Evaluated > 300 {
			t.Errorf("%s: evaluated %d > budget", name, res.Evaluated)
		}
		if !res.Found {
			t.Errorf("%s: found no valid mapping", name)
			continue
		}
		if math.IsInf(res.Cycles, 1) {
			t.Errorf("%s: infinite best cost", name)
		}
		if !covers(res.Best, dims) {
			t.Errorf("%s: best mapping does not cover dims", name)
		}
	}
}

func TestMutatePreservesCoverage(t *testing.T) {
	l := testLayer()
	dims := Dims(l)
	rng := rand.New(rand.NewSource(9))
	m := Random(dims, rng)
	for i := 0; i < 200; i++ {
		m = mutate(m, dims, rng)
		if !covers(m, dims) {
			t.Fatalf("mutation %d broke coverage", i)
		}
	}
}

// TestEnumeratePrunedEmitsOnlyCoveringMappings: every mapping the pruned
// generator evaluates must cover the padded dims exactly (the structural
// invariant the cost model assumes).
func TestEnumeratePrunedEmitsOnlyCoveringMappings(t *testing.T) {
	l := testLayer()
	dims := Dims(l)
	bad := 0
	cost := func(m *Mapping) (float64, bool) {
		if !covers(*m, dims) {
			bad++
		}
		return 1, true
	}
	EnumeratePruned(l, GenConfig{PEs: 256, L1Bytes: 512, L2Bytes: 256 * 1024, MaxN: 800}, cost)
	if bad != 0 {
		t.Fatalf("%d emitted mappings do not cover the dims", bad)
	}
}

// TestEnumeratePrunedRespectsPEBudget: no emitted mapping occupies more PEs
// than the generator was budgeted.
func TestEnumeratePrunedRespectsPEBudget(t *testing.T) {
	l := testLayer()
	over := 0
	cost := func(m *Mapping) (float64, bool) {
		if m.SpatialPEs() > 128 {
			over++
		}
		return 1, true
	}
	EnumeratePruned(l, GenConfig{PEs: 128, MaxN: 600}, cost)
	if over != 0 {
		t.Fatalf("%d emitted mappings exceed the PE budget", over)
	}
}

// TestProbeCostAnswersIncumbentProbe: when GenConfig.ProbeCost is set, the
// single warm-start probe must go through it (and only it) — the cost
// callback never sees the incumbent probe — and a cycle-exact probe must
// leave the whole Result bit-identical to a run probing through cost.
func TestProbeCostAnswersIncumbentProbe(t *testing.T) {
	l := benchLayer()
	cost, lb := benchCost(l)
	cold := EnumeratePruned(l, benchGenCfg(), cost)
	if !cold.Found {
		t.Fatal("no mapping found")
	}
	inc := cold.Best

	warmCfg := benchGenCfg()
	warmCfg.CostLB = lb
	warmCfg.Incumbent = &inc
	plain := EnumeratePruned(l, warmCfg, cost)

	probeCalls := 0
	spyCfg := benchGenCfg()
	spyCfg.CostLB = lb
	spyCfg.Incumbent = &inc
	spyCfg.ProbeCost = func(m *Mapping) (float64, bool) {
		probeCalls++
		if *m != inc {
			t.Fatalf("ProbeCost called with %v, want the incumbent %v", *m, inc)
		}
		return cost(m)
	}
	spied := EnumeratePruned(l, spyCfg, cost)

	if probeCalls != 1 {
		t.Fatalf("ProbeCost called %d times, want exactly 1", probeCalls)
	}
	if spied != plain {
		t.Fatalf("ProbeCost run diverged from plain warm run:\n%+v\n%+v", spied, plain)
	}
	if spied.Best != cold.Best || spied.Cycles != cold.Cycles || spied.Evaluated != cold.Evaluated {
		t.Fatalf("ProbeCost run diverged from cold run: %+v vs %+v", spied, cold)
	}
}

// TestSpreadDivisorsParallelConsistent hammers the sharded spreadDivisors
// and Divisors memos from many goroutines (run under -race in CI) and
// validates every answer against an unmemoized reference, including
// pathological n <= 0 keys that must not break the shard indexing.
func TestSpreadDivisorsParallelConsistent(t *testing.T) {
	type query struct{ n, max int }
	var queries []query
	for _, n := range []int{-7, 0, 1, 2, 12, 60, 64, 96, 112, 210, 1008, 4096, 6174} {
		// Production fan-outs are 2, 3, and 6 (pickSpread requires max >= 2).
		for _, max := range []int{2, 3, 6, 50} {
			queries = append(queries, query{n, max})
		}
	}
	ref := make(map[query][]int, len(queries))
	for _, q := range queries {
		n := q.n
		if n < 1 {
			n = 1
		}
		var ds []int
		for i := 1; i <= n; i++ {
			if n%i == 0 {
				ds = append(ds, i)
			}
		}
		ref[q] = pickSpread(ds, q.max)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				for _, q := range queries {
					got := spreadDivisors(q.n, q.max)
					want := ref[q]
					if len(got) != len(want) {
						errs[g] = fmt.Errorf("spreadDivisors(%d,%d) = %v, want %v", q.n, q.max, got, want)
						return
					}
					for i := range got {
						if got[i] != want[i] {
							errs[g] = fmt.Errorf("spreadDivisors(%d,%d)[%d] = %d, want %d", q.n, q.max, i, got[i], want[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
