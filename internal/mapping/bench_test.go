package mapping

import (
	"testing"

	"xdse/internal/workload"
)

// benchLayer is a mid-size CONV layer representative of the suite.
func benchLayer() workload.Layer {
	return workload.Layer{Kind: workload.Conv, Name: "b", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1}
}

// benchCost is an allocation-free synthetic cost model: compute-bound time
// plus a DRAM-traffic proxy, so its exact lower bound at a given spatial
// occupancy is macs/spatialPEs (mirroring the perf model's TComp floor).
func benchCost(l workload.Layer) (Cost, func(int) float64) {
	dims := Dims(l)
	macs := 1.0
	for d := Dim(0); d < NumDims; d++ {
		macs *= float64(dims[d])
	}
	cost := func(m *Mapping) (float64, bool) {
		t := macs / float64(m.SpatialPEs())
		return t + 0.01*t*float64(m.LevelProduct(LvlDRAM)), true
	}
	lb := func(spatialPEs int) float64 {
		if spatialPEs < 1 {
			spatialPEs = 1
		}
		return macs / float64(spatialPEs)
	}
	return cost, lb
}

func benchGenCfg() GenConfig {
	return GenConfig{PEs: 256, L1Bytes: 512, L2Bytes: 512 * 1024, MinN: 10, MaxN: 400}
}

// BenchmarkEnumeratePruned measures the pruned enumeration cold (no bound),
// with lower-bound self-pruning, and warm-started from the cold run's best.
func BenchmarkEnumeratePruned(b *testing.B) {
	l := benchLayer()
	cost, lb := benchCost(l)
	cold := EnumeratePruned(l, benchGenCfg(), cost)
	if !cold.Found {
		b.Fatal("no mapping found")
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EnumeratePruned(l, benchGenCfg(), cost)
		}
	})
	b.Run("lb-pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := benchGenCfg()
			cfg.CostLB = lb
			EnumeratePruned(l, cfg, cost)
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		incumbent := cold.Best
		for i := 0; i < b.N; i++ {
			cfg := benchGenCfg()
			cfg.CostLB = lb
			cfg.Incumbent = &incumbent
			EnumeratePruned(l, cfg, cost)
		}
	})
}

// TestEnumerateAllocsRegression pins the allocation count of one full pruned
// enumeration after the memo caches are warm. The pre-optimization hot loop
// allocated per candidate (divisor slices, pickSpread maps, option maps);
// the de-allocated loop amortizes to a handful of allocations per search.
func TestEnumerateAllocsRegression(t *testing.T) {
	l := benchLayer()
	cost, lb := benchCost(l)
	warmRes := EnumeratePruned(l, benchGenCfg(), cost) // warm the divisor/spread memos
	if !warmRes.Found {
		t.Fatal("no mapping found")
	}
	allocs := testing.AllocsPerRun(20, func() {
		cfg := benchGenCfg()
		cfg.CostLB = lb
		EnumeratePruned(l, cfg, cost)
	})
	// One enumerator struct plus small constant overhead; hundreds of
	// candidates are examined, so any per-candidate allocation blows far
	// past this bound.
	if allocs > 16 {
		t.Fatalf("pruned enumeration allocates %.0f times per search; hot loop has regressed", allocs)
	}
}

// TestWarmResultMatchesColdSynthetic is a mapping-level guard of the strict
// contract on the synthetic cost model (the perf-model version lives in
// internal/perf): warm and cold runs agree exactly.
func TestWarmResultMatchesColdSynthetic(t *testing.T) {
	l := benchLayer()
	cost, lb := benchCost(l)
	cold := EnumeratePruned(l, benchGenCfg(), cost)
	cfg := benchGenCfg()
	cfg.CostLB = lb
	inc := cold.Best
	cfg.Incumbent = &inc
	warm := EnumeratePruned(l, cfg, cost)
	if warm.Best != cold.Best || warm.Cycles != cold.Cycles || warm.Evaluated != cold.Evaluated {
		t.Fatalf("warm diverged: cold %v/%v/%d warm %v/%v/%d",
			cold.Best, cold.Cycles, cold.Evaluated, warm.Best, warm.Cycles, warm.Evaluated)
	}
	if warm.LBPruned == 0 {
		t.Fatal("warm run pruned nothing")
	}
	if warm.CostCalls >= cold.CostCalls {
		t.Fatalf("warm run made %d cost calls, cold %d; pruning saved nothing", warm.CostCalls, cold.CostCalls)
	}
}
