package mapping

import "xdse/internal/workload"

// haloElems returns the input-tile element count for the given output-tile
// extents (y, x), filter extents (r, s), channel count ch, and stride.
func haloElems(ch, y, x, r, s, stride int) int64 {
	iy := (y-1)*stride + r
	ix := (x-1)*stride + s
	return int64(ch) * int64(iy) * int64(ix)
}

// RFTileElems returns the per-PE register-file tile element count of tensor
// t: the data one PE holds while iterating its RF-level loops.
func RFTileElems(l workload.Layer, m *Mapping, t Tensor) int64 {
	k := m.Factor(DimK, LvlRF)
	c := m.Factor(DimC, LvlRF)
	y := m.Factor(DimY, LvlRF)
	x := m.Factor(DimX, LvlRF)
	r := m.Factor(DimR, LvlRF)
	s := m.Factor(DimS, LvlRF)
	switch t {
	case TW:
		if l.Kind == workload.DWConv {
			return int64(k) * int64(r) * int64(s)
		}
		return int64(k) * int64(c) * int64(r) * int64(s)
	case TI:
		ch := c
		if l.Kind == workload.DWConv {
			ch = k
		}
		return haloElems(ch, y, x, r, s, l.Stride)
	default:
		return int64(k) * int64(y) * int64(x)
	}
}

// L2TileElems returns the shared scratchpad tile element count of tensor t:
// the data resident in L2 for one DRAM-level tile (all PEs combined).
func L2TileElems(l workload.Layer, m *Mapping, t Tensor) int64 {
	th := func(d Dim) int { return m.TileThrough(d, LvlL2) }
	k, c, y, x, r, s := th(DimK), th(DimC), th(DimY), th(DimX), th(DimR), th(DimS)
	switch t {
	case TW:
		if l.Kind == workload.DWConv {
			return int64(k) * int64(r) * int64(s)
		}
		return int64(k) * int64(c) * int64(r) * int64(s)
	case TI:
		ch := c
		if l.Kind == workload.DWConv {
			ch = k
		}
		return haloElems(ch, y, x, r, s, l.Stride)
	default:
		return int64(k) * int64(y) * int64(x)
	}
}

// RFTileBytes returns the per-PE RF footprint of all tensors combined.
// It is the W+I+O sum of RFTileElems with the six RF factors read once
// instead of once per tensor — this runs per candidate inside the mapping
// generators' buffer-fit filters.
func RFTileBytes(l workload.Layer, m *Mapping) int64 {
	k := m.Factor(DimK, LvlRF)
	c := m.Factor(DimC, LvlRF)
	y := m.Factor(DimY, LvlRF)
	x := m.Factor(DimX, LvlRF)
	r := m.Factor(DimR, LvlRF)
	s := m.Factor(DimS, LvlRF)
	return tileBytesSum(l.Kind, l.Stride, k, c, y, x, r, s)
}

// L2TileBytes returns the shared scratchpad footprint of all tensors. Like
// RFTileBytes it reads the six tile-through-L2 extents once rather than per
// tensor.
func L2TileBytes(l workload.Layer, m *Mapping) int64 {
	k := m.TileThrough(DimK, LvlL2)
	c := m.TileThrough(DimC, LvlL2)
	y := m.TileThrough(DimY, LvlL2)
	x := m.TileThrough(DimX, LvlL2)
	r := m.TileThrough(DimR, LvlL2)
	s := m.TileThrough(DimS, LvlL2)
	return tileBytesSum(l.Kind, l.Stride, k, c, y, x, r, s)
}

// tileBytesSum is the shared W+I+O byte total for tile extents (k..s) at one
// level, in the same W, I, O addition order as summing the per-tensor elems
// (integer math, so factoring BytesPerElem out of the sum is exact).
func tileBytesSum(kind workload.Kind, stride, k, c, y, x, r, s int) int64 {
	var w int64
	ch := c
	if kind == workload.DWConv {
		w = int64(k) * int64(r) * int64(s)
		ch = k
	} else {
		w = int64(k) * int64(c) * int64(r) * int64(s)
	}
	return (w + haloElems(ch, y, x, r, s, stride) + int64(k)*int64(y)*int64(x)) * workload.BytesPerElem
}

// PaddedTensorElems returns the whole-layer element count of tensor t over
// the smooth-padded dimensions (the sizes the traffic model tiles).
func PaddedTensorElems(l workload.Layer, dims [NumDims]int, t Tensor) int64 {
	k, c, y, x, r, s := dims[DimK], dims[DimC], dims[DimY], dims[DimX], dims[DimR], dims[DimS]
	switch t {
	case TW:
		if l.Kind == workload.DWConv {
			return int64(k) * int64(r) * int64(s)
		}
		return int64(k) * int64(c) * int64(r) * int64(s)
	case TI:
		ch := c
		if l.Kind == workload.DWConv {
			ch = k
		}
		return haloElems(ch, y, x, r, s, l.Stride)
	default:
		return int64(k) * int64(y) * int64(x)
	}
}
