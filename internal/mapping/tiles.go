package mapping

import "xdse/internal/workload"

// haloElems returns the input-tile element count for the given output-tile
// extents (y, x), filter extents (r, s), channel count ch, and stride.
func haloElems(ch, y, x, r, s, stride int) int64 {
	iy := (y-1)*stride + r
	ix := (x-1)*stride + s
	return int64(ch) * int64(iy) * int64(ix)
}

// RFTileElems returns the per-PE register-file tile element count of tensor
// t: the data one PE holds while iterating its RF-level loops.
func RFTileElems(l workload.Layer, m Mapping, t Tensor) int64 {
	k := m.Factor(DimK, LvlRF)
	c := m.Factor(DimC, LvlRF)
	y := m.Factor(DimY, LvlRF)
	x := m.Factor(DimX, LvlRF)
	r := m.Factor(DimR, LvlRF)
	s := m.Factor(DimS, LvlRF)
	switch t {
	case TW:
		if l.Kind == workload.DWConv {
			return int64(k) * int64(r) * int64(s)
		}
		return int64(k) * int64(c) * int64(r) * int64(s)
	case TI:
		ch := c
		if l.Kind == workload.DWConv {
			ch = k
		}
		return haloElems(ch, y, x, r, s, l.Stride)
	default:
		return int64(k) * int64(y) * int64(x)
	}
}

// L2TileElems returns the shared scratchpad tile element count of tensor t:
// the data resident in L2 for one DRAM-level tile (all PEs combined).
func L2TileElems(l workload.Layer, m Mapping, t Tensor) int64 {
	th := func(d Dim) int { return m.TileThrough(d, LvlL2) }
	k, c, y, x, r, s := th(DimK), th(DimC), th(DimY), th(DimX), th(DimR), th(DimS)
	switch t {
	case TW:
		if l.Kind == workload.DWConv {
			return int64(k) * int64(r) * int64(s)
		}
		return int64(k) * int64(c) * int64(r) * int64(s)
	case TI:
		ch := c
		if l.Kind == workload.DWConv {
			ch = k
		}
		return haloElems(ch, y, x, r, s, l.Stride)
	default:
		return int64(k) * int64(y) * int64(x)
	}
}

// RFTileBytes returns the per-PE RF footprint of all tensors combined.
func RFTileBytes(l workload.Layer, m Mapping) int64 {
	var b int64
	for t := Tensor(0); t < NumTensors; t++ {
		b += RFTileElems(l, m, t) * workload.BytesPerElem
	}
	return b
}

// L2TileBytes returns the shared scratchpad footprint of all tensors.
func L2TileBytes(l workload.Layer, m Mapping) int64 {
	var b int64
	for t := Tensor(0); t < NumTensors; t++ {
		b += L2TileElems(l, m, t) * workload.BytesPerElem
	}
	return b
}

// PaddedTensorElems returns the whole-layer element count of tensor t over
// the smooth-padded dimensions (the sizes the traffic model tiles).
func PaddedTensorElems(l workload.Layer, dims [NumDims]int, t Tensor) int64 {
	k, c, y, x, r, s := dims[DimK], dims[DimC], dims[DimY], dims[DimX], dims[DimR], dims[DimS]
	switch t {
	case TW:
		if l.Kind == workload.DWConv {
			return int64(k) * int64(r) * int64(s)
		}
		return int64(k) * int64(c) * int64(r) * int64(s)
	case TI:
		ch := c
		if l.Kind == workload.DWConv {
			ch = k
		}
		return haloElems(ch, y, x, r, s, l.Stride)
	default:
		return int64(k) * int64(y) * int64(x)
	}
}
