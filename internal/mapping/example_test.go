package mapping_test

import (
	"fmt"

	"xdse/internal/mapping"
	"xdse/internal/workload"
)

// ExampleFixedOutputStationary maps a convolution with the output-stationary
// schema onto a 256-PE design with 512 B register files and a 512 KB
// scratchpad, and inspects the resulting tiling.
func ExampleFixedOutputStationary() {
	layer := workload.Layer{
		Kind: workload.Conv, Name: "conv",
		K: 64, C: 32, Y: 16, X: 16, R: 3, S: 3, Stride: 1, Mult: 1,
	}
	m := mapping.FixedOutputStationary(layer, 256, 512, 512*1024)

	fmt.Println("PEs used:", m.SpatialPEs())
	fmt.Println("stationary:", m.DRAMStationary, m.NoCStationary)
	fmt.Println("RF fits:", mapping.RFTileBytes(layer, &m) <= 512)
	fmt.Println("L2 fits:", mapping.L2TileBytes(layer, &m) <= 512*1024)
	// Output:
	// PEs used: 256
	// stationary: O O
	// RF fits: true
	// L2 fits: true
}

// ExampleDims shows the smooth padding applied to awkward loop extents.
func ExampleDims() {
	layer := workload.Layer{Kind: workload.Gemm, K: 197, C: 768, Y: 1, X: 197, R: 1, S: 1, Stride: 1}
	d := mapping.Dims(layer)
	fmt.Println(d[mapping.DimK], d[mapping.DimC], d[mapping.DimX])
	// Output:
	// 200 768 200
}
