package mapping

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"xdse/internal/workload"
)

// Cost evaluates a mapping and reports its latency in cycles and whether the
// mapping is valid on the target design (fits buffers and PEs, NoC
// time-sharing compatible). Mappers are decoupled from the cost model
// through this callback, mirroring how the paper's mappers call into the
// dMazeRunner cost model.
//
// The mapping is passed by pointer because this is the search inner loop
// (hundreds of thousands of calls per layer search, and Mapping is a
// 208-byte struct). The pointee is owned by the caller: the callback must
// not mutate it and must not retain the pointer past the call.
type Cost func(m *Mapping) (cycles float64, ok bool)

// Result is the outcome of a mapping search.
type Result struct {
	Best      Mapping
	Cycles    float64
	Found     bool
	Evaluated int

	// CostCalls is the number of cost-model invocations actually made,
	// including the warm-start probe and any strict-fallback
	// re-evaluations. Without pruning it equals Evaluated; with a
	// GenConfig.CostLB bound it is usually much smaller.
	CostCalls int
	// LBPruned counts candidates whose cost call was skipped because the
	// lower bound proved they could not beat the incumbent. Pruned
	// candidates still count toward Evaluated, so search trajectories
	// (band budgets, trial counts) are bit-identical with and without
	// pruning.
	LBPruned int
	// WarmFallback reports that the strict warm-start contract had to
	// re-evaluate externally-pruned candidates because the enumeration
	// did not strictly beat the probe (see EnumeratePruned).
	WarmFallback bool
}

// RandomSearch explores `trials` random valid-factor mappings (Timeloop-like
// random sampling over the factorization-constrained, reuse-aware space of
// §F) and returns the best valid one.
func RandomSearch(l workload.Layer, trials int, rng *rand.Rand, cost Cost) Result {
	dims := Dims(l)
	res := Result{Cycles: math.Inf(1)}
	// One scratch mapping outside the loop: its address goes through the
	// indirect cost call, so a per-iteration local would heap-escape every
	// trial.
	var m Mapping
	for i := 0; i < trials; i++ {
		m = Random(dims, rng)
		res.Evaluated++
		if c, ok := cost(&m); ok && c < res.Cycles {
			res.Best, res.Cycles, res.Found = m, c, true
		}
	}
	res.CostCalls = res.Evaluated
	return res
}

// pickSpread selects up to max values from vs, preferring the largest and a
// spread of smaller values; the ordering biases the pruned enumeration
// toward high-utilization tiles first (dMazeRunner's pruning heuristic).
func pickSpread(vs []int, max int) []int {
	if len(vs) <= max {
		out := make([]int, len(vs))
		copy(out, vs)
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	out := make([]int, 0, max)
	for i := 0; i < max; i++ {
		idx := len(vs) - 1 - i*(len(vs)-1)/(max-1)
		v := vs[idx]
		dup := false
		for _, u := range out {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// spreadKey indexes the memoized pickSpread-over-divisors lists.
type spreadKey struct{ n, max int }

// spreadShard is one shard of the spreadDivisors memo. Reads go through an
// atomically-published immutable map (no lock, no RLock cacheline write —
// the RWMutex reader count was measurable in the enumeration inner loop);
// writers clone-and-swap under the mutex.
type spreadShard struct {
	mu sync.Mutex
	m  atomic.Pointer[map[spreadKey][]int]
}

// spreadCache memoizes spreadDivisors, sharded by key so parallel
// enumerations (search.EvaluateBatch workers) do not serialize on a single
// global lock in their innermost loop: the enumeration asks for the same
// (dimension size, fan-out) pairs on every candidate, so the per-call map
// and slice allocations of the original hot loop collapse to lookups.
var spreadCache = func() *[memoShards]spreadShard {
	var s [memoShards]spreadShard
	for i := range s {
		m := map[spreadKey][]int{}
		s[i].m.Store(&m)
	}
	return &s
}()

// spreadDivisors returns pickSpread(Divisors(n), max), memoized. The
// returned slice is shared between callers and must be treated as read-only.
func spreadDivisors(n, max int) []int {
	k := spreadKey{n, max}
	sh := &spreadCache[(uint(n)*31+uint(max))%memoShards]
	if vs, ok := (*sh.m.Load())[k]; ok {
		return vs
	}
	vs := pickSpread(Divisors(n), max)
	sh.mu.Lock()
	cur := *sh.m.Load()
	if have, ok := cur[k]; ok {
		// A concurrent miss published first; return its slice so every
		// caller shares one canonical value.
		sh.mu.Unlock()
		return have
	}
	next := make(map[spreadKey][]int, len(cur)+1)
	for ck, cv := range cur {
		next[ck] = cv
	}
	next[k] = vs
	sh.m.Store(&next)
	sh.mu.Unlock()
	return vs
}

// GenConfig bounds the pruned enumeration.
type GenConfig struct {
	// PEs is the PE budget of the design under evaluation.
	PEs int
	// L1Bytes and L2Bytes are the buffer capacities used to prune
	// overflowing tiles before evaluation (dMazeRunner's buffer
	// utilization pruning); zero disables the corresponding filter.
	L1Bytes, L2Bytes int
	// MinN and MaxN bound the mapping-space budget; the generator relaxes
	// utilization thresholds until at least MinN candidates exist and
	// stops emitting after MaxN (the paper's auto-adjusted top-N space).
	MinN, MaxN int
	// BaseValid, when set, is consulted once per spatial tiling with a
	// minimal temporal fill; if it rejects, every mapping sharing that
	// spatial tiling is skipped (NoC-group demand and minimum tile
	// footprints depend only on the spatial factors).
	BaseValid func(Mapping) bool
	// Orderings limits stationary-tensor combinations (default all 9).
	Orderings []Mapping

	// CostLB, when set, returns a certified lower bound on cost(m) for
	// any mapping occupying the given spatial PE count (e.g. the
	// compute-time floor MACs/PEs of the perf model). The enumeration
	// skips the cost call for candidates whose bound proves they cannot
	// strictly beat the incumbent; skipped candidates still count toward
	// Evaluated, so the candidate trajectory — and therefore the returned
	// best mapping and cycles — is bit-identical with or without the
	// bound. Only CostCalls/LBPruned change.
	CostLB func(spatialPEs int) float64
	// Incumbent, when set, warm-starts the search: it is probed through
	// the cost model once before enumeration and its cycles seed the
	// pruning bound (it is never returned as the result). The strict
	// contract is preserved by a fallback pass: if the enumeration does
	// not strictly beat the probe, every candidate skipped on the probe's
	// account is re-evaluated in candidate order, so the returned best
	// mapping and cycles are always bit-identical to a cold run.
	// Incumbent is only consulted when CostLB is also set.
	Incumbent *Mapping
	// ProbeCost, when set, answers the single Incumbent probe in place of
	// the search's cost callback — e.g. an incremental re-evaluation
	// seeded from the incumbent's breakdown on a previous design
	// (perf.EvalContext.DeltaEvaluate). It MUST be cycle-exact with the
	// cost callback on the incumbent, or the strict bit-identical warm
	// start contract breaks. The probe still counts toward CostCalls.
	ProbeCost Cost
}

// defaultOrderings enumerates the 3x3 stationary-tensor choices.
func defaultOrderings() []Mapping {
	var out []Mapping
	for ds := Tensor(0); ds < NumTensors; ds++ {
		for ns := Tensor(0); ns < NumTensors; ns++ {
			out = append(out, Mapping{DRAMStationary: ds, NoCStationary: ns})
		}
	}
	return out
}

// allOrderings is the shared default ordering set (read-only).
var allOrderings = defaultOrderings()

// skippedCand is a candidate whose cost call was skipped on account of the
// external warm-start probe; it is remembered (with its candidate index) so
// the strict fallback can re-evaluate it in order.
type skippedCand struct {
	n int
	m Mapping
}

// enumerator carries the running state of one pruned enumeration: the
// incumbent, the candidate counter, the pruning bound, and the scratch
// buffers that keep the hot loop allocation-free.
type enumerator struct {
	cost      Cost
	lb        func(int) float64
	orderings []Mapping

	// probe is the external warm-start bound (+Inf when absent).
	probe float64
	// curLB is the lower bound of the current spatial base.
	curLB    float64
	hasLB    bool
	hasCurLB bool

	best       Mapping
	bestCycles float64
	bestN      int // candidate index of the first attainer of bestCycles
	found      bool

	n         int // candidates considered (the Evaluated count)
	limit     int // current band's candidate cap
	costCalls int
	pruned    int
	skipped   []skippedCand

	// bufs are the fit-filter scratch buffers of emitTemporal, one per
	// temporal nesting level (each holds at most 3 surviving factors).
	bufs [6][4]int
	// trial is the working mapping try hands to the cost callback. It
	// lives on the enumerator (heap-allocated once per search) so taking
	// its address for the indirect cost call does not force a fresh heap
	// escape per fill.
	trial Mapping
}

// setBase records the spatial base's PE occupancy, fixing the lower bound
// for every candidate emitted from that base.
func (e *enumerator) setBase(pes int) {
	e.hasCurLB = e.hasLB
	if e.hasLB {
		e.curLB = e.lb(pes)
	}
}

// try considers one temporal fill under every ordering. It returns false
// when the band's candidate budget is exhausted.
func (e *enumerator) try(m Mapping) bool {
	// One working copy per fill, held in the enumerator's scratch slot;
	// only the two stationary fields vary per ordering (the 208-byte
	// factor matrix is shared by all nine).
	e.trial = m
	mm := &e.trial
	for _, ord := range e.orderings {
		mm.DRAMStationary = ord.DRAMStationary
		mm.NoCStationary = ord.NoCStationary
		e.n++
		if e.hasCurLB {
			bound := e.bestCycles
			if e.probe < bound {
				bound = e.probe
			}
			if e.curLB >= bound {
				// The bound proves mm cannot strictly beat the
				// incumbent. Skips justified only by the probe
				// (curLB below the running best) must be
				// remembered for the strict fallback.
				e.pruned++
				if e.curLB < e.bestCycles {
					e.skipped = append(e.skipped, skippedCand{e.n, *mm})
				}
				if e.n >= e.limit {
					return false
				}
				continue
			}
		}
		e.costCalls++
		if c, ok := e.cost(mm); ok && c < e.bestCycles {
			e.best, e.bestCycles, e.found, e.bestN = *mm, c, true, e.n
		}
		if e.n >= e.limit {
			return false
		}
	}
	return true
}

// EnumeratePruned performs the dMazeRunner/Interstellar-style search of
// §4.8: it formulates a pruned space of at most MaxN high-utilization
// mappings (relaxing PE-utilization thresholds iteratively if the strict
// space is smaller than MinN) and evaluates it linearly.
//
// When GenConfig.CostLB is set, candidates that provably cannot beat the
// incumbent skip the cost-model call (but still count toward Evaluated);
// when GenConfig.Incumbent additionally seeds the bound, a strict fallback
// pass guarantees the returned best mapping and cycles are bit-identical to
// a cold run — only CostCalls, LBPruned, and WarmFallback vary.
func EnumeratePruned(l workload.Layer, cfg GenConfig, cost Cost) Result {
	dims := Dims(l)
	if cfg.MaxN <= 0 {
		cfg.MaxN = 2000
	}
	if cfg.MinN <= 0 {
		cfg.MinN = 10
	}
	orderings := cfg.Orderings
	if orderings == nil {
		orderings = allOrderings
	}

	e := &enumerator{
		cost:       cost,
		lb:         cfg.CostLB,
		hasLB:      cfg.CostLB != nil,
		orderings:  orderings,
		probe:      math.Inf(1),
		bestCycles: math.Inf(1),
	}
	if cfg.Incumbent != nil && e.hasLB {
		probe := cost
		if cfg.ProbeCost != nil {
			probe = cfg.ProbeCost
		}
		e.costCalls++
		if c, ok := probe(cfg.Incumbent); ok {
			e.probe = c
		}
	}

	// Utilization bands are explored from high PE utilization downward,
	// each with its own slice of the budget, so the search prefers
	// high-utilization tiles (dMazeRunner's pruning) but still reaches
	// low-parallelism mappings when links or buffers rule the big ones
	// out. Unused slices roll over to the next band.
	bands := [][2]float64{{0.75, 1.0}, {0.5, 0.75}, {0.25, 0.5}, {0, 0.25}}
	budget := cfg.MaxN
	for i, band := range bands {
		share := budget / (len(bands) - i)
		if share < cfg.MinN {
			share = cfg.MinN
		}
		if share > budget {
			share = budget
		}
		start := e.n
		e.limit = e.n + share
		e.enumerateAt(l, dims, cfg, band[0], band[1])
		budget -= e.n - start
		if budget <= 0 {
			break
		}
	}

	res := Result{
		Best: e.best, Cycles: e.bestCycles, Found: e.found,
		Evaluated: e.n, CostCalls: e.costCalls, LBPruned: e.pruned,
	}
	if len(e.skipped) > 0 && !(e.found && e.bestCycles < e.probe) {
		// Strict fallback: the enumeration did not strictly beat the
		// probe, so a candidate skipped on the probe's account could
		// have been the cold run's winner (or an earlier attainer of
		// the same cycles). Re-evaluate them in candidate order and
		// merge with first-attainer semantics.
		res.WarmFallback = true
		bestN := e.bestN
		for _, s := range e.skipped {
			res.CostCalls++
			e.trial = s.m
			c, ok := cost(&e.trial)
			if !ok {
				continue
			}
			if c < res.Cycles || (c == res.Cycles && res.Found && s.n < bestN) {
				res.Best, res.Cycles, res.Found = s.m, c, true
				bestN = s.n
			}
		}
	}
	if !res.Found {
		res.Cycles = math.Inf(1)
		res.Best = Mapping{}
	}
	return res
}

// enumerateAt runs one enumeration pass over spatial tilings whose PE
// utilization falls in [minUtil, maxUtil], capped at the enumerator's
// current band limit.
func (e *enumerator) enumerateAt(l workload.Layer, dims [NumDims]int, cfg GenConfig, minUtil, maxUtil float64) {
	const perDim = 6
	optK := spreadDivisors(dims[DimK], perDim)
	optC := spreadDivisors(dims[DimC], perDim)
	optY := spreadDivisors(dims[DimY], perDim)
	optX := spreadDivisors(dims[DimX], perDim)

	for _, sk := range optK {
		for _, sc := range optC {
			for _, sy := range optY {
				for _, sx := range optX {
					pes := sk * sc * sy * sx
					util := float64(pes) / float64(cfg.PEs)
					if pes > cfg.PEs || util < minUtil || util > maxUtil {
						continue
					}
					var base Mapping
					for d := Dim(0); d < NumDims; d++ {
						for lv := Level(0); lv < NumLevels; lv++ {
							base.F[d][lv] = 1
						}
						base.F[d][LvlDRAM] = dims[d]
					}
					base.F[DimK][LvlSpatial], base.F[DimK][LvlDRAM] = sk, dims[DimK]/sk
					base.F[DimC][LvlSpatial], base.F[DimC][LvlDRAM] = sc, dims[DimC]/sc
					base.F[DimY][LvlSpatial], base.F[DimY][LvlDRAM] = sy, dims[DimY]/sy
					base.F[DimX][LvlSpatial], base.F[DimX][LvlDRAM] = sx, dims[DimX]/sx
					// One validity probe per spatial base: NoC-group
					// demand and minimum tile footprints depend only
					// on the spatial factors, so a rejected base
					// cannot host any valid mapping.
					if cfg.BaseValid != nil && !cfg.BaseValid(base) {
						continue
					}
					e.setBase(pes)
					if !e.emitTemporal(l, base, dims, cfg) {
						return
					}
				}
			}
		}
	}
}

// fitOptions filters candidate factors of dimension d at level lv to those
// whose resulting tile fits the corresponding buffer, appending survivors to
// dst (a scratch buffer owned by the enumerator).
func fitOptions(l workload.Layer, m Mapping, d Dim, lv Level, factors []int, capacity int, tileBytes func(workload.Layer, *Mapping) int64, dst []int) []int {
	if capacity <= 0 {
		return factors
	}
	out := dst
	trial := m
	for _, f := range factors {
		trial.F[d][lv] = f
		if tileBytes(l, &trial) <= int64(capacity) {
			out = append(out, f)
		}
	}
	return out
}

// emitTemporal fills the RF/L2/DRAM factors of K,C,Y,X around the spatial
// base — pruning register-file and scratchpad overflows before evaluation —
// and emits candidate mappings until the band budget is exhausted. Filter
// taps are placed at the RF level when they fit, at the L2/DRAM boundary
// otherwise.
func (e *enumerator) emitTemporal(l workload.Layer, base Mapping, dims [NumDims]int, cfg GenConfig) bool {
	// Prefer filter taps resident in the RF (maximal convolution reuse).
	taps := base
	taps.F[DimR][LvlRF], taps.F[DimR][LvlDRAM] = dims[DimR]/base.F[DimR][LvlSpatial], 1
	taps.F[DimS][LvlRF], taps.F[DimS][LvlDRAM] = dims[DimS]/base.F[DimS][LvlSpatial], 1
	if cfg.L1Bytes <= 0 || RFTileBytes(l, &taps) <= int64(cfg.L1Bytes) {
		base = taps
	}

	remK := dims[DimK] / base.F[DimK][LvlSpatial]
	remC := dims[DimC] / base.F[DimC][LvlSpatial]
	remY := dims[DimY] / base.F[DimY][LvlSpatial]
	remX := dims[DimX] / base.F[DimX][LvlSpatial]

	rfK := fitOptions(l, base, DimK, LvlRF, spreadDivisors(remK, 3), cfg.L1Bytes, RFTileBytes, e.bufs[0][:0])
	for _, fk := range rfK {
		mk := base
		mk.F[DimK][LvlRF] = fk
		rfC := fitOptions(l, mk, DimC, LvlRF, spreadDivisors(remC, 3), cfg.L1Bytes, RFTileBytes, e.bufs[1][:0])
		for _, fc := range rfC {
			m := mk
			m.F[DimC][LvlRF] = fc
			l2K := fitOptions(l, m, DimK, LvlL2, spreadDivisors(remK/fk, 3), cfg.L2Bytes, L2TileBytes, e.bufs[2][:0])
			for _, gk := range l2K {
				mg := m
				mg.F[DimK][LvlL2] = gk
				l2C := fitOptions(l, mg, DimC, LvlL2, spreadDivisors(remC/fc, 3), cfg.L2Bytes, L2TileBytes, e.bufs[3][:0])
				for _, gc := range l2C {
					mc := mg
					mc.F[DimC][LvlL2] = gc
					l2Y := fitOptions(l, mc, DimY, LvlL2, spreadDivisors(remY, 3), cfg.L2Bytes, L2TileBytes, e.bufs[4][:0])
					for _, gy := range l2Y {
						my := mc
						my.F[DimY][LvlL2] = gy
						l2X := fitOptions(l, my, DimX, LvlL2, spreadDivisors(remX, 2), cfg.L2Bytes, L2TileBytes, e.bufs[5][:0])
						for _, gx := range l2X {
							mm := my
							mm.F[DimX][LvlL2] = gx
							mm.F[DimK][LvlDRAM] = remK / fk / gk
							mm.F[DimC][LvlDRAM] = remC / fc / gc
							mm.F[DimY][LvlDRAM] = remY / gy
							mm.F[DimX][LvlDRAM] = remX / gx
							if !e.try(mm) {
								return false
							}
						}
					}
				}
			}
		}
	}
	return true
}

// FixedOutputStationary builds the SOC-MOP output-stationary dataflow of the
// paper's fixed-dataflow baselines: spatialize output rows/columns and
// channels, keep partial sums stationary per PE, and greedily size temporal
// tiles to the available buffers. The returned mapping may be incompatible
// with the design's NoC time-sharing budget — such hardware/mapping
// incompatibilities are exactly the infeasibilities §6.2 attributes to
// fixed-dataflow DSE.
func FixedOutputStationary(l workload.Layer, pes, l1Bytes, l2Bytes int) Mapping {
	dims := Dims(l)
	var m Mapping
	for d := Dim(0); d < NumDims; d++ {
		for lv := Level(0); lv < NumLevels; lv++ {
			m.F[d][lv] = 1
		}
	}
	m.DRAMStationary = TO
	m.NoCStationary = TO

	// fits reports whether the trial's RF and L2 tiles are within the
	// buffer capacities (the minimal all-ones mapping always is on any
	// non-degenerate design, so the greedy growth below is safe).
	fits := func(trial *Mapping) bool {
		return RFTileBytes(l, trial) <= int64(l1Bytes) &&
			L2TileBytes(l, trial) <= int64(l2Bytes)
	}
	rem := func(d Dim) int {
		return dims[d] / (m.Factor(d, LvlSpatial) * m.Factor(d, LvlRF) * m.Factor(d, LvlL2))
	}
	// grow multiplies dimension d's factor at level lv by the largest
	// remaining divisor (capped at limit) that keeps the tiles fitting.
	grow := func(d Dim, lv Level, limit int) {
		for _, f := range descendingDivisors(rem(d)) {
			if f > limit {
				continue
			}
			trial := m
			trial.F[d][lv] *= f
			if fits(&trial) {
				m = trial
				return
			}
		}
	}

	// Spatial: Y and X up to sqrt(PEs) each, K fills the remainder.
	budget := pes
	side := int(math.Sqrt(float64(pes)))
	grow(DimY, LvlSpatial, side)
	budget /= m.Factor(DimY, LvlSpatial)
	grow(DimX, LvlSpatial, side)
	budget /= m.Factor(DimX, LvlSpatial)
	grow(DimK, LvlSpatial, budget)

	// RF: filter taps first, then input channels and output channels.
	for _, d := range []Dim{DimR, DimS, DimC, DimK} {
		grow(d, LvlRF, dims[d])
	}
	// L2: channels first, then spatial extents.
	for _, d := range []Dim{DimC, DimK, DimY, DimX, DimR, DimS} {
		grow(d, LvlL2, dims[d])
	}

	// DRAM level takes the remainder.
	for d := Dim(0); d < NumDims; d++ {
		m.F[d][LvlDRAM] = rem(d)
	}
	return m
}

func descendingDivisors(n int) []int {
	ds := Divisors(n)
	out := make([]int, len(ds))
	for i, d := range ds {
		out[len(ds)-1-i] = d
	}
	return out
}
