package mapping

import (
	"math"
	"math/rand"

	"xdse/internal/workload"
)

// Cost evaluates a mapping and reports its latency in cycles and whether the
// mapping is valid on the target design (fits buffers and PEs, NoC
// time-sharing compatible). Mappers are decoupled from the cost model
// through this callback, mirroring how the paper's mappers call into the
// dMazeRunner cost model.
type Cost func(m Mapping) (cycles float64, ok bool)

// Result is the outcome of a mapping search.
type Result struct {
	Best      Mapping
	Cycles    float64
	Found     bool
	Evaluated int
}

// RandomSearch explores `trials` random valid-factor mappings (Timeloop-like
// random sampling over the factorization-constrained, reuse-aware space of
// §F) and returns the best valid one.
func RandomSearch(l workload.Layer, trials int, rng *rand.Rand, cost Cost) Result {
	dims := Dims(l)
	res := Result{Cycles: math.Inf(1)}
	for i := 0; i < trials; i++ {
		m := Random(dims, rng)
		res.Evaluated++
		if c, ok := cost(m); ok && c < res.Cycles {
			res.Best, res.Cycles, res.Found = m, c, true
		}
	}
	return res
}

// pickSpread selects up to max values from vs, preferring the largest and a
// spread of smaller values; the ordering biases the pruned enumeration
// toward high-utilization tiles first (dMazeRunner's pruning heuristic).
func pickSpread(vs []int, max int) []int {
	if len(vs) <= max {
		out := make([]int, len(vs))
		copy(out, vs)
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	out := make([]int, 0, max)
	seen := map[int]bool{}
	for i := 0; i < max; i++ {
		idx := len(vs) - 1 - i*(len(vs)-1)/(max-1)
		v := vs[idx]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// GenConfig bounds the pruned enumeration.
type GenConfig struct {
	// PEs is the PE budget of the design under evaluation.
	PEs int
	// L1Bytes and L2Bytes are the buffer capacities used to prune
	// overflowing tiles before evaluation (dMazeRunner's buffer
	// utilization pruning); zero disables the corresponding filter.
	L1Bytes, L2Bytes int
	// MinN and MaxN bound the mapping-space budget; the generator relaxes
	// utilization thresholds until at least MinN candidates exist and
	// stops emitting after MaxN (the paper's auto-adjusted top-N space).
	MinN, MaxN int
	// BaseValid, when set, is consulted once per spatial tiling with a
	// minimal temporal fill; if it rejects, every mapping sharing that
	// spatial tiling is skipped (NoC-group demand and minimum tile
	// footprints depend only on the spatial factors).
	BaseValid func(Mapping) bool
	// Orderings limits stationary-tensor combinations (default all 9).
	Orderings []Mapping
}

// defaultOrderings enumerates the 3x3 stationary-tensor choices.
func defaultOrderings() []Mapping {
	var out []Mapping
	for ds := Tensor(0); ds < NumTensors; ds++ {
		for ns := Tensor(0); ns < NumTensors; ns++ {
			out = append(out, Mapping{DRAMStationary: ds, NoCStationary: ns})
		}
	}
	return out
}

// EnumeratePruned performs the dMazeRunner/Interstellar-style search of
// §4.8: it formulates a pruned space of at most MaxN high-utilization
// mappings (relaxing PE-utilization thresholds iteratively if the strict
// space is smaller than MinN) and evaluates it linearly.
func EnumeratePruned(l workload.Layer, cfg GenConfig, cost Cost) Result {
	dims := Dims(l)
	if cfg.MaxN <= 0 {
		cfg.MaxN = 2000
	}
	if cfg.MinN <= 0 {
		cfg.MinN = 10
	}
	orderings := cfg.Orderings
	if orderings == nil {
		orderings = defaultOrderings()
	}

	// Utilization bands are explored from high PE utilization downward,
	// each with its own slice of the budget, so the search prefers
	// high-utilization tiles (dMazeRunner's pruning) but still reaches
	// low-parallelism mappings when links or buffers rule the big ones
	// out. Unused slices roll over to the next band.
	bands := [][2]float64{{0.75, 1.0}, {0.5, 0.75}, {0.25, 0.5}, {0, 0.25}}
	res := Result{Cycles: math.Inf(1)}
	budget := cfg.MaxN
	for i, band := range bands {
		share := budget / (len(bands) - i)
		if share < cfg.MinN {
			share = cfg.MinN
		}
		if share > budget {
			share = budget
		}
		sub := enumerateAt(l, dims, cfg, band[0], band[1], share, orderings, cost)
		res.Evaluated += sub.Evaluated
		if sub.Found && sub.Cycles < res.Cycles {
			res.Best, res.Cycles, res.Found = sub.Best, sub.Cycles, true
		}
		budget -= sub.Evaluated
		if budget <= 0 {
			break
		}
	}
	return res
}

// enumerateAt runs one enumeration pass over spatial tilings whose PE
// utilization falls in [minUtil, maxUtil], capped at maxN evaluations.
func enumerateAt(l workload.Layer, dims [NumDims]int, cfg GenConfig, minUtil, maxUtil float64, maxN int, orderings []Mapping, cost Cost) Result {
	res := Result{Cycles: math.Inf(1)}
	perDim := 6

	spatialDims := []Dim{DimK, DimC, DimY, DimX}
	opt := make(map[Dim][]int, len(spatialDims))
	for _, d := range spatialDims {
		opt[d] = pickSpread(Divisors(dims[d]), perDim)
	}

	try := func(m Mapping) bool {
		for _, ord := range orderings {
			mm := m
			mm.DRAMStationary = ord.DRAMStationary
			mm.NoCStationary = ord.NoCStationary
			res.Evaluated++
			if c, ok := cost(mm); ok && c < res.Cycles {
				res.Best, res.Cycles, res.Found = mm, c, true
			}
			if res.Evaluated >= maxN {
				return false
			}
		}
		return true
	}

	for _, sk := range opt[DimK] {
		for _, sc := range opt[DimC] {
			for _, sy := range opt[DimY] {
				for _, sx := range opt[DimX] {
					pes := sk * sc * sy * sx
					util := float64(pes) / float64(cfg.PEs)
					if pes > cfg.PEs || util < minUtil || util > maxUtil {
						continue
					}
					var base Mapping
					for d := Dim(0); d < NumDims; d++ {
						for lv := Level(0); lv < NumLevels; lv++ {
							base.F[d][lv] = 1
						}
						base.F[d][LvlDRAM] = dims[d]
					}
					base.F[DimK][LvlSpatial], base.F[DimK][LvlDRAM] = sk, dims[DimK]/sk
					base.F[DimC][LvlSpatial], base.F[DimC][LvlDRAM] = sc, dims[DimC]/sc
					base.F[DimY][LvlSpatial], base.F[DimY][LvlDRAM] = sy, dims[DimY]/sy
					base.F[DimX][LvlSpatial], base.F[DimX][LvlDRAM] = sx, dims[DimX]/sx
					// One validity probe per spatial base: NoC-group
					// demand and minimum tile footprints depend only
					// on the spatial factors, so a rejected base
					// cannot host any valid mapping.
					if cfg.BaseValid != nil && !cfg.BaseValid(base) {
						continue
					}
					if !emitTemporal(l, base, dims, cfg, try) {
						return res
					}
				}
			}
		}
	}
	return res
}

// fitOptions filters candidate factors of dimension d at level lv to those
// whose resulting tile fits the corresponding buffer.
func fitOptions(l workload.Layer, m Mapping, d Dim, lv Level, factors []int, capacity int, tileBytes func(workload.Layer, Mapping) int64) []int {
	if capacity <= 0 {
		return factors
	}
	var out []int
	for _, f := range factors {
		trial := m
		trial.F[d][lv] = f
		if tileBytes(l, trial) <= int64(capacity) {
			out = append(out, f)
		}
	}
	return out
}

// emitTemporal fills the RF/L2/DRAM factors of K,C,Y,X around the spatial
// base — pruning register-file and scratchpad overflows before evaluation —
// and emits candidate mappings until the callback declines. Filter taps are
// placed at the RF level when they fit, at the L2/DRAM boundary otherwise.
func emitTemporal(l workload.Layer, base Mapping, dims [NumDims]int, cfg GenConfig, try func(Mapping) bool) bool {
	// Prefer filter taps resident in the RF (maximal convolution reuse).
	taps := base
	taps.F[DimR][LvlRF], taps.F[DimR][LvlDRAM] = dims[DimR]/base.F[DimR][LvlSpatial], 1
	taps.F[DimS][LvlRF], taps.F[DimS][LvlDRAM] = dims[DimS]/base.F[DimS][LvlSpatial], 1
	if cfg.L1Bytes <= 0 || RFTileBytes(l, taps) <= int64(cfg.L1Bytes) {
		base = taps
	}

	remK := dims[DimK] / base.F[DimK][LvlSpatial]
	remC := dims[DimC] / base.F[DimC][LvlSpatial]
	remY := dims[DimY] / base.F[DimY][LvlSpatial]
	remX := dims[DimX] / base.F[DimX][LvlSpatial]

	rfK := fitOptions(l, base, DimK, LvlRF, pickSpread(Divisors(remK), 3), cfg.L1Bytes, RFTileBytes)
	for _, fk := range rfK {
		mk := base
		mk.F[DimK][LvlRF] = fk
		rfC := fitOptions(l, mk, DimC, LvlRF, pickSpread(Divisors(remC), 3), cfg.L1Bytes, RFTileBytes)
		for _, fc := range rfC {
			m := mk
			m.F[DimC][LvlRF] = fc
			l2K := fitOptions(l, m, DimK, LvlL2, pickSpread(Divisors(remK/fk), 3), cfg.L2Bytes, L2TileBytes)
			for _, gk := range l2K {
				mg := m
				mg.F[DimK][LvlL2] = gk
				l2C := fitOptions(l, mg, DimC, LvlL2, pickSpread(Divisors(remC/fc), 3), cfg.L2Bytes, L2TileBytes)
				for _, gc := range l2C {
					mc := mg
					mc.F[DimC][LvlL2] = gc
					l2Y := fitOptions(l, mc, DimY, LvlL2, pickSpread(Divisors(remY), 3), cfg.L2Bytes, L2TileBytes)
					for _, gy := range l2Y {
						my := mc
						my.F[DimY][LvlL2] = gy
						l2X := fitOptions(l, my, DimX, LvlL2, pickSpread(Divisors(remX), 2), cfg.L2Bytes, L2TileBytes)
						for _, gx := range l2X {
							mm := my
							mm.F[DimX][LvlL2] = gx
							mm.F[DimK][LvlDRAM] = remK / fk / gk
							mm.F[DimC][LvlDRAM] = remC / fc / gc
							mm.F[DimY][LvlDRAM] = remY / gy
							mm.F[DimX][LvlDRAM] = remX / gx
							if !try(mm) {
								return false
							}
						}
					}
				}
			}
		}
	}
	return true
}

// FixedOutputStationary builds the SOC-MOP output-stationary dataflow of the
// paper's fixed-dataflow baselines: spatialize output rows/columns and
// channels, keep partial sums stationary per PE, and greedily size temporal
// tiles to the available buffers. The returned mapping may be incompatible
// with the design's NoC time-sharing budget — such hardware/mapping
// incompatibilities are exactly the infeasibilities §6.2 attributes to
// fixed-dataflow DSE.
func FixedOutputStationary(l workload.Layer, pes, l1Bytes, l2Bytes int) Mapping {
	dims := Dims(l)
	var m Mapping
	for d := Dim(0); d < NumDims; d++ {
		for lv := Level(0); lv < NumLevels; lv++ {
			m.F[d][lv] = 1
		}
	}
	m.DRAMStationary = TO
	m.NoCStationary = TO

	// fits reports whether the trial's RF and L2 tiles are within the
	// buffer capacities (the minimal all-ones mapping always is on any
	// non-degenerate design, so the greedy growth below is safe).
	fits := func(trial Mapping) bool {
		return RFTileBytes(l, trial) <= int64(l1Bytes) &&
			L2TileBytes(l, trial) <= int64(l2Bytes)
	}
	rem := func(d Dim) int {
		return dims[d] / (m.Factor(d, LvlSpatial) * m.Factor(d, LvlRF) * m.Factor(d, LvlL2))
	}
	// grow multiplies dimension d's factor at level lv by the largest
	// remaining divisor (capped at limit) that keeps the tiles fitting.
	grow := func(d Dim, lv Level, limit int) {
		for _, f := range descendingDivisors(rem(d)) {
			if f > limit {
				continue
			}
			trial := m
			trial.F[d][lv] *= f
			if fits(trial) {
				m = trial
				return
			}
		}
	}

	// Spatial: Y and X up to sqrt(PEs) each, K fills the remainder.
	budget := pes
	side := int(math.Sqrt(float64(pes)))
	grow(DimY, LvlSpatial, side)
	budget /= m.Factor(DimY, LvlSpatial)
	grow(DimX, LvlSpatial, side)
	budget /= m.Factor(DimX, LvlSpatial)
	grow(DimK, LvlSpatial, budget)

	// RF: filter taps first, then input channels and output channels.
	for _, d := range []Dim{DimR, DimS, DimC, DimK} {
		grow(d, LvlRF, dims[d])
	}
	// L2: channels first, then spatial extents.
	for _, d := range []Dim{DimC, DimK, DimY, DimX, DimR, DimS} {
		grow(d, LvlL2, dims[d])
	}

	// DRAM level takes the remainder.
	for d := Dim(0); d < NumDims; d++ {
		m.F[d][LvlDRAM] = rem(d)
	}
	return m
}

func descendingDivisors(n int) []int {
	ds := Divisors(n)
	out := make([]int, len(ds))
	for i, d := range ds {
		out[len(ds)-1-i] = d
	}
	return out
}
