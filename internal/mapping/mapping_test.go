package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xdse/internal/workload"
)

func TestSmooth(t *testing.T) {
	cases := map[int]int{
		1: 1, 2: 2, 3: 3, 7: 7, 11: 12, 13: 14, 197: 200,
		1000: 1000, 1009: 1024, 25088: 25088,
	}
	for n, want := range cases {
		if got := Smooth(n); got != want {
			t.Errorf("Smooth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSmoothProperties(t *testing.T) {
	f := func(n uint16) bool {
		v := int(n)%40000 + 1
		s := Smooth(v)
		if s < v {
			return false
		}
		// 7-smooth: only prime factors 2,3,5,7.
		for _, p := range []int{2, 3, 5, 7} {
			for s%p == 0 {
				s /= p
			}
		}
		return s == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v", got)
		}
	}
	if ds := Divisors(0); len(ds) != 1 || ds[0] != 1 {
		t.Fatalf("Divisors(0) = %v", ds)
	}
}

func TestRandomSplit4ProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint16) bool {
		v := Smooth(int(n)%5000 + 1)
		sp := RandomSplit4(v, rng)
		return sp[0]*sp[1]*sp[2]*sp[3] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumSplits4MatchesEnumeration(t *testing.T) {
	count := func(n int) int {
		c := 0
		for _, a := range Divisors(n) {
			for _, b := range Divisors(n / a) {
				c += len(Divisors(n / a / b))
			}
		}
		return c
	}
	for _, n := range []int{1, 2, 6, 12, 60, 64, 210, 1024} {
		if got, want := NumSplits4(n), float64(count(n)); got != want {
			t.Errorf("NumSplits4(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestDimsPadding(t *testing.T) {
	l := workload.Layer{Kind: workload.Conv, K: 1000, C: 3, Y: 197, X: 197, R: 3, S: 3, Stride: 1}
	d := Dims(l)
	if d[DimK] != 1000 || d[DimY] != 200 {
		t.Fatalf("dims = %v", d)
	}
	dwl := workload.Layer{Kind: workload.DWConv, K: 32, C: 32, Y: 8, X: 8, R: 3, S: 3, Stride: 1}
	if got := Dims(dwl)[DimC]; got != 1 {
		t.Fatalf("depthwise C dim = %d, want 1", got)
	}
}

func TestTensorDims(t *testing.T) {
	// Output never depends on reduction dims.
	for _, k := range []workload.Kind{workload.Conv, workload.DWConv, workload.Gemm} {
		for _, d := range ReductionDims(k) {
			if Indexes(k, TO, d) {
				t.Errorf("kind %v: output indexed by reduction dim %v", k, d)
			}
		}
	}
	// Depthwise inputs are indexed by K, not C.
	if !Indexes(workload.DWConv, TI, DimK) || Indexes(workload.DWConv, TI, DimC) {
		t.Fatal("depthwise input dims wrong")
	}
	// Weights never depend on output spatial position.
	for _, k := range []workload.Kind{workload.Conv, workload.DWConv, workload.Gemm} {
		if Indexes(k, TW, DimY) || Indexes(k, TW, DimX) {
			t.Errorf("kind %v: weights indexed by output position", k)
		}
	}
}

func TestMappingAccessors(t *testing.T) {
	var m Mapping
	if m.Factor(DimK, LvlRF) != 1 {
		t.Fatal("zero mapping factors must read as 1")
	}
	m.F[DimK][LvlSpatial] = 4
	m.F[DimK][LvlRF] = 2
	m.F[DimK][LvlL2] = 8
	if got := m.TileThrough(DimK, LvlL2); got != 64 {
		t.Fatalf("TileThrough = %d, want 64", got)
	}
	if got := m.SpatialPEs(); got != 4 {
		t.Fatalf("SpatialPEs = %d, want 4", got)
	}
	if got := m.LevelProduct(LvlRF); got != 2 {
		t.Fatalf("LevelProduct = %d, want 2", got)
	}
}

func TestTileArithmetic(t *testing.T) {
	l := workload.Layer{Kind: workload.Conv, K: 8, C: 4, Y: 6, X: 6, R: 3, S: 3, Stride: 1, Mult: 1}
	var m Mapping
	for d := Dim(0); d < NumDims; d++ {
		for lv := Level(0); lv < NumLevels; lv++ {
			m.F[d][lv] = 1
		}
	}
	m.F[DimK][LvlRF] = 2
	m.F[DimC][LvlRF] = 4
	m.F[DimR][LvlRF] = 3
	m.F[DimS][LvlRF] = 3
	// Per-PE RF tile: W = 2*4*3*3 = 72 elems; I = 4*3*3 = 36 (1x1 out,
	// 3x3 halo); O = 2.
	if got := RFTileElems(l, &m, TW); got != 72 {
		t.Fatalf("W RF tile = %d, want 72", got)
	}
	if got := RFTileElems(l, &m, TI); got != 36 {
		t.Fatalf("I RF tile = %d, want 36", got)
	}
	if got := RFTileElems(l, &m, TO); got != 2 {
		t.Fatalf("O RF tile = %d, want 2", got)
	}
	if got := RFTileBytes(l, &m); got != (72+36+2)*workload.BytesPerElem {
		t.Fatalf("RF bytes = %d", got)
	}
}

func TestL2TileIncludesSpatial(t *testing.T) {
	l := workload.Layer{Kind: workload.Conv, K: 8, C: 4, Y: 6, X: 6, R: 3, S: 3, Stride: 1, Mult: 1}
	var m Mapping
	for d := Dim(0); d < NumDims; d++ {
		for lv := Level(0); lv < NumLevels; lv++ {
			m.F[d][lv] = 1
		}
	}
	m.F[DimY][LvlSpatial] = 2
	m.F[DimY][LvlL2] = 3
	// O tile through L2: K=1, Y=6, X=1.
	if got := L2TileElems(l, &m, TO); got != 6 {
		t.Fatalf("O L2 tile = %d, want 6", got)
	}
}

func TestPaddedTensorElems(t *testing.T) {
	l := workload.Layer{Kind: workload.Gemm, K: 100, C: 50, Y: 1, X: 7, R: 1, S: 1, Stride: 1}
	dims := Dims(l)
	if got := PaddedTensorElems(l, dims, TW); got != int64(dims[DimK])*int64(dims[DimC]) {
		t.Fatalf("padded W = %d", got)
	}
}
