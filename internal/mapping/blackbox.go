package mapping

import (
	"math"
	"math/rand"

	"xdse/internal/surrogate"
	"xdse/internal/workload"
)

// This file implements the black-box mapping optimizers the paper compares
// in §F / Fig. 15: simulated annealing (SciPy-like), a genetic algorithm
// (scikit-opt-like), and Gaussian-process Bayesian optimization, all over
// the factorization-constrained mapping space. Random search lives in
// mappers.go; the paper finds it the most practical and uses it inside the
// black-box codesign explorations.

// invalidMappingScore penalizes invalid mappings in the black-box searches.
const invalidMappingScore = 1e12

func mappingScore(cost Cost, m Mapping) float64 {
	if c, ok := cost(&m); ok {
		return c
	}
	return invalidMappingScore
}

// mutate re-randomizes one random dimension's factor split (and sometimes
// an ordering choice).
func mutate(m Mapping, dims [NumDims]int, rng *rand.Rand) Mapping {
	out := m
	switch rng.Intn(8) {
	case 0:
		out.DRAMStationary = Tensor(rng.Intn(int(NumTensors)))
	case 1:
		out.NoCStationary = Tensor(rng.Intn(int(NumTensors)))
	default:
		d := Dim(rng.Intn(int(NumDims)))
		sp := RandomSplit4(dims[d], rng)
		for lv := Level(0); lv < NumLevels; lv++ {
			out.F[d][lv] = sp[lv]
		}
	}
	return out
}

// AnnealSearch optimizes a layer's mapping with simulated annealing.
func AnnealSearch(l workload.Layer, trials int, rng *rand.Rand, cost Cost) Result {
	dims := Dims(l)
	res := Result{Cycles: math.Inf(1)}

	cur := Random(dims, rng)
	curScore := mappingScore(cost, cur)
	res.Evaluated++
	if curScore < invalidMappingScore {
		res.Best, res.Cycles, res.Found = cur, curScore, true
	}

	temp := 0.5 * curScore
	alpha := math.Pow(1e-3, 1.0/float64(maxInt(trials, 2)))
	for res.Evaluated < trials {
		next := mutate(cur, dims, rng)
		nextScore := mappingScore(cost, next)
		res.Evaluated++
		if nextScore < res.Cycles {
			res.Best, res.Cycles, res.Found = next, nextScore, true
		}
		if nextScore <= curScore || rng.Float64() < math.Exp(-(nextScore-curScore)/math.Max(temp, 1e-9)) {
			cur, curScore = next, nextScore
		}
		temp *= alpha
	}
	if res.Cycles >= invalidMappingScore {
		res.Found = false
	}
	res.CostCalls = res.Evaluated
	return res
}

// GeneticSearch optimizes a layer's mapping with a genetic algorithm:
// per-dimension crossover and split-re-randomizing mutation.
func GeneticSearch(l workload.Layer, trials int, rng *rand.Rand, cost Cost) Result {
	dims := Dims(l)
	res := Result{Cycles: math.Inf(1)}
	pop := 16
	if pop > trials {
		pop = maxInt(trials, 2)
	}

	type indiv struct {
		m Mapping
		s float64
	}
	evalOne := func(m Mapping) indiv {
		s := mappingScore(cost, m)
		res.Evaluated++
		if s < res.Cycles {
			res.Best, res.Cycles, res.Found = m, s, true
		}
		return indiv{m, s}
	}

	cur := make([]indiv, 0, pop)
	for i := 0; i < pop && res.Evaluated < trials; i++ {
		cur = append(cur, evalOne(Random(dims, rng)))
	}
	tournament := func() indiv {
		a, b := cur[rng.Intn(len(cur))], cur[rng.Intn(len(cur))]
		if a.s <= b.s {
			return a
		}
		return b
	}
	for res.Evaluated < trials {
		next := make([]indiv, 0, pop)
		for len(next) < pop && res.Evaluated < trials {
			a, b := tournament(), tournament()
			child := a.m
			for d := Dim(0); d < NumDims; d++ {
				if rng.Intn(2) == 0 {
					for lv := Level(0); lv < NumLevels; lv++ {
						child.F[d][lv] = b.m.F[d][lv]
					}
				}
			}
			if rng.Intn(2) == 0 {
				child.NoCStationary = b.m.NoCStationary
			}
			if rng.Float64() < 0.3 {
				child = mutate(child, dims, rng)
			}
			next = append(next, evalOne(child))
		}
		if len(next) >= 2 {
			cur = next
		}
	}
	if res.Cycles >= invalidMappingScore {
		res.Found = false
	}
	res.CostCalls = res.Evaluated
	return res
}

// features embeds a mapping into a feature vector for surrogate models:
// log2 tiling factors normalized per dimension, plus the ordering choices.
func features(m Mapping, dims [NumDims]int) []float64 {
	var x []float64
	for d := Dim(0); d < NumDims; d++ {
		span := math.Log2(float64(dims[d]) + 1)
		for lv := Level(0); lv < NumLevels-1; lv++ { // DRAM factor is implied
			x = append(x, math.Log2(float64(m.Factor(d, lv)))/span)
		}
	}
	x = append(x, float64(m.DRAMStationary)/2, float64(m.NoCStationary)/2)
	return x
}

// BayesSearch optimizes a layer's mapping with GP-based Bayesian
// optimization over the factor-split feature embedding. As the paper finds
// (§F), its per-iteration overhead is far higher than random search.
func BayesSearch(l workload.Layer, trials int, rng *rand.Rand, cost Cost) Result {
	dims := Dims(l)
	res := Result{Cycles: math.Inf(1)}

	var xs [][]float64
	var ys []float64
	observe := func(m Mapping) {
		s := mappingScore(cost, m)
		res.Evaluated++
		if s < res.Cycles {
			res.Best, res.Cycles, res.Found = m, s, true
		}
		xs = append(xs, features(m, dims))
		ys = append(ys, math.Log10(s+1))
	}

	warmup := 10
	if warmup > trials {
		warmup = trials
	}
	for i := 0; i < warmup; i++ {
		observe(Random(dims, rng))
	}

	for res.Evaluated < trials {
		fx, fy := xs, ys
		if len(fx) > 120 {
			fx, fy = fx[len(fx)-120:], fy[len(fy)-120:]
		}
		gp := surrogate.FitGP(fx, fy, 0.3)
		bestY := math.Inf(1)
		for _, y := range fy {
			if y < bestY {
				bestY = y
			}
		}
		var bestM Mapping
		bestEI := math.Inf(-1)
		for i := 0; i < 100; i++ {
			m := Random(dims, rng)
			mu, sigma := gp.Predict(features(m, dims))
			if ei := surrogate.ExpectedImprovement(mu, sigma, bestY); ei > bestEI {
				bestEI, bestM = ei, m
			}
		}
		observe(bestM)
	}
	if res.Cycles >= invalidMappingScore {
		res.Found = false
	}
	res.CostCalls = res.Evaluated
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
