// Package mapping models the software half of the codesign: loop-nest
// mappings of DNN operators onto the accelerator template. A mapping is a
// four-level tiling (spatial / register-file / scratchpad / DRAM) of the six
// operator loop dimensions plus a loop-ordering choice expressed as which
// tensor stays temporally stationary at each memory boundary — the paper's
// "orderings with unique data reuse" (§F).
//
// The package also provides the mapping-space machinery of §4.8/§F:
// divisor-based valid tilings over smooth-padded dimensions, a
// dMazeRunner-style pruned enumeration with utilization thresholds adjusted
// to a top-N budget, a Timeloop-style random-search mapper, and the
// combinatorial space-size accounting reproduced in Table 7.
package mapping

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"xdse/internal/workload"
)

// Dim indexes a loop dimension of the operator nest.
type Dim int

const (
	DimK Dim = iota // output channels / GEMM rows
	DimC            // input channels / reduction
	DimY            // output rows
	DimX            // output columns
	DimR            // filter rows
	DimS            // filter columns
	// NumDims is the loop-dimension count.
	NumDims
)

// String names the dimension.
func (d Dim) String() string { return [...]string{"K", "C", "Y", "X", "R", "S"}[d] }

// Level indexes a tiling level of the processing hierarchy, innermost first.
type Level int

const (
	LvlSpatial Level = iota // across PEs
	LvlRF                   // temporal within a PE's register file
	LvlL2                   // temporal within the shared scratchpad
	LvlDRAM                 // temporal across off-chip tiles
	// NumLevels is the tiling-level count.
	NumLevels
)

// String names the level.
func (l Level) String() string { return [...]string{"spatial", "RF", "L2", "DRAM"}[l] }

// Tensor identifies one of the three logical tensors of an operator.
type Tensor int

const (
	TW Tensor = iota // weights
	TI               // input activations
	TO               // output activations / partial sums
	// NumTensors is the logical tensor count.
	NumTensors
)

// String names the tensor.
func (t Tensor) String() string { return [...]string{"W", "I", "O"}[t] }

// Mapping is one point of the mapping space.
type Mapping struct {
	// F[d][l] is the tiling factor of dimension d at level l; the product
	// over levels equals the smooth-padded dimension extent.
	F [NumDims][NumLevels]int
	// DRAMStationary is the tensor kept resident across DRAM-level loops
	// (its off-chip refetch factor collapses to 1).
	DRAMStationary Tensor
	// NoCStationary is the tensor reused across scratchpad-level loops
	// (its L2-to-PE refetch factor collapses to 1).
	NoCStationary Tensor
}

// Factor returns the tiling factor of d at level l, treating zero as 1 so a
// zero-valued Mapping is the trivial all-ones mapping.
func (m *Mapping) Factor(d Dim, l Level) int {
	if f := m.F[d][l]; f > 0 {
		return f
	}
	return 1
}

// TileThrough returns the tile extent of dimension d including all levels up
// to and including l.
func (m *Mapping) TileThrough(d Dim, l Level) int {
	t := 1
	for lv := LvlSpatial; lv <= l; lv++ {
		t *= m.Factor(d, lv)
	}
	return t
}

// SpatialPEs returns the number of PEs the mapping occupies.
func (m *Mapping) SpatialPEs() int {
	p := 1
	for d := Dim(0); d < NumDims; d++ {
		p *= m.Factor(d, LvlSpatial)
	}
	return p
}

// LevelProduct returns the product of all factors at level l.
func (m *Mapping) LevelProduct(l Level) int {
	p := 1
	for d := Dim(0); d < NumDims; d++ {
		p *= m.Factor(d, l)
	}
	return p
}

// String renders the mapping compactly.
func (m Mapping) String() string {
	s := ""
	for d := Dim(0); d < NumDims; d++ {
		s += fmt.Sprintf("%v:%d/%d/%d/%d ", d,
			m.Factor(d, LvlSpatial), m.Factor(d, LvlRF), m.Factor(d, LvlL2), m.Factor(d, LvlDRAM))
	}
	return s + fmt.Sprintf("dramStat=%v nocStat=%v", m.DRAMStationary, m.NoCStationary)
}

// TensorDims reports which loop dimensions index tensor t for operator kind
// k. Depthwise convolutions tie channels to K, so their inputs are indexed
// by K rather than C.
func TensorDims(k workload.Kind, t Tensor) []Dim {
	switch t {
	case TW:
		if k == workload.DWConv {
			return []Dim{DimK, DimR, DimS}
		}
		return []Dim{DimK, DimC, DimR, DimS}
	case TI:
		if k == workload.DWConv {
			return []Dim{DimK, DimY, DimX, DimR, DimS}
		}
		return []Dim{DimC, DimY, DimX, DimR, DimS}
	default:
		return []Dim{DimK, DimY, DimX}
	}
}

// ReductionDims reports the dimensions not indexing the output (partial-sum
// dimensions) for operator kind k.
func ReductionDims(k workload.Kind) []Dim {
	if k == workload.DWConv {
		return []Dim{DimR, DimS}
	}
	return []Dim{DimC, DimR, DimS}
}

// Indexes reports whether dimension d indexes tensor t under kind k.
func Indexes(k workload.Kind, t Tensor, d Dim) bool {
	for _, dd := range TensorDims(k, t) {
		if dd == d {
			return true
		}
	}
	return false
}

// smoothTable holds all 7-smooth numbers up to the padding ceiling, sorted.
var smoothTable = buildSmoothTable(1 << 17)

func buildSmoothTable(limit int) []int {
	var t []int
	for a := 1; a <= limit; a *= 2 {
		for b := a; b <= limit; b *= 3 {
			for c := b; c <= limit; c *= 5 {
				for d := c; d <= limit; d *= 7 {
					t = append(t, d)
				}
			}
		}
	}
	sort.Ints(t)
	return t
}

// Smooth returns the smallest 7-smooth integer >= n. Mappers pad loop
// extents to smooth values so every dimension has a rich divisor set (the
// padding waste shows up as idle iterations in the cost model, as on real
// mappers).
func Smooth(n int) int {
	if n <= 1 {
		return 1
	}
	i := sort.SearchInts(smoothTable, n)
	if i < len(smoothTable) {
		return smoothTable[i]
	}
	return n
}

// Dims returns the smooth-padded loop extents of a layer.
func Dims(l workload.Layer) [NumDims]int {
	k, c, y, x, r, s := l.K, l.C, l.Y, l.X, l.R, l.S
	if l.Kind == workload.DWConv {
		c = 1
	}
	pad := func(v int) int {
		if v < 1 {
			v = 1
		}
		return Smooth(v)
	}
	return [NumDims]int{pad(k), pad(c), pad(y), pad(x), pad(r), pad(s)}
}

// memoShards is the lock-shard count of the divisor and spread memos. The
// memos sit in the innermost enumeration loops, and under
// search.EvaluateBatch parallelism every worker used to contend on one
// global lock; sharding by key spreads that contention so the (after
// warm-up, read-only) lookups scale with the worker count.
const memoShards = 16

// divisorShard is one shard of the Divisors memo. Reads go through an
// atomically-published immutable map; writers clone-and-swap under the
// mutex (see spreadShard for why).
type divisorShard struct {
	mu sync.Mutex
	m  atomic.Pointer[map[int][]int]
}

// divisorCache memoizes Divisors per dimension size, sharded by size. Layer
// dimensions are smooth-padded to a small set of values, so enumeration hot
// loops ask for the same divisor lists millions of times across a DSE
// campaign; memoizing removes the dominant allocation of the mapping search.
var divisorCache = func() *[memoShards]divisorShard {
	var s [memoShards]divisorShard
	for i := range s {
		m := map[int][]int{}
		s[i].m.Store(&m)
	}
	return &s
}()

// Divisors returns the sorted divisors of n. The returned slice is memoized
// and shared between callers: it must be treated as read-only.
func Divisors(n int) []int {
	if n < 1 {
		n = 1
	}
	sh := &divisorCache[n%memoShards]
	if ds, ok := (*sh.m.Load())[n]; ok {
		return ds
	}
	var ds []int
	for i := 1; i*i <= n; i++ {
		if n%i == 0 {
			ds = append(ds, i)
			if j := n / i; j != i {
				ds = append(ds, j)
			}
		}
	}
	sort.Ints(ds)
	sh.mu.Lock()
	cur := *sh.m.Load()
	if have, ok := cur[n]; ok {
		sh.mu.Unlock()
		return have
	}
	next := make(map[int][]int, len(cur)+1)
	for ck, cv := range cur {
		next[ck] = cv
	}
	next[n] = ds
	sh.m.Store(&next)
	sh.mu.Unlock()
	return ds
}

// RandomSplit4 returns a uniformly-ish random ordered 4-way factor split of
// n (product of the four parts equals n), by repeatedly picking random
// divisors of the remainder.
func RandomSplit4(n int, rng *rand.Rand) [4]int {
	var out [4]int
	rem := n
	for i := 0; i < 3; i++ {
		ds := Divisors(rem)
		f := ds[rng.Intn(len(ds))]
		out[i] = f
		rem /= f
	}
	out[3] = rem
	return out
}

// NumSplits4 returns the number of ordered 4-way factor splits of n, i.e.
// the product over prime exponents e of C(e+3,3).
func NumSplits4(n int) float64 {
	count := 1.0
	for _, p := range []int{2, 3, 5, 7, 11, 13} {
		e := 0
		for n%p == 0 {
			n /= p
			e++
		}
		count *= float64((e + 1) * (e + 2) * (e + 3) / 6)
	}
	if n > 1 { // one residual prime factor
		count *= 4
	}
	return count
}

// Random returns a random valid-factor mapping of the padded dims.
func Random(dims [NumDims]int, rng *rand.Rand) Mapping {
	var m Mapping
	for d := Dim(0); d < NumDims; d++ {
		sp := RandomSplit4(dims[d], rng)
		for l := Level(0); l < NumLevels; l++ {
			m.F[d][l] = sp[l]
		}
	}
	m.DRAMStationary = Tensor(rng.Intn(int(NumTensors)))
	m.NoCStationary = Tensor(rng.Intn(int(NumTensors)))
	return m
}
