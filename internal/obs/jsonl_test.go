package obs

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewJSONLSink(path, JSONLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Run: "r", Kind: KindStepStarted, Attempt: 1},
		{Run: "r", Kind: KindBottleneckIdentified, Attempt: 1, Sub: 2, Factor: "T_noc_W", Contribution: 0.42, Scaling: 1.7},
		{Run: "r", Kind: KindMitigationProposed, Attempt: 1, Param: "NOC_W_bytes", Value: 32, Rule: "noc-width", Why: "wider links"},
		{Run: "r", Kind: KindBatchEvaluated, Attempt: 1, Points: 5, Hits: 2, Misses: 3, WallNs: 98765},
		{Run: "r", Kind: KindIncumbentImproved, Attempt: 1, Objective: 3.25, BudgetUtil: 0.8, Feasible: true, Point: "PEs=64"},
		// Infeasible incumbents carry an infinite objective; the sink must
		// survive it and the round trip must restore the exact value.
		{Run: "r", Kind: KindIncumbentImproved, Attempt: 2, Objective: Float(math.Inf(1)), BudgetUtil: Float(math.Inf(-1))},
		{Run: "r", Kind: KindNote, Attempt: 2, Text: "multi\nline\ntext\n"},
	}
	for _, ev := range evs {
		s.Emit(ev)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadTrace(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, wrote %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].Seq != i+1 {
			t.Errorf("event %d Seq = %d, want %d (sink-assigned, monotonic)", i, got[i].Seq, i+1)
		}
		if !got[i].EqualDeterministic(evs[i]) {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, got[i], evs[i])
		}
	}
}

func TestJSONLTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewJSONLSink(path, JSONLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Emit(Event{Kind: KindStepStarted, Attempt: 1})
	s.Emit(Event{Kind: KindStepStarted, Attempt: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a hard kill mid-append: a truncated line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"seq":3,"kind":"step_st`)
	f.Close()

	var warned []string
	got, err := ReadTrace(path, func(format string, args ...any) {
		warned = append(warned, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("torn tail must not be a fatal error: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d events, want the 2 intact ones", len(got))
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "torn") {
		t.Errorf("expected a torn-write warning, got %v", warned)
	}
}

func TestJSONLCorruptLineDropsRest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	content := `{"seq":1,"kind":"step_started","attempt":1}
not json at all
{"seq":3,"kind":"converged"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned int
	got, err := ReadTrace(path, func(string, ...any) { warned++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d events, want 1 (corrupt line and everything after dropped)", len(got))
	}
	if warned == 0 {
		t.Error("corrupt line produced no warning")
	}
}

func TestJSONLAppendExtends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s1, err := NewJSONLSink(path, JSONLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1.Emit(Event{Kind: KindStepStarted, Attempt: 1})
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewJSONLSink(path, JSONLOptions{Append: true})
	if err != nil {
		t.Fatal(err)
	}
	s2.Emit(Event{Kind: KindConverged, Attempt: 2})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("append-mode sink: read %d events, want 2", len(got))
	}
	if got[0].Kind != KindStepStarted || got[1].Kind != KindConverged {
		t.Errorf("appended events out of order: %+v", got)
	}
}

func TestJSONLEmptyTraceIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(path, nil); err == nil {
		t.Error("reading an empty trace should report an error")
	}
}
