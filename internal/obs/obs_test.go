package obs

import (
	"bytes"
	"strings"
	"testing"
)

// recordSink captures events, optionally logging each delivery into a shared
// journal so fan-out ordering across sinks is observable.
type recordSink struct {
	name    string
	events  []Event
	journal *[]string
}

func (s *recordSink) Emit(ev Event) {
	s.events = append(s.events, ev)
	if s.journal != nil {
		*s.journal = append(*s.journal, s.name)
	}
}

func TestMultiFanOutOrdering(t *testing.T) {
	var journal []string
	a := &recordSink{name: "a", journal: &journal}
	b := &recordSink{name: "b", journal: &journal}
	m := Multi(nil, a, nil, b)
	if m == nil {
		t.Fatal("Multi dropped live sinks")
	}
	evs := []Event{
		{Kind: KindStepStarted, Attempt: 1},
		{Kind: KindBatchEvaluated, Attempt: 1, Points: 3},
		{Kind: KindConverged, Attempt: 2},
	}
	for _, ev := range evs {
		m.Emit(ev)
	}
	for _, s := range []*recordSink{a, b} {
		if len(s.events) != len(evs) {
			t.Fatalf("sink %s got %d events, want %d", s.name, len(s.events), len(evs))
		}
		for i := range evs {
			if s.events[i] != evs[i] {
				t.Errorf("sink %s event %d = %+v, want %+v", s.name, i, s.events[i], evs[i])
			}
		}
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if strings.Join(journal, ",") != strings.Join(want, ",") {
		t.Errorf("fan-out order = %v, want %v (registration order per event)", journal, want)
	}
}

func TestMultiCollapses(t *testing.T) {
	if got := Multi(); got != nil {
		t.Errorf("Multi() = %v, want nil", got)
	}
	if got := Multi(nil, nil); got != nil {
		t.Errorf("Multi(nil, nil) = %v, want nil", got)
	}
	s := &recordSink{}
	if got := Multi(nil, s); got != Sink(s) {
		t.Errorf("Multi with one live sink should return it directly, got %T", got)
	}
}

func TestWithRunStampsLabel(t *testing.T) {
	s := &recordSink{}
	ws := WithRun(s, "runA")
	ws.Emit(Event{Kind: KindNote})
	ws.Emit(Event{Kind: KindNote, Run: "already"})
	if s.events[0].Run != "runA" {
		t.Errorf("unlabeled event Run = %q, want runA", s.events[0].Run)
	}
	if s.events[1].Run != "already" {
		t.Errorf("pre-labeled event Run = %q, want it untouched", s.events[1].Run)
	}
	if WithRun(nil, "x") != nil {
		t.Error("WithRun(nil) should be nil")
	}
}

func TestEmitterDisabled(t *testing.T) {
	var em *Emitter
	if em.Enabled() {
		t.Error("nil emitter reports Enabled")
	}
	em.Emit(Event{Kind: KindNote}) // must not panic
	if NewEmitter() != nil {
		t.Error("NewEmitter() with no sinks should be the nil (disabled) emitter")
	}
	if NewEmitter(nil, nil) != nil {
		t.Error("NewEmitter(nil, nil) should be the nil (disabled) emitter")
	}
	if !NewEmitter(NullSink{}).Enabled() {
		t.Error("emitter over a live sink should be enabled")
	}
}

// TestEmitAllocFree pins the zero-overhead contract: emitting through a
// disabled emitter and through a NullSink must not allocate — the Event
// travels by value end-to-end.
func TestEmitAllocFree(t *testing.T) {
	ev := Event{
		Kind: KindBatchEvaluated, Run: "r", Attempt: 3,
		Points: 8, Hits: 2, Misses: 6, WallNs: 12345,
	}
	var disabled *Emitter
	if n := testing.AllocsPerRun(1000, func() { disabled.Emit(ev) }); n != 0 {
		t.Errorf("disabled emitter: %v allocs/op, want 0", n)
	}
	null := NewEmitter(NullSink{})
	if n := testing.AllocsPerRun(1000, func() { null.Emit(ev) }); n != 0 {
		t.Errorf("null-sink emitter: %v allocs/op, want 0", n)
	}
}

func TestEqualDeterministic(t *testing.T) {
	a := Event{Kind: KindBatchEvaluated, Points: 4, WallNs: 100, Seq: 1}
	b := Event{Kind: KindBatchEvaluated, Points: 4, WallNs: 999, Seq: 7}
	if !a.EqualDeterministic(b) {
		t.Error("events differing only in WallNs/Seq must compare equal")
	}
	c := b
	c.Points = 5
	if a.EqualDeterministic(c) {
		t.Error("events differing in Points must not compare equal")
	}
}

func TestTextSinkWritesTextVerbatim(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	s.Emit(Event{Kind: KindStepStarted}) // no Text: skipped
	s.Emit(Event{Kind: KindNote, Text: "--- attempt 1 ---\ntree\n"})
	s.Emit(Event{Kind: KindConverged, Text: "converged.\n"})
	want := "--- attempt 1 ---\ntree\nconverged.\n"
	if buf.String() != want {
		t.Errorf("text sink wrote %q, want %q", buf.String(), want)
	}
}

func TestWriteReportTimeline(t *testing.T) {
	events := []Event{
		{Run: "r1", Kind: KindIncumbentImproved, Attempt: 0, Objective: 10, Feasible: false, BudgetUtil: 1.5},
		{Run: "r1", Kind: KindStepStarted, Attempt: 1},
		{Run: "r1", Kind: KindBottleneckIdentified, Attempt: 1, Sub: 0, Factor: "T_dma", Contribution: 0.6, Scaling: 2},
		{Run: "r1", Kind: KindMitigationProposed, Attempt: 1, Param: "L2_KB", Value: 256, Rule: "spm-grow"},
		{Run: "r1", Kind: KindBatchEvaluated, Attempt: 1, Points: 4, Hits: 1, Misses: 3, WallNs: 1000},
		{Run: "r1", Kind: KindIncumbentImproved, Attempt: 1, Objective: 8, Feasible: true, BudgetUtil: 0.9},
		{Run: "r1", Kind: KindStepStarted, Attempt: 2},
		{Run: "r1", Kind: KindConstraintMitigation, Attempt: 2, Factor: "power", Scaling: 1.2},
		{Run: "r1", Kind: KindMitigationProposed, Attempt: 2, Param: "PEs", Value: 128, Reduce: true, Rule: "shrink"},
		{Run: "r1", Kind: KindBatchEvaluated, Attempt: 2, Points: 2, Hits: 0, Misses: 2, WallNs: 1000},
		{Run: "r1", Kind: KindStepStalled, Attempt: 2, Stale: 1},
		{Run: "r2", Kind: KindConverged, Attempt: 1},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, events, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== run r1 ==",
		"step 0: -> initial: obj=10 feasible=false budget=1.50",
		"step 1: bottleneck[T_dma 60% s=2.00] mitigate[L2_KB -> 256 (spm-grow)] batch 4 pts (1 hit/3 new,",
		"-> improved: obj=8 feasible=true budget=0.90",
		"step 2: constraint[power s=1.20] mitigate[PEs -v 128 (shrink)]",
		"-> stalled (1)",
		"== run r2 ==",
		"step 1: -> converged",
		"== summary ==",
		"top bottlenecks: T_dma x1",
		"top mitigation rules: shrink x1, spm-grow x1",
		"constraint mitigations: power x1",
		"batches: 2 (6 points, 1 memo hits)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
}
