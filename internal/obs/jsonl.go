package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// JSONLOptions tunes a JSONLSink's durability/throughput trade-off, mirroring
// the checkpoint journal's knobs.
type JSONLOptions struct {
	// SyncEvery is the fsync cadence in emitted events: the file is
	// flushed and fsync'd after every SyncEvery-th event, bounding how
	// many trace lines a hard kill can lose. 0 selects the default (64);
	// negative syncs only on Flush/Close.
	SyncEvery int
	// Append opens the file in append mode instead of truncating it — the
	// resume path, where a fresh re-execution's events extend the
	// interrupted run's file.
	Append bool
}

func (o JSONLOptions) syncEvery() int {
	if o.SyncEvery == 0 {
		return 64
	}
	return o.SyncEvery
}

// JSONLSink persists events as one JSON object per line, with the same
// append/flush/fsync discipline as the checkpoint journal: buffered appends,
// periodic fsync, and a torn trailing line (the signature of a hard kill)
// tolerated by ReadTrace rather than poisoning the file. It assigns each
// event a monotonically increasing Seq at write time and is safe for
// concurrent Emit from parallel campaign runs.
type JSONLSink struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	opts     JSONLOptions
	seq      int
	unsynced int
	closed   bool
	err      error // first write error; reported by Close
}

// NewJSONLSink creates (or, with opts.Append, extends) the trace file at
// path and returns a sink writing to it.
func NewJSONLSink(path string, opts JSONLOptions) (*JSONLSink, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if opts.Append {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &JSONLSink{f: f, w: bufio.NewWriter(f), opts: opts}, nil
}

// Emit implements Sink: it stamps the sink's next sequence number on the
// event and appends its JSON line. Write errors are sticky and surface on
// Close — emission is on optimizer hot paths and must never abort a run.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	s.seq++
	ev.Seq = s.seq
	data, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		s.err = err
		return
	}
	s.unsynced++
	if n := s.opts.syncEvery(); n > 0 && s.unsynced >= n {
		s.err = s.flushLocked()
	}
}

// flushLocked drains the buffer and fsyncs. Caller holds s.mu.
func (s *JSONLSink) flushLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.unsynced = 0
	return nil
}

// Flush forces buffered events to stable storage (the interrupt path, where
// os.Exit skips deferred Closes).
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	if err := s.flushLocked(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes, fsyncs, and closes the trace file, returning the first
// error encountered over the sink's lifetime. Idempotent.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.f.Sync(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.f.Close(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// ReadTrace loads every intact event from a trace JSONL file. A line that is
// truncated or fails to parse — and everything after it — is dropped via
// warnf (nil discards warnings): the expected aftermath of a hard kill,
// never a fatal error. Only I/O failures are returned as errors.
func ReadTrace(path string, warnf func(format string, args ...any)) ([]Event, error) {
	events, _, err := ReadTraceChecked(path, warnf)
	return events, err
}

// ReadTraceChecked is ReadTrace additionally reporting whether lines were
// dropped — a torn or unparseable tail — so callers that must not silently
// present a partial trace (xdse report) can fail loudly while tolerant
// callers keep the intact prefix.
func ReadTraceChecked(path string, warnf func(format string, args ...any)) (events []Event, torn bool, err error) {
	warn := func(format string, args ...any) {
		if warnf != nil {
			warnf(format, args...)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	rest := string(data)
	lineNo := 0
	for rest != "" {
		lineNo++
		text, tail, complete := strings.Cut(rest, "\n")
		if !complete {
			warn("obs: %s line %d: torn write (no newline), dropping", path, lineNo)
			torn = true
			break
		}
		rest = tail
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			warn("obs: %s line %d: %v — dropping this and later lines", path, lineNo, err)
			torn = true
			break
		}
		events = append(events, ev)
	}
	if events == nil && lineNo == 0 {
		return nil, false, fmt.Errorf("obs: %s: empty trace", path)
	}
	return events, torn, nil
}
