package obs

// MetricsSink derives metrics from the event stream: per-kind event
// counters, mitigation-rule firing counters, bottleneck-factor counters,
// and incumbent/convergence counts. It is how "which rules fire how often"
// reaches the Prometheus dump without the engine touching the registry
// directly.
type MetricsSink struct {
	reg *Registry
}

// NewMetricsSink returns a sink that folds events into reg; a nil registry
// yields a nil Sink interface (dropped by Multi, never a typed-nil trap).
func NewMetricsSink(reg *Registry) Sink {
	if reg == nil {
		return nil
	}
	return &MetricsSink{reg: reg}
}

// Emit implements Sink: it increments the counters the event implies.
func (s *MetricsSink) Emit(ev Event) {
	s.reg.Counter(`obs_events_total{kind="` + string(ev.Kind) + `"}`).Inc()
	switch ev.Kind {
	case KindMitigationProposed:
		if ev.Rule != "" {
			s.reg.Counter(`dse_mitigation_rule_firings_total{rule="` + ev.Rule + `"}`).Inc()
		}
	case KindBottleneckIdentified:
		if ev.Factor != "" {
			s.reg.Counter(`dse_bottleneck_factor_total{factor="` + ev.Factor + `"}`).Inc()
		}
	case KindConstraintMitigation:
		if ev.Factor != "" {
			s.reg.Counter(`dse_constraint_mitigation_total{factor="` + ev.Factor + `"}`).Inc()
		}
	case KindBatchEvaluated:
		s.reg.Counter("dse_batch_points_total").Add(int64(ev.Points))
		s.reg.Counter("dse_batch_hits_total").Add(int64(ev.Hits))
		s.reg.Counter("dse_batch_misses_total").Add(int64(ev.Misses))
	case KindIncumbentImproved:
		s.reg.Counter("dse_incumbent_improvements_total").Inc()
		s.reg.Gauge("dse_incumbent_objective").Set(float64(ev.Objective))
	case KindConverged:
		s.reg.Counter("dse_convergences_total").Inc()
	case KindSpan:
		s.reg.Counter(`obs_spans_total{kind="` + ev.SpanKind + `"}`).Inc()
	}
}
