package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are atomic and
// nil-safe (a nil counter ignores writes and reads zero), so instrumented
// code never needs a registry-presence branch.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric that can move both ways (cache occupancy,
// hit ratios). Atomic and nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram: observations are counted
// into ascending upper-bound buckets plus an overflow bucket, with the exact
// sum, count, and maximum tracked alongside so tail quantiles beyond the
// last bound stay honest. Atomic and nil-safe.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	maxBits atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBuckets is the default bucket layout for seconds-valued latency
// histograms: exponential from 100µs to ~52s, fine enough to separate a
// cache hit from a mapping search from a batch.
func DurationBuckets() []float64 {
	b := make([]float64, 0, 20)
	for v := 0.0001; v < 60; v *= 2 {
		b = append(b, v)
	}
	return b
}

// newHistogram builds a histogram over the given ascending upper bounds
// (nil selects DurationBuckets).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample (in the histogram's native unit, seconds for
// latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	// Max of an empty histogram reads 0, so non-negative latency samples
	// only ever raise it.
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation inside
// the bucket that holds it; samples landing in the overflow bucket resolve
// to the exact tracked maximum. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				return h.Max()
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if hi > h.Max() {
				hi = h.Max()
			}
			if hi < lo {
				return h.bounds[i]
			}
			return lo + (hi-lo)*((rank-cum)/n)
		}
		cum += n
	}
	return h.Max()
}

// snapshotBuckets returns (upper bound, cumulative count) pairs in
// Prometheus _bucket form, ending with the +Inf bucket.
func (h *Histogram) snapshotBuckets() ([]float64, []uint64) {
	cum := uint64(0)
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	return h.bounds, counts
}

// merge folds src's observations into h (same bucket layout assumed; the
// registry guarantees it for same-named histograms it created).
func (h *Histogram) merge(src *Histogram) {
	if src == nil {
		return
	}
	for i := range src.counts {
		if i < len(h.counts) {
			h.counts[i].Add(src.counts[i].Load())
		}
	}
	h.count.Add(src.count.Load())
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+src.Sum())) {
			break
		}
	}
	if m := src.Max(); m > h.Max() {
		h.maxBits.Store(math.Float64bits(m))
	}
}

// Registry is a goroutine-safe collection of named metrics. Metric names
// follow the Prometheus convention (`eval_design_evaluations_total`); a
// label-carrying series is named with its label set inline
// (`dse_mitigation_rule_firings_total{rule="scale-pes"}`) and is grouped
// under its base name in the Prometheus dump. Lookup is get-or-create, so
// instrumented code holds direct metric pointers and the hot path never
// touches the registry lock.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// slab amortizes counter allocation: instrumented components resolve
	// a dozen-plus counters at construction time (eval.New does), and one
	// chunk allocation covers them all.
	slab []Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter, 24),
		gauges:     map[string]*Gauge{},
		histograms: make(map[string]*Histogram, 4),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe: a
// nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		if len(r.slab) == 0 {
			r.slab = make([]Counter, 16)
		}
		c = &r.slab[0]
		r.slab = r.slab[1:]
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (nil selects DurationBuckets) on first use; an existing histogram
// keeps its original buckets. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Merge folds every metric of src into r, creating missing metrics (with
// src's bucket layouts) as needed. Campaigns use it to aggregate per-run
// registries into one campaign-level registry. Nil-safe on both sides.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	type hsrc struct {
		name string
		h    *Histogram
	}
	var cs []struct {
		name string
		v    int64
	}
	var gs []struct {
		name string
		v    float64
	}
	var hs []hsrc
	for name, c := range src.counters {
		cs = append(cs, struct {
			name string
			v    int64
		}{name, c.Value()})
	}
	for name, g := range src.gauges {
		gs = append(gs, struct {
			name string
			v    float64
		}{name, g.Value()})
	}
	for name, h := range src.histograms {
		hs = append(hs, hsrc{name, h})
	}
	src.mu.Unlock()
	for _, c := range cs {
		r.Counter(c.name).Add(c.v)
	}
	for _, g := range gs {
		r.Gauge(g.name).Set(g.v)
	}
	for _, h := range hs {
		r.Histogram(h.name, h.h.bounds).merge(h.h)
	}
}

// Reset zeroes every registered metric in place (metric pointers held by
// instrumented code stay valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
		h.maxBits.Store(0)
	}
}

// HistogramSnapshot is the exported view of one histogram in Snapshot.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observations.
	Sum float64 `json:"sum"`
	// Max is the largest observation.
	Max float64 `json:"max"`
	// P50 and P95 are interpolated quantiles.
	P50 float64 `json:"p50"`
	// P95 is the interpolated 95th-percentile observation.
	P95 float64 `json:"p95"`
}

// Snapshot returns a point-in-time copy of every metric: counters and gauges
// by value, histograms as HistogramSnapshot. The result is JSON-marshalable,
// which is what Expvar publishes.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = HistogramSnapshot{
			Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95),
		}
	}
	return out
}

// Expvar adapts the registry to the standard expvar protocol: publish the
// returned Func under a name (`expvar.Publish("xdse", reg.Expvar())`) and
// /debug/vars serves the live snapshot.
func (r *Registry) Expvar() expvar.Func {
	return expvar.Func(func() any { return r.Snapshot() })
}

// splitSeries separates a series name into its base metric name and the
// inline label block ("" when unlabeled).
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// formatMetricValue renders a sample in Prometheus float syntax.
func formatMetricValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelJoin merges an inline label block with one extra label pair.
func labelJoin(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per base metric name,
// deterministically sorted series, histograms expanded into cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type series struct {
		name  string
		kind  string // "counter" | "gauge" | "histogram"
		value float64
		h     *Histogram
	}
	var all []series
	for name, c := range r.counters {
		all = append(all, series{name: name, kind: "counter", value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		all = append(all, series{name: name, kind: "gauge", value: g.Value()})
	}
	for name, h := range r.histograms {
		all = append(all, series{name: name, kind: "histogram", h: h})
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	typed := map[string]bool{}
	for _, s := range all {
		base, labels := splitSeries(s.name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, s.kind); err != nil {
				return err
			}
		}
		switch s.kind {
		case "histogram":
			bounds, cum := s.h.snapshotBuckets()
			for i, c := range cum {
				le := "+Inf"
				if i < len(bounds) {
					le = formatMetricValue(bounds[i])
				}
				lb := labelJoin(labels, `le="`+le+`"`)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, lb, c); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatMetricValue(s.h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, s.h.Count()); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatMetricValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidatePrometheus checks a Prometheus text dump for well-formedness:
// every non-comment line must be `<name>[{labels}] <float>` with a legal
// metric name, and every series must be preceded by a # TYPE header for its
// base name. It is the CI gate for -metrics-out output.
func ValidatePrometheus(data string) error {
	typed := map[string]bool{}
	lineNo := 0
	for _, text := range strings.Split(data, "\n") {
		lineNo++
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = true
			}
			continue
		}
		name := text
		if i := strings.IndexByte(text, '{'); i >= 0 {
			j := strings.IndexByte(text, '}')
			if j < i {
				return fmt.Errorf("line %d: unterminated label block", lineNo)
			}
			name = text[:i]
			text = name + text[j+1:]
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return fmt.Errorf("line %d: want `name value`, got %q", lineNo, text)
		}
		name = fields[0]
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("line %d: invalid sample value %q", lineNo, fields[1])
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			return fmt.Errorf("line %d: series %q has no # TYPE header", lineNo, name)
		}
	}
	return nil
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
