package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram must read zeroes")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry must hand out nil metrics")
	}
	r.Merge(NewRegistry())
	r.Reset()
}

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", c.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got := h.Sum(); math.Abs(got-38.5) > 1e-9 {
		t.Errorf("sum = %v, want 38.5", got)
	}
	if h.Max() != 20 {
		t.Errorf("max = %v, want 20", h.Max())
	}
	// The 8th-rank sample lands in the overflow bucket: quantile resolves
	// to the exact tracked maximum, never a made-up bound.
	if got := h.Quantile(1); got != 20 {
		t.Errorf("p100 = %v, want exact max 20", got)
	}
	// p50 (rank 4) lands in the (2,4] bucket.
	if got := h.Quantile(0.5); got <= 2 || got > 4 {
		t.Errorf("p50 = %v, want within (2,4]", got)
	}
	if got := h.Quantile(0.5); h.Quantile(0.95) < got {
		t.Errorf("p95 %v < p50 %v", h.Quantile(0.95), got)
	}
	h.Observe(math.NaN()) // ignored, not poisoned
	if h.Count() != 8 {
		t.Error("NaN observation must be dropped")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total")
	c2 := r.Counter("a_total")
	if c1 != c2 {
		t.Error("same name must return the same counter")
	}
	h1 := r.Histogram("h_seconds", []float64{1, 2})
	h2 := r.Histogram("h_seconds", []float64{99})
	if h1 != h2 {
		t.Error("an existing histogram keeps its original buckets")
	}
}

func TestRegistryMergeAndReset(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n_total").Add(3)
	b.Counter("n_total").Add(4)
	b.Counter("only_b_total").Add(1)
	b.Gauge("g").Set(2.5)
	a.Histogram("h_seconds", []float64{1, 2}).Observe(0.5)
	b.Histogram("h_seconds", []float64{1, 2}).Observe(1.5)

	a.Merge(b)
	if got := a.Counter("n_total").Value(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("only_b_total").Value(); got != 1 {
		t.Errorf("merge must create missing counters, got %d", got)
	}
	if got := a.Gauge("g").Value(); got != 2.5 {
		t.Errorf("merged gauge = %v, want 2.5", got)
	}
	h := a.Histogram("h_seconds", nil)
	if h.Count() != 2 || h.Max() != 1.5 {
		t.Errorf("merged histogram count=%d max=%v, want 2/1.5", h.Count(), h.Max())
	}

	c := a.Counter("n_total")
	a.Reset()
	if c.Value() != 0 {
		t.Error("Reset must zero counters in place")
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("Reset must zero histograms in place")
	}
	c.Inc()
	if a.Counter("n_total").Value() != 1 {
		t.Error("metric pointers must stay live across Reset")
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	r.Gauge("g").Set(1.5)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot must be JSON-marshalable (the expvar contract): %v", err)
	}
	for _, want := range []string{`"c_total":2`, `"g":1.5`, `"count":1`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("snapshot JSON missing %s: %s", want, data)
		}
	}
	if got := r.Expvar().String(); !strings.Contains(got, "c_total") {
		t.Errorf("expvar view missing counter: %s", got)
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("eval_design_evaluations_total").Add(12)
	r.Counter(`dse_mitigation_rule_firings_total{rule="scale-pes"}`).Add(3)
	r.Counter(`dse_mitigation_rule_firings_total{rule="spm-grow"}`).Add(1)
	r.Gauge("dse_incumbent_objective").Set(3.25)
	h := r.Histogram("eval_layer_search_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := ValidatePrometheus(out); err != nil {
		t.Fatalf("dump failed its own validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE dse_mitigation_rule_firings_total counter",
		`dse_mitigation_rule_firings_total{rule="scale-pes"} 3`,
		"# TYPE eval_layer_search_seconds histogram",
		`eval_layer_search_seconds_bucket{le="+Inf"} 2`,
		"eval_layer_search_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// One # TYPE header per base name, even with two labeled series.
	if got := strings.Count(out, "# TYPE dse_mitigation_rule_firings_total"); got != 1 {
		t.Errorf("%d TYPE headers for the rule counter, want 1", got)
	}
	// The dump is deterministically sorted: two renders agree.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b2.String() != out {
		t.Error("two renders of the same registry differ")
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE header":  "orphan_total 3\n",
		"bad value":       "# TYPE x counter\nx notanumber\n",
		"bad metric name": "# TYPE 9bad counter\n9bad 1\n",
		"unknown type":    "# TYPE x wibble\nx 1\n",
	}
	for name, dump := range cases {
		if err := ValidatePrometheus(dump); err == nil {
			t.Errorf("%s: validation passed %q", name, dump)
		}
	}
	ok := "# TYPE x counter\nx 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n"
	if err := ValidatePrometheus(ok); err != nil {
		t.Errorf("well-formed dump rejected: %v", err)
	}
}

func TestMetricsSinkFoldsEvents(t *testing.T) {
	reg := NewRegistry()
	s := NewMetricsSink(reg)
	if NewMetricsSink(nil) != nil {
		t.Error("nil registry must yield a nil Sink interface")
	}
	s.Emit(Event{Kind: KindMitigationProposed, Rule: "scale-pes"})
	s.Emit(Event{Kind: KindMitigationProposed, Rule: "scale-pes"})
	s.Emit(Event{Kind: KindBottleneckIdentified, Factor: "T_dma"})
	s.Emit(Event{Kind: KindConstraintMitigation, Factor: "power"})
	s.Emit(Event{Kind: KindBatchEvaluated, Points: 5, Hits: 2, Misses: 3})
	s.Emit(Event{Kind: KindIncumbentImproved, Objective: 4.5})
	s.Emit(Event{Kind: KindConverged})

	checks := map[string]int64{
		`obs_events_total{kind="mitigation_proposed"}`:        2,
		`dse_mitigation_rule_firings_total{rule="scale-pes"}`: 2,
		`dse_bottleneck_factor_total{factor="T_dma"}`:         1,
		`dse_constraint_mitigation_total{factor="power"}`:     1,
		"dse_batch_points_total":                              5,
		"dse_batch_hits_total":                                2,
		"dse_batch_misses_total":                              3,
		"dse_incumbent_improvements_total":                    1,
		"dse_convergences_total":                              1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("dse_incumbent_objective").Value(); got != 4.5 {
		t.Errorf("incumbent gauge = %v, want 4.5", got)
	}
}
