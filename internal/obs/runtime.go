package obs

import (
	"runtime"
	"time"
)

// GCPauseBuckets returns histogram bounds suited to Go GC pauses — tens of
// microseconds to worst-case hundreds of milliseconds, exponential.
func GCPauseBuckets() []float64 {
	return []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3,
	}
}

// RuntimeSampler periodically folds Go runtime health — goroutine count,
// heap size, GC activity and pause latency — into a metrics Registry, so a
// serve worker's /metrics answers "is this worker GC-bound or leaking
// goroutines" without attaching a profiler.
type RuntimeSampler struct {
	interval time.Duration

	gGoroutines  *Gauge
	gHeapAlloc   *Gauge
	gHeapObjects *Gauge
	cGC          *Counter
	hPause       *Histogram

	lastNumGC uint32
}

// NewRuntimeSampler registers the runtime metrics on reg and returns a
// sampler observing them every interval. Nil reg or non-positive interval
// yields nil (Run on a nil sampler returns immediately).
func NewRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if reg == nil || interval <= 0 {
		return nil
	}
	return &RuntimeSampler{
		interval:     interval,
		gGoroutines:  reg.Gauge("runtime_goroutines"),
		gHeapAlloc:   reg.Gauge("runtime_heap_alloc_bytes"),
		gHeapObjects: reg.Gauge("runtime_heap_objects"),
		cGC:          reg.Counter("runtime_gc_cycles_total"),
		hPause:       reg.Histogram("runtime_gc_pause_seconds", GCPauseBuckets()),
	}
}

// Sample takes one observation: gauges are set to current values, and every
// GC pause completed since the previous call is fed to the pause histogram
// (via the MemStats 256-entry pause ring, so up to 256 cycles between
// samples are attributed exactly).
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.gGoroutines.Set(float64(runtime.NumGoroutine()))
	s.gHeapAlloc.Set(float64(m.HeapAlloc))
	s.gHeapObjects.Set(float64(m.HeapObjects))
	if m.NumGC > s.lastNumGC {
		s.cGC.Add(int64(m.NumGC - s.lastNumGC))
		first := s.lastNumGC
		if m.NumGC-first > 256 {
			first = m.NumGC - 256
		}
		for i := first; i < m.NumGC; i++ {
			s.hPause.Observe(float64(m.PauseNs[(i+255)%256]) / 1e9)
		}
		s.lastNumGC = m.NumGC
	}
}

// Run samples immediately and then on every interval tick until stop closes.
func (s *RuntimeSampler) Run(stop <-chan struct{}) {
	if s == nil {
		return
	}
	s.Sample()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}
