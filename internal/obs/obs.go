// Package obs is the zero-dependency observability layer of the repository:
// structured explanation events (the paper's auditable per-acquisition
// reasoning, §4.3, as typed records instead of free text), a metrics
// registry of counters/gauges/latency histograms, and pluggable sinks that
// receive the event stream (JSONL file, human-readable text, fan-out,
// null).
//
// Determinism contract: events are derived from — and never feed back into —
// the acquisition sequence. An optimizer's decisions must be bit-identical
// whether zero, one, or many sinks are attached; the only event fields
// allowed to differ between two runs of the same exploration are wall-clock
// readings (Event.WallNs durations and Event.StartNs span start timestamps)
// and the per-sink sequence number assigned at write time. Span identities in
// particular (Event.Trace/Span/Parent) come from per-run sequence counters,
// never from clocks or randomness, so two runs of the same exploration emit
// the same causal graph. Kill-and-resume therefore holds with tracing on: an
// interrupted run's trace is a prefix of the uninterrupted reference (up to
// those fields), and a resumed run — which deterministically re-executes
// from the start, answering replayed designs from the journal — re-emits
// the full reference event stream.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// Float is a float64 whose JSON form tolerates non-finite values: +Inf, -Inf,
// and NaN marshal as strings (encoding/json rejects them as numbers), every
// finite value as a plain number. Infeasible solutions carry an infinite
// objective, so trace events must survive them.
type Float float64

// MarshalJSON implements json.Marshaler with non-finite values as strings.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both forms.
func (f *Float) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"+Inf"`, `"Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Kind discriminates the event types of the explanation trace.
type Kind string

// The event taxonomy. Structured kinds carry typed fields; kinds that
// correspond to a line of the engine's historical human-readable log carry
// the pre-rendered line in Event.Text (the TextSink reproduces that log
// byte-for-byte by writing Text verbatim).
const (
	// KindStepStarted marks the start of one acquisition attempt.
	KindStepStarted Kind = "step_started"
	// KindBottleneckIdentified records one bottleneck factor surfaced by
	// the per-sub-function analysis (sub, factor, contribution, scaling).
	KindBottleneckIdentified Kind = "bottleneck_identified"
	// KindMitigationProposed records one aggregated parameter prediction
	// (param, predicted value, direction, mitigation rule).
	KindMitigationProposed Kind = "mitigation_proposed"
	// KindConstraintMitigation records a constraint-violation mitigation
	// pass (violated factor and its excess scaling).
	KindConstraintMitigation Kind = "constraint_mitigation"
	// KindBatchEvaluated records one candidate batch evaluation: points
	// submitted, memo hits vs new designs, and the batch wall time.
	KindBatchEvaluated Kind = "batch_evaluated"
	// KindIncumbentImproved records the adoption of a new solution
	// (attempt 0 is the initial solution).
	KindIncumbentImproved Kind = "incumbent_improved"
	// KindStepStalled records an attempt in which no candidate improved
	// the solution.
	KindStepStalled Kind = "step_stalled"
	// KindConverged records termination of one exploration (patience
	// exhausted or no candidates remain).
	KindConverged Kind = "converged"
	// KindNote carries free-form narration with no structured payload
	// (e.g. the rendered bottleneck trees of one attempt, or the
	// neighbor-sampling fallback notice).
	KindNote Kind = "note"
	// KindSpan records one completed span of the distributed tracing spine
	// (see span.go): a timed, causally-linked region of campaign, fleet,
	// or worker execution. Span events ride the same sinks as explanation
	// events so one JSONL file holds the merged cross-process trace.
	KindSpan Kind = "span"
)

// Event is one record of the explanation trace. It is a flat struct — one
// field set per Kind, unused fields zero — so emission passes it by value
// through the Sink interface without boxing (the null-sink hot path is
// allocation-free) and the JSONL wire form stays a single flat object.
type Event struct {
	// Seq is the per-sink write sequence number, assigned by sinks that
	// persist events (zero until then).
	Seq int `json:"seq"`
	// Run labels the exploration run that produced the event (e.g.
	// "ExplainableDSE-Codesign_ResNet18"); WithRun stamps it.
	Run string `json:"run,omitempty"`
	// Kind discriminates the event type.
	Kind Kind `json:"kind"`
	// Restart is the restart index of multi-restart explorations.
	Restart int `json:"restart,omitempty"`
	// Attempt is the acquisition attempt the event belongs to (0 = the
	// initial solution, before the first attempt).
	Attempt int `json:"attempt,omitempty"`
	// Sub is the sub-function index of a bottleneck analysis.
	Sub int `json:"sub,omitempty"`
	// Factor names the bottleneck factor (e.g. "T_dma") or, for
	// constraint mitigation, the violated constraint ("area", "power").
	Factor string `json:"factor,omitempty"`
	// Contribution is the factor's fractional contribution to its
	// sub-function's cost (0..1).
	Contribution Float `json:"contribution,omitempty"`
	// Scaling is the required improvement factor predicted for the
	// bottleneck (or the constraint excess for constraint mitigation).
	Scaling Float `json:"scaling,omitempty"`
	// Param names the design-space parameter of a proposed mitigation.
	Param string `json:"param,omitempty"`
	// Value is the predicted physical parameter value.
	Value int `json:"value,omitempty"`
	// Reduce reports a shrinking prediction (constraint mitigation).
	Reduce bool `json:"reduce,omitempty"`
	// Rule identifies the mitigation subroutine that produced the
	// prediction (e.g. "scale-pes", "dma-bandwidth").
	Rule string `json:"rule,omitempty"`
	// Why is the prediction's human-readable justification.
	Why string `json:"why,omitempty"`
	// Points is the candidate batch size.
	Points int `json:"points,omitempty"`
	// Hits counts batch points already charged to the trace budget
	// (answered from the memo, budget-free).
	Hits int `json:"hits,omitempty"`
	// Misses counts batch points evaluated for the first time.
	Misses int `json:"misses,omitempty"`
	// WallNs is a wall-clock duration in nanoseconds. It is the one
	// nondeterministic field of the trace; comparisons between runs must
	// normalize it (see EqualDeterministic).
	WallNs int64 `json:"wall_ns,omitempty"`
	// Objective is the solution objective of an incumbent event. It is a
	// Float because infeasible incumbents carry an infinite objective.
	Objective Float `json:"objective,omitempty"`
	// BudgetUtil is the solution's constraints-budget utilization.
	BudgetUtil Float `json:"budget,omitempty"`
	// Feasible reports the solution's feasibility.
	Feasible bool `json:"feasible,omitempty"`
	// Point renders the solution design point as name=value pairs.
	Point string `json:"point,omitempty"`
	// Stale is the consecutive non-improving attempt count.
	Stale int `json:"stale,omitempty"`
	// Text is the event's rendering in the engine's historical log
	// format; the TextSink writes exactly this (events with no legacy
	// line leave it empty).
	Text string `json:"text,omitempty"`
	// Trace identifies the trace a KindSpan event belongs to (one trace
	// per exploration run; see Tracer).
	Trace string `json:"trace,omitempty"`
	// Span is the span's identifier, unique within its trace and derived
	// from a per-tracer sequence counter — never from clocks or
	// randomness, so span identity is deterministic across runs.
	Span string `json:"span,omitempty"`
	// Parent is the identifier of the enclosing span ("" for a root).
	Parent string `json:"parent,omitempty"`
	// SpanKind classifies a span (SpanCampaign, SpanBatch, SpanRPC, ...).
	SpanKind string `json:"span_kind,omitempty"`
	// Name carries the span's instance label (shard key, design point,
	// run label) — what distinguishes it from siblings of the same kind.
	Name string `json:"name,omitempty"`
	// Worker is the worker address a SpanRPC span was dispatched to, and
	// the attribution key of the per-worker breakdown in `xdse trace`.
	Worker string `json:"worker,omitempty"`
	// StartNs is a span's wall-clock start in Unix nanoseconds. Like
	// WallNs it is exempt from the determinism contract; unlike every
	// other field it orders spans from different processes on one
	// timeline, which is all the Chrome export needs.
	StartNs int64 `json:"start_ns,omitempty"`
}

// EqualDeterministic reports whether two events agree on every
// reproducibility-relevant field — everything except the wall-clock readings
// (WallNs, StartNs) and the sink-assigned sequence number, which are the
// only fields the determinism contract exempts.
func (e Event) EqualDeterministic(o Event) bool {
	e.WallNs, o.WallNs = 0, 0
	e.StartNs, o.StartNs = 0, 0
	e.Seq, o.Seq = 0, 0
	return e == o
}

// Sink receives explanation events. Implementations must be safe for
// concurrent use when shared across runs (a campaign fans many runs into one
// file sink). Events arrive by value, so sinks may retain them freely.
type Sink interface {
	// Emit records one event.
	Emit(Event)
}

// Closer is the optional second half of a Sink with resources to release;
// file-backed sinks implement it.
type Closer interface {
	// Close flushes and releases the sink.
	Close() error
}

// NullSink discards every event. It exists so "tracing disabled" and
// "tracing enabled with a throwaway sink" exercise the identical emission
// path; Emit is allocation-free.
type NullSink struct{}

// Emit implements Sink by doing nothing.
func (NullSink) Emit(Event) {}

// TextSink renders events as the engine's historical human-readable log:
// each event's pre-rendered Text is written verbatim (events without a
// legacy line are skipped), so enabling it reproduces the pre-obs log
// output byte-for-byte.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a TextSink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit implements Sink: it writes the event's legacy text rendering, if any.
func (s *TextSink) Emit(ev Event) {
	if ev.Text == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	io.WriteString(s.w, ev.Text)
}

// multiSink fans one event out to several sinks in registration order.
type multiSink struct{ sinks []Sink }

// Emit implements Sink by forwarding to every child in order.
func (m *multiSink) Emit(ev Event) {
	for _, s := range m.sinks {
		s.Emit(ev)
	}
}

// Multi combines sinks into one fan-out sink. Nil entries are dropped;
// every event is delivered to the remaining sinks in argument order. It
// returns nil when nothing remains (so callers can chain it straight into
// NewEmitter), and the sink itself when exactly one remains.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multiSink{sinks: live}
}

// runSink stamps a run label on every event before forwarding.
type runSink struct {
	sink Sink
	run  string
}

// Emit implements Sink: it labels the event and forwards it.
func (s *runSink) Emit(ev Event) {
	if ev.Run == "" {
		ev.Run = s.run
	}
	s.sink.Emit(ev)
}

// WithRun wraps a sink so every event it receives carries the run label
// (events already labeled pass through unchanged). A nil sink yields nil.
func WithRun(s Sink, run string) Sink {
	if s == nil {
		return nil
	}
	return &runSink{sink: s, run: run}
}

// CollectSink buffers events in memory. The serve worker uses one to gather
// the spans of a single /eval request for return in the response, and tests
// use it to assert on emitted streams.
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink by appending the event to the buffer.
func (c *CollectSink) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (c *CollectSink) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Emitter is the nil-safe handle optimizers emit through. A nil *Emitter is
// the disabled state: Enabled reports false and Emit is a no-op, so call
// sites guard expensive event construction (text rendering, point
// description) with Enabled and emit unconditionally otherwise.
type Emitter struct {
	sink Sink
}

// NewEmitter combines the given sinks into one emitter, returning nil — the
// disabled emitter — when every sink is nil.
func NewEmitter(sinks ...Sink) *Emitter {
	s := Multi(sinks...)
	if s == nil {
		return nil
	}
	return &Emitter{sink: s}
}

// Enabled reports whether events reach at least one sink. Call sites use it
// to skip constructing events whose fields are expensive to build.
func (e *Emitter) Enabled() bool { return e != nil }

// Emit forwards one event; on a nil (disabled) emitter it is a no-op. The
// event travels by value end-to-end, so emission through a NullSink
// performs no allocation.
func (e *Emitter) Emit(ev Event) {
	if e == nil {
		return
	}
	e.sink.Emit(ev)
}
