package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteReport renders a trace (as read by ReadTrace) into a human-readable
// campaign report: one per-attempt explanation timeline per run, followed by
// a top-N summary of the bottleneck factors seen and the mitigation rules
// fired. It answers "which bottleneck drove step k and what did it cost"
// from the trace alone, without re-running the campaign.
func WriteReport(w io.Writer, events []Event, topN int) error {
	if topN <= 0 {
		topN = 5
	}
	byRun := map[string][]Event{}
	var runs []string
	for _, ev := range events {
		if _, seen := byRun[ev.Run]; !seen {
			runs = append(runs, ev.Run)
		}
		byRun[ev.Run] = append(byRun[ev.Run], ev)
	}
	for _, run := range runs {
		if err := writeRunTimeline(w, run, byRun[run]); err != nil {
			return err
		}
	}
	return writeTopSummary(w, events, topN)
}

// attemptLine accumulates one attempt's rendering state.
type attemptLine struct {
	bottlenecks []string
	mitigations []string
	constraint  []string
	batch       string
	outcome     string
}

// writeRunTimeline prints one run's per-attempt timeline.
func writeRunTimeline(w io.Writer, run string, events []Event) error {
	name := run
	if name == "" {
		name = "(unlabeled)"
	}
	if _, err := fmt.Fprintf(w, "== run %s ==\n", name); err != nil {
		return err
	}
	att := attemptLine{}
	flush := func(attempt int) error {
		defer func() { att = attemptLine{} }()
		if len(att.bottlenecks) == 0 && len(att.mitigations) == 0 &&
			len(att.constraint) == 0 && att.batch == "" && att.outcome == "" {
			return nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "  step %d:", attempt)
		if len(att.constraint) > 0 {
			fmt.Fprintf(&b, " constraint[%s]", strings.Join(att.constraint, ", "))
		}
		if len(att.bottlenecks) > 0 {
			fmt.Fprintf(&b, " bottleneck[%s]", strings.Join(att.bottlenecks, ", "))
		}
		if len(att.mitigations) > 0 {
			fmt.Fprintf(&b, " mitigate[%s]", strings.Join(att.mitigations, ", "))
		}
		if att.batch != "" {
			fmt.Fprintf(&b, " %s", att.batch)
		}
		if att.outcome != "" {
			fmt.Fprintf(&b, " -> %s", att.outcome)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	cur := 0
	for _, ev := range events {
		if ev.Attempt != cur {
			if err := flush(cur); err != nil {
				return err
			}
			cur = ev.Attempt
		}
		switch ev.Kind {
		case KindBottleneckIdentified:
			att.bottlenecks = append(att.bottlenecks,
				fmt.Sprintf("%s %.0f%% s=%.2f", ev.Factor, ev.Contribution*100, ev.Scaling))
		case KindConstraintMitigation:
			att.constraint = append(att.constraint,
				fmt.Sprintf("%s s=%.2f", ev.Factor, ev.Scaling))
		case KindMitigationProposed:
			dir := "->"
			if ev.Reduce {
				dir = "-v"
			}
			att.mitigations = append(att.mitigations,
				fmt.Sprintf("%s %s %d (%s)", ev.Param, dir, ev.Value, ev.Rule))
		case KindBatchEvaluated:
			att.batch = fmt.Sprintf("batch %d pts (%d hit/%d new, %s)",
				ev.Points, ev.Hits, ev.Misses, time.Duration(ev.WallNs).Round(time.Microsecond))
		case KindIncumbentImproved:
			att.outcome = fmt.Sprintf("improved: obj=%.4g feasible=%v budget=%.2f",
				ev.Objective, ev.Feasible, ev.BudgetUtil)
			if ev.Attempt == 0 {
				att.outcome = fmt.Sprintf("initial: obj=%.4g feasible=%v budget=%.2f",
					ev.Objective, ev.Feasible, ev.BudgetUtil)
			}
		case KindStepStalled:
			att.outcome = fmt.Sprintf("stalled (%d)", ev.Stale)
		case KindConverged:
			att.outcome = "converged"
		}
	}
	return flush(cur)
}

// countTop renders the topN most frequent keys of counts as "key xN" items.
func countTop(counts map[string]int, topN int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > topN {
		keys = keys[:topN]
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s x%d", k, counts[k])
	}
	return out
}

// writeTopSummary prints the trace-wide top-N bottleneck/mitigation tallies.
func writeTopSummary(w io.Writer, events []Event, topN int) error {
	factors := map[string]int{}
	rules := map[string]int{}
	constraints := map[string]int{}
	batches, points, hits := 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case KindBottleneckIdentified:
			factors[ev.Factor]++
		case KindMitigationProposed:
			if ev.Rule != "" {
				rules[ev.Rule]++
			}
		case KindConstraintMitigation:
			constraints[ev.Factor]++
		case KindBatchEvaluated:
			batches++
			points += ev.Points
			hits += ev.Hits
		}
	}
	if _, err := fmt.Fprintf(w, "== summary ==\n"); err != nil {
		return err
	}
	if len(factors) > 0 {
		if _, err := fmt.Fprintf(w, "  top bottlenecks: %s\n", strings.Join(countTop(factors, topN), ", ")); err != nil {
			return err
		}
	}
	if len(rules) > 0 {
		if _, err := fmt.Fprintf(w, "  top mitigation rules: %s\n", strings.Join(countTop(rules, topN), ", ")); err != nil {
			return err
		}
	}
	if len(constraints) > 0 {
		if _, err := fmt.Fprintf(w, "  constraint mitigations: %s\n", strings.Join(countTop(constraints, topN), ", ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  batches: %d (%d points, %d memo hits)\n", batches, points, hits)
	return err
}
