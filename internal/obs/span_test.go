package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// span emits one completed span event with the given identity, for building
// synthetic traces in tests.
func span(trace, id, parent, kind string, startNs, wallNs int64) Event {
	return Event{
		Kind: KindSpan, Trace: trace, Span: id, Parent: parent,
		SpanKind: kind, StartNs: startNs, WallNs: wallNs,
	}
}

// TestSpanAllocFree pins the tracing half of the zero-overhead contract: the
// disabled (nil) tracer must cost nothing on the Tier-1 hot path — no
// allocation starting, attributing, or ending spans — and a prebuilt span
// event must travel through the Emitter/NullSink machinery without
// allocating, exactly like every other Event (see TestEmitAllocFree).
func TestSpanAllocFree(t *testing.T) {
	var tr *Tracer
	parent := SpanContext{Trace: "t", Span: "1"}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.StartChild(parent, SpanBatch, "")
		sp.Points = 8
		sp.End()
	}); n != 0 {
		t.Errorf("disabled tracer StartChild/End: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		root := tr.StartRoot("t", SpanCampaign, "c")
		_ = root.Context()
		root.End()
	}); n != 0 {
		t.Errorf("disabled tracer StartRoot/End: %v allocs/op, want 0", n)
	}
	ev := span("t", "2", "1", SpanBatch, 100, 200)
	null := NewEmitter(NullSink{})
	if n := testing.AllocsPerRun(1000, func() { null.Emit(ev) }); n != 0 {
		t.Errorf("span event through null-sink emitter: %v allocs/op, want 0", n)
	}
}

// TestTracerDeterministicIDs pins the identity scheme: IDs are the prefix
// plus a per-tracer counter, so two tracers with the same prefix mint the
// same sequence — no clocks, no randomness.
func TestTracerDeterministicIDs(t *testing.T) {
	mint := func(prefix string) []string {
		tr := NewTracer(NullSink{}, prefix)
		root := tr.StartRoot("t", SpanCampaign, "c")
		c1 := tr.StartChild(root.Context(), SpanBatch, "")
		c2 := tr.StartChild(c1.Context(), SpanReplay, "")
		return []string{root.Context().Span, c1.Context().Span, c2.Context().Span}
	}
	got := mint("")
	want := []string{"1", "2", "3"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("coordinator IDs = %v, want %v", got, want)
			break
		}
	}
	got = mint("7.")
	want = []string{"7.1", "7.2", "7.3"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("worker IDs = %v, want %v", got, want)
			break
		}
	}
	again := mint("7.")
	for i := range want {
		if again[i] != want[i] {
			t.Errorf("repeat mint = %v, want %v (IDs must be reproducible)", again, want)
			break
		}
	}
}

// TestSpanEmission checks the emitted event carries the full identity and
// attribute set, parents link correctly, and End is idempotent.
func TestSpanEmission(t *testing.T) {
	col := &CollectSink{}
	tr := NewTracer(col, "")
	root := tr.StartRoot("tr1", SpanCampaign, "camp")
	child := tr.StartChild(root.Context(), SpanRPC, "shard-0")
	child.Worker = "w1:80"
	child.Points = 5
	child.Err = "boom"
	child.End()
	child.End() // idempotent: must not double-emit
	root.End()

	events := col.Events()
	if len(events) != 2 {
		t.Fatalf("emitted %d events, want 2", len(events))
	}
	c, r := events[0], events[1]
	if c.Kind != KindSpan || c.Trace != "tr1" || c.Span != "2" || c.Parent != "1" {
		t.Errorf("child identity wrong: %+v", c)
	}
	if c.SpanKind != SpanRPC || c.Name != "shard-0" || c.Worker != "w1:80" || c.Points != 5 || c.Why != "boom" {
		t.Errorf("child attributes wrong: %+v", c)
	}
	if c.StartNs == 0 || c.WallNs < 0 {
		t.Errorf("child timing wrong: start=%d wall=%d", c.StartNs, c.WallNs)
	}
	if r.Span != "1" || r.Parent != "" || r.SpanKind != SpanCampaign {
		t.Errorf("root identity wrong: %+v", r)
	}
}

// TestTraceHeaderRoundTrip pins the wire format and its rejection rules.
func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: "Explainable_ResNet18", Span: "4"}
	v := FormatTraceHeader(sc)
	if v != "1 Explainable_ResNet18 4" {
		t.Errorf("header = %q", v)
	}
	got, ok := ParseTraceHeader(v)
	if !ok || got != sc {
		t.Errorf("round trip = %+v ok=%v, want %+v", got, ok, sc)
	}
	for _, bad := range []string{
		"",               // absent header
		"1 trace",        // missing span
		"1 trace span x", // extra field
		"2 trace span",   // future version: proceed untraced
		"garbage",        // not a header at all
	} {
		if _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted, want rejected", bad)
		}
	}
}

// TestContextSpanPlumbing checks the context round trip and that a nil tracer
// leaves the context untouched (so untraced runs pay one Value lookup only).
func TestContextSpanPlumbing(t *testing.T) {
	ctx := t.Context()
	if _, _, ok := SpanFromContext(ctx); ok {
		t.Error("empty context reported a span")
	}
	if got := ContextWithSpan(ctx, nil, SpanContext{}); got != ctx {
		t.Error("nil tracer must return the context unchanged")
	}
	tr := NewTracer(NullSink{}, "")
	sc := SpanContext{Trace: "t", Span: "3"}
	tr2, sc2, ok := SpanFromContext(ContextWithSpan(ctx, tr, sc))
	if !ok || tr2 != tr || sc2 != sc {
		t.Errorf("context round trip = (%v, %+v, %v)", tr2, sc2, ok)
	}
}

// TestBuildSpanForest covers reconstruction and each validation failure.
func TestBuildSpanForest(t *testing.T) {
	valid := []Event{
		{Kind: KindBatchEvaluated, Run: "r"}, // non-span events are ignored
		span("t1", "1", "", SpanCampaign, 10, 1000),
		span("t1", "2", "1", SpanBatch, 20, 500),
		span("t1", "3", "2", SpanDispatch, 30, 200),
		span("t1", "3.1", "3", SpanWorkerEval, 40, 100),
		span("t2", "1", "", SpanCampaign, 10, 400),
	}
	forest, err := BuildSpanForest(valid)
	if err != nil {
		t.Fatalf("valid forest rejected: %v", err)
	}
	if len(forest) != 2 || forest[0].ID != "t1" || forest[1].ID != "t2" {
		t.Fatalf("forest traces wrong: %+v", forest)
	}
	t1 := forest[0]
	if len(t1.Roots) != 1 || t1.Roots[0].Span != "1" {
		t.Fatalf("t1 roots wrong")
	}
	if len(t1.Nodes) != 4 {
		t.Fatalf("t1 has %d nodes, want 4", len(t1.Nodes))
	}
	if got := t1.Nodes["3"].Children; len(got) != 1 || got[0].Span != "3.1" {
		t.Errorf("worker span not linked under dispatch: %+v", got)
	}
	if err := ValidateSpans(valid); err != nil {
		t.Errorf("ValidateSpans(valid) = %v", err)
	}

	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"missing parent", []Event{
			span("t", "1", "", SpanCampaign, 0, 1),
			span("t", "9", "8", SpanBatch, 0, 1),
		}, "missing parent"},
		{"duplicate id", []Event{
			span("t", "1", "", SpanCampaign, 0, 1),
			span("t", "1", "", SpanCampaign, 0, 1),
		}, "duplicate span id"},
		{"cycle", []Event{
			span("t", "1", "2", SpanBatch, 0, 1),
			span("t", "2", "1", SpanBatch, 0, 1),
		}, "cycle"},
	}
	for _, tc := range cases {
		err := ValidateSpans(tc.events)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// fleetTrace is a small but fully-shaped merged cross-process trace:
// campaign → batch → {dispatch → rpc → worker spans, replay}, plus install.
func fleetTrace() []Event {
	mk := func(id, parent, kind, name, worker string, startNs, wallNs int64, pts int) Event {
		ev := span("t", id, parent, kind, startNs, wallNs)
		ev.Name = name
		ev.Worker = worker
		ev.Points = pts
		return ev
	}
	return []Event{
		mk("1", "", SpanCampaign, "run", "", 0, 10_000_000, 0),
		mk("2", "1", SpanBatch, "", "", 100, 8_000_000, 6),
		mk("3", "2", SpanDispatch, "shard-a", "", 200, 5_000_000, 3),
		mk("4", "3", SpanRPC, "shard-a", "w1:80", 300, 4_500_000, 3),
		mk("4.1", "4", SpanQueue, "", "", 310, 400_000, 0),
		mk("4.2", "4", SpanWorkerEval, "p1", "", 320, 1_500_000, 0),
		mk("4.3", "4", SpanWorkerEval, "p2", "", 330, 1_600_000, 0),
		mk("4.4", "4", SpanCache, "export", "", 340, 200_000, 2),
		mk("5", "3", SpanInstall, "shard-a", "", 350, 100_000, 2),
		mk("6", "2", SpanReplay, "", "", 360, 2_000_000, 6),
	}
}

// TestWriteTraceReport smoke-tests the critical-path report: it must name the
// trace, render a critical path reaching the worker side, and attribute the
// worker's rpc wall-clock across queue/compute/export/transfer.
func TestWriteTraceReport(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTraceReport(&b, fleetTrace(), 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== trace t ==",
		"critical path:",
		SpanCampaign, SpanBatch, SpanDispatch, SpanRPC,
		"self-time by span kind:",
		"per-worker breakdown",
		"w1:80: 1 rpcs",
		"queue 400µs",
		"compute 3.1ms",
		"export 200µs",
		"transfer 800µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	if err := WriteTraceReport(&b, []Event{{Kind: KindBatchEvaluated}}, 5); err == nil {
		t.Error("spanless trace must error (nothing to report)")
	}
}

// TestWriteChromeTrace checks the export is parseable trace_event JSON with
// one complete event per span plus process-name metadata.
func TestWriteChromeTrace(t *testing.T) {
	events := fleetTrace()
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	complete := 0
	dispatchLane := false
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" {
			complete++
			if ev.Tid > 0 {
				dispatchLane = true
			}
		}
	}
	if want := len(Spans(events)); complete != want {
		t.Errorf("%d complete events, want %d (one per span)", complete, want)
	}
	if !dispatchLane {
		t.Error("dispatch subtree did not get its own lane (tid > 0)")
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
}

// TestReadTraceCheckedTornTail pins the torn-tail contract for cross-process
// merges: a trace whose final record was cut mid-write (worker crash, full
// disk) yields its intact prefix with torn=true — and that prefix still
// passes span validation, so a merged report renders what survived.
func TestReadTraceCheckedTornTail(t *testing.T) {
	// A merged coordinator trace: a root and a child, then a third record
	// cut mid-write (the killed worker's final flush).
	lines := []string{
		mustJSON(t, span("t", "1", "", SpanCampaign, 10, 1000)),
		mustJSON(t, span("t", "2", "1", SpanBatch, 20, 500)),
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	intact := strings.Join(lines, "\n") + "\n"
	if err := os.WriteFile(path, []byte(intact), 0o644); err != nil {
		t.Fatal(err)
	}

	// Whole file: both spans, not torn.
	events, torn, err := ReadTraceChecked(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if torn || len(events) != 2 {
		t.Fatalf("intact file: %d events torn=%v, want 2 events torn=false", len(events), torn)
	}

	// Tear a third record mid-write: the prefix survives, the loss is
	// reported, and the prefix still validates (children emit before their
	// parents only at the stream tail, which is exactly what was lost).
	tornLine := mustJSON(t, span("t", "3", "2", SpanReplay, 30, 200))
	torn3 := intact + tornLine[:len(tornLine)/2]
	if err := os.WriteFile(path, []byte(torn3), 0o644); err != nil {
		t.Fatal(err)
	}
	events, torn, err = ReadTraceChecked(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Error("torn tail not reported")
	}
	if len(events) != 2 {
		t.Fatalf("torn file yielded %d events, want the 2-event prefix", len(events))
	}
	if err := ValidateSpans(events); err != nil {
		t.Errorf("torn prefix failed span validation: %v", err)
	}
}

// mustJSON marshals ev to its JSONL line (no trailing newline).
func mustJSON(t *testing.T, ev Event) string {
	t.Helper()
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTracerForward checks the coordinator-side merge point: forwarded span
// events re-emit with Seq cleared (the local sink re-stamps), and non-span
// events are dropped rather than duplicated into the trace.
func TestTracerForward(t *testing.T) {
	col := &CollectSink{}
	tr := NewTracer(col, "")
	ev := span("t", "4.1", "4", SpanWorkerEval, 10, 20)
	ev.Seq = 99
	tr.Forward(ev)
	tr.Forward(Event{Kind: KindBatchEvaluated, Seq: 100})
	var nilTr *Tracer
	nilTr.Forward(ev) // disabled tracer: no-op, no panic

	got := col.Events()
	if len(got) != 1 {
		t.Fatalf("forwarded %d events, want 1", len(got))
	}
	if got[0].Seq != 0 {
		t.Errorf("forwarded Seq = %d, want cleared", got[0].Seq)
	}
	if got[0].Span != "4.1" {
		t.Errorf("forwarded span = %q", got[0].Span)
	}
}

// TestRuntimeSampler checks a sample populates every runtime instrument and
// that the disabled states (nil registry, non-positive interval) are inert.
func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler(reg, time.Second)
	if rs == nil {
		t.Fatal("sampler not created")
	}
	rs.Sample()
	if reg.Gauge("runtime_goroutines").Value() <= 0 {
		t.Error("goroutine gauge not set")
	}
	if reg.Gauge("runtime_heap_alloc_bytes").Value() <= 0 {
		t.Error("heap gauge not set")
	}
	if NewRuntimeSampler(nil, time.Second) != nil {
		t.Error("nil registry must disable the sampler")
	}
	if NewRuntimeSampler(reg, 0) != nil {
		t.Error("zero interval must disable the sampler")
	}
	var nilRS *RuntimeSampler
	nilRS.Sample() // inert
	stop := make(chan struct{})
	close(stop)
	nilRS.Run(stop) // inert
}
