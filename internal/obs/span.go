package obs

import (
	"context"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The span-kind taxonomy of the distributed tracing spine, ordered from the
// outermost level down. One campaign span roots each exploration run; each
// candidate batch nests a batch span; fleet prefetch adds dispatch→rpc pairs
// per shard with worker-side queue/worker-eval/cache spans grafted under the
// rpc span via the trace header; install and replay spans close the loop on
// the coordinator.
const (
	// SpanCampaign is the root span of one exploration run.
	SpanCampaign = "campaign"
	// SpanBatch covers one EvaluateBatch call (prefetch + evaluation).
	SpanBatch = "batch"
	// SpanReplay covers the local evaluation of a batch's points — after
	// fleet prefetch this is pure cache replay, hence the name.
	SpanReplay = "replay"
	// SpanDispatch covers one shard's remote lifetime: every RPC attempt
	// plus the record install.
	SpanDispatch = "dispatch"
	// SpanRPC covers a single /eval POST to one worker; its WallNs minus
	// its worker-side children is the transfer + coordination overhead.
	SpanRPC = "rpc"
	// SpanHedge covers a hedged (straggler-rescue) dispatch attempt: it
	// parents the hedge's rpc span, so a trace shows which shards hedged,
	// where the hedge went (Worker), and which side won (the loser carries
	// Err). Nested under the shard's dispatch span.
	SpanHedge = "hedge"
	// SpanBreaker marks a circuit-breaker opening: an instantaneous span
	// (WallNs ≈ 0) under the dispatch span whose failed attempt tripped it,
	// with Worker naming the shed worker. Breaker transitions are causal
	// events in a chaos trace, not timed regions.
	SpanBreaker = "breaker"
	// SpanInstall covers installing a shard's returned records into the
	// local evaluator.
	SpanInstall = "install"
	// SpanQueue covers a worker-side wait: request arrival to evaluation
	// start (decode, validation, and admission-semaphore wait).
	SpanQueue = "queue"
	// SpanWorkerEval covers one design-point evaluation on a worker.
	SpanWorkerEval = "worker-eval"
	// SpanCache covers worker-side record export (and /cache/{id} serves).
	SpanCache = "cache"
)

// SpanContext is the propagated identity of a span: which trace it belongs
// to and its own ID. It is a small value type so threading it through
// call chains and contexts costs nothing when tracing is off.
type SpanContext struct {
	// Trace is the trace identifier.
	Trace string
	// Span is the span identifier within that trace.
	Span string
}

// Tracer mints spans with deterministic identities: span IDs are a prefix
// plus a per-tracer sequence counter — no clocks, no randomness — so the
// causal graph of a traced run is itself reproducible, and tracing provably
// cannot perturb the exploration (identity never feeds back into
// acquisition). A nil *Tracer is the disabled state: every method is a
// no-op and spans it returns are inert, so call sites need no guards.
type Tracer struct {
	sink   Sink
	prefix string
	seq    atomic.Int64
}

// NewTracer returns a tracer emitting completed spans to sink, minting span
// IDs as prefix + counter. The coordinator uses prefix "" (IDs "1", "2",
// ...); a worker serving an /eval tagged with parent span P uses prefix
// "P." (IDs "P.1", "P.2", ...), which keeps merged cross-process IDs
// collision-free without coordination. A nil sink yields a nil (disabled)
// tracer.
func NewTracer(sink Sink, prefix string) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, prefix: prefix}
}

// Enabled reports whether spans reach a sink. Call sites use it to skip
// building expensive span attributes.
func (t *Tracer) Enabled() bool { return t != nil }

// nextID mints the next deterministic span ID.
func (t *Tracer) nextID() string {
	return t.prefix + strconv.FormatInt(t.seq.Add(1), 10)
}

// Span is one in-flight timed region. It is a value type: starting a span
// on a disabled tracer returns the zero Span, whose End is a no-op, so the
// untraced hot path performs no allocation and no work. The exported fields
// are attributes callers may set before End.
type Span struct {
	tr     *Tracer
	sc     SpanContext
	parent string
	kind   string
	name   string
	start  time.Time

	// Worker is the worker address an rpc span targeted.
	Worker string
	// Points is the number of design points the span covered.
	Points int
	// Err records why the spanned operation failed ("" = success).
	Err string
}

// StartRoot opens a root span (no parent) of the given trace.
func (t *Tracer) StartRoot(trace, kind, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:    t,
		sc:    SpanContext{Trace: trace, Span: t.nextID()},
		kind:  kind,
		name:  name,
		start: time.Now(),
	}
}

// StartChild opens a span under parent, starting now.
func (t *Tracer) StartChild(parent SpanContext, kind, name string) Span {
	if t == nil {
		return Span{}
	}
	return t.StartChildAt(parent, kind, name, time.Now())
}

// StartChildAt opens a span under parent with an explicit start time — for
// regions whose beginning predates the tracer itself, like a worker's
// queue span measured from request arrival.
func (t *Tracer) StartChildAt(parent SpanContext, kind, name string, start time.Time) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:     t,
		sc:     SpanContext{Trace: parent.Trace, Span: t.nextID()},
		parent: parent.Span,
		kind:   kind,
		name:   name,
		start:  start,
	}
}

// Context returns the span's propagable identity (zero for inert spans).
func (s *Span) Context() SpanContext { return s.sc }

// End completes the span and emits it as a KindSpan event. Idempotent, and
// a no-op on inert spans.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.sink.Emit(Event{
		Kind:     KindSpan,
		Trace:    s.sc.Trace,
		Span:     s.sc.Span,
		Parent:   s.parent,
		SpanKind: s.kind,
		Name:     s.name,
		Worker:   s.Worker,
		Points:   s.Points,
		Why:      s.Err,
		StartNs:  s.start.UnixNano(),
		WallNs:   time.Since(s.start).Nanoseconds(),
	})
	s.tr = nil
}

// Forward re-emits a completed span event produced elsewhere — the
// coordinator-side merge point for worker spans returned in an /eval
// response. The sink-assigned Seq is cleared so the local sink re-stamps
// it; non-span events are dropped.
func (t *Tracer) Forward(ev Event) {
	if t == nil || ev.Kind != KindSpan {
		return
	}
	ev.Seq = 0
	t.sink.Emit(ev)
}

// ctxKey keys the tracer+span pair stored in a context.
type ctxKey struct{}

// ctxSpan is the context payload: which tracer to mint children from and
// which span to parent them to.
type ctxSpan struct {
	tr *Tracer
	sc SpanContext
}

// ContextWithSpan returns a context carrying tr and the current span sc, for
// call chains that cross API boundaries (EvaluateBatch → Prepare → fleet,
// serve handler → evaluator). A nil tracer returns ctx unchanged.
func ContextWithSpan(ctx context.Context, tr *Tracer, sc SpanContext) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxSpan{tr: tr, sc: sc})
}

// SpanFromContext extracts the tracer and current span stored by
// ContextWithSpan, reporting ok=false (and a nil, safely inert tracer) when
// the context carries none.
func SpanFromContext(ctx context.Context) (*Tracer, SpanContext, bool) {
	v, ok := ctx.Value(ctxKey{}).(ctxSpan)
	if !ok {
		return nil, SpanContext{}, false
	}
	return v.tr, v.sc, true
}

// TraceHeader is the HTTP header propagating trace context across process
// boundaries (the fleet coordinator sets it on POST /eval and GET
// /cache/{id}), playing the role of W3C traceparent with this repo's
// deterministic IDs.
const TraceHeader = "X-Xdse-Traceparent"

// traceHeaderVersion is the header format version. Parsers reject versions
// they do not know, so a future format change is a new version number, not
// a silent misparse (see docs/EXTENDING.md for the bump rules).
const traceHeaderVersion = "1"

// FormatTraceHeader renders sc as a TraceHeader value:
// "<version> <trace> <parent-span>", space-separated because deterministic
// trace IDs are run labels containing "-", "_", and ".".
func FormatTraceHeader(sc SpanContext) string {
	return traceHeaderVersion + " " + sc.Trace + " " + sc.Span
}

// ParseTraceHeader parses a TraceHeader value, reporting ok=false for empty
// values, unknown versions, or malformed field counts — an untraced or
// future-versioned request simply proceeds untraced.
func ParseTraceHeader(v string) (SpanContext, bool) {
	parts := strings.Fields(v)
	if len(parts) != 3 || parts[0] != traceHeaderVersion {
		return SpanContext{}, false
	}
	return SpanContext{Trace: parts[1], Span: parts[2]}, true
}
