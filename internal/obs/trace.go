package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Spans filters a trace down to its KindSpan events.
func Spans(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Kind == KindSpan {
			out = append(out, ev)
		}
	}
	return out
}

// SpanNode is one span linked into its trace's causal tree.
type SpanNode struct {
	// Event is the span's emitted record.
	Event
	// Children are the span's direct children, ordered by StartNs.
	Children []*SpanNode
}

// SpanTree is the reconstructed causal forest of one trace ID.
type SpanTree struct {
	// ID is the trace identifier.
	ID string
	// Roots are the trace's parentless spans (normally one campaign span),
	// ordered by StartNs.
	Roots []*SpanNode
	// Nodes indexes every span of the trace by span ID.
	Nodes map[string]*SpanNode
}

// BuildSpanForest reconstructs the causal trees of a merged trace, one
// SpanTree per trace ID in first-appearance order. It is also the parent-link
// validator: a duplicate span ID, a non-root span whose parent is absent, or
// a parent cycle is an error — the conditions under which a critical path
// would be meaningless.
func BuildSpanForest(events []Event) ([]*SpanTree, error) {
	byID := map[string]*SpanTree{}
	var order []*SpanTree
	for _, ev := range events {
		if ev.Kind != KindSpan {
			continue
		}
		tree, ok := byID[ev.Trace]
		if !ok {
			tree = &SpanTree{ID: ev.Trace, Nodes: map[string]*SpanNode{}}
			byID[ev.Trace] = tree
			order = append(order, tree)
		}
		if _, dup := tree.Nodes[ev.Span]; dup {
			return nil, fmt.Errorf("trace %q: duplicate span id %q", ev.Trace, ev.Span)
		}
		tree.Nodes[ev.Span] = &SpanNode{Event: ev}
	}
	for _, tree := range order {
		for _, n := range tree.Nodes {
			if n.Parent == "" {
				tree.Roots = append(tree.Roots, n)
				continue
			}
			p, ok := tree.Nodes[n.Parent]
			if !ok {
				return nil, fmt.Errorf("trace %q: span %q (%s) references missing parent %q",
					tree.ID, n.Span, n.SpanKind, n.Parent)
			}
			p.Children = append(p.Children, n)
		}
		// A parent cycle strands its members off every root; walking each
		// node's parent chain with a step bound detects it without recursion.
		for _, n := range tree.Nodes {
			cur, steps := n, 0
			for cur.Parent != "" {
				cur = tree.Nodes[cur.Parent]
				if steps++; steps > len(tree.Nodes) {
					return nil, fmt.Errorf("trace %q: parent cycle through span %q", tree.ID, n.Span)
				}
			}
		}
		sortNodes(tree.Roots)
		for _, n := range tree.Nodes {
			sortNodes(n.Children)
		}
	}
	return order, nil
}

// sortNodes orders sibling spans by start time, breaking ties by span ID so
// rendering is deterministic even within one clock tick.
func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].StartNs != ns[j].StartNs {
			return ns[i].StartNs < ns[j].StartNs
		}
		return ns[i].Span < ns[j].Span
	})
}

// ValidateSpans checks a merged trace's span invariants — unique IDs, every
// non-root parent present, no cycles — returning the first violation.
func ValidateSpans(events []Event) error {
	_, err := BuildSpanForest(events)
	return err
}

// criticalPath returns the chain from n down its heaviest child at each
// level — the longest-duration causal chain under n.
func criticalPath(n *SpanNode) []*SpanNode {
	path := []*SpanNode{n}
	for len(n.Children) > 0 {
		best := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.WallNs > best.WallNs {
				best = c
			}
		}
		path = append(path, best)
		n = best
	}
	return path
}

// selfNs is n's duration not covered by its children, clamped at zero
// (children of a fan-out span run concurrently and may sum past the parent).
func selfNs(n *SpanNode) int64 {
	self := n.WallNs
	for _, c := range n.Children {
		self -= c.WallNs
	}
	if self < 0 {
		self = 0
	}
	return self
}

// spanLabel renders one span for report lines.
func spanLabel(n *SpanNode) string {
	var b strings.Builder
	b.WriteString(n.SpanKind)
	if n.Name != "" {
		fmt.Fprintf(&b, " %s", n.Name)
	}
	if n.Worker != "" {
		fmt.Fprintf(&b, " worker=%s", n.Worker)
	}
	if n.Points > 0 {
		fmt.Fprintf(&b, " pts=%d", n.Points)
	}
	fmt.Fprintf(&b, " %s", time.Duration(n.WallNs).Round(time.Microsecond))
	if n.Why != "" {
		fmt.Fprintf(&b, " err=%q", n.Why)
	}
	return b.String()
}

// workerStat accumulates one worker's time attribution.
type workerStat struct {
	rpcs     int
	total    int64 // sum of rpc span durations
	queue    int64 // worker-side queue spans
	compute  int64 // worker-side eval spans
	cache    int64 // worker-side record-export spans
	transfer int64 // rpc duration not covered by worker-side spans
}

// collectWorker folds the worker-side descendants of an rpc span into st.
func collectWorker(n *SpanNode, st *workerStat) {
	for _, c := range n.Children {
		switch c.SpanKind {
		case SpanQueue:
			st.queue += c.WallNs
		case SpanWorkerEval:
			st.compute += c.WallNs
		case SpanCache:
			st.cache += c.WallNs
		}
		collectWorker(c, st)
	}
}

// WriteTraceReport renders the critical-path analysis of a merged trace:
// per trace, the slowest causal chain, the top-N span kinds by self-time
// (time not covered by children), and a per-worker breakdown attributing
// each worker's rpc wall-clock to queue wait vs. compute vs. record export
// vs. transfer overhead. Returns the parent-link validation error, if any.
func WriteTraceReport(w io.Writer, events []Event, topN int) error {
	if topN <= 0 {
		topN = 5
	}
	forest, err := BuildSpanForest(events)
	if err != nil {
		return err
	}
	if len(forest) == 0 {
		return fmt.Errorf("obs: no span events in trace")
	}
	for _, tree := range forest {
		fmt.Fprintf(w, "== trace %s ==\n", tree.ID)
		fmt.Fprintf(w, "  spans: %d (%d roots)\n", len(tree.Nodes), len(tree.Roots))

		// Critical path: the longest chain under the slowest root.
		slowest := tree.Roots[0]
		for _, r := range tree.Roots[1:] {
			if r.WallNs > slowest.WallNs {
				slowest = r
			}
		}
		fmt.Fprintf(w, "  critical path:\n")
		for depth, n := range criticalPath(slowest) {
			fmt.Fprintf(w, "    %s%s\n", strings.Repeat("  ", depth), spanLabel(n))
		}

		// Self-time by kind.
		type kindStat struct {
			kind  string
			ns    int64
			count int
		}
		byKind := map[string]*kindStat{}
		for _, n := range tree.Nodes {
			st, ok := byKind[n.SpanKind]
			if !ok {
				st = &kindStat{kind: n.SpanKind}
				byKind[n.SpanKind] = st
			}
			st.ns += selfNs(n)
			st.count++
		}
		kinds := make([]*kindStat, 0, len(byKind))
		for _, st := range byKind {
			kinds = append(kinds, st)
		}
		sort.Slice(kinds, func(i, j int) bool {
			if kinds[i].ns != kinds[j].ns {
				return kinds[i].ns > kinds[j].ns
			}
			return kinds[i].kind < kinds[j].kind
		})
		if len(kinds) > topN {
			kinds = kinds[:topN]
		}
		fmt.Fprintf(w, "  self-time by span kind:\n")
		for _, st := range kinds {
			fmt.Fprintf(w, "    %-12s %10s  (%d spans)\n",
				st.kind, time.Duration(st.ns).Round(time.Microsecond), st.count)
		}

		// Per-worker queue/compute/transfer attribution over rpc spans.
		workers := map[string]*workerStat{}
		var order []string
		for _, n := range tree.Nodes {
			if n.SpanKind != SpanRPC || n.Worker == "" {
				continue
			}
			st, ok := workers[n.Worker]
			if !ok {
				st = &workerStat{}
				workers[n.Worker] = st
				order = append(order, n.Worker)
			}
			st.rpcs++
			st.total += n.WallNs
			collectWorker(n, st)
		}
		if len(workers) > 0 {
			sort.Strings(order)
			fmt.Fprintf(w, "  per-worker breakdown (rpc wall-clock):\n")
			for _, addr := range order {
				st := workers[addr]
				st.transfer = st.total - st.queue - st.compute - st.cache
				if st.transfer < 0 {
					st.transfer = 0
				}
				fmt.Fprintf(w, "    %s: %d rpcs %s total | queue %s | compute %s | export %s | transfer %s\n",
					addr, st.rpcs,
					time.Duration(st.total).Round(time.Microsecond),
					time.Duration(st.queue).Round(time.Microsecond),
					time.Duration(st.compute).Round(time.Microsecond),
					time.Duration(st.cache).Round(time.Microsecond),
					time.Duration(st.transfer).Round(time.Microsecond))
			}
		}
	}
	return nil
}

// chromeEvent is one trace_event record of the Chrome/Perfetto JSON format
// (complete events, ph "X", microsecond timestamps).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports a merged trace as Chrome trace_event JSON,
// viewable in chrome://tracing or Perfetto. Each trace ID becomes a process;
// coordinator-side spans share lane 0 and every dispatch subtree gets its
// own lane, so concurrent shards render stacked instead of overlapping.
func WriteChromeTrace(w io.Writer, events []Event) error {
	forest, err := BuildSpanForest(events)
	if err != nil {
		return err
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	for ti, tree := range forest {
		pid := ti + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "trace " + tree.ID},
		})
		lanes := 0
		var emit func(n *SpanNode, tid int)
		emit = func(n *SpanNode, tid int) {
			name := n.SpanKind
			if n.Name != "" {
				name += " " + n.Name
			}
			args := map[string]any{"span": n.Span}
			if n.Worker != "" {
				args["worker"] = n.Worker
			}
			if n.Points > 0 {
				args["points"] = n.Points
			}
			if n.Why != "" {
				args["err"] = n.Why
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: n.SpanKind, Ph: "X",
				Ts: float64(n.StartNs) / 1e3, Dur: float64(n.WallNs) / 1e3,
				Pid: pid, Tid: tid, Args: args,
			})
			for _, c := range n.Children {
				ctid := tid
				if c.SpanKind == SpanDispatch {
					lanes++
					ctid = lanes
				}
				emit(c, ctid)
			}
		}
		for _, r := range tree.Roots {
			emit(r, 0)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
