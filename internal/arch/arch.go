// Package arch defines the accelerator architecture template and the
// discrete hardware design space explored by the DSE (Table 1 of the
// Explainable-DSE paper).
//
// The architecture template is a spatial DNN accelerator: a grid of
// processing elements (PEs) each with a private register file (L1), a shared
// on-chip scratchpad (L2), one dedicated network-on-chip (NoC) per data
// operand, and a DMA engine for off-chip accesses. Design points are
// immutable value structs; the design space describes, per parameter, the
// ordered list of legal values.
package arch

import (
	"fmt"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
)

// Operand identifies one of the four data streams of the accelerator, each
// of which is served by a dedicated NoC (as in Eyeriss-style designs).
type Operand int

const (
	// OpW is the weight (filter) operand.
	OpW Operand = iota
	// OpI is the input-activation operand.
	OpI
	// OpORd is the output operand read path (partial-sum reads).
	OpORd
	// OpOWr is the output operand write path.
	OpOWr

	// NumOperands is the number of operand NoCs in the template.
	NumOperands = 4
)

// String returns the conventional short name of the operand.
func (op Operand) String() string {
	switch op {
	case OpW:
		return "W"
	case OpI:
		return "I"
	case OpORd:
		return "Ord"
	case OpOWr:
		return "Owr"
	}
	return fmt.Sprintf("Operand(%d)", int(op))
}

// Operands lists all operands in order; convenient for range loops.
var Operands = [NumOperands]Operand{OpW, OpI, OpORd, OpOWr}

// Design is a concrete hardware configuration of the accelerator template.
// All quantities are physical values (not design-space indices).
type Design struct {
	// PEs is the total number of processing elements (1 MAC/cycle each).
	PEs int
	// L1Bytes is the per-PE register-file capacity in bytes.
	L1Bytes int
	// L2KB is the shared scratchpad capacity in kilobytes.
	L2KB int
	// OffchipMBps is the DRAM bandwidth in megabytes per second.
	OffchipMBps int
	// NoCWidthBits is the bus width of every operand NoC in bits.
	NoCWidthBits int
	// PhysLinks is the number of physical unicast links of each operand
	// NoC (concurrent distinct-data transfers to PE groups).
	PhysLinks [NumOperands]int
	// VirtLinks is the supported degree of time-shared ("virtual")
	// unicast per physical link of each operand NoC.
	VirtLinks [NumOperands]int
	// FreqMHz is the accelerator clock frequency in MHz.
	FreqMHz int
}

// BytesPerCycle returns the off-chip bandwidth expressed in bytes per
// accelerator clock cycle.
func (d Design) BytesPerCycle() float64 {
	if d.FreqMHz == 0 {
		return 0
	}
	return float64(d.OffchipMBps) / float64(d.FreqMHz)
}

// L2Bytes returns the scratchpad capacity in bytes.
func (d Design) L2Bytes() int { return d.L2KB * 1024 }

// String renders the design compactly for logs and explanations.
func (d Design) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PEs=%d L1=%dB L2=%dKB BW=%dMBps NoC=%db", d.PEs, d.L1Bytes, d.L2KB, d.OffchipMBps, d.NoCWidthBits)
	fmt.Fprintf(&b, " phys=%v virt=%v @%dMHz", d.PhysLinks, d.VirtLinks, d.FreqMHz)
	return b.String()
}

// Valid reports whether all fields are positive and link counts do not
// exceed the PE count (a link per PE group cannot outnumber PEs).
func (d Design) Valid() error {
	if d.PEs <= 0 || d.L1Bytes <= 0 || d.L2KB <= 0 || d.OffchipMBps <= 0 ||
		d.NoCWidthBits <= 0 || d.FreqMHz <= 0 {
		return fmt.Errorf("arch: non-positive field in design %v", d)
	}
	for op := range d.PhysLinks {
		if d.PhysLinks[op] <= 0 || d.VirtLinks[op] <= 0 {
			return fmt.Errorf("arch: non-positive link count for operand %v", Operand(op))
		}
		if d.PhysLinks[op] > d.PEs {
			return fmt.Errorf("arch: operand %v has %d physical links > %d PEs", Operand(op), d.PhysLinks[op], d.PEs)
		}
	}
	return nil
}

// ParamKind distinguishes how a parameter's stored value translates into a
// physical quantity of the design.
type ParamKind int

const (
	// KindAbsolute parameters store the physical value directly.
	KindAbsolute ParamKind = iota
	// KindPERelative parameters store a multiplier i such that the
	// physical value is PEs*i/base (Table 1 expresses physical unicast
	// links as a fraction of total PEs).
	KindPERelative
)

// Param describes one dimension of the design space: a name, the ordered
// list of legal stored values, and how stored values map to physical ones.
type Param struct {
	Name   string
	Values []int
	Kind   ParamKind
	// Base is the divisor for KindPERelative parameters.
	Base int
}

// Options returns the number of legal values of the parameter.
func (p Param) Options() int { return len(p.Values) }

// RoundUpIndex returns the index of the smallest stored value >= v, or the
// last index if v exceeds every value.
func (p Param) RoundUpIndex(v int) int {
	for i, pv := range p.Values {
		if pv >= v {
			return i
		}
	}
	return len(p.Values) - 1
}

// RoundDownIndex returns the index of the largest stored value <= v, or 0 if
// v is below every value.
func (p Param) RoundDownIndex(v int) int {
	idx := 0
	for i, pv := range p.Values {
		if pv <= v {
			idx = i
		}
	}
	return idx
}

// Canonical parameter indices into Space.Params. The per-operand link
// parameters occupy four consecutive slots each.
const (
	PPEs = iota
	PL1
	PL2
	PBW
	PNoCWidth
	PPhys0 // + Operand
	PVirt0 = PPhys0 + NumOperands
	// NumParams is the total number of design-space dimensions.
	NumParams = PVirt0 + NumOperands
)

// Space is the discrete hardware design space: an ordered set of parameters
// plus the fixed clock frequency of the template.
type Space struct {
	Params  []Param
	FreqMHz int
}

// Point is a position in the design space, expressed as one value index per
// parameter, in the order of Space.Params.
type Point []int

// Clone returns an independent copy of the point.
func (pt Point) Clone() Point {
	c := make(Point, len(pt))
	copy(c, pt)
	return c
}

// Equal reports whether two points select identical indices.
func (pt Point) Equal(o Point) bool {
	if len(pt) != len(o) {
		return false
	}
	for i := range pt {
		if pt[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key for use in evaluation caches.
func (pt Point) Key() string {
	var b strings.Builder
	for i, v := range pt {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// ParseKey inverts Point.Key, rebuilding the point from its cache-key form.
// It is the checkpoint-resume path back from journaled keys to evaluable
// points; the result is syntactically parsed only — validate it against a
// Space with CheckPoint before decoding.
func ParseKey(key string) (Point, error) {
	if key == "" {
		return nil, fmt.Errorf("arch: empty point key")
	}
	parts := strings.Split(key, ",")
	pt := make(Point, len(parts))
	for i, s := range parts {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("arch: point key %q: %w", key, err)
		}
		pt[i] = v
	}
	return pt, nil
}

// EdgeSpace constructs the Table 1 design space for edge DNN inference
// accelerators: 7 PE options, 8 L1 sizes, 7 L2 sizes, 10 bandwidths, 16 NoC
// widths, 64 physical-unicast fractions and 4 virtual-unicast degrees per
// operand NoC, at a fixed 500 MHz clock.
func EdgeSpace() *Space {
	pow2 := func(lo, hi int) []int {
		var vs []int
		for v := lo; v <= hi; v *= 2 {
			vs = append(vs, v)
		}
		return vs
	}
	seq := func(lo, hi, step int) []int {
		var vs []int
		for v := lo; v <= hi; v += step {
			vs = append(vs, v)
		}
		return vs
	}
	s := &Space{FreqMHz: 500}
	s.Params = make([]Param, NumParams)
	s.Params[PPEs] = Param{Name: "PEs", Values: pow2(64, 4096)}
	s.Params[PL1] = Param{Name: "L1_bytes", Values: pow2(8, 1024)}
	s.Params[PL2] = Param{Name: "L2_KB", Values: pow2(64, 4096)}
	s.Params[PBW] = Param{Name: "offchip_MBps", Values: []int{1024, 2048, 4096, 6400, 8192, 12800, 19200, 25600, 38400, 51200}}
	s.Params[PNoCWidth] = Param{Name: "noc_width_bits", Values: seq(16, 256, 16)}
	for op := 0; op < NumOperands; op++ {
		s.Params[PPhys0+op] = Param{
			Name:   fmt.Sprintf("phys_unicast_%v", Operand(op)),
			Values: seq(1, 64, 1),
			Kind:   KindPERelative,
			Base:   64,
		}
		s.Params[PVirt0+op] = Param{
			Name:   fmt.Sprintf("virt_unicast_%v", Operand(op)),
			Values: []int{1, 8, 64, 512}, // 2^(3i), i in [0,3]
		}
	}
	return s
}

// Size returns the cardinality of the design space.
func (s *Space) Size() *big.Int {
	n := big.NewInt(1)
	for _, p := range s.Params {
		n.Mul(n, big.NewInt(int64(len(p.Values))))
	}
	return n
}

// Initial returns the lowest-valued point of the space, the paper's starting
// solution for every exploration (footnote of §F).
func (s *Space) Initial() Point {
	return make(Point, len(s.Params))
}

// Random returns a uniformly random point.
func (s *Space) Random(rng *rand.Rand) Point {
	pt := make(Point, len(s.Params))
	for i, p := range s.Params {
		pt[i] = rng.Intn(len(p.Values))
	}
	return pt
}

// Clamp limits idx to the legal index range of parameter i.
func (s *Space) Clamp(i, idx int) int {
	if idx < 0 {
		return 0
	}
	if n := len(s.Params[i].Values); idx >= n {
		return n - 1
	}
	return idx
}

// CheckPoint reports whether a point is well-formed for this space: the
// arity matches the parameter list and every index addresses a declared
// value. Points built through Space methods always pass; the check exists so
// externally supplied points (resumed journals, hand-written initials) fail
// with a diagnosable error instead of an out-of-range panic deep in Decode.
func (s *Space) CheckPoint(pt Point) error {
	if len(pt) != len(s.Params) {
		return fmt.Errorf("arch: point arity %d != %d params", len(pt), len(s.Params))
	}
	for i, p := range s.Params {
		if pt[i] < 0 || pt[i] >= len(p.Values) {
			return fmt.Errorf("arch: parameter %q index %d out of range [0,%d)", p.Name, pt[i], len(p.Values))
		}
	}
	return nil
}

// Decode materializes a design from a point. Parameters are matched by
// name, so partial or custom spaces decode too: any accelerator field whose
// parameter the space does not declare keeps a neutral default of 1 (16 for
// the NoC width). A malformed point (wrong arity or an out-of-range index)
// returns an error rather than panicking; callers that construct points only
// through Space methods can use MustDecode.
func (s *Space) Decode(pt Point) (Design, error) {
	if err := s.CheckPoint(pt); err != nil {
		return Design{}, err
	}
	d := Design{
		PEs: 1, L1Bytes: 1, L2KB: 1, OffchipMBps: 1, NoCWidthBits: 16,
		FreqMHz: s.FreqMHz,
	}
	for op := 0; op < NumOperands; op++ {
		d.PhysLinks[op] = 1
		d.VirtLinks[op] = 1
	}
	// First pass resolves PEs so PE-relative parameters can decode.
	for i, p := range s.Params {
		if p.Name == "PEs" {
			d.PEs = p.Values[pt[i]]
		}
	}
	for i, p := range s.Params {
		v := s.PhysicalValue(i, pt[i], d.PEs)
		switch p.Name {
		case "PEs", "": // PEs handled above
		case "L1_bytes":
			d.L1Bytes = v
		case "L2_KB":
			d.L2KB = v
		case "offchip_MBps":
			d.OffchipMBps = v
		case "noc_width_bits":
			d.NoCWidthBits = v
		default:
			for op := 0; op < NumOperands; op++ {
				switch p.Name {
				case "phys_unicast_" + Operand(op).String():
					d.PhysLinks[op] = v
				case "virt_unicast_" + Operand(op).String():
					d.VirtLinks[op] = v
				}
			}
		}
	}
	return d, nil
}

// MustDecode is Decode for points known well-formed by construction (built
// through Space methods); it panics on a malformed point the way
// regexp.MustCompile panics on a bad pattern.
func (s *Space) MustDecode(pt Point) Design {
	d, err := s.Decode(pt)
	if err != nil {
		panic(err)
	}
	return d
}

// RoundUpPhysical returns, for parameter i, the index whose physical value is
// the smallest one >= want given the design's PE count (needed because
// physical-unicast parameters are stored as fractions of PEs).
func (s *Space) RoundUpPhysical(i, want, pes int) int {
	p := s.Params[i]
	if p.Kind != KindPERelative {
		return p.RoundUpIndex(want)
	}
	for idx, mult := range p.Values {
		if pes*mult/p.Base >= want {
			return idx
		}
	}
	return len(p.Values) - 1
}

// PhysicalValue returns the physical quantity of parameter i at index idx,
// resolving PE-relative parameters against the given PE count.
func (s *Space) PhysicalValue(i, idx, pes int) int {
	p := s.Params[i]
	if p.Kind == KindPERelative {
		v := pes * p.Values[idx] / p.Base
		if v < 1 {
			v = 1
		}
		return v
	}
	return p.Values[idx]
}
