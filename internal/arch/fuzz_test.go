package arch

import (
	"strings"
	"testing"
)

// FuzzParseSpace checks that arbitrary specification text never panics and
// that accepted specs produce structurally sound spaces.
func FuzzParseSpace(f *testing.F) {
	f.Add(EdgeSpaceSpec)
	f.Add("freq 100\nparam a list 1 2 3\n")
	f.Add("freq 1\nparam b range 2 64 mul 2\nparam c perel 1 4 step 1 base 4\n")
	f.Add("freq 0\nparam x list\n")
	f.Add("# only comments\n")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpace(spec)
		if err != nil {
			return
		}
		if s.FreqMHz <= 0 || len(s.Params) == 0 {
			t.Fatalf("accepted spec with bad header: %+v", s)
		}
		for _, p := range s.Params {
			if len(p.Values) == 0 {
				t.Fatalf("parameter %q with no values accepted", p.Name)
			}
			for i := 1; i < len(p.Values); i++ {
				if p.Values[i] <= p.Values[i-1] {
					t.Fatalf("parameter %q not increasing: %v", p.Name, p.Values)
				}
			}
		}
		// Accepted spaces must decode their initial point.
		_ = s.MustDecode(s.Initial())
		if !strings.Contains(spec, "param") {
			t.Fatal("space without param directives accepted")
		}
	})
}
