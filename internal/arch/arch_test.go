package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeSpaceShape(t *testing.T) {
	s := EdgeSpace()
	if got := len(s.Params); got != NumParams {
		t.Fatalf("params = %d, want %d", got, NumParams)
	}
	wantOptions := map[int]int{
		PPEs: 7, PL1: 8, PL2: 7, PBW: 10, PNoCWidth: 16,
	}
	for idx, want := range wantOptions {
		if got := s.Params[idx].Options(); got != want {
			t.Errorf("%s options = %d, want %d", s.Params[idx].Name, got, want)
		}
	}
	for op := 0; op < NumOperands; op++ {
		if got := s.Params[PPhys0+op].Options(); got != 64 {
			t.Errorf("phys unicast options = %d, want 64", got)
		}
		if got := s.Params[PVirt0+op].Options(); got != 4 {
			t.Errorf("virt unicast options = %d, want 4", got)
		}
	}
}

func TestEdgeSpaceSize(t *testing.T) {
	// 7*8*7*10*16 * 64^4 * 4^4 = 269,380,348,805,120 — the "vast space"
	// scale of Table 1.
	if got := EdgeSpace().Size().String(); got != "269380348805120" {
		t.Fatalf("space size = %s", got)
	}
}

func TestDecodeInitial(t *testing.T) {
	s := EdgeSpace()
	d := s.MustDecode(s.Initial())
	if d.PEs != 64 || d.L1Bytes != 8 || d.L2KB != 64 || d.OffchipMBps != 1024 || d.NoCWidthBits != 16 {
		t.Fatalf("initial design = %v", d)
	}
	if d.FreqMHz != 500 {
		t.Fatalf("freq = %d, want 500", d.FreqMHz)
	}
	for op := 0; op < NumOperands; op++ {
		if d.PhysLinks[op] != 1 { // 64*1/64
			t.Errorf("initial phys links = %d, want 1", d.PhysLinks[op])
		}
		if d.VirtLinks[op] != 1 {
			t.Errorf("initial virt links = %d, want 1", d.VirtLinks[op])
		}
	}
	if err := d.Valid(); err != nil {
		t.Fatalf("initial design invalid: %v", err)
	}
}

func TestDecodePERelativeLinks(t *testing.T) {
	s := EdgeSpace()
	pt := s.Initial()
	pt[PPEs] = 3 // 512 PEs
	pt[PPhys0] = 15
	d := s.MustDecode(pt)
	if d.PEs != 512 {
		t.Fatalf("PEs = %d", d.PEs)
	}
	if want := 512 * 16 / 64; d.PhysLinks[OpW] != want {
		t.Fatalf("links = %d, want %d", d.PhysLinks[OpW], want)
	}
}

func TestDecodeAllRandomValid(t *testing.T) {
	s := EdgeSpace()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		d := s.MustDecode(s.Random(rng))
		if err := d.Valid(); err != nil {
			t.Fatalf("random design invalid: %v", err)
		}
	}
}

func TestRoundUpIndexProperty(t *testing.T) {
	p := Param{Values: []int{64, 128, 256, 512, 1024, 2048, 4096}}
	f := func(want uint16) bool {
		v := int(want)
		idx := p.RoundUpIndex(v)
		val := p.Values[idx]
		if v <= 4096 && val < v {
			return false
		}
		// Smallest value >= v (or the largest value overall).
		if idx > 0 && p.Values[idx-1] >= v {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundDownIndexProperty(t *testing.T) {
	p := Param{Values: []int{8, 16, 32, 64, 128, 256, 512, 1024}}
	f := func(want uint16) bool {
		v := int(want)
		idx := p.RoundDownIndex(v)
		val := p.Values[idx]
		if v >= 8 && val > v {
			return false
		}
		if idx < len(p.Values)-1 && p.Values[idx+1] <= v {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundUpPhysical(t *testing.T) {
	s := EdgeSpace()
	// phys links = PEs*i/64; for 256 PEs, want 20 links -> i=5 gives 20.
	idx := s.RoundUpPhysical(PPhys0, 20, 256)
	if got := s.PhysicalValue(PPhys0, idx, 256); got < 20 {
		t.Fatalf("physical = %d < 20", got)
	}
	if idx > 0 {
		if prev := s.PhysicalValue(PPhys0, idx-1, 256); prev >= 20 {
			t.Fatalf("not minimal: prev=%d", prev)
		}
	}
}

func TestClamp(t *testing.T) {
	s := EdgeSpace()
	if got := s.Clamp(PPEs, -3); got != 0 {
		t.Fatalf("clamp(-3) = %d", got)
	}
	if got := s.Clamp(PPEs, 99); got != 6 {
		t.Fatalf("clamp(99) = %d", got)
	}
	if got := s.Clamp(PPEs, 4); got != 4 {
		t.Fatalf("clamp(4) = %d", got)
	}
}

func TestPointCloneEqualKey(t *testing.T) {
	s := EdgeSpace()
	rng := rand.New(rand.NewSource(1))
	a := s.Random(rng)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	if a.Key() != b.Key() {
		t.Fatal("keys differ")
	}
	b[0] = (b[0] + 1) % len(s.Params[0].Values)
	if a.Equal(b) {
		t.Fatal("mutated clone equal to original")
	}
	if a.Key() == b.Key() {
		t.Fatal("mutated clone key equal")
	}
}

func TestBytesPerCycle(t *testing.T) {
	d := Design{OffchipMBps: 51200, FreqMHz: 500}
	if got := d.BytesPerCycle(); got != 102.4 {
		t.Fatalf("bytes/cycle = %v", got)
	}
	if (Design{}).BytesPerCycle() != 0 {
		t.Fatal("zero design should have 0 bytes/cycle")
	}
}

func TestDesignValidRejects(t *testing.T) {
	s := EdgeSpace()
	d := s.MustDecode(s.Initial())
	d.PhysLinks[0] = d.PEs + 1
	if err := d.Valid(); err == nil {
		t.Fatal("links > PEs should be invalid")
	}
	d = s.MustDecode(s.Initial())
	d.L2KB = 0
	if err := d.Valid(); err == nil {
		t.Fatal("zero L2 should be invalid")
	}
}

func TestOperandString(t *testing.T) {
	want := map[Operand]string{OpW: "W", OpI: "I", OpORd: "Ord", OpOWr: "Owr"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("operand %d string = %s, want %s", op, op.String(), s)
		}
	}
}
