package arch_test

import (
	"fmt"

	"xdse/internal/arch"
)

// ExampleParseSpace declares a design space in the §4.2 specification
// language and decodes a point from it.
func ExampleParseSpace() {
	space, err := arch.ParseSpace(`
freq 500
param PEs     range 64 1024 mul 2
param L2_KB   range 64 512 mul 2
param offchip_MBps list 1024 4096 8192
`)
	if err != nil {
		panic(err)
	}
	fmt.Println("designs:", space.Size())

	pt := space.Initial()
	pt[0] = 2 // 256 PEs
	pt[2] = 1 // 4096 MBps
	d := space.MustDecode(pt)
	fmt.Printf("PEs=%d L2=%dKB BW=%dMBps\n", d.PEs, d.L2KB, d.OffchipMBps)
	// Output:
	// designs: 60
	// PEs=256 L2=64KB BW=4096MBps
}
