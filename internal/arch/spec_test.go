package arch

import (
	"strings"
	"testing"
)

func TestParseSpaceMatchesEdgeSpace(t *testing.T) {
	parsed, err := ParseSpace(EdgeSpaceSpec)
	if err != nil {
		t.Fatal(err)
	}
	want := EdgeSpace()
	if parsed.FreqMHz != want.FreqMHz {
		t.Fatalf("freq = %d, want %d", parsed.FreqMHz, want.FreqMHz)
	}
	if len(parsed.Params) != len(want.Params) {
		t.Fatalf("params = %d, want %d", len(parsed.Params), len(want.Params))
	}
	for i := range want.Params {
		pw, pp := want.Params[i], parsed.Params[i]
		if pw.Name != pp.Name || pw.Kind != pp.Kind || pw.Base != pp.Base {
			t.Fatalf("param %d header mismatch: %+v vs %+v", i, pp, pw)
		}
		if len(pw.Values) != len(pp.Values) {
			t.Fatalf("param %s values = %d, want %d", pw.Name, len(pp.Values), len(pw.Values))
		}
		for j := range pw.Values {
			if pw.Values[j] != pp.Values[j] {
				t.Fatalf("param %s value %d = %d, want %d", pw.Name, j, pp.Values[j], pw.Values[j])
			}
		}
	}
	if parsed.Size().Cmp(want.Size()) != 0 {
		t.Fatal("space sizes differ")
	}
}

func TestParseSpaceForms(t *testing.T) {
	s, err := ParseSpace(`
# comment line
freq 100
param a list 1 2 3      # trailing comment
param b range 2 16 mul 2
param c range 10 30 step 10
param d perel 1 4 step 1 base 4
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Params[1].Values; len(got) != 4 || got[3] != 16 {
		t.Fatalf("mul range = %v", got)
	}
	if got := s.Params[2].Values; len(got) != 3 || got[2] != 30 {
		t.Fatalf("step range = %v", got)
	}
	if s.Params[3].Kind != KindPERelative || s.Params[3].Base != 4 {
		t.Fatalf("perel param = %+v", s.Params[3])
	}
}

func TestParseSpaceErrors(t *testing.T) {
	cases := map[string]string{
		"no params":         "freq 100\n",
		"no freq":           "param a list 1 2\n",
		"bad directive":     "freq 100\nwhatever a b\n",
		"bad freq":          "freq zero\nparam a list 1\n",
		"dup param":         "freq 1\nparam a list 1\nparam a list 2\n",
		"bad list value":    "freq 1\nparam a list 1 x\n",
		"bad range kind":    "freq 1\nparam a range 1 8 pow 2\n",
		"bad mul":           "freq 1\nparam a range 1 8 mul 1\n",
		"bad step":          "freq 1\nparam a range 1 8 step 0\n",
		"perel sans base":   "freq 1\nparam a perel 1 8 step 1\n",
		"descending values": "freq 1\nparam a list 3 2 1\n",
		"reversed range":    "freq 1\nparam a range 9 2 step 1\n",
	}
	for name, spec := range cases {
		if _, err := ParseSpace(spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseSpaceErrorCarriesLine(t *testing.T) {
	_, err := ParseSpace("freq 100\nparam ok list 1\nparam bad range 1 2\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error without line number: %v", err)
	}
}
