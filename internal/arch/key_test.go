package arch

import (
	"strings"
	"testing"
)

// Malformed points must surface as errors, not index panics: the resume path
// feeds journaled keys straight into Decode.
func TestCheckPointMalformed(t *testing.T) {
	s := EdgeSpace()

	good := s.Initial()
	if err := s.CheckPoint(good); err != nil {
		t.Fatalf("CheckPoint(Initial) = %v, want nil", err)
	}

	cases := []struct {
		name string
		pt   Point
		want string
	}{
		{"short arity", good[:len(good)-1], "arity"},
		{"long arity", append(good.Clone(), 0), "arity"},
		{"negative index", func() Point { p := good.Clone(); p[PPEs] = -1; return p }(), "out of range"},
		{"overflow index", func() Point { p := good.Clone(); p[PL1] = 99; return p }(), "out of range"},
		{"nil point", nil, "arity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := s.CheckPoint(tc.pt)
			if err == nil {
				t.Fatalf("CheckPoint(%v) = nil, want error containing %q", tc.pt, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("CheckPoint(%v) = %q, want substring %q", tc.pt, err, tc.want)
			}
			if _, derr := s.Decode(tc.pt); derr == nil {
				t.Errorf("Decode(%v) = nil error, want the CheckPoint failure", tc.pt)
			}
		})
	}
}

func TestMustDecodePanicsOnMalformed(t *testing.T) {
	s := EdgeSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("MustDecode on a malformed point did not panic")
		}
	}()
	s.MustDecode(Point{1})
}

func TestParseKeyRoundTrip(t *testing.T) {
	s := EdgeSpace()
	pts := []Point{
		s.Initial(),
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0},
	}
	// Keep the hand-written point within the space arity.
	pts[1] = pts[1][:len(s.Params)]
	for _, pt := range pts {
		got, err := ParseKey(pt.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", pt.Key(), err)
		}
		if !got.Equal(pt) {
			t.Errorf("ParseKey(Key(%v)) = %v", pt, got)
		}
	}
}

func TestParseKeyMalformed(t *testing.T) {
	for _, key := range []string{"", "1,2,x", "1,,2", "1.5", "1, 2"} {
		if pt, err := ParseKey(key); err == nil {
			t.Errorf("ParseKey(%q) = %v, want error", key, pt)
		}
	}
}
