package arch

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// This file implements the textual design-space specification of §4.2: a
// space's parameters can be declared with value lists or generator
// expressions, so users can comprehensively define vast spaces without
// writing Go (Appendix B: "comprehensive design space specification").
//
// Grammar (one declaration per line; '#' starts a comment):
//
//	freq <MHz>
//	param <name> list <v1> <v2> ...
//	param <name> range <lo> <hi> step <s>      # lo, lo+s, ..., <= hi
//	param <name> range <lo> <hi> mul <m>       # lo, lo*m, ..., <= hi
//	param <name> perel <lo> <hi> step <s> base <b>   # PE-relative multiplier
//
// Example (the Table 1 edge space):
//
//	freq 500
//	param PEs range 64 4096 mul 2
//	param L1_bytes range 8 1024 mul 2
//	param L2_KB range 64 4096 mul 2
//	param offchip_MBps list 1024 2048 4096 6400 8192 12800 19200 25600 38400 51200
//	param noc_width_bits range 16 256 step 16
//	param phys_unicast_W perel 1 64 step 1 base 64
//	...

// ParseSpace parses a design-space specification.
func ParseSpace(spec string) (*Space, error) {
	s := &Space{}
	sc := bufio.NewScanner(strings.NewReader(spec))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "freq":
			err = parseFreq(s, fields)
		case "param":
			err = parseParam(s, fields)
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("arch: spec line %d: %w", lineNo, err)
		}
	}
	if len(s.Params) == 0 {
		return nil, fmt.Errorf("arch: spec declares no parameters")
	}
	if s.FreqMHz <= 0 {
		return nil, fmt.Errorf("arch: spec declares no positive freq")
	}
	return s, nil
}

func parseFreq(s *Space, fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("freq wants one value")
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil || v <= 0 {
		return fmt.Errorf("bad freq %q", fields[1])
	}
	s.FreqMHz = v
	return nil
}

func parseParam(s *Space, fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("param wants a name, a kind, and values")
	}
	name, kind := fields[1], fields[2]
	for _, p := range s.Params {
		if p.Name == name {
			return fmt.Errorf("duplicate parameter %q", name)
		}
	}
	p := Param{Name: name}
	rest := fields[3:]
	var err error
	switch kind {
	case "list":
		p.Values, err = atois(rest)
	case "range":
		p.Values, err = parseRange(rest)
	case "perel":
		var base int
		if len(rest) < 2 || rest[len(rest)-2] != "base" {
			return fmt.Errorf("perel wants a trailing 'base <b>'")
		}
		base, err = strconv.Atoi(rest[len(rest)-1])
		if err != nil || base <= 0 {
			return fmt.Errorf("bad perel base")
		}
		p.Kind = KindPERelative
		p.Base = base
		p.Values, err = parseRange(rest[:len(rest)-2])
	default:
		return fmt.Errorf("unknown param kind %q", kind)
	}
	if err != nil {
		return err
	}
	if len(p.Values) == 0 {
		return fmt.Errorf("parameter %q has no values", name)
	}
	for i := 1; i < len(p.Values); i++ {
		if p.Values[i] <= p.Values[i-1] {
			return fmt.Errorf("parameter %q values not strictly increasing", name)
		}
	}
	s.Params = append(s.Params, p)
	return nil
}

// parseRange parses "<lo> <hi> step <s>" or "<lo> <hi> mul <m>".
func parseRange(fields []string) ([]int, error) {
	if len(fields) != 4 {
		return nil, fmt.Errorf("range wants '<lo> <hi> step|mul <n>'")
	}
	lo, err1 := strconv.Atoi(fields[0])
	hi, err2 := strconv.Atoi(fields[1])
	n, err3 := strconv.Atoi(fields[3])
	if err1 != nil || err2 != nil || err3 != nil || lo <= 0 || hi < lo {
		return nil, fmt.Errorf("bad range bounds")
	}
	var vs []int
	switch fields[2] {
	case "step":
		if n <= 0 {
			return nil, fmt.Errorf("step must be positive")
		}
		for v := lo; v <= hi; v += n {
			vs = append(vs, v)
		}
	case "mul":
		if n <= 1 {
			return nil, fmt.Errorf("mul must exceed 1")
		}
		for v := lo; v <= hi; v *= n {
			vs = append(vs, v)
		}
	default:
		return nil, fmt.Errorf("range wants 'step' or 'mul', got %q", fields[2])
	}
	return vs, nil
}

func atois(fields []string) ([]int, error) {
	vs := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", f)
		}
		vs[i] = v
	}
	return vs, nil
}

// EdgeSpaceSpec is the Table 1 space expressed in the §4.2 specification
// language; ParseSpace(EdgeSpaceSpec) is equivalent to EdgeSpace().
const EdgeSpaceSpec = `
# Table 1: edge DNN inference accelerator design space.
freq 500
param PEs            range 64 4096 mul 2
param L1_bytes       range 8 1024 mul 2
param L2_KB          range 64 4096 mul 2
param offchip_MBps   list 1024 2048 4096 6400 8192 12800 19200 25600 38400 51200
param noc_width_bits range 16 256 step 16
param phys_unicast_W   perel 1 64 step 1 base 64
param phys_unicast_I   perel 1 64 step 1 base 64
param phys_unicast_Ord perel 1 64 step 1 base 64
param phys_unicast_Owr perel 1 64 step 1 base 64
param virt_unicast_W   list 1 8 64 512
param virt_unicast_I   list 1 8 64 512
param virt_unicast_Ord list 1 8 64 512
param virt_unicast_Owr list 1 8 64 512
`
