package search

import (
	"math"
	"testing"

	"xdse/internal/arch"
)

func toyProblem(budget int) *Problem {
	return &Problem{
		Space:  arch.EdgeSpace(),
		Budget: budget,
		Evaluate: func(pt arch.Point) Costs {
			return Costs{Objective: float64(pt[0]), Feasible: true, BudgetUtil: 0.5}
		},
	}
}

func TestStartDefaultsToInitial(t *testing.T) {
	p := toyProblem(10)
	if !p.Start().Equal(p.Space.Initial()) {
		t.Fatal("Start should default to Space.Initial")
	}
	custom := p.Space.Initial()
	custom[0] = 3
	p.Initial = custom
	got := p.Start()
	if got[0] != 3 {
		t.Fatal("Start ignored Initial")
	}
	got[0] = 5
	if p.Initial[0] != 3 {
		t.Fatal("Start must clone the initial point")
	}
}

func TestTraceRecordTracksBest(t *testing.T) {
	p := toyProblem(3)
	tr := &Trace{}
	pt := p.Space.Initial()

	pt[0] = 5
	if !tr.Record(p, pt, Costs{Objective: 50, Feasible: true}) {
		t.Fatal("budget should allow more")
	}
	pt[0] = 2
	tr.Record(p, pt, Costs{Objective: 20, Feasible: true})
	pt[0] = 4
	if tr.Record(p, pt, Costs{Objective: 40, Feasible: true}) {
		t.Fatal("budget exhausted, Record should return false")
	}
	if tr.BestObjective() != 20 {
		t.Fatalf("best = %v, want 20", tr.BestObjective())
	}
	if tr.Evaluations != 3 {
		t.Fatalf("evaluations = %d", tr.Evaluations)
	}
	if tr.Steps[2].BestSoFar != 20 {
		t.Fatalf("best-so-far after worse point = %v", tr.Steps[2].BestSoFar)
	}
}

func TestTraceInfeasibleNeverBest(t *testing.T) {
	p := toyProblem(5)
	tr := &Trace{}
	tr.Record(p, p.Space.Initial(), Costs{Objective: 1, Feasible: false})
	if tr.Best != nil {
		t.Fatal("infeasible point became best")
	}
	if !math.IsInf(tr.BestObjective(), 1) {
		t.Fatal("best objective should be +Inf")
	}
}

func TestFeasibleFractions(t *testing.T) {
	p := toyProblem(4)
	tr := &Trace{}
	pt := p.Space.Initial()
	tr.Record(p, pt, Costs{Feasible: true, MeetsAreaPower: true})
	tr.Record(p, pt, Costs{Feasible: false, MeetsAreaPower: true})
	tr.Record(p, pt, Costs{Feasible: false, MeetsAreaPower: false})
	tr.Record(p, pt, Costs{Feasible: true, MeetsAreaPower: true})
	if got := tr.FeasibleFraction(); got != 0.5 {
		t.Fatalf("feasible fraction = %v", got)
	}
	if got := tr.AreaPowerFraction(); got != 0.75 {
		t.Fatalf("area/power fraction = %v", got)
	}
	if (&Trace{}).FeasibleFraction() != 0 {
		t.Fatal("empty trace fraction should be 0")
	}
}

func TestMeanStepReduction(t *testing.T) {
	p := toyProblem(10)
	tr := &Trace{}
	pt := p.Space.Initial()
	// 100 -> 50 -> 25: two improving steps of 2x each.
	tr.Record(p, pt, Costs{Objective: 100, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 50, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 25, Feasible: true})
	if got := tr.MeanStepReduction(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mean step reduction = %v, want 2", got)
	}
	if (&Trace{}).MeanStepReduction() != 1 {
		t.Fatal("empty trace reduction should be 1")
	}
}

func TestReductionPerAttempt(t *testing.T) {
	p := toyProblem(10)
	tr := &Trace{}
	pt := p.Space.Initial()
	// After the first feasible: one halving and one flat attempt ->
	// geomean sqrt(2) - 1 = ~41.4%.
	tr.Record(p, pt, Costs{Objective: 100, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 50, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 60, Feasible: true})
	want := (math.Sqrt2 - 1) * 100
	if got := tr.ReductionPerAttempt(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("reduction per attempt = %v, want %v", got, want)
	}
	if (&Trace{}).ReductionPerAttempt() != 0 {
		t.Fatal("empty trace should report 0")
	}
}
