package search

import (
	"math"
	"testing"

	"xdse/internal/arch"
)

func toyProblem(budget int) *Problem {
	return &Problem{
		Space:  arch.EdgeSpace(),
		Budget: budget,
		Evaluate: func(pt arch.Point) Costs {
			return Costs{Objective: float64(pt[0]), Feasible: true, BudgetUtil: 0.5}
		},
	}
}

func TestStartDefaultsToInitial(t *testing.T) {
	p := toyProblem(10)
	if !p.Start().Equal(p.Space.Initial()) {
		t.Fatal("Start should default to Space.Initial")
	}
	custom := p.Space.Initial()
	custom[0] = 3
	p.Initial = custom
	got := p.Start()
	if got[0] != 3 {
		t.Fatal("Start ignored Initial")
	}
	got[0] = 5
	if p.Initial[0] != 3 {
		t.Fatal("Start must clone the initial point")
	}
}

func TestTraceRecordTracksBest(t *testing.T) {
	p := toyProblem(3)
	tr := &Trace{}
	pt := p.Space.Initial()

	pt[0] = 5
	if !tr.Record(p, pt, Costs{Objective: 50, Feasible: true}) {
		t.Fatal("budget should allow more")
	}
	pt[0] = 2
	tr.Record(p, pt, Costs{Objective: 20, Feasible: true})
	pt[0] = 4
	if tr.Record(p, pt, Costs{Objective: 40, Feasible: true}) {
		t.Fatal("budget exhausted, Record should return false")
	}
	if tr.BestObjective() != 20 {
		t.Fatalf("best = %v, want 20", tr.BestObjective())
	}
	if tr.Evaluations != 3 {
		t.Fatalf("evaluations = %d", tr.Evaluations)
	}
	if tr.Steps[2].BestSoFar != 20 {
		t.Fatalf("best-so-far after worse point = %v", tr.Steps[2].BestSoFar)
	}
}

func TestRepeatAcquisitionsAreBudgetFree(t *testing.T) {
	p := toyProblem(2)
	tr := &Trace{}
	pt := p.Space.Initial()
	for i := 0; i < 5; i++ {
		if !tr.Record(p, pt, Costs{Objective: 1, Feasible: true}) {
			t.Fatal("re-acquiring a memoized point must not exhaust the budget")
		}
	}
	if tr.Evaluations != 1 || tr.RepeatSteps != 4 {
		t.Fatalf("evaluations=%d repeats=%d, want 1 and 4", tr.Evaluations, tr.RepeatSteps)
	}
	if !tr.Seen(pt) {
		t.Fatal("Seen must report recorded points")
	}
	other := pt.Clone()
	other[0] = pt[0] + 1
	if tr.Seen(other) {
		t.Fatal("Seen must not report unrecorded points")
	}
	if tr.Record(p, other, Costs{Objective: 2, Feasible: true}) {
		t.Fatal("second unique point exhausts the budget of 2")
	}
	if tr.Evaluations != 2 {
		t.Fatalf("evaluations = %d, want 2", tr.Evaluations)
	}
}

func TestMaxStepsCapsRepeatAcquisitions(t *testing.T) {
	p := toyProblem(5)
	p.MaxSteps = 7
	tr := &Trace{}
	pt := p.Space.Initial()
	steps := 0
	for tr.Record(p, pt, Costs{Objective: 1, Feasible: true}) {
		steps++
		if steps > 100 {
			t.Fatal("budget-free repeats must still terminate via MaxSteps")
		}
	}
	if len(tr.Steps) != 7 {
		t.Fatalf("recorded %d steps, want MaxSteps=7", len(tr.Steps))
	}
}

func TestRecordBatchStopsAtBudget(t *testing.T) {
	p := toyProblem(2)
	tr := &Trace{}
	var pts []arch.Point
	var costs []Costs
	for i := 0; i < 4; i++ {
		pt := p.Space.Initial()
		pt[0] = i
		pts = append(pts, pt)
		costs = append(costs, Costs{Objective: float64(i), Feasible: true})
	}
	if tr.RecordBatch(p, pts, costs) {
		t.Fatal("batch beyond the budget must report exhaustion")
	}
	if tr.Evaluations != 2 || len(tr.Steps) != 2 {
		t.Fatalf("evaluations=%d steps=%d, want exactly the budget of 2",
			tr.Evaluations, len(tr.Steps))
	}
}

func TestTraceInfeasibleNeverBest(t *testing.T) {
	p := toyProblem(5)
	tr := &Trace{}
	tr.Record(p, p.Space.Initial(), Costs{Objective: 1, Feasible: false})
	if tr.Best != nil {
		t.Fatal("infeasible point became best")
	}
	if !math.IsInf(tr.BestObjective(), 1) {
		t.Fatal("best objective should be +Inf")
	}
}

func TestFeasibleFractions(t *testing.T) {
	p := toyProblem(4)
	tr := &Trace{}
	pt := p.Space.Initial()
	tr.Record(p, pt, Costs{Feasible: true, MeetsAreaPower: true})
	tr.Record(p, pt, Costs{Feasible: false, MeetsAreaPower: true})
	tr.Record(p, pt, Costs{Feasible: false, MeetsAreaPower: false})
	tr.Record(p, pt, Costs{Feasible: true, MeetsAreaPower: true})
	if got := tr.FeasibleFraction(); got != 0.5 {
		t.Fatalf("feasible fraction = %v", got)
	}
	if got := tr.AreaPowerFraction(); got != 0.75 {
		t.Fatalf("area/power fraction = %v", got)
	}
	if (&Trace{}).FeasibleFraction() != 0 {
		t.Fatal("empty trace fraction should be 0")
	}
}

func TestMeanStepReduction(t *testing.T) {
	p := toyProblem(10)
	tr := &Trace{}
	pt := p.Space.Initial()
	// 100 -> 50 -> 25: two improving steps of 2x each.
	tr.Record(p, pt, Costs{Objective: 100, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 50, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 25, Feasible: true})
	if got := tr.MeanStepReduction(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mean step reduction = %v, want 2", got)
	}
	if (&Trace{}).MeanStepReduction() != 1 {
		t.Fatal("empty trace reduction should be 1")
	}
}

func TestReductionPerAttempt(t *testing.T) {
	p := toyProblem(10)
	tr := &Trace{}
	pt := p.Space.Initial()
	// After the first feasible: one halving and one flat attempt ->
	// geomean sqrt(2) - 1 = ~41.4%.
	tr.Record(p, pt, Costs{Objective: 100, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 50, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 60, Feasible: true})
	want := (math.Sqrt2 - 1) * 100
	if got := tr.ReductionPerAttempt(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("reduction per attempt = %v, want %v", got, want)
	}
	if (&Trace{}).ReductionPerAttempt() != 0 {
		t.Fatal("empty trace should report 0")
	}
}

func TestEvalsToBest(t *testing.T) {
	p := toyProblem(10)
	tr := &Trace{}
	if tr.EvalsToBest() != 0 {
		t.Fatal("empty trace must report 0 evals-to-best")
	}
	pt := p.Space.Initial()
	pt[0] = 5
	tr.Record(p, pt, Costs{Objective: 50, Feasible: true})
	tr.Record(p, pt, Costs{Objective: 50, Feasible: true}) // budget-free repeat
	pt[0] = 2
	tr.Record(p, pt, Costs{Objective: 20, Feasible: true}) // the final best
	pt[0] = 4
	tr.Record(p, pt, Costs{Objective: 40, Feasible: true})
	// Best found on the 2nd unique evaluation (3rd step); the repeat and
	// the trailing worse point must not count.
	if got := tr.EvalsToBest(); got != 2 {
		t.Fatalf("evals-to-best = %d, want 2", got)
	}
	if tr.Evaluations != 3 {
		t.Fatalf("evaluations = %d, want 3", tr.Evaluations)
	}
}
