package search

import (
	"context"
	"math"
	"strings"
	"testing"

	"xdse/internal/arch"
)

// panicProblem panics on points whose first index equals bad; everything
// else evaluates normally.
func panicProblem(budget, bad int) *Problem {
	return &Problem{
		Space:  arch.EdgeSpace(),
		Budget: budget,
		Stats:  &BatchStats{},
		Evaluate: func(pt arch.Point) Costs {
			if pt[0] == bad {
				panic("model blew up")
			}
			return Costs{Objective: float64(pt[0]), Feasible: true, BudgetUtil: 0.5}
		},
	}
}

func TestEvaluateBatchContainsPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := panicProblem(100, 2)
		p.Workers = workers
		pts := make([]arch.Point, 5)
		for i := range pts {
			pts[i] = p.Space.Initial()
			pts[i][0] = i
		}
		costs := p.EvaluateBatch(pts)
		for i, c := range costs {
			if i == 2 {
				if c.Err == "" || !strings.Contains(c.Err, "panic during evaluation: model blew up") {
					t.Fatalf("workers=%d: panicked point Err = %q", workers, c.Err)
				}
				if c.Feasible || !math.IsInf(c.Objective, 1) {
					t.Errorf("workers=%d: panicked point costs = %+v, want infeasible +Inf", workers, c)
				}
				continue
			}
			if c.Err != "" || !c.Feasible {
				t.Errorf("workers=%d: healthy point %d came back %+v", workers, i, c)
			}
		}
		if rep := p.Stats.Report(); rep.PanicsRecovered != 1 {
			t.Errorf("workers=%d: PanicsRecovered = %d, want 1", workers, rep.PanicsRecovered)
		}
	}
}

func TestEvaluateBatchCancelSkipsRemainder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evaluated := 0
	p := &Problem{
		Space:  arch.EdgeSpace(),
		Budget: 100,
		Ctx:    ctx,
		Stats:  &BatchStats{},
		Evaluate: func(pt arch.Point) Costs {
			evaluated++
			if evaluated == 2 {
				cancel() // the campaign is killed mid-batch
			}
			return Costs{Objective: float64(pt[0]), Feasible: true, BudgetUtil: 0.5}
		},
	}
	pts := make([]arch.Point, 6)
	for i := range pts {
		pts[i] = p.Space.Initial()
		pts[i][0] = i
	}
	costs := p.EvaluateBatch(pts) // Workers=1: serial, deterministic cut
	if evaluated != 2 {
		t.Fatalf("evaluated %d points, want 2 before the cancellation lands", evaluated)
	}
	for i, c := range costs {
		if i < 2 {
			if c.Err != "" {
				t.Errorf("point %d evaluated before cancel came back errored: %q", i, c.Err)
			}
			continue
		}
		if !strings.Contains(c.Err, "evaluation cancelled") {
			t.Errorf("point %d after cancel: Err = %q, want cancellation", i, c.Err)
		}
	}
	if rep := p.Stats.Report(); rep.CancelledPoints != 4 {
		t.Errorf("CancelledPoints = %d, want 4", rep.CancelledPoints)
	}
	if !p.Cancelled() {
		t.Error("Problem.Cancelled() = false after context cancellation")
	}
}

func TestProblemContextDefaults(t *testing.T) {
	p := &Problem{Space: arch.EdgeSpace(), Budget: 1}
	if p.Context() == nil {
		t.Fatal("nil-Ctx problem must still return a usable context")
	}
	if p.Cancelled() {
		t.Error("nil-Ctx problem reports cancelled")
	}
}

func TestTraceFingerprintAndDiff(t *testing.T) {
	p := &Problem{
		Space:  arch.EdgeSpace(),
		Budget: 10,
		Evaluate: func(pt arch.Point) Costs {
			return Costs{Objective: float64(pt[0]), Feasible: true, BudgetUtil: 0.5}
		},
	}
	build := func(objs ...int) *Trace {
		tr := &Trace{Name: "toy"}
		for _, o := range objs {
			pt := p.Space.Initial()
			pt[0] = o
			tr.Record(p, pt, p.Evaluate(pt))
		}
		return tr
	}
	a, b := build(3, 1, 2), build(3, 1, 2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical traces fingerprint differently:\n%s", a.Diff(b))
	}
	if d := a.Diff(b); d != "" {
		t.Fatalf("identical traces diff: %s", d)
	}
	c := build(3, 2, 2)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("divergent traces fingerprint equal")
	}
	if d := a.Diff(c); !strings.Contains(d, "step 1") {
		t.Fatalf("Diff = %q, want first divergence at step 1", d)
	}
	// A clean prefix (the interrupted-run shape) diverges only in length.
	pre := build(3, 1)
	if d := a.Diff(pre); !strings.Contains(d, "step counts differ") {
		t.Fatalf("Diff of prefix = %q, want a step-count mismatch", d)
	}
}
