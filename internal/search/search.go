// Package search defines the domain-independent exploration contract shared
// by every DSE technique in this repository: a discrete design space, an
// evaluation function returning objective and constraint information, and a
// trace of acquisitions. The Explainable-DSE engine (internal/dse) and all
// black-box baselines (internal/opt) implement the same Optimizer interface
// over this contract, which is what lets the paper's comparisons run on an
// identical substrate (§5).
package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/obs"
)

// Costs is the outcome of evaluating one design point.
type Costs struct {
	// Objective is the value being minimized (whole-workload latency in
	// ms for the accelerator study); +Inf marks unevaluable designs.
	Objective float64
	// Feasible reports that every inequality constraint holds and the
	// design is compatible with its software configuration.
	Feasible bool
	// MeetsAreaPower reports the area/power constraints alone.
	MeetsAreaPower bool
	// BudgetUtil is the §4.6 constraints budget: mean utilization of the
	// constraint thresholds (<1 on every constraint implies feasible).
	BudgetUtil float64
	// Violations counts violated constraints (monomodal-range pruning of
	// §4.6 compares candidate violation counts against the solution's).
	Violations int
	// Err, when non-empty, explains why the design could not be evaluated
	// normally (a recovered panic, an injected fault, a watchdog timeout,
	// or cancellation). Errored designs are always infeasible.
	Err string
	// Raw carries the domain evaluation payload (e.g. *eval.Result) for
	// domain-specific bottleneck models. It may be a Deferred thunk when
	// the costs were replayed from a checkpoint journal; consumers that
	// need the payload must resolve it through ResolveRaw.
	Raw any
}

// Deferred is a lazily rematerialized evaluation payload: checkpoint replay
// restores a design's Costs without its domain payload (the journal stores
// only the scalar outcome), so Raw carries a thunk that recomputes the
// payload on demand. Resolution is deterministic — the evaluator memoizes by
// design key — and never charges the unique-design budget (replayed keys are
// pre-seeded as already evaluated).
type Deferred func() any

// ResolveRaw materializes a Costs.Raw payload, invoking a Deferred thunk if
// one is present and returning any other payload unchanged.
func ResolveRaw(raw any) any {
	if d, ok := raw.(Deferred); ok {
		return d()
	}
	return raw
}

// Prediction is one bottleneck-mitigating parameter prediction produced by
// a domain bottleneck model (§4.3c): the design-space parameter to change,
// the predicted physical value, the direction (grow for objective
// mitigation, shrink for constraint mitigation), and a human-readable
// explanation of why.
type Prediction struct {
	// Param indexes the design-space parameter to change.
	Param int
	// Value is the predicted physical value for that parameter.
	Value int
	// Reduce marks a shrinking prediction (constraint mitigation).
	Reduce bool
	// Why is the human-readable justification.
	Why string
	// Factor names the bottleneck factor (or violated constraint) that
	// drove the prediction — provenance for the structured trace.
	Factor string
	// Contribution is the driving factor's fractional share of its
	// sub-function's cost (0..1; zero when not attributed).
	Contribution float64
	// Scaling is the improvement factor the prediction aims for.
	Scaling float64
	// Rule identifies the mitigation subroutine that produced the
	// prediction (e.g. "scale-pes", "dma-bandwidth").
	Rule string
}

// Problem is a constrained minimization over a discrete space (§A.1).
type Problem struct {
	Space *arch.Space
	// Evaluate returns the costs of a point. Implementations are
	// expected to memoize; the iteration budget counts unique points.
	// When Workers > 1 it must also be safe for concurrent use
	// (EvaluateBatch calls it from the worker pool).
	Evaluate func(arch.Point) Costs
	// Budget is the maximum number of unique design evaluations.
	Budget int
	// Initial is the starting point (nil = Space.Initial()).
	Initial arch.Point
	// Workers bounds EvaluateBatch parallelism. 0 or 1 evaluates
	// serially on the calling goroutine, which is always safe; anything
	// higher requires a concurrency-safe Evaluate (eval.Evaluator
	// qualifies: its memoization is lock-protected and in-flight
	// evaluations of the same point are deduplicated).
	Workers int
	// MaxSteps caps the total acquisitions recorded on a trace,
	// including memoized repeats, which no longer consume budget. It
	// guarantees termination for optimizers that keep revisiting
	// already-evaluated points after converging (0 = 10x Budget).
	MaxSteps int
	// Stats, when non-nil, accumulates EvaluateBatch counters for this
	// problem so campaign reports can measure the batch layer. It is a
	// pointer so Problem values stay trivially copyable.
	Stats *BatchStats
	// Ctx, when non-nil, cancels the exploration: EvaluateBatch stops
	// dispatching work once the context is done, and every optimizer
	// checks Cancelled at its batch boundaries and returns its partial
	// trace. A nil Ctx means the run cannot be cancelled.
	Ctx context.Context
	// Events, when non-nil, receives the structured explanation events an
	// optimizer emits while exploring (see internal/obs). Events are
	// derived from — and never feed back into — the acquisition sequence,
	// so attaching a sink cannot change a trace's Fingerprint.
	Events obs.Sink
	// Prepare, when non-nil, runs once at the top of every EvaluateBatch
	// call, before any point is dispatched to Evaluate. It is a
	// result-neutral warming hook: implementations may only prefill caches
	// (the distributed fleet installs remotely computed, content-addressed
	// sub-results here) — evaluation correctness must never depend on it
	// running, partially running, or being skipped, so batch results are
	// bit-identical with or without it.
	Prepare func(ctx context.Context, pts []arch.Point)
	// Tracer, when non-nil, makes EvaluateBatch open a batch span (and a
	// nested replay span) around every call, parented to TraceSpan, and
	// propagate the batch span to Prepare via the context — the campaign
	// half of the distributed tracing spine. Like Events, spans are
	// derived observations only; a nil Tracer is the (free) disabled
	// state.
	Tracer *obs.Tracer
	// TraceSpan is the span every batch span parents to — normally the
	// run's campaign root span. Zero makes batch spans roots.
	TraceSpan obs.SpanContext
}

// Context returns the problem's cancellation context (context.Background
// when none was attached).
func (p *Problem) Context() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

// Cancelled reports whether the problem's context has been cancelled.
// Optimizers consult it at batch boundaries: a cancelled batch is never
// recorded on the trace, so an interrupted run's trace is a clean prefix of
// the uninterrupted acquisition sequence at batch granularity.
func (p *Problem) Cancelled() bool {
	return p.Ctx != nil && p.Ctx.Err() != nil
}

// Validate checks the problem's externally supplied parts once at
// construction time: a non-nil Initial point must be well-formed for the
// space. Optimizers may assume a validated problem and construct all further
// points through Space methods, which keeps the hot path free of arity
// checks (malformed points reaching Space.Decode degrade to an error, not a
// panic).
func (p *Problem) Validate() error {
	if p.Space == nil {
		return fmt.Errorf("search: problem has no space")
	}
	if p.Initial != nil {
		if err := p.Space.CheckPoint(p.Initial); err != nil {
			return fmt.Errorf("search: initial point: %w", err)
		}
	}
	return nil
}

// maxSteps resolves the acquisition cap (see Problem.MaxSteps).
func (p *Problem) maxSteps() int {
	if p.MaxSteps > 0 {
		return p.MaxSteps
	}
	return 10 * p.Budget
}

// Start returns the problem's initial point.
func (p *Problem) Start() arch.Point {
	if p.Initial != nil {
		return p.Initial.Clone()
	}
	return p.Space.Initial()
}

// Step records one acquisition of a trace.
type Step struct {
	Iter      int
	Point     arch.Point
	Costs     Costs
	BestSoFar float64 // best feasible objective after this step (+Inf if none yet)
}

// Trace is the full record of one exploration run.
type Trace struct {
	Name  string
	Steps []Step
	// Best is the best feasible point found (nil if none).
	Best      arch.Point
	BestCosts Costs
	// Evaluations is the number of unique design evaluations consumed —
	// the budget currency of the paper (§4.6, §5). Acquiring a point the
	// trace has already seen is free: the evaluator memoizes it, so no
	// new design evaluation happens.
	Evaluations int
	// RepeatSteps counts acquisitions of already-seen points. They are
	// recorded in Steps (the acquisition sequence is complete) but are
	// not charged against the budget, matching eval.Evaluator's notion
	// of unique design evaluations.
	RepeatSteps int
	Elapsed     time.Duration

	// seen tracks which point keys have been charged against the budget.
	seen map[string]bool
}

// Record appends an acquisition and maintains the best feasible solution.
// Only the first acquisition of a point consumes budget; re-acquiring a
// memoized point increments RepeatSteps instead. It returns true while the
// budget (and the repeat-inclusive step cap) allows further acquisitions.
func (t *Trace) Record(p *Problem, pt arch.Point, c Costs) bool {
	improved := c.Feasible && (t.Best == nil || c.Objective < t.BestCosts.Objective)
	if improved {
		t.Best = pt.Clone()
		t.BestCosts = c
	}
	best := math.Inf(1)
	if t.Best != nil {
		best = t.BestCosts.Objective
	}
	t.Steps = append(t.Steps, Step{
		Iter:      len(t.Steps),
		Point:     pt.Clone(),
		Costs:     c,
		BestSoFar: best,
	})
	if t.seen == nil {
		t.seen = make(map[string]bool)
	}
	if key := pt.Key(); t.seen[key] {
		t.RepeatSteps++
	} else {
		t.seen[key] = true
		t.Evaluations++
	}
	return t.Evaluations < p.Budget && len(t.Steps) < p.maxSteps()
}

// Seen reports whether a point has already been charged against this
// trace's budget (i.e. it was acquired before and is memoized).
func (t *Trace) Seen(pt arch.Point) bool { return t.seen[pt.Key()] }

// RecordBatch records a batch of evaluations in deterministic candidate
// order, stopping as soon as the budget is exhausted (later entries are
// dropped, exactly as a serial loop would never have reached them). It
// returns true while the budget allows further acquisitions.
func (t *Trace) RecordBatch(p *Problem, pts []arch.Point, costs []Costs) bool {
	for i := range pts {
		if !t.Record(p, pts[i], costs[i]) {
			return false
		}
	}
	return true
}

// EvalsToReach returns the number of unique design evaluations spent when
// the trace first acquired a feasible design with objective <= target, or
// 0 if it never did. This is the paper's iteration-count currency for
// convergence comparisons (§5): with repeats budget-free, every optimizer
// that runs to completion consumes the same total budget, so convergence
// speed must be read from where a quality level was reached, not from the
// total spent.
func (t *Trace) EvalsToReach(target float64) int {
	seen := make(map[string]bool, len(t.Steps))
	unique := 0
	for _, s := range t.Steps {
		if key := s.Point.Key(); !seen[key] {
			seen[key] = true
			unique++
		}
		if s.Costs.Feasible && s.Costs.Objective <= target {
			return unique
		}
	}
	return 0
}

// EvalsToBest returns the number of unique design evaluations spent when
// the final best objective was first reached (0 if no feasible design was
// found).
func (t *Trace) EvalsToBest() int {
	if t.Best == nil {
		return 0
	}
	return t.EvalsToReach(t.BestCosts.Objective)
}

// BestObjective returns the best feasible objective, or +Inf.
func (t *Trace) BestObjective() float64 {
	if t.Best == nil {
		return math.Inf(1)
	}
	return t.BestCosts.Objective
}

// FeasibleFraction returns the fraction of acquisitions that were feasible.
func (t *Trace) FeasibleFraction() float64 {
	if len(t.Steps) == 0 {
		return 0
	}
	n := 0
	for _, s := range t.Steps {
		if s.Costs.Feasible {
			n++
		}
	}
	return float64(n) / float64(len(t.Steps))
}

// AreaPowerFraction returns the fraction of acquisitions meeting area and
// power constraints (the Fig. 12 notion without throughput).
func (t *Trace) AreaPowerFraction() float64 {
	if len(t.Steps) == 0 {
		return 0
	}
	n := 0
	for _, s := range t.Steps {
		if s.Costs.MeetsAreaPower {
			n++
		}
	}
	return float64(n) / float64(len(t.Steps))
}

// MeanStepReduction returns the geometric-mean factor by which the running
// best feasible objective shrinks per acquisition that updates it — the
// Table 3 "objective reduced at every attempt" metric.
func (t *Trace) MeanStepReduction() float64 {
	prev := math.Inf(1)
	logSum, n := 0.0, 0
	for _, s := range t.Steps {
		if math.IsInf(s.BestSoFar, 1) {
			continue
		}
		if !math.IsInf(prev, 1) && s.BestSoFar < prev {
			logSum += math.Log(prev / s.BestSoFar)
			n++
		}
		prev = s.BestSoFar
	}
	if n == 0 {
		return 1
	}
	return math.Exp(logSum / float64(n))
}

// ReductionPerAttempt returns the average percentage by which the running
// best feasible objective shrinks per acquisition, geometric-mean over all
// acquisitions after the first feasible one (non-improving acquisitions
// count as zero reduction) — the Table 3 metric.
func (t *Trace) ReductionPerAttempt() float64 {
	prev := math.Inf(1)
	logSum, n := 0.0, 0
	for _, s := range t.Steps {
		if math.IsInf(s.BestSoFar, 1) {
			continue
		}
		if !math.IsInf(prev, 1) {
			n++
			if s.BestSoFar < prev {
				logSum += math.Log(prev / s.BestSoFar)
			}
		}
		prev = s.BestSoFar
	}
	if n == 0 {
		return 0
	}
	return (math.Exp(logSum/float64(n)) - 1) * 100
}

// Optimizer is the interface every DSE technique implements.
type Optimizer interface {
	// Name identifies the technique in reports.
	Name() string
	// Run explores the problem until its budget is exhausted or the
	// technique converges, returning the acquisition trace.
	Run(p *Problem, rng *rand.Rand) *Trace
}
