package search

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xdse/internal/arch"
	"xdse/internal/obs"
)

// BatchStats instruments the batched evaluation layer with lightweight
// counters. A single BatchStats may be shared by concurrent EvaluateBatch
// calls; all updates are atomic. Attach one to Problem.Stats to measure a
// run (eval.Evaluator.Problem does this automatically).
type BatchStats struct {
	batches   int64
	points    int64
	wallNs    int64
	panics    int64
	cancelled int64

	// Hist, when non-nil, additionally receives every batch's wall time
	// as a latency observation (seconds). eval attaches the registry's
	// search_batch_seconds histogram here.
	Hist *obs.Histogram
}

// add accumulates one batch; a nil receiver (no stats attached) is a no-op.
func (s *BatchStats) add(points int, wall time.Duration) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.batches, 1)
	atomic.AddInt64(&s.points, int64(points))
	atomic.AddInt64(&s.wallNs, int64(wall))
	s.Hist.ObserveDuration(wall)
}

// recovered counts one worker panic converted into an errored evaluation;
// nil receivers are a no-op.
func (s *BatchStats) recovered() {
	if s != nil {
		atomic.AddInt64(&s.panics, 1)
	}
}

// skipped counts one point left unevaluated because the batch was cancelled;
// nil receivers are a no-op.
func (s *BatchStats) skipped() {
	if s != nil {
		atomic.AddInt64(&s.cancelled, 1)
	}
}

// BatchReport is a point-in-time snapshot of BatchStats.
type BatchReport struct {
	// Batches is the number of EvaluateBatch calls.
	Batches int64
	// Points is the total number of points submitted across batches.
	Points int64
	// Wall is the cumulative wall time spent inside EvaluateBatch. Each
	// batch contributes its elapsed time once, regardless of worker
	// count, so this is directly comparable between serial and parallel
	// runs of the same exploration.
	Wall time.Duration
	// PanicsRecovered counts worker panics contained by EvaluateBatch and
	// converted into errored, infeasible Costs. This is the batch layer's
	// backstop for Problems whose Evaluate does not recover on its own
	// (eval.Evaluator recovers internally and counts in eval.Stats).
	PanicsRecovered int64
	// CancelledPoints counts points left unevaluated because the
	// problem's context was cancelled mid-batch.
	CancelledPoints int64
}

// Report snapshots the counters. Safe to call concurrently with updates;
// nil receivers report zeroes so callers need not guard unset stats.
func (s *BatchStats) Report() BatchReport {
	if s == nil {
		return BatchReport{}
	}
	return BatchReport{
		Batches:         atomic.LoadInt64(&s.batches),
		Points:          atomic.LoadInt64(&s.points),
		Wall:            time.Duration(atomic.LoadInt64(&s.wallNs)),
		PanicsRecovered: atomic.LoadInt64(&s.panics),
		CancelledPoints: atomic.LoadInt64(&s.cancelled),
	}
}

// largeBudgetUtil stands in for the constraints budget of designs that never
// produced one (panicked, errored, or cancelled evaluations): large enough
// to dominate any real utilization, finite so downstream comparisons and
// penalty formulas stay ordered.
const largeBudgetUtil = 1e6

// ErroredCosts returns the infeasible Costs recorded for a design whose
// evaluation failed outright (recovered panic, injected fault, watchdog
// timeout): infinite objective, a large finite constraints budget, and the
// failure reason in Err.
func ErroredCosts(reason string) Costs {
	return Costs{
		Objective:  math.Inf(1),
		BudgetUtil: largeBudgetUtil,
		Violations: 1,
		Err:        reason,
	}
}

// safeEvaluate runs p.Evaluate with panic containment: a panicking
// evaluation is recorded as infeasible-with-error instead of tearing down
// the exploration (one bad design must never kill a campaign).
func (p *Problem) safeEvaluate(pt arch.Point) (c Costs) {
	defer func() {
		if r := recover(); r != nil {
			p.Stats.recovered()
			c = ErroredCosts(fmt.Sprintf("panic during evaluation: %v", r))
		}
	}()
	return p.Evaluate(pt)
}

// EvaluateBatch evaluates every point through the problem's bounded worker
// pool and returns the costs in input order.
//
// Determinism contract: results are positionally identical to a serial
// loop calling p.Evaluate on each point in order, because (a) workers only
// compute — which point lands at which index is fixed by the input slice —
// and (b) Evaluate itself must be deterministic per point (the evaluator's
// mapping-search RNG is seeded per layer, never shared across points).
// Callers keep all randomness on their own goroutine: generate the
// candidate batch first, then evaluate, then consume results in order.
//
// With Workers <= 1 (the zero value) the batch is evaluated serially on
// the calling goroutine, so problems whose Evaluate is not concurrency-safe
// remain correct by default.
//
// Resilience contract: a panic inside one point's evaluation is contained —
// that point's Costs come back infeasible with the panic text in Err, and
// the rest of the batch completes normally. When the problem's context is
// cancelled, points not yet dispatched are skipped and returned as errored
// Costs; callers must consult Cancelled before recording the batch, so a
// cancelled batch never reaches the trace.
func (p *Problem) EvaluateBatch(pts []arch.Point) []Costs {
	start := time.Now()
	out := make([]Costs, len(pts))
	ctx := p.Context()
	bsp := p.Tracer.StartChild(p.TraceSpan, obs.SpanBatch, "")
	bsp.Points = len(pts)
	if p.Prepare != nil && len(pts) > 0 && ctx.Err() == nil {
		// The warming hook (see Problem.Prepare) runs before dispatch; it
		// may only prefill caches, so the results below are identical
		// whether it completed, failed, or was skipped. It receives the
		// batch span through the context so fleet dispatch spans nest
		// under it.
		p.Prepare(obs.ContextWithSpan(ctx, p.Tracer, bsp.Context()), pts)
	}
	rsp := p.Tracer.StartChild(bsp.Context(), obs.SpanReplay, "")
	rsp.Points = len(pts)
	done := ctx.Done()
	one := func(i int) {
		if done != nil {
			select {
			case <-done:
				p.Stats.skipped()
				out[i] = ErroredCosts("evaluation cancelled: " + ctx.Err().Error())
				return
			default:
			}
		}
		out[i] = p.safeEvaluate(pts[i])
	}
	workers := p.Workers
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers <= 1 {
		for i := range pts {
			one(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					one(i)
				}
			}()
		}
		for i := range pts {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if ctx.Err() == nil {
		// A cancelled batch suppresses both span ends — mirroring the
		// campaign span in exp.RunOne — so a killed run's trace stays a
		// strict event-for-event prefix of an uninterrupted run's.
		rsp.End()
	}
	p.Stats.add(len(pts), time.Since(start))
	if ctx.Err() == nil {
		bsp.End()
	}
	return out
}
