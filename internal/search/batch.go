package search

import (
	"sync"
	"sync/atomic"
	"time"

	"xdse/internal/arch"
)

// BatchStats instruments the batched evaluation layer with lightweight
// counters. A single BatchStats may be shared by concurrent EvaluateBatch
// calls; all updates are atomic. Attach one to Problem.Stats to measure a
// run (eval.Evaluator.Problem does this automatically).
type BatchStats struct {
	batches int64
	points  int64
	wallNs  int64
}

// add accumulates one batch; a nil receiver (no stats attached) is a no-op.
func (s *BatchStats) add(points int, wall time.Duration) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.batches, 1)
	atomic.AddInt64(&s.points, int64(points))
	atomic.AddInt64(&s.wallNs, int64(wall))
}

// BatchReport is a point-in-time snapshot of BatchStats.
type BatchReport struct {
	// Batches is the number of EvaluateBatch calls.
	Batches int64
	// Points is the total number of points submitted across batches.
	Points int64
	// Wall is the cumulative wall time spent inside EvaluateBatch. Each
	// batch contributes its elapsed time once, regardless of worker
	// count, so this is directly comparable between serial and parallel
	// runs of the same exploration.
	Wall time.Duration
}

// Report snapshots the counters. Safe to call concurrently with updates;
// nil receivers report zeroes so callers need not guard unset stats.
func (s *BatchStats) Report() BatchReport {
	if s == nil {
		return BatchReport{}
	}
	return BatchReport{
		Batches: atomic.LoadInt64(&s.batches),
		Points:  atomic.LoadInt64(&s.points),
		Wall:    time.Duration(atomic.LoadInt64(&s.wallNs)),
	}
}

// EvaluateBatch evaluates every point through the problem's bounded worker
// pool and returns the costs in input order.
//
// Determinism contract: results are positionally identical to a serial
// loop calling p.Evaluate on each point in order, because (a) workers only
// compute — which point lands at which index is fixed by the input slice —
// and (b) Evaluate itself must be deterministic per point (the evaluator's
// mapping-search RNG is seeded per layer, never shared across points).
// Callers keep all randomness on their own goroutine: generate the
// candidate batch first, then evaluate, then consume results in order.
//
// With Workers <= 1 (the zero value) the batch is evaluated serially on
// the calling goroutine, so problems whose Evaluate is not concurrency-safe
// remain correct by default.
func (p *Problem) EvaluateBatch(pts []arch.Point) []Costs {
	start := time.Now()
	out := make([]Costs, len(pts))
	workers := p.Workers
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers <= 1 {
		for i := range pts {
			out[i] = p.Evaluate(pts[i])
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i] = p.Evaluate(pts[i])
				}
			}()
		}
		for i := range pts {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	p.Stats.add(len(pts), time.Since(start))
	return out
}
