package search

import (
	"encoding/csv"
	"io"
	"math"
	"strconv"
)

// WriteCSV dumps a trace as CSV — one acquisition per row with the
// objective, feasibility, constraint budget, and the running best — the raw
// series behind the paper's Fig. 11-style convergence plots.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iter", "objective", "feasible", "budget_util", "best_so_far"}); err != nil {
		return err
	}
	f := func(v float64) string {
		if math.IsInf(v, 1) {
			return "inf"
		}
		return strconv.FormatFloat(v, 'g', 8, 64)
	}
	for _, s := range t.Steps {
		row := []string{
			strconv.Itoa(s.Iter),
			f(s.Costs.Objective),
			strconv.FormatBool(s.Costs.Feasible),
			f(s.Costs.BudgetUtil),
			f(s.BestSoFar),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
