package search

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
)

// Fingerprint returns a stable digest of everything a trace asserts about
// an exploration: the full acquisition sequence (point, objective bits,
// feasibility, constraint budget bits, running best bits, error reason),
// the best solution, and the unique-design budget accounting. Wall-clock
// fields and domain payloads (Raw) are excluded, so two runs are
// fingerprint-equal exactly when they are bit-identical in every
// reproducibility-relevant respect — the equality the kill-and-resume
// contract promises.
func (t *Trace) Fingerprint() string {
	h := sha256.New()
	f := func(v float64) string {
		// Hash the IEEE bits: bit-identity is the contract, and the
		// bits distinguish signed zeroes and NaN payloads that a
		// decimal rendering would conflate.
		return fmt.Sprintf("%016x", math.Float64bits(v))
	}
	fmt.Fprintf(h, "name=%s evals=%d repeats=%d\n", t.Name, t.Evaluations, t.RepeatSteps)
	for _, s := range t.Steps {
		fmt.Fprintf(h, "%d|%s|%s|%v|%s|%d|%s|%s\n",
			s.Iter, s.Point.Key(), f(s.Costs.Objective), s.Costs.Feasible,
			f(s.Costs.BudgetUtil), s.Costs.Violations, s.Costs.Err, f(s.BestSoFar))
	}
	if t.Best != nil {
		fmt.Fprintf(h, "best=%s obj=%s\n", t.Best.Key(), f(t.BestCosts.Objective))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Diff renders the first divergence between two traces for test failure
// messages: the step index plus both sides' renderings, or a summary-level
// mismatch (length, budget accounting, best solution). It returns the empty
// string when the traces are fingerprint-equal.
func (t *Trace) Diff(o *Trace) string {
	render := func(s Step) string {
		return fmt.Sprintf("iter=%d pt=%s obj=%x feas=%v budget=%x err=%q best=%x",
			s.Iter, s.Point.Key(), math.Float64bits(s.Costs.Objective), s.Costs.Feasible,
			math.Float64bits(s.Costs.BudgetUtil), s.Costs.Err, math.Float64bits(s.BestSoFar))
	}
	var b strings.Builder
	n := len(t.Steps)
	if len(o.Steps) < n {
		n = len(o.Steps)
	}
	for i := 0; i < n; i++ {
		if a, c := render(t.Steps[i]), render(o.Steps[i]); a != c {
			fmt.Fprintf(&b, "step %d:\n  a: %s\n  b: %s\n", i, a, c)
			return b.String()
		}
	}
	if len(t.Steps) != len(o.Steps) {
		fmt.Fprintf(&b, "step counts differ: %d vs %d\n", len(t.Steps), len(o.Steps))
	}
	if t.Evaluations != o.Evaluations || t.RepeatSteps != o.RepeatSteps {
		fmt.Fprintf(&b, "budget accounting differs: evals %d vs %d, repeats %d vs %d\n",
			t.Evaluations, o.Evaluations, t.RepeatSteps, o.RepeatSteps)
	}
	aBest, bBest := "", ""
	if t.Best != nil {
		aBest = t.Best.Key()
	}
	if o.Best != nil {
		bBest = o.Best.Key()
	}
	if aBest != bBest {
		fmt.Fprintf(&b, "best points differ: %q vs %q\n", aBest, bBest)
	}
	return b.String()
}
