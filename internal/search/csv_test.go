package search

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	p := toyProblem(5)
	tr := &Trace{}
	pt := p.Space.Initial()
	tr.Record(p, pt, Costs{Objective: 10, Feasible: false, BudgetUtil: 2})
	tr.Record(p, pt, Costs{Objective: 5, Feasible: true, BudgetUtil: 0.5})

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "iter,objective,feasible") {
		t.Fatalf("header = %q", lines[0])
	}
	// The infeasible first row has best_so_far = inf.
	if !strings.HasSuffix(lines[1], "inf") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "true") || !strings.HasSuffix(lines[2], "5") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}
