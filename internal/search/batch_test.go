package search

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"xdse/internal/arch"
)

// sleepProblem simulates a latency-bound evaluation (e.g. a mapping search
// shelling out per layer): each point costs `delay` of pure wall time. The
// evaluation is a pure function of the point, so it is trivially
// concurrency-safe.
func sleepProblem(budget int, delay time.Duration) *Problem {
	return &Problem{
		Space:  arch.EdgeSpace(),
		Budget: budget,
		Evaluate: func(pt arch.Point) Costs {
			time.Sleep(delay)
			return Costs{Objective: float64(pt[0]*100 + pt[1]), Feasible: true, BudgetUtil: 0.5}
		},
	}
}

func randomPoints(p *Problem, n int, seed int64) []arch.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]arch.Point, n)
	for i := range pts {
		pts[i] = p.Space.Random(rng)
	}
	return pts
}

func TestEvaluateBatchMatchesSerialOrder(t *testing.T) {
	p := toyProblem(100)
	pts := randomPoints(p, 37, 1)
	want := make([]Costs, len(pts))
	for i, pt := range pts {
		want[i] = p.Evaluate(pt)
	}
	for _, workers := range []int{0, 1, 2, 8, 64} {
		p.Workers = workers
		got := p.EvaluateBatch(pts)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results for %d points", workers, len(got), len(pts))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestEvaluateBatchStats(t *testing.T) {
	p := toyProblem(100)
	p.Workers = 4
	p.Stats = &BatchStats{}
	p.EvaluateBatch(randomPoints(p, 5, 2))
	p.EvaluateBatch(randomPoints(p, 3, 3))
	r := p.Stats.Report()
	if r.Batches != 2 || r.Points != 8 {
		t.Fatalf("report = %+v, want 2 batches / 8 points", r)
	}
	var nilStats *BatchStats
	if got := nilStats.Report(); got != (BatchReport{}) {
		t.Fatalf("nil stats report = %+v", got)
	}
}

func TestEvaluateBatchEmpty(t *testing.T) {
	p := toyProblem(10)
	p.Workers = 4
	if got := p.EvaluateBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestEvaluateBatchParallelSpeedup is the wall-clock acceptance check for
// the batch layer: on a latency-bound evaluation, a pooled batch must beat
// a serial one by at least 2x. Sleeping (rather than burning CPU) keeps the
// check meaningful on single-core CI machines.
func TestEvaluateBatchParallelSpeedup(t *testing.T) {
	const delay = 5 * time.Millisecond
	p := sleepProblem(100, delay)
	pts := randomPoints(p, 16, 4)

	p.Workers = 1
	serialStart := time.Now()
	p.EvaluateBatch(pts)
	serial := time.Since(serialStart)

	p.Workers = 8
	parStart := time.Now()
	p.EvaluateBatch(pts)
	parallel := time.Since(parStart)

	if parallel > serial/2 {
		t.Fatalf("parallel batch took %v, want at least 2x under serial %v", parallel, serial)
	}
}

// BenchmarkEvaluateBatch compares serial and pooled evaluation of one
// candidate batch with a simulated per-point evaluation latency.
func BenchmarkEvaluateBatch(b *testing.B) {
	const delay = 200 * time.Microsecond
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := sleepProblem(1<<30, delay)
			p.Workers = workers
			pts := randomPoints(p, 16, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.EvaluateBatch(pts)
			}
		})
	}
}
