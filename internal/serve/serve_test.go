package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"xdse/internal/eval"
	"xdse/internal/exp"
	"xdse/internal/obs"
	"xdse/internal/workload"
)

// smallSpec is the seconds-scale job the service tests share: single worker
// so fault ordinals are deterministic, reduced budgets so a job finishes in
// about a second.
func smallSpec(technique string) JobSpec {
	return JobSpec{
		Technique: technique,
		Model:     "ResNet18",
		Budget:    12,
		MapTrials: 60,
		Seed:      1,
		Workers:   1,
	}
}

// referenceRun computes the fault-free local fingerprint the served job must
// reproduce: same knobs the daemon's jobConfig applies, no service in the
// loop.
func referenceRun(t *testing.T, spec JobSpec) exp.Run {
	t.Helper()
	tech, ok := exp.TechniqueByName(spec.Technique)
	if !ok {
		t.Fatalf("unknown technique %q", spec.Technique)
	}
	cfg := exp.Default()
	cfg.Out = io.Discard
	cfg.Seed = spec.Seed
	cfg.MapTrials = spec.MapTrials
	cfg.Workers = spec.Workers
	run := exp.RunOne(context.Background(), cfg, tech, workload.ByName(spec.Model), spec.Budget)
	if run.Err != "" || run.Interrupted {
		t.Fatalf("reference run failed: %+v", run.Err)
	}
	return run
}

// testServer boots a Server over a temp dir with its HTTP API mounted on
// httptest, returning the server, the base URL, and a cleanup-registered
// drain.
func testServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Warnf == nil {
		opts.Warnf = t.Logf
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.StartWorkers()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts.URL
}

// postJob submits a spec and returns the HTTP response with its decoded body.
func postJob(t *testing.T, base string, spec JobSpec) (*http.Response, jobFile) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jf jobFile
	data, _ := io.ReadAll(resp.Body)
	json.Unmarshal(data, &jf) //nolint:errcheck // error bodies are not jobFiles
	return resp, jf
}

// getJob fetches one job's snapshot.
func getJob(t *testing.T, base, id string) jobFile {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", id, resp.StatusCode)
	}
	var jf jobFile
	if err := json.NewDecoder(resp.Body).Decode(&jf); err != nil {
		t.Fatal(err)
	}
	return jf
}

// waitStatus polls a job until it reaches the wanted status, failing on any
// other terminal status or on timeout.
func waitStatus(t *testing.T, base, id string, want JobStatus) jobFile {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		jf := getJob(t, base, id)
		if jf.Status == want {
			return jf
		}
		if jf.Status.terminal() {
			t.Fatalf("job %s reached %q (reason %q), want %q", id, jf.Status, jf.Reason, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return jobFile{}
}

// TestServeJobLifecycle: submit over HTTP, run to completion, and check the
// result matches a local fault-free run bit-for-bit — the service adds
// queueing and persistence, never different numbers.
func TestServeJobLifecycle(t *testing.T) {
	spec := smallSpec("ExplainableDSE-FixDF")
	ref := referenceRun(t, spec)

	_, base := testServer(t, Options{})
	resp, jf := postJob(t, base, spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+jf.ID {
		t.Errorf("Location = %q", loc)
	}

	done := waitStatus(t, base, jf.ID, StatusDone)
	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	if done.Result.Fingerprint != ref.Trace.Fingerprint() {
		t.Errorf("served fingerprint %s != local reference %s", done.Result.Fingerprint, ref.Trace.Fingerprint())
	}
	if done.Result.Evaluations != ref.Evaluations {
		t.Errorf("served Evaluations = %d, reference %d", done.Result.Evaluations, ref.Evaluations)
	}
	if wantFeasible := ref.Trace.Best != nil; done.Result.Feasible != wantFeasible {
		t.Errorf("served Feasible = %v, reference %v", done.Result.Feasible, wantFeasible)
	}

	// The listing includes the job.
	lresp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []jobFile
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != jf.ID {
		t.Errorf("list = %+v", list)
	}
}

// TestServeEndpointsHealthAndMetrics: liveness and readiness answer, and
// /metrics serves a self-consistent Prometheus dump holding both service
// counters and the completed run's evaluator counters.
func TestServeEndpointsHealthAndMetrics(t *testing.T) {
	_, base := testServer(t, Options{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}

	_, jf := postJob(t, base, smallSpec("SimulatedAnnealing-FixDF"))
	waitStatus(t, base, jf.ID, StatusDone)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", resp.StatusCode, data)
	}
	dump := string(data)
	if err := obs.ValidatePrometheus(dump); err != nil {
		t.Errorf("metrics dump malformed: %v", err)
	}
	for _, want := range []string{
		"serve_jobs_submitted_total 1",
		"serve_jobs_completed_total 1",
		"eval_design_evaluations_total",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestServeSubmitValidation: malformed and invalid specs are rejected with
// 400 before touching the queue.
func TestServeSubmitValidation(t *testing.T) {
	_, base := testServer(t, Options{})
	cases := []struct {
		name string
		body string
	}{
		{"unknown technique", `{"technique":"NoSuchSearch","model":"ResNet18"}`},
		{"unknown model", `{"technique":"ExplainableDSE-FixDF","model":"NoSuchNet"}`},
		{"negative budget", `{"technique":"ExplainableDSE-FixDF","model":"ResNet18","budget":-1}`},
		{"unknown field", `{"technique":"ExplainableDSE-FixDF","model":"ResNet18","bogus":1}`},
		{"not json", `??`},
	}
	for _, tc := range cases {
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if resp, err := http.Get(base + "/jobs/nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown job = %d, want 404", resp.StatusCode)
		}
	}
}

// TestServeLoadShedding: with the only worker pinned inside a job and the
// queue full, a further submission is shed with 429 + Retry-After — and the
// shed request degrades neither the running job nor the queued one, which
// both still finish with reference-identical results.
func TestServeLoadShedding(t *testing.T) {
	spec := smallSpec("ExplainableDSE-FixDF")
	ref := referenceRun(t, spec)

	reached := make(chan string, 4)
	release := make(chan struct{})
	s, base := testServer(t, Options{
		QueueCap:      1,
		MaxConcurrent: 1,
		Faults: func(id string, _ JobSpec) *eval.FaultPolicy {
			return &eval.FaultPolicy{OnEvaluation: func(ord int) {
				if ord == 0 {
					reached <- id
					<-release
				}
			}}
		},
	})
	defer close(release)

	// Job 1 is popped by the lone worker and parks at its first evaluation.
	resp1, j1 := postJob(t, base, spec)
	if resp1.StatusCode != http.StatusCreated {
		t.Fatalf("submit 1 = %d", resp1.StatusCode)
	}
	select {
	case <-reached:
	case <-time.After(30 * time.Second):
		t.Fatal("job 1 never started evaluating")
	}

	// Job 2 fills the queue; job 3 must be shed.
	resp2, j2 := postJob(t, base, spec)
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("submit 2 = %d", resp2.StatusCode)
	}
	resp3, _ := postJob(t, base, spec)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After")
	}
	if got := s.cShed.Value(); got != 1 {
		t.Errorf("serve_jobs_shed_total = %d, want 1", got)
	}

	// Unblock: both admitted jobs must finish unharmed by the shed request.
	release <- struct{}{}
	release <- struct{}{}
	for _, id := range []string{j1.ID, j2.ID} {
		done := waitStatus(t, base, id, StatusDone)
		if done.Result.Fingerprint != ref.Trace.Fingerprint() {
			t.Errorf("job %s fingerprint diverged after shedding", id)
		}
	}
	// The shed job left no directory to resurrect at next boot.
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("job dir holds %d entries after shedding, want 2", len(entries))
	}
}

// TestServeCancel: a running job cancels at its next batch boundary; cancel
// of a finished job is 409, of an unknown one 404.
func TestServeCancel(t *testing.T) {
	reached := make(chan string, 1)
	release := make(chan struct{})
	_, base := testServer(t, Options{
		Faults: func(id string, _ JobSpec) *eval.FaultPolicy {
			return &eval.FaultPolicy{OnEvaluation: func(ord int) {
				if ord == 2 {
					reached <- id
					<-release
				}
			}}
		},
	})
	defer close(release)

	_, jf := postJob(t, base, smallSpec("ExplainableDSE-FixDF"))
	select {
	case <-reached:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached evaluation 2")
	}
	resp, err := http.Post(base+"/jobs/"+jf.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}
	release <- struct{}{}
	got := waitStatus(t, base, jf.ID, StatusCancelled)
	if got.Result != nil {
		t.Errorf("cancelled job carries a result: %+v", got.Result)
	}

	resp, _ = http.Post(base+"/jobs/"+jf.ID+"/cancel", "application/json", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel of terminal job = %d, want 409", resp.StatusCode)
	}
	resp, _ = http.Post(base+"/jobs/nope/cancel", "application/json", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel of unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestServeDeadline: a job whose wall-clock deadline expires stops at the
// next batch boundary with status "deadline", not a hung worker.
func TestServeDeadline(t *testing.T) {
	_, base := testServer(t, Options{
		Faults: func(string, JobSpec) *eval.FaultPolicy {
			// Every first attempt of evaluation 1 sleeps far past the
			// deadline; the sleep is context-cancellable, so the deadline
			// fires promptly.
			return &eval.FaultPolicy{DelayAt: []int{1}, Delay: time.Hour}
		},
	})
	spec := smallSpec("ExplainableDSE-FixDF")
	spec.DeadlineMs = 300
	_, jf := postJob(t, base, spec)
	got := waitStatus(t, base, jf.ID, StatusDeadline)
	if !strings.Contains(got.Reason, "deadline") {
		t.Errorf("reason = %q", got.Reason)
	}
}

// TestServeChaosFingerprintIdentical is the chaos acceptance gate: a job
// served under injected panics, transient errors, and watchdog timeouts —
// all healed by the retry layer — reports the exact fingerprint of a
// fault-free local run.
func TestServeChaosFingerprintIdentical(t *testing.T) {
	spec := smallSpec("ExplainableDSE-FixDF")
	ref := referenceRun(t, spec)

	s, base := testServer(t, Options{
		EvalTimeout: time.Second,
		Retry:       eval.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
		Faults: func(string, JobSpec) *eval.FaultPolicy {
			return &eval.FaultPolicy{
				PanicAt:    []int{1},
				FailFirstN: map[int]int{2: 2},
				SlowFirstN: map[int]int{4: 1},
				Delay:      5 * time.Second,
			}
		},
	})
	_, jf := postJob(t, base, spec)
	done := waitStatus(t, base, jf.ID, StatusDone)
	if done.Result.Fingerprint != ref.Trace.Fingerprint() {
		t.Errorf("chaos-served fingerprint %s != fault-free reference %s",
			done.Result.Fingerprint, ref.Trace.Fingerprint())
	}
	if done.Result.Retries == 0 {
		t.Error("chaos run reports no retries — faults not exercised")
	}
	if done.Result.Evaluations != ref.Evaluations {
		t.Errorf("chaos Evaluations = %d, reference %d", done.Result.Evaluations, ref.Evaluations)
	}

	// The healed faults are visible in the merged metrics.
	var b strings.Builder
	if err := s.mergedMetrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"eval_retries_total", "eval_transient_faults_total", "eval_panics_recovered_total"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobSpecDeadlineResolution covers the deadline fallback chain.
func TestJobSpecDeadlineResolution(t *testing.T) {
	if d := (JobSpec{DeadlineMs: 1500}).deadline(time.Minute); d != 1500*time.Millisecond {
		t.Errorf("explicit deadline = %v", d)
	}
	if d := (JobSpec{}).deadline(time.Minute); d != time.Minute {
		t.Errorf("default deadline = %v", d)
	}
	if d := (JobSpec{}).deadline(0); d != 0 {
		t.Errorf("unbounded deadline = %v", d)
	}
}

// TestOptionsDirRequired: New without a job directory is an error, not a
// daemon scribbling into the working directory.
func TestOptionsDirRequired(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted empty Options.Dir")
	}
}
