package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xdse/internal/obs"
	"xdse/internal/perf"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz          — liveness (200 while the process serves), with
//	                         model_version, queue_depth, and eval_inflight
//	                         so fleet operators can see load and skew at a
//	                         glance
//	GET  /readyz           — readiness (503 while draining); carries
//	                         model_version, the fleet membership handshake
//	GET  /metrics          — Prometheus text dump: service + all runs
//	POST /jobs             — submit a JobSpec; 201, 400 (invalid),
//	                         429 + Retry-After (queue full),
//	                         503 + Retry-After (draining)
//	GET  /jobs             — list all jobs
//	GET  /jobs/{id}        — one job's status and result
//	POST /jobs/{id}/cancel — cancel a queued or running job
//	POST /eval             — evaluate one leased fleet shard and return its
//	                         content-addressed records; 412 on model-version
//	                         skew, 429 + Retry-After when saturated
//	GET  /cache/{id}       — one persistent-cache record by content address,
//	                         ETag'd with the cost-model version (304 on
//	                         If-None-Match revalidation)
//
// With Options.Debug, the runtime profiling surface is mounted too:
//
//	GET  /debug/pprof/*    — net/http/pprof (profile, heap, goroutine, ...)
//	GET  /debug/vars       — expvars + the merged metrics registry as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":        "ok",
			"model_version": perf.ModelVersion(),
			"queue_depth":   len(s.queue),
			"eval_inflight": len(s.evalSem),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status":        "draining",
				"model_version": perf.ModelVersion(),
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"status":        "ready",
			"model_version": perf.ModelVersion(),
		})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	// The chaos decorator (inert when unconfigured) sits exactly at the RPC
	// boundary the fleet coordinator talks to, so injected faults exercise
	// the real wire path: aborted connections, injected statuses, and
	// mutated bodies all reach the coordinator as genuine HTTP outcomes.
	mux.Handle("POST /eval", s.chaos.Wrap(http.HandlerFunc(s.handleEval)))
	mux.HandleFunc("GET /cache/{id}", s.handleCacheGet)
	if s.opts.Debug {
		s.mountDebug(mux)
	}
	return mux
}

// handleMetrics serves the merged service+runs registry as Prometheus text,
// self-validated before it leaves the process so a malformed dump is a loud
// 500 here rather than a silent scrape failure downstream.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	if err := s.mergedMetrics().WritePrometheus(&b); err != nil {
		httpError(w, http.StatusInternalServerError, "render metrics: %v", err)
		return
	}
	if err := obs.ValidatePrometheus(b.String()); err != nil {
		httpError(w, http.StatusInternalServerError, "metrics self-validation failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// handleSubmit admits one job, mapping admission failures onto the
// load-shedding contract: full queue → 429 + Retry-After, draining → 503 +
// Retry-After, both with machine-readable bodies so clients can back off.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		// An oversized body is the client exceeding the request cap, not a
		// malformed spec: 413 tells it to shrink the payload, not fix JSON.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, "job spec exceeds %d-byte limit", mbe.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "parse job spec: %v", err)
		return
	}
	if err := spec.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	j, err := s.submit(spec)
	switch {
	case errors.Is(err, errShed):
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		httpError(w, http.StatusTooManyRequests, "job queue full (capacity %d); retry later", s.opts.QueueCap)
		return
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		httpError(w, http.StatusServiceUnavailable, "daemon draining; resubmit to the next instance")
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusCreated, j.snapshot())
}

// handleList serves every known job, boot-recovered history included.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobList()
	out := make([]jobFile, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGet serves one job's current snapshot.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleCancel requests cancellation of a queued or running job; cancelling
// an already-terminal job is a 409 so clients can distinguish "too late"
// from "unknown job".
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if !j.requestCancel() {
		httpError(w, http.StatusConflict, "job %s already %s", j.ID, j.Status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// writeJSON renders v with the proper content type and status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// httpError renders a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders a duration as a Retry-After header value
// (whole seconds, minimum 1).
func retryAfterSeconds(d time.Duration) string {
	sec := int(d.Seconds())
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}
