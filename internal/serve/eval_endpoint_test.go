package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/eval"
	"xdse/internal/evalcache"
	"xdse/internal/fleet"
	"xdse/internal/perf"
)

// evalReq builds a valid shard request over n distinct edge-space points.
func evalReq(n int) fleet.EvalRequest {
	s := arch.EdgeSpace()
	var keys []string
	for i := 0; i < n; i++ {
		pt := s.Initial()
		pt[arch.PPEs] = s.Clamp(arch.PPEs, 1+i)
		keys = append(keys, pt.Key())
	}
	return fleet.EvalRequest{
		Protocol:     fleet.ProtocolVersion,
		Lease:        "test-lease-1",
		ModelVersion: perf.ModelVersion(),
		Model:        "ResNet18",
		Mode:         eval.PrunedMappings.String(),
		MapTrials:    60,
		Seed:         1,
		Points:       keys,
	}
}

// postEval POSTs one shard request and returns the response (body closed by
// the caller).
func postEval(t *testing.T, base string, req fleet.EvalRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestEvalEndpointServesRecords(t *testing.T) {
	_, base := testServer(t, Options{CacheDir: t.TempDir()})
	resp := postEval(t, base, evalReq(2))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("eval status %d: %s", resp.StatusCode, body)
	}
	var out fleet.EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ModelVersion != perf.ModelVersion() {
		t.Fatalf("response model version %q, want %q", out.ModelVersion, perf.ModelVersion())
	}
	if out.Evaluated != 2 {
		t.Fatalf("evaluated %d points, want 2", out.Evaluated)
	}
	if len(out.Records) == 0 {
		t.Fatal("no records returned")
	}
	// Every line must decode as an intact record under our version, and IDs
	// must be unique (the worker dedups).
	seen := map[string]bool{}
	for _, line := range out.Records {
		rec, ver, err := evalcache.DecodeRecord(line)
		if err != nil {
			t.Fatalf("bad record line: %v", err)
		}
		if ver != perf.ModelVersion() {
			t.Fatalf("record version %q, want %q", ver, perf.ModelVersion())
		}
		if id := rec.Key.ID(); seen[id] {
			t.Fatalf("duplicate record %s in response", id)
		} else {
			seen[id] = true
		}
	}
}

func TestEvalEndpointRejections(t *testing.T) {
	_, base := testServer(t, Options{})
	for _, tc := range []struct {
		name   string
		mutate func(*fleet.EvalRequest)
		status int
	}{
		{"version-skew", func(r *fleet.EvalRequest) { r.ModelVersion = "other" }, http.StatusPreconditionFailed},
		{"bad-protocol", func(r *fleet.EvalRequest) { r.Protocol = 999 }, http.StatusBadRequest},
		{"unknown-model", func(r *fleet.EvalRequest) { r.Model = "NoSuchNet" }, http.StatusBadRequest},
		{"unknown-mode", func(r *fleet.EvalRequest) { r.Mode = "psychic-mappings" }, http.StatusBadRequest},
		{"bad-point", func(r *fleet.EvalRequest) { r.Points = []string{"not a point"} }, http.StatusBadRequest},
		{"no-points", func(r *fleet.EvalRequest) { r.Points = nil }, http.StatusBadRequest},
		{"no-trials", func(r *fleet.EvalRequest) { r.MapTrials = 0 }, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := evalReq(1)
			tc.mutate(&req)
			resp := postEval(t, base, req)
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
		})
	}
}

func TestEvalEndpointShedsWhenSaturated(t *testing.T) {
	s, base := testServer(t, Options{EvalConcurrent: 1})
	// Occupy the single slot directly; the next request must shed, not queue.
	s.evalSem <- struct{}{}
	defer func() { <-s.evalSem }()
	resp := postEval(t, base, evalReq(1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated eval status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if s.cEvalShed.Value() == 0 {
		t.Fatal("shed not counted")
	}
}

func TestCacheGetByContentAddress(t *testing.T) {
	_, base := testServer(t, Options{CacheDir: t.TempDir()})
	// Populate the store through a real shard evaluation, then fetch one of
	// its records by content address.
	resp := postEval(t, base, evalReq(1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status %d", resp.StatusCode)
	}
	var out fleet.EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) == 0 {
		t.Fatal("no records to fetch")
	}
	rec, _, err := evalcache.DecodeRecord(out.Records[0])
	if err != nil {
		t.Fatal(err)
	}
	id := rec.Key.ID()

	get, err := http.Get(base + "/cache/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("cache get status %d", get.StatusCode)
	}
	etag := get.Header.Get("ETag")
	if etag != `"`+perf.ModelVersion()+`"` {
		t.Fatalf("ETag %q, want quoted model version", etag)
	}
	line, _ := io.ReadAll(get.Body)
	got, ver, err := evalcache.DecodeRecord(string(line))
	if err != nil {
		t.Fatalf("served record does not decode: %v", err)
	}
	if ver != perf.ModelVersion() || got.Key != rec.Key {
		t.Fatal("served record differs from the one the shard computed")
	}

	// Conditional revalidation: same ETag → 304, no body.
	req, _ := http.NewRequest(http.MethodGet, base+"/cache/"+id, nil)
	req.Header.Set("If-None-Match", etag)
	cond, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", cond.StatusCode)
	}

	// Unknown address → 404.
	miss, err := http.Get(base + "/cache/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	defer miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("miss status %d, want 404", miss.StatusCode)
	}
}

func TestCacheGetWithoutStore(t *testing.T) {
	_, base := testServer(t, Options{})
	resp, err := http.Get(base + "/cache/abc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uncached daemon cache get status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzCarriesFleetFields(t *testing.T) {
	_, base := testServer(t, Options{})
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status       string `json:"status"`
		ModelVersion string `json:"model_version"`
		QueueDepth   *int   `json:"queue_depth"`
		EvalInflight *int   `json:"eval_inflight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.ModelVersion != perf.ModelVersion() {
		t.Fatalf("healthz body %+v", body)
	}
	if body.QueueDepth == nil || body.EvalInflight == nil {
		t.Fatal("healthz missing queue_depth/eval_inflight")
	}

	ready, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer ready.Body.Close()
	var rb struct {
		Status       string `json:"status"`
		ModelVersion string `json:"model_version"`
	}
	if err := json.NewDecoder(ready.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	if rb.Status != "ready" || rb.ModelVersion != perf.ModelVersion() {
		t.Fatalf("readyz body %+v", rb)
	}
}
