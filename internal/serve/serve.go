// Package serve turns the one-shot exploration CLI into a long-running,
// failure-tolerant DSE job service. Campaign jobs are submitted over HTTP,
// admitted into a bounded queue (submissions beyond capacity are shed with
// 429 + Retry-After instead of degrading in-flight work), and executed
// through the exp.RunOne stack under per-job context deadlines and panic
// containment. Every job journals its evaluations via internal/checkpoint,
// so the service stays correct under failure:
//
//   - SIGTERM drains gracefully: readiness flips to 503, in-flight jobs
//     stop at their next batch boundary with their checkpoints flushed,
//     queued jobs stay queued on disk, and the process exits 0.
//   - On boot the daemon rescans its job directory and resumes every
//     non-terminal job; the resumed result is bit-identical to an
//     uninterrupted run's, proven by search.Trace.Fingerprint.
//   - Transient evaluation faults (contained crashes, watchdog timeouts,
//     injected flakes) are healed by eval's deterministic retry layer and
//     never reach a job's memo, journal, or result.
//
// Observability: /healthz (liveness), /readyz (503 while draining), and
// /metrics, which serves the service counters merged with every run's
// evaluator registry as a self-validated Prometheus text dump.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"xdse/internal/eval"
	"xdse/internal/evalcache"
	"xdse/internal/exp"
	"xdse/internal/fleet"
	"xdse/internal/obs"
	"xdse/internal/workload"
)

// Cancellation causes, distinguished by context.Cause so the worker can map
// an interrupted run to the right terminal (or resumable) status.
var (
	errCancelled = errors.New("job cancelled by client")
	errDraining  = errors.New("daemon draining")
	errDeadline  = errors.New("job deadline exceeded")
)

// Options configures a Server. The zero value of every field selects a
// sensible default; only Dir is required.
type Options struct {
	// Dir is the job root directory: one subdirectory per job holding
	// job.json, the run's checkpoint journal, and its CSV trace. Required.
	Dir string
	// QueueCap bounds the admission queue (default 16). Submissions that
	// find it full are shed with 429 + Retry-After.
	QueueCap int
	// MaxConcurrent is the global job concurrency: the number of worker
	// goroutines executing jobs (default 2).
	MaxConcurrent int
	// MaxJobWorkers caps each job's per-evaluation worker pool (default
	// 4); JobSpec.Workers above it is clamped, 0 selects 1 (deterministic).
	MaxJobWorkers int
	// DefaultDeadline bounds jobs that set no deadline of their own
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// RetryAfter is the client back-off hint attached to shed (429) and
	// draining (503) responses (default 2s).
	RetryAfter time.Duration
	// Retry is the evaluation-level transient-fault retry policy applied
	// to every job. The zero value selects eval.DefaultRetry; set
	// MaxAttempts to 1 to disable retries explicitly.
	Retry eval.RetryPolicy
	// EvalTimeout arms each evaluation's watchdog (see eval.Config);
	// timeouts classify transient and are healed by Retry.
	EvalTimeout time.Duration
	// Faults, when non-nil, builds a per-job deterministic fault-injection
	// policy — the chaos hook the resilience tests and the serve-smoke CI
	// job drive. Production deployments leave it nil.
	Faults func(id string, spec JobSpec) *eval.FaultPolicy
	// EvalConcurrent bounds concurrently served fleet shards (POST /eval);
	// requests beyond it are shed with 429 + Retry-After so coordinator
	// leases fail fast instead of expiring in a queue (default 2).
	EvalConcurrent int
	// Chaos, when non-nil (and non-empty), deterministically injects
	// faults into this worker's POST /eval surface — dropped connections,
	// delays, injected statuses, truncated/corrupted response bodies — by
	// request ordinal: the worker half of fleet.ChaosPolicy, driven by the
	// chaos-smoke CI job and resilience tests. Production deployments
	// leave it nil.
	Chaos *fleet.ChaosPolicy
	// ChaosSelf names this worker for Chaos partition matching (Partition
	// entries whose Worker equals it, "", or "*" apply).
	ChaosSelf string
	// CacheDir, when non-empty, opens the cross-run persistent evaluation
	// store (internal/evalcache) there and shares it across every job: a
	// resubmitted or related job answers repeated layer searches from disk
	// with bit-identical results. An unopenable store is reported through
	// Warnf and the daemon runs uncached.
	CacheDir string
	// Trace, when non-nil, receives the daemon's own span events: the
	// worker-side spans of traced /eval shards (also returned to the
	// coordinator in the response) and /cache/{id} serves carrying an
	// obs.TraceHeader. The sink's lifetime belongs to the caller.
	Trace obs.Sink
	// Debug mounts the runtime profiling surface — GET /debug/pprof/* and
	// GET /debug/vars — on Handler. Off by default: profiling endpoints
	// can stall the process (a CPU profile blocks for its duration) and
	// expose internals, so enabling them is an explicit operator decision.
	Debug bool
	// RuntimeSample is the cadence of the runtime sampler folding
	// goroutine/heap/GC readings into /metrics (default 10s; negative
	// disables sampling).
	RuntimeSample time.Duration
	// Warnf receives non-fatal service warnings (default: stderr).
	Warnf func(format string, args ...any)
}

// withDefaults resolves the zero-value fields.
func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.MaxJobWorkers <= 0 {
		o.MaxJobWorkers = 4
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.EvalConcurrent <= 0 {
		o.EvalConcurrent = 2
	}
	if o.Retry == (eval.RetryPolicy{}) {
		o.Retry = eval.DefaultRetry()
	}
	if o.RuntimeSample == 0 {
		o.RuntimeSample = 10 * time.Second
	}
	if o.Warnf == nil {
		o.Warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
		}
	}
	return o
}

// Server is the DSE job daemon: a bounded queue feeding a fixed worker
// pool, a job registry persisted under Options.Dir, and the HTTP surface of
// Handler. Construct with New, serve with Start (or mount Handler on an
// external server and call StartWorkers), and stop with Drain.
type Server struct {
	opts    Options
	reg     *obs.Registry // service-level counters/gauges
	jobsReg *obs.Registry // per-run evaluator registries, merged as runs finish

	cSubmitted, cShed, cCompleted, cFailed     *obs.Counter
	cCancelled, cInterrupted, cDeadlineCount   *obs.Counter
	cRecovered, cResumedRuns                   *obs.Counter
	cEvalShards, cEvalPoints, cEvalRecords     *obs.Counter
	cEvalShed, cCacheServed, cCacheMisses      *obs.Counter
	cCacheRevalid                              *obs.Counter
	gQueue, gRunning, gDraining, gEvalInflight *obs.Gauge
	hJobWait, hEvalWait                        *obs.Histogram

	sampler *obs.RuntimeSampler

	// chaos, when non-nil, injects Options.Chaos faults around POST /eval.
	chaos *fleet.ChaosInjector

	// Fleet-worker state: shard admission semaphore and the bounded pool of
	// per-configuration evaluators behind POST /eval (see eval_endpoint.go).
	evalSem   chan struct{}
	evalMu    sync.Mutex
	evalPool  map[evalPoolKey]*eval.Evaluator
	evalOrder []evalPoolKey

	drainCtx    context.Context // parent of every job context; cancelled by Drain
	drainCancel context.CancelCauseFunc

	cache *evalcache.Store // shared cross-run store (nil when CacheDir unset)

	mu        sync.Mutex
	jobs      map[string]*Job
	seq       int
	running   int
	draining  bool
	recovered []*Job // non-terminal jobs found at boot, enqueued by StartWorkers

	queue   chan *Job
	stop    chan struct{} // closed by Drain to release idle workers
	wg      sync.WaitGroup
	started bool

	ln   net.Listener
	http *http.Server
}

// New builds a Server over a job directory, rescanning it for jobs from a
// previous incarnation: terminal jobs are kept as queryable history, and
// queued, running (the hard-crash signature), or interrupted (the drain
// signature) jobs are reset to queued for resume once workers start.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("serve: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		opts:    opts,
		reg:     reg,
		jobsReg: obs.NewRegistry(),

		cSubmitted:     reg.Counter("serve_jobs_submitted_total"),
		cShed:          reg.Counter("serve_jobs_shed_total"),
		cCompleted:     reg.Counter("serve_jobs_completed_total"),
		cFailed:        reg.Counter("serve_jobs_failed_total"),
		cCancelled:     reg.Counter("serve_jobs_cancelled_total"),
		cInterrupted:   reg.Counter("serve_jobs_interrupted_total"),
		cDeadlineCount: reg.Counter("serve_jobs_deadline_total"),
		cRecovered:     reg.Counter("serve_jobs_recovered_total"),
		cResumedRuns:   reg.Counter("serve_runs_resumed_total"),
		gQueue:         reg.Gauge("serve_queue_depth"),
		gRunning:       reg.Gauge("serve_jobs_running"),
		gDraining:      reg.Gauge("serve_draining"),
		hJobWait:       reg.Histogram("serve_job_queue_wait_seconds", obs.DurationBuckets()),

		jobs:     make(map[string]*Job),
		queue:    make(chan *Job, opts.QueueCap),
		stop:     make(chan struct{}),
		evalSem:  make(chan struct{}, opts.EvalConcurrent),
		evalPool: make(map[evalPoolKey]*eval.Evaluator),
	}
	s.chaos = opts.Chaos.NewInjector(opts.ChaosSelf, reg)
	s.evalEndpointMetrics(reg)
	s.sampler = obs.NewRuntimeSampler(reg, opts.RuntimeSample)
	s.drainCtx, s.drainCancel = context.WithCancelCause(context.Background())
	if opts.CacheDir != "" {
		store, err := evalcache.Open(opts.CacheDir, evalcache.Options{Warnf: opts.Warnf})
		if err != nil {
			opts.Warnf("persistent cache %s unavailable, running uncached: %v", opts.CacheDir, err)
		} else {
			s.cache = store
		}
	}
	if err := s.rescan(); err != nil {
		return nil, err
	}
	return s, nil
}

// rescan loads every job directory under Dir, rebuilding the registry and
// collecting non-terminal jobs for resume.
func (s *Server) rescan() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic resume order
	for _, name := range names {
		dir := filepath.Join(s.opts.Dir, name)
		j, err := loadJob(dir, s.opts.Warnf)
		if err != nil {
			if !os.IsNotExist(err) {
				s.opts.Warnf("skipping %s: %v", dir, err)
			}
			continue
		}
		s.jobs[j.ID] = j
		var n int
		if _, err := fmt.Sscanf(j.ID, "job-%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		if !j.status.terminal() {
			j.setStatus(StatusQueued, "recovered at boot")
			s.recovered = append(s.recovered, j)
			s.cRecovered.Inc()
		}
	}
	return nil
}

// StartWorkers launches the worker pool and re-enqueues jobs recovered at
// boot. It is called by Start; call it directly only when mounting Handler
// on an external HTTP server (tests do this via httptest).
func (s *Server) StartWorkers() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	recovered := s.recovered
	s.recovered = nil
	s.mu.Unlock()

	s.wg.Add(s.opts.MaxConcurrent)
	for i := 0; i < s.opts.MaxConcurrent; i++ {
		go s.worker()
	}
	if s.sampler != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.sampler.Run(s.stop)
		}()
	}
	// Recovered jobs may outnumber the queue cap, so enqueue from a
	// goroutine that a drain can interrupt; workers consume as they go.
	if len(recovered) > 0 {
		go func() {
			for _, j := range recovered {
				j.enqueuedAt = time.Now()
				select {
				case s.queue <- j:
					s.gQueue.Set(float64(len(s.queue)))
				case <-s.stop:
					return
				}
			}
		}()
	}
}

// Start listens on addr, launches the workers, and serves the HTTP API in
// the background. Use Addr for the bound address (addr may use port 0).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	s.StartWorkers()
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.opts.Warnf("http: %v", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Draining reports whether the server is shutting down (readyz is 503 and
// submissions are refused).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain shuts the daemon down gracefully: readiness flips to 503, new
// submissions are refused, every in-flight job's context is cancelled so it
// checkpoints at its next batch boundary and persists as interrupted,
// queued jobs stay queued on disk, and the HTTP listener closes once the
// workers have exited. A subsequent boot over the same directory resumes
// every non-terminal job. Idempotent; ctx bounds how long to wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.gDraining.Set(1)
	if !already {
		// Cancelling the shared parent reaches every running job — and any
		// job a worker is about to start — with the drain cause.
		s.drainCancel(errDraining)
		close(s.stop)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out with jobs still stopping: %w", ctx.Err())
	}
	if s.http != nil {
		return s.http.Shutdown(ctx)
	}
	return nil
}

// worker executes jobs from the queue until drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.gQueue.Set(float64(len(s.queue)))
			s.runJob(j)
		}
	}
}

// runJob executes one job end to end: context construction (drain parent,
// per-job cancel, deadline), the panic-contained run, and the mapping of
// the outcome onto the job's persisted terminal state.
func (s *Server) runJob(j *Job) {
	if s.drainCtx.Err() != nil {
		// Popped mid-drain: leave it queued on disk for the next boot.
		return
	}
	if !j.enqueuedAt.IsZero() {
		s.hJobWait.ObserveDuration(time.Since(j.enqueuedAt))
	}
	ctx, cancel := context.WithCancelCause(s.drainCtx)
	defer cancel(nil)
	if d := j.Spec.deadline(s.opts.DefaultDeadline); d > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeoutCause(ctx, d, errDeadline)
		defer tcancel()
	}
	if !j.start(cancel) {
		return // cancelled while queued
	}
	s.mu.Lock()
	s.running++
	s.gRunning.Set(float64(s.running))
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.gRunning.Set(float64(s.running))
		s.mu.Unlock()
	}()

	run, panicked := s.execute(ctx, j)
	if run.Resumed > 0 {
		s.cResumedRuns.Inc()
	}
	cause := context.Cause(ctx)
	switch {
	case panicked != "":
		j.finish(StatusFailed, panicked, nil)
		s.cFailed.Inc()
	case run.Interrupted && errors.Is(cause, errDraining):
		j.finish(StatusInterrupted, "drained; resumable from checkpoint", nil)
		s.cInterrupted.Inc()
	case run.Interrupted && errors.Is(cause, errCancelled):
		j.finish(StatusCancelled, "cancelled by client", nil)
		s.cCancelled.Inc()
	case run.Interrupted && errors.Is(cause, errDeadline):
		j.finish(StatusDeadline, fmt.Sprintf("deadline %v exceeded", j.Spec.deadline(s.opts.DefaultDeadline)), nil)
		s.cDeadlineCount.Inc()
	case run.Interrupted:
		j.finish(StatusInterrupted, "interrupted; resumable from checkpoint", nil)
		s.cInterrupted.Inc()
	case run.Err != "":
		j.finish(StatusFailed, run.Err, nil)
		s.cFailed.Inc()
	default:
		j.finish(StatusDone, "", resultOf(run))
		s.cCompleted.Inc()
	}
}

// execute runs the job through exp.RunOne with last-resort panic
// containment: per-job isolation is a service invariant, so even a panic
// outside the evaluation layer's own envelopes fails only this job.
func (s *Server) execute(ctx context.Context, j *Job) (run exp.Run, panicked string) {
	defer func() {
		if rec := recover(); rec != nil {
			panicked = fmt.Sprintf("job panic: %v", rec)
		}
	}()
	tech, _ := exp.TechniqueByName(j.Spec.Technique) // validated at admission
	model := workload.ByName(j.Spec.Model)
	cfg := s.jobConfig(j)
	return exp.RunOne(ctx, cfg, tech, model, j.Spec.Budget), ""
}

// jobConfig maps a job onto the exp.Config its run uses. The checkpoint
// journal and CSV trace live inside the job's directory; Resume is always
// true so a rerun after drain or crash replays the journal (an empty
// directory degenerates to a fresh run).
func (s *Server) jobConfig(j *Job) exp.Config {
	cfg := exp.Default()
	cfg.Out = io.Discard
	cfg.Seed = 1
	if j.Spec.Seed != 0 {
		cfg.Seed = j.Spec.Seed
	}
	if j.Spec.MapTrials > 0 {
		cfg.MapTrials = j.Spec.MapTrials
	}
	workers := j.Spec.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > s.opts.MaxJobWorkers {
		workers = s.opts.MaxJobWorkers
	}
	cfg.Workers = workers
	cfg.CheckpointDir = filepath.Join(j.dir, "checkpoint")
	cfg.Resume = true
	csvDir := filepath.Join(j.dir, "csv")
	if err := os.MkdirAll(csvDir, 0o755); err == nil {
		cfg.CSVDir = csvDir
	} else {
		s.opts.Warnf("job %s: csv dir: %v", j.ID, err)
	}
	cfg.EvalTimeout = s.opts.EvalTimeout
	cfg.Retry = s.opts.Retry
	cfg.Metrics = s.jobsReg
	cfg.Cache = s.cache
	if s.opts.Faults != nil {
		cfg.Faults = s.opts.Faults(j.ID, j.Spec)
	}
	return cfg
}

// resultOf projects a completed run onto the persisted JobResult.
func resultOf(run exp.Run) *JobResult {
	res := &JobResult{
		Fingerprint:   run.Trace.Fingerprint(),
		BestObjective: obs.Float(run.Trace.BestObjective()),
		Feasible:      run.Trace.Best != nil,
		Evaluations:   run.Evaluations,
		Steps:         len(run.Trace.Steps),
		Resumed:       run.Resumed,
		Retries:       run.Stats.Retries,
		ElapsedMs:     run.Elapsed.Milliseconds(),
	}
	if run.Trace.Best != nil {
		res.BestKey = run.Trace.Best.Key()
	}
	return res
}

// submit admits a validated spec: the job is persisted as queued first (so
// a crash between persist and enqueue is recovered at next boot, never
// lost) and then offered to the bounded queue without blocking — a full
// queue sheds the job instead of stalling the daemon or its callers.
func (s *Server) submit(spec JobSpec) (*Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	j := &Job{ID: id, Spec: spec, dir: filepath.Join(s.opts.Dir, id),
		warnf: s.opts.Warnf, status: StatusQueued}
	s.jobs[id] = j
	s.mu.Unlock()

	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.dropJob(j)
		return nil, fmt.Errorf("serve: create job dir: %w", err)
	}
	j.setStatus(StatusQueued, "")
	j.enqueuedAt = time.Now()
	select {
	case s.queue <- j:
		s.gQueue.Set(float64(len(s.queue)))
		s.cSubmitted.Inc()
		return j, nil
	default:
		// Shed: undo the admission so the job is not resumed at next boot.
		s.dropJob(j)
		os.RemoveAll(j.dir)
		s.cShed.Inc()
		return nil, errShed
	}
}

// errShed marks a submission refused because the queue is full.
var errShed = errors.New("job queue full")

// dropJob removes a never-ran job from the registry (shed or failed setup).
func (s *Server) dropJob(j *Job) {
	s.mu.Lock()
	delete(s.jobs, j.ID)
	s.mu.Unlock()
}

// job looks a job up by ID.
func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobList returns every known job, sorted by ID.
func (s *Server) jobList() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// mergedMetrics snapshots the service registry merged with every run's
// evaluator registry into a fresh registry, ready for a Prometheus dump.
func (s *Server) mergedMetrics() *obs.Registry {
	s.gQueue.Set(float64(len(s.queue)))
	m := obs.NewRegistry()
	m.Merge(s.reg)
	m.Merge(s.jobsReg)
	s.evalMu.Lock()
	for _, key := range s.evalOrder {
		// Live fleet-shard evaluators; evicted ones already folded into
		// jobsReg at eviction time.
		m.Merge(s.evalPool[key].Metrics())
	}
	s.evalMu.Unlock()
	if s.cache != nil {
		m.Merge(s.cache.Metrics())
	}
	return m
}
