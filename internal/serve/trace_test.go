package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"xdse/internal/evalcache"
	"xdse/internal/fleet"
	"xdse/internal/obs"
)

// postEvalTraced POSTs one shard request carrying coordinator trace context.
func postEvalTraced(t *testing.T, base string, req fleet.EvalRequest, sc obs.SpanContext) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/eval", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(sc))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestEvalEndpointTracedSpans pins the worker half of the cross-process
// merge: a traced /eval returns queue, per-point worker-eval, and
// record-export spans, all parented under the coordinator's rpc span with
// rpc-prefixed IDs — while an untraced request returns none and takes the
// identical evaluation path.
func TestEvalEndpointTracedSpans(t *testing.T) {
	s, base := testServer(t, Options{CacheDir: t.TempDir()})
	sc := obs.SpanContext{Trace: "Tech_Model", Span: "7"}
	resp := postEvalTraced(t, base, evalReq(2), sc)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("traced eval status %d: %s", resp.StatusCode, body)
	}
	var out fleet.EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Evaluated != 2 || len(out.Records) == 0 {
		t.Fatalf("traced eval changed behavior: evaluated=%d records=%d", out.Evaluated, len(out.Records))
	}
	if len(out.Spans) == 0 {
		t.Fatal("traced eval returned no spans")
	}
	kinds := map[string]int{}
	for _, ev := range out.Spans {
		if ev.Kind != obs.KindSpan {
			t.Fatalf("non-span event in response: %+v", ev)
		}
		if ev.Trace != sc.Trace {
			t.Errorf("span %q trace = %q, want %q", ev.Span, ev.Trace, sc.Trace)
		}
		if ev.Parent != sc.Span {
			t.Errorf("span %q parented to %q, want the rpc span %q", ev.Span, ev.Parent, sc.Span)
		}
		if !strings.HasPrefix(ev.Span, sc.Span+".") {
			t.Errorf("span ID %q lacks the rpc prefix %q", ev.Span, sc.Span+".")
		}
		kinds[ev.SpanKind]++
	}
	if kinds[obs.SpanQueue] != 1 {
		t.Errorf("queue spans = %d, want 1", kinds[obs.SpanQueue])
	}
	if kinds[obs.SpanWorkerEval] != out.Evaluated {
		t.Errorf("worker-eval spans = %d, want %d (one per point)", kinds[obs.SpanWorkerEval], out.Evaluated)
	}
	if kinds[obs.SpanCache] != 1 {
		t.Errorf("export spans = %d, want 1", kinds[obs.SpanCache])
	}

	// The request-level queue-wait histogram observed the admission.
	if s.hEvalWait.Count() == 0 {
		t.Error("serve_eval_queue_wait_seconds recorded nothing")
	}

	// Untraced request: same path, no spans.
	plain := postEval(t, base, evalReq(2))
	defer plain.Body.Close()
	var pout fleet.EvalResponse
	if err := json.NewDecoder(plain.Body).Decode(&pout); err != nil {
		t.Fatal(err)
	}
	if len(pout.Spans) != 0 {
		t.Fatalf("untraced eval returned %d spans, want 0", len(pout.Spans))
	}
}

// TestCacheGetTracedSpan checks a traced /cache/{id} fetch lands a cache span
// in the daemon's own trace sink (there is no response channel for spans on
// this endpoint).
func TestCacheGetTracedSpan(t *testing.T) {
	col := &obs.CollectSink{}
	_, base := testServer(t, Options{CacheDir: t.TempDir(), Trace: col})
	resp := postEval(t, base, evalReq(1))
	defer resp.Body.Close()
	var out fleet.EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Records) == 0 {
		t.Fatal("no records to fetch")
	}
	rec, _, err := evalcache.DecodeRecord(out.Records[0])
	if err != nil {
		t.Fatal(err)
	}
	id := rec.Key.ID()

	hreq, _ := http.NewRequest(http.MethodGet, base+"/cache/"+id, nil)
	hreq.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(obs.SpanContext{Trace: "t", Span: "3"}))
	get, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()

	found := false
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindSpan && ev.SpanKind == obs.SpanCache && ev.Parent == "3" {
			found = true
		}
	}
	if !found {
		t.Errorf("traced cache fetch emitted no cache span to the daemon sink: %+v", col.Events())
	}
}

// TestJobQueueWaitHistogram pins the enqueue→start latency instrument: a job
// that runs must contribute one observation to serve_job_queue_wait_seconds.
func TestJobQueueWaitHistogram(t *testing.T) {
	s, base := testServer(t, Options{})
	resp, jf := postJob(t, base, smallSpec("GridSearch-FixDF"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	waitStatus(t, base, jf.ID, StatusDone)
	if s.hJobWait.Count() == 0 {
		t.Error("serve_job_queue_wait_seconds recorded nothing after a completed job")
	}
	// And the instrument reaches /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	dump, _ := io.ReadAll(mresp.Body)
	for _, name := range []string{"serve_job_queue_wait_seconds", "serve_eval_queue_wait_seconds"} {
		if !strings.Contains(string(dump), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestDebugSurfaceGated pins the profiling surface's gate: with
// Options.Debug the pprof index and /debug/vars serve; without it, the
// daemon exposes nothing under /debug.
func TestDebugSurfaceGated(t *testing.T) {
	_, debugBase := testServer(t, Options{Debug: true})
	resp, err := http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug daemon /debug/pprof/ status %d, want 200", resp.StatusCode)
	}
	vresp, err := http.Get(debugBase + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["xdse_metrics"]; !ok {
		t.Error("/debug/vars missing the merged metrics registry")
	}

	_, plainBase := testServer(t, Options{})
	off, err := http.Get(plainBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	off.Body.Close()
	if off.StatusCode != http.StatusNotFound {
		t.Errorf("undebugged daemon /debug/pprof/ status %d, want 404", off.StatusCode)
	}
}

// TestRuntimeSamplerFeedsMetrics checks the periodic sampler folds runtime
// gauges into /metrics, and that a negative interval disables it.
func TestRuntimeSamplerFeedsMetrics(t *testing.T) {
	s, base := testServer(t, Options{RuntimeSample: time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.reg.Gauge("runtime_goroutines").Value() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dump, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(dump), "runtime_goroutines") {
		t.Error("/metrics missing runtime_goroutines")
	}
	if s.reg.Gauge("runtime_goroutines").Value() <= 0 {
		t.Error("runtime sampler never sampled")
	}

	off, err := New(Options{Dir: t.TempDir(), RuntimeSample: -1, Warnf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if off.sampler != nil {
		t.Error("negative RuntimeSample must disable the sampler")
	}
}
