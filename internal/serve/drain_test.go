package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xdse/internal/eval"
)

// TestDrainAndResumeFingerprintIdentical is the graceful-shutdown
// acceptance gate, proven for all three mapper modes: a drain caught with
// jobs mid-run checkpoints every one of them, flips /readyz to 503, and a
// fresh daemon booted over the same directory resumes each job to a result
// bit-identical to an uninterrupted run's.
func TestDrainAndResumeFingerprintIdentical(t *testing.T) {
	// One technique per mapper mode: fixed-dataflow, random-mapping
	// codesign, and pruned-mapping codesign.
	specs := []JobSpec{
		smallSpec("ExplainableDSE-FixDF"),
		smallSpec("RandomSearch-Codesign"),
		smallSpec("ExplainableDSE-Codesign"),
	}
	refFP := make(map[string]string, len(specs))
	for _, spec := range specs {
		refFP[spec.Technique] = referenceRun(t, spec).Trace.Fingerprint()
	}

	dir := t.TempDir()
	reached := make(chan string, len(specs))
	release := make(chan struct{})
	gate := Options{
		Dir:           dir,
		MaxConcurrent: len(specs), // all jobs in flight at once
		Warnf:         t.Logf,
		Faults: func(id string, _ JobSpec) *eval.FaultPolicy {
			return &eval.FaultPolicy{OnEvaluation: func(ord int) {
				if ord == 3 {
					reached <- id
					<-release
				}
			}}
		},
	}
	s, err := New(gate)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	s.StartWorkers()

	ids := make(map[string]string, len(specs)) // technique -> job id
	for _, spec := range specs {
		resp, jf := postJob(t, ts.URL, spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %s = %d", spec.Technique, resp.StatusCode)
		}
		ids[spec.Technique] = jf.ID
	}
	for range specs {
		select {
		case <-reached:
		case <-time.After(time.Minute):
			t.Fatal("jobs never reached the gate evaluation")
		}
	}

	// Drain with every job parked mid-evaluation. Drain blocks until the
	// jobs stop, so run it concurrently and watch readiness flip first.
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	waitReadyz(t, ts.URL, http.StatusServiceUnavailable)

	// A submission during drain is refused with 503 + Retry-After.
	resp, _ := postJob(t, ts.URL, specs[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining response carries no Retry-After")
	}

	close(release) // jobs resume, observe the cancelled context, checkpoint
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	// Every job persisted as interrupted (non-terminal, resumable).
	for tech, id := range ids {
		j, err := loadJob(filepath.Join(dir, id), t.Logf)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if j.Status() != StatusInterrupted {
			t.Errorf("%s: drained job persisted as %q, want interrupted", tech, j.Status())
		}
	}

	// Boot a fresh daemon over the same directory: the interrupted jobs are
	// recovered, resumed from their checkpoints, and finish identical to
	// the fault-free references.
	s2, err := New(Options{Dir: dir, MaxConcurrent: len(specs), Warnf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	s2.StartWorkers()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Drain(ctx); err != nil {
			t.Errorf("drain 2: %v", err)
		}
	}()
	if got := s2.cRecovered.Value(); got != int64(len(specs)) {
		t.Errorf("serve_jobs_recovered_total = %d, want %d", got, len(specs))
	}
	for tech, id := range ids {
		done := waitStatus(t, ts2.URL, id, StatusDone)
		if done.Result == nil {
			t.Fatalf("%s: resumed job has no result", tech)
		}
		if done.Result.Fingerprint != refFP[tech] {
			t.Errorf("%s: resumed fingerprint %s != uninterrupted reference %s",
				tech, done.Result.Fingerprint, refFP[tech])
		}
		if done.Result.Resumed == 0 {
			t.Errorf("%s: resumed job replayed no journaled evaluations", tech)
		}
	}
}

// TestBootRecoveryFromRunningStatus covers the hard-crash signature: a job
// directory persisted mid-run (status "running", no drain marker) is reset
// to queued at boot and runs to the reference result.
func TestBootRecoveryFromRunningStatus(t *testing.T) {
	spec := smallSpec("SimulatedAnnealing-FixDF")
	ref := referenceRun(t, spec)

	dir := t.TempDir()
	jdir := filepath.Join(dir, "job-000007")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(jobFile{ID: "job-000007", Spec: spec, Status: StatusRunning})
	if err := os.WriteFile(filepath.Join(jdir, jobFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, base := testServer(t, Options{Dir: dir})
	if got := s.cRecovered.Value(); got != 1 {
		t.Fatalf("serve_jobs_recovered_total = %d, want 1", got)
	}
	done := waitStatus(t, base, "job-000007", StatusDone)
	if done.Result.Fingerprint != ref.Trace.Fingerprint() {
		t.Errorf("crash-recovered fingerprint %s != reference %s",
			done.Result.Fingerprint, ref.Trace.Fingerprint())
	}
	// The daemon's ID sequence advanced past the recovered job.
	_, jf := postJob(t, base, spec)
	if jf.ID != "job-000008" {
		t.Errorf("next assigned ID = %q, want job-000008", jf.ID)
	}
	waitStatus(t, base, jf.ID, StatusDone)
}

// TestDrainLeavesQueuedJobsQueued: a job still in the queue when drain
// lands is neither run nor lost — it stays queued on disk and the next boot
// picks it up.
func TestDrainLeavesQueuedJobsQueued(t *testing.T) {
	spec := smallSpec("ExplainableDSE-FixDF")
	ref := referenceRun(t, spec)

	dir := t.TempDir()
	reached := make(chan string, 1)
	release := make(chan struct{})
	s, err := New(Options{
		Dir:           dir,
		MaxConcurrent: 1,
		Warnf:         t.Logf,
		Faults: func(id string, _ JobSpec) *eval.FaultPolicy {
			return &eval.FaultPolicy{OnEvaluation: func(ord int) {
				if ord == 0 {
					reached <- id
					<-release
				}
			}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	s.StartWorkers()

	_, j1 := postJob(t, ts.URL, spec) // runs, parks at the gate
	select {
	case <-reached:
	case <-time.After(30 * time.Second):
		t.Fatal("job 1 never started")
	}
	_, j2 := postJob(t, ts.URL, spec) // stays queued behind the lone worker

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	waitReadyz(t, ts.URL, http.StatusServiceUnavailable)
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	// On disk: job 1 interrupted, job 2 still queued.
	for id, want := range map[string]JobStatus{j1.ID: StatusInterrupted, j2.ID: StatusQueued} {
		j, err := loadJob(filepath.Join(dir, id), t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status() != want {
			t.Errorf("job %s persisted as %q, want %q", id, j.Status(), want)
		}
	}

	// The next boot finishes both.
	_, base2 := testServer(t, Options{Dir: dir})
	for _, id := range []string{j1.ID, j2.ID} {
		done := waitStatus(t, base2, id, StatusDone)
		if done.Result.Fingerprint != ref.Trace.Fingerprint() {
			t.Errorf("job %s fingerprint diverged after drain+boot", id)
		}
	}
}

// waitReadyz polls /readyz until it answers with the wanted status code.
func waitReadyz(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("/readyz never reached %d", want)
}
