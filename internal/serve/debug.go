package serve

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// mountDebug adds the runtime profiling surface to mux (Options.Debug only):
// the net/http/pprof handlers under /debug/pprof/ and an expvar-style
// /debug/vars that additionally exposes the daemon's merged metrics
// registry as "xdse_metrics". Mounted explicitly instead of relying on the
// pprof package's DefaultServeMux side effects, so an undebugged daemon
// serves nothing under /debug.
func (s *Server) mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
}

// handleDebugVars renders the process's published expvars (cmdline,
// memstats) plus the daemon's merged metrics registry, in expvar's JSON
// format. A custom handler rather than expvar.Handler so the registry
// snapshot is per-request without expvar.Publish (which panics on duplicate
// names when tests build several Servers in one process).
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value.String())
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	fmt.Fprintf(w, "%q: %s", "xdse_metrics", s.mergedMetrics().Expvar().String())
	fmt.Fprintf(w, "\n}\n")
}
