package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSubmitOversizedBodyIs413 regression-tests the status mapping for
// bodies beyond the 1 MiB request cap: the failure is the client exceeding
// the limit (413), not malformed JSON (400).
func TestSubmitOversizedBodyIs413(t *testing.T) {
	_, base := testServer(t, Options{})
	big := `{"technique":"` + strings.Repeat("x", 2<<20) + `"}`
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("413 body not JSON: %v", err)
	}
	if !strings.Contains(body["error"], "limit") {
		t.Errorf("413 body %q does not mention the limit", body["error"])
	}

	// A merely-invalid body of acceptable size is still a 400.
	resp2, err := http.Post(base+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit = %d, want %d", resp2.StatusCode, http.StatusBadRequest)
	}
}

// TestServeSharedCacheAcrossIncarnations: a resubmitted job on a second
// daemon incarnation sharing -cache-dir must answer its layer searches from
// the persistent store and land on the same fingerprint.
func TestServeSharedCacheAcrossIncarnations(t *testing.T) {
	cacheDir := t.TempDir()
	spec := smallSpec("ExplainableDSE-FixDF")

	_, base := testServer(t, Options{CacheDir: cacheDir})
	resp, jf := postJob(t, base, spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	done := waitStatus(t, base, jf.ID, StatusDone)
	if _, err := os.Stat(filepath.Join(cacheDir, "evalcache.jsonl")); err != nil {
		t.Fatalf("daemon wrote no cache file: %v", err)
	}

	// Second incarnation: fresh Server and job dir, same cache directory.
	_, base2 := testServer(t, Options{CacheDir: cacheDir})
	resp2, jf2 := postJob(t, base2, spec)
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("resubmit = %d", resp2.StatusCode)
	}
	done2 := waitStatus(t, base2, jf2.ID, StatusDone)
	if done2.Result.Fingerprint != done.Result.Fingerprint {
		t.Fatalf("cached rerun fingerprint %s != original %s",
			done2.Result.Fingerprint, done.Result.Fingerprint)
	}

	// The /metrics dump of the second incarnation must surface both the
	// evaluator-level persist hits and the store-level load counter.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	for _, metric := range []string{"eval_persist_hits_total", "evalcache_records_loaded_total"} {
		if !strings.Contains(dump, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}
