package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"xdse/internal/exp"
	"xdse/internal/obs"
	"xdse/internal/workload"
)

// JobSpec is the client-submitted description of one exploration job: a
// (technique, model) pair from the experiment roster plus the knobs of
// exp.Config that are safe to expose per job. Everything else — retry
// policy, watchdog timeout, concurrency ceilings — is fixed service-side by
// Options so one misbehaving client cannot degrade its neighbors.
type JobSpec struct {
	// Technique is an exact technique name from exp.AllTechniques
	// (e.g. "ExplainableDSE-Codesign").
	Technique string `json:"technique"`
	// Model is a workload name resolvable by workload.ByName.
	Model string `json:"model"`
	// Budget is the unique-design evaluation budget (0 selects the
	// technique's default static budget).
	Budget int `json:"budget,omitempty"`
	// MapTrials is the per-layer mapping-search budget (0 = default).
	MapTrials int `json:"map_trials,omitempty"`
	// Seed makes the exploration reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers sizes the job's batch-evaluation pool, clamped to
	// Options.MaxJobWorkers. Results are bit-identical for any value; 1
	// additionally makes fault-injection ordinals deterministic.
	Workers int `json:"workers,omitempty"`
	// DeadlineMs bounds the job's wall-clock run time in milliseconds
	// (0 selects Options.DefaultDeadline). A job that exceeds it stops at
	// the next batch boundary with status "deadline".
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// validate resolves the roster references a spec names and rejects
// malformed knobs before the job is admitted.
func (s JobSpec) validate() error {
	if _, ok := exp.TechniqueByName(s.Technique); !ok {
		return fmt.Errorf("unknown technique %q", s.Technique)
	}
	if workload.ByName(s.Model) == nil {
		return fmt.Errorf("unknown model %q", s.Model)
	}
	if s.Budget < 0 || s.MapTrials < 0 || s.Workers < 0 || s.DeadlineMs < 0 {
		return fmt.Errorf("budget, map_trials, workers, and deadline_ms must be non-negative")
	}
	return nil
}

// deadline resolves the job's effective deadline (0 = unbounded).
func (s JobSpec) deadline(def time.Duration) time.Duration {
	if s.DeadlineMs > 0 {
		return time.Duration(s.DeadlineMs) * time.Millisecond
	}
	return def
}

// JobStatus is one job's lifecycle state. queued, running, and interrupted
// are non-terminal: a daemon booting over its job directory re-enqueues
// them (restart-safe resume). The rest are terminal and survive restarts as
// history.
type JobStatus string

// The job lifecycle: queued → running → {done, failed, cancelled,
// deadline}, with interrupted marking a run stopped by drain (or found
// mid-run after a hard crash) that the next boot resumes.
const (
	StatusQueued      JobStatus = "queued"
	StatusRunning     JobStatus = "running"
	StatusDone        JobStatus = "done"
	StatusFailed      JobStatus = "failed"
	StatusCancelled   JobStatus = "cancelled"
	StatusDeadline    JobStatus = "deadline"
	StatusInterrupted JobStatus = "interrupted"
)

// terminal reports whether the status is final (never resumed on boot).
func (s JobStatus) terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCancelled, StatusDeadline:
		return true
	}
	return false
}

// JobResult is the outcome of a completed job — the scalar summary plus the
// Trace.Fingerprint that proves resume determinism (a drained-and-resumed
// job reports the same fingerprint an uninterrupted run would).
type JobResult struct {
	// Fingerprint digests the full acquisition trace (search.Trace).
	Fingerprint string `json:"fingerprint"`
	// BestKey is the best feasible design's point key ("" if none).
	BestKey string `json:"best_key,omitempty"`
	// BestObjective is the minimized objective (+Inf when infeasible).
	BestObjective obs.Float `json:"best_objective"`
	// Feasible reports whether any feasible design was found.
	Feasible bool `json:"feasible"`
	// Evaluations is the unique-design budget spent.
	Evaluations int `json:"evaluations"`
	// Steps is the recorded acquisition count (memoized repeats included).
	Steps int `json:"steps"`
	// Resumed is the number of journaled evaluations replayed into this
	// run from an interrupted predecessor.
	Resumed int `json:"resumed"`
	// Retries counts transient-fault retry attempts the run performed.
	Retries int `json:"retries"`
	// ElapsedMs is the final run's wall time in milliseconds (resumed
	// runs count only the resuming invocation).
	ElapsedMs int64 `json:"elapsed_ms"`
}

// jobFile is the on-disk form of a job (job.json in the job's directory),
// written atomically on every state transition so a crash never tears it.
type jobFile struct {
	ID     string     `json:"id"`
	Spec   JobSpec    `json:"spec"`
	Status JobStatus  `json:"status"`
	Reason string     `json:"reason,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// Job is one submitted exploration job. All mutable state is guarded by mu
// and mirrored to job.json on every transition.
type Job struct {
	// ID is the daemon-assigned identifier ("job-000042").
	ID string
	// Spec is the validated client submission.
	Spec JobSpec

	dir   string
	warnf func(format string, args ...any)

	// enqueuedAt is stamped just before the job is offered to the queue
	// (submission or boot recovery) and read by the worker that pops it —
	// the channel send orders the accesses — to observe enqueue→start
	// latency. Not persisted: a restart restarts the wait.
	enqueuedAt time.Time

	mu     sync.Mutex
	status JobStatus
	reason string
	result *JobResult
	cancel context.CancelCauseFunc // non-nil exactly while running
}

// jobFileName is the per-job metadata file inside the job directory.
const jobFileName = "job.json"

// snapshot returns the job's persisted view for HTTP responses.
func (j *Job) snapshot() jobFile {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobFile{ID: j.ID, Spec: j.Spec, Status: j.status, Reason: j.reason, Result: j.result}
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// persistLocked writes job.json atomically (write-temp + rename). Caller
// holds j.mu. Persistence failures are warned, not fatal: the in-memory
// state machine stays authoritative for the life of the process.
func (j *Job) persistLocked() {
	f := jobFile{ID: j.ID, Spec: j.Spec, Status: j.status, Reason: j.reason, Result: j.result}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		j.warnf("job %s: marshal: %v", j.ID, err)
		return
	}
	tmp := filepath.Join(j.dir, jobFileName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		j.warnf("job %s: persist: %v", j.ID, err)
		return
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, jobFileName)); err != nil {
		j.warnf("job %s: persist: %v", j.ID, err)
	}
}

// setStatus transitions the job and persists the new state.
func (j *Job) setStatus(st JobStatus, reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = st
	j.reason = reason
	j.persistLocked()
}

// start transitions queued → running and registers the run's cancel
// function. It fails when the job was cancelled while queued.
func (j *Job) start(cancel context.CancelCauseFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.reason = ""
	j.cancel = cancel
	j.persistLocked()
	return true
}

// finish records the run's terminal (or interrupted) state and outcome.
func (j *Job) finish(st JobStatus, reason string, res *JobResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = st
	j.reason = reason
	j.result = res
	j.cancel = nil
	j.persistLocked()
}

// requestCancel cancels the job: a queued job goes terminal immediately (the
// worker skips it on pop), a running one has its context cancelled and goes
// terminal when the run stops at its next batch boundary. Returns false for
// jobs already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCancelled
		j.reason = "cancelled while queued"
		j.persistLocked()
		return true
	case StatusRunning:
		if j.cancel != nil {
			j.cancel(errCancelled)
		}
		return true
	}
	return false
}

// loadJob reads a job back from its directory (boot rescan).
func loadJob(dir string, warnf func(format string, args ...any)) (*Job, error) {
	data, err := os.ReadFile(filepath.Join(dir, jobFileName))
	if err != nil {
		return nil, err
	}
	var f jobFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", jobFileName, err)
	}
	if f.ID == "" {
		return nil, fmt.Errorf("parse %s: missing id", jobFileName)
	}
	return &Job{ID: f.ID, Spec: f.Spec, dir: dir, warnf: warnf,
		status: f.Status, reason: f.Reason, result: f.Result}, nil
}
