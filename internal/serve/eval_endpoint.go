package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"xdse/internal/arch"
	"xdse/internal/eval"
	"xdse/internal/evalcache"
	"xdse/internal/fleet"
	"xdse/internal/obs"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// evalMaxBody bounds one POST /eval request body.
const evalMaxBody = 8 << 20

// evalPoolCap bounds the worker's evaluator pool: distinct
// (model, mode, trials, seed) configurations beyond it evict the oldest
// (FIFO), whose metrics fold into the jobs registry so nothing observable
// is lost.
const evalPoolCap = 8

// evalPoolKey identifies one pooled evaluator configuration. Everything
// that participates in the content address of a layer record participates
// here, so a pooled evaluator can never answer a request whose records it
// would mis-key.
type evalPoolKey struct {
	model  string
	mode   eval.MapperMode
	trials int
	seed   int64
}

// evaluatorFor returns the pooled evaluator for one shard configuration,
// creating (and, at capacity, evicting FIFO) as needed. Evaluators share the
// daemon's persistent cache, so repeat shards — and shards for designs seen
// by earlier jobs — answer from disk. An evicted evaluator stays valid for
// requests already holding it; it just stops being shared.
func (s *Server) evaluatorFor(model *workload.Model, mode eval.MapperMode, trials int, seed int64) *eval.Evaluator {
	key := evalPoolKey{model: model.Name, mode: mode, trials: trials, seed: seed}
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	if ev, ok := s.evalPool[key]; ok {
		return ev
	}
	ev := eval.New(eval.Config{
		Space:        arch.EdgeSpace(),
		Models:       []*workload.Model{model},
		Constraints:  eval.EdgeConstraints(),
		Mode:         mode,
		MapTrials:    trials,
		Seed:         seed,
		Workers:      s.opts.MaxJobWorkers,
		EvalTimeout:  s.opts.EvalTimeout,
		Retry:        s.opts.Retry,
		PersistCache: s.cache,
	})
	if len(s.evalOrder) >= evalPoolCap {
		oldest := s.evalOrder[0]
		s.evalOrder = s.evalOrder[1:]
		if old, ok := s.evalPool[oldest]; ok {
			// Fold the evicted evaluator's instruments into the jobs
			// registry so /metrics keeps its history.
			s.jobsReg.Merge(old.Metrics())
			delete(s.evalPool, oldest)
		}
	}
	s.evalPool[key] = ev
	s.evalOrder = append(s.evalOrder, key)
	return ev
}

// handleEval serves one fleet shard: validate the protocol and model-version
// handshake, evaluate every point through a pooled evaluator, and return the
// content-addressed layer records the evaluations produced. Admission
// mirrors the jobs API: draining → 503 + Retry-After, concurrency saturated
// → 429 + Retry-After, malformed or mismatched requests → 4xx (permanent for
// the coordinator), version skew → 412.
//
// A request carrying an obs.TraceHeader gets worker-side spans — queue wait,
// one span per evaluated point, record export — parented under the
// coordinator's rpc span and returned in the response for cross-process
// merge (and emitted to Options.Trace, when set). Tracing is observation
// only: an untraced request takes the identical evaluation path.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.Draining() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		httpError(w, http.StatusServiceUnavailable, "daemon draining")
		return
	}
	var req fleet.EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, evalMaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, "eval request exceeds %d-byte limit", mbe.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "parse eval request: %v", err)
		return
	}
	if req.Protocol != fleet.ProtocolVersion {
		httpError(w, http.StatusBadRequest, "fleet protocol %d, this worker speaks %d", req.Protocol, fleet.ProtocolVersion)
		return
	}
	if req.ModelVersion != perf.ModelVersion() {
		httpError(w, http.StatusPreconditionFailed, "cost-model version %q, this worker has %q", req.ModelVersion, perf.ModelVersion())
		return
	}
	mode, ok := eval.ParseMapperMode(req.Mode)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown mapper mode %q", req.Mode)
		return
	}
	model := workload.ByName(req.Model)
	if model == nil {
		httpError(w, http.StatusBadRequest, "unknown model %q", req.Model)
		return
	}
	if req.MapTrials <= 0 || len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "eval request needs map_trials > 0 and at least one point")
		return
	}
	pts := make([]arch.Point, 0, len(req.Points))
	for _, key := range req.Points {
		pt, err := arch.ParseKey(key)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad point %q: %v", key, err)
			return
		}
		pts = append(pts, pt)
	}

	// Non-blocking admission: saturation sheds with a back-off hint instead
	// of queueing shards whose leases would expire while waiting.
	select {
	case s.evalSem <- struct{}{}:
		s.gEvalInflight.Set(float64(len(s.evalSem)))
		defer func() {
			<-s.evalSem
			s.gEvalInflight.Set(float64(len(s.evalSem)))
		}()
	default:
		s.cEvalShed.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		httpError(w, http.StatusTooManyRequests, "eval concurrency %d saturated; retry later", s.opts.EvalConcurrent)
		return
	}
	s.hEvalWait.ObserveDuration(time.Since(t0))

	// Set up worker-side tracing when the coordinator sent trace context:
	// a collecting sink gathers this request's spans for the response, the
	// rpc span ID prefixes local span IDs ("<rpc>.<n>") so merged IDs never
	// collide, and the queue span retroactively covers arrival→admission.
	var col *obs.CollectSink
	var tr *obs.Tracer
	var parent obs.SpanContext
	if sc, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok {
		col = &obs.CollectSink{}
		tr = obs.NewTracer(obs.Multi(col, s.opts.Trace), sc.Span+".")
		parent = sc
		q := tr.StartChildAt(parent, obs.SpanQueue, "", t0)
		q.End()
	}

	s.cEvalShards.Inc()
	ev := s.evaluatorFor(model, mode, req.MapTrials, req.Seed)
	evCtx := obs.ContextWithSpan(r.Context(), tr, parent)
	evaluated := 0
	for _, pt := range pts {
		// The request context carries the lease: a coordinator that revokes
		// (or dies) cancels it, and the worker stops mid-shard instead of
		// burning cycles on a result nobody will accept.
		if evCtx.Err() != nil {
			break
		}
		ev.EvaluateCtx(evCtx, pt)
		evaluated++
	}
	csp := tr.StartChild(parent, obs.SpanCache, "export")
	var lines []string
	seen := make(map[string]bool)
	for _, pt := range pts[:evaluated] {
		for _, rec := range ev.RecordsFor(pt) {
			id := rec.Key.ID()
			if seen[id] {
				continue
			}
			seen[id] = true
			data, err := evalcache.EncodeRecord(rec, perf.ModelVersion())
			if err != nil {
				continue
			}
			lines = append(lines, strings.TrimSuffix(string(data), "\n"))
		}
	}
	csp.Points = len(lines)
	csp.End()
	s.cEvalPoints.Add(int64(evaluated))
	s.cEvalRecords.Add(int64(len(lines)))
	resp := fleet.EvalResponse{
		ModelVersion: perf.ModelVersion(),
		Records:      lines,
		Evaluated:    evaluated,
	}
	if col != nil {
		resp.Spans = col.Events()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCacheGet serves one persistent-cache record by content address
// (evalcache.Key.ID) as its wire line, with the daemon's cost-model version
// as a strong ETag: a peer holding a copy under the same version revalidates
// to 304 without the body, and a version bump invalidates every cached copy
// at once.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		httpError(w, http.StatusNotFound, "no persistent cache configured")
		return
	}
	id := r.PathValue("id")
	// A traced fetch spans the serve into the daemon's own trace sink
	// (there is no response channel for spans here; peers merge via /eval).
	if sc, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok && s.opts.Trace != nil {
		ctr := obs.NewTracer(s.opts.Trace, sc.Span+".c")
		sp := ctr.StartChild(sc, obs.SpanCache, id)
		defer sp.End()
	}
	rec, ok := s.cache.GetByID(id)
	if !ok {
		s.cCacheMisses.Inc()
		httpError(w, http.StatusNotFound, "no record %q", id)
		return
	}
	etag := `"` + s.cache.Version() + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		s.cCacheRevalid.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := evalcache.EncodeRecord(rec, s.cache.Version())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode record: %v", err)
		return
	}
	s.cCacheServed.Inc()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(data) //nolint:errcheck // client gone; nothing to do
}

// evalEndpointMetrics registers the fleet-worker instruments on the service
// registry; called from New.
func (s *Server) evalEndpointMetrics(reg *obs.Registry) {
	s.cEvalShards = reg.Counter("serve_eval_shards_total")
	s.cEvalPoints = reg.Counter("serve_eval_points_total")
	s.cEvalRecords = reg.Counter("serve_eval_records_total")
	s.cEvalShed = reg.Counter("serve_eval_shed_total")
	s.cCacheServed = reg.Counter("serve_cache_records_served_total")
	s.cCacheMisses = reg.Counter("serve_cache_record_misses_total")
	s.cCacheRevalid = reg.Counter("serve_cache_revalidations_total")
	s.gEvalInflight = reg.Gauge("serve_eval_inflight")
	s.hEvalWait = reg.Histogram("serve_eval_queue_wait_seconds", obs.DurationBuckets())
}
