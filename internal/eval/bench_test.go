package eval

import (
	"testing"

	"xdse/internal/arch"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// benchEvalConfig is the benchmark configuration: pruned-mapping codesign on
// ResNet18, the paper's running example.
func benchEvalConfig(s *arch.Space) Config {
	return Config{
		Space:       s,
		Models:      []*workload.Model{workload.ResNet18()},
		Constraints: EdgeConstraints(),
		Mode:        PrunedMappings,
		MapTrials:   200,
		Seed:        1,
		Workers:     1, // isolate cache effects from pool parallelism
	}
}

// BenchmarkEvaluateDesign measures a repeated-sub-key campaign (every design
// recurs under a mapping-irrelevant dummy parameter, as frequency or DRAM
// energy knobs would recur in a larger template) with the layer-grain cache
// disabled ("cold") and enabled ("warm"). The acceptance criterion for the
// cache is a >=2x cold/warm ratio on this workload.
func BenchmarkEvaluateDesign(b *testing.B) {
	s := spaceWithDummyParam(3)
	pts := campaignPoints(s, 24)
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := New(cfg)
			for _, pt := range pts {
				e.Evaluate(pt)
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		cfg := benchEvalConfig(s)
		cfg.DisableLayerCache = true
		cfg.WarmStart = WarmOff
		run(b, cfg)
	})
	b.Run("warm", func(b *testing.B) {
		run(b, benchEvalConfig(s))
	})
}

// BenchmarkEvaluateLayer measures one layer's mapping search through the
// evaluator: a cold search every call versus the layer cache answering
// repeats.
func BenchmarkEvaluateLayer(b *testing.B) {
	s := arch.EdgeSpace()
	d := s.MustDecode(compatiblePoint(s))
	l := workload.ResNet18().Layers[1]
	b.Run("cold", func(b *testing.B) {
		cfg := benchEvalConfig(s)
		cfg.DisableLayerCache = true
		cfg.WarmStart = WarmOff
		e := New(cfg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.evaluateLayer(d, perf.MappingSubKey(d), l, 1)
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := New(benchEvalConfig(s))
		e.evaluateLayer(d, perf.MappingSubKey(d), l, 1) // populate the cache
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.evaluateLayer(d, perf.MappingSubKey(d), l, 1)
		}
	})
}
