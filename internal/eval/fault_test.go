package eval

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"xdse/internal/arch"
	"xdse/internal/workload"
)

// newFaultEval builds a single-worker evaluator with a fault policy (and
// optionally a watchdog timeout) over the small FixedDataflow configuration.
func newFaultEval(fp *FaultPolicy, timeout time.Duration) *Evaluator {
	return New(Config{
		Space:       arch.EdgeSpace(),
		Models:      []*workload.Model{workload.ResNet18()},
		Constraints: EdgeConstraints(),
		Mode:        FixedDataflow,
		MapTrials:   200,
		Seed:        1,
		Workers:     1,
		Faults:      fp,
		EvalTimeout: timeout,
	})
}

// distinctPoints returns n well-formed points that decode to distinct designs.
func distinctPoints(s *arch.Space, n int) []arch.Point {
	pts := make([]arch.Point, n)
	for i := range pts {
		pt := compatiblePoint(s)
		pt[arch.PPEs] = s.Clamp(arch.PPEs, 1+i)
		pts[i] = pt
	}
	return pts
}

// assertErrored checks the infeasible-with-error shape every failed
// evaluation must have.
func assertErrored(t *testing.T, r *Result, wantSubstr string) {
	t.Helper()
	if r.Err == "" || !strings.Contains(r.Err, wantSubstr) {
		t.Fatalf("Err = %q, want substring %q", r.Err, wantSubstr)
	}
	if r.Feasible {
		t.Error("errored result marked feasible")
	}
	if !math.IsInf(r.Objective, 1) {
		t.Errorf("errored Objective = %v, want +Inf", r.Objective)
	}
	if len(r.Violations) == 0 {
		t.Error("errored result has no violation entry")
	}
}

func TestInjectedPanicContained(t *testing.T) {
	e := newFaultEval(&FaultPolicy{PanicAt: []int{1}}, 0)
	pts := distinctPoints(e.Config().Space, 3)

	r0 := e.Evaluate(pts[0])
	r1 := e.Evaluate(pts[1])
	r2 := e.Evaluate(pts[2])

	if r0.Err != "" || r2.Err != "" {
		t.Fatalf("healthy evaluations errored: %q, %q", r0.Err, r2.Err)
	}
	assertErrored(t, r1, "injected fault: panic at unique evaluation 1")
	if !strings.Contains(r1.Err, "panic during evaluation") {
		t.Errorf("Err = %q, want the recovered-panic prefix", r1.Err)
	}

	st := e.Stats()
	if st.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}
	if st.Evaluations != 3 {
		t.Errorf("Evaluations = %d, want 3 (panicked design is charged)", st.Evaluations)
	}

	// The panicked design is memoized: a revisit must not re-fire the fault.
	if again := e.Evaluate(pts[1]); again != r1 {
		t.Error("panicked design not memoized")
	}
	if st := e.Stats(); st.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered after revisit = %d, want 1", st.PanicsRecovered)
	}
}

func TestInjectedError(t *testing.T) {
	e := newFaultEval(&FaultPolicy{ErrorAt: []int{0}}, 0)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	assertErrored(t, r, "injected fault: error at unique evaluation 0")
	if st := e.Stats(); st.PanicsRecovered != 0 || st.Evaluations != 1 {
		t.Errorf("stats = %+v, want no panics and 1 charged evaluation", st)
	}
}

func TestWatchdogTimeout(t *testing.T) {
	e := newFaultEval(&FaultPolicy{DelayAt: []int{0}, Delay: 10 * time.Second}, 30*time.Millisecond)
	pt := compatiblePoint(e.Config().Space)

	r := e.Evaluate(pt)
	assertErrored(t, r, "watchdog timeout")
	st := e.Stats()
	if st.EvalTimeouts != 1 {
		t.Errorf("EvalTimeouts = %d, want 1", st.EvalTimeouts)
	}
	if st.Evaluations != 1 {
		t.Errorf("Evaluations = %d, want 1 (timed-out design is charged)", st.Evaluations)
	}
	// Memoized: the revisit answers from cache instead of re-arming the
	// watchdog.
	if again := e.Evaluate(pt); again != r {
		t.Error("timed-out design not memoized")
	}
	if st := e.Stats(); st.EvalTimeouts != 1 {
		t.Errorf("EvalTimeouts after revisit = %d, want 1", st.EvalTimeouts)
	}
}

func TestCancellationUnchargedUncached(t *testing.T) {
	// Pre-cancelled context: immediate Cancelled result, nothing charged.
	e := newFaultEval(nil, 0)
	pt := compatiblePoint(e.Config().Space)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := e.EvaluateCtx(ctx, pt)
	if !r.Cancelled {
		t.Fatal("pre-cancelled context did not yield a Cancelled result")
	}
	assertErrored(t, r, "evaluation cancelled")
	if e.Evaluations() != 0 {
		t.Errorf("Evaluations = %d, want 0 (cancelled evaluations are free)", e.Evaluations())
	}

	// Cancellation mid-evaluation (during an injected delay): also free,
	// and the point stays evaluable afterwards.
	ctx2, cancel2 := context.WithCancel(context.Background())
	e2 := newFaultEval(&FaultPolicy{
		DelayAt:      []int{0},
		Delay:        10 * time.Second,
		OnEvaluation: func(ord int) { cancel2() },
	}, 0)
	r2 := e2.EvaluateCtx(ctx2, pt)
	if !r2.Cancelled {
		t.Fatal("mid-evaluation cancellation did not yield a Cancelled result")
	}
	if e2.Evaluations() != 0 {
		t.Errorf("Evaluations = %d, want 0 after cancelled evaluation", e2.Evaluations())
	}
	// Fresh context: the design evaluates from scratch. Its unique
	// ordinal was not burned by the cancelled attempt being charged —
	// disable the hook so the retry can run.
	e2.cfg.Faults = nil
	r3 := e2.Evaluate(pt)
	if r3.Cancelled || r3.Err != "" {
		t.Fatalf("post-cancel re-evaluation failed: %+v", r3.Err)
	}
	if e2.Evaluations() != 1 {
		t.Errorf("Evaluations = %d, want 1 after successful retry", e2.Evaluations())
	}
}

func TestOrdinalDeterminismAndPriming(t *testing.T) {
	run := func(prime bool) []int {
		var ords []int
		e := newFaultEval(&FaultPolicy{OnEvaluation: func(ord int) { ords = append(ords, ord) }}, 0)
		pts := distinctPoints(e.Config().Space, 3)
		if prime {
			// A primed key is already charged, so re-evaluating it is a
			// recompute that must not consume an ordinal.
			if n := e.Prime([]string{pts[1].Key()}); n != 1 {
				t.Fatalf("Prime = %d, want 1", n)
			}
		}
		for _, pt := range []arch.Point{pts[0], pts[1], pts[0], pts[2]} {
			e.Evaluate(pt)
		}
		if e.Evaluations() != 3 {
			t.Fatalf("Evaluations = %d, want 3", e.Evaluations())
		}
		return ords
	}

	if got := run(false); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("ordinals = %v, want [0 1 2]", got)
	}
	// With pts[1] primed, only pts[0] and pts[2] are unique evaluations.
	if got := run(true); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ordinals with priming = %v, want [0 1]", got)
	}
}

func TestPrimeBudgetAccounting(t *testing.T) {
	e := newFaultEval(nil, 0)
	pts := distinctPoints(e.Config().Space, 2)
	keys := []string{pts[0].Key(), pts[1].Key()}

	if n := e.Prime(keys); n != 2 {
		t.Fatalf("Prime = %d, want 2", n)
	}
	if e.Evaluations() != 2 {
		t.Fatalf("Evaluations after Prime = %d, want 2", e.Evaluations())
	}
	if n := e.Prime(keys); n != 0 {
		t.Errorf("second Prime = %d, want 0", n)
	}

	// Evaluating a primed design redoes the work as a recompute without
	// charging the budget again.
	r := e.Evaluate(pts[0])
	if r.Err != "" {
		t.Fatalf("recompute of primed design failed: %s", r.Err)
	}
	st := e.Stats()
	if st.Evaluations != 2 {
		t.Errorf("Evaluations = %d, want 2 (recompute is free)", st.Evaluations)
	}
	if st.Recomputes != 1 {
		t.Errorf("Recomputes = %d, want 1", st.Recomputes)
	}
}

func TestMalformedPointErrored(t *testing.T) {
	e := newFaultEval(nil, 0)
	r := e.Evaluate(arch.Point{0, 1})
	assertErrored(t, r, "malformed design point")
}
