package eval

import (
	"math"
	"sync"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// TestEvaluateConcurrentHammer races many goroutines over a small set of
// overlapping design points (run under -race in CI). Every call for a key
// must return the same memoized result, unique evaluations must equal the
// number of distinct keys, and every other call must be accounted as either
// a cache hit or an in-flight dedup — nothing computed twice, nothing lost.
func TestEvaluateConcurrentHammer(t *testing.T) {
	e := newEval(FixedDataflow)
	space := e.Config().Space

	const unique = 6
	pts := make([]arch.Point, unique)
	for i := range pts {
		pt := compatiblePoint(space)
		pt[arch.PPEs] = i % len(space.Params[arch.PPEs].Values)
		pts[i] = pt
	}

	const goroutines = 16
	const callsPer = 24
	results := make([][]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]*Result, callsPer)
			for i := 0; i < callsPer; i++ {
				results[g][i] = e.Evaluate(pts[(g+i)%unique])
			}
		}(g)
	}
	wg.Wait()

	canonical := map[string]*Result{}
	for g := range results {
		for i, r := range results[g] {
			key := pts[(g+i)%unique].Key()
			if prev, ok := canonical[key]; ok && prev != r {
				t.Fatalf("point %s returned two distinct results", key)
			}
			canonical[key] = r
		}
	}
	s := e.Stats()
	if s.Evaluations != unique {
		t.Fatalf("evaluations = %d, want %d unique", s.Evaluations, unique)
	}
	total := goroutines * callsPer
	if s.CacheHits+s.InflightDedups != total-unique {
		t.Fatalf("hits %d + dedups %d != %d calls - %d unique",
			s.CacheHits, s.InflightDedups, total, unique)
	}
	if s.MapTrials <= 0 || s.EvalWall <= 0 {
		t.Fatalf("instrumentation not recorded: %+v", s)
	}
}

func TestConstraintUtilGuards(t *testing.T) {
	cases := []struct {
		value, limit, want float64
	}{
		{50, 100, 0.5},
		{0, 0, 0},                                     // nothing used, nothing allowed
		{-1, 0, 0},                                    // degenerate negative usage
		{5, 0, maxConstraintUtil},                     // zero limit with real usage
		{5, -1, maxConstraintUtil},                    // negative limit
		{math.Inf(1), 100, maxConstraintUtil},         // infinite usage
		{math.NaN(), 100, maxConstraintUtil},          // NaN usage
		{math.Inf(1), math.Inf(1), maxConstraintUtil}, // Inf/Inf would be NaN
	}
	for _, tc := range cases {
		got := constraintUtil(tc.value, tc.limit)
		if got != tc.want {
			t.Errorf("constraintUtil(%v, %v) = %v, want %v", tc.value, tc.limit, got, tc.want)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("constraintUtil(%v, %v) not finite: %v", tc.value, tc.limit, got)
		}
	}
}

// TestZeroFrequencyDesign pins the LatencyMs = Cycles/FreqMHz guard: a
// clockless design must read as infinitely slow, not NaN.
func TestZeroFrequencyDesign(t *testing.T) {
	e := newEval(FixedDataflow)
	d := e.Config().Space.MustDecode(compatiblePoint(e.Config().Space))
	d.FreqMHz = 0
	me := e.evaluateModel(d, perf.MappingSubKey(d), e.emodel.Estimate(d), workload.ResNet18())
	if !math.IsInf(me.LatencyMs, 1) {
		t.Fatalf("latency at 0 MHz = %v, want +Inf", me.LatencyMs)
	}
	if me.MeetsThroughput {
		t.Fatal("a clockless design cannot meet a throughput ceiling")
	}
}

// TestEmptyModelEvaluates pins the IncompatSeverity /= len(Layers) guard: a
// model with no layers must not divide by zero.
func TestEmptyModelEvaluates(t *testing.T) {
	empty := &workload.Model{Name: "empty", MaxLatencyMs: 10}
	e := New(Config{
		Space:       arch.EdgeSpace(),
		Models:      []*workload.Model{empty},
		Constraints: EdgeConstraints(),
		Mode:        FixedDataflow,
		Seed:        1,
	})
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	me := r.Models[0]
	if math.IsNaN(me.IncompatSeverity) || math.IsNaN(me.LatencyMs) {
		t.Fatalf("empty model produced NaN: severity=%v latency=%v",
			me.IncompatSeverity, me.LatencyMs)
	}
	if math.IsNaN(r.BudgetUtil) {
		t.Fatalf("budget util = %v", r.BudgetUtil)
	}
}

// TestZeroLatencyCeiling pins the checkConstraints guard: a model with no
// latency ceiling reads as a hard throughput violation with a large finite
// budget, never NaN/Inf — so the §4.6 budget comparisons stay ordered.
func TestZeroLatencyCeiling(t *testing.T) {
	m := workload.ResNet18()
	m.MaxLatencyMs = 0
	e := New(Config{
		Space:       arch.EdgeSpace(),
		Models:      []*workload.Model{m},
		Constraints: EdgeConstraints(),
		Mode:        FixedDataflow,
		Seed:        1,
	})
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	if math.IsNaN(r.BudgetUtil) || math.IsInf(r.BudgetUtil, 0) {
		t.Fatalf("budget util = %v, want finite", r.BudgetUtil)
	}
	if r.Feasible {
		t.Fatal("zero latency ceiling cannot be met")
	}
}
