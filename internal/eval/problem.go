package eval

import (
	"xdse/internal/arch"
	"xdse/internal/search"
)

// Problem adapts the evaluator into the domain-independent search contract
// consumed by every DSE technique. The evaluation budget counts unique
// design points (memoized re-visits are free, matching how the paper counts
// DSE iterations). The problem's batch-evaluation pool is sized from the
// evaluator's Workers setting — the Evaluator is concurrency-safe, so
// candidate batches fan out across the pool and deduplicate in flight.
func (e *Evaluator) Problem(budget int) *search.Problem {
	return &search.Problem{
		Space:   e.cfg.Space,
		Budget:  budget,
		Workers: e.cfg.Workers,
		Stats:   &search.BatchStats{},
		Evaluate: func(pt arch.Point) search.Costs {
			r := e.Evaluate(pt)
			return search.Costs{
				Objective:      r.Objective,
				Feasible:       r.Feasible,
				MeetsAreaPower: r.MeetsAreaPower,
				BudgetUtil:     r.BudgetUtil,
				Violations:     len(r.Violations),
				Raw:            r,
			}
		},
	}
}
