package eval

import (
	"context"
	"fmt"
	"sync"

	"xdse/internal/arch"
	"xdse/internal/checkpoint"
	"xdse/internal/obs"
	"xdse/internal/search"
)

// Problem adapts the evaluator into the domain-independent search contract
// consumed by every DSE technique. The evaluation budget counts unique
// design points (memoized re-visits are free, matching how the paper counts
// DSE iterations). The problem's batch-evaluation pool is sized from the
// evaluator's Workers setting — the Evaluator is concurrency-safe, so
// candidate batches fan out across the pool and deduplicate in flight.
func (e *Evaluator) Problem(budget int) *search.Problem {
	return e.ProblemCtx(context.Background(), budget)
}

// ProblemCtx is Problem with cancellation: the context is attached to the
// returned problem (optimizers check it at batch boundaries) and threaded
// into every evaluation, so cancelling it abandons in-flight work without
// charging the budget.
func (e *Evaluator) ProblemCtx(ctx context.Context, budget int) *search.Problem {
	if ctx == nil {
		ctx = context.Background()
	}
	return &search.Problem{
		Space:   e.cfg.Space,
		Budget:  budget,
		Workers: e.cfg.Workers,
		Stats:   &search.BatchStats{Hist: e.reg.Histogram("search_batch_seconds", obs.DurationBuckets())},
		Ctx:     ctx,
		Evaluate: func(pt arch.Point) search.Costs {
			return costsOf(e.EvaluateCtx(ctx, pt))
		},
	}
}

// costsOf projects a Result onto the search-layer Costs.
func costsOf(r *Result) search.Costs {
	return search.Costs{
		Objective:      r.Objective,
		Feasible:       r.Feasible,
		MeetsAreaPower: r.MeetsAreaPower,
		BudgetUtil:     r.BudgetUtil,
		Violations:     len(r.Violations),
		Err:            r.Err,
		Raw:            r,
	}
}

// ResumableProblem is ProblemCtx plus crash-safety: every completed unique
// evaluation is appended to the journal, and evaluations already journaled
// by a previous (killed) run are answered from the replayed records without
// recomputation.
//
// Resume invariants, in order of subtlety:
//
//  1. Replayed keys are Primed into the evaluator — charged to the
//     unique-design budget exactly as the original run charged them — so
//     budget accounting is bit-identical to an uninterrupted run.
//  2. Replayed Costs carry a search.Deferred thunk as Raw: the scalar
//     outcome needs no recomputation, but the dse engine's bottleneck
//     analysis needs the full *Result, so adopting a replayed solution
//     lazily re-evaluates the design (deterministic, memoized, and counted
//     as a recompute — never a new unique evaluation, by invariant 1).
//  3. Only evaluations that actually completed are journaled: cancelled
//     results are skipped, so a kill can lose at most in-flight work, never
//     record work that didn't happen.
//
// Journal append errors degrade the run to unresumable rather than killing
// it: the error is reported once through warnf (when non-nil) and the run
// continues uncheckpointed.
func (e *Evaluator) ResumableProblem(ctx context.Context, budget int, j *checkpoint.Journal, warnf func(format string, args ...any)) *search.Problem {
	p := e.ProblemCtx(ctx, budget)
	if j == nil {
		return p
	}
	replay := make(map[string]search.Costs)
	var keys []string
	for _, rec := range j.Replayed() {
		key := rec.Key
		c := rec.Costs
		c.Raw = search.Deferred(func() any {
			pt, err := arch.ParseKey(key)
			if err != nil {
				// A journaled key that no longer parses cannot be
				// rematerialized; surface the reason in-band.
				return erroredResult(arch.Point{}, fmt.Sprintf("checkpoint replay: %v", err))
			}
			return e.EvaluateCtx(ctx, pt)
		})
		replay[key] = c
		keys = append(keys, key)
	}
	e.Prime(keys)

	var warnOnce sync.Once
	inner := p.Evaluate
	p.Evaluate = func(pt arch.Point) search.Costs {
		key := pt.Key()
		if c, ok := replay[key]; ok {
			return c
		}
		c := inner(pt)
		if r, ok := c.Raw.(*Result); ok && r.Cancelled {
			return c // abandoned work is never journaled
		}
		if err := j.Append(key, c); err != nil {
			warnOnce.Do(func() {
				if warnf != nil {
					warnf("checkpoint: journal append failed, run continues unresumable: %v", err)
				}
			})
		}
		return c
	}
	return p
}
