package eval

import (
	"xdse/internal/arch"
	"xdse/internal/search"
)

// Problem adapts the evaluator into the domain-independent search contract
// consumed by every DSE technique. The evaluation budget counts unique
// design points (memoized re-visits are free, matching how the paper counts
// DSE iterations).
func (e *Evaluator) Problem(budget int) *search.Problem {
	return &search.Problem{
		Space:  e.cfg.Space,
		Budget: budget,
		Evaluate: func(pt arch.Point) search.Costs {
			r := e.Evaluate(pt)
			return search.Costs{
				Objective:      r.Objective,
				Feasible:       r.Feasible,
				MeetsAreaPower: r.MeetsAreaPower,
				BudgetUtil:     r.BudgetUtil,
				Violations:     len(r.Violations),
				Raw:            r,
			}
		},
	}
}
