package eval

import (
	"testing"

	"xdse/internal/evalcache"
)

func TestParseMapperMode(t *testing.T) {
	for _, mode := range []MapperMode{FixedDataflow, RandomMappings, PrunedMappings} {
		got, ok := ParseMapperMode(mode.String())
		if !ok || got != mode {
			t.Fatalf("ParseMapperMode(%q) = %v, %v", mode.String(), got, ok)
		}
	}
	if _, ok := ParseMapperMode("no-such-mode"); ok {
		t.Fatal("ParseMapperMode accepted an unknown name")
	}
}

func TestMemoized(t *testing.T) {
	s := spaceWithDummyParam(3)
	ev := New(cacheTestConfig(s, PrunedMappings))
	pt := campaignPoints(s, 1)[0]
	if ev.Memoized(pt) {
		t.Fatal("fresh evaluator claims a memoized point")
	}
	ev.Evaluate(pt)
	if !ev.Memoized(pt) {
		t.Fatal("evaluated point not memoized")
	}
}

// TestRecordsRoundTripBitIdentical is the fleet transport contract: records
// exported from the evaluator that computed a point, installed into a
// completely fresh evaluator, must make that evaluator's own evaluation
// bit-identical without re-running any layer search — in all three mapper
// modes, across the wire codec.
func TestRecordsRoundTripBitIdentical(t *testing.T) {
	s := spaceWithDummyParam(3)
	pts := campaignPoints(s, 6)
	for _, mode := range []MapperMode{FixedDataflow, RandomMappings, PrunedMappings} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := cacheTestConfig(s, mode)
			worker := New(cfg)
			var want []*Result
			var wire []string
			for _, pt := range pts {
				want = append(want, worker.Evaluate(pt))
				for _, rec := range worker.RecordsFor(pt) {
					data, err := evalcache.EncodeRecord(rec, "v-test")
					if err != nil {
						t.Fatal(err)
					}
					wire = append(wire, string(data))
				}
			}
			if len(wire) == 0 {
				t.Fatal("worker exported no records")
			}

			coord := New(cfg)
			var recs []evalcache.Record
			for _, line := range wire {
				rec, ver, err := evalcache.DecodeRecord(line)
				if err != nil || ver != "v-test" {
					t.Fatalf("decode %q: %v (version %q)", line, err, ver)
				}
				recs = append(recs, rec)
			}
			installed := coord.InstallRecords(recs)
			if installed == 0 {
				t.Fatal("coordinator installed no records")
			}
			// Duplicate installs must be no-ops, not double merges.
			if again := coord.InstallRecords(recs); again != 0 {
				t.Fatalf("re-install installed %d records, want 0", again)
			}
			for i, pt := range pts {
				got := coord.Evaluate(pt)
				if err := resultsEquivalent(want[i], got); err != nil {
					t.Fatalf("point %v differs after record install: %v", pt.Key(), err)
				}
			}
			if st := coord.Stats(); st.LayerMisses != 0 {
				t.Errorf("prefilled evaluator re-ran %d layer searches", st.LayerMisses)
			}
		})
	}
}

// TestInstallFromStore is the coordinator resume contract: given only the
// record IDs a shard journal names, a fresh evaluator over the same
// persistent cache re-installs exactly those records and then evaluates the
// point bit-identically without re-running a single layer search; IDs the
// store no longer holds are reported missing, never fatal.
func TestInstallFromStore(t *testing.T) {
	s := spaceWithDummyParam(3)
	pt := campaignPoints(s, 1)[0]
	cacheDir := t.TempDir()
	cfg := cacheTestConfig(s, PrunedMappings)
	cfg.CacheDir = cacheDir

	worker := New(cfg)
	want := worker.Evaluate(pt)
	recs := worker.RecordsFor(pt)
	if len(recs) == 0 {
		t.Fatal("no records exported")
	}
	ids := make([]string, 0, len(recs))
	for _, rec := range recs {
		ids = append(ids, rec.Key.ID())
	}

	resumed := New(cfg)
	installed, missing := resumed.InstallFromStore(ids)
	if installed != len(ids) || missing != 0 {
		t.Fatalf("InstallFromStore = %d installed, %d missing; want %d, 0", installed, missing, len(ids))
	}
	// Re-installing already-cached IDs counts toward neither bucket.
	if in, miss := resumed.InstallFromStore(ids); in != 0 || miss != 0 {
		t.Fatalf("re-install = %d installed, %d missing; want 0, 0", in, miss)
	}
	got := resumed.Evaluate(pt)
	if err := resultsEquivalent(want, got); err != nil {
		t.Fatalf("resumed evaluation differs: %v", err)
	}
	if st := resumed.Stats(); st.LayerMisses != 0 {
		t.Fatalf("resumed evaluator re-ran %d layer searches", st.LayerMisses)
	}

	// Unknown IDs are missing, known ones still install alongside them.
	fresh := New(cfg)
	if in, miss := fresh.InstallFromStore(append([]string{"no-such-id"}, ids...)); in != len(ids) || miss != 1 {
		t.Fatalf("mixed install = %d installed, %d missing; want %d, 1", in, miss, len(ids))
	}

	// No store attached: everything is missing — the caller re-dispatches.
	noStore := New(cacheTestConfig(s, PrunedMappings))
	if in, miss := noStore.InstallFromStore(ids); in != 0 || miss != len(ids) {
		t.Fatalf("storeless install = %d installed, %d missing; want 0, %d", in, miss, len(ids))
	}
}

// TestInstallRecordsRejectsMismatched proves a record addressed to a
// different configuration can never answer a local search: wrong mode,
// wrong trial budget, and (in random mode) wrong seed all fail the
// persistKey round-trip and are skipped.
func TestInstallRecordsRejectsMismatched(t *testing.T) {
	s := spaceWithDummyParam(3)
	pt := campaignPoints(s, 1)[0]
	cfg := cacheTestConfig(s, PrunedMappings)
	worker := New(cfg)
	worker.Evaluate(pt)
	recs := worker.RecordsFor(pt)
	if len(recs) == 0 {
		t.Fatal("no records exported")
	}

	t.Run("wrong-trials", func(t *testing.T) {
		other := cfg
		other.MapTrials = cfg.MapTrials * 2
		coord := New(other)
		if n := coord.InstallRecords(recs); n != 0 {
			t.Fatalf("installed %d records with a different trial budget", n)
		}
	})
	t.Run("wrong-mode", func(t *testing.T) {
		other := cfg
		other.Mode = FixedDataflow
		coord := New(other)
		if n := coord.InstallRecords(recs); n != 0 {
			t.Fatalf("installed %d pruned-mode records into a fixed-dataflow evaluator", n)
		}
	})
	t.Run("wrong-seed-random-mode", func(t *testing.T) {
		rcfg := cacheTestConfig(s, RandomMappings)
		rworker := New(rcfg)
		rworker.Evaluate(pt)
		rrecs := rworker.RecordsFor(pt)
		if len(rrecs) == 0 {
			t.Fatal("no random-mode records exported")
		}
		other := rcfg
		other.Seed = rcfg.Seed + 1
		coord := New(other)
		if n := coord.InstallRecords(rrecs); n != 0 {
			t.Fatalf("installed %d records across a seed change", n)
		}
	})
}
