package eval

import (
	"xdse/internal/arch"
	"xdse/internal/evalcache"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// ParseMapperMode resolves a MapperMode from its String() name — the inverse
// the fleet protocol needs to reconstruct an evaluator configuration from a
// wire request. Unknown names report ok=false rather than defaulting, so a
// coordinator/worker mode skew is a rejected request, never a silently
// different search.
func ParseMapperMode(s string) (MapperMode, bool) {
	for _, m := range []MapperMode{FixedDataflow, RandomMappings, PrunedMappings} {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}

// Memoized reports whether pt's evaluation is currently answerable from the
// design memo without any computation. The distributed coordinator uses it
// to skip remote prefetch for points an optimizer is merely revisiting.
func (e *Evaluator) Memoized(pt arch.Point) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.cache[pt.Key()]
	return ok
}

// RecordsFor returns the content-addressed layer-search records this
// evaluator currently holds for design point pt — one per unique
// (layer shape, sub-key[, salt]) across the configured models, keyed exactly
// as the persistent store would key them. This is the worker half of the
// fleet protocol: after evaluating pt, a worker exports the layer records so
// the coordinator can install them and replay the design evaluation locally,
// bit-identically, from cache hits alone. Entries not (or no longer) in the
// layer cache are simply absent — the coordinator recomputes those layers
// itself, so a partial export degrades to extra local work, never wrongness.
func (e *Evaluator) RecordsFor(pt arch.Point) []evalcache.Record {
	if e.cfg.DisableLayerCache {
		return nil
	}
	d, err := e.cfg.Space.Decode(pt)
	if err != nil {
		return nil
	}
	sub := perf.MappingSubKey(d)
	var out []evalcache.Record
	seen := make(map[layerCacheKey]bool)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, mdl := range e.cfg.Models {
		for i := range mdl.Layers {
			key := e.layerKeyFor(mdl.Layers[i], sub, int64(i))
			if seen[key] {
				continue
			}
			seen[key] = true
			ent, ok := e.lcache[key]
			if !ok {
				continue
			}
			out = append(out, evalcache.Record{Key: e.persistKey(key), Entry: toPersist(ent)})
		}
	}
	return out
}

// InstallRecords seeds the evaluator's layer-grain cache (and the attached
// persistent store, when one exists) with content-addressed records computed
// elsewhere — the coordinator half of the fleet protocol. Each record's key
// is inverted to this evaluator's in-memory cache key and then re-derived
// through persistKey; a record that does not round-trip (different mode,
// trial budget, or random-mode seed) is skipped, so a mis-addressed or
// stale-configuration record can never answer a local search. Installed
// entries are exactly what a local search would have produced (the
// content-address contract), so subsequent evaluations answering from them
// are bit-identical to evaluations that never saw the records. Returns the
// number of records newly installed.
func (e *Evaluator) InstallRecords(recs []evalcache.Record) int {
	if e.cfg.DisableLayerCache {
		return 0
	}
	n := 0
	for _, rec := range recs {
		key := layerCacheKey{shape: rec.Key.Shape, sub: rec.Key.Sub}
		if e.cfg.Mode == RandomMappings {
			// persistKey resolves salt as Seed*1_000_003 + layer index;
			// invert it so the in-memory key carries the layer index again.
			// The decomposition is unique only while the index stays below
			// the multiplier, so an out-of-range result means the record
			// was keyed under a different seed — reject it (the plain
			// round-trip below cannot see a seed delta: the salt absorbs it).
			key.salt = rec.Key.Salt - e.cfg.Seed*1_000_003
			if key.salt < 0 || key.salt >= 1_000_003 {
				continue
			}
		}
		if e.persistKey(key) != rec.Key {
			continue
		}
		ent := fromPersist(rec.Entry)
		e.mu.Lock()
		if _, ok := e.lcache[key]; ok {
			e.mu.Unlock()
			continue
		}
		e.storeLayer(key, ent)
		if ent.found {
			e.storeWarm(key.shape, warmEntry{mapping: ent.mapping, perf: ent.perf})
		}
		e.mu.Unlock()
		if e.store != nil {
			e.store.Put(rec.Key, rec.Entry)
		}
		n++
	}
	return n
}

// InstallFromStore re-installs records by content address from the attached
// persistent store — the fleet coordinator's resume path. A resumed
// coordinator knows from its shard journal *which* record IDs a completed
// shard produced; the records themselves live in the evalcache, so this
// fetches each by ID and installs it through InstallRecords (inheriting its
// full round-trip validation). Returns the count newly installed and the
// count the store no longer holds; an ID that resolves but is already cached
// locally counts toward neither. With no store attached everything is
// missing — callers then simply re-dispatch, trading speed, never
// correctness.
func (e *Evaluator) InstallFromStore(ids []string) (installed, missing int) {
	if e.store == nil {
		return 0, len(ids)
	}
	for _, id := range ids {
		rec, ok := e.store.GetByID(id)
		if !ok {
			missing++
			continue
		}
		installed += e.InstallRecords([]evalcache.Record{rec})
	}
	return installed, missing
}

// layerKeyFor builds the in-memory layer-cache key for one layer of a model
// on a design with sub-key sub, mirroring layerResult's derivation (the salt
// participates in RandomMappings mode only). Caller need not hold e.mu.
func (e *Evaluator) layerKeyFor(l workload.Layer, sub string, salt int64) layerCacheKey {
	key := layerCacheKey{shape: l.ShapeKey(), sub: sub}
	if e.cfg.Mode == RandomMappings {
		key.salt = salt
	}
	return key
}
