package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestPersistCacheBitIdenticalAcrossRestart is the tentpole acceptance
// criterion: a fresh evaluator over a populated cache directory — the
// process-restart shape — must answer every repeated layer search from disk
// with results bit-identical to the run that computed them, in all three
// mapper modes.
func TestPersistCacheBitIdenticalAcrossRestart(t *testing.T) {
	s := spaceWithDummyParam(3)
	pts := campaignPoints(s, 12)
	for _, mode := range []MapperMode{FixedDataflow, RandomMappings, PrunedMappings} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := cacheTestConfig(s, mode)
			cfg.CacheDir = dir

			first := New(cfg)
			var want []*Result
			for _, pt := range pts {
				want = append(want, first.Evaluate(pt))
			}
			if st := first.Stats(); st.PersistWrites == 0 {
				t.Fatalf("cold run persisted nothing (stats %+v)", st)
			}

			// "Restart": a brand-new evaluator with empty in-memory caches,
			// sharing only the directory.
			second := New(cfg)
			for i, pt := range pts {
				got := second.Evaluate(pt)
				if err := resultsEquivalent(want[i], got); err != nil {
					t.Fatalf("point %v not bit-identical after restart: %v", pt.Key(), err)
				}
			}
			st := second.Stats()
			if st.PersistHits == 0 {
				t.Fatal("warm restart produced no persistent-cache hits")
			}
			// The identical campaign was fully persisted, so no layer search
			// may run again — far above the >=50% acceptance floor.
			if st.LayerMisses != 0 {
				t.Errorf("warm restart re-ran %d layer searches", st.LayerMisses)
			}
			if st.PersistHits < st.PersistMisses {
				t.Errorf("persistent store answered %d of %d lookups, want >= half",
					st.PersistHits, st.PersistHits+st.PersistMisses)
			}
		})
	}
}

// TestPersistCacheCorruptionDegradesToMiss corrupts and truncates the cache
// file between runs and checks the durability contract: damage may cost
// recomputes, never wrongness.
func TestPersistCacheCorruptionDegradesToMiss(t *testing.T) {
	s := spaceWithDummyParam(3)
	pts := campaignPoints(s, 9)
	cold := cacheTestConfig(s, PrunedMappings)
	cold.DisableLayerCache = true
	cold.WarmStart = WarmOff
	ec := New(cold)
	var want []*Result
	for _, pt := range pts {
		want = append(want, ec.Evaluate(pt))
	}

	for _, damage := range []struct {
		name string
		do   func(t *testing.T, path string)
	}{
		{"corrupt-byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate-tail", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := cacheTestConfig(s, PrunedMappings)
			cfg.CacheDir = dir
			first := New(cfg)
			for _, pt := range pts {
				first.Evaluate(pt)
			}
			damage.do(t, filepath.Join(dir, "evalcache.jsonl"))

			second := New(cfg)
			for i, pt := range pts {
				if err := resultsEquivalent(want[i], second.Evaluate(pt)); err != nil {
					t.Fatalf("damaged cache changed results at %v: %v", pt.Key(), err)
				}
			}
			st := second.Stats()
			if st.PersistCorrupt == 0 {
				t.Error("damage went uncounted (PersistCorrupt = 0)")
			}
		})
	}
}

// TestPersistCacheSeedIsolation guards the random-mode key derivation: two
// runs differing only in Config.Seed draw different mappings, so they must
// not share persisted entries.
func TestPersistCacheSeedIsolation(t *testing.T) {
	s := spaceWithDummyParam(2)
	pts := campaignPoints(s, 6)
	dir := t.TempDir()

	seedCfg := func(seed int64, cacheDir string) Config {
		cfg := cacheTestConfig(s, RandomMappings)
		cfg.Seed = seed
		cfg.CacheDir = cacheDir
		return cfg
	}
	// Populate the store under seed 1.
	first := New(seedCfg(1, dir))
	for _, pt := range pts {
		first.Evaluate(pt)
	}
	// A seed-2 run over the same directory must reproduce the uncached
	// seed-2 results, not replay seed-1 entries.
	uncached := New(seedCfg(2, ""))
	shared := New(seedCfg(2, dir))
	for _, pt := range pts {
		if err := resultsEquivalent(uncached.Evaluate(pt), shared.Evaluate(pt)); err != nil {
			t.Fatalf("seed-2 run contaminated by seed-1 cache at %v: %v", pt.Key(), err)
		}
	}
	if st := shared.Stats(); st.PersistHits != 0 {
		t.Errorf("seed-2 run hit %d seed-1 entries", st.PersistHits)
	}
}

// TestPersistCacheConcurrentEvaluators drives two evaluators with separate
// stores over one directory concurrently — run under -race in CI. Results
// must match a serial evaluator's exactly.
func TestPersistCacheConcurrentEvaluators(t *testing.T) {
	s := spaceWithDummyParam(2)
	pts := campaignPoints(s, 8)
	serial := New(cacheTestConfig(s, PrunedMappings))
	var want []*Result
	for _, pt := range pts {
		want = append(want, serial.Evaluate(pt))
	}

	dir := t.TempDir()
	cfg := cacheTestConfig(s, PrunedMappings)
	cfg.CacheDir = dir
	evs := []*Evaluator{New(cfg), New(cfg)}
	errs := make([]error, len(evs))
	var wg sync.WaitGroup
	for gi, e := range evs {
		wg.Add(1)
		go func(gi int, e *Evaluator) {
			defer wg.Done()
			for i, pt := range pts {
				if err := resultsEquivalent(want[i], e.Evaluate(pt)); err != nil {
					errs[gi] = fmt.Errorf("evaluator %d, point %v: %w", gi, pt.Key(), err)
					return
				}
			}
		}(gi, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWarmIndexBounded is the memory-leak regression test: the warm-start
// index must stay within 8x the design-memo cap no matter how many distinct
// shapes stream through a long-running evaluator.
func TestWarmIndexBounded(t *testing.T) {
	cfg := cacheTestConfig(spaceWithDummyParam(2), PrunedMappings)
	cfg.CacheCap = 1 // warm bound: 8
	e := New(cfg)
	var we warmEntry
	for i := 0; i < 50; i++ {
		e.mu.Lock()
		e.storeWarm(fmt.Sprintf("shape-%d", i), we)
		e.mu.Unlock()
	}
	e.mu.Lock()
	n := len(e.warm)
	e.mu.Unlock()
	if n > 8 {
		t.Errorf("warm index holds %d shapes, cap 8", n)
	}
	if st := e.Stats(); st.WarmEvictions != 42 {
		t.Errorf("WarmEvictions = %d, want 42", st.WarmEvictions)
	}
}

// TestEnumStringsOutOfRange: mode/objective/warm-start names must render, not
// panic, for values outside the defined range (e.g. a corrupted job spec).
func TestEnumStringsOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{MapperMode(99).String(), "unknown(99)"},
		{MapperMode(-1).String(), "unknown(-1)"},
		{Objective(42).String(), "unknown(42)"},
		{WarmStartMode(-3).String(), "unknown(-3)"},
		{MapperMode(2).String(), "pruned-mappings"},
	} {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
	if s := MapperMode(7).String(); !strings.Contains(s, "7") {
		t.Errorf("out-of-range String() %q should embed the value", s)
	}
}
