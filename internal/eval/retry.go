package eval

import "time"

// ErrClass classifies an evaluation failure for the transient-fault retry
// layer. The classes draw the line the serving layer's correctness depends
// on: a transient failure (a contained crash, a watchdog timeout, an
// injected flaky fault) describes the attempt, not the design, so it must
// never be charged, memoized, cached, or journaled as if the design itself
// were infeasible — it is retried under RetryPolicy and only becomes
// permanent once the attempt budget is exhausted. A permanent failure (a
// malformed point, a deliberate injected error) describes the design and is
// charged and memoized on the first attempt.
type ErrClass int

const (
	// ClassNone marks a successful evaluation (Result.Err is empty).
	ClassNone ErrClass = iota
	// ClassTransient marks a failure worth retrying: recovered panics,
	// watchdog timeouts, and injected FailFirstN/SlowFirstN faults. A
	// transient result is only ever visible to callers after the retry
	// budget is exhausted — at which point it has been reclassified
	// ClassPermanent — so memo, cache, journal, and budget accounting
	// never observe ClassTransient.
	ClassTransient
	// ClassPermanent marks a failure retrying cannot heal: malformed
	// points, injected ErrorAt faults, and transient failures that
	// survived every attempt. Permanent failures are charged against the
	// unique-design budget and memoized exactly like any other result.
	ClassPermanent
)

// String names the class.
func (c ErrClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	}
	return "unknown"
}

// RetryPolicy bounds the transient-fault retry loop of EvaluateCtx. The
// backoff is deliberately jitter-free — attempt n waits Backoff·2^(n-1),
// capped at BackoffCap — because determinism is a repository-wide contract:
// a retried evaluation must yield bit-identical results (and, under
// Workers=1, a bit-identical attempt sequence) on every run, so chaos tests
// can compare fingerprints against fault-free references.
type RetryPolicy struct {
	// MaxAttempts is the total number of evaluation attempts per design
	// (first try included). Values below 2 disable retries: every failure
	// is final on its first attempt.
	MaxAttempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it. Zero retries immediately.
	Backoff time.Duration
	// BackoffCap caps the doubled backoff (0 = uncapped).
	BackoffCap time.Duration
}

// DefaultRetry is the policy the serving layer applies when its options
// leave the policy zero: three attempts with a 10ms base backoff, capped at
// one second.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond, BackoffCap: time.Second}
}

// attempts resolves the effective attempt count (always at least one).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delayBefore returns the deterministic backoff applied before the given
// retry (1-based: delayBefore(1) precedes the second attempt).
func (p RetryPolicy) delayBefore(retry int) time.Duration {
	d := p.Backoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if p.BackoffCap > 0 && d >= p.BackoffCap {
			return p.BackoffCap
		}
		if d <= 0 { // overflow backstop
			return p.BackoffCap
		}
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}
