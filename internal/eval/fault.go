package eval

import "time"

// FaultPolicy deterministically injects failures into chosen evaluations so
// tests can prove the resilience layer — panic containment, errored-design
// accounting, watchdog timeouts, and kill-and-resume determinism — without
// touching the models themselves.
//
// Faults are addressed by unique-evaluation ordinal: the 0-based order in
// which never-before-seen design keys begin evaluating. Memoized revisits,
// in-flight joins, recomputes of evicted designs, and checkpoint-primed keys
// never consume an ordinal, so under Workers=1 the ordinal sequence is fully
// deterministic. A fault therefore fires at most once per unique design: a
// panicked or errored evaluation is charged and memoized, so the design is
// never retried.
type FaultPolicy struct {
	// PanicAt lists unique-evaluation ordinals whose evaluation panics
	// (exercising the containment and recovery paths).
	PanicAt []int
	// ErrorAt lists ordinals whose evaluation returns an injected errored
	// result without running the models.
	ErrorAt []int
	// DelayAt lists ordinals whose evaluation sleeps for Delay before
	// starting (exercising the Config.EvalTimeout watchdog; the sleep is
	// cancellable by the evaluation context).
	DelayAt []int
	// Delay is the sleep applied at DelayAt ordinals.
	Delay time.Duration
	// OnEvaluation, when non-nil, is called synchronously at the start of
	// every unique evaluation with its ordinal — the hook kill-and-resume
	// tests use to cancel a campaign at an exact evaluation index. It runs
	// outside the panic-containment envelope; it must not panic.
	OnEvaluation func(ord int)
}

// contains reports whether ord appears in the (typically tiny) list.
func contains(list []int, ord int) bool {
	for _, v := range list {
		if v == ord {
			return true
		}
	}
	return false
}

// panicAt reports whether this ordinal's evaluation should panic.
func (p *FaultPolicy) panicAt(ord int) bool { return p != nil && contains(p.PanicAt, ord) }

// errorAt reports whether this ordinal's evaluation should fail with an
// injected error.
func (p *FaultPolicy) errorAt(ord int) bool { return p != nil && contains(p.ErrorAt, ord) }

// delayFor returns the sleep to apply before this ordinal's evaluation
// (zero for ordinals not in DelayAt).
func (p *FaultPolicy) delayFor(ord int) time.Duration {
	if p != nil && contains(p.DelayAt, ord) {
		return p.Delay
	}
	return 0
}
