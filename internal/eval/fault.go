package eval

import "time"

// FaultPolicy deterministically injects failures into chosen evaluations so
// tests can prove the resilience layer — panic containment, errored-design
// accounting, watchdog timeouts, transient-fault retries, and
// kill-and-resume determinism — without touching the models themselves.
//
// Faults are addressed by unique-evaluation ordinal: the 0-based order in
// which never-before-seen design keys begin evaluating. Memoized revisits,
// in-flight joins, recomputes of evicted designs, and checkpoint-primed keys
// never consume an ordinal, so under Workers=1 the ordinal sequence is fully
// deterministic. Retried attempts of the same design (see RetryPolicy) share
// one ordinal; injection sites are therefore addressed by (ordinal, attempt):
//
//   - The single-shot lists (PanicAt, ErrorAt, DelayAt) fire on the first
//     attempt only. Without retries a fired fault is final — the errored
//     design is charged and memoized, never retried. With retries enabled,
//     a transient-classified single-shot fault (a panic, a watchdog
//     timeout) heals on the second attempt.
//   - The attempt-aware maps (FailFirstN, SlowFirstN) fire on every attempt
//     below their threshold, so the retry/backoff paths are testable
//     deterministically under Workers=1.
type FaultPolicy struct {
	// PanicAt lists unique-evaluation ordinals whose first attempt panics
	// (exercising the containment and recovery paths).
	PanicAt []int
	// ErrorAt lists ordinals whose first attempt returns an injected
	// permanently-errored result without running the models. ErrorAt
	// faults are classified ClassPermanent: they are never retried.
	ErrorAt []int
	// DelayAt lists ordinals whose first attempt sleeps for Delay before
	// starting (exercising the Config.EvalTimeout watchdog; the sleep is
	// cancellable by the evaluation context).
	DelayAt []int
	// FailFirstN maps a unique-evaluation ordinal to the number of leading
	// attempts that fail with an injected transient error; once that many
	// attempts have failed, later attempts succeed. This is the
	// deterministic test surface of the retry layer: with
	// RetryPolicy.MaxAttempts above the threshold the fault heals and the
	// design evaluates normally, below it the failure goes permanent.
	FailFirstN map[int]int
	// SlowFirstN maps ordinals to the number of leading attempts that
	// sleep for Delay before evaluating. With Config.EvalTimeout below
	// Delay, exactly those attempts become (transient) watchdog timeouts —
	// the deterministic way to exercise the timeout-retry path.
	SlowFirstN map[int]int
	// Delay is the sleep applied at DelayAt and SlowFirstN sites.
	Delay time.Duration
	// OnEvaluation, when non-nil, is called synchronously at the start of
	// every unique evaluation's first attempt with its ordinal — the hook
	// kill-and-resume tests use to cancel a campaign at an exact
	// evaluation index. It runs outside the panic-containment envelope;
	// it must not panic.
	OnEvaluation func(ord int)
}

// contains reports whether ord appears in the (typically tiny) list.
func contains(list []int, ord int) bool {
	for _, v := range list {
		if v == ord {
			return true
		}
	}
	return false
}

// panicAt reports whether this attempt's evaluation should panic.
func (p *FaultPolicy) panicAt(ord, attempt int) bool {
	return p != nil && attempt == 0 && contains(p.PanicAt, ord)
}

// errorAt reports whether this attempt's evaluation should fail with an
// injected permanent error.
func (p *FaultPolicy) errorAt(ord, attempt int) bool {
	return p != nil && attempt == 0 && contains(p.ErrorAt, ord)
}

// transientAt reports whether this attempt's evaluation should fail with an
// injected transient error (the FailFirstN retry-layer surface).
func (p *FaultPolicy) transientAt(ord, attempt int) bool {
	return p != nil && attempt < p.FailFirstN[ord]
}

// delayFor returns the sleep to apply before this attempt's evaluation
// (zero for sites not in DelayAt or below their SlowFirstN threshold).
func (p *FaultPolicy) delayFor(ord, attempt int) time.Duration {
	if p == nil {
		return 0
	}
	if attempt == 0 && contains(p.DelayAt, ord) {
		return p.Delay
	}
	if attempt < p.SlowFirstN[ord] {
		return p.Delay
	}
	return 0
}
