package eval

import (
	"math"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/workload"
)

func newEval(mode MapperMode, models ...*workload.Model) *Evaluator {
	if len(models) == 0 {
		models = []*workload.Model{workload.ResNet18()}
	}
	return New(Config{
		Space:       arch.EdgeSpace(),
		Models:      models,
		Constraints: EdgeConstraints(),
		Mode:        mode,
		MapTrials:   200,
		Seed:        1,
	})
}

func compatiblePoint(space *arch.Space) arch.Point {
	pt := space.Initial()
	pt[arch.PPEs] = 2
	pt[arch.PL1] = 4
	pt[arch.PL2] = 3
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PVirt0+op] = 2
	}
	return pt
}

func TestEvaluateCaches(t *testing.T) {
	e := newEval(FixedDataflow)
	pt := compatiblePoint(e.Config().Space)
	r1 := e.Evaluate(pt)
	r2 := e.Evaluate(pt)
	if r1 != r2 {
		t.Fatal("second evaluation should hit the cache")
	}
	if e.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1", e.Evaluations())
	}
	e.ResetCount()
	if e.Evaluations() != 0 {
		t.Fatal("reset failed")
	}
	// Cache retained after reset.
	if e.Evaluate(pt) != r1 || e.Evaluations() != 0 {
		t.Fatal("cache lost after reset")
	}
}

func TestEvaluateFixedDataflow(t *testing.T) {
	e := newEval(FixedDataflow)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	me := r.Models[0]
	if me.Incompatible {
		t.Fatal("compatible point evaluated incompatible")
	}
	if len(me.Layers) != 9 {
		t.Fatalf("layers = %d", len(me.Layers))
	}
	if me.Cycles <= 0 || math.IsInf(me.Cycles, 1) {
		t.Fatalf("cycles = %v", me.Cycles)
	}
	// Latency unit conversion: cycles at 500 MHz.
	want := me.Cycles / (500 * 1e3)
	if math.Abs(me.LatencyMs-want) > 1e-9 {
		t.Fatalf("latency = %v, want %v", me.LatencyMs, want)
	}
	if r.LatencyMs != me.LatencyMs {
		t.Fatal("single-model objective must equal the model latency")
	}
	if me.EnergyMJ <= 0 {
		t.Fatal("energy must be positive")
	}
	// Multiplicity weighting: total cycles exceed the unique-layer sum.
	var uniq float64
	for _, le := range me.Layers {
		uniq += le.Perf.Cycles
	}
	if me.Cycles <= uniq {
		t.Fatal("multiplicity weighting missing")
	}
}

func TestIncompatibleDesignGrading(t *testing.T) {
	e := newEval(FixedDataflow)
	space := e.Config().Space
	r := e.Evaluate(space.Initial())
	if !r.Models[0].Incompatible {
		t.Skip("initial design unexpectedly compatible")
	}
	if !math.IsInf(r.LatencyMs, 1) {
		t.Fatal("incompatible design must have infinite latency")
	}
	if r.Feasible {
		t.Fatal("incompatible design cannot be feasible")
	}
	if r.BudgetUtil < 100 {
		t.Fatalf("incompatibility penalty too small: %v", r.BudgetUtil)
	}

	// Fixing one NoC must strictly reduce the budget (the §4.6 progress
	// signal the DSE relies on).
	pt := space.Initial()
	pt[arch.PVirt0+int(arch.OpI)] = 2
	r2 := e.Evaluate(pt)
	if !r2.Models[0].Incompatible {
		t.Skip("single fix unexpectedly sufficient")
	}
	if r2.BudgetUtil >= r.BudgetUtil {
		t.Fatalf("partial fix did not reduce budget: %v -> %v", r.BudgetUtil, r2.BudgetUtil)
	}
}

func TestConstraintChecks(t *testing.T) {
	e := newEval(FixedDataflow)
	space := e.Config().Space
	pt := space.Initial()
	for i := range pt {
		pt[i] = len(space.Params[i].Values) - 1
	}
	r := e.Evaluate(pt)
	if r.MeetsAreaPower {
		t.Fatal("maximal design must violate area/power")
	}
	if len(r.Violations) == 0 {
		t.Fatal("violations not reported")
	}
	if r.Feasible {
		t.Fatal("violating design reported feasible")
	}
}

func TestThroughputConstraint(t *testing.T) {
	e := newEval(FixedDataflow)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	me := r.Models[0]
	wantMeets := me.LatencyMs <= me.Model.MaxLatencyMs
	if me.MeetsThroughput != wantMeets {
		t.Fatal("throughput check inconsistent")
	}
	if !wantMeets && r.Feasible {
		t.Fatal("feasible despite missing throughput")
	}
}

func TestBudgetUtilIsMeanOfUtilizations(t *testing.T) {
	e := newEval(FixedDataflow)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	if r.Models[0].Incompatible {
		t.Skip("point incompatible")
	}
	c := EdgeConstraints()
	want := (r.AreaMM2/c.MaxAreaMM2 + r.PowerW/c.MaxPowerW +
		r.Models[0].LatencyMs/r.Models[0].Model.MaxLatencyMs) / 3
	if math.Abs(r.BudgetUtil-want) > 1e-9 {
		t.Fatalf("budget util = %v, want %v", r.BudgetUtil, want)
	}
}

func TestOptimizedMappingModesBeatNothing(t *testing.T) {
	for _, mode := range []MapperMode{RandomMappings, PrunedMappings} {
		// Random sampling needs a realistic trial budget to hit valid
		// mappings on tight designs (the paper gives it 10,000).
		e := New(Config{
			Space:       arch.EdgeSpace(),
			Models:      []*workload.Model{workload.ResNet18()},
			Constraints: EdgeConstraints(),
			Mode:        mode,
			MapTrials:   2000,
			Seed:        1,
		})
		r := e.Evaluate(compatiblePoint(e.Config().Space))
		if r.Models[0].Incompatible {
			t.Errorf("%v: compatible point found no mappings", mode)
			continue
		}
		if r.MapEvaluations == 0 {
			t.Errorf("%v: no mapping trials recorded", mode)
		}
	}
}

func TestPrunedMappingsAtLeastAsGoodAsFixed(t *testing.T) {
	// The codesign mapper optimizes over a superset including OS-like
	// mappings, so on the same design it should be within a small factor
	// of the fixed dataflow (it can win or approximately tie).
	pt := compatiblePoint(arch.EdgeSpace())
	fixed := newEval(FixedDataflow).Evaluate(pt)
	pruned := newEval(PrunedMappings).Evaluate(pt)
	if pruned.Models[0].Incompatible || fixed.Models[0].Incompatible {
		t.Skip("point incompatible")
	}
	if pruned.LatencyMs > fixed.LatencyMs*3 {
		t.Fatalf("pruned mapping %vms much worse than fixed %vms", pruned.LatencyMs, fixed.LatencyMs)
	}
}

func TestMultiWorkloadObjectiveSums(t *testing.T) {
	e := newEval(FixedDataflow, workload.ResNet18(), workload.MobileNetV2())
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	if len(r.Models) != 2 {
		t.Fatalf("models = %d", len(r.Models))
	}
	want := r.Models[0].LatencyMs + r.Models[1].LatencyMs
	if math.Abs(r.LatencyMs-want) > 1e-9 {
		t.Fatalf("objective = %v, want sum %v", r.LatencyMs, want)
	}
}

func TestProblemAdapter(t *testing.T) {
	e := newEval(FixedDataflow)
	p := e.Problem(50)
	if p.Budget != 50 {
		t.Fatal("budget not propagated")
	}
	pt := compatiblePoint(e.Config().Space)
	c := p.Evaluate(pt)
	r := e.Evaluate(pt)
	if c.Objective != r.LatencyMs || c.Feasible != r.Feasible ||
		c.BudgetUtil != r.BudgetUtil || c.Violations != len(r.Violations) {
		t.Fatal("adapter disagrees with evaluator")
	}
	if c.Raw.(*Result) != r {
		t.Fatal("raw payload must be the evaluation result")
	}
}

func TestEvaluateDeterministicAcrossEvaluators(t *testing.T) {
	pt := compatiblePoint(arch.EdgeSpace())
	for _, mode := range []MapperMode{FixedDataflow, RandomMappings, PrunedMappings} {
		a := newEval(mode).Evaluate(pt)
		b := newEval(mode).Evaluate(pt)
		if a.LatencyMs != b.LatencyMs {
			t.Errorf("%v: non-deterministic latency %v vs %v", mode, a.LatencyMs, b.LatencyMs)
		}
	}
}

func TestWholeSuiteFixedDataflowEvaluates(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide evaluation")
	}
	pt := compatiblePoint(arch.EdgeSpace())
	for _, m := range workload.Suite() {
		e := newEval(FixedDataflow, m)
		r := e.Evaluate(pt)
		if r.Models[0].Incompatible {
			t.Errorf("%s: incompatible on roomy design", m.Name)
			continue
		}
		if r.Models[0].Cycles <= 0 {
			t.Errorf("%s: non-positive cycles", m.Name)
		}
	}
}

func TestMapperModeString(t *testing.T) {
	if FixedDataflow.String() != "fixed-dataflow" ||
		RandomMappings.String() != "random-mappings" ||
		PrunedMappings.String() != "pruned-mappings" {
		t.Fatal("mode names wrong")
	}
}

func TestMinEnergyObjective(t *testing.T) {
	pt := compatiblePoint(arch.EdgeSpace())
	lat := New(Config{
		Space: arch.EdgeSpace(), Models: []*workload.Model{workload.ResNet18()},
		Constraints: EdgeConstraints(), Mode: FixedDataflow, Seed: 1,
	}).Evaluate(pt)
	eng := New(Config{
		Space: arch.EdgeSpace(), Models: []*workload.Model{workload.ResNet18()},
		Constraints: EdgeConstraints(), Mode: FixedDataflow,
		Objective: MinEnergy, Seed: 1,
	}).Evaluate(pt)

	if lat.Objective != lat.LatencyMs {
		t.Fatalf("latency objective = %v, want %v", lat.Objective, lat.LatencyMs)
	}
	if eng.Objective != eng.EnergyMJ {
		t.Fatalf("energy objective = %v, want %v", eng.Objective, eng.EnergyMJ)
	}
	// The underlying evaluation is identical; only the objective differs.
	if lat.LatencyMs != eng.LatencyMs || lat.EnergyMJ != eng.EnergyMJ {
		t.Fatal("objective selection changed the evaluation itself")
	}
	if MinLatency.String() != "min-latency" || MinEnergy.String() != "min-energy" {
		t.Fatal("objective names wrong")
	}
}

func TestLayerEnergySumsToModelEnergy(t *testing.T) {
	e := newEval(FixedDataflow)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	var sum float64
	for _, le := range r.Models[0].Layers {
		sum += le.EnergyMJ
	}
	if math.Abs(sum-r.Models[0].EnergyMJ) > 1e-9 {
		t.Fatalf("layer energies %v != model energy %v", sum, r.Models[0].EnergyMJ)
	}
}
