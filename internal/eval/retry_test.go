package eval

import (
	"context"
	"strings"
	"testing"
	"time"

	"xdse/internal/arch"
	"xdse/internal/workload"
)

// newRetryEval is newFaultEval with a retry policy attached.
func newRetryEval(fp *FaultPolicy, retry RetryPolicy, timeout time.Duration) *Evaluator {
	return New(Config{
		Space:       arch.EdgeSpace(),
		Models:      []*workload.Model{workload.ResNet18()},
		Constraints: EdgeConstraints(),
		Mode:        FixedDataflow,
		MapTrials:   200,
		Seed:        1,
		Workers:     1,
		Faults:      fp,
		Retry:       retry,
		EvalTimeout: timeout,
	})
}

func TestRetryPolicyBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Backoff: 10 * time.Millisecond, BackoffCap: 50 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.delayBefore(i + 1); got != w*time.Millisecond {
			t.Errorf("delayBefore(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if got := (RetryPolicy{}).delayBefore(3); got != 0 {
		t.Errorf("zero-policy delayBefore = %v, want 0", got)
	}
	if got := (RetryPolicy{}).attempts(); got != 1 {
		t.Errorf("zero-policy attempts = %d, want 1", got)
	}
}

// TestTransientErrorHealedByRetry is the core retry contract: a design whose
// first attempts fail with a transient error evaluates bit-identically to a
// fault-free run once a retry succeeds, and the transient failures leave no
// trace in the memo, the budget, or the result.
func TestTransientErrorHealedByRetry(t *testing.T) {
	pt := compatiblePoint(arch.EdgeSpace())

	ref := newRetryEval(nil, RetryPolicy{}, 0).Evaluate(pt)
	if ref.Err != "" {
		t.Fatalf("reference evaluation errored: %q", ref.Err)
	}

	e := newRetryEval(&FaultPolicy{FailFirstN: map[int]int{0: 2}},
		RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}, 0)
	r := e.Evaluate(pt)
	if r.Err != "" {
		t.Fatalf("healed evaluation errored: %q", r.Err)
	}
	if r.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", r.Attempts)
	}
	if r.ErrClass != ClassNone {
		t.Errorf("ErrClass = %v, want none", r.ErrClass)
	}
	if r.Objective != ref.Objective || r.Feasible != ref.Feasible || r.BudgetUtil != ref.BudgetUtil {
		t.Errorf("healed result differs from fault-free: obj %v vs %v", r.Objective, ref.Objective)
	}
	st := e.Stats()
	if st.TransientFaults != 2 || st.Retries != 2 {
		t.Errorf("TransientFaults/Retries = %d/%d, want 2/2", st.TransientFaults, st.Retries)
	}
	if st.Evaluations != 1 {
		t.Errorf("Evaluations = %d, want 1 (retries are not new unique evaluations)", st.Evaluations)
	}
	// The memoized entry is the healed result, not a poisoned failure.
	if again := e.Evaluate(pt); again != r {
		t.Error("healed result not memoized")
	}
}

// TestTransientExhaustedBecomesPermanent: a transient fault that outlives the
// attempt budget is reclassified permanent, charged, and memoized — and the
// fault is never re-fired on revisits.
func TestTransientExhaustedBecomesPermanent(t *testing.T) {
	e := newRetryEval(&FaultPolicy{FailFirstN: map[int]int{0: 5}},
		RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}, 0)
	pt := compatiblePoint(e.Config().Space)
	r := e.Evaluate(pt)
	assertErrored(t, r, "injected fault: transient error")
	if r.ErrClass != ClassPermanent {
		t.Errorf("ErrClass = %v, want permanent", r.ErrClass)
	}
	if !strings.Contains(r.Err, "permanent after 2 attempts") {
		t.Errorf("Err = %q, want the exhaustion suffix", r.Err)
	}
	if r.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", r.Attempts)
	}
	st := e.Stats()
	if st.Evaluations != 1 {
		t.Errorf("Evaluations = %d, want 1 (permanent failure is charged once)", st.Evaluations)
	}
	if again := e.Evaluate(pt); again != r {
		t.Error("permanently-failed design not memoized")
	}
	if st := e.Stats(); st.TransientFaults != 2 {
		t.Errorf("TransientFaults after revisit = %d, want 2 (memo answered, no re-fire)", st.TransientFaults)
	}
}

// TestPanicHealedByRetry: recovered panics are transient, so with retries a
// first-attempt panic heals into a normal evaluation.
func TestPanicHealedByRetry(t *testing.T) {
	e := newRetryEval(&FaultPolicy{PanicAt: []int{0}},
		RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}, 0)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	if r.Err != "" {
		t.Fatalf("panic not healed by retry: %q", r.Err)
	}
	if r.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", r.Attempts)
	}
	st := e.Stats()
	if st.PanicsRecovered != 1 || st.Retries != 1 || st.Evaluations != 1 {
		t.Errorf("stats = %+v, want 1 recovered panic, 1 retry, 1 evaluation", st)
	}
}

// TestWatchdogTimeoutHealedByRetry: a SlowFirstN attempt exceeds the
// watchdog, classifies transient, and the retried attempt succeeds.
func TestWatchdogTimeoutHealedByRetry(t *testing.T) {
	e := newRetryEval(&FaultPolicy{SlowFirstN: map[int]int{0: 1}, Delay: 2 * time.Second},
		RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}, 100*time.Millisecond)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	if r.Err != "" {
		t.Fatalf("timeout not healed by retry: %q", r.Err)
	}
	if r.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", r.Attempts)
	}
	st := e.Stats()
	if st.EvalTimeouts != 1 || st.Retries != 1 {
		t.Errorf("EvalTimeouts/Retries = %d/%d, want 1/1", st.EvalTimeouts, st.Retries)
	}
}

// TestPermanentErrorNotRetried: injected ErrorAt faults are ClassPermanent —
// the retry layer must not spend attempts on them.
func TestPermanentErrorNotRetried(t *testing.T) {
	e := newRetryEval(&FaultPolicy{ErrorAt: []int{0}},
		RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}, 0)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	assertErrored(t, r, "injected fault: error at unique evaluation 0")
	if r.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (permanent errors are final)", r.Attempts)
	}
	if r.ErrClass != ClassPermanent {
		t.Errorf("ErrClass = %v, want permanent", r.ErrClass)
	}
	if st := e.Stats(); st.Retries != 0 {
		t.Errorf("Retries = %d, want 0", st.Retries)
	}
}

// TestRetryBackoffCancellable: cancelling the context during a backoff sleep
// abandons the evaluation — uncharged, unmemoized — like any cancellation.
func TestRetryBackoffCancellable(t *testing.T) {
	e := newRetryEval(&FaultPolicy{FailFirstN: map[int]int{0: 9}},
		RetryPolicy{MaxAttempts: 10, Backoff: time.Hour}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	r := e.EvaluateCtx(ctx, compatiblePoint(e.Config().Space))
	if !r.Cancelled {
		t.Fatalf("result not Cancelled: %+v", r)
	}
	if st := e.Stats(); st.Evaluations != 0 {
		t.Errorf("Evaluations = %d, want 0 (cancelled work is uncharged)", st.Evaluations)
	}
}

// TestDefaultConfigRetriesDisabled: the zero-value policy keeps the
// pre-retry behavior — one attempt, failure charged and memoized — so
// existing campaigns and their fingerprints are unaffected.
func TestDefaultConfigRetriesDisabled(t *testing.T) {
	e := newRetryEval(&FaultPolicy{PanicAt: []int{0}}, RetryPolicy{}, 0)
	r := e.Evaluate(compatiblePoint(e.Config().Space))
	assertErrored(t, r, "panic during evaluation")
	if r.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", r.Attempts)
	}
	if r.ErrClass != ClassPermanent {
		t.Errorf("ErrClass = %v, want permanent (no attempts remain)", r.ErrClass)
	}
	if strings.Contains(r.Err, "permanent after") {
		t.Errorf("Err = %q: single-attempt failures must keep their original text", r.Err)
	}
}
