package eval

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"xdse/internal/arch"
	"xdse/internal/energy"
	"xdse/internal/mapping"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// spaceWithDummyParam clones the edge space and appends a parameter the
// decoder does not recognize: points differing only in it are distinct cache
// keys that decode to identical designs. This models mapping-irrelevant
// design knobs (and gives tests/benchmarks a repeated-sub-key workload).
func spaceWithDummyParam(n int) *arch.Space {
	s := arch.EdgeSpace()
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i + 1
	}
	s.Params = append(s.Params, arch.Param{Name: "dram_pj_knob", Values: vals})
	return s
}

// campaignPoints returns a deterministic multi-design workload over the
// space: a spread of designs plus repeats under the dummy parameter when the
// space has one.
func campaignPoints(s *arch.Space, n int) []arch.Point {
	var pts []arch.Point
	base := compatiblePoint(s)
	hasDummy := len(base) > arch.NumParams
	for i := 0; len(pts) < n; i++ {
		pt := base.Clone()
		// With a dummy parameter, repeat each underlying design three
		// times under distinct dummy values so sub-keys recur; without
		// one, every point is a distinct design.
		j := i
		if hasDummy {
			j = i / 3
			pt[arch.NumParams] = s.Clamp(arch.NumParams, i%3)
		}
		pt[arch.PPEs] = s.Clamp(arch.PPEs, 1+j%4)
		pt[arch.PL1] = s.Clamp(arch.PL1, 3+(j/4)%3)
		pt[arch.PBW] = s.Clamp(arch.PBW, (j/12)%5)
		pts = append(pts, pt)
	}
	return pts
}

// resultsEquivalent compares everything the DSE consumes from two Results
// (costs, feasibility, per-layer mappings and breakdowns, trial counts).
func resultsEquivalent(a, b *Result) error {
	if a.LatencyMs != b.LatencyMs || a.EnergyMJ != b.EnergyMJ || a.Objective != b.Objective {
		return fmt.Errorf("costs differ: %v/%v vs %v/%v", a.LatencyMs, a.EnergyMJ, b.LatencyMs, b.EnergyMJ)
	}
	if a.Feasible != b.Feasible || a.BudgetUtil != b.BudgetUtil || a.MapEvaluations != b.MapEvaluations {
		return fmt.Errorf("feasibility/budget/trials differ: %v/%v/%d vs %v/%v/%d",
			a.Feasible, a.BudgetUtil, a.MapEvaluations, b.Feasible, b.BudgetUtil, b.MapEvaluations)
	}
	for mi := range a.Models {
		am, bm := a.Models[mi], b.Models[mi]
		if am.Cycles != bm.Cycles && !(math.IsInf(am.Cycles, 1) && math.IsInf(bm.Cycles, 1)) {
			return fmt.Errorf("model %d cycles differ: %v vs %v", mi, am.Cycles, bm.Cycles)
		}
		for li := range am.Layers {
			al, bl := am.Layers[li], bm.Layers[li]
			if al.Mapping != bl.Mapping {
				return fmt.Errorf("model %d layer %d mappings differ:\n%v\n%v", mi, li, al.Mapping, bl.Mapping)
			}
			if al.Perf != bl.Perf {
				return fmt.Errorf("model %d layer %d breakdowns differ", mi, li)
			}
			if al.MapTrials != bl.MapTrials || al.EnergyMJ != bl.EnergyMJ {
				return fmt.Errorf("model %d layer %d trials/energy differ: %d/%v vs %d/%v",
					mi, li, al.MapTrials, al.EnergyMJ, bl.MapTrials, bl.EnergyMJ)
			}
		}
	}
	return nil
}

func cacheTestConfig(s *arch.Space, mode MapperMode) Config {
	return Config{
		Space:       s,
		Models:      []*workload.Model{workload.ResNet18()},
		Constraints: EdgeConstraints(),
		Mode:        mode,
		MapTrials:   200,
		Seed:        1,
	}
}

// TestLayerCacheBitIdentical is the tentpole acceptance criterion: across a
// multi-design campaign in every mapper mode, the cached + warm-started
// evaluator must return bit-identical Result costs, best mappings, and trial
// counts versus the uncached, cold-searching evaluator.
func TestLayerCacheBitIdentical(t *testing.T) {
	s := spaceWithDummyParam(3)
	pts := campaignPoints(s, 24)
	for _, mode := range []MapperMode{FixedDataflow, RandomMappings, PrunedMappings} {
		cold := cacheTestConfig(s, mode)
		cold.DisableLayerCache = true
		cold.WarmStart = WarmOff
		warm := cacheTestConfig(s, mode)
		ec, ew := New(cold), New(warm)
		for _, pt := range pts {
			rc, rw := ec.Evaluate(pt), ew.Evaluate(pt)
			if err := resultsEquivalent(rc, rw); err != nil {
				t.Fatalf("%v point %v: %v", mode, pt.Key(), err)
			}
		}
		st := ew.Stats()
		if st.LayerHits == 0 {
			t.Errorf("%v: repeated-sub-key campaign produced no layer-cache hits", mode)
		}
		if mode == PrunedMappings && st.WarmProbes == 0 {
			t.Errorf("pruned mode never warm-started despite shape repeats across sub-keys")
		}
		if mode == PrunedMappings && st.CostCalls >= st.MapTrials {
			t.Errorf("pruned mode: lower-bound pruning saved nothing (%d cost calls / %d trials)",
				st.CostCalls, st.MapTrials)
		}
	}
}

// TestLayerCacheHitSkipsSearch checks a dummy-parameter twin (distinct point
// key, identical design) answers every layer from the cache.
func TestLayerCacheHitSkipsSearch(t *testing.T) {
	s := spaceWithDummyParam(2)
	e := New(cacheTestConfig(s, PrunedMappings))
	a := compatiblePoint(s)
	b := a.Clone()
	b[arch.NumParams] = 1
	ra := e.Evaluate(a)
	misses := e.Stats().LayerMisses
	rb := e.Evaluate(b)
	st := e.Stats()
	if st.Evaluations != 2 {
		t.Fatalf("expected 2 design evaluations (distinct keys), got %d", st.Evaluations)
	}
	if st.LayerMisses != misses {
		t.Fatalf("twin design re-ran %d layer searches", st.LayerMisses-misses)
	}
	if st.LayerHits == 0 {
		t.Fatal("twin design produced no layer-cache hits")
	}
	if err := resultsEquivalent(ra, rb); err != nil {
		t.Fatalf("twin designs disagree: %v", err)
	}
}

// TestDesignMemoEviction checks the bounded memo: exceeding the cap evicts
// FIFO, re-evaluating an evicted design is a recompute (not a new unique
// evaluation), and results stay correct after eviction.
func TestDesignMemoEviction(t *testing.T) {
	cfg := cacheTestConfig(arch.EdgeSpace(), FixedDataflow)
	cfg.CacheCap = 2
	e := New(cfg)
	s := cfg.Space
	pts := campaignPoints(s, 5)
	var first []*Result
	for _, pt := range pts {
		first = append(first, e.Evaluate(pt))
	}
	st := e.Stats()
	if st.Evaluations != len(pts) {
		t.Fatalf("evaluations = %d, want %d", st.Evaluations, len(pts))
	}
	if st.Evictions != len(pts)-2 {
		t.Fatalf("evictions = %d, want %d", st.Evictions, len(pts)-2)
	}
	// The oldest point is long evicted: re-evaluating redoes the work as a
	// recompute without charging the unique-design budget.
	r := e.Evaluate(pts[0])
	st = e.Stats()
	if st.Evaluations != len(pts) {
		t.Fatalf("recompute charged the unique budget: %d", st.Evaluations)
	}
	if st.Recomputes != 1 {
		t.Fatalf("recomputes = %d, want 1", st.Recomputes)
	}
	if err := resultsEquivalent(first[0], r); err != nil {
		t.Fatalf("recomputed result differs: %v", err)
	}
	// The newest point is still resident: a pure hit.
	hits := st.CacheHits
	e.Evaluate(pts[len(pts)-1])
	if e.Stats().CacheHits != hits+1 {
		t.Fatal("resident design missed the memo")
	}
	// Unbounded mode never evicts.
	cfg.CacheCap = -1
	eu := New(cfg)
	for _, pt := range pts {
		eu.Evaluate(pt)
	}
	if eu.Stats().Evictions != 0 {
		t.Fatal("unbounded memo evicted")
	}
}

// TestEvaluateModelBoundsGoroutines checks the worker semaphore is acquired
// before spawn: a many-layer model under Workers=1 must not burst one
// goroutine per layer.
func TestEvaluateModelBoundsGoroutines(t *testing.T) {
	layers := make([]workload.Layer, 64)
	for i := range layers {
		layers[i] = workload.Layer{
			Kind: workload.Conv, Name: fmt.Sprintf("l%d", i),
			K: 8 * (i + 1), C: 16, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 1,
		}
	}
	mdl := &workload.Model{Name: "many", Layers: layers, MaxLatencyMs: 1e9}
	cfg := cacheTestConfig(arch.EdgeSpace(), PrunedMappings)
	cfg.Models = []*workload.Model{mdl}
	cfg.Workers = 1
	cfg.DisableLayerCache = true // every layer runs a real search
	e := New(cfg)

	base := runtime.NumGoroutine()
	var maxG int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				if g := int64(runtime.NumGoroutine()); g > atomic.LoadInt64(&maxG) {
					atomic.StoreInt64(&maxG, g)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	e.Evaluate(compatiblePoint(cfg.Space))
	close(stop)
	<-done
	// Workers=1 permits the evaluating goroutine, one worker, the sampler,
	// and some slack for runtime/test goroutines — far below the 64-layer
	// burst the pre-fix code produced.
	if burst := atomic.LoadInt64(&maxG) - int64(base); burst > 16 {
		t.Fatalf("goroutine burst of %d under Workers=1 (64 layers)", burst)
	}
}

// TestLayerEnergyMJGolden pins layerEnergyMJ against hand-computed values on
// a synthetic breakdown with round numbers, covering multiplicity scaling
// and the zero-mult guard.
func TestLayerEnergyMJGolden(t *testing.T) {
	est := energy.Estimate{MACPJ: 2, RFAccessPJ: 1, L2AccessPJ: 4, NoCPerByte: 3, DRAMPerByte: 5}
	var b perf.Breakdown
	b.MACs = 100
	b.DataNoC = [arch.NumOperands]float64{10, 20, 30, 40} // sums to 100 bytes
	b.DataOffchip = [arch.NumOperands]float64{5, 10, 15, 20}

	// pJ = MACs*MACPJ + 3*MACs*RFAccessPJ + (noc/2)*L2AccessPJ
	//    + noc*NoCPerByte + dram*DRAMPerByte
	//    = 200 + 300 + 200 + 300 + 250 = 1250
	le := LayerEval{Layer: workload.Layer{Mult: 1}, Perf: b}
	if got, want := layerEnergyMJ(est, le), 1250e-9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("mult=1: got %v, want %v", got, want)
	}
	le.Layer.Mult = 2
	if got, want := layerEnergyMJ(est, le), 2500e-9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("mult=2: got %v, want %v", got, want)
	}
	// Zero/negative multiplicity is guarded to 1.
	le.Layer.Mult = 0
	if got, want := layerEnergyMJ(est, le), 1250e-9; math.Abs(got-want) > 1e-18 {
		t.Fatalf("mult=0 guard: got %v, want %v", got, want)
	}
}

// TestLayerEnergyMJRealLayers cross-checks layerEnergyMJ on real CONV and
// GEMM evaluations against the documented formula recomputed from the
// breakdown, so the golden test above cannot drift from the implementation.
func TestLayerEnergyMJRealLayers(t *testing.T) {
	d := arch.Design{PEs: 256, L1Bytes: 512, L2KB: 512, OffchipMBps: 8192, NoCWidthBits: 64, FreqMHz: 500}
	for op := range d.PhysLinks {
		d.PhysLinks[op] = 64
		d.VirtLinks[op] = 512
	}
	est := energy.Model{}.Estimate(d)
	layers := []workload.Layer{
		{Kind: workload.Conv, Name: "conv", K: 64, C: 32, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Mult: 3},
		{Kind: workload.Gemm, Name: "gemm", K: 128, C: 256, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Mult: 2},
	}
	for _, l := range layers {
		m := mappingFor(t, d, l)
		b := perf.Evaluate(d, l, m)
		if !b.Valid {
			t.Fatalf("%s: mapping invalid: %s", l.Name, b.Incompat)
		}
		le := LayerEval{Layer: l, Mapping: m, Perf: b}
		var dram, noc float64
		for _, op := range arch.Operands {
			dram += b.DataOffchip[op]
			noc += b.DataNoC[op]
		}
		pj := b.MACs*est.MACPJ + 3*b.MACs*est.RFAccessPJ +
			noc/workload.BytesPerElem*est.L2AccessPJ + noc*est.NoCPerByte + dram*est.DRAMPerByte
		want := pj * float64(l.Mult) * 1e-9
		if got := layerEnergyMJ(est, le); math.Abs(got-want) > 1e-15*math.Abs(want) {
			t.Fatalf("%s: got %v, want %v", l.Name, got, want)
		}
		if layerEnergyMJ(est, le) <= 0 {
			t.Fatalf("%s: non-positive energy", l.Name)
		}
	}
}

// mappingFor finds any valid mapping of l on d via the pruned enumerator.
func mappingFor(t *testing.T, d arch.Design, l workload.Layer) mapping.Mapping {
	t.Helper()
	res := mapping.EnumeratePruned(l, mapping.GenConfig{
		PEs: d.PEs, L1Bytes: d.L1Bytes, L2Bytes: d.L2Bytes(),
		MinN: 10, MaxN: 200, BaseValid: perf.ValidFn(d, l),
	}, perf.CostFn(d, l))
	if !res.Found {
		t.Fatalf("%s: no valid mapping on test design", l.Name)
	}
	return res.Best
}

// TestTierSplitStats checks the two-tier accounting: a pruned-mode campaign
// must report Tier-2 full evaluations (one per completed layer search) while
// the overwhelming majority of perf-model work stays on the Tier-1 fast
// path — FullEvals must be a small fraction of CostCalls.
func TestTierSplitStats(t *testing.T) {
	s := spaceWithDummyParam(2)
	pts := campaignPoints(s, 6)
	for _, mode := range []MapperMode{FixedDataflow, RandomMappings, PrunedMappings} {
		e := New(cacheTestConfig(s, mode))
		for _, pt := range pts {
			e.Evaluate(pt)
		}
		st := e.Stats()
		if st.FullEvals == 0 {
			t.Errorf("%v: no Tier-2 full evaluations recorded", mode)
		}
		if mode == FixedDataflow {
			continue // fixed dataflow makes no search cost calls
		}
		if st.CostCalls == 0 {
			t.Errorf("%v: no Tier-1 cost calls recorded", mode)
			continue
		}
		if st.FullEvals*10 > st.CostCalls {
			t.Errorf("%v: FullEvals %d vs CostCalls %d — Tier 2 is not a small fraction of the work",
				mode, st.FullEvals, st.CostCalls)
		}
	}
}
