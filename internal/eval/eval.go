// Package eval wires the substrates together into the system-under-DSE of
// §4.2: for a hardware design point it optimizes (or fixes) the mapping of
// every unique layer of the target workloads, evaluates latency through the
// analytical performance model, area/power through the energy model, checks
// the Table 1 constraints, and reports per-layer breakdowns at sub-function
// granularity — the interface every DSE technique in this repository
// explores through.
package eval

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"xdse/internal/arch"
	"xdse/internal/energy"
	"xdse/internal/evalcache"
	"xdse/internal/mapping"
	"xdse/internal/obs"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// MapperMode selects the software half of the codesign.
type MapperMode int

const (
	// FixedDataflow uses the output-stationary SOC-MOP schema for every
	// layer (the paper's fixed-dataflow baseline setting).
	FixedDataflow MapperMode = iota
	// RandomMappings optimizes each layer with Timeloop-like random
	// search over the pruned mapping space (black-box codesign setting).
	RandomMappings
	// PrunedMappings optimizes each layer with the dMazeRunner-style
	// pruned linear enumeration (Explainable-DSE codesign setting).
	PrunedMappings
)

// String names the mapper mode. Out-of-range values — reachable through a
// corrupted or hand-edited job spec rescanned at daemon boot — render as
// "unknown(n)" instead of panicking.
func (m MapperMode) String() string {
	names := [...]string{"fixed-dataflow", "random-mappings", "pruned-mappings"}
	if m < 0 || int(m) >= len(names) {
		return fmt.Sprintf("unknown(%d)", int(m))
	}
	return names[m]
}

// Objective selects the cost the DSE minimizes. The paper develops latency
// as its running example (§4.7) and notes the bottleneck-model API carries
// over to other costs; the energy objective exercises that generality with
// an additive energy bottleneck tree (see accelmodel.EnergyTree).
type Objective int

const (
	// MinLatency minimizes the summed workload latency (ms).
	MinLatency Objective = iota
	// MinEnergy minimizes the summed inference energy (mJ), still
	// subject to all Table 1 constraints including throughput.
	MinEnergy
)

// String names the objective, rendering out-of-range values as "unknown(n)".
func (o Objective) String() string {
	names := [...]string{"min-latency", "min-energy"}
	if o < 0 || int(o) >= len(names) {
		return fmt.Sprintf("unknown(%d)", int(o))
	}
	return names[o]
}

// Constraints are the inequality constraints of the exploration (Table 1).
// The latency ceiling is taken per model from the workload definitions.
type Constraints struct {
	MaxAreaMM2 float64
	MaxPowerW  float64
}

// EdgeConstraints returns the Table 1 constraint thresholds.
func EdgeConstraints() Constraints {
	return Constraints{MaxAreaMM2: 75, MaxPowerW: 4}
}

// WarmStartMode selects how the layer-grain cache accelerates a near-miss
// (same layer shape, different mapping-relevant sub-key).
type WarmStartMode int

const (
	// WarmStrict (the default) probes the layer's previously-best mapping
	// through the new design's cost model and lets the enumeration use the
	// probe plus a certified cost lower bound to skip provably-losing cost
	// calls. The contract is strict: the returned best mapping, cycles,
	// and Evaluated counts are bit-identical to a cold run — only the
	// number of cost-model invocations changes (see mapping.GenConfig).
	WarmStrict WarmStartMode = iota
	// WarmOff disables both the incumbent probe and lower-bound pruning,
	// reproducing the fully-cold search (the reference for equivalence
	// tests and cold benchmarks).
	WarmOff
)

// String names the warm-start mode, rendering out-of-range values as
// "unknown(n)".
func (w WarmStartMode) String() string {
	names := [...]string{"warm-strict", "warm-off"}
	if w < 0 || int(w) >= len(names) {
		return fmt.Sprintf("unknown(%d)", int(w))
	}
	return names[w]
}

// DefaultCacheCap is the design-level memo entry bound used when
// Config.CacheCap is zero. It is far above any campaign budget in this
// repository, so eviction only engages on very long-running explorations.
const DefaultCacheCap = 32768

// Config parameterizes an Evaluator.
type Config struct {
	Space       *arch.Space
	Models      []*workload.Model
	Constraints Constraints
	Mode        MapperMode
	// Objective selects the minimized cost (default MinLatency).
	Objective Objective
	// MapTrials is the per-layer mapping search budget in optimized
	// modes (the paper uses 10,000 for black-box mappers and an
	// auto-adjusted top-N space for dMazeRunner).
	MapTrials int
	Seed      int64
	// Workers bounds mapping-search parallelism and sizes the batch
	// evaluation pool of Problem (0 = NumCPU, max 4 as in the paper's
	// evaluation setup).
	Workers int
	// DisableLayerCache turns off the layer-grain mapping cache and the
	// warm-start index; every design evaluation then re-runs every layer's
	// mapping search (the pre-cache behavior, kept for A/B comparisons).
	DisableLayerCache bool
	// WarmStart selects the near-miss acceleration mode (default
	// WarmStrict; results are bit-identical in every mode).
	WarmStart WarmStartMode
	// CacheCap bounds the design-level memo entry count: 0 selects
	// DefaultCacheCap, a negative value disables eviction entirely. The
	// layer-grain cache and the per-shape warm-start index are each
	// bounded at 8x this cap. Unique-design budget accounting is exact
	// under eviction: re-evaluating an evicted design is counted as a
	// recompute, never as a new unique evaluation.
	CacheCap int
	// CacheDir, when non-empty, opens the cross-run persistent evaluation
	// cache (internal/evalcache) in that directory and slots it under the
	// in-memory layer cache: layer searches answered neither by memory nor
	// by an in-flight twin are looked up on disk before the cost model
	// runs, and fresh search results are appended for future runs and
	// other processes. Results are bit-identical with or without it — a
	// persist hit replays the exact entry a cold search would compute. An
	// unopenable directory degrades to no persistent cache with a warning.
	CacheDir string
	// PersistCache injects an already-open store instead of (or in
	// addition to) CacheDir — the serve daemon shares one store across
	// every job's evaluator this way. When set, CacheDir is ignored.
	PersistCache *evalcache.Store
	// EvalTimeout, when positive, arms a per-evaluation watchdog: a design
	// whose evaluation (mapping search included) exceeds the deadline is
	// charged and memoized as infeasible-with-error instead of hanging the
	// campaign. The abandoned computation is left to finish in the
	// background; its layer-cache writes remain valid (they are
	// deterministic), only its design result is discarded.
	EvalTimeout time.Duration
	// Faults, when non-nil, deterministically injects failures (panics,
	// errors, delays) at chosen unique-evaluation ordinals — the
	// fault-injection hook the resilience tests drive.
	Faults *FaultPolicy
	// Retry configures the transient-fault retry layer: attempts that fail
	// with a ClassTransient error (a recovered panic, a watchdog timeout,
	// an injected flaky fault) are retried with a capped, deterministic,
	// jitter-free backoff instead of being memoized as infeasible. Only
	// permanent failures — including transient ones that exhausted the
	// attempt budget — are charged, memoized, and journaled. The zero
	// value disables retries (one attempt; every failure is final).
	Retry RetryPolicy
}

// LayerEval is one layer's evaluation on a design.
type LayerEval struct {
	Layer   workload.Layer
	Mapping mapping.Mapping
	Perf    perf.Breakdown
	// TotalCycles is Perf.Cycles times the layer multiplicity.
	TotalCycles float64
	// EnergyMJ is the layer's inference energy (multiplicity included).
	EnergyMJ float64
	// MapTrials is the number of mappings examined for this layer.
	MapTrials int
}

// ModelEval is one workload's evaluation on a design.
type ModelEval struct {
	Model *workload.Model
	// Layers has one entry per unique layer, in model order.
	Layers []LayerEval
	// Cycles is the whole-network latency in cycles.
	Cycles float64
	// LatencyMs is the whole-network latency in milliseconds.
	LatencyMs float64
	// MeetsThroughput reports the model's latency-ceiling constraint.
	MeetsThroughput bool
	// Incompatible reports that some layer had no valid mapping on this
	// design (a hardware/mapping incompatibility, §6.2).
	Incompatible bool
	// IncompatSeverity is the mean number of incompatibilities per
	// layer; the constraint budget uses it so partially fixing an
	// incompatible design still reads as progress toward feasibility.
	IncompatSeverity float64
	// EnergyMJ is the inference energy in millijoules.
	EnergyMJ float64
}

// Result is the full evaluation of one design point.
type Result struct {
	Point  arch.Point
	Design arch.Design
	Energy energy.Estimate

	Models []ModelEval

	// LatencyMs is the summed latency of all target workloads (infinite
	// when any mapping is incompatible).
	LatencyMs float64
	// EnergyMJ is the summed inference energy of all target workloads.
	EnergyMJ float64
	// Objective is the minimized cost value (latency or energy,
	// depending on the evaluator's configured objective).
	Objective float64
	AreaMM2   float64
	PowerW    float64

	// Feasible reports that area, power, and every model's throughput
	// constraint hold and every layer found a compatible mapping.
	Feasible bool
	// MeetsAreaPower reports the area and power constraints alone
	// (the Fig. 12 feasibility notion without throughput).
	MeetsAreaPower bool
	// Violations lists human-readable violated constraints.
	Violations []string
	// BudgetUtil is the §4.6 constraints budget: the mean of utilized
	// constraint values normalized to their thresholds.
	BudgetUtil float64
	// MapEvaluations counts mapping candidates examined for this design.
	MapEvaluations int
	// Err, when non-empty, explains why the evaluation failed outright (a
	// recovered panic, an injected fault, a malformed point, a watchdog
	// timeout, or cancellation). Errored results are always infeasible.
	Err string
	// ErrClass classifies Err for the retry layer: ClassNone on success,
	// otherwise ClassPermanent — every failure an Evaluate caller can
	// observe has already survived (or was never eligible for) the retry
	// loop, so ClassTransient never escapes except on Cancelled results.
	ErrClass ErrClass
	// Attempts is the number of evaluation attempts this result consumed
	// (above 1 exactly when transient failures were retried).
	Attempts int
	// Cancelled reports the evaluation was abandoned because its context
	// was cancelled. Cancelled results are never cached, never journaled,
	// and never charged against the unique-design budget — re-evaluating
	// the point after resume redoes the work from scratch.
	Cancelled bool
}

// Evaluator evaluates design points with memoization and counts unique
// design evaluations (the DSE iteration currency of the paper). It is safe
// for concurrent use: the memo cache is lock-protected and concurrent
// misses on the same point are deduplicated singleflight-style, so a batch
// of workers racing to the same key computes it exactly once.
type Evaluator struct {
	cfg      Config
	emodel   energy.Model
	cacheCap int // resolved design-memo bound (0 = unbounded)

	mu      sync.Mutex
	cache   map[string]*Result
	flights map[string]*flight
	// seen records every design key ever evaluated and is never evicted,
	// so unique-design budget accounting stays exact under eviction.
	seen  map[string]bool
	order []string // FIFO eviction order of cache keys
	head  int      // first live index of order

	// Layer-grain mapping cache: completed searches keyed by (layer shape,
	// mapping-relevant design sub-key), in-flight searches deduplicated
	// singleflight-style, and a per-shape warm-start index of the best
	// mapping last found for the shape under any sub-key. The warm index
	// is FIFO-bounded like the layer cache (a long-running daemon streams
	// arbitrary layer shapes through one process; an unbounded index is a
	// slow leak).
	lcache   map[layerCacheKey]layerEntry
	lflights map[layerCacheKey]*layerFlight
	lorder   []layerCacheKey
	lhead    int
	warm     map[string]warmEntry
	worder   []string
	whead    int

	// store is the second-level persistent cache (nil when disabled);
	// ownStore reports it was opened by this evaluator from Config.CacheDir
	// (its counters then live in this evaluator's registry).
	store    *evalcache.Store
	ownStore bool

	faultSeq int // next unique-evaluation ordinal (FaultPolicy currency)

	// Instrumentation lives in a private metrics registry (see Metrics);
	// the fields below are the counters resolved once at construction so
	// hot paths never touch the registry map. Counters are atomic — e.mu
	// is not required to bump them — and Stats is a point-in-time view
	// over the same registry, so existing reporting keeps working.
	reg         *obs.Registry
	cEvals      *obs.Counter
	cHits       *obs.Counter
	cDedups     *obs.Counter
	cRecomputes *obs.Counter
	cEvictions  *obs.Counter
	cPanics     *obs.Counter
	cTimeouts   *obs.Counter
	cTransient  *obs.Counter
	cRetries    *obs.Counter
	cLHits      *obs.Counter
	cLMisses    *obs.Counter
	cLDedups    *obs.Counter
	cLEvictions *obs.Counter
	cPHits      *obs.Counter
	cPMisses    *obs.Counter
	cPWrites    *obs.Counter
	cWarmProbes *obs.Counter
	cWarmFalls  *obs.Counter
	cWarmEvict  *obs.Counter
	cCostCalls  *obs.Counter
	cFullEvals  *obs.Counter
	cLBPruned   *obs.Counter
	cTrials     *obs.Counter
	cWallNs     *obs.Counter
	hDesign     *obs.Histogram
	hLayer      *obs.Histogram
}

// flight is one in-progress evaluation other goroutines can wait on.
type flight struct {
	done chan struct{}
	r    *Result
}

// layerCacheKey identifies one layer-grain mapping-search result: the
// canonical layer shape, the design sub-key of exactly the parameters the
// perf model reads (perf.MappingSubKey), and — in RandomMappings mode only —
// the layer's seed salt, because the random search's rng is derived from the
// layer index.
type layerCacheKey struct {
	shape string
	sub   string
	salt  int64
}

// layerEntry is the shape-invariant portion of a layer's search outcome;
// the caller re-attaches the concrete Layer (whose Name and Mult are not
// part of the shape key) and re-derives multiplicity-scaled totals.
type layerEntry struct {
	mapping      mapping.Mapping
	perf         perf.Breakdown
	trials       int
	costCalls    int
	lbPruned     int
	warmFallback bool
	found        bool
}

// warmEntry is one record of the per-shape warm-start index: the best
// mapping last found for the shape under any design sub-key, plus its full
// breakdown on that design. The breakdown seeds the incremental warm-start
// probe (perf.EvalContext.DeltaEvaluate): probing the incumbent on a new
// design then recomputes only the factors downstream of the changed design
// parameters instead of the whole cost tree.
type warmEntry struct {
	mapping mapping.Mapping
	perf    perf.Breakdown
}

// layerFlight is one in-progress layer search other goroutines can wait on.
// When the search panics, panicked carries the panic value: waiters re-raise
// it on their own goroutine so every design joined to the doomed search
// records the failure itself (instead of deadlocking on a flight that will
// never close).
type layerFlight struct {
	done     chan struct{}
	ent      layerEntry
	panicked any
}

// Stats is a snapshot of the evaluator's instrumentation counters.
type Stats struct {
	// Evaluations is the number of unique design points evaluated.
	Evaluations int
	// CacheHits counts Evaluate calls answered from the memo cache.
	CacheHits int
	// InflightDedups counts Evaluate calls that joined an in-flight
	// evaluation of the same point instead of racing to duplicate it.
	InflightDedups int
	// Evictions counts design results dropped from the bounded memo.
	Evictions int
	// Recomputes counts evaluations of designs seen before but evicted;
	// they redo real work without charging the unique-design budget.
	Recomputes int
	// LayerHits counts layer searches answered from the layer-grain cache.
	LayerHits int
	// LayerMisses counts layer searches actually run.
	LayerMisses int
	// LayerDedups counts layer searches that joined an identical
	// in-flight search instead of duplicating it.
	LayerDedups int
	// LayerEvictions counts entries dropped from the bounded layer cache.
	LayerEvictions int
	// PersistHits counts layer searches answered from the on-disk
	// persistent cache (a second-level hit: missed in memory, found on
	// disk, cost model never ran).
	PersistHits int
	// PersistMisses counts layer searches that probed the persistent cache
	// and found nothing (always at most LayerMisses; zero when no cache
	// directory is attached).
	PersistMisses int
	// PersistWrites counts fresh search results appended to the
	// persistent cache for future runs.
	PersistWrites int
	// PersistCorrupt counts persistent-cache records dropped because their
	// CRC or structure failed verification — each one degraded to a miss,
	// never to a wrong result. Store-level: with a shared store (see
	// Config.PersistCache) the count aggregates across every evaluator.
	PersistCorrupt int
	// PersistStale counts persistent-cache records retired because they
	// were written under a different cost-model version (perf.ModelVersion).
	// Store-level, like PersistCorrupt.
	PersistStale int
	// WarmProbes counts layer searches warm-started from a previous best
	// mapping of the same shape under a different design sub-key.
	WarmProbes int
	// WarmFallbacks counts warm-started searches that had to re-evaluate
	// probe-pruned candidates to discharge the strict bit-identical
	// contract (the probe did not strictly lose to the enumeration best).
	WarmFallbacks int
	// WarmEvictions counts entries dropped from the bounded warm-start
	// index.
	WarmEvictions int
	// CostCalls is the total number of perf-model invocations made by
	// mapping searches; with lower-bound pruning it trails MapTrials.
	// Every one of these goes through the Tier-1 fast path
	// (perf.EvalContext.EvaluateCycles), which reports cycles and validity
	// only.
	CostCalls int64
	// FullEvals is the number of Tier-2 full-breakdown evaluations
	// (perf.EvalContext.Evaluate): one per winning mapping, plus the
	// fixed-dataflow analytical mappings. The Tier-1/Tier-2 split
	// FullEvals/CostCalls is the fraction of perf-model work that pays for
	// the complete per-operand factor tree.
	FullEvals int64
	// LBPruned counts mapping candidates whose cost call was skipped
	// because a certified lower bound proved they could not win.
	LBPruned int64
	// MapTrials is the total number of mapping-search candidates
	// examined across all unique design evaluations.
	MapTrials int64
	// EvalWall is the cumulative wall time spent inside unique design
	// evaluations. Concurrent evaluations each contribute their own
	// elapsed time, so this can exceed the run's elapsed wall clock —
	// the ratio EvalWall/Elapsed is the effective evaluation parallelism.
	EvalWall time.Duration
	// PanicsRecovered counts evaluation panics contained by the evaluator
	// and converted into infeasible-with-error results. A non-zero count
	// means some designs crashed the model; the campaign itself survived.
	PanicsRecovered int
	// EvalTimeouts counts evaluations abandoned by the Config.EvalTimeout
	// watchdog and memoized as infeasible-with-error.
	EvalTimeouts int
	// TransientFaults counts evaluation attempts that failed with a
	// ClassTransient error, whether or not a retry attempt remained.
	TransientFaults int
	// Retries counts attempts re-run by the retry layer after a transient
	// failure (always at most TransientFaults).
	Retries int
}

// New returns an Evaluator over the given configuration.
func New(cfg Config) *Evaluator {
	if cfg.MapTrials <= 0 {
		cfg.MapTrials = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
		if cfg.Workers > 4 {
			cfg.Workers = 4
		}
	}
	capn := cfg.CacheCap
	switch {
	case capn == 0:
		capn = DefaultCacheCap
	case capn < 0:
		capn = 0 // unbounded
	}
	reg := obs.NewRegistry()
	store := cfg.PersistCache
	ownStore := false
	if store == nil && cfg.CacheDir != "" && !cfg.DisableLayerCache {
		s, err := evalcache.Open(cfg.CacheDir, evalcache.Options{Registry: reg})
		if err != nil {
			// A broken cache directory costs performance, never a run:
			// degrade to the in-memory caches alone.
			fmt.Fprintf(os.Stderr, "eval: persistent cache %s unavailable, continuing without: %v\n", cfg.CacheDir, err)
		} else {
			store, ownStore = s, true
		}
	}
	return &Evaluator{
		cfg:      cfg,
		cacheCap: capn,
		cache:    make(map[string]*Result),
		flights:  make(map[string]*flight),
		seen:     make(map[string]bool),
		lcache:   make(map[layerCacheKey]layerEntry),
		lflights: make(map[layerCacheKey]*layerFlight),
		warm:     make(map[string]warmEntry),
		store:    store,
		ownStore: ownStore,

		reg:         reg,
		cEvals:      reg.Counter("eval_design_evaluations_total"),
		cHits:       reg.Counter("eval_design_cache_hits_total"),
		cDedups:     reg.Counter("eval_inflight_dedups_total"),
		cRecomputes: reg.Counter("eval_design_recomputes_total"),
		cEvictions:  reg.Counter("eval_design_evictions_total"),
		cPanics:     reg.Counter("eval_panics_recovered_total"),
		cTimeouts:   reg.Counter("eval_timeouts_total"),
		cTransient:  reg.Counter("eval_transient_faults_total"),
		cRetries:    reg.Counter("eval_retries_total"),
		cLHits:      reg.Counter("eval_layer_cache_hits_total"),
		cLMisses:    reg.Counter("eval_layer_searches_total"),
		cLDedups:    reg.Counter("eval_layer_dedups_total"),
		cLEvictions: reg.Counter("eval_layer_evictions_total"),
		cPHits:      reg.Counter("eval_persist_hits_total"),
		cPMisses:    reg.Counter("eval_persist_misses_total"),
		cPWrites:    reg.Counter("eval_persist_writes_total"),
		cWarmProbes: reg.Counter("eval_warm_probes_total"),
		cWarmFalls:  reg.Counter("eval_warm_fallbacks_total"),
		cWarmEvict:  reg.Counter("eval_warm_evictions_total"),
		cCostCalls:  reg.Counter("eval_cost_calls_total"),
		cFullEvals:  reg.Counter("eval_full_evaluations_total"),
		cLBPruned:   reg.Counter("eval_lb_pruned_total"),
		cTrials:     reg.Counter("eval_map_trials_total"),
		cWallNs:     reg.Counter("eval_wall_ns_total"),
		hDesign:     reg.Histogram("eval_design_seconds", obs.DurationBuckets()),
		hLayer:      reg.Histogram("eval_layer_search_seconds", obs.DurationBuckets()),
	}
}

// Metrics returns the evaluator's private metrics registry: the counters
// behind Stats plus the latency histograms (eval_design_seconds,
// eval_layer_search_seconds, search_batch_seconds). Campaign drivers merge
// it into a campaign-level registry after each run; tests read it directly.
func (e *Evaluator) Metrics() *obs.Registry { return e.reg }

// Config returns the evaluator configuration.
func (e *Evaluator) Config() Config { return e.cfg }

// Evaluations returns the number of unique design points evaluated so far.
func (e *Evaluator) Evaluations() int {
	return int(e.cEvals.Value())
}

// Prime marks design keys as already evaluated and charges them to the
// unique-design budget without computing anything — the checkpoint-resume
// hook. A primed key neither consumes a fault ordinal nor counts as a new
// unique evaluation when later recomputed (it is a recompute, exactly as an
// evicted design would be), so a resumed run's budget accounting matches the
// uninterrupted run's. Keys already seen are ignored; the number of newly
// primed keys is returned.
func (e *Evaluator) Prime(keys []string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, k := range keys {
		if !e.seen[k] {
			e.seen[k] = true
			e.cEvals.Inc()
			n++
		}
	}
	return n
}

// Stats snapshots the instrumentation counters — a typed view over the
// metrics registry (see Metrics), kept so existing reporting and tests
// need not know about the registry.
func (e *Evaluator) Stats() Stats {
	var persistCorrupt, persistStale int
	if e.store != nil {
		// Store-level counters live in whatever registry the store was
		// opened with (this evaluator's when it owns the store, the
		// sharing owner's otherwise).
		persistCorrupt = int(e.store.Metrics().Counter("evalcache_corrupt_records_total").Value())
		persistStale = int(e.store.Metrics().Counter("evalcache_stale_records_total").Value())
	}
	return Stats{
		Evaluations:     int(e.cEvals.Value()),
		CacheHits:       int(e.cHits.Value()),
		InflightDedups:  int(e.cDedups.Value()),
		Evictions:       int(e.cEvictions.Value()),
		Recomputes:      int(e.cRecomputes.Value()),
		LayerHits:       int(e.cLHits.Value()),
		LayerMisses:     int(e.cLMisses.Value()),
		LayerDedups:     int(e.cLDedups.Value()),
		LayerEvictions:  int(e.cLEvictions.Value()),
		PersistHits:     int(e.cPHits.Value()),
		PersistMisses:   int(e.cPMisses.Value()),
		PersistWrites:   int(e.cPWrites.Value()),
		PersistCorrupt:  persistCorrupt,
		PersistStale:    persistStale,
		WarmProbes:      int(e.cWarmProbes.Value()),
		WarmFallbacks:   int(e.cWarmFalls.Value()),
		WarmEvictions:   int(e.cWarmEvict.Value()),
		CostCalls:       e.cCostCalls.Value(),
		FullEvals:       e.cFullEvals.Value(),
		LBPruned:        e.cLBPruned.Value(),
		MapTrials:       e.cTrials.Value(),
		EvalWall:        time.Duration(e.cWallNs.Value()),
		PanicsRecovered: int(e.cPanics.Value()),
		EvalTimeouts:    int(e.cTimeouts.Value()),
		TransientFaults: int(e.cTransient.Value()),
		Retries:         int(e.cRetries.Value()),
	}
}

// ResetCount zeroes the instrumentation counters and histograms (the caches
// are retained, and the fault-ordinal sequence keeps advancing so injected
// faults stay pinned to unique evaluations across a reset).
func (e *Evaluator) ResetCount() {
	e.reg.Reset()
}

// Evaluate returns the (memoized) evaluation of a design point. Concurrent
// calls are safe; concurrent misses on the same point compute it once and
// share the result, so parallel batches never discard duplicate work.
func (e *Evaluator) Evaluate(pt arch.Point) *Result {
	return e.EvaluateCtx(context.Background(), pt)
}

// EvaluateCtx is Evaluate with cancellation: when ctx is done the call
// returns a Cancelled result immediately — an abandoned evaluation is never
// cached, never counted against the unique-design budget, and therefore
// invisible to budget accounting, which is what makes a killed-and-resumed
// run bit-identical to an uninterrupted one. Panics inside the evaluation
// are contained (Stats.PanicsRecovered) and the Config.EvalTimeout watchdog
// converts runaway attempts into errored results; both are classified
// ClassTransient and re-attempted under Config.Retry, so only failures that
// are permanent — by class or by exhausting the attempt budget — are ever
// charged, memoized, or journaled. A transient fault healed by a retry is
// completely invisible to the campaign's results.
func (e *Evaluator) EvaluateCtx(ctx context.Context, pt arch.Point) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return cancelledResult(pt, err)
	}
	// A context carrying trace context (a serve worker handling a traced
	// fleet shard) gets one span per call — memo hits included, so the span
	// duration is the honest per-point cost. Local runs never plant a span
	// here, so this is a single nil-returning ctx.Value on their hot path.
	if tr, parent, ok := obs.SpanFromContext(ctx); ok {
		sp := tr.StartChild(parent, obs.SpanWorkerEval, pt.Key())
		defer sp.End()
	}
	key := pt.Key()
	e.mu.Lock()
	if r, ok := e.cache[key]; ok {
		e.cHits.Inc()
		e.mu.Unlock()
		return r
	}
	if f, ok := e.flights[key]; ok {
		e.cDedups.Inc()
		e.mu.Unlock()
		select {
		case <-f.done:
			return f.r
		case <-ctx.Done():
			return cancelledResult(pt, ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	// Unique-evaluation ordinals — the FaultPolicy and OnEvaluation
	// currency — are assigned when a never-seen key starts evaluating, so
	// checkpoint-primed keys and recomputes never consume one.
	ord := -1
	if !e.seen[key] {
		ord = e.faultSeq
		e.faultSeq++
	}
	e.mu.Unlock()

	if fp := e.cfg.Faults; fp != nil && ord >= 0 && fp.OnEvaluation != nil {
		fp.OnEvaluation(ord)
	}

	start := time.Now()
	r := e.retryingEvaluate(ctx, pt, ord)
	elapsed := time.Since(start)

	e.mu.Lock()
	if r.Cancelled {
		// Abandoned: no charge, no memo. Waiters on this flight share
		// the cancellation (batch workers share the campaign context).
		delete(e.flights, key)
		e.mu.Unlock()
		f.r = r
		close(f.done)
		return r
	}
	e.storeDesign(key, r)
	if e.seen[key] {
		e.cRecomputes.Inc()
	} else {
		e.seen[key] = true
		e.cEvals.Inc()
	}
	delete(e.flights, key)
	e.mu.Unlock()
	e.cTrials.Add(int64(r.MapEvaluations))
	e.cWallNs.Add(int64(elapsed))
	e.hDesign.ObserveDuration(elapsed)

	// Publish before waking waiters: the channel close orders f.r's write
	// before every waiter's read.
	f.r = r
	close(f.done)
	return r
}

// erroredResult builds the infeasible Result recorded for a design whose
// evaluation failed outright: infinite objective, a large finite constraints
// budget, and the failure reason in both Err and Violations. The failure is
// classified ClassPermanent; transient paths use transientResult.
func erroredResult(pt arch.Point, reason string) *Result {
	return &Result{
		Point:      pt.Clone(),
		LatencyMs:  math.Inf(1),
		EnergyMJ:   math.Inf(1),
		Objective:  math.Inf(1),
		BudgetUtil: maxConstraintUtil,
		Violations: []string{reason},
		Err:        reason,
		ErrClass:   ClassPermanent,
	}
}

// transientResult is erroredResult classified ClassTransient: the retry
// layer re-attempts it instead of letting it reach the memo or journal.
func transientResult(pt arch.Point, reason string) *Result {
	r := erroredResult(pt, reason)
	r.ErrClass = ClassTransient
	return r
}

// cancelledResult builds the uncharged, uncached Result returned when an
// evaluation is abandoned by context cancellation. Cancellation is
// classified transient — the work is simply redone after resume — but is
// special-cased by the Cancelled flag everywhere, retries included.
func cancelledResult(pt arch.Point, err error) *Result {
	r := transientResult(pt, "evaluation cancelled: "+err.Error())
	r.Cancelled = true
	return r
}

// retryingEvaluate drives the transient-fault retry loop around
// protectedEvaluate: a ClassTransient failure is re-attempted under the
// configured RetryPolicy with a deterministic jitter-free backoff, and only
// the final outcome — a success, a permanent failure, or a transient
// failure that exhausted the attempt budget and is thereby reclassified
// permanent — escapes to be charged, memoized, and journaled. Cancellation
// aborts the loop (and any backoff sleep) immediately.
func (e *Evaluator) retryingEvaluate(ctx context.Context, pt arch.Point, ord int) *Result {
	maxAttempts := e.cfg.Retry.attempts()
	for attempt := 0; ; attempt++ {
		r := e.protectedEvaluate(ctx, pt, ord, attempt)
		r.Attempts = attempt + 1
		if r.Cancelled || r.Err == "" {
			return r
		}
		if r.ErrClass != ClassTransient {
			return r
		}
		e.cTransient.Inc()
		if attempt+1 >= maxAttempts {
			// Out of attempts: the transient failure is now permanent —
			// the only shape in which a transient error may ever be
			// charged, memoized, or journaled.
			r.ErrClass = ClassPermanent
			if attempt > 0 {
				r.Err = fmt.Sprintf("%s (permanent after %d attempts)", r.Err, r.Attempts)
			}
			return r
		}
		e.cRetries.Inc()
		if d := e.cfg.Retry.delayBefore(attempt + 1); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return cancelledResult(pt, ctx.Err())
			}
		}
	}
}

// protectedEvaluate runs one design-evaluation attempt inside the
// resilience envelope: injected faults applied, panics recovered into
// transient errored results, and — when Config.EvalTimeout is set — a
// watchdog that abandons runaway attempts. One bad design must never take
// down a campaign; whether a failed attempt is final is the retry layer's
// decision (see retryingEvaluate).
func (e *Evaluator) protectedEvaluate(ctx context.Context, pt arch.Point, ord, attempt int) (r *Result) {
	defer func() {
		if rec := recover(); rec != nil {
			e.cPanics.Inc()
			// A crash describes the attempt, not the design: classified
			// transient so the retry layer may re-attempt it. Without
			// retries it goes permanent immediately, preserving the
			// pre-retry charged-and-memoized behavior.
			r = transientResult(pt, fmt.Sprintf("panic during evaluation: %v", rec))
		}
	}()
	if e.cfg.EvalTimeout <= 0 {
		return e.runEvaluate(ctx, pt, ord, attempt)
	}
	// Watchdog: run the evaluation on its own goroutine and race it
	// against the deadline and the context. A panic on that goroutine is
	// ferried back and re-raised here so the recover above owns it.
	resCh := make(chan *Result, 1)
	panicCh := make(chan any, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				panicCh <- rec
			}
		}()
		resCh <- e.runEvaluate(ctx, pt, ord, attempt)
	}()
	timer := time.NewTimer(e.cfg.EvalTimeout)
	defer timer.Stop()
	select {
	case r := <-resCh:
		return r
	case rec := <-panicCh:
		panic(rec)
	case <-timer.C:
		e.cTimeouts.Inc()
		return transientResult(pt, fmt.Sprintf("evaluation exceeded watchdog timeout %v", e.cfg.EvalTimeout))
	case <-ctx.Done():
		return cancelledResult(pt, ctx.Err())
	}
}

// runEvaluate applies any injected faults for this (unique-evaluation
// ordinal, attempt) site, then evaluates the design.
func (e *Evaluator) runEvaluate(ctx context.Context, pt arch.Point, ord, attempt int) *Result {
	if fp := e.cfg.Faults; fp != nil && ord >= 0 {
		if d := fp.delayFor(ord, attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return cancelledResult(pt, ctx.Err())
			}
		}
		if fp.panicAt(ord, attempt) {
			panic(fmt.Sprintf("injected fault: panic at unique evaluation %d", ord))
		}
		if fp.errorAt(ord, attempt) {
			return erroredResult(pt, fmt.Sprintf("injected fault: error at unique evaluation %d", ord))
		}
		if fp.transientAt(ord, attempt) {
			return transientResult(pt, fmt.Sprintf("injected fault: transient error at unique evaluation %d attempt %d", ord, attempt))
		}
	}
	return e.evaluate(ctx, pt)
}

// storeDesign inserts a result into the bounded design memo, evicting the
// oldest entries FIFO when the cap is exceeded. Caller holds e.mu.
func (e *Evaluator) storeDesign(key string, r *Result) {
	if _, ok := e.cache[key]; !ok {
		e.order = append(e.order, key)
	}
	e.cache[key] = r
	for e.cacheCap > 0 && len(e.cache) > e.cacheCap {
		old := e.order[e.head]
		e.head++
		delete(e.cache, old)
		e.cEvictions.Inc()
	}
	// Compact the eviction queue once the dead prefix dominates.
	if e.head > len(e.order)/2 && e.head > 64 {
		e.order = append([]string(nil), e.order[e.head:]...)
		e.head = 0
	}
}

func (e *Evaluator) evaluate(ctx context.Context, pt arch.Point) *Result {
	d, err := e.cfg.Space.Decode(pt)
	if err != nil {
		// A malformed point (wrong arity, out-of-range index) is an
		// errored design, not a crash: optimizers construct points
		// through Space methods, so this only fires on corrupted external
		// input — which must degrade gracefully, not kill the campaign.
		return erroredResult(pt, "malformed design point: "+err.Error())
	}
	r := &Result{Point: pt.Clone(), Design: d}
	r.Energy = e.emodel.Estimate(d)
	r.AreaMM2 = r.Energy.AreaMM2
	r.PowerW = r.Energy.MaxPowerW

	// The design sub-key is identical for every layer of every model, so
	// build it once per design here rather than once per layerResult call
	// (it was ~10% of a fully-warm campaign when rebuilt per layer).
	sub := perf.MappingSubKey(d)
	for _, mdl := range e.cfg.Models {
		// Cancellation is honored at model granularity: a partial
		// evaluation is abandoned wholesale (never cached), so there is
		// no half-evaluated Result to corrupt the memo.
		if ctx.Err() != nil {
			return cancelledResult(pt, ctx.Err())
		}
		me := e.evaluateModel(d, sub, r.Energy, mdl)
		r.MapEvaluations += sumTrials(me)
		r.Models = append(r.Models, me)
		r.LatencyMs += me.LatencyMs
		r.EnergyMJ += me.EnergyMJ
	}
	switch e.cfg.Objective {
	case MinEnergy:
		r.Objective = r.EnergyMJ
		if math.IsInf(r.LatencyMs, 1) {
			r.Objective = math.Inf(1)
		}
	default:
		r.Objective = r.LatencyMs
	}

	e.checkConstraints(r)
	return r
}

func sumTrials(me ModelEval) int {
	t := 0
	for _, le := range me.Layers {
		t += le.MapTrials
	}
	return t
}

func (e *Evaluator) evaluateModel(d arch.Design, sub string, est energy.Estimate, mdl *workload.Model) ModelEval {
	me := ModelEval{Model: mdl, Layers: make([]LayerEval, len(mdl.Layers))}

	// Acquire the worker semaphore before spawning so at most Workers
	// goroutines exist at a time: a 100-layer model under Workers=1 must
	// not burst 100 goroutines that all immediately block.
	//
	// A panic on a layer goroutine would kill the whole process (panics
	// never cross goroutines), so each worker captures its panic value
	// into its own slot and the first one — by layer order, so the choice
	// is deterministic — is re-raised on the calling goroutine after the
	// barrier, where protectedEvaluate's recover converts it into an
	// errored design.
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.cfg.Workers)
	panics := make([]any, len(mdl.Layers))
	for i := range mdl.Layers {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if rec := recover(); rec != nil {
					panics[i] = rec
				}
			}()
			me.Layers[i] = e.evaluateLayer(d, sub, mdl.Layers[i], int64(i))
		}(i)
	}
	wg.Wait()
	for _, rec := range panics {
		if rec != nil {
			panic(rec)
		}
	}

	for i := range me.Layers {
		me.Layers[i].EnergyMJ = layerEnergyMJ(est, me.Layers[i])
	}
	for _, le := range me.Layers {
		if !le.Perf.Valid {
			me.Incompatible = true
			n := le.Perf.IncompatCount
			if n < 1 {
				n = 1
			}
			me.IncompatSeverity += float64(n)
			continue
		}
		me.Cycles += le.TotalCycles
		me.EnergyMJ += le.EnergyMJ
	}
	if me.Incompatible {
		me.Cycles = math.Inf(1)
	}
	if n := len(me.Layers); n > 0 {
		me.IncompatSeverity /= float64(n)
	}
	if d.FreqMHz > 0 {
		me.LatencyMs = me.Cycles / (float64(d.FreqMHz) * 1e3)
	} else {
		// A clockless design can never meet a throughput ceiling;
		// report infinite latency rather than letting 0/0 turn the
		// bottleneck trees into NaN.
		me.LatencyMs = math.Inf(1)
	}
	me.MeetsThroughput = me.LatencyMs <= mdl.MaxLatencyMs
	return me
}

func (e *Evaluator) evaluateLayer(d arch.Design, sub string, l workload.Layer, salt int64) LayerEval {
	le := LayerEval{Layer: l}
	ent := e.layerResult(d, sub, l, salt)
	le.Mapping, le.Perf, le.MapTrials = ent.mapping, ent.perf, ent.trials
	mult := l.Mult
	if mult < 1 {
		mult = 1
	}
	le.TotalCycles = le.Perf.Cycles * float64(mult)
	return le
}

// layerResult returns the mapping-search outcome for layer l on design d,
// answering from the layer-grain cache when the (shape, sub-key) pair has
// been searched before, joining an identical in-flight search when one is
// running, then probing the persistent cross-run store (when attached), and
// only then running the search — warm-started from the shape's
// previously-best mapping when one is known. Every path returns bit-identical
// search outcomes; only the cost-call counters differ.
func (e *Evaluator) layerResult(d arch.Design, sub string, l workload.Layer, salt int64) layerEntry {
	if e.cfg.DisableLayerCache {
		ent := e.timedSearchLayer(d, l, salt, nil)
		e.cCostCalls.Add(int64(ent.costCalls))
		e.cLBPruned.Add(int64(ent.lbPruned))
		return ent
	}
	key := layerCacheKey{shape: l.ShapeKey(), sub: sub}
	if e.cfg.Mode == RandomMappings {
		// The random search's rng is seeded from the layer index, so
		// equal shapes at different indices draw different mappings.
		key.salt = salt
	}
	e.mu.Lock()
	if ent, ok := e.lcache[key]; ok {
		e.cLHits.Inc()
		e.mu.Unlock()
		return ent
	}
	if f, ok := e.lflights[key]; ok {
		e.cLDedups.Inc()
		e.mu.Unlock()
		<-f.done
		if f.panicked != nil {
			panic(f.panicked)
		}
		return f.ent
	}
	f := &layerFlight{done: make(chan struct{})}
	e.lflights[key] = f
	e.mu.Unlock()

	// Second-level probe: a search completed by a previous run — or by
	// another job or process sharing the cache directory — answers from
	// disk and never reaches the cost model. The singleflight above
	// already collapses concurrent in-process probes of the same key.
	if e.store != nil {
		if pe, ok := e.store.Get(e.persistKey(key)); ok {
			ent := fromPersist(pe)
			e.mu.Lock()
			e.storeLayer(key, ent)
			if ent.found {
				e.storeWarm(key.shape, warmEntry{mapping: ent.mapping, perf: ent.perf})
			}
			delete(e.lflights, key)
			e.mu.Unlock()
			e.cPHits.Inc()
			f.ent = ent
			close(f.done)
			return ent
		}
		e.cPMisses.Inc()
	}

	e.cLMisses.Inc()
	e.mu.Lock()
	var incumbent *warmEntry
	if e.cfg.Mode == PrunedMappings && e.cfg.WarmStart == WarmStrict {
		if we, ok := e.warm[key.shape]; ok {
			incumbent = &we
			e.cWarmProbes.Inc()
		}
	}
	e.mu.Unlock()

	// A panicking search must still resolve the flight — waiters would
	// otherwise block forever — and must not poison the cache: unregister
	// the flight, hand the panic value to waiters, and re-raise.
	defer func() {
		if rec := recover(); rec != nil {
			e.mu.Lock()
			delete(e.lflights, key)
			e.mu.Unlock()
			f.panicked = rec
			close(f.done)
			panic(rec)
		}
	}()
	ent := e.timedSearchLayer(d, l, salt, incumbent)

	e.mu.Lock()
	e.storeLayer(key, ent)
	if ent.found {
		e.storeWarm(key.shape, warmEntry{mapping: ent.mapping, perf: ent.perf})
	}
	delete(e.lflights, key)
	e.mu.Unlock()
	e.cCostCalls.Add(int64(ent.costCalls))
	e.cLBPruned.Add(int64(ent.lbPruned))
	if ent.warmFallback {
		e.cWarmFalls.Inc()
	}

	f.ent = ent
	close(f.done)
	if e.store != nil {
		// Persist after waking waiters: the fsync'd append rides on this
		// goroutine, never on the joined ones.
		e.store.Put(e.persistKey(key), toPersist(ent))
		e.cPWrites.Inc()
	}
	return ent
}

// persistKey derives the content address of a layer search in the
// cross-run store: the in-memory cache key plus everything that is implicit
// within one evaluator but varies across runs — the mapper mode, the search
// budget, and (in random mode) the fully-resolved rng seed. The cost-model
// version is stamped per record by the store itself.
func (e *Evaluator) persistKey(key layerCacheKey) evalcache.Key {
	pk := evalcache.Key{Shape: key.shape, Sub: key.sub, Mode: e.cfg.Mode.String()}
	switch e.cfg.Mode {
	case RandomMappings:
		// The random search draws from rand.NewSource(Seed*1_000_003+salt)
		// (see searchLayer), so the persisted salt must be that resolved
		// seed — two runs with different Config.Seed must not share
		// random-mode entries.
		pk.Trials = e.cfg.MapTrials
		pk.Salt = e.cfg.Seed*1_000_003 + key.salt
	case PrunedMappings:
		pk.Trials = e.cfg.MapTrials
	default:
		// FixedDataflow derives one mapping analytically: no budget, no
		// seed, so entries are shared across all configurations.
	}
	return pk
}

// toPersist and fromPersist convert between the in-memory layer entry and
// its exported persistent twin. Every field round-trips bit-exactly — the
// persist-hit path must be indistinguishable from a completed search.
func toPersist(ent layerEntry) evalcache.Entry {
	return evalcache.Entry{
		Found:        ent.found,
		Mapping:      ent.mapping,
		Perf:         ent.perf,
		Trials:       ent.trials,
		CostCalls:    ent.costCalls,
		LBPruned:     ent.lbPruned,
		WarmFallback: ent.warmFallback,
	}
}

func fromPersist(pe evalcache.Entry) layerEntry {
	return layerEntry{
		mapping:      pe.Mapping,
		perf:         pe.Perf,
		trials:       pe.Trials,
		costCalls:    pe.CostCalls,
		lbPruned:     pe.LBPruned,
		warmFallback: pe.WarmFallback,
		found:        pe.Found,
	}
}

// storeLayer inserts a search outcome into the bounded layer cache (FIFO,
// 8x the design-memo cap). Caller holds e.mu.
func (e *Evaluator) storeLayer(key layerCacheKey, ent layerEntry) {
	if _, ok := e.lcache[key]; !ok {
		e.lorder = append(e.lorder, key)
	}
	e.lcache[key] = ent
	for e.cacheCap > 0 && len(e.lcache) > 8*e.cacheCap {
		old := e.lorder[e.lhead]
		e.lhead++
		delete(e.lcache, old)
		e.cLEvictions.Inc()
	}
	if e.lhead > len(e.lorder)/2 && e.lhead > 64 {
		e.lorder = append([]layerCacheKey(nil), e.lorder[e.lhead:]...)
		e.lhead = 0
	}
}

// storeWarm records a shape's latest best mapping (and its breakdown, the
// seed of the incremental warm-start probe) in the warm-start index, bounded
// FIFO by first insertion with the same cap as the layer cache so a
// long-running daemon streaming distinct shapes cannot grow it without
// limit. Caller holds e.mu.
func (e *Evaluator) storeWarm(shape string, we warmEntry) {
	if _, ok := e.warm[shape]; !ok {
		e.worder = append(e.worder, shape)
	}
	e.warm[shape] = we
	for e.cacheCap > 0 && len(e.warm) > 8*e.cacheCap {
		old := e.worder[e.whead]
		e.whead++
		delete(e.warm, old)
		e.cWarmEvict.Inc()
	}
	if e.whead > len(e.worder)/2 && e.whead > 64 {
		e.worder = append([]string(nil), e.worder[e.whead:]...)
		e.whead = 0
	}
}

// timedSearchLayer is searchLayer with the mapping-search latency recorded
// into the eval_layer_search_seconds histogram; cache hits and in-flight
// joins never reach it, so the histogram measures real searches only.
func (e *Evaluator) timedSearchLayer(d arch.Design, l workload.Layer, salt int64, incumbent *warmEntry) layerEntry {
	start := time.Now()
	ent := e.searchLayer(d, l, salt, incumbent)
	e.hLayer.ObserveDuration(time.Since(start))
	return ent
}

// searchLayer runs the configured mapping search for one layer on one
// design. It builds one perf.EvalContext for the (design, layer) pair: the
// search inner loop runs on the context's Tier-1 fast path (cycles and
// validity only, no allocation), and only the winning mapping pays for the
// Tier-2 full breakdown. In PrunedMappings mode under WarmStrict the
// enumeration carries a certified cost lower bound (and the warm-start
// incumbent when given), with the incumbent probe answered incrementally
// from its previous breakdown when one is on record; WarmOff reproduces the
// fully-cold search.
func (e *Evaluator) searchLayer(d arch.Design, l workload.Layer, salt int64, incumbent *warmEntry) layerEntry {
	var ent layerEntry
	ctx := perf.NewContext(d, l)
	switch e.cfg.Mode {
	case FixedDataflow:
		ent.mapping = mapping.FixedOutputStationary(l, d.PEs, d.L1Bytes, d.L2Bytes())
		ent.perf = ctx.Evaluate(ent.mapping)
		e.cFullEvals.Inc()
		ent.trials, ent.costCalls, ent.found = 1, 1, true
	case RandomMappings:
		rng := rand.New(rand.NewSource(e.cfg.Seed*1_000_003 + salt))
		res := mapping.RandomSearch(l, e.cfg.MapTrials, rng, ctx.Cost())
		ent = e.fromSearch(ctx, res, "no valid mapping found by random search")
	case PrunedMappings:
		cfg := mapping.GenConfig{
			PEs:       d.PEs,
			L1Bytes:   d.L1Bytes,
			L2Bytes:   d.L2Bytes(),
			MinN:      10,
			MaxN:      e.cfg.MapTrials,
			BaseValid: ctx.Valid(),
		}
		if e.cfg.WarmStart == WarmStrict {
			cfg.CostLB = perf.CostLowerBoundFn(l)
			if incumbent != nil {
				m := incumbent.mapping
				cfg.Incumbent = &m
				if prev := incumbent.perf; prev.MACs > 0 {
					// The incumbent's breakdown on its previous design
					// answers the probe incrementally: DeltaEvaluate
					// recomputes only the factors downstream of the
					// design parameters that changed, bit-identical to
					// a full evaluation (the strict contract's
					// requirement on ProbeCost).
					cfg.ProbeCost = func(pm *mapping.Mapping) (float64, bool) {
						b := ctx.DeltaEvaluate(&prev, *pm)
						return b.Cycles, b.Valid
					}
				}
			}
		}
		res := mapping.EnumeratePruned(l, cfg, ctx.Cost())
		ent = e.fromSearch(ctx, res, "no valid mapping in pruned space")
	}
	return ent
}

// fromSearch converts a mapping-search result into a cacheable layer entry,
// evaluating the winning mapping's full Tier-2 breakdown on the search's
// context.
func (e *Evaluator) fromSearch(ctx *perf.EvalContext, res mapping.Result, failMsg string) layerEntry {
	ent := layerEntry{
		trials:       res.Evaluated,
		costCalls:    res.CostCalls,
		lbPruned:     res.LBPruned,
		warmFallback: res.WarmFallback,
		found:        res.Found,
	}
	if res.Found {
		ent.mapping = res.Best
		ent.perf = ctx.Evaluate(ent.mapping)
		e.cFullEvals.Inc()
	} else {
		ent.perf.Incompat = failMsg
	}
	return ent
}

// layerEnergyMJ integrates the layer's access counts against the design's
// per-event energies: MACs plus two reads and a write at the RF per MAC,
// scratchpad and NoC energy per NoC byte, and DRAM energy per off-chip byte.
func layerEnergyMJ(est energy.Estimate, le LayerEval) float64 {
	b := le.Perf
	var dram, noc float64
	for _, op := range arch.Operands {
		dram += b.DataOffchip[op]
		noc += b.DataNoC[op]
	}
	pj := b.MACs*est.MACPJ + 3*b.MACs*est.RFAccessPJ +
		noc/workload.BytesPerElem*est.L2AccessPJ + noc*est.NoCPerByte + dram*est.DRAMPerByte
	mult := le.Layer.Mult
	if mult < 1 {
		mult = 1
	}
	return pj * float64(mult) * 1e-9 // pJ -> mJ
}

// maxConstraintUtil is the finite ceiling constraintUtil clamps to: large
// enough to dominate any real utilization, small enough that budget
// comparisons between two broken designs still order by everything else.
const maxConstraintUtil = 1e6

// constraintUtil returns value/limit with the division guarded: a
// non-positive limit with non-zero usage, or a non-finite ratio, reads as a
// hard violation with a large finite utilization instead of a NaN/Inf that
// would poison every downstream budget comparison and bottleneck tree.
func constraintUtil(value, limit float64) float64 {
	if limit > 0 {
		u := value / limit
		if !math.IsNaN(u) && !math.IsInf(u, 0) {
			return u
		}
		return maxConstraintUtil
	}
	if value <= 0 {
		return 0 // vacuously satisfied: nothing used, nothing allowed
	}
	return maxConstraintUtil
}

func (e *Evaluator) checkConstraints(r *Result) {
	c := e.cfg.Constraints
	utils := []float64{
		constraintUtil(r.AreaMM2, c.MaxAreaMM2),
		constraintUtil(r.PowerW, c.MaxPowerW),
	}
	r.MeetsAreaPower = utils[0] <= 1 && utils[1] <= 1
	if utils[0] > 1 {
		r.Violations = append(r.Violations, fmt.Sprintf("area %.1fmm2 > %.1fmm2", r.AreaMM2, c.MaxAreaMM2))
	}
	if utils[1] > 1 {
		r.Violations = append(r.Violations, fmt.Sprintf("power %.2fW > %.2fW", r.PowerW, c.MaxPowerW))
	}
	throughputOK := true
	for _, me := range r.Models {
		u := constraintUtil(me.LatencyMs, me.Model.MaxLatencyMs)
		if me.Incompatible {
			// Incompatible designs burn the whole budget. The
			// penalty (a) dominates any realistic latency
			// utilization, so becoming compatible always reads as
			// budget progress, and (b) is graded by how many
			// incompatibilities remain, so partial fixes register
			// too (§4.6 progress signal).
			u = 1000 * (1 + me.IncompatSeverity)
		}
		utils = append(utils, u)
		if me.Incompatible {
			throughputOK = false
			r.Violations = append(r.Violations, fmt.Sprintf("%s: mapping incompatible with design", me.Model.Name))
		} else if !me.MeetsThroughput {
			throughputOK = false
			r.Violations = append(r.Violations, fmt.Sprintf("%s: latency %.2fms > %.2fms", me.Model.Name, me.LatencyMs, me.Model.MaxLatencyMs))
		}
	}
	sum := 0.0
	for _, u := range utils {
		sum += u
	}
	r.BudgetUtil = sum / float64(len(utils))
	r.Feasible = r.MeetsAreaPower && throughputOK
}
