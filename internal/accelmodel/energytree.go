package accelmodel

import (
	"fmt"
	"math"
	"strings"

	"xdse/internal/arch"
	"xdse/internal/bottleneck"
	"xdse/internal/energy"
	"xdse/internal/eval"
	"xdse/internal/mapping"
	"xdse/internal/search"
)

// Energy bottleneck model. The paper develops latency as its running
// example and notes the API generalizes to other costs; this file expresses
// the inference-energy cost of a layer as an additive bottleneck tree —
// compute energy, register-file energy, scratchpad/NoC transfer energy, and
// DRAM energy — with mitigations that trade buffer capacity for data reuse.

// Factor-node names of the energy tree.
const (
	FactorEnergy = "energy_pJ"
	FactorEMac   = "E_mac"
	FactorERF    = "E_rf"
	FactorEL2NoC = "E_l2_noc"
	FactorEDRAM  = "E_dram"
)

// energyDRAMFactor names the per-operand DRAM-energy factor node.
func energyDRAMFactor(op arch.Operand) string { return "E_dram_" + op.String() }

// EnergyTree builds the additive energy bottleneck tree of one layer
// execution (picojoules for a single occurrence).
func EnergyTree(le eval.LayerEval, est energy.Estimate) *bottleneck.Node {
	b := le.Perf

	mac := bottleneck.NewLeaf(FactorEMac, b.MACs*est.MACPJ)
	rf := bottleneck.NewLeaf(FactorERF, 3*b.MACs*est.RFAccessPJ)

	var noc float64
	for _, op := range arch.Operands {
		noc += b.DataNoC[op]
	}
	l2noc := bottleneck.NewLeaf(FactorEL2NoC, noc/2*est.L2AccessPJ+noc*est.NoCPerByte).
		WithParams("L1_bytes")

	var dramKids []*bottleneck.Node
	for _, op := range arch.Operands {
		dramKids = append(dramKids,
			bottleneck.NewLeaf(energyDRAMFactor(op), b.DataOffchip[op]*est.DRAMPerByte).
				WithParams("L2_KB"))
	}
	dram := bottleneck.Add(FactorEDRAM, dramKids...).WithParams("L2_KB")

	return bottleneck.Add(FactorEnergy, mac, rf, l2noc, dram)
}

// mitigateEnergy applies the energy-specific mitigation subroutines: DRAM
// energy shrinks by exploiting off-chip reuse through a larger scratchpad,
// and scratchpad/NoC energy by exploiting register-file reuse.
func (m *Model) mitigateEnergy(bn bottleneck.Bottleneck, le eval.LayerEval, d arch.Design) []search.Prediction {
	switch bn.Factor.Name {
	case FactorEDRAM:
		op := criticalOperand(bn, energyDRAMFactor)
		return m.predictSPMGrowth(bn.Scaling, op, le, d)
	case FactorEL2NoC:
		// Pick the heaviest NoC operand as the reuse target.
		best, bestBytes := arch.OpW, le.Perf.DataNoC[arch.OpW]
		for _, op := range arch.Operands[1:] {
			if le.Perf.DataNoC[op] > bestBytes {
				best, bestBytes = op, le.Perf.DataNoC[op]
			}
		}
		return m.predictRFGrowth(bn.Scaling, best, le, d)
	}
	// Compute and RF energies are workload-intrinsic at fixed precision;
	// no parameter reduces them without changing the workload.
	return nil
}

// predictSPMGrowth sizes the scratchpad by the Amdahl-limited reuse of the
// bottleneck operand (shared by the DMA-time and DRAM-energy mitigations).
func (m *Model) predictSPMGrowth(s float64, op arch.Operand, le eval.LayerEval, d arch.Design) []search.Prediction {
	b := le.Perf
	idx, ok := m.paramIndex("L2_KB")
	if !ok {
		return nil
	}
	footprint := 0.0
	for _, o := range arch.Operands {
		footprint += b.DataOffchip[o]
	}
	if footprint <= 0 {
		return nil
	}
	t := operandTensor(op)
	avail := b.ReuseAvailSPM[t]
	if avail <= 1.001 {
		return nil
	}
	f := b.DataOffchip[op] / footprint
	denom := 1 - s + s*f
	a := math.Inf(1)
	if denom > 0 {
		a = s * f / denom
	}
	target := math.Min(avail, a)
	if target <= 1 {
		return nil
	}
	var newSPM float64
	for tt := mapping.Tensor(0); tt < mapping.NumTensors; tt++ {
		alloc := b.DataSPM[tt] * target / math.Max(b.ReuseAvailSPM[tt], 1)
		if alloc < b.DataSPM[tt] {
			alloc = b.DataSPM[tt]
		}
		newSPM += alloc
	}
	wantKB := int(math.Ceil(newSPM / 1024))
	if wantKB <= d.L2KB {
		return nil
	}
	return []search.Prediction{{
		Param: idx, Value: wantKB, Rule: "spm-grow",
		Why: fmt.Sprintf("DRAM-bound on %v: grow L2 %dKB -> %dKB to exploit %.2fx reuse (Amdahl A=%.2f)", op, d.L2KB, wantKB, target, a),
	}}
}

// predictRFGrowth sizes the register file by the remaining RF reuse of the
// target operand (shared by the NoC-time and NoC-energy mitigations).
func (m *Model) predictRFGrowth(s float64, op arch.Operand, le eval.LayerEval, d arch.Design) []search.Prediction {
	b := le.Perf
	idx, ok := m.paramIndex("L1_bytes")
	if !ok {
		return nil
	}
	t := operandTensor(op)
	avail := b.ReuseAvailRF[t]
	if avail <= 1.001 {
		return nil
	}
	target := math.Min(avail, s)
	var newRF float64
	for tt := mapping.Tensor(0); tt < mapping.NumTensors; tt++ {
		alloc := b.DataRF[tt] * target / math.Max(b.ReuseAvailRF[tt], 1)
		if alloc < b.DataRF[tt] {
			alloc = b.DataRF[tt]
		}
		newRF += alloc
	}
	if newRF <= float64(d.L1Bytes) {
		return nil
	}
	return []search.Prediction{{
		Param: idx, Value: int(math.Ceil(newRF)), Rule: "rf-grow",
		Why: fmt.Sprintf("NoC-traffic-bound on %v: grow RF %dB -> %.0fB for %.2fx more reuse", op, d.L1Bytes, newRF, target),
	}}
}

// mitigateObjectiveEnergy is the MinEnergy analysis path: it analyzes the
// additive energy tree of the sub-function and aggregates the predictions.
func (m *Model) mitigateObjectiveEnergy(r *eval.Result, le eval.LayerEval, maxBottlenecks int) ([]search.Prediction, string) {
	root := EnergyTree(le, r.Energy)
	bns := bottleneck.Analyze(root, maxBottlenecks)

	var preds []search.Prediction
	var explain strings.Builder
	explain.WriteString(bottleneck.Render(root))
	for i, bn := range bns {
		if bn.Scaling <= 1.001 {
			if i > 0 {
				continue
			}
			bn.Scaling = 2
		}
		ps := m.mitigateEnergy(bn, le, r.Design)
		stampProvenance(ps, bn)
		for _, p := range ps {
			fmt.Fprintf(&explain, "mitigate %s (%.0f%%, s=%.2f): %s\n",
				bn.Factor.Name, bn.Contribution*100, bn.Scaling, p.Why)
		}
		preds = append(preds, ps...)
	}
	return preds, explain.String()
}
