package accelmodel

import (
	"math"
	"strings"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/energy"
	"xdse/internal/eval"
	"xdse/internal/workload"
)

func TestEnergyTreeMatchesComposition(t *testing.T) {
	space, _, ev := setup()
	r := ev.Evaluate(compatiblePoint(space))
	le := r.Models[0].Layers[1]
	root := EnergyTree(le, r.Energy)
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	total := root.Eval()

	// Recompose from the breakdown.
	var noc, dram float64
	for _, op := range arch.Operands {
		noc += le.Perf.DataNoC[op]
		dram += le.Perf.DataOffchip[op]
	}
	est := r.Energy
	want := le.Perf.MACs*est.MACPJ + 3*le.Perf.MACs*est.RFAccessPJ +
		noc/2*est.L2AccessPJ + noc*est.NoCPerByte + dram*est.DRAMPerByte
	if math.Abs(total-want) > 1e-6*want {
		t.Fatalf("energy tree = %v, want %v", total, want)
	}
}

func TestEnergyTreeConsistentWithEvaluator(t *testing.T) {
	// The tree's total (pJ, one occurrence) must match the evaluator's
	// per-layer energy accounting (mJ, multiplicity included).
	space, _, ev := setup()
	r := ev.Evaluate(compatiblePoint(space))
	for _, le := range r.Models[0].Layers {
		if !le.Perf.Valid {
			continue
		}
		root := EnergyTree(le, r.Energy)
		pj := root.Eval()
		wantMJ := pj * float64(le.Layer.Mult) * 1e-9
		if math.Abs(wantMJ-le.EnergyMJ) > 1e-9+1e-6*le.EnergyMJ {
			t.Fatalf("%s: tree %v mJ vs evaluator %v mJ", le.Layer.Name, wantMJ, le.EnergyMJ)
		}
	}
}

func TestEnergyObjectiveMitigationGrowsBuffers(t *testing.T) {
	space := arch.EdgeSpace()
	cons := eval.EdgeConstraints()
	ev := eval.New(eval.Config{
		Space: space, Models: []*workload.Model{workload.ResNet18()},
		Constraints: cons, Mode: eval.FixedDataflow, Objective: eval.MinEnergy, Seed: 1,
	})
	m := New(space, cons)
	m.Objective = eval.MinEnergy

	r := ev.Evaluate(compatiblePoint(space))
	costs := m.SubCosts(r)
	for i, le := range r.Models[0].Layers {
		if costs[i] != le.EnergyMJ {
			t.Fatalf("energy sub cost %d = %v, want %v", i, costs[i], le.EnergyMJ)
		}
	}

	// DRAM energy dominates on this design; the mitigation must propose
	// growing a buffer (L1 or L2), never bandwidth (irrelevant to energy).
	grewBuffer := false
	for i := range r.Models[0].Layers {
		preds, explain := m.MitigateObjective(r, i, 2)
		if !strings.Contains(explain, FactorEnergy) && explain != "" {
			t.Fatalf("explanation not from the energy tree:\n%s", explain)
		}
		for _, p := range preds {
			name := space.Params[p.Param].Name
			if name == "offchip_MBps" || name == "PEs" {
				t.Fatalf("energy mitigation proposed %s", name)
			}
			if name == "L1_bytes" || name == "L2_KB" {
				grewBuffer = true
			}
		}
	}
	if !grewBuffer {
		t.Fatal("no buffer-growth prediction from the energy model")
	}
}

func TestPredictSpatialEnableVirtFirst(t *testing.T) {
	space, m, _ := setup()
	d := space.MustDecode(space.Initial()) // 64 PEs, 1 link, 1 virt per NoC
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[1]}
	le.Perf.Valid = true
	le.Perf.PEsUsed = 1

	preds := m.predictSpatialEnable(16, le, d)
	if len(preds) == 0 {
		t.Fatal("no spatial-enable predictions")
	}
	for _, p := range preds {
		name := space.Params[p.Param].Name
		if !strings.HasPrefix(name, "virt_unicast") {
			t.Fatalf("expected virtual-unicast predictions first, got %s", name)
		}
		if p.Value != 16 {
			t.Fatalf("virt prediction = %d, want 16", p.Value)
		}
	}
}

func TestPredictSpatialEnableLinksWhenVirtMaxed(t *testing.T) {
	space, m, _ := setup()
	pt := space.Initial()
	pt[arch.PPEs] = 6 // 4096 PEs
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PVirt0+op] = 3 // 512-way, the maximum
	}
	d := space.MustDecode(pt)
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[1]}
	le.Perf.Valid = true
	le.Perf.PEsUsed = 1

	// desired = 64*1 = 64 <= 512 virt -> no predictions at small scaling;
	// push scaling so desired parallelism exceeds virt capacity per link.
	preds := m.predictSpatialEnable(64, le, d)
	// With 64 links (4096*1/64) and 512 virt, capacity is 32768 >= 64,
	// so the engine falls through to plain PE scaling.
	for _, p := range preds {
		if space.Params[p.Param].Name != "PEs" {
			t.Fatalf("expected PE prediction fallback, got %s", space.Params[p.Param].Name)
		}
	}
	if len(preds) == 0 {
		t.Fatal("expected fallback PE prediction")
	}
}

func TestMitigateEnergyDispatch(t *testing.T) {
	space, _, _ := setup()
	d := space.MustDecode(compatiblePoint(space))
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[1]}
	le.Perf.Valid = true
	le.Perf.DataOffchip[arch.OpI] = 1e6
	le.Perf.DataOffchip[arch.OpW] = 1e5
	le.Perf.ReuseAvailSPM[1] = 8 // TI has remaining reuse
	le.Perf.DataSPM = [3]float64{2048, 2048, 2048}
	le.Perf.ReuseAvailSPM[0] = 1
	le.Perf.ReuseAvailSPM[2] = 1

	var em energy.Model
	est := em.Estimate(d)
	root := EnergyTree(le, est)
	if root.Eval() <= 0 {
		t.Fatal("zero energy")
	}
	// The DRAM factor must dominate this construction.
	contribDram := root.Find(FactorEDRAM)
	if contribDram == nil {
		t.Fatal("no DRAM factor")
	}
}
