package accelmodel

import (
	"math"
	"strings"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/bottleneck"
	"xdse/internal/energy"
	"xdse/internal/eval"
	"xdse/internal/workload"
)

func setup() (*arch.Space, *Model, *eval.Evaluator) {
	space := arch.EdgeSpace()
	cons := eval.EdgeConstraints()
	ev := eval.New(eval.Config{
		Space:       space,
		Models:      []*workload.Model{workload.ResNet18()},
		Constraints: cons,
		Mode:        eval.FixedDataflow,
		Seed:        1,
	})
	return space, New(space, cons), ev
}

// compatiblePoint returns a point whose fixed-dataflow mapping is valid.
func compatiblePoint(space *arch.Space) arch.Point {
	pt := space.Initial()
	pt[arch.PPEs] = 2 // 256 PEs
	pt[arch.PL1] = 4  // 128 B
	pt[arch.PL2] = 3  // 512 KB
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PVirt0+op] = 2 // 64-way time-sharing
	}
	return pt
}

func TestLatencyTreeMatchesBreakdown(t *testing.T) {
	space, _, ev := setup()
	r := ev.Evaluate(compatiblePoint(space))
	le := r.Models[0].Layers[1] // conv2_x
	if !le.Perf.Valid {
		t.Fatalf("layer invalid: %s", le.Perf.Incompat)
	}
	root := LatencyTree(le, r.Design)
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := root.Eval(); math.Abs(got-le.Perf.Cycles) > 1e-6*le.Perf.Cycles {
		t.Fatalf("tree root = %v, breakdown cycles = %v", got, le.Perf.Cycles)
	}
	if got := root.Find(FactorComp).Value; math.Abs(got-le.Perf.TComp) > 1e-9 {
		t.Fatalf("T_comp node = %v, want %v", got, le.Perf.TComp)
	}
	if got := root.Find(FactorDMA).Value; math.Abs(got-le.Perf.TDMA) > 1e-6*le.Perf.TDMA {
		t.Fatalf("T_dma node = %v, want %v", got, le.Perf.TDMA)
	}
	for _, op := range arch.Operands {
		if got := root.Find(nocFactor(op)).Value; got != le.Perf.TNoC[op] {
			t.Fatalf("T_noc_%v node = %v, want %v", op, got, le.Perf.TNoC[op])
		}
	}
}

func TestLatencyTreeParamsDictionary(t *testing.T) {
	space, _, ev := setup()
	r := ev.Evaluate(compatiblePoint(space))
	root := LatencyTree(r.Models[0].Layers[0], r.Design)
	// Fig. 8 dictionary: computation -> PEs; DMA -> bandwidth and L2;
	// NoC -> width, links, L1.
	comp := root.Find(FactorComp)
	if len(comp.Params) == 0 || comp.Params[0] != "PEs" {
		t.Fatalf("comp params = %v", comp.Params)
	}
	dma := root.Find(FactorDMA)
	joined := strings.Join(dma.Params, ",")
	if !strings.Contains(joined, "offchip_MBps") || !strings.Contains(joined, "L2_KB") {
		t.Fatalf("dma params = %v", dma.Params)
	}
	nocW := root.Find(nocFactor(arch.OpW))
	joined = strings.Join(nocW.Params, ",")
	for _, want := range []string{"noc_width_bits", "phys_unicast_W", "virt_unicast_W", "L1_bytes"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("W NoC params missing %s: %v", want, nocW.Params)
		}
	}
}

func TestSubCostsFlattenAndWeight(t *testing.T) {
	space, m, ev := setup()
	r := ev.Evaluate(compatiblePoint(space))
	costs := m.SubCosts(r)
	if len(costs) != len(r.Models[0].Layers) {
		t.Fatalf("sub costs = %d, want %d", len(costs), len(r.Models[0].Layers))
	}
	for i, le := range r.Models[0].Layers {
		if costs[i] != le.TotalCycles {
			t.Fatalf("sub %d cost = %v, want %v", i, costs[i], le.TotalCycles)
		}
	}
}

func TestSubCostsRankIncompatibleFirst(t *testing.T) {
	space, m, ev := setup()
	r := ev.Evaluate(space.Initial()) // incompatible at the minimum design
	costs := m.SubCosts(r)
	for i, le := range r.Models[0].Layers {
		if !le.Perf.Valid && costs[i] < 1e100 {
			t.Fatalf("incompatible layer %d cost = %v, must dominate", i, costs[i])
		}
	}
}

func TestMitigateObjectivePredictsPEsForComputeBound(t *testing.T) {
	space, m, ev := setup()
	// Compute-bound configuration: few PEs, generous everything else.
	pt := compatiblePoint(space)
	pt[arch.PPEs] = 0                                     // 64 PEs
	pt[arch.PBW] = len(space.Params[arch.PBW].Values) - 1 // max bandwidth
	pt[arch.PNoCWidth] = 15
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PPhys0+op] = 63
		pt[arch.PVirt0+op] = 3
	}
	pt[arch.PL1] = 5
	pt[arch.PL2] = 5
	r := ev.Evaluate(pt)

	// Find a compute-bound layer and check the PE prediction.
	for i, le := range r.Models[0].Layers {
		if !le.Perf.Valid || le.Perf.TComp <= le.Perf.TDMA {
			continue
		}
		if op, tn := le.Perf.MaxTNoC(); tn > le.Perf.TComp {
			_ = op
			continue
		}
		preds, explain := m.MitigateObjective(r, i, 1)
		if len(preds) == 0 {
			t.Fatalf("no predictions for compute-bound layer %d\n%s", i, explain)
		}
		if space.Params[preds[0].Param].Name != "PEs" {
			t.Fatalf("predicted %s, want PEs", space.Params[preds[0].Param].Name)
		}
		if preds[0].Value <= r.Design.PEs {
			t.Fatalf("PE prediction %d does not grow from %d", preds[0].Value, r.Design.PEs)
		}
		if !strings.Contains(explain, "T_comp") {
			t.Fatal("explanation missing the bottleneck factor")
		}
		return
	}
	t.Skip("no compute-bound layer in this configuration")
}

func TestMitigateObjectivePredictsBandwidthForDMABound(t *testing.T) {
	space, m, ev := setup()
	// DMA-bound configuration: many PEs, minimal bandwidth.
	pt := compatiblePoint(space)
	pt[arch.PPEs] = 4 // 1024 PEs
	pt[arch.PBW] = 0  // 1024 MBps
	r := ev.Evaluate(pt)
	for i, le := range r.Models[0].Layers {
		if !le.Perf.Valid || le.Perf.TDMA <= le.Perf.TComp {
			continue
		}
		if _, tn := le.Perf.MaxTNoC(); tn > le.Perf.TDMA {
			continue
		}
		preds, _ := m.MitigateObjective(r, i, 1)
		names := map[string]bool{}
		for _, p := range preds {
			names[space.Params[p.Param].Name] = true
			if p.Reduce {
				t.Fatal("objective mitigation must not shrink parameters")
			}
		}
		if !names["offchip_MBps"] && !names["L2_KB"] {
			t.Fatalf("DMA-bound predictions = %v, want bandwidth or L2", names)
		}
		return
	}
	t.Skip("no DMA-bound layer in this configuration")
}

func TestBandwidthFormula(t *testing.T) {
	// §4.7: offchip_BW_new = (footprint / (T_dma/s)) * freq.
	space, m, _ := setup()
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[0]}
	le.Perf.Valid = true
	le.Perf.TDMA = 1000
	le.Perf.DataOffchip[arch.OpW] = 3000
	le.Perf.DataOffchip[arch.OpI] = 1000
	d := space.MustDecode(space.Initial())
	preds := m.predictDMA(2.0, arch.OpW, le, d)
	wantBW := int(math.Ceil(4000.0 / 500.0 * float64(d.FreqMHz)))
	found := false
	for _, p := range preds {
		if space.Params[p.Param].Name == "offchip_MBps" {
			found = true
			if p.Value != wantBW {
				t.Fatalf("BW prediction = %d, want %d", p.Value, wantBW)
			}
		}
	}
	if !found {
		t.Fatal("no bandwidth prediction")
	}
}

func TestNoCWidthClampedToBroadcast(t *testing.T) {
	// §4.7: noc_width_new = min(width*s, bytes_per_group*8).
	space, m, _ := setup()
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[1]}
	le.Perf.Valid = true
	le.Perf.NoCBytesPerGroup[arch.OpI] = 6 // cap = 48 bits
	le.Perf.NoCGroups[arch.OpI] = 4
	d := space.MustDecode(space.Initial()) // width 16, 1 link
	preds := m.predictNoC(8.0, arch.OpI, le, d)
	for _, p := range preds {
		if space.Params[p.Param].Name == "noc_width_bits" {
			if p.Value != 48 { // min(16*8, 48)
				t.Fatalf("width prediction = %d, want 48", p.Value)
			}
			return
		}
	}
	t.Fatal("no width prediction")
}

func TestNoCLinksClampedToGroups(t *testing.T) {
	space, m, _ := setup()
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[1]}
	le.Perf.Valid = true
	le.Perf.NoCBytesPerGroup[arch.OpI] = 1000 // width unclamped
	le.Perf.NoCGroups[arch.OpI] = 3
	d := space.MustDecode(space.Initial())
	preds := m.predictNoC(16.0, arch.OpI, le, d)
	for _, p := range preds {
		if space.Params[p.Param].Name == "phys_unicast_I" {
			if p.Value != 3 { // min(1*16, groups=3)
				t.Fatalf("links prediction = %d, want 3", p.Value)
			}
			return
		}
	}
	t.Fatal("no links prediction")
}

func TestAmdahlScaling(t *testing.T) {
	// A = s*f / (1 - s + s*f); s=4, f=0.5 -> 2/(1-4+2) < 0 means
	// unachievable, so the target collapses to the available reuse.
	space, m, _ := setup()
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[1]}
	le.Perf.Valid = true
	le.Perf.TDMA = 100
	le.Perf.DataOffchip[arch.OpW] = 50
	le.Perf.DataOffchip[arch.OpI] = 50
	le.Perf.ReuseAvailSPM[0] = 8 // TW
	le.Perf.DataSPM[0] = 1024
	le.Perf.DataSPM[1] = 1024
	le.Perf.DataSPM[2] = 1024
	le.Perf.ReuseAvailSPM[1] = 1
	le.Perf.ReuseAvailSPM[2] = 1
	d := space.MustDecode(space.Initial()) // L2 = 64 KB
	preds := m.predictDMA(4.0, arch.OpW, le, d)
	for _, p := range preds {
		if space.Params[p.Param].Name == "L2_KB" {
			// target = min(8, +inf) = 8; new SPM = 1024*8/8 clamp ->
			// 1024 + 1024*8 + 1024*8 = 17408 B -> 17 KB. Current is
			// 64 KB so no growth prediction should fire.
			t.Fatalf("unexpected L2 prediction %d (current larger)", p.Value)
		}
	}
	// Shrink L2 so the prediction fires and check the arithmetic.
	d.L2KB = 4
	preds = m.predictDMA(4.0, arch.OpW, le, d)
	for _, p := range preds {
		if space.Params[p.Param].Name == "L2_KB" {
			if p.Value != 17 {
				t.Fatalf("L2 prediction = %d KB, want 17", p.Value)
			}
			return
		}
	}
	t.Fatal("no L2 prediction")
}

func TestMitigateConstraintsShrinks(t *testing.T) {
	space, m, ev := setup()
	pt := space.Initial()
	for i := range pt {
		pt[i] = len(space.Params[i].Values) - 1 // maximal design
	}
	r := ev.Evaluate(pt)
	if r.MeetsAreaPower {
		t.Fatal("maximal design should violate area/power")
	}
	preds, explain := m.MitigateConstraints(r)
	if len(preds) == 0 {
		t.Fatalf("no constraint mitigations\n%s", explain)
	}
	for _, p := range preds {
		if !p.Reduce {
			t.Fatalf("constraint mitigation must shrink: %+v", p)
		}
	}
	if !strings.Contains(explain, "area") && !strings.Contains(explain, "power") {
		t.Fatal("explanation missing violated constraint")
	}
}

func TestMitigateIncompatiblePredictsVirtualLinks(t *testing.T) {
	space, m, ev := setup()
	r := ev.Evaluate(space.Initial())
	var sub int
	found := false
	for i, le := range r.Models[0].Layers {
		if !le.Perf.Valid {
			sub = i
			found = true
			break
		}
	}
	if !found {
		t.Skip("initial design unexpectedly compatible")
	}
	preds, _ := m.MitigateObjective(r, sub, 2)
	if len(preds) == 0 {
		t.Fatal("no incompatibility mitigation")
	}
	sawVirt := false
	for _, p := range preds {
		if strings.HasPrefix(space.Params[p.Param].Name, "virt_unicast") {
			sawVirt = true
		}
	}
	if !sawVirt {
		t.Fatal("incompatibility mitigation must raise virtual unicast")
	}
}

func TestAreaPowerTrees(t *testing.T) {
	space, _, _ := setup()
	var em energy.Model
	est := em.Estimate(space.MustDecode(space.Initial()))
	at := AreaTree(est)
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := at.Eval(); math.Abs(got-est.AreaMM2) > 1e-9 {
		t.Fatalf("area tree = %v, want %v", got, est.AreaMM2)
	}
	ptree := PowerTree(est)
	if got := ptree.Eval(); math.Abs(got-est.MaxPowerW) > 1e-9 {
		t.Fatalf("power tree = %v, want %v", got, est.MaxPowerW)
	}
	// Bottleneck analysis of the component tree yields mitigable
	// parameters among the top components (the fixed control overhead
	// legitimately has none).
	withParams := 0
	for _, bn := range bottleneck.Analyze(at, 3) {
		if len(bn.Params) > 0 {
			withParams++
		}
	}
	if withParams == 0 {
		t.Fatal("no area bottleneck carries parameters")
	}
}

func TestSubRefOutOfRange(t *testing.T) {
	space, m, ev := setup()
	r := ev.Evaluate(compatiblePoint(space))
	preds, explain := m.MitigateObjective(r, 999, 2)
	if preds != nil || explain != "" {
		t.Fatal("out-of-range sub-function should be a no-op")
	}
}

func TestMitigateDispatchNoC(t *testing.T) {
	// Force a NoC-bottleneck dispatch through the public path: a design
	// with a tiny NoC but fast everything else.
	space, m, ev := setup()
	pt := compatiblePoint(space)
	pt[arch.PPEs] = 3                                     // 512 PEs
	pt[arch.PBW] = len(space.Params[arch.PBW].Values) - 1 // max BW
	pt[arch.PNoCWidth] = 0                                // 16-bit NoC
	pt[arch.PL1] = 6                                      // 512 B RF
	r := ev.Evaluate(pt)
	for i, le := range r.Models[0].Layers {
		if !le.Perf.Valid {
			continue
		}
		_, tn := le.Perf.MaxTNoC()
		if tn <= le.Perf.TComp || tn <= le.Perf.TDMA {
			continue
		}
		preds, _ := m.MitigateObjective(r, i, 1)
		if len(preds) == 0 {
			t.Fatal("NoC-bound layer produced no mitigation")
		}
		return
	}
	t.Skip("no NoC-bound layer in this configuration")
}

func TestMitigateIncompatibleBufferOverflows(t *testing.T) {
	space, m, _ := setup()
	d := space.MustDecode(space.Initial())
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[0]}
	le.Perf.Incompat = "RF tile exceeds L1 capacity"
	le.Perf.IncompatCount = 1
	preds, explain := m.mitigateIncompatible(le, d)
	if len(preds) != 1 || space.Params[preds[0].Param].Name != "L1_bytes" || preds[0].Value != 2*d.L1Bytes {
		t.Fatalf("RF overflow mitigation = %+v", preds)
	}
	if !strings.Contains(explain, "RF tile") {
		t.Fatal("explanation missing")
	}

	le.Perf.Incompat = "L2 tile exceeds scratchpad capacity"
	preds, _ = m.mitigateIncompatible(le, d)
	if len(preds) != 1 || space.Params[preds[0].Param].Name != "L2_KB" {
		t.Fatalf("L2 overflow mitigation = %+v", preds)
	}
}

func TestCurrentPhysicalResolvesEveryParameter(t *testing.T) {
	space, m, _ := setup()
	pt := compatiblePoint(space)
	d := space.MustDecode(pt)
	for i, p := range space.Params {
		got := m.currentPhysical(i, d)
		want := space.PhysicalValue(i, pt[i], d.PEs)
		if got != want {
			t.Fatalf("%s: currentPhysical = %d, want %d", p.Name, got, want)
		}
	}
}

func TestParamIndexUnknown(t *testing.T) {
	_, m, _ := setup()
	if _, ok := m.paramIndex("not-a-parameter"); ok {
		t.Fatal("unknown parameter resolved")
	}
}

func TestPredictSpatialEnableCapsAtPEs(t *testing.T) {
	space, m, _ := setup()
	d := space.MustDecode(space.Initial()) // 64 PEs
	le := eval.LayerEval{Layer: workload.ResNet18().Layers[1]}
	le.Perf.Valid = true
	le.Perf.PEsUsed = 32
	// Scaling 64 would ask for 2048-way parallelism; it must cap at the
	// 64 PEs the design has.
	preds := m.predictSpatialEnable(64, le, d)
	for _, p := range preds {
		if strings.HasPrefix(space.Params[p.Param].Name, "virt_unicast") && p.Value > 64 {
			t.Fatalf("virt prediction %d exceeds the PE count", p.Value)
		}
	}
}
