// Package accelmodel is the domain-specific bottleneck model of DNN
// accelerator latency described in §4.7 of the paper, expressed through the
// generic API of internal/bottleneck. It provides the three artifacts of
// Fig. 7: (a) the latency bottleneck graph of every layer execution
// (Fig. 8), plus area/power graphs for violated constraints; (b) the
// dictionary associating cost factors with design parameters; and (c) the
// mitigation subroutines that predict new parameter values from the
// required scaling and the execution characteristics of the current design.
package accelmodel

import (
	"fmt"
	"math"
	"strings"

	"xdse/internal/arch"
	"xdse/internal/bottleneck"
	"xdse/internal/energy"
	"xdse/internal/eval"
	"xdse/internal/mapping"
	"xdse/internal/search"
)

// Factor-node names of the latency tree; the parameter dictionary and the
// mitigation dispatch key on these.
const (
	FactorLatency = "latency"
	FactorComp    = "T_comp"
	FactorNoC     = "T_noc"
	FactorDMA     = "T_dma"
)

// nocFactor names the per-operand NoC factor node.
func nocFactor(op arch.Operand) string { return "T_noc_" + op.String() }

// dmaFactor names the per-operand DMA factor node.
func dmaFactor(op arch.Operand) string { return "T_dma_" + op.String() }

// LatencyTree builds the populated Fig. 8 bottleneck tree for one layer
// evaluation: latency = max(computation, per-operand NoC communication,
// additive DMA), with parameter associations at each factor.
func LatencyTree(le eval.LayerEval, d arch.Design) *bottleneck.Node {
	b := le.Perf

	comp := bottleneck.Div(FactorComp,
		bottleneck.NewLeaf("MACs", b.MACs),
		bottleneck.NewLeaf("PEs_used", float64(b.PEsUsed)),
	).WithParams("PEs")

	var nocKids []*bottleneck.Node
	for _, op := range arch.Operands {
		n := bottleneck.NewLeaf(nocFactor(op), b.TNoC[op]).
			WithParams("noc_width_bits",
				fmt.Sprintf("phys_unicast_%v", op),
				fmt.Sprintf("virt_unicast_%v", op),
				"L1_bytes")
		nocKids = append(nocKids, n)
	}
	noc := bottleneck.Max(FactorNoC, nocKids...)

	var dmaKids []*bottleneck.Node
	for _, op := range arch.Operands {
		n := bottleneck.NewLeaf(dmaFactor(op), b.TDMAOp[op]).
			WithParams("offchip_MBps", "L2_KB")
		dmaKids = append(dmaKids, n)
	}
	dma := bottleneck.Add(FactorDMA, dmaKids...).WithParams("offchip_MBps", "L2_KB")

	return bottleneck.Max(FactorLatency, comp, noc, dma)
}

// AreaTree builds the additive area bottleneck tree from the energy model's
// component breakdown, used when the area constraint is violated.
func AreaTree(est energy.Estimate) *bottleneck.Node {
	return componentTree("area_mm2", est.AreaByComp)
}

// PowerTree builds the additive peak-power bottleneck tree.
func PowerTree(est energy.Estimate) *bottleneck.Node {
	return componentTree("power_w", est.PowerByComp)
}

func componentTree(name string, byComp [energy.NumComponents]float64) *bottleneck.Node {
	params := map[energy.Component][]string{
		energy.CompPEs: {"PEs"},
		energy.CompRF:  {"L1_bytes", "PEs"},
		energy.CompL2:  {"L2_KB"},
		energy.CompNoC: {"noc_width_bits", "phys_unicast_W", "phys_unicast_I", "phys_unicast_Ord", "phys_unicast_Owr"},
		energy.CompDMA: {"offchip_MBps"},
	}
	var kids []*bottleneck.Node
	for c := energy.Component(0); c < energy.NumComponents; c++ {
		n := bottleneck.NewLeaf(c.String(), byComp[c])
		n.Params = params[c]
		kids = append(kids, n)
	}
	return bottleneck.Add(name, kids...)
}

// Model is the DNN-accelerator domain model consumed by the Explainable-DSE
// engine: it enumerates sub-function costs (unique layers across all target
// workloads) and turns bottleneck analyses into parameter predictions.
type Model struct {
	Space       *arch.Space
	Constraints eval.Constraints
	// Objective selects which bottleneck model drives the analysis:
	// the Fig. 8 latency tree (default) or the additive energy tree.
	Objective eval.Objective
}

// New returns a Model over the design space and constraint thresholds.
func New(space *arch.Space, c eval.Constraints) *Model {
	return &Model{Space: space, Constraints: c}
}

// paramIndex resolves a dictionary parameter name to its design-space index.
func (m *Model) paramIndex(name string) (int, bool) {
	for i, p := range m.Space.Params {
		if p.Name == name {
			return i, true
		}
	}
	return 0, false
}

// subRef locates sub-function i inside the evaluation result.
func subRef(r *eval.Result, i int) (mi, li int) {
	for mi = range r.Models {
		n := len(r.Models[mi].Layers)
		if i < n {
			return mi, i
		}
		i -= n
	}
	return -1, -1
}

// SubCosts returns the objective contribution of every sub-function: each
// unique layer's total cycles (multiplicity included) across all target
// workloads, flattened in model order. Layers whose mapping is incompatible
// with the design dominate the cost ranking so their incompatibility is
// mitigated first.
func (m *Model) SubCosts(raw any) []float64 {
	r := raw.(*eval.Result)
	var out []float64
	for _, me := range r.Models {
		for _, le := range me.Layers {
			c := le.TotalCycles
			if m.Objective == eval.MinEnergy {
				c = le.EnergyMJ
			}
			if !le.Perf.Valid {
				c = math.MaxFloat64 / 1e6
			}
			out = append(out, c)
		}
	}
	return out
}

// MitigateObjective analyzes the bottleneck tree of sub-function `sub` and
// returns up to maxBottlenecks mitigations (§4.3, §4.7) plus the rendered
// tree as the explanation artifact.
func (m *Model) MitigateObjective(raw any, sub, maxBottlenecks int) ([]search.Prediction, string) {
	r := raw.(*eval.Result)
	mi, li := subRef(r, sub)
	if mi < 0 {
		return nil, ""
	}
	le := r.Models[mi].Layers[li]
	if !le.Perf.Valid {
		return m.mitigateIncompatible(le, r.Design)
	}
	if m.Objective == eval.MinEnergy {
		return m.mitigateObjectiveEnergy(r, le, maxBottlenecks)
	}
	root := LatencyTree(le, r.Design)
	bns := bottleneck.Analyze(root, maxBottlenecks)

	var preds []search.Prediction
	var explain strings.Builder
	explain.WriteString(bottleneck.Render(root))
	for i, bn := range bns {
		if bn.Scaling <= 1.001 {
			if i > 0 {
				continue
			}
			// Balanced factors: keep pushing the primary one with a
			// default doubling — the §4.6 budget-aware update
			// rejects it once constraints can't afford more.
			bn.Scaling = 2
		}
		ps := m.mitigate(bn, le, r.Design)
		stampProvenance(ps, bn)
		for _, p := range ps {
			fmt.Fprintf(&explain, "mitigate %s (%.0f%%, s=%.2f): %s\n",
				bn.Factor.Name, bn.Contribution*100, bn.Scaling, p.Why)
		}
		preds = append(preds, ps...)
	}
	return preds, explain.String()
}

// stampProvenance fills the trace-provenance fields of predictions produced
// while mitigating one bottleneck: the subroutines name their Rule, the
// analysis loop attributes the driving factor, its cost contribution, and
// the targeted scaling. Already-attributed predictions are left alone.
func stampProvenance(ps []search.Prediction, bn bottleneck.Bottleneck) {
	for i := range ps {
		if ps[i].Factor == "" {
			ps[i].Factor = bn.Factor.Name
		}
		ps[i].Contribution = bn.Contribution
		ps[i].Scaling = bn.Scaling
	}
}

// mitigateIncompatible predicts the resource growth that makes an
// incompatible layer mappable: more time-shared unicast when spatial
// parallelism exceeds the NoC budget, and larger buffers when tiles
// overflow (these are the hardware/mapping incompatibilities §6.2 blames
// for the infeasibility of fixed-dataflow black-box DSE).
func (m *Model) mitigateIncompatible(le eval.LayerEval, d arch.Design) ([]search.Prediction, string) {
	var preds []search.Prediction
	b := le.Perf
	for _, op := range arch.Operands {
		if b.VirtNeeded[op] > d.VirtLinks[op] {
			if idx, ok := m.paramIndex(fmt.Sprintf("virt_unicast_%v", op)); ok {
				preds = append(preds, search.Prediction{
					Param: idx, Value: b.VirtNeeded[op],
					Factor: "incompatible", Rule: "incompat-virt",
					Why: fmt.Sprintf("incompatible: %v NoC needs %d-way time-sharing (has %d)", op, b.VirtNeeded[op], d.VirtLinks[op]),
				})
			}
		}
	}
	if strings.Contains(b.Incompat, "RF tile") {
		if idx, ok := m.paramIndex("L1_bytes"); ok {
			preds = append(preds, search.Prediction{
				Param: idx, Value: 2 * d.L1Bytes,
				Factor: "incompatible", Rule: "incompat-rf",
				Why: "incompatible: RF tile overflows L1; double it",
			})
		}
	}
	if strings.Contains(b.Incompat, "scratchpad") {
		if idx, ok := m.paramIndex("L2_KB"); ok {
			preds = append(preds, search.Prediction{
				Param: idx, Value: 2 * d.L2KB,
				Factor: "incompatible", Rule: "incompat-spm",
				Why: "incompatible: L2 tile overflows scratchpad; double it",
			})
		}
	}
	explain := "incompatible mapping: " + b.Incompat + "\n"
	return preds, explain
}

// mitigate dispatches on the bottleneck factor and applies the §4.7
// prediction subroutines.
func (m *Model) mitigate(bn bottleneck.Bottleneck, le eval.LayerEval, d arch.Design) []search.Prediction {
	switch bn.Factor.Name {
	case FactorComp:
		if le.Perf.PEsUsed*2 <= d.PEs {
			// The mapper left most PEs idle: computation is bound
			// not by the PE count but by whatever stops spatial
			// mappings — provision the NoCs for more concurrent
			// PE groups instead of buying more idle PEs.
			return m.predictSpatialEnable(bn.Scaling, le, d)
		}
		return m.predictPEs(bn.Scaling, d)
	case FactorNoC:
		op := criticalOperand(bn, nocFactor)
		return m.predictNoC(bn.Scaling, op, le, d)
	case FactorDMA:
		op := criticalOperand(bn, dmaFactor)
		return m.predictDMA(bn.Scaling, op, le, d)
	}
	return nil
}

// criticalOperand extracts the operand named on the bottleneck's critical
// path (e.g. "T_noc_I" -> OpI); it falls back to the heaviest operand name
// match or OpW.
func criticalOperand(bn bottleneck.Bottleneck, factor func(arch.Operand) string) arch.Operand {
	for _, n := range bn.Critical {
		for _, op := range arch.Operands {
			if n.Name == factor(op) {
				return op
			}
		}
	}
	return arch.OpW
}

// predictPEs: PEs_new = s * PEs_current.
func (m *Model) predictPEs(s float64, d arch.Design) []search.Prediction {
	idx, ok := m.paramIndex("PEs")
	if !ok {
		return nil
	}
	want := int(math.Ceil(s * float64(d.PEs)))
	return []search.Prediction{{
		Param: idx, Value: want, Rule: "scale-pes",
		Why: fmt.Sprintf("computation-bound: scale PEs %d -> %d (s=%.2f)", d.PEs, want, s),
	}}
}

// predictSpatialEnable targets the parallelism blockers of an execution
// whose mapping occupies far fewer PEs than the design provides: every
// operand NoC gets enough time-shared (and physical) unicast to serve the
// PE-group demand of an s-times-more-parallel mapping.
func (m *Model) predictSpatialEnable(s float64, le eval.LayerEval, d arch.Design) []search.Prediction {
	b := le.Perf
	desired := int(math.Ceil(s * math.Max(float64(b.PEsUsed), 1)))
	if desired > d.PEs {
		desired = d.PEs
	}
	var preds []search.Prediction
	for _, op := range arch.Operands {
		links := d.PhysLinks[op]
		if links < 1 {
			links = 1
		}
		// Time-shared unicast is the cheap way to admit parallelism;
		// physical links grow only once virtual capacity is exhausted
		// (performance-driven link growth comes from the NoC-time
		// mitigation, demand-clamped to the actual group count).
		shares := (desired + links - 1) / links
		if shares > d.VirtLinks[op] {
			idx, ok := m.paramIndex(fmt.Sprintf("virt_unicast_%v", op))
			if !ok {
				continue
			}
			maxVirt := m.Space.Params[idx].Values[len(m.Space.Params[idx].Values)-1]
			if shares <= maxVirt {
				preds = append(preds, search.Prediction{
					Param: idx, Value: shares, Rule: "spatial-virt",
					Why: fmt.Sprintf("only %d/%d PEs mappable: raise %v time-shared unicast to %d for %d-way parallelism", b.PEsUsed, d.PEs, op, shares, desired),
				})
			} else if lidx, ok := m.paramIndex(fmt.Sprintf("phys_unicast_%v", op)); ok {
				want := (desired + maxVirt - 1) / maxVirt
				if want > d.PhysLinks[op] {
					preds = append(preds, search.Prediction{
						Param: lidx, Value: want, Rule: "spatial-links",
						Why: fmt.Sprintf("only %d/%d PEs mappable: grow %v unicast links to %d (virtual capacity maxed)", b.PEsUsed, d.PEs, op, want),
					})
				}
			}
		}
	}
	if len(preds) == 0 {
		return m.predictPEs(s, d)
	}
	return preds
}

// predictNoC scales the bottleneck operand's NoC width and unicast links
// (clamped to the one-shot broadcast width and the concurrent-group demand)
// and sizes the RF to exploit the operand's remaining register-file reuse.
func (m *Model) predictNoC(s float64, op arch.Operand, le eval.LayerEval, d arch.Design) []search.Prediction {
	b := le.Perf
	var preds []search.Prediction

	// Bus width, clamped to a one-shot broadcast of the group payload.
	if idx, ok := m.paramIndex("noc_width_bits"); ok {
		maxWidth := b.NoCBytesPerGroup[op] * 8
		want := math.Min(float64(d.NoCWidthBits)*s, maxWidth)
		if want > float64(d.NoCWidthBits) {
			preds = append(preds, search.Prediction{
				Param: idx, Value: int(math.Ceil(want)), Rule: "noc-width",
				Why: fmt.Sprintf("%v NoC: widen bus %db -> %.0fb (broadcast cap %.0fb)", op, d.NoCWidthBits, want, maxWidth),
			})
		}
	}

	// Physical unicast links, clamped to the concurrent-group demand.
	if idx, ok := m.paramIndex(fmt.Sprintf("phys_unicast_%v", op)); ok {
		maxLinks := float64(b.NoCGroups[op])
		want := math.Min(float64(d.PhysLinks[op])*s, maxLinks)
		if want > float64(d.PhysLinks[op]) {
			preds = append(preds, search.Prediction{
				Param: idx, Value: int(math.Ceil(want)), Rule: "noc-links",
				Why: fmt.Sprintf("%v NoC: add unicast links %d -> %.0f (groups %d)", op, d.PhysLinks[op], want, b.NoCGroups[op]),
			})
		}
	}

	// Time-shared (virtual) unicast to admit more spatial parallelism.
	if idx, ok := m.paramIndex(fmt.Sprintf("virt_unicast_%v", op)); ok {
		if need := b.VirtNeeded[op]; need > 1 && need > d.VirtLinks[op]/2 {
			preds = append(preds, search.Prediction{
				Param: idx, Value: 2 * need, Rule: "noc-virt",
				Why: fmt.Sprintf("%v NoC: raise time-shared unicast to %d (needed %d)", op, 2*need, need),
			})
		}
	}

	// RF sizing: exploit the bottleneck operand's remaining RF reuse.
	rfPreds := m.predictRFGrowth(s, op, le, d)
	preds = append(preds, rfPreds...)
	rfPredicted := len(rfPreds) > 0
	// Every direct mitigation is clamped out (bus already covers the
	// broadcast payload, links cover the groups, no computable RF
	// target): grow the RF so larger payloads and more reuse become
	// possible — L1 is in the dictionary of NoC-time parameters.
	if len(preds) == 0 && !rfPredicted {
		if idx, ok := m.paramIndex("L1_bytes"); ok {
			preds = append(preds, search.Prediction{
				Param: idx, Value: 2 * d.L1Bytes, Rule: "rf-grow",
				Why: fmt.Sprintf("%v NoC bound with clamped width/links: double RF to %dB for larger broadcast payloads", op, 2*d.L1Bytes),
			})
		}
	}
	return preds
}

// predictDMA scales off-chip bandwidth to hit the target DMA time and sizes
// the scratchpad by the Amdahl-limited reuse of the bottleneck operand.
func (m *Model) predictDMA(s float64, op arch.Operand, le eval.LayerEval, d arch.Design) []search.Prediction {
	b := le.Perf
	var preds []search.Prediction

	footprint := 0.0
	for _, o := range arch.Operands {
		footprint += b.DataOffchip[o]
	}

	// Off-chip bandwidth: bytes_per_cycle = footprint / (T_dma / s).
	if idx, ok := m.paramIndex("offchip_MBps"); ok && b.TDMA > 0 {
		scaledT := b.TDMA / s
		bpcNew := footprint / scaledT
		want := int(math.Ceil(bpcNew * float64(d.FreqMHz)))
		if want > d.OffchipMBps {
			preds = append(preds, search.Prediction{
				Param: idx, Value: want, Rule: "dma-bandwidth",
				Why: fmt.Sprintf("DMA-bound: raise bandwidth %d -> %d MBps (s=%.2f)", d.OffchipMBps, want, s),
			})
		}
	}

	// Scratchpad sizing with Amdahl-limited achievable speedup A.
	preds = append(preds, m.predictSPMGrowth(s, op, le, d)...)
	return preds
}

// operandTensor maps an operand NoC to its logical tensor.
func operandTensor(op arch.Operand) mapping.Tensor {
	switch op {
	case arch.OpW:
		return mapping.TW
	case arch.OpI:
		return mapping.TI
	default:
		return mapping.TO
	}
}

// MitigateConstraints analyzes the area/power trees of a
// constraint-violating solution and predicts shrunken parameter values for
// the dominant components (footnote 4 of the paper: meet constraints first,
// even at the cost of communication time).
func (m *Model) MitigateConstraints(raw any) ([]search.Prediction, string) {
	r := raw.(*eval.Result)
	var preds []search.Prediction
	var explain strings.Builder

	type violated struct {
		tree  *bottleneck.Node
		s     float64
		label string
	}
	var trees []violated
	if r.AreaMM2 > m.Constraints.MaxAreaMM2 {
		trees = append(trees, violated{AreaTree(r.Energy), r.AreaMM2 / m.Constraints.MaxAreaMM2, "area"})
	}
	if r.PowerW > m.Constraints.MaxPowerW {
		trees = append(trees, violated{PowerTree(r.Energy), r.PowerW / m.Constraints.MaxPowerW, "power"})
	}
	for _, v := range trees {
		explain.WriteString(bottleneck.Render(v.tree))
		for _, bn := range bottleneck.Analyze(v.tree, 2) {
			s := v.s * 1.1 // shrink past the threshold with margin
			for _, name := range bn.Params {
				idx, ok := m.paramIndex(name)
				if !ok {
					continue
				}
				cur := m.currentPhysical(idx, r.Design)
				want := int(math.Floor(float64(cur) / s))
				if want < 1 {
					want = 1
				}
				if want < cur {
					p := search.Prediction{
						Param: idx, Value: want, Reduce: true,
						Factor: v.label, Scaling: v.s, Rule: "shrink",
						Why: fmt.Sprintf("%s violated (%.2fx): shrink %s %d -> %d", v.label, v.s, name, cur, want),
					}
					fmt.Fprintf(&explain, "%s\n", p.Why)
					preds = append(preds, p)
				}
			}
		}
	}
	return preds, explain.String()
}

// currentPhysical returns the physical value of parameter idx in design d.
func (m *Model) currentPhysical(idx int, d arch.Design) int {
	switch m.Space.Params[idx].Name {
	case "PEs":
		return d.PEs
	case "L1_bytes":
		return d.L1Bytes
	case "L2_KB":
		return d.L2KB
	case "offchip_MBps":
		return d.OffchipMBps
	case "noc_width_bits":
		return d.NoCWidthBits
	}
	for _, op := range arch.Operands {
		if m.Space.Params[idx].Name == fmt.Sprintf("phys_unicast_%v", op) {
			return d.PhysLinks[op]
		}
		if m.Space.Params[idx].Name == fmt.Sprintf("virt_unicast_%v", op) {
			return d.VirtLinks[op]
		}
	}
	return 1
}
