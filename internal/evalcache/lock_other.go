//go:build !unix

package evalcache

import "os"

// lockedFile on platforms without flock(2) degrades to in-process-only
// exclusion (the Store's mutex): concurrent writers in other processes may
// interleave appends, which the per-record CRC detects and load degrades to
// misses — slower, never wrong.
func lockedFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return func() { f.Close() }, nil
}
