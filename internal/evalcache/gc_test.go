package evalcache

import (
	"strings"
	"testing"
	"time"
)

func TestRecordCodecRoundTrip(t *testing.T) {
	rec := Record{Key: testKey(3), Entry: testEntry(3)}
	data, err := EncodeRecord(rec, "v-wire")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("encoded record missing trailing newline: %q", data)
	}
	got, version, err := DecodeRecord(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if version != "v-wire" {
		t.Fatalf("version = %q, want v-wire", version)
	}
	if got.Key != rec.Key {
		t.Fatalf("key round-trip: got %+v want %+v", got.Key, rec.Key)
	}
	if !entriesEqual(got.Entry, rec.Entry) {
		t.Fatalf("entry round-trip mismatch")
	}
	// A line without its newline must decode identically (wire transport
	// strips them).
	if _, _, err := DecodeRecord(strings.TrimSuffix(string(data), "\n")); err != nil {
		t.Fatalf("decode without newline: %v", err)
	}
}

// entriesEqual compares the fields the codec tests care about bit-exactly.
func entriesEqual(a, b Entry) bool {
	return a.Found == b.Found && a.Trials == b.Trials &&
		a.CostCalls == b.CostCalls && a.Mapping == b.Mapping &&
		a.Perf == b.Perf
}

func TestRecordCodecRejectsCorruption(t *testing.T) {
	rec := Record{Key: testKey(1), Entry: testEntry(1)}
	data, err := EncodeRecord(rec, "v-wire")
	if err != nil {
		t.Fatal(err)
	}
	line := string(data)
	// Flip one payload byte: the CRC must catch it.
	mid := len(line) / 2
	corrupt := line[:mid] + "X" + line[mid+1:]
	if _, _, err := DecodeRecord(corrupt); err == nil {
		t.Fatal("decode accepted a corrupted record")
	}
	if _, _, err := DecodeRecord("not a record at all"); err == nil {
		t.Fatal("decode accepted garbage")
	}
}

func TestKeyIDStableAndDistinct(t *testing.T) {
	a1, a2 := testKey(1).ID(), testKey(1).ID()
	if a1 != a2 || a1 == "" {
		t.Fatalf("ID not stable: %q vs %q", a1, a2)
	}
	if testKey(1).ID() == testKey(2).ID() {
		t.Fatal("distinct keys share an ID")
	}
}

func TestGetByID(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry(4)
	s.Put(testKey(4), want)
	rec, ok := s.GetByID(testKey(4).ID())
	if !ok {
		t.Fatal("GetByID miss for a present record")
	}
	if rec.Key != testKey(4) || !entriesEqual(rec.Entry, want) {
		t.Fatal("GetByID returned the wrong record")
	}
	if _, ok := s.GetByID("no-such-id"); ok {
		t.Fatal("GetByID hit for an absent id")
	}
}

func TestGCRetiresByLastAccess(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic clock: records 0..4 written at t=0, then 2 and 4
	// accessed at t=1000.
	clock := int64(0)
	s.now = func() int64 { return clock }
	for i := 0; i < 5; i++ {
		s.Put(testKey(i), testEntry(i))
	}
	clock = 1000
	for _, i := range []int{2, 4} {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Fatalf("warm-up Get(%d) missed", i)
		}
	}
	// At t=1500, a 600s horizon retires everything last touched at t=0.
	clock = 1500
	retired, err := s.GC(600 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if retired != 3 {
		t.Fatalf("retired %d records, want 3", retired)
	}
	if s.Len() != 2 {
		t.Fatalf("store has %d records after GC, want 2", s.Len())
	}
	if got := s.Metrics().Counter("evalcache_gc_retired_total").Value(); got != 3 {
		t.Fatalf("evalcache_gc_retired_total = %d, want 3", got)
	}
	for _, i := range []int{0, 1, 3} {
		if _, ok := s.Get(testKey(i)); ok {
			t.Fatalf("record %d survived GC", i)
		}
	}
	// The retirement must be durable: a fresh store sees only the kept
	// records, with their access stamps intact.
	s2, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d records, want 2", s2.Len())
	}
	for _, i := range []int{2, 4} {
		if _, ok := s2.Get(testKey(i)); !ok {
			t.Fatalf("kept record %d missing after reopen", i)
		}
	}
}

func TestGCRejectsNonPositiveAge(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(0); err == nil {
		t.Fatal("GC(0) accepted")
	}
	if _, err := s.GC(-time.Second); err == nil {
		t.Fatal("GC(<0) accepted")
	}
}

func TestGCKeepsEverythingWithinAge(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	clock := int64(100)
	s.now = func() int64 { return clock }
	for i := 0; i < 3; i++ {
		s.Put(testKey(i), testEntry(i))
	}
	clock = 150
	retired, err := s.GC(100 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if retired != 0 || s.Len() != 3 {
		t.Fatalf("GC retired %d (len %d), want 0 (3)", retired, s.Len())
	}
}
