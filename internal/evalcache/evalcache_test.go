package evalcache

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"xdse/internal/mapping"
	"xdse/internal/perf"
)

// testEntry builds an entry whose floats exercise the bit-exact codec:
// non-terminating binary expansions, extremes, and subnormals.
func testEntry(seed int) Entry {
	ent := Entry{
		Found:     true,
		Trials:    100 + seed,
		CostCalls: 40 + seed,
		LBPruned:  7,
	}
	for d := 0; d < int(mapping.NumDims); d++ {
		for l := 0; l < int(mapping.NumLevels); l++ {
			ent.Mapping.F[d][l] = 1 + (d+l+seed)%5
		}
	}
	ent.Mapping.DRAMStationary = mapping.Tensor(seed % int(mapping.NumTensors))
	ent.Mapping.NoCStationary = mapping.Tensor((seed + 1) % int(mapping.NumTensors))

	b := &ent.Perf
	b.Valid = true
	b.TComp = 1.0/3.0 + float64(seed)
	b.TDMA = math.Pi * float64(seed+1)
	b.Cycles = math.MaxFloat64 / 2
	b.MACs = 5e-324 // smallest subnormal
	b.PEsUsed = 64
	for i := range b.TNoC {
		b.TNoC[i] = 0.1 * float64(i+seed)
		b.TDMAOp[i] = 0.7 / float64(i+1)
		b.DataOffchip[i] = float64(i) + 1.0/7.0
		b.DataNoC[i] = float64(i) * math.Sqrt2
		b.NoCGroups[i] = i + seed
		b.NoCBytesPerGroup[i] = 1024.5 * float64(i)
		b.VirtNeeded[i] = i
	}
	for i := range b.DataRF {
		b.DataRF[i] = 1e-9 * float64(i+1)
		b.DataSPM[i] = 1e9 + float64(i)
		b.ReuseAvailRF[i] = float64(i) / 3.0
		b.ReuseAvailSPM[i] = float64(i) / 9.0
	}
	return ent
}

func testKey(i int) Key {
	return Key{Shape: "1|3,3,64,64,56,56|1", Sub: "sub", Mode: "pruned-mappings", Trials: 500, Salt: int64(i)}
}

func TestRoundTripBitExact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]Entry{}
	for i := 0; i < 5; i++ {
		want[i] = testEntry(i)
		s.Put(testKey(i), want[i])
	}
	// A fresh store over the same directory must reproduce every field
	// bit-for-bit from disk alone.
	s2, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("reopened store has %d records, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("key %d: round trip not bit-exact:\n got  %+v\n want %+v", i, got, want[i])
		}
	}
}

func TestDuplicatePutIsNoop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(0), testEntry(0))
	s.Put(testKey(0), testEntry(0))
	if got := s.Metrics().Counter("evalcache_records_written_total").Value(); got != 1 {
		t.Errorf("writes = %d, want 1 (duplicate Put must not re-append)", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

// TestCorruptRecordIsMissNeverWrong flips bytes in one record and checks the
// contract: that record degrades to a miss, every other record still loads,
// and the damage is compacted away so the next open is clean.
func TestCorruptRecordIsMissNeverWrong(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Put(testKey(i), testEntry(i))
	}
	path := filepath.Join(dir, dataFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Corrupt the middle record's payload (CRC now mismatches).
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0xFF
	lines[1] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatalf("open over corrupt file must succeed, got %v", err)
	}
	if got := s2.Metrics().Counter("evalcache_corrupt_records_total").Value(); got != 1 {
		t.Errorf("corrupt counter = %d, want 1", got)
	}
	if _, ok := s2.Get(testKey(1)); ok {
		t.Error("corrupted record served as a hit")
	}
	for _, i := range []int{0, 2} {
		got, ok := s2.Get(testKey(i))
		if !ok {
			t.Fatalf("intact record %d lost", i)
		}
		if !reflect.DeepEqual(got, testEntry(i)) {
			t.Errorf("intact record %d altered by recovery", i)
		}
	}
	// Compaction rewrote the file: a third open sees no corruption.
	s3, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Metrics().Counter("evalcache_corrupt_records_total").Value(); got != 0 {
		t.Errorf("corruption not compacted away: counter = %d after reopen", got)
	}
	if s3.Len() != 2 {
		t.Errorf("compacted store has %d records, want 2", s3.Len())
	}
}

// TestTornTailLosesOnlyLastRecord simulates a writer killed mid-append.
func TestTornTailLosesOnlyLastRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Put(testKey(i), testEntry(i))
	}
	path := filepath.Join(dir, dataFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("torn tail: %d records survive, want 2", s2.Len())
	}
	if _, ok := s2.Get(testKey(2)); ok {
		t.Error("torn record served as a hit")
	}
}

// TestStaleVersionRetired checks that records written under another
// cost-model version read as misses and are physically retired.
func TestStaleVersionRetired(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "model-a"})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(0), testEntry(0))

	s2, err := Open(dir, Options{Version: "model-b"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("stale records loaded: Len = %d", s2.Len())
	}
	if got := s2.Metrics().Counter("evalcache_stale_records_total").Value(); got != 1 {
		t.Errorf("stale counter = %d, want 1", got)
	}
	// The model-b open compacted the model-a record out of the file.
	s3, err := Open(dir, Options{Version: "model-a"})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 0 {
		t.Errorf("retired record resurrected: Len = %d", s3.Len())
	}
}

func TestDefaultVersionIsModelVersion(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != perf.ModelVersion() {
		t.Errorf("default version = %q, want perf.ModelVersion() = %q", s.Version(), perf.ModelVersion())
	}
}

// TestIndexBound checks the FIFO leak guard: the in-memory index stays within
// MaxEntries while the file keeps everything for the next open.
func TestIndexBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "v-test", MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put(testKey(i), testEntry(i))
	}
	if s.Len() > 4 {
		t.Errorf("bounded index holds %d entries, cap 4", s.Len())
	}
	if got := s.Metrics().Counter("evalcache_index_evictions_total").Value(); got != 6 {
		t.Errorf("evictions = %d, want 6", got)
	}
	s2, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 10 {
		t.Errorf("reopen sees %d records, want all 10 (eviction is memory-only)", s2.Len())
	}
}

// TestConcurrentStoresShareDirectory drives two Stores over one directory
// from many goroutines — the cross-process contention shape, in-process so
// the race detector can see it — then proves the resulting file is fully
// intact: every record written by either store loads CRC-clean.
func TestConcurrentStoresShareDirectory(t *testing.T) {
	dir := t.TempDir()
	sa, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	const perStore = 20
	var wg sync.WaitGroup
	for g, s := range []*Store{sa, sb} {
		wg.Add(1)
		go func(g int, s *Store) {
			defer wg.Done()
			for i := 0; i < perStore; i++ {
				s.Put(testKey(g*1000+i), testEntry(i))
				s.Get(testKey(i))
			}
		}(g, s)
	}
	wg.Wait()

	s2, err := Open(dir, Options{Version: "v-test"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Metrics().Counter("evalcache_corrupt_records_total").Value(); got != 0 {
		t.Errorf("concurrent appends corrupted %d records", got)
	}
	if s2.Len() != 2*perStore {
		t.Errorf("reopen sees %d records, want %d", s2.Len(), 2*perStore)
	}
	for g := 0; g < 2; g++ {
		for i := 0; i < perStore; i++ {
			got, ok := s2.Get(testKey(g*1000 + i))
			if !ok {
				t.Fatalf("record (%d,%d) lost under concurrency", g, i)
			}
			if !reflect.DeepEqual(got, testEntry(i)) {
				t.Fatalf("record (%d,%d) altered under concurrency", g, i)
			}
		}
	}
}
