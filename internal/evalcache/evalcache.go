// Package evalcache is the cross-run persistent half of the two-level
// evaluation cache: a content-addressed, on-disk store of completed
// layer-grain mapping-search results. The in-memory layer cache of
// internal/eval answers repeats within one evaluator; this store answers
// repeats across runs, jobs, and processes sharing a cache directory, so an
// identical sub-evaluation submitted tomorrow — or by another daemon worker
// — hits disk instead of the cost model.
//
// Content addressing: a record is keyed by everything the search result
// depends on — the layer's canonical shape (workload.Layer.ShapeKey), the
// design sub-key of exactly the parameters the perf model reads
// (perf.MappingSubKey), the mapper mode and its trial budget, the
// random-mode rng seed, and the cost-model version (perf.ModelVersion).
// Records carrying a different model version are counted stale and retired
// at load, so a cost-model change silently invalidates the store instead of
// replaying outdated costs.
//
// Durability follows the checkpoint journal discipline: records are
// CRC-guarded JSONL lines with floats in bit-exact hex form, appended under
// an advisory cross-process file lock with a write-then-fsync cadence.
// Loading tolerates torn tails and corrupt lines — a record that fails its
// CRC degrades to a cache miss (counted, then physically compacted away),
// never to a wrong result.
package evalcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"xdse/internal/mapping"
	"xdse/internal/obs"
	"xdse/internal/perf"
)

// dataFile and lockFile name the two on-disk pieces of a cache directory.
const (
	dataFile = "evalcache.jsonl"
	lockFile = "evalcache.lock"
)

// Key is the content address of one layer-grain search result. Two searches
// with equal keys are bit-identical by construction (the searches are
// deterministic), which is what makes serving one from disk sound.
type Key struct {
	// Shape is the layer's canonical shape key (workload.Layer.ShapeKey).
	Shape string
	// Sub is the mapping-relevant design sub-key (perf.MappingSubKey).
	Sub string
	// Mode is the mapper mode name (eval.MapperMode.String()); each mode
	// runs a different search over the same (shape, sub) pair.
	Mode string
	// Trials is the per-layer search budget — it bounds the explored
	// space, so results under different budgets are distinct entries.
	Trials int
	// Salt is the random-mode rng seed (the evaluator's seed folded with
	// the layer index); zero in the deterministic modes.
	Salt int64
}

// ID returns the key's stable content-address digest — the currency of the
// networked cache surface (GET /cache/{id} on the serve daemon) and of any
// other context that needs a flat, URL-safe name for a record. It hashes the
// canonical JSON rendering of the key, so two equal keys always share an ID
// and any field change produces a new one.
func (k Key) ID() string {
	data, _ := json.Marshal(k) // Key is plain strings and ints; cannot fail
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// Record pairs a content address with its entry — the unit the wire-level
// APIs (EncodeRecord/DecodeRecord, the fleet protocol, GET /cache/{id})
// move between processes.
type Record struct {
	Key   Key
	Entry Entry
}

// EncodeRecord renders one record as a CRC-guarded JSONL line (newline
// included) under the given cost-model version stamp — the exact on-disk
// format, exposed so records can travel over the network and be re-verified
// (CRC and version both) at the receiving end.
func EncodeRecord(rec Record, version string) ([]byte, error) {
	return encode(rec.Key, rec.Entry, version, 0)
}

// DecodeRecord parses one EncodeRecord line (trailing newline optional),
// verifying the CRC before trusting the payload, and returns the record with
// the version stamp it was written under. Callers must check the version
// against their own perf.ModelVersion before installing the entry.
func DecodeRecord(line string) (Record, string, error) {
	key, ent, version, _, err := decode(strings.TrimSuffix(line, "\n"))
	if err != nil {
		return Record{}, "", err
	}
	return Record{Key: key, Entry: ent}, version, nil
}

// Entry is the shape-invariant outcome of one layer mapping search — the
// persistent twin of internal/eval's layerEntry. Every field participates
// in the bit-identical replay contract: a run answered from Entry values is
// trace-fingerprint-identical to the run that computed them.
type Entry struct {
	Found        bool
	Mapping      mapping.Mapping
	Perf         perf.Breakdown
	Trials       int
	CostCalls    int
	LBPruned     int
	WarmFallback bool
}

// Options tunes a Store.
type Options struct {
	// Version stamps written records and retires read records that carry a
	// different stamp. Empty selects perf.ModelVersion().
	Version string
	// MaxEntries bounds the in-memory index (FIFO); the file keeps evicted
	// records and a later Open sees them again. 0 selects the default
	// (1<<20), negative disables the bound. This is a leak guard for
	// long-running daemons, not a working-set knob.
	MaxEntries int
	// Registry receives the store's counters (loads, corrupt, stale,
	// writes, write errors, index evictions). Nil selects a private one.
	Registry *obs.Registry
	// Warnf receives non-fatal recovery warnings (corrupt lines dropped,
	// append failures). The default discards them.
	Warnf func(format string, args ...any)
}

func (o Options) maxEntries() int {
	switch {
	case o.MaxEntries == 0:
		return 1 << 20
	case o.MaxEntries < 0:
		return 0 // unbounded
	}
	return o.MaxEntries
}

// Store is one open persistent cache over a directory. It is safe for
// concurrent use within a process, and any number of Stores — in this
// process or others — may share a directory: appends are serialized by an
// advisory file lock, and readers treat every record as immutable.
type Store struct {
	dir      string
	dataPath string
	lockPath string
	version  string
	maxN     int
	warnf    func(format string, args ...any)

	reg        *obs.Registry
	cLoaded    *obs.Counter
	cCorrupt   *obs.Counter
	cStale     *obs.Counter
	cWrites    *obs.Counter
	cWriteErrs *obs.Counter
	cEvicted   *obs.Counter
	cGCRetired *obs.Counter

	// now supplies last-access timestamps (unix seconds); tests override it
	// to drive GC deterministically.
	now func() int64

	mu    sync.Mutex
	idx   map[Key]Entry
	ids   map[string]Key // Key.ID() -> Key, the networked-lookup index
	atime map[Key]int64  // last access (unix seconds), the GC currency
	order []Key
	head  int
}

// Open opens (creating if needed) the persistent cache in dir, loading every
// intact, version-current record into the in-memory index. Corrupt lines and
// stale-version records are counted, dropped, and — when any were found —
// compacted out of the file under the cross-process lock, so damage decays
// to misses exactly once instead of being re-scanned forever.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	version := opts.Version
	if version == "" {
		version = perf.ModelVersion()
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	warnf := opts.Warnf
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	s := &Store{
		dir:      dir,
		dataPath: filepath.Join(dir, dataFile),
		lockPath: filepath.Join(dir, lockFile),
		version:  version,
		maxN:     opts.maxEntries(),
		warnf:    warnf,

		reg:        reg,
		cLoaded:    reg.Counter("evalcache_records_loaded_total"),
		cCorrupt:   reg.Counter("evalcache_corrupt_records_total"),
		cStale:     reg.Counter("evalcache_stale_records_total"),
		cWrites:    reg.Counter("evalcache_records_written_total"),
		cWriteErrs: reg.Counter("evalcache_write_errors_total"),
		cEvicted:   reg.Counter("evalcache_index_evictions_total"),
		cGCRetired: reg.Counter("evalcache_gc_retired_total"),

		now: func() int64 { return time.Now().Unix() },

		idx:   make(map[Key]Entry),
		ids:   make(map[string]Key),
		atime: make(map[Key]int64),
	}
	unlock, err := lockedFile(s.lockPath)
	if err != nil {
		return nil, err
	}
	defer unlock()
	if err := s.loadLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadLocked reads the data file into the index and, when any corrupt or
// stale lines were dropped, rewrites the file with only the surviving
// records (write-temp + fsync + atomic rename). Caller holds the file lock.
func (s *Store) loadLocked() error {
	data, err := os.ReadFile(s.dataPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	dropped := 0
	rest := string(data)
	lineNo := 0
	for rest != "" {
		lineNo++
		text, tail, complete := strings.Cut(rest, "\n")
		if !complete {
			// Torn tail: the signature of a killed writer. Unlike the
			// checkpoint journal there is no ordering to preserve, so
			// only this line is lost.
			s.warnf("evalcache: %s line %d: torn write (no newline), dropping", s.dataPath, lineNo)
			s.cCorrupt.Inc()
			dropped++
			break
		}
		rest = tail
		key, ent, version, at, err := decode(text)
		if err != nil {
			// Records are independent; a corrupt line costs exactly that
			// line, and the scan continues at the next newline.
			s.warnf("evalcache: %s line %d: %v — dropping", s.dataPath, lineNo, err)
			s.cCorrupt.Inc()
			dropped++
			continue
		}
		if version != s.version {
			s.cStale.Inc()
			dropped++
			continue
		}
		if _, ok := s.idx[key]; ok {
			continue // duplicate append from a concurrent writer; first wins
		}
		s.insert(key, ent, at)
		s.cLoaded.Inc()
	}
	if dropped > 0 {
		if err := s.compactLocked(); err != nil {
			// The damaged file still loads (damage reads as misses), so a
			// failed compaction is a warning, not an open failure.
			s.warnf("evalcache: compaction failed, keeping damaged file: %v", err)
		}
	}
	return nil
}

// compactLocked rewrites the data file with exactly the live index. Caller
// holds both s.mu (or has exclusive access) and the file lock.
func (s *Store) compactLocked() error {
	tmpPath := s.dataPath + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	for i := s.head; i < len(s.order); i++ {
		key := s.order[i]
		data, err := encode(key, s.idx[key], s.version, s.atime[key])
		if err == nil {
			_, err = tmp.Write(data)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpPath, s.dataPath)
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Version returns the cost-model version this store reads and writes.
func (s *Store) Version() string { return s.version }

// Metrics returns the store's counter registry (see Options.Registry).
func (s *Store) Metrics() *obs.Registry { return s.reg }

// Len returns the number of records in the in-memory index.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Get answers a lookup from the in-memory index. Records appended by other
// processes after this store opened are not visible until a reopen — the
// cost is a recompute plus a harmless duplicate append, never wrongness.
func (s *Store) Get(key Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.idx[key]
	if ok {
		// A hit refreshes the record's last-access stamp so GC retires by
		// usefulness, not by write age. The refresh reaches disk at the next
		// compaction; losing it merely ages the record back toward its last
		// persisted stamp.
		s.atime[key] = s.now()
	}
	return ent, ok
}

// GetByID answers a lookup by content-address digest (Key.ID) — the
// networked read path, where callers hold a flat record ID instead of the
// structured key. Hits refresh the record's last-access stamp like Get.
func (s *Store) GetByID(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.ids[id]
	if !ok {
		return Record{}, false
	}
	s.atime[key] = s.now()
	return Record{Key: key, Entry: s.idx[key]}, true
}

// GC retires every record whose last access is older than maxAge, then
// compacts the file so the retired lines are physically gone, all under the
// cross-process lock. Access times refresh on Get/GetByID hits and persist
// through compactions; records written before access stamps existed carry a
// zero stamp and are always GC-eligible. Returns the number of records
// retired. maxAge must be positive — a zero or negative age would silently
// empty the store.
func (s *Store) GC(maxAge time.Duration) (int, error) {
	if maxAge <= 0 {
		return 0, fmt.Errorf("evalcache: GC max age must be positive, got %v", maxAge)
	}
	unlock, err := lockedFile(s.lockPath)
	if err != nil {
		return 0, err
	}
	defer unlock()
	s.mu.Lock()
	defer s.mu.Unlock()

	cutoff := s.now() - int64(maxAge/time.Second)
	retired := 0
	keep := make([]Key, 0, len(s.order)-s.head)
	for i := s.head; i < len(s.order); i++ {
		key := s.order[i]
		if s.atime[key] >= cutoff {
			keep = append(keep, key)
			continue
		}
		delete(s.idx, key)
		delete(s.ids, key.ID())
		delete(s.atime, key)
		retired++
	}
	s.order, s.head = keep, 0
	s.cGCRetired.Add(int64(retired))
	if retired == 0 {
		return 0, nil
	}
	if err := s.compactLocked(); err != nil {
		// The index already dropped the retired records; a failed rewrite
		// leaves them on disk where the next successful compaction (or the
		// next Open) retires them again.
		return retired, fmt.Errorf("evalcache: GC compaction: %w", err)
	}
	return retired, nil
}

// Put records one completed search: into the index immediately, and onto
// disk as a CRC'd line appended under the cross-process file lock and
// fsync'd before the lock is released. A key already present is a no-op (the
// entry is identical by the determinism contract). Disk failures degrade the
// store to memory-only for that record — counted and warned, never fatal.
func (s *Store) Put(key Key, ent Entry) {
	s.mu.Lock()
	if _, ok := s.idx[key]; ok {
		s.mu.Unlock()
		return
	}
	at := s.now()
	s.insert(key, ent, at)
	s.mu.Unlock()

	data, err := encode(key, ent, s.version, at)
	if err != nil {
		s.cWriteErrs.Inc()
		s.warnf("evalcache: encode: %v", err)
		return
	}
	if err := s.appendLocked(data); err != nil {
		s.cWriteErrs.Inc()
		s.warnf("evalcache: append: %v", err)
		return
	}
	s.cWrites.Inc()
}

// appendLocked writes one encoded record under the advisory file lock. The
// data file is reopened per append so a compaction's atomic rename (by this
// or any other process) is always observed — the lock orders the open, the
// single write, and the fsync against every other writer's.
func (s *Store) appendLocked(data []byte) error {
	unlock, err := lockedFile(s.lockPath)
	if err != nil {
		return err
	}
	defer unlock()
	f, err := os.OpenFile(s.dataPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// insert adds a key to the index and FIFO-evicts beyond the bound. Caller
// holds s.mu (or has exclusive access during load).
func (s *Store) insert(key Key, ent Entry, at int64) {
	s.idx[key] = ent
	s.ids[key.ID()] = key
	s.atime[key] = at
	s.order = append(s.order, key)
	for s.maxN > 0 && len(s.idx) > s.maxN {
		old := s.order[s.head]
		s.head++
		delete(s.idx, old)
		delete(s.ids, old.ID())
		delete(s.atime, old)
		s.cEvicted.Inc()
	}
	if s.head > len(s.order)/2 && s.head > 64 {
		s.order = append([]Key(nil), s.order[s.head:]...)
		s.head = 0
	}
}

// wireRecord is the JSON form of one cache line. Floats travel as hex-float
// strings (strconv 'x' format) so the round trip is bit-exact — the replay
// contract is fingerprint identity, and a decimal round trip cannot
// guarantee that.
type wireRecord struct {
	V      string    `json:"v"` // cost-model version stamp
	Shape  string    `json:"shape"`
	Sub    string    `json:"sub"`
	Mode   string    `json:"mode"`
	Budget int       `json:"budget"`
	Salt   int64     `json:"salt,omitempty"`
	At     int64     `json:"at,omitempty"` // last access, unix seconds (0 = pre-GC record)
	Entry  wireEntry `json:"entry"`
}

type wireEntry struct {
	Found        bool      `json:"found"`
	F            [][]int   `json:"f,omitempty"` // tiling factors, [dim][level]
	DRAMStat     int       `json:"dram_stat"`
	NoCStat      int       `json:"noc_stat"`
	Trials       int       `json:"trials"`
	CostCalls    int       `json:"cost_calls"`
	LBPruned     int       `json:"lb_pruned"`
	WarmFallback bool      `json:"warm_fallback,omitempty"`
	Perf         wireBreak `json:"perf"`
}

type wireBreak struct {
	Valid         bool     `json:"valid"`
	Incompat      string   `json:"incompat,omitempty"`
	IncompatCount int      `json:"incompat_count,omitempty"`
	TComp         string   `json:"t_comp"`
	TNoC          []string `json:"t_noc"`
	TDMA          string   `json:"t_dma"`
	TDMAOp        []string `json:"t_dma_op"`
	Cycles        string   `json:"cycles"`
	PEsUsed       int      `json:"pes_used"`
	DataOffchip   []string `json:"data_offchip"`
	DataNoC       []string `json:"data_noc"`
	NoCGroups     []int    `json:"noc_groups"`
	NoCBytesPG    []string `json:"noc_bytes_per_group"`
	VirtNeeded    []int    `json:"virt_needed"`
	DataRF        []string `json:"data_rf"`
	DataSPM       []string `json:"data_spm"`
	ReuseRF       []string `json:"reuse_rf"`
	ReuseSPM      []string `json:"reuse_spm"`
	MACs          string   `json:"macs"`
}

// formatF and parseF are the bit-exact float codec (shared convention with
// internal/checkpoint).
func formatF(v float64) string         { return strconv.FormatFloat(v, 'x', -1, 64) }
func parseF(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func encodeFloats(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = formatF(v)
	}
	return out
}

func decodeFloats(ss []string, want int) ([]float64, error) {
	if len(ss) != want {
		return nil, fmt.Errorf("float array has %d elements, want %d", len(ss), want)
	}
	out := make([]float64, want)
	for i, s := range ss {
		v, err := parseF(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func decodeInts(vs []int, want int) ([]int, error) {
	if len(vs) != want {
		return nil, fmt.Errorf("int array has %d elements, want %d", len(vs), want)
	}
	return vs, nil
}

// nOps and nTensors are the fixed array widths of perf.Breakdown, pinned
// here so a dimensionality change shows up as a decode failure (and a
// ModelVersion change) rather than a silent reinterpretation.
const (
	nOps     = len(perf.Breakdown{}.TNoC)
	nTensors = len(perf.Breakdown{}.DataRF)
)

// encode renders a record as one CRC'd JSONL line (newline included); at is
// the last-access stamp carried for GC (0 on pure wire-transport lines).
func encode(key Key, ent Entry, version string, at int64) ([]byte, error) {
	we := wireEntry{
		Found:        ent.Found,
		DRAMStat:     int(ent.Mapping.DRAMStationary),
		NoCStat:      int(ent.Mapping.NoCStationary),
		Trials:       ent.Trials,
		CostCalls:    ent.CostCalls,
		LBPruned:     ent.LBPruned,
		WarmFallback: ent.WarmFallback,
	}
	we.F = make([][]int, mapping.NumDims)
	for d := 0; d < int(mapping.NumDims); d++ {
		we.F[d] = make([]int, mapping.NumLevels)
		for l := 0; l < int(mapping.NumLevels); l++ {
			we.F[d][l] = ent.Mapping.F[d][l]
		}
	}
	b := ent.Perf
	we.Perf = wireBreak{
		Valid:         b.Valid,
		Incompat:      b.Incompat,
		IncompatCount: b.IncompatCount,
		TComp:         formatF(b.TComp),
		TNoC:          encodeFloats(b.TNoC[:]),
		TDMA:          formatF(b.TDMA),
		TDMAOp:        encodeFloats(b.TDMAOp[:]),
		Cycles:        formatF(b.Cycles),
		PEsUsed:       b.PEsUsed,
		DataOffchip:   encodeFloats(b.DataOffchip[:]),
		DataNoC:       encodeFloats(b.DataNoC[:]),
		NoCGroups:     append([]int(nil), b.NoCGroups[:]...),
		NoCBytesPG:    encodeFloats(b.NoCBytesPerGroup[:]),
		VirtNeeded:    append([]int(nil), b.VirtNeeded[:]...),
		DataRF:        encodeFloats(b.DataRF[:]),
		DataSPM:       encodeFloats(b.DataSPM[:]),
		ReuseRF:       encodeFloats(b.ReuseAvailRF[:]),
		ReuseSPM:      encodeFloats(b.ReuseAvailSPM[:]),
		MACs:          formatF(b.MACs),
	}
	data, err := json.Marshal(wireRecord{
		V:      version,
		Shape:  key.Shape,
		Sub:    key.Sub,
		Mode:   key.Mode,
		Budget: key.Trials,
		Salt:   key.Salt,
		At:     at,
		Entry:  we,
	})
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(data), data)), nil
}

// decode parses one line (without its newline), verifying the CRC before
// trusting anything in the payload; the fourth return is the record's
// last-access stamp.
func decode(text string) (Key, Entry, string, int64, error) {
	fail := func(err error) (Key, Entry, string, int64, error) {
		return Key{}, Entry{}, "", 0, err
	}
	if len(text) < 9 || text[8] != ' ' {
		return fail(fmt.Errorf("malformed line %q", truncateForErr(text)))
	}
	want, err := strconv.ParseUint(text[:8], 16, 32)
	if err != nil {
		return fail(fmt.Errorf("bad CRC field: %w", err))
	}
	payload := text[9:]
	if got := crc32.ChecksumIEEE([]byte(payload)); got != uint32(want) {
		return fail(fmt.Errorf("CRC mismatch (want %08x, got %08x)", want, got))
	}
	var w wireRecord
	if err := json.Unmarshal([]byte(payload), &w); err != nil {
		return fail(fmt.Errorf("bad JSON: %w", err))
	}
	key := Key{Shape: w.Shape, Sub: w.Sub, Mode: w.Mode, Trials: w.Budget, Salt: w.Salt}
	ent := Entry{
		Found:        w.Entry.Found,
		Trials:       w.Entry.Trials,
		CostCalls:    w.Entry.CostCalls,
		LBPruned:     w.Entry.LBPruned,
		WarmFallback: w.Entry.WarmFallback,
	}
	if len(w.Entry.F) != int(mapping.NumDims) {
		return fail(fmt.Errorf("mapping has %d dims, want %d", len(w.Entry.F), mapping.NumDims))
	}
	for d := range w.Entry.F {
		if len(w.Entry.F[d]) != int(mapping.NumLevels) {
			return fail(fmt.Errorf("mapping dim %d has %d levels, want %d", d, len(w.Entry.F[d]), mapping.NumLevels))
		}
		for l := range w.Entry.F[d] {
			ent.Mapping.F[d][l] = w.Entry.F[d][l]
		}
	}
	if w.Entry.DRAMStat < 0 || w.Entry.DRAMStat >= int(mapping.NumTensors) ||
		w.Entry.NoCStat < 0 || w.Entry.NoCStat >= int(mapping.NumTensors) {
		return fail(fmt.Errorf("stationary tensor out of range"))
	}
	ent.Mapping.DRAMStationary = mapping.Tensor(w.Entry.DRAMStat)
	ent.Mapping.NoCStationary = mapping.Tensor(w.Entry.NoCStat)

	wb := w.Entry.Perf
	b := &ent.Perf
	b.Valid, b.Incompat, b.IncompatCount, b.PEsUsed = wb.Valid, wb.Incompat, wb.IncompatCount, wb.PEsUsed
	if b.TComp, err = parseF(wb.TComp); err != nil {
		return fail(err)
	}
	if b.TDMA, err = parseF(wb.TDMA); err != nil {
		return fail(err)
	}
	if b.Cycles, err = parseF(wb.Cycles); err != nil {
		return fail(err)
	}
	if b.MACs, err = parseF(wb.MACs); err != nil {
		return fail(err)
	}
	for _, arr := range []struct {
		dst []float64
		src []string
	}{
		{b.TNoC[:], wb.TNoC}, {b.TDMAOp[:], wb.TDMAOp},
		{b.DataOffchip[:], wb.DataOffchip}, {b.DataNoC[:], wb.DataNoC},
		{b.NoCBytesPerGroup[:], wb.NoCBytesPG},
	} {
		vs, err := decodeFloats(arr.src, nOps)
		if err != nil {
			return fail(err)
		}
		copy(arr.dst, vs)
	}
	for _, arr := range []struct {
		dst []float64
		src []string
	}{
		{b.DataRF[:], wb.DataRF}, {b.DataSPM[:], wb.DataSPM},
		{b.ReuseAvailRF[:], wb.ReuseRF}, {b.ReuseAvailSPM[:], wb.ReuseSPM},
	} {
		vs, err := decodeFloats(arr.src, nTensors)
		if err != nil {
			return fail(err)
		}
		copy(arr.dst, vs)
	}
	groups, err := decodeInts(wb.NoCGroups, nOps)
	if err != nil {
		return fail(err)
	}
	copy(b.NoCGroups[:], groups)
	virt, err := decodeInts(wb.VirtNeeded, nOps)
	if err != nil {
		return fail(err)
	}
	copy(b.VirtNeeded[:], virt)
	return key, ent, w.V, w.At, nil
}

// truncateForErr bounds corrupt-line excerpts embedded in error messages.
func truncateForErr(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}
