//go:build unix

package evalcache

import (
	"os"
	"syscall"
)

// lockedFile takes the advisory cross-process lock: an exclusive flock(2) on
// a dedicated lock file (never the data file, whose inode changes under
// compaction). It blocks until the lock is granted and returns the unlock
// function. flock is per open-file-description, so two Stores in one process
// contend exactly like two processes do.
func lockedFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck // close releases it regardless
		f.Close()
	}, nil
}
