package surrogate

import (
	"math"
	"math/rand"
)

// Forest is a small random-forest regressor used as the HyperMapper-style
// surrogate: bagged CART trees with random feature subsets.
type Forest struct {
	trees []*treeNode
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64
	leaf        bool
}

// ForestConfig bounds the trees.
type ForestConfig struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
}

// DefaultForestConfig returns the forest shape used by the baselines.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 10, MaxDepth: 8, MinLeaf: 3}
}

// FitForest trains the forest on feature rows xs and targets ys.
func FitForest(xs [][]float64, ys []float64, cfg ForestConfig, rng *rand.Rand) *Forest {
	f := &Forest{}
	n := len(xs)
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees = append(f.trees, buildTree(xs, ys, idx, cfg, rng, 0))
	}
	return f
}

// Predict returns the forest-mean prediction at x.
func (f *Forest) Predict(x []float64) float64 {
	sum := 0.0
	for _, t := range f.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(f.trees))
}

func (t *treeNode) predict(x []float64) float64 {
	for !t.leaf {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

func buildTree(xs [][]float64, ys []float64, idx []int, cfg ForestConfig, rng *rand.Rand, depth int) *treeNode {
	mean := 0.0
	for _, i := range idx {
		mean += ys[i]
	}
	mean /= float64(len(idx))
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return &treeNode{leaf: true, value: mean}
	}

	nFeat := len(xs[0])
	tryFeat := int(math.Sqrt(float64(nFeat))) + 1
	bestSSE := math.Inf(1)
	bestFeat, bestThr := -1, 0.0
	for f := 0; f < tryFeat; f++ {
		feat := rng.Intn(nFeat)
		// Candidate thresholds from a few random sample pairs.
		for c := 0; c < 6; c++ {
			a := xs[idx[rng.Intn(len(idx))]][feat]
			b := xs[idx[rng.Intn(len(idx))]][feat]
			thr := (a + b) / 2
			sse, ok := splitSSE(xs, ys, idx, feat, thr, cfg.MinLeaf)
			if ok && sse < bestSSE {
				bestSSE, bestFeat, bestThr = sse, feat, thr
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: mean}
	}

	var li, ri []int
	for _, i := range idx {
		if xs[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      buildTree(xs, ys, li, cfg, rng, depth+1),
		right:     buildTree(xs, ys, ri, cfg, rng, depth+1),
	}
}

// splitSSE computes the summed squared error of a candidate split; ok is
// false when a side would fall under the leaf minimum.
func splitSSE(xs [][]float64, ys []float64, idx []int, feat int, thr float64, minLeaf int) (float64, bool) {
	var ln, rn int
	var lsum, rsum, lsq, rsq float64
	for _, i := range idx {
		y := ys[i]
		if xs[i][feat] <= thr {
			ln++
			lsum += y
			lsq += y * y
		} else {
			rn++
			rsum += y
			rsq += y * y
		}
	}
	if ln < minLeaf || rn < minLeaf {
		return 0, false
	}
	lsse := lsq - lsum*lsum/float64(ln)
	rsse := rsq - rsum*rsum/float64(rn)
	return lsse + rsse, true
}
