package surrogate

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyReconstructs(t *testing.T) {
	a := [][]float64{
		{4, 2, 0.6},
		{2, 5, 1.2},
		{0.6, 1.2, 3},
	}
	l := Cholesky(a)
	n := len(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := 0.0
			for k := 0; k < n; k++ {
				got += l[i][k] * l[j][k]
			}
			if math.Abs(got-a[i][j]) > 1e-9 {
				t.Fatalf("LL^T[%d][%d] = %v, want %v", i, j, got, a[i][j])
			}
		}
	}
}

func TestCholSolve(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 5}}
	l := Cholesky(a)
	b := []float64{10, 13}
	x := CholSolve(l, b)
	// Verify A x = b.
	for i := range a {
		got := a[i][0]*x[0] + a[i][1]*x[1]
		if math.Abs(got-b[i]) > 1e-9 {
			t.Fatalf("Ax[%d] = %v, want %v", i, got, b[i])
		}
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(3 * x[0])
	}
	gp := FitGP(xs, ys, 0.3)
	for i, x := range xs {
		mu, sigma := gp.Predict(x)
		if math.Abs(mu-ys[i]) > 0.02 {
			t.Fatalf("GP at training point %v: mu=%v, want %v", x, mu, ys[i])
		}
		if sigma > 0.05 {
			t.Fatalf("GP uncertain at training point: sigma=%v", sigma)
		}
	}
	// Uncertainty grows away from data.
	_, far := gp.Predict([]float64{3})
	if far < 0.5 {
		t.Fatalf("GP overconfident far from data: sigma=%v", far)
	}
}

func TestGPGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	f := func(x []float64) float64 { return (x[0]-0.5)*(x[0]-0.5) + x[1]*0.3 }
	for i := 0; i < 40; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	gp := FitGP(xs, ys, 0.3)
	mse := 0.0
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		mu, _ := gp.Predict(x)
		d := mu - f(x)
		mse += d * d
	}
	if mse/50 > 0.01 {
		t.Fatalf("GP test MSE = %v", mse/50)
	}
}

func TestExpectedImprovement(t *testing.T) {
	if ei := ExpectedImprovement(0, 1, 1); ei <= 0 {
		t.Fatal("EI must be positive when mean beats incumbent")
	}
	// Worse mean, zero variance: no improvement expected.
	if ei := ExpectedImprovement(2, 0, 1); ei != 0 {
		t.Fatalf("EI = %v, want 0", ei)
	}
	// More uncertainty means more expected improvement.
	lo := ExpectedImprovement(1.5, 0.1, 1)
	hi := ExpectedImprovement(1.5, 1.0, 1)
	if hi <= lo {
		t.Fatal("EI must grow with uncertainty")
	}
}

func TestForestLearnsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0.0
		if x[0] > 0.5 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	f := FitForest(xs, ys, DefaultForestConfig(), rng)
	correct := 0
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		want := 0.0
		if x[0] > 0.5 {
			want = 1
		}
		if math.Abs(f.Predict(x)-want) < 0.5 {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("forest classified %d/200 correctly", correct)
	}
}

func TestForestBeatsMeanOnSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	mean := 0.0
	f := func(x []float64) float64 { return 3*x[0] + x[1]*x[1] }
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x))
		mean += f(x)
	}
	mean /= 300
	forest := FitForest(xs, ys, DefaultForestConfig(), rng)
	var mseF, mseM float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		dF := forest.Predict(x) - f(x)
		dM := mean - f(x)
		mseF += dF * dF
		mseM += dM * dM
	}
	if mseF >= mseM/2 {
		t.Fatalf("forest MSE %v not clearly better than mean baseline %v", mseF/200, mseM/200)
	}
}

func TestForestConstantTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := [][]float64{{0}, {0.5}, {1}, {0.2}, {0.8}, {0.4}}
	ys := []float64{7, 7, 7, 7, 7, 7}
	f := FitForest(xs, ys, DefaultForestConfig(), rng)
	if got := f.Predict([]float64{0.3}); got != 7 {
		t.Fatalf("constant forest predicts %v", got)
	}
}
