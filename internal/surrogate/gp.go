// Package surrogate provides the small learned models the black-box
// optimizers rely on: an RBF-kernel Gaussian process (for classic Bayesian
// optimization) and a bagged random-forest regressor (for HyperMapper-style
// constrained optimization). Both work on generic float feature vectors, so
// the hardware-space baselines (internal/opt) and the mapping-space
// baselines (internal/mapping) share them.
package surrogate

import "math"

// GP is a fitted Gaussian process with an RBF kernel, fixed lengthscale,
// and jitter noise — the no-hyperparameter-tuning regime of fmfn-style
// Bayesian optimization.
type GP struct {
	xs    [][]float64
	alpha []float64
	chol  [][]float64
	mean  float64
	ls    float64
}

// FitGP fits the process to observations (xs, ys).
func FitGP(xs [][]float64, ys []float64, lengthscale float64) *GP {
	n := len(xs)
	g := &GP{xs: xs, ls: lengthscale}
	for _, y := range ys {
		g.mean += y
	}
	g.mean /= float64(n)

	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = rbf(xs[i], xs[j], lengthscale)
		}
		k[i][i] += 1e-6
	}
	g.chol = Cholesky(k)
	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - g.mean
	}
	g.alpha = CholSolve(g.chol, centered)
	return g
}

// Predict returns the posterior mean and standard deviation at x.
func (g *GP) Predict(x []float64) (mu, sigma float64) {
	n := len(g.xs)
	kstar := make([]float64, n)
	for i := range kstar {
		kstar[i] = rbf(x, g.xs[i], g.ls)
	}
	mu = g.mean
	for i := range kstar {
		mu += kstar[i] * g.alpha[i]
	}
	v := ForwardSolve(g.chol, kstar)
	varF := 1.0
	for _, vi := range v {
		varF -= vi * vi
	}
	if varF < 1e-12 {
		varF = 1e-12
	}
	return mu, math.Sqrt(varF)
}

func rbf(a, b []float64, ls float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * ls * ls))
}

// ExpectedImprovement scores a posterior (mu, sigma) against the incumbent
// best for minimization.
func ExpectedImprovement(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (best - mu) / sigma
	return (best-mu)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Cholesky returns the lower-triangular factor of a positive-definite
// matrix; near-singular pivots are floored to keep the factorization usable
// for acquisition scoring.
func Cholesky(a [][]float64) [][]float64 {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum < 1e-12 {
					sum = 1e-12
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l
}

// ForwardSolve solves L v = b for lower-triangular L.
func ForwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// CholSolve solves (L L^T) x = b.
func CholSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := ForwardSolve(l, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := v[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}
