package fleet

import (
	"strings"
	"testing"
	"time"

	"xdse/internal/obs"
)

// breakerTestPool builds a two-worker pool (breakerK=3) with both members
// healthy and no monitor running, so breaker transitions happen only where
// the test drives them.
func breakerTestPool() (*pool, *obs.Registry) {
	reg := obs.NewRegistry()
	p := newPool([]string{"a:1", "b:2"}, "v", time.Second, 3, nil, reg, nil)
	for _, w := range p.workers {
		w.setState(workerHealthy)
	}
	return p, reg
}

func TestBreakerOpensAfterConsecutiveTransients(t *testing.T) {
	p, reg := breakerTestPool()
	w := p.workers[0]
	for i := 1; i <= 2; i++ {
		if opened := p.breakerResult(w, true); opened {
			t.Fatalf("breaker opened after %d faults, threshold is 3", i)
		}
		if !p.breakerAdmit(w) {
			t.Fatalf("closed breaker refused a dispatch after %d faults", i)
		}
	}
	if !p.breakerResult(w, true) {
		t.Fatal("third consecutive transient did not open the breaker")
	}
	if p.breakerAdmit(w) {
		t.Fatal("open breaker admitted a dispatch")
	}
	if got := reg.Counter("fleet_breaker_opens_total").Value(); got != 1 {
		t.Fatalf("fleet_breaker_opens_total = %d, want 1", got)
	}
	if got := reg.Gauge(`fleet_breaker_state{worker="a:1"}`).Value(); got != float64(breakerOpen) {
		t.Fatalf("breaker state gauge = %v, want open (%d)", got, breakerOpen)
	}
	// The report names the open breaker.
	lines := p.breakerLines()
	if len(lines) != 1 || !strings.Contains(lines[0], "breaker open") || !strings.Contains(lines[0], "a:1") {
		t.Fatalf("breakerLines = %v", lines)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	p, _ := breakerTestPool()
	w := p.workers[0]
	p.breakerResult(w, true)
	p.breakerResult(w, true)
	p.breakerResult(w, false) // success wipes the streak
	p.breakerResult(w, true)
	if opened := p.breakerResult(w, true); opened {
		t.Fatal("non-consecutive transients opened the breaker")
	}
	if !p.breakerResult(w, true) {
		t.Fatal("third consecutive transient after the reset did not open")
	}
}

// TestBreakerHalfOpenSingleTrial: only a successful readyz probe moves an
// open breaker to half-open, which admits exactly one trial dispatch; the
// trial's outcome decides closed versus re-open.
func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	p, reg := breakerTestPool()
	w := p.workers[0]
	for i := 0; i < 3; i++ {
		p.breakerResult(w, true)
	}
	// Without a probe the breaker stays open — it has no other clock.
	if p.breakerAdmit(w) {
		t.Fatal("open breaker admitted without a probe")
	}
	p.breakerProbeHealthy(w)
	if got := reg.Gauge(`fleet_breaker_state{worker="a:1"}`).Value(); got != float64(breakerHalfOpen) {
		t.Fatalf("post-probe gauge = %v, want half-open (%d)", got, breakerHalfOpen)
	}
	if lines := p.breakerLines(); len(lines) != 1 || !strings.Contains(lines[0], "half-open") {
		t.Fatalf("breakerLines = %v", lines)
	}
	if !p.breakerAdmit(w) {
		t.Fatal("half-open breaker refused the trial dispatch")
	}
	if p.breakerAdmit(w) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// Trial fails: straight back to open, counted as another open.
	if !p.breakerResult(w, true) {
		t.Fatal("failed trial did not re-open the breaker")
	}
	if got := reg.Counter("fleet_breaker_opens_total").Value(); got != 2 {
		t.Fatalf("fleet_breaker_opens_total = %d, want 2", got)
	}

	// Probe again; this time the trial succeeds and the breaker closes.
	p.breakerProbeHealthy(w)
	if !p.breakerAdmit(w) {
		t.Fatal("half-open breaker refused the second trial")
	}
	p.breakerResult(w, false)
	if got := reg.Gauge(`fleet_breaker_state{worker="a:1"}`).Value(); got != float64(breakerClosed) {
		t.Fatalf("post-success gauge = %v, want closed", got)
	}
	if !p.breakerAdmit(w) {
		t.Fatal("closed breaker refused a dispatch")
	}
	if lines := p.breakerLines(); len(lines) != 0 {
		t.Fatalf("closed breaker still reported: %v", lines)
	}
	// A probe of a closed (or half-open) breaker is a no-op, not a reset.
	p.breakerProbeHealthy(w)
	if got := reg.Gauge(`fleet_breaker_state{worker="a:1"}`).Value(); got != float64(breakerClosed) {
		t.Fatal("probe of a closed breaker changed its state")
	}
}

// TestPickSkipsOpenBreaker: an open breaker makes pick shed to the next ring
// candidate exactly as an unhealthy worker would, while pickable answers the
// "anywhere to shed to?" question without consuming half-open trial slots.
func TestPickSkipsOpenBreaker(t *testing.T) {
	p, _ := breakerTestPool()
	key := "ResNet18|k1"
	own := p.owner(key)
	other := 1 - own
	for i := 0; i < 3; i++ {
		p.breakerResult(p.workers[own], true)
	}
	w, idx := p.pick(key, nil)
	if w == nil || idx != other {
		t.Fatalf("pick = %v, want the non-owner %d (owner's breaker open)", idx, other)
	}
	// Both breakers open → nothing dispatchable, and pickable agrees.
	for i := 0; i < 3; i++ {
		p.breakerResult(p.workers[other], true)
	}
	if w, _ := p.pick(key, nil); w != nil {
		t.Fatal("pick returned a worker with every breaker open")
	}
	if p.pickable(key, nil) {
		t.Fatal("pickable true with every breaker open")
	}
	// Half-open: pickable must not consume the trial slot.
	p.breakerProbeHealthy(p.workers[own])
	if !p.pickable(key, nil) || !p.pickable(key, nil) {
		t.Fatal("pickable consumed the half-open trial slot")
	}
	if w, _ := p.pick(key, nil); w == nil {
		t.Fatal("pick refused the half-open trial")
	}
	// The trial slot is now taken: pickable goes false again until a result.
	if p.pickable(key, nil) {
		t.Fatal("pickable true while the half-open trial is outstanding")
	}
}
