package fleet

import (
	"fmt"
	"sync"
	"time"

	"xdse/internal/obs"
)

// leaseState is the lifecycle position of one lease. Transitions are
// one-way: active → done (result accepted) or active → revoked (expired,
// worker lost, or dispatch failed). A revoked lease never becomes done —
// that is the late-result gate.
type leaseState int

const (
	leaseActive leaseState = iota
	leaseDone
	leaseRevoked
)

// lease is one grant of a shard to a worker. The coordinator is the sole
// authority: renewal, expiry, and the done/revoked race are all decided
// here, under the lease's own lock, so a worker that answers after its
// lease was revoked can never have its result merged as a completion.
type lease struct {
	token  string
	worker string

	mu     sync.Mutex
	state  leaseState
	expiry time.Time // soft deadline, pushed forward by renew
	hard   time.Time // absolute ceiling; renew never passes it
}

// expired reports whether the lease is active but past its deadline at now.
func (l *lease) expired(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state == leaseActive && now.After(l.expiry)
}

// renew pushes the soft deadline to now+ttl, clamped to the hard ceiling.
// Renewing a non-active lease is a no-op; the watcher may race completion.
func (l *lease) renew(now time.Time, ttl time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state != leaseActive {
		return
	}
	next := now.Add(ttl)
	if next.After(l.hard) {
		next = l.hard
	}
	l.expiry = next
}

// leaseTable issues leases and owns the fleet's lease metrics. One table per
// coordinator; tokens embed a per-process coordinator id so two coordinators
// sharing a worker pool never collide.
type leaseTable struct {
	prefix string
	now    func() time.Time

	mu  sync.Mutex
	seq int

	cGranted *obs.Counter
	cExpired *obs.Counter
	cDone    *obs.Counter
}

// newLeaseTable wires a table to the registry's fleet_lease_* counters.
func newLeaseTable(prefix string, now func() time.Time, reg *obs.Registry) *leaseTable {
	return &leaseTable{
		prefix:   prefix,
		now:      now,
		cGranted: reg.Counter("fleet_leases_granted_total"),
		cExpired: reg.Counter("fleet_leases_expired_total"),
		cDone:    reg.Counter("fleet_leases_completed_total"),
	}
}

// grant issues a fresh active lease on a shard to worker, expiring ttl from
// now unless renewed, with an absolute ceiling of maxHold.
func (t *leaseTable) grant(worker string, ttl, maxHold time.Duration) *lease {
	t.mu.Lock()
	t.seq++
	token := fmt.Sprintf("%s-%d", t.prefix, t.seq)
	t.mu.Unlock()
	now := t.now()
	l := &lease{
		token:  token,
		worker: worker,
		state:  leaseActive,
		expiry: now.Add(ttl),
		hard:   now.Add(maxHold),
	}
	t.cGranted.Inc()
	return l
}

// revoke ends an active lease without a result — expiry, worker death
// mid-flight, or transport failure all land here — and counts it expired.
// Returns false (and counts nothing) if the lease already completed or was
// already revoked.
func (t *leaseTable) revoke(l *lease) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state != leaseActive {
		return false
	}
	l.state = leaseRevoked
	t.cExpired.Inc()
	return true
}

// complete marks an active lease done and returns true; a lease that was
// revoked first returns false, telling the caller the result arrived too
// late and must be discarded (the shard has already been re-dispatched or
// fallen back to local evaluation).
func (t *leaseTable) complete(l *lease) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state != leaseActive {
		return false
	}
	l.state = leaseDone
	t.cDone.Inc()
	return true
}
