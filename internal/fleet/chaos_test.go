package fleet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xdse/internal/eval"
	"xdse/internal/obs"
)

func TestParseChaosSpecGrammar(t *testing.T) {
	p, err := ParseChaosSpec("drop@3, delay@1 truncate@4,corrupt@2 status@5=404 storm@6-8=503 partition@0-1=w1 partition@9-9 delay=5ms seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.DropAt; len(got) != 1 || got[0] != 3 {
		t.Fatalf("DropAt = %v", got)
	}
	if got := p.DelayAt; len(got) != 1 || got[0] != 1 {
		t.Fatalf("DelayAt = %v", got)
	}
	if got := p.TruncateAt; len(got) != 1 || got[0] != 4 {
		t.Fatalf("TruncateAt = %v", got)
	}
	if got := p.CorruptAt; len(got) != 1 || got[0] != 2 {
		t.Fatalf("CorruptAt = %v", got)
	}
	if p.StatusAt[5] != 404 {
		t.Fatalf("StatusAt[5] = %d", p.StatusAt[5])
	}
	for o := 6; o <= 8; o++ {
		if p.StatusAt[o] != 503 {
			t.Fatalf("storm did not expand: StatusAt[%d] = %d", o, p.StatusAt[o])
		}
	}
	if len(p.Partitions) != 2 || p.Partitions[0] != (Partition{Worker: "w1", From: 0, To: 1}) || p.Partitions[1] != (Partition{From: 9, To: 9}) {
		t.Fatalf("Partitions = %+v", p.Partitions)
	}
	if p.Delay != 5*time.Millisecond || p.Seed != 42 {
		t.Fatalf("delay/seed = %v/%d", p.Delay, p.Seed)
	}

	// Empty and effect-free specs disable chaos entirely.
	for _, spec := range []string{"", "  ,  ", "seed=7", "delay=3ms,seed=1"} {
		p, err := ParseChaosSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		if p != nil {
			t.Fatalf("spec %q returned a policy; want nil (disabled)", spec)
		}
		if p.Enabled() {
			t.Fatalf("spec %q policy claims enabled", spec)
		}
		if p.NewInjector("", nil) != nil {
			t.Fatalf("spec %q minted an injector", spec)
		}
	}
}

func TestParseChaosSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"explode@3",        // unknown directive
		"drop@x",           // bad ordinal
		"drop@-1",          // negative ordinal
		"status@3",         // missing =CODE
		"status@3=99",      // status out of range
		"storm@5=503",      // missing range
		"storm@5-2=503",    // inverted range
		"partition@a-b=w1", // bad range bounds
		"delay=zzz",        // bad duration
		"delay=-1ms",       // non-positive duration
		"seed=abc",         // bad seed
	} {
		if _, err := ParseChaosSpec(spec); err == nil {
			t.Errorf("spec %q parsed; want error", spec)
		}
	}
}

// TestChaosAdmitDeterministicClassification pins the ordinal addressing and
// the fault classification: drops/partitions/429/5xx are transient, other
// injected statuses permanent — and a replay over the same policy injects
// the identical faults at the identical ordinals.
func TestChaosAdmitDeterministicClassification(t *testing.T) {
	p := &ChaosPolicy{
		DropAt:     []int{1},
		StatusAt:   map[int]int{2: 503, 3: 404, 4: 429},
		Partitions: []Partition{{Worker: "w9", From: 5, To: 6}},
	}
	for replay := 0; replay < 2; replay++ {
		reg := obs.NewRegistry()
		ci := p.NewInjector("", reg)
		check := func(ord int, worker string, wantClass eval.ErrClass) {
			t.Helper()
			if got := ci.next(); got != ord {
				t.Fatalf("next() = %d, want %d", got, ord)
			}
			err := ci.admit(nil, ord, worker)
			if got := classify(err); got != wantClass {
				t.Fatalf("ordinal %d: classify(%v) = %v, want %v", ord, err, got, wantClass)
			}
		}
		check(0, "w1", eval.ClassNone)
		check(1, "w1", eval.ClassTransient) // drop
		check(2, "w1", eval.ClassTransient) // 503
		check(3, "w1", eval.ClassPermanent) // 404
		check(4, "w1", eval.ClassTransient) // 429
		check(5, "w1", eval.ClassNone)      // partition names w9, not w1
		check(6, "w9", eval.ClassTransient) // partition window hits w9
		check(7, "w9", eval.ClassNone)      // window over
		for kind, want := range map[string]int64{"drop": 1, "status": 3, "partition": 1} {
			if got := reg.Counter(`fleet_chaos_injected_total{kind="` + kind + `"}`).Value(); got != int64(want) {
				t.Errorf("replay %d: injected{%s} = %d, want %d", replay, kind, got, want)
			}
		}
	}
}

func TestChaosPartitionWildcard(t *testing.T) {
	for _, worker := range []string{"", "*"} {
		p := Partition{Worker: worker, From: 0, To: 2}
		if !p.matches("anyone", 1) {
			t.Fatalf("wildcard %q did not match", worker)
		}
		if p.matches("anyone", 3) {
			t.Fatalf("wildcard %q matched outside its window", worker)
		}
	}
}

// TestChaosMutateDeterministic: truncation halves the body; corruption flips
// exactly one byte at a position that is a pure function of (seed, ordinal,
// length) — the replayability contract for body faults.
func TestChaosMutateDeterministic(t *testing.T) {
	body := []byte(`{"records":["aaaaaaaaaaaaaaaa","bbbbbbbbbbbbbbbb"]}`)
	p := &ChaosPolicy{Seed: 7, TruncateAt: []int{0}, CorruptAt: []int{1}}

	ci := p.NewInjector("", nil)
	if got := ci.mutate(0, append([]byte(nil), body...)); len(got) != len(body)/2 || !bytes.Equal(got, body[:len(body)/2]) {
		t.Fatalf("truncate: got %d bytes, want first %d", len(got), len(body)/2)
	}
	first := ci.mutate(1, body)
	if bytes.Equal(first, body) {
		t.Fatal("corrupt left the body unchanged")
	}
	diff := 0
	for i := range body {
		if first[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want exactly 1", diff)
	}
	// Same seed, same ordinal → same corruption; different seed → (for this
	// body) a different position, proving the seed participates.
	if again := p.NewInjector("", nil).mutate(1, body); !bytes.Equal(again, first) {
		t.Fatal("replay corrupted a different byte — chaos run not replayable")
	}
	other := &ChaosPolicy{Seed: 8, CorruptAt: []int{1}}
	if got := other.NewInjector("", nil).mutate(1, body); bytes.Equal(got, first) {
		t.Fatal("seed change corrupted the identical byte — seed not keyed in")
	}
	// Untargeted ordinals and empty bodies pass through untouched.
	if got := ci.mutate(2, body); !bytes.Equal(got, body) {
		t.Fatal("mutate touched an untargeted ordinal")
	}
	if got := ci.mutate(1, nil); len(got) != 0 {
		t.Fatal("mutate invented bytes for an empty body")
	}
}

func TestChaosNilInjectorNoOps(t *testing.T) {
	var ci *ChaosInjector
	if err := ci.admit(nil, 0, "w"); err != nil {
		t.Fatal(err)
	}
	if got := ci.mutate(0, []byte("x")); string(got) != "x" {
		t.Fatalf("mutate = %q", got)
	}
	h := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	if got := ci.Wrap(h); got == nil {
		t.Fatal("Wrap(nil injector) returned nil handler")
	}
}

// TestChaosWrapMiddleware drives the worker-side injection point through a
// real HTTP server: each request consumes one ordinal and suffers exactly the
// scripted fate on the wire.
func TestChaosWrapMiddleware(t *testing.T) {
	const payload = "0123456789abcdef0123456789abcdef"
	p := &ChaosPolicy{
		Seed:       3,
		StatusAt:   map[int]int{0: 503},
		TruncateAt: []int{1},
		CorruptAt:  []int{2},
		DropAt:     []int{4},
		Partitions: []Partition{{Worker: "me", From: 5, To: 5}},
	}
	reg := obs.NewRegistry()
	ci := p.NewInjector("me", reg)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Test", "yes")
		io.WriteString(w, payload)
	})
	ts := httptest.NewServer(ci.Wrap(inner))
	defer ts.Close()

	// One fresh connection per request: on a reused keep-alive connection the
	// transport silently retries an aborted GET, consuming a second ordinal.
	tr := &http.Transport{DisableKeepAlives: true}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}
	get := func() (*http.Response, string, error) {
		resp, err := client.Get(ts.URL)
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp, string(b), err
	}

	// Ordinal 0: injected 503.
	resp, _, err := get()
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("ordinal 0: resp %v err %v, want 503", resp, err)
	}
	// Ordinal 1: truncated to the first half.
	if _, body, err := get(); err != nil || body != payload[:len(payload)/2] {
		t.Fatalf("ordinal 1: body %q err %v, want first half", body, err)
	}
	// Ordinal 2: one byte corrupted, headers preserved.
	resp, body, err := get()
	if err != nil || len(body) != len(payload) || body == payload {
		t.Fatalf("ordinal 2: body %q err %v, want corrupted full-length body", body, err)
	}
	if resp.Header.Get("X-Test") != "yes" {
		t.Fatal("ordinal 2: handler headers lost through the recorder")
	}
	// Ordinal 3: untargeted, passes through clean.
	if _, body, err := get(); err != nil || body != payload {
		t.Fatalf("ordinal 3: body %q err %v, want clean passthrough", body, err)
	}
	// Ordinal 4: dropped connection — the client sees a transport error.
	if _, _, err := get(); err == nil {
		t.Fatal("ordinal 4: drop did not surface as a transport error")
	}
	// Ordinal 5: a partition naming the worker's own identity behaves like a
	// drop on the worker side.
	if _, _, err := get(); err == nil {
		t.Fatal("ordinal 5: self-partition did not abort the connection")
	}
	for kind, want := range map[string]int64{"status": 1, "truncate": 1, "corrupt": 1, "drop": 1, "partition": 1} {
		if got := reg.Counter(`fleet_chaos_injected_total{kind="` + kind + `"}`).Value(); got != want {
			t.Errorf("injected{%s} = %d, want %d", kind, got, want)
		}
	}
}

// TestChaosAdmitDelayCancellable: an injected delay respects the caller's
// done channel instead of sleeping through a cancelled dispatch.
func TestChaosAdmitDelayCancellable(t *testing.T) {
	p := &ChaosPolicy{DelayAt: []int{0}, Delay: time.Minute}
	ci := p.NewInjector("", nil)
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if err := ci.admit(done, 0, "w"); err == nil {
		t.Fatal("cancelled delay returned nil")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("admit slept through cancellation")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"5":                             5 * time.Second,
		" 2 ":                           2 * time.Second,
		"0":                             0,
		"-3":                            0,
		"":                              0,
		"abc":                           0,
		"Wed, 21 Oct 2015 07:28:00 GMT": 0, // HTTP-date form deliberately ignored
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestRetryDelayHonorsRetryAfterCapped: the worker's hint overrides the
// deterministic schedule but can never exceed BackoffCap.
func TestRetryDelayHonorsRetryAfterCapped(t *testing.T) {
	c := &Coordinator{opts: Options{Backoff: 4 * time.Millisecond, BackoffCap: 32 * time.Millisecond}.withDefaults()}
	base := errors.New("worker w: status 429")
	if got := c.retryDelay(1, base); got != 4*time.Millisecond {
		t.Fatalf("no hint: delay = %v, want the schedule's 4ms", got)
	}
	hinted := &retryAfterError{err: base, hint: 10 * time.Millisecond}
	if got := c.retryDelay(1, hinted); got != 10*time.Millisecond {
		t.Fatalf("hint below cap: delay = %v, want 10ms", got)
	}
	huge := &retryAfterError{err: base, hint: time.Hour}
	if got := c.retryDelay(1, huge); got != 32*time.Millisecond {
		t.Fatalf("hint above cap: delay = %v, want the 32ms cap", got)
	}
	// The hint must survive fmt-style wrapping, as postEval produces it.
	wrapped := &retryAfterError{err: base, hint: 8 * time.Millisecond}
	var ra *retryAfterError
	if !errors.As(wrapped, &ra) || ra.hint != 8*time.Millisecond {
		t.Fatal("retryAfterError not recoverable via errors.As")
	}
}
