// Package fleet_test proves the coordinator's headline contract end to end
// against real serve workers: a distributed campaign's trace fingerprint is
// bit-identical to a single-node run's under worker death mid-campaign,
// model-version skew, shared worker pools, and total fleet loss.
package fleet_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdse/internal/exp"
	"xdse/internal/fleet"
	"xdse/internal/serve"
	"xdse/internal/workload"
)

// quietOpts builds worker options over fresh temp dirs with warnings
// suppressed (the chaos below makes plenty of expected noise).
func quietOpts(t *testing.T) serve.Options {
	t.Helper()
	return serve.Options{
		Dir:      t.TempDir(),
		CacheDir: t.TempDir(),
		Warnf:    func(string, ...any) {},
	}
}

// startWorker mounts a serve daemon on an httptest server behind a kill
// switch: once killed, every request — in-flight or future, probes included
// — has its connection dropped abruptly, which is what a kill -9 looks like
// from the coordinator's side.
func startWorker(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	s, err := serve.New(quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	dead := &atomic.Bool{}
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, dead
}

// testConfig is the seconds-scale run the e2e tests share.
func testConfig() exp.Config {
	cfg := exp.Default()
	cfg.Out = io.Discard
	cfg.MapTrials = 60
	cfg.Seed = 1
	cfg.Workers = 2
	return cfg
}

const testBudget = 12

// modes pairs each mapper mode with a technique exercising it.
var modes = []struct{ tech string }{
	{"GridSearch-FixDF"},
	{"RandomSearch-Codesign"},
	{"ExplainableDSE-Codesign"},
}

// fleetOptions returns aggressive timings so chaos plays out within a
// seconds-scale run.
func fleetOptions() fleet.Options {
	return fleet.Options{
		LeaseTTL:       400 * time.Millisecond,
		MaxShardHold:   10 * time.Second,
		HealthInterval: 25 * time.Millisecond,
		ShardPoints:    2,
		Backoff:        2 * time.Millisecond,
		BackoffCap:     20 * time.Millisecond,
		Warnf:          func(string, ...any) {},
	}
}

// calmOptions returns fleetOptions with generous leases and hedging off, for
// tests whose assertions (exact dispatch or fault counts) must not be
// perturbed by load-induced lease expiry or hedge races — e.g. under the
// race detector with the whole package running.
func calmOptions() fleet.Options {
	o := fleetOptions()
	o.LeaseTTL = time.Minute
	o.MaxShardHold = 10 * time.Minute
	o.HedgeAfter = -1
	o.MaxAttempts = 32
	return o
}

// waitHealthy blocks until the coordinator's health monitor has admitted n
// workers, so a campaign's first pick cannot fall back local just because
// the initial probe hadn't landed yet.
func waitHealthy(t *testing.T, c *fleet.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.WorkersHealthy() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers healthy after 10s", c.WorkersHealthy(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillWorkerMidCampaignBitIdentical is the tentpole acceptance test: in
// every mapper mode, a campaign over two workers — one of which dies
// abruptly mid-campaign, mid-request — completes with a trace fingerprint
// bit-identical to the single-node reference, and the death is visible as
// expired leases.
func TestKillWorkerMidCampaignBitIdentical(t *testing.T) {
	model := workload.ByName("ResNet18")
	for _, m := range modes {
		m := m
		t.Run(m.tech, func(t *testing.T) {
			tech, ok := exp.TechniqueByName(m.tech)
			if !ok {
				t.Fatalf("unknown technique %q", m.tech)
			}
			ref := exp.RunOne(context.Background(), testConfig(), tech, model, testBudget)
			if ref.Err != "" {
				t.Fatalf("reference run failed: %s", ref.Err)
			}

			// The kill switch is fleet-wide: the second /eval request,
			// whichever worker receives it, kills that worker — the request
			// is dropped mid-flight and so is everything after it, probes
			// included. This guarantees the campaign loses a worker that
			// was actively holding a lease, wherever the ring sent the
			// shards.
			var mu sync.Mutex
			evals := 0
			dead := &atomic.Bool{} // set once some worker has been killed
			mkWorker := func() *httptest.Server {
				s, err := serve.New(quietOpts(t))
				if err != nil {
					t.Fatal(err)
				}
				myDead := &atomic.Bool{}
				h := s.Handler()
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if myDead.Load() {
						panic(http.ErrAbortHandler)
					}
					if r.URL.Path == "/eval" {
						mu.Lock()
						evals++
						n := evals
						mu.Unlock()
						if n == 2 {
							myDead.Store(true)
							dead.Store(true)
							panic(http.ErrAbortHandler)
						}
					}
					h.ServeHTTP(w, r)
				}))
				t.Cleanup(ts.Close)
				return ts
			}
			ts1, ts2 := mkWorker(), mkWorker()

			c, err := fleet.New([]string{ts1.Listener.Addr().String(), ts2.Listener.Addr().String()}, fleetOptions())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cfg := testConfig()
			cfg.Fleet = c
			got := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
			if got.Err != "" {
				t.Fatalf("fleet run failed: %s", got.Err)
			}

			want, have := ref.Trace.Fingerprint(), got.Trace.Fingerprint()
			if want != have {
				t.Fatalf("fleet campaign fingerprint %s != single-node %s", have, want)
			}
			if !dead.Load() {
				t.Fatal("kill switch never tripped — the campaign did not exercise worker death")
			}
			if n := c.Metrics().Counter("fleet_leases_expired_total").Value(); n == 0 {
				t.Fatal("worker died mid-flight but no lease expired")
			}
		})
	}
}

// TestDegradedNoWorkersBitIdentical: with nothing listening anywhere, the
// coordinator degrades to pure local execution — same fingerprint, degraded
// transition counted.
func TestDegradedNoWorkersBitIdentical(t *testing.T) {
	tech, _ := exp.TechniqueByName("ExplainableDSE-Codesign")
	model := workload.ByName("ResNet18")
	ref := exp.RunOne(context.Background(), testConfig(), tech, model, testBudget)

	// A listener opened and immediately closed yields an address with
	// nothing behind it.
	ts := httptest.NewServer(http.NotFoundHandler())
	addr := ts.Listener.Addr().String()
	ts.Close()

	c, err := fleet.New([]string{addr}, fleetOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n := c.WorkersHealthy(); n != 0 {
		t.Fatalf("WorkersHealthy = %d over a dead address, want 0", n)
	}
	cfg := testConfig()
	cfg.Fleet = c
	got := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
	if got.Trace.Fingerprint() != ref.Trace.Fingerprint() {
		t.Fatal("degraded run fingerprint differs from single-node reference")
	}
	if n := c.Metrics().Counter("fleet_degraded_transitions_total").Value(); n == 0 {
		t.Fatal("degraded transition not counted")
	}
}

// TestVersionSkewQuarantine: a worker whose cost-model version differs from
// the coordinator's is quarantined by the membership handshake and never
// serves a shard; the campaign still completes bit-identically (locally).
func TestVersionSkewQuarantine(t *testing.T) {
	tech, _ := exp.TechniqueByName("GridSearch-FixDF")
	model := workload.ByName("ResNet18")
	ref := exp.RunOne(context.Background(), testConfig(), tech, model, testBudget)

	ts, _ := startWorker(t)
	opts := fleetOptions()
	opts.ModelVersion = "some-other-model-version"
	c, err := fleet.New([]string{ts.Listener.Addr().String()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n := c.WorkersHealthy(); n != 0 {
		t.Fatalf("WorkersHealthy = %d for a skewed worker, want 0 (quarantined)", n)
	}
	if n := c.Metrics().Counter("fleet_workers_quarantined_total").Value(); n == 0 {
		t.Fatal("skewed worker not counted quarantined")
	}
	cfg := testConfig()
	cfg.Fleet = c
	got := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
	if got.Trace.Fingerprint() != ref.Trace.Fingerprint() {
		t.Fatal("quarantine run fingerprint differs from single-node reference")
	}
}

// TestTwoCoordinatorsShareWorkerPool: two coordinators driving different
// campaigns over the same single worker must not interfere — distinct lease
// tokens, shared evaluator-side caches, both bit-identical.
func TestTwoCoordinatorsShareWorkerPool(t *testing.T) {
	model := workload.ByName("ResNet18")
	techA, _ := exp.TechniqueByName("GridSearch-FixDF")
	techB, _ := exp.TechniqueByName("ExplainableDSE-Codesign")
	refA := exp.RunOne(context.Background(), testConfig(), techA, model, testBudget)
	refB := exp.RunOne(context.Background(), testConfig(), techB, model, testBudget)

	ts, _ := startWorker(t)
	addr := ts.Listener.Addr().String()
	newCoord := func() *fleet.Coordinator {
		c, err := fleet.New([]string{addr}, fleetOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	cA, cB := newCoord(), newCoord()

	var wg sync.WaitGroup
	var gotA, gotB exp.Run
	wg.Add(2)
	go func() {
		defer wg.Done()
		cfg := testConfig()
		cfg.Fleet = cA
		gotA = exp.RunOne(context.Background(), cfg, techA, model, testBudget)
	}()
	go func() {
		defer wg.Done()
		cfg := testConfig()
		cfg.Fleet = cB
		gotB = exp.RunOne(context.Background(), cfg, techB, model, testBudget)
	}()
	wg.Wait()

	if gotA.Trace.Fingerprint() != refA.Trace.Fingerprint() {
		t.Fatal("coordinator A's campaign differs from its single-node reference")
	}
	if gotB.Trace.Fingerprint() != refB.Trace.Fingerprint() {
		t.Fatal("coordinator B's campaign differs from its single-node reference")
	}
}
