package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"xdse/internal/checkpoint"
)

// shardLogFile names the coordinator's shard-state journal inside the
// campaign checkpoint directory. It shares internal/checkpoint's CRC'd-JSONL
// line discipline (via checkpoint.FrameLine/UnframeLine) so a torn trailing
// write from a hard coordinator kill is detected and dropped, never replayed.
const shardLogFile = "fleet.jsonl"

// shardLogLine is the JSON wire form of one shard-state event. "grant" and
// "steal" record dispatch history (useful for post-mortems; replay ignores
// them); "done" is the load-bearing event: it binds a shard's point keys to
// the content addresses of the records the coordinator installed for it, so
// a resumed coordinator can re-install exactly those records from the
// evalcache and skip re-dispatching the shard.
type shardLogLine struct {
	Op      string   `json:"op"` // "grant" | "steal" | "done"
	Shard   string   `json:"shard"`
	Worker  string   `json:"worker,omitempty"`
	From    string   `json:"from,omitempty"` // steal: the lapsed worker
	Attempt int      `json:"attempt,omitempty"`
	Points  []string `json:"points,omitempty"`  // done: the shard's point keys
	Records []string `json:"records,omitempty"` // done: installed record IDs
}

// shardLog is the coordinator's crash journal. Appends fsync immediately:
// shard completions are orders of magnitude rarer than evaluations, and a
// "done" line that didn't reach disk before a kill -9 merely costs one
// re-dispatch on resume — but a line that lies about durability could never
// be trusted at all. A nil *shardLog is the disabled state; every method
// no-ops.
type shardLog struct {
	warnf func(format string, args ...any)

	mu        sync.Mutex
	f         *os.File
	completed map[string][]string // point key → record IDs of its finished shard
	failed    bool                // a write failed; stop journaling, warn once
}

// openShardLog opens (creating if needed) dir's shard journal. With resume
// false any prior journal is truncated — a fresh campaign must not inherit
// stale completions. With resume true, intact lines are replayed into the
// completed map; a torn or corrupt line and everything after it is dropped
// with a warning, mirroring checkpoint.Load.
func openShardLog(dir string, resume bool, warnf func(string, ...any)) (*shardLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	warn := func(format string, args ...any) {
		if warnf != nil {
			warnf(format, args...)
		}
	}
	path := filepath.Join(dir, shardLogFile)
	s := &shardLog{warnf: warnf, completed: make(map[string][]string)}
	if resume {
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		rest := string(data)
		lineNo := 0
		for rest != "" {
			lineNo++
			text, tail, complete := strings.Cut(rest, "\n")
			if !complete {
				warn("fleet: %s line %d: torn write (no newline), dropping", path, lineNo)
				break
			}
			rest = tail
			payload, err := checkpoint.UnframeLine(text)
			if err != nil {
				warn("fleet: %s line %d: %v — dropping this and later lines", path, lineNo, err)
				break
			}
			var l shardLogLine
			if err := json.Unmarshal(payload, &l); err != nil {
				warn("fleet: %s line %d: bad JSON: %v — dropping this and later lines", path, lineNo, err)
				break
			}
			if l.Op == "done" {
				for _, pt := range l.Points {
					s.completed[pt] = l.Records
				}
			}
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	s.f = f
	return s, nil
}

// append frames, writes, and fsyncs one event. Write failures disable the
// journal (resume degrades to re-dispatching; correctness is untouched).
func (s *shardLog) append(l shardLogLine) {
	if s == nil {
		return
	}
	payload, err := json.Marshal(l)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed || s.f == nil {
		return
	}
	_, werr := s.f.Write(checkpoint.FrameLine(payload))
	if werr == nil {
		werr = s.f.Sync()
	}
	if werr != nil {
		s.failed = true
		if s.warnf != nil {
			s.warnf("fleet: shard journal write failed (journaling disabled): %v", werr)
		}
	}
}

// grant journals one dispatch attempt of sh to worker.
func (s *shardLog) grant(sh shard, workerID string, attempt int) {
	s.append(shardLogLine{Op: "grant", Shard: sh.key, Worker: workerID, Attempt: attempt})
}

// steal journals a re-dispatch of sh from a lapsed worker to another.
func (s *shardLog) steal(sh shard, from, to string, attempt int) {
	s.append(shardLogLine{Op: "steal", Shard: sh.key, From: from, Worker: to, Attempt: attempt})
}

// done journals sh's completion: its points are answerable from the given
// installed record IDs.
func (s *shardLog) done(sh shard, recordIDs []string) {
	if s == nil {
		return
	}
	s.append(shardLogLine{Op: "done", Shard: sh.key, Points: sh.points, Records: recordIDs})
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pt := range sh.points {
		s.completed[pt] = recordIDs
	}
}

// completedFor returns the installed record IDs of the finished shard that
// covered point key, if any.
func (s *shardLog) completedFor(pointKey string) ([]string, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids, ok := s.completed[pointKey]
	return ids, ok
}

// close flushes and closes the journal file.
func (s *shardLog) close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		s.f.Sync()
		s.f.Close()
		s.f = nil
	}
}
