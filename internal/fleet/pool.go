package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xdse/internal/obs"
)

// workerState classifies a pool member for dispatch decisions.
type workerState int32

const (
	// workerUnknown means the worker has not been probed yet.
	workerUnknown workerState = iota
	// workerHealthy means the last readyz probe succeeded with a matching
	// model version; the worker is eligible for shards.
	workerHealthy
	// workerUnreachable means the last probe failed or the worker reported
	// not-ready (draining). Transient: the monitor keeps probing and the
	// worker rejoins on the next success.
	workerUnreachable
	// workerQuarantined means the worker answered with a different
	// perf.ModelVersion. Permanent for the life of the pool: a skewed cost
	// model would produce records that silently disagree with local
	// evaluation, so the worker never receives shards. The monitor still
	// probes it, but only a matching version lifts the quarantine.
	workerQuarantined
)

// breakerState is a worker's circuit-breaker position. The breaker guards
// the /eval dispatch path specifically: a worker can answer /readyz promptly
// (so the membership monitor keeps it healthy) while every dispatch to it
// fails or times out — an overloaded or partially partitioned worker. The
// breaker notices that pattern from dispatch outcomes and sheds traffic
// without waiting out per-shard backoff schedules.
type breakerState int32

const (
	// breakerClosed passes dispatches through (the normal state).
	breakerClosed breakerState = iota
	// breakerHalfOpen admits exactly one trial dispatch after a successful
	// readyz probe; its outcome decides closed vs re-open.
	breakerHalfOpen
	// breakerOpen sheds all dispatches. Only the health monitor's next
	// successful readyz probe moves it to half-open — wall-clock cooldowns
	// would make chaos runs unreplayable.
	breakerOpen
)

// breaker is one worker's circuit breaker. Guarded by its own mutex; the
// hot-path check is a few instructions under an uncontended lock.
type breaker struct {
	mu          sync.Mutex
	state       breakerState
	consecutive int  // consecutive classified-transient dispatch faults
	probing     bool // the single half-open trial is outstanding
}

// worker is one fleet member. State is atomic so dispatch paths read it
// without locks while the monitor goroutine updates it.
type worker struct {
	id    string // address as configured (host:port), used in logs/faults
	url   string // normalized base URL (http://host:port)
	state atomic.Int32

	br       breaker
	gBreaker *obs.Gauge // 0 closed, 1 half-open, 2 open
}

// setState transitions the worker, returning the previous state.
func (w *worker) setState(s workerState) workerState {
	return workerState(w.state.Swap(int32(s)))
}

// get returns the worker's current state.
func (w *worker) get() workerState {
	return workerState(w.state.Load())
}

// healthy reports whether the worker is currently eligible for shards.
func (w *worker) healthy() bool { return w.get() == workerHealthy }

// ringVirtualNodes is the number of virtual nodes per worker on the
// consistent-hash ring — enough to spread shard ownership evenly across a
// handful of workers without making the ring walk expensive.
const ringVirtualNodes = 64

// ringSlot is one virtual node: a hash position owned by workers[idx].
type ringSlot struct {
	hash uint32
	idx  int
}

// pool tracks fleet membership: the static worker list, the consistent-hash
// ring over it, and each worker's probed health. The ring is built once over
// ALL workers (not just healthy ones) so shard ownership — and therefore
// evalcache locality — is stable while health fluctuates; dispatch walks the
// ring from the owner to the first healthy worker instead.
type pool struct {
	workers []*worker
	ring    []ringSlot

	client   *http.Client
	version  string // expected perf.ModelVersion for the handshake
	interval time.Duration
	breakerK int // consecutive transient faults that open a breaker
	warnf    func(format string, args ...any)

	stop chan struct{}
	wg   sync.WaitGroup

	gHealthy      *obs.Gauge
	cQuarantined  *obs.Counter
	cTransitions  *obs.Counter
	cBreakerOpens *obs.Counter
	probeInflight sync.WaitGroup
}

// newPool builds the membership ring and metric instruments; call start to
// begin probing.
func newPool(addrs []string, version string, interval time.Duration, breakerK int, client *http.Client, reg *obs.Registry, warnf func(string, ...any)) *pool {
	p := &pool{
		client:        client,
		version:       version,
		interval:      interval,
		breakerK:      breakerK,
		warnf:         warnf,
		stop:          make(chan struct{}),
		gHealthy:      reg.Gauge("fleet_workers_healthy"),
		cQuarantined:  reg.Counter("fleet_workers_quarantined_total"),
		cTransitions:  reg.Counter("fleet_worker_transitions_total"),
		cBreakerOpens: reg.Counter("fleet_breaker_opens_total"),
	}
	for _, a := range addrs {
		url := strings.TrimRight(a, "/")
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		p.workers = append(p.workers, &worker{
			id:       a,
			url:      url,
			gBreaker: reg.Gauge(`fleet_breaker_state{worker="` + a + `"}`),
		})
	}
	for i, w := range p.workers {
		for v := 0; v < ringVirtualNodes; v++ {
			p.ring = append(p.ring, ringSlot{hash: ringHash(fmt.Sprintf("%s#%d", w.id, v)), idx: i})
		}
	}
	sort.Slice(p.ring, func(a, b int) bool {
		if p.ring[a].hash != p.ring[b].hash {
			return p.ring[a].hash < p.ring[b].hash
		}
		return p.ring[a].idx < p.ring[b].idx
	})
	return p
}

// ringHash is the pool's position hash: FNV-1a, chosen because it is stable
// across processes and Go versions (shard ownership must agree between runs
// for cache locality, though never for correctness).
func ringHash(s string) uint32 {
	h := fnv.New32a()
	io.WriteString(h, s)
	return h.Sum32()
}

// start runs one synchronous probe round (so callers observe initial
// membership immediately) and then launches the background monitor.
func (p *pool) start() {
	p.probeAll()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.probeAll()
			}
		}
	}()
}

// close stops the monitor and waits for in-flight probes.
func (p *pool) close() {
	close(p.stop)
	p.wg.Wait()
	p.probeInflight.Wait()
}

// probeAll probes every worker concurrently and refreshes the healthy gauge.
func (p *pool) probeAll() {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		p.probeInflight.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer p.probeInflight.Done()
			p.probe(w)
		}(w)
	}
	wg.Wait()
	p.gHealthy.Set(float64(p.healthyCount()))
}

// readyzBody is the subset of the worker's readiness payload the pool needs
// for the membership handshake.
type readyzBody struct {
	Status       string `json:"status"`
	ModelVersion string `json:"model_version"`
}

// probe performs one readiness + model-version handshake against w and
// transitions its state. The probe doubles as the lease heartbeat source:
// the lease watcher only renews leases on workers the monitor currently
// believes healthy.
func (p *pool) probe(w *worker) {
	to := p.interval * 2
	if to < 250*time.Millisecond {
		to = 250 * time.Millisecond
	}
	req, err := http.NewRequest(http.MethodGet, w.url+"/readyz", nil)
	if err != nil {
		p.transition(w, workerUnreachable, "bad url: "+err.Error())
		return
	}
	cl := *p.client
	cl.Timeout = to
	resp, err := cl.Do(req)
	if err != nil {
		p.transition(w, workerUnreachable, err.Error())
		return
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		p.transition(w, workerUnreachable, fmt.Sprintf("readyz status %d", resp.StatusCode))
		return
	}
	var body readyzBody
	if err := json.Unmarshal(data, &body); err != nil {
		p.transition(w, workerUnreachable, "readyz decode: "+err.Error())
		return
	}
	if body.ModelVersion != p.version {
		p.transition(w, workerQuarantined, fmt.Sprintf("model version %q, want %q", body.ModelVersion, p.version))
		return
	}
	p.transition(w, workerHealthy, "")
	p.breakerProbeHealthy(w)
}

// breakerProbeHealthy is the open → half-open edge: a successful readyz
// probe of a worker whose breaker is open earns it exactly one trial
// dispatch. The probe loop is the breaker's only clock, so an open breaker
// with no probing (tests, stopped monitor) stays open deterministically.
func (p *pool) breakerProbeHealthy(w *worker) {
	w.br.mu.Lock()
	defer w.br.mu.Unlock()
	if w.br.state != breakerOpen {
		return
	}
	w.br.state = breakerHalfOpen
	w.br.probing = false
	w.gBreaker.Set(float64(breakerHalfOpen))
	if p.warnf != nil {
		p.warnf("fleet: worker %s breaker half-open (readyz ok; one trial dispatch allowed)", w.id)
	}
}

// breakerAdmit reports whether w's breaker passes a dispatch right now,
// consuming the single half-open trial slot when it takes it. Callers must
// follow every admitted dispatch with breakerResult.
func (p *pool) breakerAdmit(w *worker) bool {
	w.br.mu.Lock()
	defer w.br.mu.Unlock()
	switch w.br.state {
	case breakerOpen:
		return false
	case breakerHalfOpen:
		if w.br.probing {
			return false
		}
		w.br.probing = true
	}
	return true
}

// breakerResult feeds one dispatch outcome into w's breaker. transientFault
// is true for classified-transient faults only — permanent faults (version
// skew, bad request) quarantine or report instead and say nothing about the
// worker's dispatch path health. Returns true when this outcome opened
// (or re-opened) the breaker, so the caller can shed to the next ring
// candidate immediately instead of burning its backoff schedule.
func (p *pool) breakerResult(w *worker, transientFault bool) bool {
	w.br.mu.Lock()
	defer w.br.mu.Unlock()
	w.br.probing = false
	if !transientFault {
		w.br.consecutive = 0
		if w.br.state != breakerClosed {
			w.br.state = breakerClosed
			w.gBreaker.Set(float64(breakerClosed))
			if p.warnf != nil {
				p.warnf("fleet: worker %s breaker closed (trial dispatch succeeded)", w.id)
			}
		}
		return false
	}
	w.br.consecutive++
	opened := false
	switch w.br.state {
	case breakerHalfOpen:
		// The trial failed: straight back to open.
		opened = true
	case breakerClosed:
		opened = w.br.consecutive >= p.breakerK
	}
	if opened {
		w.br.state = breakerOpen
		w.gBreaker.Set(float64(breakerOpen))
		p.cBreakerOpens.Inc()
		if p.warnf != nil {
			p.warnf("fleet: worker %s breaker open after %d consecutive transient faults", w.id, w.br.consecutive)
		}
	}
	return opened
}

// breakerLines renders the non-closed breakers for the campaign fault
// report.
func (p *pool) breakerLines() []string {
	var out []string
	for _, w := range p.workers {
		w.br.mu.Lock()
		st, n := w.br.state, w.br.consecutive
		w.br.mu.Unlock()
		switch st {
		case breakerOpen:
			out = append(out, fmt.Sprintf("worker %s: breaker open (%d consecutive transient faults)", w.id, n))
		case breakerHalfOpen:
			out = append(out, fmt.Sprintf("worker %s: breaker half-open (awaiting trial dispatch)", w.id))
		}
	}
	return out
}

// transition applies a probed state, counting and logging edges only.
func (p *pool) transition(w *worker, to workerState, why string) {
	from := w.setState(to)
	if from == to {
		return
	}
	p.cTransitions.Inc()
	if to == workerQuarantined {
		p.cQuarantined.Inc()
	}
	if p.warnf != nil {
		switch to {
		case workerHealthy:
			p.warnf("fleet: worker %s healthy", w.id)
		case workerQuarantined:
			p.warnf("fleet: worker %s quarantined: %s", w.id, why)
		default:
			p.warnf("fleet: worker %s unreachable: %s", w.id, why)
		}
	}
}

// quarantine forcibly quarantines w — used when a dispatch discovers version
// skew (412) before the monitor does.
func (p *pool) quarantine(w *worker, why string) {
	p.transition(w, workerQuarantined, why)
	p.gHealthy.Set(float64(p.healthyCount()))
}

// healthyCount returns the number of currently dispatchable workers.
func (p *pool) healthyCount() int {
	n := 0
	for _, w := range p.workers {
		if w.healthy() {
			n++
		}
	}
	return n
}

// owner returns the ring owner index for key — the worker that would hold
// key's cache locality, health notwithstanding.
func (p *pool) owner(key string) int {
	if len(p.ring) == 0 {
		return 0
	}
	h := ringHash(key)
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	if i == len(p.ring) {
		i = 0
	}
	return p.ring[i].idx
}

// pick walks the ring clockwise from key's owner and returns the first
// healthy, breaker-admitted worker whose index is not in tried, preserving
// locality (the owner is preferred; failover order is deterministic).
// Picking a half-open worker consumes its single trial slot, so callers must
// dispatch to what pick returns and report the outcome via breakerResult.
// Returns (nil, -1) when no dispatchable untried worker exists.
func (p *pool) pick(key string, tried map[int]bool) (*worker, int) {
	return p.walk(key, tried, p.breakerAdmit)
}

// pickable reports whether pick would currently find a worker, without
// consuming any half-open trial slot — the "is there somewhere to shed to"
// check of the open-breaker fast path.
func (p *pool) pickable(key string, tried map[int]bool) bool {
	w, _ := p.walk(key, tried, func(w *worker) bool {
		w.br.mu.Lock()
		defer w.br.mu.Unlock()
		return w.br.state == breakerClosed || (w.br.state == breakerHalfOpen && !w.br.probing)
	})
	return w != nil
}

// walk implements pick's ring traversal with a pluggable breaker gate.
func (p *pool) walk(key string, tried map[int]bool, admit func(*worker) bool) (*worker, int) {
	if len(p.ring) == 0 {
		return nil, -1
	}
	h := ringHash(key)
	start := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	seen := make(map[int]bool, len(p.workers))
	for off := 0; off < len(p.ring); off++ {
		slot := p.ring[(start+off)%len(p.ring)]
		if seen[slot.idx] {
			continue
		}
		seen[slot.idx] = true
		if tried[slot.idx] {
			continue
		}
		w := p.workers[slot.idx]
		if w.healthy() && admit(w) {
			return w, slot.idx
		}
		if len(seen) == len(p.workers) {
			break
		}
	}
	return nil, -1
}
