package fleet_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"xdse/internal/exp"
	"xdse/internal/fleet"
	"xdse/internal/obs"
	"xdse/internal/serve"
	"xdse/internal/workload"
)

// spanKinds counts the span events of a merged trace by kind.
func spanKinds(events []obs.Event) map[string]int {
	kinds := map[string]int{}
	for _, ev := range events {
		if ev.Kind == obs.KindSpan {
			kinds[ev.SpanKind]++
		}
	}
	return kinds
}

// TestTracedFleetCampaignBitIdenticalAndMerged is the tracing-spine
// acceptance test: in every mapper mode, attaching a trace sink to a fleet
// campaign (spans crossing two real process boundaries via the trace header
// and merging back through /eval responses) must not move the trace
// fingerprint off the untraced single-node reference — and the merged
// cross-process span stream must reconstruct the full causal tree: valid
// parent links end to end, with campaign/batch/dispatch/rpc levels from the
// coordinator and queue/worker-eval/cache spans from the workers.
func TestTracedFleetCampaignBitIdenticalAndMerged(t *testing.T) {
	model := workload.ByName("ResNet18")
	for _, m := range modes {
		m := m
		t.Run(m.tech, func(t *testing.T) {
			tech, ok := exp.TechniqueByName(m.tech)
			if !ok {
				t.Fatalf("unknown technique %q", m.tech)
			}
			ref := exp.RunOne(context.Background(), testConfig(), tech, model, testBudget)
			if ref.Err != "" {
				t.Fatalf("reference run failed: %s", ref.Err)
			}

			ts1, _ := startWorker(t)
			ts2, _ := startWorker(t)
			c, err := fleet.New([]string{ts1.Listener.Addr().String(), ts2.Listener.Addr().String()}, fleetOptions())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			col := &obs.CollectSink{}
			cfg := testConfig()
			cfg.Fleet = c
			cfg.Trace = col
			got := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
			if got.Err != "" {
				t.Fatalf("traced fleet run failed: %s", got.Err)
			}
			if want, have := ref.Trace.Fingerprint(), got.Trace.Fingerprint(); want != have {
				t.Fatalf("traced fleet fingerprint %s != untraced single-node %s — tracing perturbed the search", have, want)
			}

			events := col.Events()
			if err := obs.ValidateSpans(events); err != nil {
				t.Fatalf("merged trace failed parent-link validation: %v", err)
			}
			kinds := spanKinds(events)
			for _, kind := range []string{
				obs.SpanCampaign, obs.SpanBatch, obs.SpanReplay,
				obs.SpanDispatch, obs.SpanRPC, obs.SpanInstall,
				obs.SpanQueue, obs.SpanWorkerEval, obs.SpanCache,
			} {
				if kinds[kind] == 0 {
					t.Errorf("merged trace has no %q spans: %v", kind, kinds)
				}
			}
			if kinds[obs.SpanCampaign] != 1 {
				t.Errorf("merged trace has %d campaign roots, want 1", kinds[obs.SpanCampaign])
			}

			// Every non-span explanation event and every span carries the
			// run label — the merge stamps worker spans like local events.
			for _, ev := range events {
				if ev.Run == "" {
					t.Fatalf("merged event missing run label: %+v", ev)
				}
			}

			// The forest reconstructs the cross-process chain: some rpc span
			// must have worker-side children (grafted via the trace header).
			forest, err := obs.BuildSpanForest(events)
			if err != nil {
				t.Fatal(err)
			}
			grafted := false
			for _, tree := range forest {
				for _, n := range tree.Nodes {
					if n.SpanKind == obs.SpanRPC && len(n.Children) > 0 {
						grafted = true
					}
				}
			}
			if !grafted {
				t.Error("no rpc span has worker-side children — cross-process graft broken")
			}
		})
	}
}

// TestWorkerFaultAttribution pins the per-worker fault counters: a campaign
// over one worker that dies mid-flight (and one survivor) must attribute
// faults to worker-labeled counters, so a flaky host is identifiable from
// /metrics without log spelunking.
func TestWorkerFaultAttribution(t *testing.T) {
	tech, _ := exp.TechniqueByName("ExplainableDSE-Codesign")
	model := workload.ByName("ResNet18")

	// Worker 1 dies abruptly at its first /eval — the dropped in-flight
	// request is a transient fault attributed to its address. Worker 2 stays
	// healthy so the campaign completes remotely as well as locally.
	s1, err := serve.New(quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	dead := &atomic.Bool{}
	h1 := s1.Handler()
	ts1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			panic(http.ErrAbortHandler)
		}
		if r.URL.Path == "/eval" {
			dead.Store(true)
			panic(http.ErrAbortHandler)
		}
		h1.ServeHTTP(w, r)
	}))
	t.Cleanup(ts1.Close)
	ts2, _ := startWorker(t)
	addr1 := ts1.Listener.Addr().String()
	addr2 := ts2.Listener.Addr().String()

	// Calm timings: under load a lease expiry or a hedge race could charge
	// a fault to the healthy worker and break the zero-fault assertion.
	c, err := fleet.New([]string{addr1, addr2}, calmOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := testConfig()
	cfg.Fleet = c
	got := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
	if got.Err != "" {
		t.Fatalf("fleet run failed: %s", got.Err)
	}

	if n := c.Metrics().Counter(`fleet_worker_faults_total{worker="` + addr1 + `"}`).Value(); n == 0 {
		t.Error("dead worker accrued no per-worker faults")
	}
	if n := c.Metrics().Counter(`fleet_worker_faults_total{worker="` + addr2 + `"}`).Value(); n != 0 {
		t.Errorf("healthy worker attributed %d faults, want 0", n)
	}
}
