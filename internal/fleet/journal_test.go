package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestShardJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := openShardLog(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh1 := shard{key: "m|p1", points: []string{"p1", "p2"}}
	sh2 := shard{key: "m|p3", points: []string{"p3"}}
	j.grant(sh1, "w1", 1)
	j.steal(sh1, "w1", "w2", 2)
	j.done(sh1, []string{"id-a", "id-b"})
	j.grant(sh2, "w2", 1) // granted but never done: must not resume as completed
	// The live journal answers its own completions too (hedge grants of an
	// already-done shard would be wasteful but harmless).
	if ids, ok := j.completedFor("p2"); !ok || len(ids) != 2 {
		t.Fatalf("live completedFor(p2) = %v, %v", ids, ok)
	}
	j.close()

	r, err := openShardLog(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	for _, pt := range []string{"p1", "p2"} {
		ids, ok := r.completedFor(pt)
		if !ok || len(ids) != 2 || ids[0] != "id-a" || ids[1] != "id-b" {
			t.Fatalf("resumed completedFor(%s) = %v, %v", pt, ids, ok)
		}
	}
	if _, ok := r.completedFor("p3"); ok {
		t.Fatal("granted-but-unfinished shard resumed as completed")
	}
	// Appends after a resume land after the replayed history.
	r.done(sh2, []string{"id-c"})
	if ids, ok := r.completedFor("p3"); !ok || len(ids) != 1 || ids[0] != "id-c" {
		t.Fatalf("post-resume done not visible: %v, %v", ids, ok)
	}
}

func TestShardJournalFreshTruncates(t *testing.T) {
	dir := t.TempDir()
	j, _ := openShardLog(dir, false, nil)
	j.done(shard{key: "m|p1", points: []string{"p1"}}, []string{"id-a"})
	j.close()

	f, err := openShardLog(dir, false, nil) // a fresh campaign, not a resume
	if err != nil {
		t.Fatal(err)
	}
	defer f.close()
	if _, ok := f.completedFor("p1"); ok {
		t.Fatal("fresh open inherited a stale completion")
	}
	data, _ := os.ReadFile(filepath.Join(dir, shardLogFile))
	if len(data) != 0 {
		t.Fatalf("fresh open left %d stale bytes in the journal", len(data))
	}
}

// TestShardJournalTornTail: a half-written trailing line — what a kill -9
// mid-append leaves behind — is dropped with a warning; everything before it
// replays.
func TestShardJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openShardLog(dir, false, nil)
	j.done(shard{key: "m|p1", points: []string{"p1"}}, []string{"id-a"})
	j.close()
	path := filepath.Join(dir, shardLogFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"op":"done","shard":"m|p2","poin`) // no newline
	f.Close()

	var warned []string
	r, err := openShardLog(dir, true, func(format string, args ...any) {
		warned = append(warned, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if _, ok := r.completedFor("p1"); !ok {
		t.Fatal("torn tail destroyed the intact line before it")
	}
	if _, ok := r.completedFor("p2"); ok {
		t.Fatal("torn line replayed as a completion")
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "torn") {
		t.Fatalf("no torn-write warning: %v", warned)
	}
}

// TestShardJournalCorruptLine: a line whose CRC does not match (bit rot, or a
// write interleaved with the kill) drops that line and everything after it —
// conservative, mirroring checkpoint.Load — while earlier lines survive.
func TestShardJournalCorruptLine(t *testing.T) {
	dir := t.TempDir()
	j, _ := openShardLog(dir, false, nil)
	j.done(shard{key: "m|p1", points: []string{"p1"}}, []string{"id-a"})
	j.done(shard{key: "m|p2", points: []string{"p2"}}, []string{"id-b"})
	j.done(shard{key: "m|p3", points: []string{"p3"}}, []string{"id-c"})
	j.close()
	path := filepath.Join(dir, shardLogFile)
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines)-1)
	}
	// Flip one payload byte of the second line; its CRC prefix now lies.
	mut := []byte(lines[1])
	mut[12] ^= 0xFF
	lines[1] = string(mut)
	os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)

	var warned int
	r, err := openShardLog(dir, true, func(string, ...any) { warned++ })
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if _, ok := r.completedFor("p1"); !ok {
		t.Fatal("line before the corruption lost")
	}
	if _, ok := r.completedFor("p2"); ok {
		t.Fatal("corrupt line replayed as a completion")
	}
	if _, ok := r.completedFor("p3"); ok {
		t.Fatal("line after the corruption replayed — resume trusted data past damage")
	}
	if warned == 0 {
		t.Fatal("corruption replayed silently")
	}
}

// TestShardJournalNilNoOps: a coordinator without a JournalDir carries a nil
// *shardLog, and every method must be safe on it.
func TestShardJournalNilNoOps(t *testing.T) {
	var s *shardLog
	sh := shard{key: "k", points: []string{"p"}}
	s.grant(sh, "w", 1)
	s.steal(sh, "w", "x", 2)
	s.done(sh, []string{"id"})
	if _, ok := s.completedFor("p"); ok {
		t.Fatal("nil journal claims a completion")
	}
	s.close()
}
