// Chaos and crash-resume end-to-end tests: campaigns under deterministic
// fault injection, breaker-opening worker brownouts, and a coordinator killed
// mid-campaign and resumed from its shard journal must all produce traces —
// and CSV artifacts — bit-identical to a fault-free single-node reference.
package fleet_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"xdse/internal/eval"
	"xdse/internal/exp"
	"xdse/internal/fleet"
	"xdse/internal/serve"
	"xdse/internal/workload"
)

// startWorkerWith mounts a serve daemon whose /eval requests first pass
// through intercept; returning true means the interceptor answered (or
// deliberately broke) the request itself.
func startWorkerWith(t *testing.T, intercept func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
	t.Helper()
	s, err := serve.New(quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/eval" && intercept(w, r) {
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// testChaos is the nontrivial coordinator-side chaos script the e2e tests
// share: a dropped connection, a 503 storm, a torn body, a corrupted body,
// and a scripted partition of every worker early in the campaign.
func testChaos() *fleet.ChaosPolicy {
	return &fleet.ChaosPolicy{
		Seed:       7,
		DropAt:     []int{1},
		StatusAt:   map[int]int{4: 503, 5: 503, 6: 503},
		TruncateAt: []int{8},
		CorruptAt:  []int{10},
		Partitions: []fleet.Partition{{From: 2, To: 3}},
		Delay:      time.Millisecond,
	}
}

// TestChaosCampaignBitIdentical: a campaign with the full chaos script active
// on the dispatch path completes bit-identical to the single-node reference
// in every mapper mode — chaos can cost time, never correctness.
func TestChaosCampaignBitIdentical(t *testing.T) {
	model := workload.ByName("ResNet18")
	for _, m := range modes {
		m := m
		t.Run(m.tech, func(t *testing.T) {
			tech, ok := exp.TechniqueByName(m.tech)
			if !ok {
				t.Fatalf("unknown technique %q", m.tech)
			}
			ref := exp.RunOne(context.Background(), testConfig(), tech, model, testBudget)
			if ref.Err != "" {
				t.Fatalf("reference run failed: %s", ref.Err)
			}

			ts1, _ := startWorker(t)
			ts2, _ := startWorker(t)
			opts := fleetOptions()
			opts.Chaos = testChaos()
			c, err := fleet.New([]string{ts1.Listener.Addr().String(), ts2.Listener.Addr().String()}, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cfg := testConfig()
			cfg.Fleet = c
			got := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
			if got.Err != "" {
				t.Fatalf("chaos run failed: %s", got.Err)
			}
			if got.Trace.Fingerprint() != ref.Trace.Fingerprint() {
				t.Fatal("chaos campaign fingerprint differs from single-node reference")
			}
			var injected int64
			for _, kind := range []string{"drop", "status", "truncate", "corrupt", "partition"} {
				injected += c.Metrics().Counter(`fleet_chaos_injected_total{kind="` + kind + `"}`).Value()
			}
			if injected == 0 {
				t.Fatal("chaos policy active but nothing injected — the test proved nothing")
			}
		})
	}
}

// TestBreakerOpensMidCampaignBitIdentical: a worker that browns out (a 503
// burst) trips its circuit breaker mid-campaign, recovers through the
// half-open probe cycle, and the campaign still matches the reference.
func TestBreakerOpensMidCampaignBitIdentical(t *testing.T) {
	tech, _ := exp.TechniqueByName("ExplainableDSE-Codesign")
	model := workload.ByName("ResNet18")
	ref := exp.RunOne(context.Background(), testConfig(), tech, model, testBudget)
	if ref.Err != "" {
		t.Fatalf("reference run failed: %s", ref.Err)
	}

	// Worker 1 serves 503 for its first four /eval requests, then heals;
	// worker 2 is steady. With BreakerThreshold 2 the burst must open the
	// breaker, and the readyz probe loop later earns it a half-open trial.
	ts2, _ := startWorker(t)
	var evals atomic.Int64
	ts1 := startWorkerWith(t, func(w http.ResponseWriter, r *http.Request) bool {
		if evals.Add(1) <= 4 {
			http.Error(w, "brownout", http.StatusServiceUnavailable)
			return true
		}
		return false
	})
	opts := fleetOptions()
	opts.BreakerThreshold = 2
	c, err := fleet.New([]string{ts1.Listener.Addr().String(), ts2.Listener.Addr().String()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := testConfig()
	cfg.Fleet = c
	got := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
	if got.Err != "" {
		t.Fatalf("brownout run failed: %s", got.Err)
	}
	if got.Trace.Fingerprint() != ref.Trace.Fingerprint() {
		t.Fatal("brownout campaign fingerprint differs from single-node reference")
	}
	if n := c.Metrics().Counter("fleet_breaker_opens_total").Value(); n == 0 {
		t.Fatal("503 burst exceeded the threshold but no breaker opened")
	}
}

// TestResumeSkipsCompletedShards is the deterministic resume unit of the
// crash story: campaign one journals every shard completion; a second
// coordinator resuming over the same journal and persistent cache answers
// every point from re-installed records — zero /eval dispatches — and the
// trace still matches.
func TestResumeSkipsCompletedShards(t *testing.T) {
	tech, _ := exp.TechniqueByName("ExplainableDSE-Codesign")
	model := workload.ByName("ResNet18")
	cacheDir, journalDir := t.TempDir(), t.TempDir()

	ref := exp.RunOne(context.Background(), testConfig(), tech, model, testBudget)
	if ref.Err != "" {
		t.Fatalf("reference run failed: %s", ref.Err)
	}

	runFleet := func(resume bool) (*fleet.Coordinator, exp.Run, int64) {
		var evals atomic.Int64
		ts := startWorkerWith(t, func(w http.ResponseWriter, r *http.Request) bool {
			evals.Add(1)
			return false
		})
		// Calm timings: a load-induced lease expiry or an unprobed worker at
		// first pick would silently evaluate a shard locally — unjournaled —
		// and break the zero-dispatch assertion below.
		opts := calmOptions()
		opts.JournalDir = journalDir
		opts.Resume = resume
		c, err := fleet.New([]string{ts.Listener.Addr().String()}, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		waitHealthy(t, c, 1)
		cfg := testConfig()
		cfg.Fleet = c
		cfg.CacheDir = cacheDir
		run := exp.RunOne(context.Background(), cfg, tech, model, testBudget)
		return c, run, evals.Load()
	}

	_, first, evals1 := runFleet(false)
	if first.Err != "" {
		t.Fatalf("first fleet run failed: %s", first.Err)
	}
	if evals1 == 0 {
		t.Fatal("first run dispatched nothing — journal empty, resume untestable")
	}

	c2, second, evals2 := runFleet(true)
	if second.Err != "" {
		t.Fatalf("resumed fleet run failed: %s", second.Err)
	}
	if second.Trace.Fingerprint() != ref.Trace.Fingerprint() {
		t.Fatal("resumed campaign fingerprint differs from single-node reference")
	}
	if evals2 != 0 {
		t.Fatalf("resumed run dispatched %d shards; journal + store should have answered all", evals2)
	}
	if n := c2.Metrics().Counter("fleet_resume_points_skipped_total").Value(); n == 0 {
		t.Fatal("fleet_resume_points_skipped_total = 0 on a full resume")
	}
	if n := c2.Metrics().Counter("fleet_resume_records_installed_total").Value(); n == 0 {
		t.Fatal("fleet_resume_records_installed_total = 0 on a full resume")
	}
}

// TestKillCoordinatorMidCampaignBitIdentical is the tentpole acceptance test:
// in every mapper mode, with the chaos script active, the coordinator process
// is "killed" mid-campaign (run context cancelled at a fixed evaluation
// ordinal — the in-process stand-in for kill -9, exercising the same torn
// journal tails) and a fresh coordinator resumes from the campaign checkpoint
// plus the shard journal. The final trace fingerprint AND the CSV artifact
// must be byte-identical to a fault-free single-node reference.
func TestKillCoordinatorMidCampaignBitIdentical(t *testing.T) {
	model := workload.ByName("ResNet18")
	for _, m := range modes {
		m := m
		t.Run(m.tech, func(t *testing.T) {
			tech, ok := exp.TechniqueByName(m.tech)
			if !ok {
				t.Fatalf("unknown technique %q", m.tech)
			}
			refCfg := testConfig()
			refCfg.CSVDir = t.TempDir()
			ref := exp.RunOne(context.Background(), refCfg, tech, model, testBudget)
			if ref.Err != "" {
				t.Fatalf("reference run failed: %s", ref.Err)
			}
			refCSV := readCSV(t, refCfg.CSVDir, m.tech)

			ckptDir := t.TempDir()
			journalDir := filepath.Join(ckptDir, "fleet")
			cacheDir := t.TempDir()
			newCoord := func(resume bool) *fleet.Coordinator {
				ts1, _ := startWorker(t)
				ts2, _ := startWorker(t)
				opts := fleetOptions()
				opts.Chaos = testChaos()
				opts.JournalDir = journalDir
				opts.Resume = resume
				c, err := fleet.New([]string{ts1.Listener.Addr().String(), ts2.Listener.Addr().String()}, opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(c.Close)
				return c
			}

			// Phase 1: kill the campaign at a fixed unique-evaluation ordinal.
			ctx, cancel := context.WithCancel(context.Background())
			kcfg := testConfig()
			kcfg.Fleet = newCoord(false)
			kcfg.CheckpointDir = ckptDir
			kcfg.CacheDir = cacheDir
			kcfg.Faults = &eval.FaultPolicy{OnEvaluation: func(ord int) {
				if ord == 5 {
					cancel()
				}
			}}
			killed := exp.RunOne(ctx, kcfg, tech, model, testBudget)
			cancel()
			if !killed.Interrupted {
				t.Fatal("kill did not interrupt the campaign — nothing to resume")
			}

			// Phase 2: fresh coordinator, resumed campaign, chaos still on.
			rcfg := testConfig()
			rcfg.Fleet = newCoord(true)
			rcfg.CheckpointDir = ckptDir
			rcfg.CacheDir = cacheDir
			rcfg.Resume = true
			rcfg.CSVDir = t.TempDir()
			resumed := exp.RunOne(context.Background(), rcfg, tech, model, testBudget)
			if resumed.Interrupted || resumed.Err != "" {
				t.Fatalf("resumed run failed: interrupted=%v err=%q", resumed.Interrupted, resumed.Err)
			}
			if resumed.Resumed == 0 {
				t.Error("resumed run replayed no journaled evaluations")
			}
			if got, want := resumed.Trace.Fingerprint(), ref.Trace.Fingerprint(); got != want {
				t.Fatalf("resumed campaign fingerprint %s != fault-free single-node %s", got, want)
			}
			if gotCSV := readCSV(t, rcfg.CSVDir, m.tech); gotCSV != refCSV {
				t.Fatal("resumed campaign CSV differs byte-for-byte from the reference")
			}
		})
	}
}

// readCSV loads the run's trace CSV artifact.
func readCSV(t *testing.T, dir, tech string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, tech+"_ResNet18.csv"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
