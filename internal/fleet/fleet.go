// Package fleet coordinates a campaign across a pool of xdse serve worker
// daemons. The coordinator never delegates *results* — workers compute
// layer-grain mapping searches and return content-addressed evalcache
// records, which the coordinator installs as cache prefill before running
// every evaluation locally. Bit-identical merged campaigns therefore hold by
// construction: a lost, late, corrupt, or missing record only means the
// coordinator recomputes that layer itself, and the design-level trace
// (hence Trace.Fingerprint) is untouched by any fleet failure mode.
//
// Robustness model:
//   - Shards are assigned by consistent hash of the design/workload cache
//     key, so repeat points land on the worker already holding their records.
//   - Every dispatch holds a coordinator-side lease with heartbeat renewal
//     (renewed while the health monitor sees the worker ready); a lease that
//     ends without a completed result — worker killed mid-flight, hang past
//     its TTL, or transport failure — counts as expired and the shard is
//     re-dispatched to the next worker on the ring (work stealing).
//   - Faults are classified with eval.ErrClass semantics: connection
//     refused/timeouts/5xx/429 are transient (capped deterministic backoff,
//     retry elsewhere); 4xx and model-version skew are permanent (surfaced
//     in the campaign report, never retried). Version skew additionally
//     quarantines the worker.
//   - With zero reachable workers the coordinator degrades to pure local
//     execution and keeps probing; workers rejoin transparently.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xdse/internal/arch"
	"xdse/internal/eval"
	"xdse/internal/evalcache"
	"xdse/internal/obs"
	"xdse/internal/perf"
)

// Options tunes a Coordinator. The zero value is usable; defaults suit a
// LAN fleet of a few workers.
type Options struct {
	// LeaseTTL is the heartbeat window: a lease not renewed within it
	// expires and its shard is stolen. Default 5s.
	LeaseTTL time.Duration
	// MaxShardHold is the absolute ceiling on one lease regardless of
	// renewals — the straggler bound. Default 2m.
	MaxShardHold time.Duration
	// HealthInterval is the membership probe cadence. Default 1s.
	HealthInterval time.Duration
	// ShardPoints caps design points per dispatched shard. Default 8.
	ShardPoints int
	// MaxAttempts bounds dispatch attempts per shard before falling back
	// to local evaluation. Default eval.DefaultRetry().MaxAttempts.
	MaxAttempts int
	// Backoff and BackoffCap shape the deterministic (jitter-free)
	// exponential delay between a shard's dispatch attempts, mirroring
	// eval.RetryPolicy. Defaults 50ms / 2s.
	Backoff    time.Duration
	BackoffCap time.Duration
	// BreakerThreshold is the consecutive classified-transient fault count
	// that opens a worker's circuit breaker (dispatch shed until a readyz
	// probe earns a half-open trial). Default 3.
	BreakerThreshold int
	// HedgeAfter is the straggler threshold: a dispatch attempt still
	// unanswered after this long gets one hedge to the next ring candidate,
	// and the first complete result wins (the loser's lease is revoked, so
	// its late result is discarded by the complete() gate). 0 selects the
	// default LeaseTTL/2; negative disables hedging.
	HedgeAfter time.Duration
	// Chaos, when non-nil (and non-empty), deterministically injects faults
	// into the coordinator's dispatch path — see ChaosPolicy.
	Chaos *ChaosPolicy
	// JournalDir, when set, journals shard grants/steals/completions into
	// <JournalDir>/fleet.jsonl under checkpoint's CRC'd-JSONL discipline,
	// making the coordinator's shard state crash-durable. Campaign runners
	// point it at the campaign checkpoint directory.
	JournalDir string
	// Resume replays JournalDir's journal instead of truncating it: points
	// covered by journaled shard completions are re-installed from the
	// evaluator's persistent store and skipped from dispatch.
	Resume bool
	// ModelVersion is the cost-model version workers must match. Default
	// perf.ModelVersion(); tests override it to exercise quarantine.
	ModelVersion string
	// Registry, when non-nil, receives the fleet_* instruments; otherwise
	// the coordinator allocates a private registry (see Metrics).
	Registry *obs.Registry
	// Warnf, when non-nil, receives human-readable fleet events
	// (membership transitions, steals, permanent faults, degradation).
	Warnf func(format string, args ...any)
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 5 * time.Second
	}
	if o.MaxShardHold <= 0 {
		o.MaxShardHold = 2 * time.Minute
	}
	if o.MaxShardHold < o.LeaseTTL {
		o.MaxShardHold = o.LeaseTTL
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.ShardPoints <= 0 {
		o.ShardPoints = 8
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = eval.DefaultRetry().MaxAttempts
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = o.LeaseTTL / 2
	}
	if o.HedgeAfter < 0 {
		o.HedgeAfter = 0 // disabled
	}
	if o.ModelVersion == "" {
		o.ModelVersion = perf.ModelVersion()
	}
	return o
}

// maxEvalRespBytes bounds one /eval response body (a shard's records).
const maxEvalRespBytes = 64 << 20

// maxFaults bounds the permanent-fault report so a misconfigured fleet
// cannot grow coordinator memory without bound.
const maxFaults = 64

// coordSeq distinguishes coordinators within one process so lease tokens
// never collide even when two coordinators share a worker pool.
var coordSeq atomic.Int64

// Coordinator shards campaign evaluation batches across a worker pool. It
// plugs into a run as a search.Problem.Prepare hook (see Prepare): purely a
// cache warmer, so every fleet failure mode degrades to local computation.
type Coordinator struct {
	opts    Options
	reg     *obs.Registry
	pool    *pool
	leases  *leaseTable
	client  *http.Client
	now     func() time.Time
	chaos   *ChaosInjector
	journal *shardLog

	cShards     *obs.Counter // shards dispatched remotely (first attempts)
	cStolen     *obs.Counter // re-dispatches after an expired lease
	cRetries    *obs.Counter // transient-fault retry sleeps taken
	cLate       *obs.Counter // results discarded because their lease was revoked
	cPermanent  *obs.Counter // permanent faults recorded
	cLocal      *obs.Counter // shards that fell back to local evaluation
	cInstalled  *obs.Counter // records installed into the local evaluator
	cPoints     *obs.Counter // points offered for remote preparation
	cDegraded   *obs.Counter // transitions into degraded (no-worker) mode
	gDegraded   *obs.Gauge   // 1 while degraded to pure local execution
	cHedges     *obs.Counter // hedge dispatches launched
	cHedgeWins  *obs.Counter // hedges whose result won the race
	cShedFast   *obs.Counter // backoff sleeps skipped because a breaker opened
	cResumePts  *obs.Counter // points answered from the shard journal on resume
	cResumeRecs *obs.Counter // records re-installed from the store on resume

	mu            sync.Mutex
	degraded      bool
	faults        []string
	faultsDropped int // permanent faults evicted from the FIFO report
}

// New builds a Coordinator over the given worker addresses (host:port or
// full URLs), probes them once synchronously, and starts the background
// health monitor. Callers must Close it.
func New(workers []string, opts Options) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, errors.New("fleet: no workers given")
	}
	for _, w := range workers {
		if strings.TrimSpace(w) == "" {
			return nil, errors.New("fleet: empty worker address")
		}
	}
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	now := time.Now
	client := &http.Client{}
	c := &Coordinator{
		opts:        opts,
		reg:         reg,
		client:      client,
		now:         now,
		chaos:       opts.Chaos.NewInjector("", reg),
		cShards:     reg.Counter("fleet_shards_dispatched_total"),
		cStolen:     reg.Counter("fleet_leases_stolen_total"),
		cRetries:    reg.Counter("fleet_retries_total"),
		cLate:       reg.Counter("fleet_late_results_discarded_total"),
		cPermanent:  reg.Counter("fleet_permanent_faults_total"),
		cLocal:      reg.Counter("fleet_shards_local_total"),
		cInstalled:  reg.Counter("fleet_records_installed_total"),
		cPoints:     reg.Counter("fleet_points_offered_total"),
		cDegraded:   reg.Counter("fleet_degraded_transitions_total"),
		gDegraded:   reg.Gauge("fleet_degraded"),
		cHedges:     reg.Counter("fleet_hedges_total"),
		cHedgeWins:  reg.Counter("fleet_hedge_wins_total"),
		cShedFast:   reg.Counter("fleet_breaker_sheds_total"),
		cResumePts:  reg.Counter("fleet_resume_points_skipped_total"),
		cResumeRecs: reg.Counter("fleet_resume_records_installed_total"),
	}
	if opts.JournalDir != "" {
		j, err := openShardLog(opts.JournalDir, opts.Resume, opts.Warnf)
		if err != nil {
			return nil, fmt.Errorf("fleet: open shard journal: %w", err)
		}
		c.journal = j
	}
	c.leases = newLeaseTable(fmt.Sprintf("%d-%d", os.Getpid(), coordSeq.Add(1)), func() time.Time { return c.now() }, reg)
	c.pool = newPool(workers, opts.ModelVersion, opts.HealthInterval, opts.BreakerThreshold, client, reg, opts.Warnf)
	c.pool.start()
	return c, nil
}

// Close stops the health monitor and closes the shard journal. In-flight
// Prepare calls should have finished (the campaign runner calls Close after
// RunCampaign returns).
func (c *Coordinator) Close() {
	c.pool.close()
	c.journal.close()
}

// Metrics returns the registry holding the fleet_* instruments, for merging
// into a campaign's metrics output.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// WorkersHealthy returns the number of currently dispatchable workers.
func (c *Coordinator) WorkersHealthy() int { return c.pool.healthyCount() }

// Faults returns the most recent permanent faults (FIFO-capped, with a
// dropped-count marker when older ones were evicted) plus the current
// non-closed circuit-breaker states, for the campaign report.
func (c *Coordinator) Faults() []string {
	c.mu.Lock()
	out := make([]string, len(c.faults))
	copy(out, c.faults)
	dropped := c.faultsDropped
	c.mu.Unlock()
	if dropped > 0 {
		out = append(out, fmt.Sprintf("(+%d earlier permanent fault(s) dropped)", dropped))
	}
	return append(out, c.pool.breakerLines()...)
}

// recordFault appends a permanent fault to the report and counts it. The
// report is a FIFO of the last maxFaults entries — a week-long campaign
// against a flapping worker keeps the newest faults and a count of evicted
// ones instead of growing without bound (or freezing on the oldest).
func (c *Coordinator) recordFault(msg string) {
	c.cPermanent.Inc()
	if c.opts.Warnf != nil {
		c.opts.Warnf("fleet: permanent fault: %s", msg)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.faults) >= maxFaults {
		c.faults = c.faults[1:]
		c.faultsDropped++
	}
	c.faults = append(c.faults, msg)
}

// setDegraded tracks entry/exit of pure-local degraded mode, counting and
// logging transitions only.
func (c *Coordinator) setDegraded(on bool) {
	c.mu.Lock()
	changed := c.degraded != on
	c.degraded = on
	c.mu.Unlock()
	if !changed {
		return
	}
	if on {
		c.cDegraded.Inc()
		c.gDegraded.Set(1)
		if c.opts.Warnf != nil {
			c.opts.Warnf("fleet: no reachable workers; degrading to local execution")
		}
	} else {
		c.gDegraded.Set(0)
		if c.opts.Warnf != nil {
			c.opts.Warnf("fleet: workers reachable again; resuming remote dispatch")
		}
	}
}

// Prepare returns a search.Problem.Prepare hook that warms ev's layer cache
// from the fleet before each batch: it shards the batch's not-yet-memoized
// points by consistent hash, dispatches each shard under a lease, and
// installs the returned content-addressed records. The hook is result
// neutral — the batch's evaluations run locally afterwards and are
// bit-identical whether the hook did everything, something, or nothing.
func (c *Coordinator) Prepare(ev *eval.Evaluator, model string) func(context.Context, []arch.Point) {
	cfg := ev.Config()
	base := EvalRequest{
		Protocol:     ProtocolVersion,
		ModelVersion: c.opts.ModelVersion,
		Model:        model,
		Mode:         cfg.Mode.String(),
		MapTrials:    cfg.MapTrials,
		Seed:         cfg.Seed,
	}
	return func(ctx context.Context, pts []arch.Point) {
		var fresh []arch.Point
		seen := make(map[string]bool, len(pts))
		for _, pt := range pts {
			k := pt.Key()
			if seen[k] || ev.Memoized(pt) {
				continue
			}
			seen[k] = true
			fresh = append(fresh, pt)
		}
		if len(fresh) == 0 {
			return
		}
		c.cPoints.Add(int64(len(fresh)))
		if c.opts.Resume {
			fresh = c.replayCompleted(ev, fresh)
			if len(fresh) == 0 {
				return
			}
		}
		shards := c.shard(model, fresh)
		if len(shards) == 0 {
			// No reachable workers: degrade, let the batch evaluate locally.
			c.setDegraded(true)
			return
		}
		c.setDegraded(false)
		// The batch span arrives through the context (search.EvaluateBatch
		// plants it); each shard nests a dispatch span under it, and the
		// record install closes the loop. A ctx without a span yields a nil
		// tracer, making every span operation below free.
		tr, batchSC, _ := obs.SpanFromContext(ctx)
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh shard) {
				defer wg.Done()
				dsp := tr.StartChild(batchSC, obs.SpanDispatch, sh.key)
				dsp.Points = len(sh.points)
				recs := c.runShard(obs.ContextWithSpan(ctx, tr, dsp.Context()), base, sh)
				if len(recs) > 0 {
					isp := tr.StartChild(dsp.Context(), obs.SpanInstall, sh.key)
					n := ev.InstallRecords(recs)
					isp.Points = n
					isp.End()
					c.cInstalled.Add(int64(n))
					ids := make([]string, 0, len(recs))
					for _, rec := range recs {
						ids = append(ids, rec.Key.ID())
					}
					c.journal.done(sh, ids)
				}
				dsp.End()
			}(sh)
		}
		wg.Wait()
	}
}

// replayCompleted is the resume fast path: points whose shard the journal
// records as done are answered by re-installing that shard's records from
// the evaluator's persistent store — no re-dispatch, no recomputation. A
// point whose records the store no longer holds (GC'd, different cache dir,
// no store at all) falls through to normal dispatch: resume is an
// optimization riding on the merge-by-construction contract, never a
// correctness dependency. Returns the points still needing dispatch.
func (c *Coordinator) replayCompleted(ev *eval.Evaluator, pts []arch.Point) []arch.Point {
	if c.journal == nil {
		return pts
	}
	rest := pts[:0:0]
	for _, pt := range pts {
		ids, ok := c.journal.completedFor(pt.Key())
		if !ok {
			rest = append(rest, pt)
			continue
		}
		installed, missing := ev.InstallFromStore(ids)
		if missing > 0 {
			rest = append(rest, pt)
			continue
		}
		c.cResumePts.Inc()
		c.cResumeRecs.Add(int64(installed))
	}
	return rest
}

// shard is one dispatchable unit: a slice of point keys with a ring-derived
// locality key and preferred owner.
type shard struct {
	key    string // locality key of the shard's first point
	points []string
}

// shard groups fresh points by their ring owner (for evalcache locality)
// and chunks each group to ShardPoints. Returns nil when no workers are
// currently healthy.
func (c *Coordinator) shard(model string, pts []arch.Point) []shard {
	if c.pool.healthyCount() == 0 {
		return nil
	}
	groups := make(map[int][]string)
	var order []int
	for _, pt := range pts {
		key := model + "|" + pt.Key()
		own := c.pool.owner(key)
		if _, ok := groups[own]; !ok {
			order = append(order, own)
		}
		groups[own] = append(groups[own], pt.Key())
	}
	var out []shard
	for _, own := range order {
		keys := groups[own]
		for len(keys) > 0 {
			n := c.opts.ShardPoints
			if n > len(keys) {
				n = len(keys)
			}
			out = append(out, shard{key: model + "|" + keys[0], points: keys[:n]})
			keys = keys[n:]
		}
	}
	return out
}

// permanentError marks a fault retrying cannot heal (eval.ClassPermanent
// semantics): bad request, unknown model/mode, or model-version skew.
type permanentError struct{ err error }

// Error implements error.
func (e *permanentError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying fault.
func (e *permanentError) Unwrap() error { return e.err }

// classify maps a dispatch error to eval.ErrClass semantics.
func classify(err error) eval.ErrClass {
	if err == nil {
		return eval.ClassNone
	}
	var pe *permanentError
	if errors.As(err, &pe) {
		return eval.ClassPermanent
	}
	return eval.ClassTransient
}

// delayBefore mirrors eval.RetryPolicy's deterministic exponential backoff:
// no jitter, so retry schedules are reproducible in tests and traces.
func (c *Coordinator) delayBefore(retry int) time.Duration {
	d := c.opts.Backoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= c.opts.BackoffCap {
			return c.opts.BackoffCap
		}
	}
	if d > c.opts.BackoffCap {
		d = c.opts.BackoffCap
	}
	return d
}

// runShard drives one shard to completion: dispatch under a lease (hedged
// when the attempt straggles), steal to the next ring worker on expiry or
// transient fault (with capped backoff, shortened by a worker's Retry-After
// hint and skipped entirely when the fault opened the worker's breaker and
// another candidate is ready), record permanent faults, and fall back to
// local evaluation when attempts run out or no worker remains. Returns the
// records to install (nil means the coordinator computes the shard's layers
// itself).
func (c *Coordinator) runShard(ctx context.Context, base EvalRequest, sh shard) []evalcache.Record {
	c.cShards.Inc()
	tried := make(map[int]bool)
	prevExpired := false
	prevWorker := ""
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		w, idx := c.pool.pick(sh.key, tried)
		if w == nil && len(tried) > 0 {
			// Every healthy worker was tried; allow a second pass.
			tried = make(map[int]bool)
			w, idx = c.pool.pick(sh.key, tried)
		}
		if w == nil {
			if c.pool.healthyCount() == 0 {
				c.setDegraded(true)
			}
			c.cLocal.Inc()
			return nil
		}
		if prevExpired {
			c.cStolen.Inc()
			c.journal.steal(sh, prevWorker, w.id, attempt)
			if c.opts.Warnf != nil {
				c.opts.Warnf("fleet: shard %s stolen to worker %s (attempt %d)", sh.key, w.id, attempt)
			}
		} else {
			c.journal.grant(sh, w.id, attempt)
		}
		recs, faultW, err, opened := c.dispatchHedged(ctx, base, sh, w, idx, tried)
		switch classify(err) {
		case eval.ClassNone:
			return recs
		case eval.ClassPermanent:
			c.recordFault(fmt.Sprintf("shard %s on worker %s: %v", sh.key, faultW.id, err))
			c.cLocal.Inc()
			return nil
		}
		// Transient: steal to another worker after a deterministic delay.
		prevExpired = true
		prevWorker = faultW.id
		if attempt >= c.opts.MaxAttempts {
			c.cLocal.Inc()
			return nil
		}
		c.cRetries.Inc()
		c.workerCounter("fleet_worker_retries_total", faultW.id).Inc()
		if opened && c.pool.pickable(sh.key, tried) {
			// The fault opened faultW's breaker and another candidate is
			// ready: shed immediately instead of burning the backoff window
			// on a worker the breaker just declared gone.
			c.cShedFast.Inc()
			continue
		}
		if !sleepCtx(ctx, c.retryDelay(attempt, err)) {
			return nil
		}
	}
}

// retryDelay resolves the pre-retry sleep: the deterministic exponential
// schedule, shortened by the worker's own Retry-After hint when one
// accompanied the fault. The hint is trusted only downward-ish — it is
// capped at the schedule's ceiling so a worker advertising a huge hold-off
// cannot stall a shard past the campaign's own bound.
func (c *Coordinator) retryDelay(attempt int, err error) time.Duration {
	d := c.delayBefore(attempt)
	var ra *retryAfterError
	if errors.As(err, &ra) && ra.hint > 0 {
		d = ra.hint
		if d > c.opts.BackoffCap {
			d = c.opts.BackoffCap
		}
	}
	return d
}

// attemptResult is one dispatch attempt's outcome inside dispatchHedged.
type attemptResult struct {
	recs  []evalcache.Record
	err   error
	w     *worker
	idx   int
	l     *lease
	hedge bool
}

// dispatchHedged performs one logical dispatch attempt of sh on w, hedging
// to the next ring candidate if the attempt is still unanswered after the
// HedgeAfter threshold. The first complete result wins; the loser's lease is
// revoked immediately (so a result it still produces is refused by the
// complete() gate — the records were never installed, nothing double-merges)
// and its context cancelled to free the connection. Hedging is safe by the
// same argument as work stealing: workers return only content-addressed
// records, so duplicated work can never change the merge, only waste a
// worker's time — which is exactly the trade a straggler rescue wants.
//
// Returns the winning records, the worker to blame for the returned error
// (nil error: the winner), and whether a breaker opened during this attempt
// (the caller's shed-fast signal). Fault accounting per attempted worker —
// per-worker fault counters, breaker feedback, tried-set marking — happens
// here, because only this function knows which workers actually dispatched.
func (c *Coordinator) dispatchHedged(ctx context.Context, base EvalRequest, sh shard, w *worker, idx int, tried map[int]bool) ([]evalcache.Record, *worker, error, bool) {
	tr, dispatchSC, _ := obs.SpanFromContext(ctx)

	results := make(chan attemptResult, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()

	run := func(actx context.Context, aw *worker, aidx int, l *lease, hedge bool) {
		recs, err := c.dispatch(actx, base, sh, aw, l)
		results <- attemptResult{recs: recs, err: err, w: aw, idx: aidx, l: l, hedge: hedge}
	}
	primaryLease := c.leases.grant(w.id, c.opts.LeaseTTL, c.opts.MaxShardHold)
	go run(pctx, w, idx, primaryLease, false)
	inflight := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var hsp obs.Span // the hedge attempt's covering span
	var winner attemptResult
	haveWinner := false
	var transientErr, permanentErr error
	var transientW, permanentW *worker
	opened := false

	for inflight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil // at most one hedge per attempt
			ex := map[int]bool{idx: true}
			for k := range tried {
				ex[k] = true
			}
			hw, hidx := c.pool.pick(sh.key, ex)
			if hw == nil {
				continue
			}
			c.cHedges.Inc()
			c.workerCounter("fleet_worker_hedges_total", hw.id).Inc()
			if c.opts.Warnf != nil {
				c.opts.Warnf("fleet: shard %s straggling on worker %s; hedging to %s", sh.key, w.id, hw.id)
			}
			hsp = tr.StartChild(dispatchSC, obs.SpanHedge, sh.key)
			hsp.Worker = hw.id
			hsp.Points = len(sh.points)
			c.journal.grant(sh, hw.id, 0)
			hedgeLease := c.leases.grant(hw.id, c.opts.LeaseTTL, c.opts.MaxShardHold)
			go run(obs.ContextWithSpan(hctx, tr, hsp.Context()), hw, hidx, hedgeLease, true)
			inflight++

		case res := <-results:
			inflight--
			if res.hedge {
				if res.err != nil {
					hsp.Err = res.err.Error()
				}
				hsp.End()
			}
			switch {
			case haveWinner:
				// The race is decided; this is the cancelled/refused loser.
				// Say nothing to the breaker and count no fault: the loser
				// lost to our own revocation, not to its own health.
			case res.err == nil:
				winner, haveWinner = res, true
				c.pool.breakerResult(res.w, false)
				// Decide the race for the other attempt, if any: revoke its
				// lease first (the complete() gate now refuses its result),
				// then cancel its request to free the connection.
				if res.hedge {
					c.leases.revoke(primaryLease)
					pcancel()
				} else {
					hcancel()
				}
			default:
				c.workerCounter("fleet_worker_faults_total", res.w.id).Inc()
				tried[res.idx] = true
				if classify(res.err) == eval.ClassPermanent {
					permanentErr, permanentW = res.err, res.w
				} else {
					if transientErr == nil {
						transientErr, transientW = res.err, res.w
					}
					if c.pool.breakerResult(res.w, true) {
						opened = true
						bsp := tr.StartChild(dispatchSC, obs.SpanBreaker, res.w.id)
						bsp.Worker = res.w.id
						bsp.Err = res.err.Error()
						bsp.End()
					}
				}
			}
		}
	}
	if haveWinner {
		if winner.hedge {
			c.cHedgeWins.Inc()
		}
		return winner.recs, winner.w, nil, opened
	}
	if permanentErr != nil {
		return nil, permanentW, permanentErr, opened
	}
	return nil, transientW, transientErr, opened
}

// workerCounter returns the per-worker-attributed variant of a fleet
// counter, labeled by worker address — how a flapping worker becomes
// visible in /metrics instead of only in Faults at exit.
func (c *Coordinator) workerCounter(name, worker string) *obs.Counter {
	return c.reg.Counter(name + `{worker="` + worker + `"}`)
}

// sleepCtx sleeps for d unless ctx ends first; reports whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// dispatch performs one leased attempt of sh on w: start the renew/expiry
// watcher on the caller-granted lease, POST the shard, and gate the result
// on lease completion. Any path that ends without complete() revokes the
// lease (counting it expired); a lease revoked elsewhere — expiry, or a
// hedge race decided against this attempt — makes complete() refuse, and the
// late result is discarded. Errors are classified by classify.
func (c *Coordinator) dispatch(ctx context.Context, base EvalRequest, sh shard, w *worker, l *lease) (recs []evalcache.Record, err error) {
	req := base
	req.Lease = l.token
	req.Points = sh.points

	// One rpc span per attempt, nested under the shard's dispatch span
	// (planted on ctx by Prepare). Its context rides the trace header to
	// the worker, whose own spans come back in resp.Spans already parented
	// under it — the cross-process merge point.
	tr, dispatchSC, _ := obs.SpanFromContext(ctx)
	rpc := tr.StartChild(dispatchSC, obs.SpanRPC, sh.key)
	rpc.Worker = w.id
	rpc.Points = len(sh.points)
	defer func() {
		if err != nil {
			rpc.Err = err.Error()
		}
		rpc.End()
	}()

	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchDone := make(chan struct{})
	stopWatch := make(chan struct{})
	go func() {
		defer close(watchDone)
		c.watchLease(l, w, cancel, stopWatch)
	}()

	resp, err := c.postEval(reqCtx, w, req, rpc.Context())
	close(stopWatch)
	<-watchDone
	if err != nil {
		// The lease ended without a completed result — whether the worker
		// died mid-flight, timed out, or the watcher already expired it.
		c.leases.revoke(l)
		return nil, err
	}
	if !c.leases.complete(l) {
		// Late result: the lease expired (and the shard was or will be
		// re-dispatched) before this response landed. Discard it — the
		// records were never installed, so nothing was double-merged.
		c.cLate.Inc()
		return nil, fmt.Errorf("worker %s: result after lease %s expired; discarded", w.id, l.token)
	}
	if resp.ModelVersion != c.opts.ModelVersion {
		c.pool.quarantine(w, fmt.Sprintf("response model version %q, want %q", resp.ModelVersion, c.opts.ModelVersion))
		return nil, &permanentError{fmt.Errorf("worker %s: response model version %q, want %q", w.id, resp.ModelVersion, c.opts.ModelVersion)}
	}
	// The result is accepted: merge the worker-side spans into the local
	// trace. Spans of discarded (late, errored, skewed) results never merge,
	// mirroring the record-install rule.
	for _, sev := range resp.Spans {
		tr.Forward(sev)
	}
	for _, line := range resp.Records {
		rec, ver, err := evalcache.DecodeRecord(line)
		if err != nil || ver != c.opts.ModelVersion {
			// A corrupt or skewed record is dropped, not fatal: the
			// coordinator recomputes that layer locally.
			continue
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// watchLease renews l while the pool believes w healthy (the heartbeat) and
// revokes it — cancelling the in-flight request — once it expires. Runs
// until stop closes or the lease expires.
func (c *Coordinator) watchLease(l *lease, w *worker, cancel context.CancelFunc, stop <-chan struct{}) {
	tick := c.opts.LeaseTTL / 3
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			now := c.now()
			if l.expired(now) {
				c.leases.revoke(l)
				cancel()
				return
			}
			if w.healthy() {
				l.renew(now, c.opts.LeaseTTL)
			}
		}
	}
}

// retryAfterError decorates a transient status fault with the worker's own
// Retry-After hint, which runShard folds into its backoff (capped at the
// deterministic schedule's ceiling).
type retryAfterError struct {
	err  error
	hint time.Duration
}

// Error implements error.
func (e *retryAfterError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying fault.
func (e *retryAfterError) Unwrap() error { return e.err }

// parseRetryAfter reads a Retry-After header as delay seconds. HTTP-date
// values (the other legal form) are ignored — honoring them would couple the
// backoff to wall-clock skew between coordinator and worker.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// postEval performs the HTTP round trip for one shard and classifies the
// response status: 200 decodes, 412 quarantines (permanent), other 4xx are
// permanent, 429/5xx/transport errors are transient (carrying the worker's
// Retry-After hint when present). A non-zero span context rides the
// obs.TraceHeader so the worker links its spans under ours. A configured
// chaos injector intercepts here — the RPC boundary — consuming one ordinal
// per call: drops, partitions, delays, and injected statuses act before the
// real round trip; truncation and corruption mutate the real response body.
func (c *Coordinator) postEval(ctx context.Context, w *worker, req EvalRequest, sc obs.SpanContext) (*EvalResponse, error) {
	ord := -1
	if c.chaos != nil {
		ord = c.chaos.next()
		if err := c.chaos.admit(ctx.Done(), ord, w.id); err != nil {
			var pe *permanentError
			if errors.As(err, &pe) {
				return nil, &permanentError{fmt.Errorf("worker %s: %w", w.id, err)}
			}
			return nil, fmt.Errorf("worker %s: %w", w.id, err)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &permanentError{fmt.Errorf("encode request: %w", err)}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/eval", bytes.NewReader(body))
	if err != nil {
		return nil, &permanentError{fmt.Errorf("build request: %w", err)}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if sc.Span != "" {
		hreq.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(sc))
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("worker %s: %w", w.id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEvalRespBytes))
	if err != nil {
		return nil, fmt.Errorf("worker %s: read response: %w", w.id, err)
	}
	if ord >= 0 {
		data = c.chaos.mutate(ord, data)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// Fall through to decode.
	case resp.StatusCode == http.StatusPreconditionFailed:
		c.pool.quarantine(w, "eval handshake: "+strings.TrimSpace(string(data)))
		return nil, &permanentError{fmt.Errorf("worker %s: model version skew: %s", w.id, strings.TrimSpace(string(data)))}
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		err := fmt.Errorf("worker %s: status %d", w.id, resp.StatusCode)
		if hint := parseRetryAfter(resp.Header.Get("Retry-After")); hint > 0 {
			return nil, &retryAfterError{err: err, hint: hint}
		}
		return nil, err
	default:
		return nil, &permanentError{fmt.Errorf("worker %s: status %d: %s", w.id, resp.StatusCode, strings.TrimSpace(string(data)))}
	}
	var out EvalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("worker %s: decode response: %w", w.id, err)
	}
	return &out, nil
}
