package fleet

import (
	"sync"
	"testing"
	"time"

	"xdse/internal/obs"
)

// testClock is a hand-cranked clock for deterministic lease tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTable() (*leaseTable, *testClock, *obs.Registry) {
	clock := &testClock{t: time.Unix(1000, 0)}
	reg := obs.NewRegistry()
	return newLeaseTable("test", clock.now, reg), clock, reg
}

func TestLeaseLifecycleComplete(t *testing.T) {
	tab, clock, reg := newTestTable()
	l := tab.grant("w1", 5*time.Second, time.Minute)
	if l.expired(clock.now()) {
		t.Fatal("fresh lease already expired")
	}
	clock.advance(3 * time.Second)
	l.renew(clock.now(), 5*time.Second)
	clock.advance(4 * time.Second) // 7s total: past the original TTL, inside the renewed one
	if l.expired(clock.now()) {
		t.Fatal("renewed lease expired inside its window")
	}
	if !tab.complete(l) {
		t.Fatal("complete refused an active lease")
	}
	if tab.complete(l) {
		t.Fatal("complete accepted a lease twice")
	}
	if tab.revoke(l) {
		t.Fatal("revoke accepted a completed lease")
	}
	if got := reg.Counter("fleet_leases_expired_total").Value(); got != 0 {
		t.Fatalf("expired counter = %d on the clean path, want 0", got)
	}
	if got := reg.Counter("fleet_leases_completed_total").Value(); got != 1 {
		t.Fatalf("completed counter = %d, want 1", got)
	}
}

func TestLeaseExpiryAndLateResultDiscard(t *testing.T) {
	tab, clock, reg := newTestTable()
	l := tab.grant("w1", 5*time.Second, time.Minute)
	clock.advance(6 * time.Second)
	if !l.expired(clock.now()) {
		t.Fatal("unrenewed lease not expired past its TTL")
	}
	if !tab.revoke(l) {
		t.Fatal("revoke refused an expired-but-active lease")
	}
	// The late result: the worker answers after revocation. complete must
	// refuse, which is what keeps the result out of the merge.
	if tab.complete(l) {
		t.Fatal("complete accepted a revoked lease — late result would double-merge")
	}
	if tab.revoke(l) {
		t.Fatal("revoke accepted a lease twice — expiry would double-count")
	}
	if got := reg.Counter("fleet_leases_expired_total").Value(); got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
	if got := reg.Counter("fleet_leases_completed_total").Value(); got != 0 {
		t.Fatalf("completed counter = %d, want 0", got)
	}
}

func TestLeaseRenewRespectsHardCeiling(t *testing.T) {
	tab, clock, _ := newTestTable()
	l := tab.grant("w1", 5*time.Second, 8*time.Second)
	clock.advance(6 * time.Second)
	l.renew(clock.now(), 5*time.Second) // would reach t+11s; ceiling is t+8s
	clock.advance(3 * time.Second)      // t+9s: past the ceiling
	if !l.expired(clock.now()) {
		t.Fatal("renewals pushed the lease past its hard ceiling — straggler unbounded")
	}
}

// lockedClock is a thread-safe hand-cranked clock for tests that race
// renewals against time advances.
type lockedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *lockedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockedClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestLeaseRenewalStormRespectsHardCeiling hammers one lease with concurrent
// renewals racing a steadily advancing clock: no interleaving may ever push
// the soft deadline past the MaxShardHold ceiling, and once the clock passes
// the ceiling the lease is expired no matter how hard renewals keep landing.
func TestLeaseRenewalStormRespectsHardCeiling(t *testing.T) {
	clock := &lockedClock{t: time.Unix(1000, 0)}
	tab := newLeaseTable("storm", clock.now, obs.NewRegistry())
	const (
		ttl     = 50 * time.Millisecond
		maxHold = 200 * time.Millisecond
	)
	l := tab.grant("w1", ttl, maxHold)
	hard := clock.now().Add(maxHold)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.renew(clock.now(), ttl)
				l.mu.Lock()
				over := l.expiry.After(hard)
				l.mu.Unlock()
				if over {
					t.Error("renewal pushed the lease past its hard ceiling")
					return
				}
			}
		}()
	}
	// Walk the clock well past the ceiling while the storm rages.
	for i := 0; i < 300; i++ {
		clock.advance(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if !l.expired(clock.now()) {
		t.Fatal("lease survived past MaxShardHold under a renewal storm — straggler unbounded")
	}
	// Even one last renewal at the very moment of the check cannot revive it.
	l.renew(clock.now(), ttl)
	if !l.expired(clock.now()) {
		t.Fatal("a post-ceiling renewal revived an expired lease")
	}
}

func TestLeaseTokensUniqueAcrossTables(t *testing.T) {
	clock := &testClock{t: time.Unix(0, 0)}
	a := newLeaseTable("c1", clock.now, obs.NewRegistry())
	b := newLeaseTable("c2", clock.now, obs.NewRegistry())
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		for _, tab := range []*leaseTable{a, b} {
			l := tab.grant("w", time.Second, time.Minute)
			if seen[l.token] {
				t.Fatalf("duplicate lease token %q across coordinators", l.token)
			}
			seen[l.token] = true
		}
	}
}

func TestRingOwnerDeterministicAndLocal(t *testing.T) {
	reg := obs.NewRegistry()
	addrs := []string{"a:1", "b:2", "c:3"}
	p1 := newPool(addrs, "v", time.Second, 3, nil, reg, nil)
	p2 := newPool(addrs, "v", time.Second, 3, nil, obs.NewRegistry(), nil)
	keys := []string{"ResNet18|k1", "ResNet18|k2", "BERT|k1", "x|y", "m|n"}
	spread := map[int]bool{}
	for _, k := range keys {
		if p1.owner(k) != p2.owner(k) {
			t.Fatalf("ring owner for %q differs between identical pools", k)
		}
		spread[p1.owner(k)] = true
	}
	if len(spread) < 2 {
		t.Fatalf("all %d keys landed on one worker — ring not spreading", len(keys))
	}
}

func TestPickPrefersOwnerAndFailsOver(t *testing.T) {
	reg := obs.NewRegistry()
	addrs := []string{"a:1", "b:2", "c:3"}
	p := newPool(addrs, "v", time.Second, 3, nil, reg, nil)
	for _, w := range p.workers {
		w.setState(workerHealthy)
	}
	key := "ResNet18|k1"
	own := p.owner(key)
	w, idx := p.pick(key, nil)
	if w == nil || idx != own {
		t.Fatalf("pick over a fully healthy pool chose %v, want owner %d", idx, own)
	}
	// Owner down: pick must fail over to a different healthy worker,
	// deterministically.
	p.workers[own].setState(workerUnreachable)
	w2, idx2 := p.pick(key, nil)
	if w2 == nil || idx2 == own {
		t.Fatalf("pick did not fail over from the down owner (got %v)", idx2)
	}
	_, idx3 := p.pick(key, nil)
	if idx3 != idx2 {
		t.Fatalf("failover not deterministic: %d then %d", idx2, idx3)
	}
	// Excluding the failover target too leaves exactly one candidate.
	w4, idx4 := p.pick(key, map[int]bool{idx2: true})
	if w4 == nil || idx4 == idx2 || idx4 == own {
		t.Fatalf("pick with exclusion chose %v", idx4)
	}
	// Everything excluded or down: nil.
	if w5, _ := p.pick(key, map[int]bool{0: true, 1: true, 2: true}); w5 != nil {
		t.Fatal("pick returned a worker despite all being excluded")
	}
	_ = w
	_ = w2
}

func TestQuarantinedWorkerNeverPicked(t *testing.T) {
	p := newPool([]string{"a:1", "b:2"}, "v", time.Second, 3, nil, obs.NewRegistry(), nil)
	p.workers[0].setState(workerQuarantined)
	p.workers[1].setState(workerHealthy)
	for _, key := range []string{"k1", "k2", "k3", "k4", "k5"} {
		w, idx := p.pick(key, nil)
		if w == nil || idx != 1 {
			t.Fatalf("pick(%q) = %v, want the sole healthy worker 1", key, idx)
		}
	}
}
