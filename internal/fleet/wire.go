package fleet

import "xdse/internal/obs"

// ProtocolVersion stamps every fleet request. A worker that receives a
// request with a protocol it does not speak rejects it with 400 (permanent),
// so a mixed-version fleet fails loudly at dispatch instead of silently
// mis-evaluating shards. Bump it when the request/response shape, the lease
// semantics, or the record wire format changes incompatibly (see
// docs/EXTENDING.md).
const ProtocolVersion = 1

// EvalRequest is the body of POST /eval — one leased shard of a campaign
// batch. The worker evaluates every point under the given configuration and
// returns the content-addressed layer records it computed; the coordinator
// installs them and replays the design evaluations locally, which is what
// keeps merged campaigns bit-identical to single-node runs.
type EvalRequest struct {
	// Protocol is the fleet protocol version (ProtocolVersion).
	Protocol int `json:"protocol"`
	// Lease is the coordinator-issued lease token for this shard; it names
	// the grant in logs and metrics on both sides. Lease enforcement —
	// renewal, expiry, late-result discard — is coordinator-side.
	Lease string `json:"lease"`
	// ModelVersion is the coordinator's perf.ModelVersion; a worker whose
	// own version differs refuses the shard with 412 (version skew is a
	// permanent, quarantining fault).
	ModelVersion string `json:"model_version"`
	// Model names the workload model (workload.ByName).
	Model string `json:"model"`
	// Mode is the mapper mode name (eval.MapperMode.String()).
	Mode string `json:"mode"`
	// MapTrials is the per-layer mapping-search budget.
	MapTrials int `json:"map_trials"`
	// Seed is the evaluation seed (participates in random-mode cache keys).
	Seed int64 `json:"seed"`
	// Points are the design points of the shard, in arch.Point.Key form.
	Points []string `json:"points"`
}

// EvalResponse is the worker's answer to one shard: the content-addressed
// layer records (evalcache.EncodeRecord lines) its evaluations produced.
type EvalResponse struct {
	// ModelVersion is the worker's perf.ModelVersion, echoed so the
	// coordinator can re-verify the handshake on every response.
	ModelVersion string `json:"model_version"`
	// Records are encoded evalcache records, one line each (no newline).
	// Each carries its own CRC and version stamp and is re-verified by the
	// receiver, so a corrupted record degrades to a recompute, never to a
	// wrong result.
	Records []string `json:"records"`
	// Evaluated is the number of points the worker evaluated.
	Evaluated int `json:"evaluated"`
	// Spans are the worker-side span events of this shard (queue wait,
	// per-point evaluations, record export), emitted only when the request
	// carried an obs.TraceHeader and already causally linked under the
	// coordinator's rpc span. The field is additive — old coordinators
	// ignore it and old workers never send it — so it needs no protocol
	// bump (see docs/EXTENDING.md).
	Spans []obs.Event `json:"spans,omitempty"`
}
