package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"xdse/internal/obs"
)

// ChaosPolicy deterministically injects faults at the coordinator↔worker RPC
// boundary, mirroring eval.FaultPolicy's design one layer down: faults are
// addressed by dispatch ordinal (the 0-based count of /eval attempts the
// injecting side has made), never by wall clock or randomness, so a chaos
// run is replayable. The same policy type drives both sides of the wire —
// the coordinator injects before/after its POST, a worker injects through
// Wrap around its /eval handler — and every fault kind lands on a path the
// fleet already survives: drops, delays, and 5xx storms are classified
// transient; truncation breaks the response decode (transient); corruption
// either breaks the decode or trips a record's CRC (that record is dropped
// and its layer recomputed locally). None of them can alter the merged
// campaign, only its speed — which is exactly what chaos runs exist to prove.
//
// Ordinals are assigned in dispatch order, so they are stable only while
// dispatch is serialized (one shard in flight); concurrent shards interleave
// ordinal assignment nondeterministically. Correctness gates never depend on
// where a fault lands — only replay of a specific chaos script does — so
// tests that assert exact injection sites serialize their dispatches, like
// eval.FaultPolicy tests run with Workers=1.
type ChaosPolicy struct {
	// Seed keys the deterministic corruption byte positions. Two runs with
	// the same seed corrupt the same offsets.
	Seed int64
	// DropAt lists ordinals whose connection is dropped before any bytes
	// are exchanged (coordinator: a synthetic transport error; worker: an
	// aborted response).
	DropAt []int
	// DelayAt lists ordinals delayed by Delay before proceeding.
	DelayAt []int
	// Delay is the fixed injected latency for DelayAt ordinals. Default
	// 100ms when any DelayAt is set.
	Delay time.Duration
	// TruncateAt lists ordinals whose response body is cut to its first
	// half — a torn read.
	TruncateAt []int
	// CorruptAt lists ordinals whose response body has one byte flipped at
	// a Seed-derived position.
	CorruptAt []int
	// StatusAt maps ordinals to an injected HTTP status (a 503 storm is a
	// contiguous ordinal range mapped to 503). Statuses are classified
	// exactly like real ones: 429/5xx transient, other 4xx permanent.
	StatusAt map[int]int
	// Partitions script unreachability windows: dispatches to a matching
	// worker with ordinals in [From, To] fail as dropped connections.
	Partitions []Partition
}

// Partition is one scripted network partition: Worker is unreachable for
// every dispatch ordinal in the inclusive window [From, To]. Worker "" or
// "*" matches all workers (on a serve daemon, which injects for itself, any
// partition whose worker matches its configured self-ID applies).
type Partition struct {
	Worker   string
	From, To int
}

// matches reports whether the partition blackholes worker at ord.
func (p Partition) matches(worker string, ord int) bool {
	if ord < p.From || ord > p.To {
		return false
	}
	return p.Worker == "" || p.Worker == "*" || p.Worker == worker
}

// Enabled reports whether the policy injects anything at all.
func (p *ChaosPolicy) Enabled() bool {
	if p == nil {
		return false
	}
	return len(p.DropAt) > 0 || len(p.DelayAt) > 0 || len(p.TruncateAt) > 0 ||
		len(p.CorruptAt) > 0 || len(p.StatusAt) > 0 || len(p.Partitions) > 0
}

// delay resolves the injected latency, defaulting when the spec named delay
// ordinals but no duration.
func (p *ChaosPolicy) delay() time.Duration {
	if p.Delay > 0 {
		return p.Delay
	}
	return 100 * time.Millisecond
}

// containsInt reports membership of ord in a small ordinal list.
func containsInt(list []int, ord int) bool {
	for _, v := range list {
		if v == ord {
			return true
		}
	}
	return false
}

// corruptByte flips one byte of body in place-copy at a position derived
// only from (seed, ord, len) — deterministic, so a replayed chaos run
// corrupts the identical offset. XOR with 0x5A guarantees the byte changes.
func corruptByte(body []byte, seed int64, ord int) []byte {
	if len(body) == 0 {
		return body
	}
	pos := int(ringHash(fmt.Sprintf("chaos|%d|%d", seed, ord))) % len(body)
	out := make([]byte, len(body))
	copy(out, body)
	out[pos] ^= 0x5A
	return out
}

// ChaosInjector is one side's runtime for a ChaosPolicy: the ordinal counter
// plus injection counters. A nil injector (from a nil/empty policy) is the
// disabled state; every method no-ops, so call sites need no guards.
type ChaosInjector struct {
	p    ChaosPolicy
	self string
	ord  atomic.Int64
	reg  *obs.Registry
}

// NewInjector binds a runtime to the policy. self names the injecting side
// for partition matching: the coordinator passes "" (it knows each dispatch's
// target worker and passes it to admit); a serve daemon passes its own
// configured identity so coordinator-addressed partitions can be scripted on
// the worker side too. reg receives fleet_chaos_injected_total{kind=...}
// counters (nil allocates a private registry).
func (p *ChaosPolicy) NewInjector(self string, reg *obs.Registry) *ChaosInjector {
	if !p.Enabled() {
		return nil
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &ChaosInjector{p: *p, self: self, reg: reg}
}

// next allocates the next dispatch ordinal.
func (ci *ChaosInjector) next() int {
	return int(ci.ord.Add(1) - 1)
}

// count records one injected fault of the given kind.
func (ci *ChaosInjector) count(kind string) {
	ci.reg.Counter(`fleet_chaos_injected_total{kind="` + kind + `"}`).Inc()
}

// admit decides the pre-flight fate of the dispatch with ordinal ord to
// worker: a nil error proceeds (after any injected delay, which admit
// sleeps itself bounded by done), a non-nil error is the injected fault,
// already shaped for classify (429/5xx statuses and drops/partitions are
// transient; other statuses permanent).
func (ci *ChaosInjector) admit(done <-chan struct{}, ord int, worker string) error {
	if ci == nil {
		return nil
	}
	for _, part := range ci.p.Partitions {
		if part.matches(worker, ord) {
			ci.count("partition")
			return fmt.Errorf("chaos: partition: worker %s unreachable (ordinal %d)", worker, ord)
		}
	}
	if containsInt(ci.p.DropAt, ord) {
		ci.count("drop")
		return fmt.Errorf("chaos: connection dropped (ordinal %d)", ord)
	}
	if containsInt(ci.p.DelayAt, ord) {
		ci.count("delay")
		t := time.NewTimer(ci.p.delay())
		defer t.Stop()
		select {
		case <-done:
			return fmt.Errorf("chaos: delayed dispatch cancelled (ordinal %d)", ord)
		case <-t.C:
		}
	}
	if st, ok := ci.p.StatusAt[ord]; ok {
		ci.count("status")
		if st == http.StatusTooManyRequests || st >= 500 {
			return fmt.Errorf("chaos: injected status %d (ordinal %d)", st, ord)
		}
		return &permanentError{fmt.Errorf("chaos: injected status %d (ordinal %d)", st, ord)}
	}
	return nil
}

// mutate applies post-flight body faults (truncation, corruption) for ord.
func (ci *ChaosInjector) mutate(ord int, body []byte) []byte {
	if ci == nil {
		return body
	}
	if containsInt(ci.p.TruncateAt, ord) {
		ci.count("truncate")
		body = body[:len(body)/2]
	}
	if containsInt(ci.p.CorruptAt, ord) {
		ci.count("corrupt")
		body = corruptByte(body, ci.p.Seed, ord)
	}
	return body
}

// Wrap is the worker-side injection point: it decorates an /eval handler so
// each arriving request consumes one ordinal and suffers the policy's fate —
// drop (aborted connection), delay, injected status, or a truncated/corrupted
// response body. A nil injector returns next unchanged.
func (ci *ChaosInjector) Wrap(next http.Handler) http.Handler {
	if ci == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ord := ci.next()
		for _, part := range ci.p.Partitions {
			if part.matches(ci.self, ord) {
				ci.count("partition")
				panic(http.ErrAbortHandler)
			}
		}
		if containsInt(ci.p.DropAt, ord) {
			ci.count("drop")
			panic(http.ErrAbortHandler)
		}
		if containsInt(ci.p.DelayAt, ord) {
			ci.count("delay")
			t := time.NewTimer(ci.p.delay())
			defer t.Stop()
			select {
			case <-r.Context().Done():
				return
			case <-t.C:
			}
		}
		if st, ok := ci.p.StatusAt[ord]; ok {
			ci.count("status")
			http.Error(w, fmt.Sprintf("chaos: injected status %d (ordinal %d)", st, ord), st)
			return
		}
		if !containsInt(ci.p.TruncateAt, ord) && !containsInt(ci.p.CorruptAt, ord) {
			next.ServeHTTP(w, r)
			return
		}
		rec := &bodyRecorder{header: make(http.Header), status: http.StatusOK}
		next.ServeHTTP(rec, r)
		body := ci.mutate(ord, rec.body)
		for k, vs := range rec.header {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.status)
		w.Write(body)
	})
}

// bodyRecorder buffers a handler's response so Wrap can mutate it.
type bodyRecorder struct {
	header http.Header
	status int
	body   []byte
}

// Header implements http.ResponseWriter.
func (r *bodyRecorder) Header() http.Header { return r.header }

// WriteHeader implements http.ResponseWriter.
func (r *bodyRecorder) WriteHeader(status int) { r.status = status }

// Write implements http.ResponseWriter.
func (r *bodyRecorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// ParseChaosSpec parses the CLI chaos grammar into a policy. Directives are
// separated by commas or spaces:
//
//	drop@N        drop the connection at ordinal N
//	delay@N       delay ordinal N by the policy delay
//	truncate@N    cut ordinal N's response body in half
//	corrupt@N     flip one byte of ordinal N's response body
//	status@N=C    answer ordinal N with HTTP status C
//	storm@N-M=C   answer every ordinal in [N,M] with status C
//	partition@N-M[=WORKER]  WORKER (default all) unreachable for [N,M]
//	delay=DUR     the injected delay duration (default 100ms)
//	seed=N        corruption position seed
//
// An empty spec returns (nil, nil): chaos disabled.
func ParseChaosSpec(spec string) (*ChaosPolicy, error) {
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	if len(fields) == 0 {
		return nil, nil
	}
	p := &ChaosPolicy{StatusAt: map[int]int{}}
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "delay="):
			d, err := time.ParseDuration(f[len("delay="):])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("chaos: bad delay %q", f)
			}
			p.Delay = d
		case strings.HasPrefix(f, "seed="):
			n, err := strconv.ParseInt(f[len("seed="):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q", f)
			}
			p.Seed = n
		case strings.HasPrefix(f, "drop@"):
			ord, err := parseOrd(f[len("drop@"):])
			if err != nil {
				return nil, err
			}
			p.DropAt = append(p.DropAt, ord)
		case strings.HasPrefix(f, "delay@"):
			ord, err := parseOrd(f[len("delay@"):])
			if err != nil {
				return nil, err
			}
			p.DelayAt = append(p.DelayAt, ord)
		case strings.HasPrefix(f, "truncate@"):
			ord, err := parseOrd(f[len("truncate@"):])
			if err != nil {
				return nil, err
			}
			p.TruncateAt = append(p.TruncateAt, ord)
		case strings.HasPrefix(f, "corrupt@"):
			ord, err := parseOrd(f[len("corrupt@"):])
			if err != nil {
				return nil, err
			}
			p.CorruptAt = append(p.CorruptAt, ord)
		case strings.HasPrefix(f, "status@"):
			at, val, ok := strings.Cut(f[len("status@"):], "=")
			if !ok {
				return nil, fmt.Errorf("chaos: status needs @N=CODE: %q", f)
			}
			ord, err := parseOrd(at)
			if err != nil {
				return nil, err
			}
			st, err := parseStatus(val)
			if err != nil {
				return nil, err
			}
			p.StatusAt[ord] = st
		case strings.HasPrefix(f, "storm@"):
			at, val, ok := strings.Cut(f[len("storm@"):], "=")
			if !ok {
				return nil, fmt.Errorf("chaos: storm needs @N-M=CODE: %q", f)
			}
			from, to, err := parseRange(at)
			if err != nil {
				return nil, err
			}
			st, err := parseStatus(val)
			if err != nil {
				return nil, err
			}
			for o := from; o <= to; o++ {
				p.StatusAt[o] = st
			}
		case strings.HasPrefix(f, "partition@"):
			at, workerID, _ := strings.Cut(f[len("partition@"):], "=")
			from, to, err := parseRange(at)
			if err != nil {
				return nil, err
			}
			p.Partitions = append(p.Partitions, Partition{Worker: workerID, From: from, To: to})
		default:
			return nil, fmt.Errorf("chaos: unknown directive %q", f)
		}
	}
	sort.Ints(p.DropAt)
	sort.Ints(p.DelayAt)
	sort.Ints(p.TruncateAt)
	sort.Ints(p.CorruptAt)
	if !p.Enabled() {
		return nil, nil
	}
	return p, nil
}

// parseOrd parses one non-negative dispatch ordinal.
func parseOrd(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("chaos: bad ordinal %q", s)
	}
	return n, nil
}

// parseRange parses an inclusive "N-M" ordinal window.
func parseRange(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("chaos: bad range %q (want N-M)", s)
	}
	from, err := parseOrd(a)
	if err != nil {
		return 0, 0, err
	}
	to, err := parseOrd(b)
	if err != nil {
		return 0, 0, err
	}
	if to < from {
		return 0, 0, fmt.Errorf("chaos: inverted range %q", s)
	}
	return from, to, nil
}

// parseStatus parses an injected HTTP status code.
func parseStatus(s string) (int, error) {
	st, err := strconv.Atoi(s)
	if err != nil || st < 100 || st > 599 {
		return 0, fmt.Errorf("chaos: bad status %q", s)
	}
	return st, nil
}
