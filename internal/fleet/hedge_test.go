package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker mounts a minimal fleet worker: a /readyz that passes the
// membership handshake for model version "v-test" and the given /eval
// handler.
func fakeWorker(t *testing.T, eval http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ready","model_version":"v-test"}`)
	})
	mux.HandleFunc("POST /eval", eval)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// okEval answers one shard with an empty (but valid) record set.
func okEval(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"model_version":"v-test","records":[],"evaluated":1}`)
}

// hedgeTestOptions: long leases (expiry out of the picture), fast probes,
// hedging tuned per test.
func hedgeTestOptions() Options {
	return Options{
		LeaseTTL:       time.Minute,
		MaxShardHold:   time.Hour,
		HealthInterval: 10 * time.Millisecond,
		ModelVersion:   "v-test",
		Backoff:        time.Millisecond,
		BackoffCap:     2 * time.Millisecond,
		Warnf:          func(string, ...any) {},
	}
}

var testBase = EvalRequest{Protocol: ProtocolVersion, ModelVersion: "v-test", Model: "m", Mode: "test", Points: nil}

// TestHedgeRescuesStraggler: the first dispatch anywhere blocks; after
// HedgeAfter the coordinator launches one hedge to the other worker, whose
// prompt answer wins, and the straggler's lease is revoked so its eventual
// answer can never merge.
func TestHedgeRescuesStraggler(t *testing.T) {
	var first atomic.Bool
	handler := func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			// Drain the body first: the server only notices the client's
			// abort (and cancels r.Context()) once the request is read.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done() // straggle until the race is decided against us
			return
		}
		okEval(w, r)
	}
	tsA := fakeWorker(t, handler)
	tsB := fakeWorker(t, handler)
	opts := hedgeTestOptions()
	opts.HedgeAfter = 20 * time.Millisecond
	c, err := New([]string{tsA.Listener.Addr().String(), tsB.Listener.Addr().String()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.runShard(context.Background(), testBase, shard{key: "m|p1", points: []string{"p1"}})

	m := c.Metrics()
	if got := m.Counter("fleet_hedges_total").Value(); got != 1 {
		t.Fatalf("fleet_hedges_total = %d, want 1", got)
	}
	if got := m.Counter("fleet_hedge_wins_total").Value(); got != 1 {
		t.Fatalf("fleet_hedge_wins_total = %d, want 1", got)
	}
	if got := m.Counter("fleet_shards_local_total").Value(); got != 0 {
		t.Fatalf("shard fell back local despite a winning hedge (local=%d)", got)
	}
	// Exactly one lease completed (the winner); the loser's was revoked.
	if got := m.Counter("fleet_leases_completed_total").Value(); got != 1 {
		t.Fatalf("fleet_leases_completed_total = %d, want 1", got)
	}
	if got := m.Counter("fleet_leases_expired_total").Value(); got != 1 {
		t.Fatalf("fleet_leases_expired_total = %d, want 1 (the revoked loser)", got)
	}
	// The loser lost to our own revocation, not to its own health: no worker
	// fault may be charged, so both breakers stay closed.
	if got := m.Counter("fleet_breaker_opens_total").Value(); got != 0 {
		t.Fatalf("hedge race opened a breaker (opens=%d)", got)
	}
}

// TestHedgeNoCandidateFallsThrough: with a single worker there is nowhere to
// hedge to; the timer fires, finds no candidate, and the primary completes
// normally.
func TestHedgeNoCandidateFallsThrough(t *testing.T) {
	ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
		okEval(w, r)
	})
	opts := hedgeTestOptions()
	opts.HedgeAfter = 10 * time.Millisecond
	c, err := New([]string{ts.Listener.Addr().String()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.runShard(context.Background(), testBase, shard{key: "m|p1", points: []string{"p1"}})

	m := c.Metrics()
	if got := m.Counter("fleet_hedges_total").Value(); got != 0 {
		t.Fatalf("fleet_hedges_total = %d, want 0 (no candidate)", got)
	}
	if got := m.Counter("fleet_leases_completed_total").Value(); got != 1 {
		t.Fatalf("fleet_leases_completed_total = %d, want 1", got)
	}
	if got := m.Counter("fleet_shards_local_total").Value(); got != 0 {
		t.Fatalf("shard fell back local (local=%d)", got)
	}
}

// TestDispatchLateResultDiscarded: a worker whose lease is revoked mid-flight
// — here by the test, in production by expiry or a lost hedge race — has its
// perfectly valid response refused by the complete() gate and discarded.
func TestDispatchLateResultDiscarded(t *testing.T) {
	arrived := make(chan struct{})
	release := make(chan struct{})
	ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		close(arrived)
		<-release
		okEval(w, r)
	})
	c, err := New([]string{ts.Listener.Addr().String()}, hedgeTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	l := c.leases.grant(c.pool.workers[0].id, time.Minute, time.Hour)
	go func() {
		<-arrived
		c.leases.revoke(l)
		close(release)
	}()
	recs, err := c.dispatch(context.Background(), testBase, shard{key: "m|p1", points: []string{"p1"}}, c.pool.workers[0], l)
	if err == nil || !strings.Contains(err.Error(), "discarded") {
		t.Fatalf("dispatch err = %v, want a late-result discard", err)
	}
	if recs != nil {
		t.Fatal("discarded result still returned records")
	}
	if got := c.Metrics().Counter("fleet_late_results_discarded_total").Value(); got != 1 {
		t.Fatalf("fleet_late_results_discarded_total = %d, want 1", got)
	}
	if got := c.Metrics().Counter("fleet_leases_completed_total").Value(); got != 0 {
		t.Fatalf("revoked lease completed anyway (completed=%d)", got)
	}
}

// TestBreakerShedSkipsBackoff: a transient fault that opens the faulting
// worker's breaker re-dispatches immediately to the next candidate instead of
// sleeping out the backoff schedule.
func TestBreakerShedSkipsBackoff(t *testing.T) {
	bad := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	good := fakeWorker(t, okEval)
	opts := hedgeTestOptions()
	opts.HedgeAfter = -1 // isolate the breaker path
	opts.BreakerThreshold = 1
	opts.Backoff = time.Hour // a taken backoff would hang the test loudly
	opts.BackoffCap = time.Hour
	badAddr, goodAddr := bad.Listener.Addr().String(), good.Listener.Addr().String()
	c, err := New([]string{badAddr, goodAddr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a shard key the ring assigns to the bad worker, so the first
	// dispatch is guaranteed to hit it.
	badIdx := 0
	if c.pool.workers[1].id == badAddr {
		badIdx = 1
	}
	key := ""
	for i := 0; key == ""; i++ {
		k := fmt.Sprintf("m|p%d", i)
		if c.pool.owner(k) == badIdx {
			key = k
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.runShard(context.Background(), testBase, shard{key: key, points: []string{"p"}})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("runShard hung — the breaker shed did not skip the hour-long backoff")
	}

	m := c.Metrics()
	if got := m.Counter("fleet_breaker_opens_total").Value(); got != 1 {
		t.Fatalf("fleet_breaker_opens_total = %d, want 1", got)
	}
	if got := m.Counter("fleet_breaker_sheds_total").Value(); got != 1 {
		t.Fatalf("fleet_breaker_sheds_total = %d, want 1", got)
	}
	if got := m.Counter("fleet_leases_completed_total").Value(); got != 1 {
		t.Fatalf("fleet_leases_completed_total = %d, want 1 (the good worker)", got)
	}
	if got := m.Counter("fleet_shards_local_total").Value(); got != 0 {
		t.Fatalf("shard fell back local (local=%d)", got)
	}
}
