// Package bottleneck implements the paper's domain-independent bottleneck
// model API (§4.3, Fig. 7). A bottleneck model is a tree whose nodes are
// mathematical functions (add, multiply, divide, max, min) over child cost
// factors, with design parameters at the leaves. Unlike a conventional cost
// model returning a single number, the tree is explicitly analyzable: the
// analyzer evaluates it, attributes a contribution to every factor, ranks
// bottlenecks, derives the scaling needed to rebalance the dominant factor,
// and walks the critical path down to the parameters that can mitigate it.
//
// Domain-specific models (like internal/accelmodel for DNN accelerators)
// build these trees from their cost-model outputs and attach parameter
// associations and mitigation subroutines; the DSE engine in internal/dse
// consumes them through this package without knowing the domain.
package bottleneck

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Op is the mathematical function of a tree node.
type Op int

const (
	// Leaf nodes carry populated values of parameters or measured
	// execution characteristics.
	Leaf Op = iota
	// AddOp nodes sum their children.
	AddOp
	// MulOp nodes multiply their children.
	MulOp
	// DivOp nodes divide the first child by the second.
	DivOp
	// MaxOp nodes take the maximum child.
	MaxOp
	// MinOp nodes take the minimum child.
	MinOp
)

// String names the operation.
func (o Op) String() string {
	return [...]string{"leaf", "add", "mul", "div", "max", "min"}[o]
}

// Node is one factor of a bottleneck model.
type Node struct {
	// Name identifies the factor ("T_dma", "footprint_W", ...). Names key
	// the parameter dictionary of Fig. 7(b).
	Name string
	// Op is the function combining the children into this factor's value.
	Op Op
	// Value is the populated value for Leaf nodes; for interior nodes it
	// is computed by Eval.
	Value float64
	// Children are the sub-factors.
	Children []*Node
	// Params lists the design parameters associated with this factor
	// (the dictionary entries of Fig. 7(b)); interpretation of the
	// strings is up to the domain model.
	Params []string
}

// NewLeaf returns a populated leaf factor.
func NewLeaf(name string, value float64) *Node {
	return &Node{Name: name, Op: Leaf, Value: value}
}

// New returns an interior factor combining children with op.
func New(name string, op Op, children ...*Node) *Node {
	return &Node{Name: name, Op: op, Children: children}
}

// Max is shorthand for New(name, MaxOp, ...).
func Max(name string, children ...*Node) *Node { return New(name, MaxOp, children...) }

// Add is shorthand for New(name, AddOp, ...).
func Add(name string, children ...*Node) *Node { return New(name, AddOp, children...) }

// Mul is shorthand for New(name, MulOp, ...).
func Mul(name string, children ...*Node) *Node { return New(name, MulOp, children...) }

// Div is shorthand for New(name, DivOp, num, den).
func Div(name string, num, den *Node) *Node { return New(name, DivOp, num, den) }

// WithParams attaches parameter associations to the node and returns it.
func (n *Node) WithParams(params ...string) *Node {
	n.Params = append(n.Params, params...)
	return n
}

// Eval computes and stores the value of the subtree rooted at n.
func (n *Node) Eval() float64 {
	switch n.Op {
	case Leaf:
		return n.Value
	case AddOp:
		v := 0.0
		for _, c := range n.Children {
			v += c.Eval()
		}
		n.Value = v
	case MulOp:
		v := 1.0
		for _, c := range n.Children {
			v *= c.Eval()
		}
		n.Value = v
	case DivOp:
		num := n.Children[0].Eval()
		den := 1.0
		if len(n.Children) > 1 {
			den = n.Children[1].Eval()
		}
		if den == 0 {
			n.Value = math.Inf(1)
		} else {
			n.Value = num / den
		}
	case MaxOp:
		v := math.Inf(-1)
		for _, c := range n.Children {
			if cv := c.Eval(); cv > v {
				v = cv
			}
		}
		n.Value = v
	case MinOp:
		v := math.Inf(1)
		for _, c := range n.Children {
			if cv := c.Eval(); cv < v {
				v = cv
			}
		}
		n.Value = v
	}
	return n.Value
}

// Validate checks structural sanity of the tree.
func (n *Node) Validate() error {
	if n.Op == Leaf {
		if len(n.Children) != 0 {
			return fmt.Errorf("bottleneck: leaf %q has children", n.Name)
		}
		return nil
	}
	if len(n.Children) == 0 {
		return fmt.Errorf("bottleneck: interior node %q has no children", n.Name)
	}
	if n.Op == DivOp && len(n.Children) != 2 {
		return fmt.Errorf("bottleneck: div node %q needs exactly 2 children", n.Name)
	}
	for _, c := range n.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Walk visits every node of the tree in depth-first pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns the first node with the given name, or nil.
func (n *Node) Find(name string) *Node {
	var out *Node
	n.Walk(func(x *Node) {
		if out == nil && x.Name == name {
			out = x
		}
	})
	return out
}

// Contributions computes each node's fractional contribution to the root
// cost. The root contributes 1; at add and max nodes children contribute
// proportionally to their values; at mul/div nodes the full contribution
// flows through every child (they are co-factors of the same quantity).
func Contributions(root *Node) map[*Node]float64 {
	root.Eval()
	contrib := map[*Node]float64{root: 1}
	var rec func(n *Node)
	rec = func(n *Node) {
		cn := contrib[n]
		switch n.Op {
		case AddOp, MaxOp, MinOp:
			total := n.Value
			for _, c := range n.Children {
				if total != 0 {
					contrib[c] = cn * c.Value / total
				} else {
					contrib[c] = 0
				}
				rec(c)
			}
		case MulOp, DivOp:
			for _, c := range n.Children {
				contrib[c] = cn
				rec(c)
			}
		}
	}
	rec(root)
	return contrib
}

// maxScaling caps predicted one-shot scalings so a single acquisition never
// jumps beyond the design space's dynamic range.
const maxScaling = 64.0

// Bottleneck describes one identified bottleneck of a tree.
type Bottleneck struct {
	// Factor is the top-level cost factor identified as bottleneck
	// (a child of the root).
	Factor *Node
	// Critical is the path of argmax/largest-contribution nodes from
	// Factor down to the deepest contributing node.
	Critical []*Node
	// Contribution is Factor's fraction of the root cost.
	Contribution float64
	// Scaling is the ratio by which the factor's cost should shrink to
	// rebalance the tree (the paper's "s").
	Scaling float64
	// Params aggregates the parameter associations found along the
	// critical path (including Factor's own).
	Params []string
}

// Analyze evaluates the tree and returns up to n bottlenecks in decreasing
// contribution order. For a max root, the scaling of the dominant factor is
// root/second-highest (the Fig. 8 balance rule); for an add root it is the
// Amdahl balance 1/(1-contribution). Factors are the root's children; a
// root with no children yields no bottlenecks.
func Analyze(root *Node, n int) []Bottleneck {
	root.Eval()
	contrib := Contributions(root)
	if len(root.Children) == 0 || n <= 0 {
		return nil
	}

	factors := append([]*Node(nil), root.Children...)
	sort.SliceStable(factors, func(i, j int) bool {
		return contrib[factors[i]] > contrib[factors[j]]
	})
	if n > len(factors) {
		n = len(factors)
	}

	var out []Bottleneck
	for i := 0; i < n; i++ {
		f := factors[i]
		b := Bottleneck{
			Factor:       f,
			Contribution: contrib[f],
			Scaling:      scalingFor(root, f, contrib[f]),
		}
		// Descend the critical path, collecting parameter associations.
		node := f
		for node != nil {
			b.Critical = append(b.Critical, node)
			b.Params = append(b.Params, node.Params...)
			node = criticalChild(node)
		}
		out = append(out, b)
	}
	return out
}

// scalingFor derives the rebalancing scaling for factor f of root.
func scalingFor(root, f *Node, contribution float64) float64 {
	var s float64
	switch root.Op {
	case MaxOp:
		// Reduce the dominant factor to the level of the runner-up.
		second := math.Inf(-1)
		for _, c := range root.Children {
			if c != f && c.Value > second {
				second = c.Value
			}
		}
		switch {
		case math.IsInf(second, -1) || second <= 0:
			s = 2 // single-factor tree: ask for a doubling
		default:
			s = f.Value / second
		}
	case AddOp:
		if contribution < 1 {
			s = 1 / (1 - contribution)
		} else {
			s = maxScaling
		}
	default:
		s = 2
	}
	if s < 1 {
		s = 1
	}
	if s > maxScaling {
		s = maxScaling
	}
	return s
}

// criticalChild picks the child to descend into: the argmax child of
// max/add nodes, the largest-value child of mul nodes, the numerator of div
// nodes, nil at leaves.
func criticalChild(n *Node) *Node {
	if len(n.Children) == 0 {
		return nil
	}
	switch n.Op {
	case DivOp:
		return n.Children[0]
	case MinOp:
		best := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.Value < best.Value {
				best = c
			}
		}
		return best
	default:
		best := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.Value > best.Value {
				best = c
			}
		}
		return best
	}
}

// Render pretty-prints the evaluated tree with values and contributions —
// the explainability artifact the DSE can show designers for every
// acquisition decision.
func Render(root *Node) string {
	root.Eval()
	contrib := Contributions(root)
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), n.Name)
		if n.Op != Leaf {
			fmt.Fprintf(&b, " [%s]", n.Op)
		}
		fmt.Fprintf(&b, " = %.4g", n.Value)
		if c, ok := contrib[n]; ok {
			fmt.Fprintf(&b, " (%.1f%%)", c*100)
		}
		if len(n.Params) > 0 {
			fmt.Fprintf(&b, " params=%v", n.Params)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}
