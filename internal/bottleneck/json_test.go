package bottleneck

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	root := fig8Tree()
	root.Eval()
	data, err := ToJSON(root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Eval() != root.Eval() {
		t.Fatalf("round-trip changed the evaluation: %v vs %v", back.Eval(), root.Eval())
	}
	if back.Find("T_dma_A") == nil {
		t.Fatal("round-trip lost a node")
	}
	bns := Analyze(back, 1)
	if bns[0].Factor.Name != "T_dma" {
		t.Fatal("round-trip changed the analysis")
	}
	if !strings.Contains(string(data), `"op": "max"`) {
		t.Fatalf("ops not symbolic:\n%s", data)
	}
	// Interior values are derived, not serialized.
	if strings.Count(string(data), `"value"`) != 4 {
		t.Fatalf("expected exactly the 4 leaf values serialized:\n%s", data)
	}
}

func TestFromJSONRejectsBadTrees(t *testing.T) {
	if _, err := FromJSON([]byte(`{"name":"x","op":"pow"}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := FromJSON([]byte(`{"name":"x","op":"add"}`)); err == nil {
		t.Fatal("childless interior node accepted")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
