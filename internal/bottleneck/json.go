package bottleneck

import (
	"encoding/json"
	"fmt"
)

// JSON serialization of bottleneck trees. §C of the paper anticipates
// design tools and ML-based approaches that construct bottleneck models
// automatically; a stable interchange format lets external tools emit trees
// this DSE consumes (and lets the DSE archive the populated trees behind
// each acquisition decision).

var opNames = map[Op]string{
	Leaf: "leaf", AddOp: "add", MulOp: "mul", DivOp: "div", MaxOp: "max", MinOp: "min",
}

var opValues = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, s := range opNames {
		m[s] = op
	}
	return m
}()

type nodeJSON struct {
	Name     string   `json:"name"`
	Op       string   `json:"op"`
	Value    *float64 `json:"value,omitempty"`
	Params   []string `json:"params,omitempty"`
	Children []*Node  `json:"children,omitempty"`
}

// MarshalJSON encodes the node with symbolic operation names. Leaf values
// are always encoded; interior values are omitted (they are derived).
func (n *Node) MarshalJSON() ([]byte, error) {
	j := nodeJSON{Name: n.Name, Op: opNames[n.Op], Params: n.Params, Children: n.Children}
	if n.Op == Leaf {
		v := n.Value
		j.Value = &v
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a node, validating operation names.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j nodeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	op, ok := opValues[j.Op]
	if !ok {
		return fmt.Errorf("bottleneck: unknown op %q", j.Op)
	}
	n.Name = j.Name
	n.Op = op
	n.Params = j.Params
	n.Children = j.Children
	if j.Value != nil {
		n.Value = *j.Value
	}
	return nil
}

// ToJSON renders the tree as indented JSON.
func ToJSON(root *Node) ([]byte, error) {
	return json.MarshalIndent(root, "", "  ")
}

// FromJSON parses a tree and validates its structure.
func FromJSON(data []byte) (*Node, error) {
	var n Node
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}
