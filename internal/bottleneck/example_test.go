package bottleneck_test

import (
	"fmt"

	"xdse/internal/bottleneck"
)

// ExampleAnalyze builds the paper's Fig. 8-style latency tree and runs the
// bottleneck analysis a DSE would perform before its next acquisition.
func ExampleAnalyze() {
	latency := bottleneck.Max("latency",
		bottleneck.NewLeaf("T_comp", 244).WithParams("PEs"),
		bottleneck.NewLeaf("T_noc", 259).WithParams("noc_width"),
		bottleneck.Add("T_dma",
			bottleneck.NewLeaf("T_dma_A", 700).WithParams("L2_size"),
			bottleneck.NewLeaf("T_dma_B", 300).WithParams("offchip_BW"),
		),
	)

	for _, bn := range bottleneck.Analyze(latency, 2) {
		leaf := bn.Critical[len(bn.Critical)-1]
		fmt.Printf("%s: %.1f%% of cost, scale by %.2fx via %v (critical: %s)\n",
			bn.Factor.Name, bn.Contribution*100, bn.Scaling, bn.Params, leaf.Name)
	}
	// Output:
	// T_dma: 100.0% of cost, scale by 3.86x via [L2_size] (critical: T_dma_A)
	// T_noc: 25.9% of cost, scale by 1.00x via [noc_width] (critical: T_noc)
}

// ExampleToJSON shows the interchange format external tools can emit.
func ExampleToJSON() {
	tree := bottleneck.Max("cost",
		bottleneck.NewLeaf("compute", 10).WithParams("units"),
		bottleneck.NewLeaf("memory", 30),
	)
	data, _ := bottleneck.ToJSON(tree)
	back, _ := bottleneck.FromJSON(data)
	fmt.Println(back.Eval())
	// Output:
	// 30
}
