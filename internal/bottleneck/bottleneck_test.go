package bottleneck

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// fig8Tree builds a tree shaped like the paper's Fig. 8 example: DMA time
// dominates a max root, with computation at 24.4% and NoC at 25.9%.
func fig8Tree() *Node {
	comp := NewLeaf("T_comp", 24.4).WithParams("PEs")
	noc := NewLeaf("T_noc", 25.9).WithParams("noc_width")
	dma := Add("T_dma",
		NewLeaf("T_dma_A", 70).WithParams("L2"),
		NewLeaf("T_dma_B", 30).WithParams("offchip_BW"),
	)
	return Max("latency", comp, noc, dma)
}

func TestEvalOps(t *testing.T) {
	cases := []struct {
		node *Node
		want float64
	}{
		{Add("a", NewLeaf("x", 2), NewLeaf("y", 3)), 5},
		{Mul("m", NewLeaf("x", 2), NewLeaf("y", 3)), 6},
		{Div("d", NewLeaf("x", 6), NewLeaf("y", 3)), 2},
		{Max("mx", NewLeaf("x", 2), NewLeaf("y", 3)), 3},
		{New("mn", MinOp, NewLeaf("x", 2), NewLeaf("y", 3)), 2},
		{NewLeaf("l", 7), 7},
	}
	for _, c := range cases {
		if got := c.node.Eval(); got != c.want {
			t.Errorf("%s: got %v, want %v", c.node.Name, got, c.want)
		}
	}
}

func TestDivByZero(t *testing.T) {
	n := Div("d", NewLeaf("x", 1), NewLeaf("y", 0))
	if got := n.Eval(); !math.IsInf(got, 1) {
		t.Fatalf("div by zero = %v, want +Inf", got)
	}
}

func TestFig8Analysis(t *testing.T) {
	root := fig8Tree()
	bns := Analyze(root, 3)
	if len(bns) != 3 {
		t.Fatalf("got %d bottlenecks", len(bns))
	}
	if bns[0].Factor.Name != "T_dma" {
		t.Fatalf("primary bottleneck = %s, want T_dma", bns[0].Factor.Name)
	}
	// Fig. 8: scaling = 100 / 25.9 = 3.86x (root / runner-up).
	if s := bns[0].Scaling; math.Abs(s-100.0/25.9) > 1e-9 {
		t.Fatalf("scaling = %v, want %v", s, 100.0/25.9)
	}
	// Critical path of the additive DMA factor descends into tensor A.
	last := bns[0].Critical[len(bns[0].Critical)-1]
	if last.Name != "T_dma_A" {
		t.Fatalf("critical leaf = %s, want T_dma_A", last.Name)
	}
	// Parameter associations are collected along the path.
	found := false
	for _, p := range bns[0].Params {
		if p == "L2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("params %v missing L2", bns[0].Params)
	}
	// Secondary bottlenecks ranked by contribution.
	if bns[1].Factor.Name != "T_noc" || bns[2].Factor.Name != "T_comp" {
		t.Fatalf("ranking wrong: %s, %s", bns[1].Factor.Name, bns[2].Factor.Name)
	}
}

func TestContributionsAtMaxRoot(t *testing.T) {
	root := fig8Tree()
	contrib := Contributions(root)
	if got := contrib[root]; got != 1 {
		t.Fatalf("root contribution = %v", got)
	}
	dma := root.Find("T_dma")
	if got := contrib[dma]; got != 1 {
		t.Fatalf("dominant factor contribution = %v, want 1", got)
	}
	comp := root.Find("T_comp")
	if got := contrib[comp]; math.Abs(got-0.244) > 1e-9 {
		t.Fatalf("comp contribution = %v, want 0.244", got)
	}
}

func TestContributionsAddChildrenSumToParent(t *testing.T) {
	root := fig8Tree()
	contrib := Contributions(root)
	dma := root.Find("T_dma")
	sum := 0.0
	for _, c := range dma.Children {
		sum += contrib[c]
	}
	if math.Abs(sum-contrib[dma]) > 1e-9 {
		t.Fatalf("children contributions %v != parent %v", sum, contrib[dma])
	}
}

func TestContributionsNonNegativeProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		root := Max("r",
			NewLeaf("a", float64(a)),
			Add("s", NewLeaf("b", float64(b)), NewLeaf("c", float64(c))),
		)
		for _, v := range Contributions(root) {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalingAddRoot(t *testing.T) {
	// At an additive root the Amdahl balance 1/(1-contribution) applies.
	root := Add("total", NewLeaf("a", 75), NewLeaf("b", 25))
	bns := Analyze(root, 1)
	if math.Abs(bns[0].Scaling-4) > 1e-9 {
		t.Fatalf("scaling = %v, want 4 (1/(1-0.75))", bns[0].Scaling)
	}
}

func TestScalingSingleFactorDefaultsToDoubling(t *testing.T) {
	root := Max("total", NewLeaf("only", 10))
	bns := Analyze(root, 1)
	if bns[0].Scaling != 2 {
		t.Fatalf("scaling = %v, want 2", bns[0].Scaling)
	}
}

func TestScalingCapped(t *testing.T) {
	root := Max("total", NewLeaf("a", 1e12), NewLeaf("b", 1))
	bns := Analyze(root, 1)
	if bns[0].Scaling != 64 {
		t.Fatalf("scaling = %v, want cap 64", bns[0].Scaling)
	}
}

func TestAnalyzeLimitsCount(t *testing.T) {
	root := fig8Tree()
	if got := len(Analyze(root, 1)); got != 1 {
		t.Fatalf("Analyze(1) returned %d", got)
	}
	if got := len(Analyze(root, 0)); got != 0 {
		t.Fatalf("Analyze(0) returned %d", got)
	}
	if got := len(Analyze(NewLeaf("x", 1), 5)); got != 0 {
		t.Fatalf("leaf root returned %d bottlenecks", got)
	}
}

func TestValidate(t *testing.T) {
	if err := fig8Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Node{Name: "leaf-with-kids", Op: Leaf, Children: []*Node{NewLeaf("x", 1)}}
	if bad.Validate() == nil {
		t.Fatal("leaf with children must fail validation")
	}
	empty := &Node{Name: "empty-add", Op: AddOp}
	if empty.Validate() == nil {
		t.Fatal("childless interior node must fail validation")
	}
	d := &Node{Name: "bad-div", Op: DivOp, Children: []*Node{NewLeaf("x", 1)}}
	if d.Validate() == nil {
		t.Fatal("one-child div must fail validation")
	}
}

func TestWalkAndFind(t *testing.T) {
	root := fig8Tree()
	n := 0
	root.Walk(func(*Node) { n++ })
	if n != 6 {
		t.Fatalf("walked %d nodes, want 6", n)
	}
	if root.Find("T_dma_B") == nil {
		t.Fatal("Find failed")
	}
	if root.Find("missing") != nil {
		t.Fatal("Find invented a node")
	}
}

func TestRenderShowsValuesAndParams(t *testing.T) {
	out := Render(fig8Tree())
	for _, want := range []string{"latency", "T_dma", "100", "25.9", "params=[PEs]", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalChildMinAndDiv(t *testing.T) {
	mn := New("mn", MinOp, NewLeaf("a", 5), NewLeaf("b", 2))
	mn.Eval()
	if c := criticalChild(mn); c.Name != "b" {
		t.Fatalf("min critical child = %s", c.Name)
	}
	dv := Div("d", NewLeaf("num", 8), NewLeaf("den", 2))
	dv.Eval()
	if c := criticalChild(dv); c.Name != "num" {
		t.Fatalf("div critical child = %s", c.Name)
	}
}
