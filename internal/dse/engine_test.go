package dse

import (
	"math/rand"
	"strings"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/search"
)

// Additional white-box tests of the engine internals: acquisition rounding,
// space-shape independence, and the fallback paths.

func TestBasePEs(t *testing.T) {
	space := arch.EdgeSpace()
	pt := space.Initial()
	pt[arch.PPEs] = 3
	if got := basePEs(space, pt); got != 512 {
		t.Fatalf("basePEs = %d, want 512", got)
	}
	// A domain without a PEs parameter resolves to 1.
	custom := &arch.Space{Params: []arch.Param{{Name: "workers", Values: []int{1, 2, 4}}}}
	if got := basePEs(custom, arch.Point{2}); got != 1 {
		t.Fatalf("basePEs (custom) = %d, want 1", got)
	}
}

func TestDescribePointIsSpaceShapeAgnostic(t *testing.T) {
	custom := &arch.Space{Params: []arch.Param{
		{Name: "alpha", Values: []int{10, 20}},
		{Name: "beta", Values: []int{5}},
	}}
	got := describePoint(custom, arch.Point{1, 0})
	if !strings.Contains(got, "alpha=20") || !strings.Contains(got, "beta=5") {
		t.Fatalf("describePoint = %q", got)
	}
}

func TestAcquireRoundsUpAndSteps(t *testing.T) {
	e := New(nil)
	space := arch.EdgeSpace()
	p := &search.Problem{Space: space}
	cur := space.Initial()

	// 100 PEs rounds up to 128 (index 1).
	preds := []search.Prediction{{Param: arch.PPEs, Value: 100}}
	cands := e.acquire(p, cur, preds, map[dirKey]bool{})
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if got := space.MustDecode(cands[0].pt).PEs; got != 128 {
		t.Fatalf("rounded PEs = %d, want 128", got)
	}

	// A prediction equal to the current value still takes one step in
	// the predicted direction (no wasted attempt).
	preds = []search.Prediction{{Param: arch.PPEs, Value: 64}}
	cands = e.acquire(p, cur, preds, map[dirKey]bool{})
	if len(cands) != 1 || space.MustDecode(cands[0].pt).PEs != 128 {
		t.Fatalf("same-value prediction did not step: %+v", cands)
	}

	// Reductions round down and step down at the boundary.
	high := cur.Clone()
	high[arch.PPEs] = 3 // 512
	preds = []search.Prediction{{Param: arch.PPEs, Value: 300, Reduce: true}}
	cands = e.acquire(p, high, preds, map[dirKey]bool{})
	if len(cands) != 1 || space.MustDecode(cands[0].pt).PEs != 256 {
		t.Fatalf("reduce prediction wrong: %+v", cands)
	}
}

func TestAcquireBlockedDirections(t *testing.T) {
	e := New(nil)
	space := arch.EdgeSpace()
	p := &search.Problem{Space: space}
	cur := space.Initial()
	preds := []search.Prediction{{Param: arch.PPEs, Value: 1000}}
	blocked := map[dirKey]bool{{arch.PPEs, false}: true}
	if cands := e.acquire(p, cur, preds, blocked); len(cands) != 0 {
		t.Fatalf("blocked direction still acquired: %+v", cands)
	}
	// The opposite direction is not blocked.
	blocked = map[dirKey]bool{{arch.PPEs, true}: true}
	if cands := e.acquire(p, cur, preds, blocked); len(cands) != 1 {
		t.Fatal("unblocked direction suppressed")
	}
}

func TestAcquireJointCandidateForMultipleParams(t *testing.T) {
	e := New(nil)
	space := arch.EdgeSpace()
	p := &search.Problem{Space: space}
	cur := space.Initial()
	preds := []search.Prediction{
		{Param: arch.PPEs, Value: 256},
		{Param: arch.PBW, Value: 8000},
	}
	cands := e.acquire(p, cur, preds, map[dirKey]bool{})
	// Two single-parameter candidates plus the combined one.
	if len(cands) != 3 {
		t.Fatalf("candidates = %d, want 3", len(cands))
	}
	joint := cands[2].pt
	d := space.MustDecode(joint)
	if d.PEs != 256 || d.OffchipMBps != 8192 {
		t.Fatalf("joint candidate = %v", d)
	}
	if cands[2].pred != nil {
		t.Fatal("joint candidate must not carry a single prediction")
	}
}

func TestAcquirePERelativeRounding(t *testing.T) {
	e := New(nil)
	space := arch.EdgeSpace()
	p := &search.Problem{Space: space}
	cur := space.Initial()
	cur[arch.PPEs] = 2 // 256 PEs
	// Want 20 physical I links: 256*i/64 >= 20 -> i = 5.
	preds := []search.Prediction{{Param: arch.PPhys0 + int(arch.OpI), Value: 20}}
	cands := e.acquire(p, cur, preds, map[dirKey]bool{})
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	d := space.MustDecode(cands[0].pt)
	if d.PhysLinks[arch.OpI] < 20 || d.PhysLinks[arch.OpI] >= 24 {
		t.Fatalf("I links = %d, want minimal >= 20", d.PhysLinks[arch.OpI])
	}
}

func TestNeighborCandidatesDiffer(t *testing.T) {
	e := New(nil)
	space := arch.EdgeSpace()
	p := &search.Problem{Space: space}
	cur := space.Random(rand.New(rand.NewSource(4)))
	cands := e.neighborCandidates(p, cur, rand.New(rand.NewSource(5)))
	if len(cands) == 0 {
		t.Fatal("no neighbors")
	}
	seen := map[string]bool{cur.Key(): true}
	for _, c := range cands {
		if seen[c.pt.Key()] {
			t.Fatal("duplicate neighbor")
		}
		seen[c.pt.Key()] = true
		diff := 0
		for i := range c.pt {
			if c.pt[i] != cur[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("neighbor changed %d params", diff)
		}
	}
}

func TestRunSurvivesEmptyDomain(t *testing.T) {
	// A domain model that never predicts anything: the engine must fall
	// back to neighbors and terminate without finding (or panicking).
	m := &emptyModel{}
	space := arch.EdgeSpace()
	p := &search.Problem{
		Space:  space,
		Budget: 30,
		Evaluate: func(pt arch.Point) search.Costs {
			return search.Costs{Objective: float64(pt[0] + 1), Feasible: true, BudgetUtil: 0.1}
		},
	}
	ex := New(m)
	tr := ex.Run(p, rand.New(rand.NewSource(1)))
	if tr.Evaluations == 0 || tr.Evaluations > 30 {
		t.Fatalf("evaluations = %d", tr.Evaluations)
	}
	if tr.Best == nil {
		t.Fatal("feasible initial point not recorded as best")
	}
}

type emptyModel struct{}

func (emptyModel) SubCosts(any) []float64 { return []float64{1} }
func (emptyModel) MitigateObjective(any, int, int) ([]search.Prediction, string) {
	return nil, ""
}
func (emptyModel) MitigateConstraints(any) ([]search.Prediction, string) { return nil, "" }

func TestInfeasiblePatienceIsExtended(t *testing.T) {
	// While infeasible, the engine keeps exploring ~4x longer before
	// declaring convergence — it must consume clearly more than
	// Patience+1 attempts' worth of neighbor evaluations.
	m := &emptyModel{}
	space := arch.EdgeSpace()
	evals := 0
	p := &search.Problem{
		Space:  space,
		Budget: 1000,
		Evaluate: func(pt arch.Point) search.Costs {
			evals++
			return search.Costs{Objective: 1, Feasible: false, BudgetUtil: 5, Violations: 1}
		},
	}
	ex := New(m)
	ex.Opts.Patience = 2
	ex.Run(p, rand.New(rand.NewSource(2)))
	if evals < 20 {
		t.Fatalf("engine gave up after only %d evaluations while infeasible", evals)
	}
}

// TestEngineSerialParallelTraceEquality is the engine's determinism
// contract: with and without restarts, running the explorer with a parallel
// candidate-batch pool must yield a trace bit-identical to a serial run
// (same acquisitions, same costs, same budget accounting).
func TestEngineSerialParallelTraceEquality(t *testing.T) {
	for _, restarts := range []int{1, 3} {
		m := newToyModel()
		run := func(workers int) *search.Trace {
			ex := New(m)
			ex.Opts.Restarts = restarts
			p := newToyProblem(m, 90)
			p.Workers = workers
			return ex.Run(p, rand.New(rand.NewSource(6)))
		}
		a, b := run(1), run(8)
		if a.Evaluations != b.Evaluations || a.RepeatSteps != b.RepeatSteps {
			t.Fatalf("restarts=%d: accounting differs: %d/%d evaluations, %d/%d repeats",
				restarts, a.Evaluations, b.Evaluations, a.RepeatSteps, b.RepeatSteps)
		}
		if len(a.Steps) != len(b.Steps) {
			t.Fatalf("restarts=%d: %d vs %d steps", restarts, len(a.Steps), len(b.Steps))
		}
		for i := range a.Steps {
			sa, sb := a.Steps[i], b.Steps[i]
			// Costs.Raw carries per-problem pointers; compare the values.
			if sa.Point.Key() != sb.Point.Key() ||
				sa.Costs.Objective != sb.Costs.Objective ||
				sa.Costs.Feasible != sb.Costs.Feasible ||
				sa.Costs.BudgetUtil != sb.Costs.BudgetUtil ||
				sa.BestSoFar != sb.BestSoFar {
				t.Fatalf("restarts=%d: step %d diverged: %v vs %v", restarts, i, sa, sb)
			}
		}
		if a.BestObjective() != b.BestObjective() {
			t.Fatalf("restarts=%d: best %v vs %v", restarts, a.BestObjective(), b.BestObjective())
		}
	}
}

func TestRestartsMergeTraces(t *testing.T) {
	m := newToyModel()
	ex := New(m)
	ex.Opts.Restarts = 3
	p := newToyProblem(m, 90)
	tr := ex.Run(p, rand.New(rand.NewSource(6)))
	if tr.Best == nil {
		t.Fatal("restarted exploration found nothing")
	}
	if tr.Evaluations > 90 { // restarts share one budget, never overrun it
		t.Fatalf("evaluations = %d", tr.Evaluations)
	}
	// The merged trace tracks the global best across restarts.
	best := tr.BestObjective()
	for _, s := range tr.Steps {
		if s.Costs.Feasible && s.Costs.Objective < best {
			t.Fatal("merged best not global")
		}
	}
}
