// Package dse implements the Explainable-DSE engine of §4: a
// constraints-aware exploration driven by domain-specific bottleneck models.
// Every acquisition attempt analyzes the current solution's per-sub-function
// bottleneck trees, aggregates the predicted parameter values across
// sub-functions (§4.4), acquires one candidate per predicted value (§4.5),
// and updates the solution with constraint-budget awareness (§4.6). The
// engine is domain-independent: all domain knowledge enters through the
// DomainModel interface, the Go incarnation of the paper's Fig. 7 API.
package dse

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"xdse/internal/arch"
	"xdse/internal/obs"
	"xdse/internal/search"
)

// DomainModel is the bottleneck-model interface a domain plugs into the
// engine: sub-function cost attribution, objective-bottleneck mitigation,
// and constraint-violation mitigation. internal/accelmodel implements it
// for DNN accelerators; examples/customdomain implements it for a different
// domain to demonstrate the decoupling.
type DomainModel interface {
	// SubCosts returns the objective contribution of each sub-function
	// (e.g. per-unique-layer total cycles) for an evaluated solution.
	SubCosts(raw any) []float64
	// MitigateObjective analyzes sub-function sub's bottleneck tree and
	// returns parameter predictions plus a rendered explanation.
	MitigateObjective(raw any, sub, maxBottlenecks int) ([]search.Prediction, string)
	// MitigateConstraints analyzes a constraint-violating solution and
	// returns shrinking predictions plus an explanation.
	MitigateConstraints(raw any) ([]search.Prediction, string)
}

// Options tunes the engine; zero values select the paper's settings.
type Options struct {
	// TopK bounds the number of bottleneck sub-functions whose
	// mitigations are aggregated per attempt (§4.4ii; default 5).
	TopK int
	// ThresholdScale sets the sub-function contribution floor as
	// ThresholdScale*(1/l) for l sub-functions (default 0.5).
	ThresholdScale float64
	// MaxBottlenecksPerSub bounds bottleneck factors analyzed per
	// sub-function (default 2).
	MaxBottlenecksPerSub int
	// Aggregate merges multiple predicted values of one parameter
	// (default AggregateMin, the paper's choice; see §4.4i).
	Aggregate Aggregation
	// Patience is the number of consecutive non-improving acquisition
	// attempts tolerated before termination (default 3).
	Patience int
	// Log, when non-nil, receives the per-attempt explanations that make
	// the exploration auditable, rendered in the engine's historical
	// human-readable format (internally an obs.TextSink over the
	// structured event stream).
	Log io.Writer
	// Sink, when non-nil, additionally receives the structured
	// explanation events (see internal/obs). It is combined with Log's
	// text rendering and with the problem's Events sink; events are
	// derived from, never feeding back into, the acquisition sequence.
	Sink obs.Sink
	// DisableBudgetAwareUpdate replaces the §4.6 constraint-budget-aware
	// solution update with plain greedy feasible-min (ablation hook).
	DisableBudgetAwareUpdate bool
	// JointAcquisition applies all aggregated predictions to a single
	// candidate instead of one candidate per parameter (ablation hook
	// for §4.5).
	JointAcquisition bool
	// Restarts runs the exploration from this many initial points
	// (the first is the problem's initial point, the rest random),
	// splitting the budget — the §C workaround for bottleneck-oriented
	// greediness converging to local optima. Default 1.
	Restarts int
}

// Aggregation selects how multiple predicted values of the same parameter
// collapse into the final prediction (§4.4i).
type Aggregation int

const (
	// AggregateMin picks the minimum predicted value — the paper's
	// choice, avoiding over-aggressive scaling that exhausts constraints.
	AggregateMin Aggregation = iota
	// AggregateMax picks the maximum (fast but constraint-hungry).
	AggregateMax
	// AggregateMean picks the arithmetic mean.
	AggregateMean
)

// String names the aggregation rule.
func (a Aggregation) String() string { return [...]string{"min", "max", "mean"}[a] }

// Explorer is the Explainable-DSE optimizer.
type Explorer struct {
	Model DomainModel
	Opts  Options
}

// New returns an Explorer with the paper's default options.
func New(model DomainModel) *Explorer { return &Explorer{Model: model} }

// Name implements search.Optimizer.
func (e *Explorer) Name() string { return "ExplainableDSE" }

func (e *Explorer) opts() Options {
	o := e.Opts
	if o.TopK <= 0 {
		o.TopK = 5
	}
	if o.ThresholdScale <= 0 {
		o.ThresholdScale = 0.5
	}
	if o.MaxBottlenecksPerSub <= 0 {
		o.MaxBottlenecksPerSub = 2
	}
	if o.Patience <= 0 {
		o.Patience = 5
	}
	return o
}

// dirKey identifies a parameter/direction range for §4.6 monomodal pruning.
type dirKey struct {
	param  int
	reduce bool
}

// evaluated pairs an acquired candidate with its evaluation.
type evaluated struct {
	pt    arch.Point
	costs search.Costs
	pred  *search.Prediction
}

// Run implements search.Optimizer. With Restarts > 1 it explores from
// several initial points into one shared trace: all restarts draw on a
// single budget accounting, so the merged trace can never exceed p.Budget
// and a point re-visited across restarts is charged only once (it is
// memoized; no new design evaluation happens). Each restart is granted an
// even share of the budget; whatever earlier restarts leave unused (they
// typically converge early) flows to the final one.
func (e *Explorer) Run(p *search.Problem, rng *rand.Rand) *search.Trace {
	o := e.opts()
	t := &search.Trace{Name: e.Name()}
	start := time.Now()
	defer func() { t.Elapsed = time.Since(start) }()

	// One emitter serves the whole run: the legacy text log, the
	// engine-level structured sink, and the problem-level sink (campaign
	// tracing) all hang off it. A nil emitter (nothing attached) keeps
	// every emission a no-op and skips all rendering.
	var text obs.Sink
	if o.Log != nil {
		text = obs.NewTextSink(o.Log)
	}
	em := obs.NewEmitter(text, o.Sink, p.Events)

	restarts := o.Restarts
	if restarts <= 1 {
		e.runFrom(p, t, p.Start(), rng, p.Budget, em, 0)
		return t
	}
	share := p.Budget / restarts
	if share < 2 {
		share = 2
	}
	for i := 0; i < restarts && t.Evaluations < p.Budget && !p.Cancelled(); i++ {
		initial := p.Start()
		if i > 0 {
			initial = p.Space.Random(rng)
		}
		stopAt := t.Evaluations + share
		if i == restarts-1 || stopAt > p.Budget {
			stopAt = p.Budget
		}
		e.runFrom(p, t, initial, rng, stopAt, em, i)
	}
	return t
}

// runFrom is one exploration from a given initial point, recorded into the
// shared trace t. stopAt is this restart's cumulative unique-evaluation
// ceiling (<= p.Budget): the restart yields once the trace reaches it.
// Events flow through em (nil = disabled, all emission and rendering
// skipped); restart labels them for multi-restart runs.
func (e *Explorer) runFrom(p *search.Problem, t *search.Trace, initial arch.Point, rng *rand.Rand, stopAt int, em *obs.Emitter, restart int) {
	o := e.opts()

	// left gates continuation on both the global budget (Record's own
	// check) and this restart's share.
	left := func(recordOK bool) bool { return recordOK && t.Evaluations < stopAt }

	cur := initial.Clone()
	curCosts := p.Evaluate(cur)
	// Cancellation contract: a cancelled evaluation is never recorded, so
	// an interrupted trace is a clean batch-boundary prefix of the
	// uninterrupted one (what makes kill-and-resume bit-identical).
	if p.Cancelled() {
		return
	}
	// The solution's Raw payload drives the bottleneck analysis; replayed
	// costs carry a Deferred thunk that must be materialized on adoption.
	curCosts.Raw = search.ResolveRaw(curCosts.Raw)
	if !left(t.Record(p, cur, curCosts)) {
		return
	}
	if em.Enabled() {
		em.Emit(obs.Event{
			Kind: obs.KindIncumbentImproved, Restart: restart, Attempt: 0,
			Why: "initial", Objective: obs.Float(curCosts.Objective),
			Feasible: curCosts.Feasible, BudgetUtil: obs.Float(curCosts.BudgetUtil),
			Text: fmt.Sprintf("initial solution: obj=%.4g feasible=%v budget=%.2f\n",
				curCosts.Objective, curCosts.Feasible, curCosts.BudgetUtil),
		})
	}

	// blocked remembers parameter/direction ranges abandoned after §4.6
	// monomodal pruning (a candidate violating more constraints than the
	// solution stops that parameter's range).
	blocked := map[dirKey]bool{}

	stale := 0
	for attempt := 1; ; attempt++ {
		em.Emit(obs.Event{Kind: obs.KindStepStarted, Restart: restart, Attempt: attempt})
		preds, explain := e.analyze(o, em, restart, attempt, curCosts)
		if explain != "" {
			em.Emit(obs.Event{
				Kind: obs.KindNote, Restart: restart, Attempt: attempt,
				Text: fmt.Sprintf("--- attempt %d ---\n%s", attempt, explain),
			})
		}
		if em.Enabled() {
			for _, pr := range preds {
				em.Emit(obs.Event{
					Kind: obs.KindMitigationProposed, Restart: restart, Attempt: attempt,
					Param: p.Space.Params[pr.Param].Name, Value: pr.Value,
					Reduce: pr.Reduce, Rule: pr.Rule, Factor: pr.Factor,
					Scaling: obs.Float(pr.Scaling), Why: pr.Why,
				})
			}
		}

		cands := e.acquire(p, cur, preds, blocked)
		if len(cands) == 0 {
			// Bottleneck analysis yields nothing new: fall back to
			// the black-box counterpart (§4.3) — neighbor sampling.
			cands = e.neighborCandidates(p, cur, rng)
			if len(cands) == 0 {
				if em.Enabled() {
					em.Emit(obs.Event{
						Kind: obs.KindConverged, Restart: restart, Attempt: attempt,
						Text: fmt.Sprintf("no candidates remain; converged after %d attempts\n", attempt),
					})
				}
				return
			}
			if em.Enabled() {
				em.Emit(obs.Event{
					Kind: obs.KindNote, Restart: restart, Attempt: attempt,
					Text: fmt.Sprintf("no bottleneck-guided candidates; sampling %d neighbors\n", len(cands)),
				})
			}
		}

		// The candidate set of one attempt is embarrassingly parallel
		// (§4.5: one candidate per aggregated prediction) — evaluate it
		// as a batch on the problem's worker pool, then record in
		// deterministic candidate order. The batch is clamped to the
		// remaining budget so the evaluator never computes designs the
		// trace could not accept.
		if rem := stopAt - t.Evaluations; len(cands) > rem {
			cands = cands[:rem]
		}
		pts := make([]arch.Point, len(cands))
		for i := range cands {
			pts[i] = cands[i].pt
		}
		batchStart := time.Now()
		costs := p.EvaluateBatch(pts)
		if p.Cancelled() {
			return
		}
		if em.Enabled() {
			// Hits are computed from the trace's own seen-set (before
			// this batch is recorded), not from wall-clock or evaluator
			// state, so the field is deterministic across runs.
			hits := 0
			for _, pt := range pts {
				if t.Seen(pt) {
					hits++
				}
			}
			em.Emit(obs.Event{
				Kind: obs.KindBatchEvaluated, Restart: restart, Attempt: attempt,
				Points: len(pts), Hits: hits, Misses: len(pts) - hits,
				WallNs: time.Since(batchStart).Nanoseconds(),
			})
		}

		var evs []evaluated
		budgetLeft := true
		for i := range cands {
			evs = append(evs, evaluated{cands[i].pt, costs[i], cands[i].pred})
			if !left(t.Record(p, cands[i].pt, costs[i])) {
				budgetLeft = false
				break
			}
		}

		// §4.6 solution update.
		next, nextCosts, why := e.update(o, curCosts, evs, func(ev evaluated) {
			if ev.pred != nil && ev.costs.Violations > curCosts.Violations {
				blocked[dirKey{ev.pred.Param, ev.pred.Reduce}] = true
			}
		})
		if next != nil {
			if em.Enabled() {
				desc := describePoint(p.Space, next)
				em.Emit(obs.Event{
					Kind: obs.KindIncumbentImproved, Restart: restart, Attempt: attempt,
					Why: why, Objective: obs.Float(nextCosts.Objective), Feasible: nextCosts.Feasible,
					BudgetUtil: obs.Float(nextCosts.BudgetUtil), Point: desc,
					Text: fmt.Sprintf("attempt %d: new solution (%s): obj=%.4g feasible=%v budget=%.2f point=%s\n",
						attempt, why, nextCosts.Objective, nextCosts.Feasible, nextCosts.BudgetUtil, desc),
				})
			}
			cur, curCosts = next, nextCosts
			curCosts.Raw = search.ResolveRaw(curCosts.Raw)
			stale = 0
			// A new solution re-opens previously blocked ranges.
			blocked = map[dirKey]bool{}
		} else {
			stale++
			if em.Enabled() {
				em.Emit(obs.Event{
					Kind: obs.KindStepStalled, Restart: restart, Attempt: attempt, Stale: stale,
					Text: fmt.Sprintf("attempt %d: no candidate improved the solution (%d stale)\n", attempt, stale),
				})
			}
			// Block the grow-directions that failed so the next
			// attempt explores other parameters.
			for _, ev := range evs {
				if ev.pred != nil {
					blocked[dirKey{ev.pred.Param, ev.pred.Reduce}] = true
				}
			}
		}
		if !budgetLeft {
			return
		}
		// Convergence: patience applies once a feasible solution exists;
		// while still infeasible the engine keeps pushing toward the
		// feasible region (a 4x-patience guard stops true dead ends).
		patience := o.Patience
		if !curCosts.Feasible {
			patience *= 4
		}
		if stale >= patience {
			if em.Enabled() {
				em.Emit(obs.Event{
					Kind: obs.KindConverged, Restart: restart, Attempt: attempt, Stale: stale,
					Text: fmt.Sprintf("converged: %d attempts without improvement\n", stale),
				})
			}
			return
		}
	}
}

// analyze performs the per-sub-function bottleneck analysis and §4.4
// aggregation, returning the final predictions for this attempt along with
// the rendered explanation (built only when em is enabled — it feeds the
// note event and the text log, nothing else). Structured
// bottleneck/constraint events are emitted as the analysis walks the
// sub-functions; both mitigation paths share one emission helper, so the
// objective and constraint explanations no longer have duplicated
// formatting code.
func (e *Explorer) analyze(o Options, em *obs.Emitter, restart, attempt int, costs search.Costs) ([]search.Prediction, string) {
	var explain strings.Builder

	// Unmet area/power constraints take priority: reach feasible
	// subspaces first (§4.6 and footnote 4).
	if !costs.MeetsAreaPower {
		preds, ex := e.Model.MitigateConstraints(costs.Raw)
		if len(preds) > 0 {
			if em.Enabled() {
				explain.WriteString("constraint mitigation:\n")
				explain.WriteString(ex)
				emitFactors(em, obs.KindConstraintMitigation, restart, attempt, -1, preds)
			}
			return e.aggregate(o, preds), explain.String()
		}
	}

	subCosts := e.Model.SubCosts(costs.Raw)
	l := len(subCosts)
	if l == 0 {
		return nil, ""
	}
	total := 0.0
	for _, c := range subCosts {
		total += c
	}
	if total <= 0 {
		return nil, ""
	}
	threshold := o.ThresholdScale * (1.0 / float64(l))

	// Rank sub-functions by contribution; keep top-K above threshold.
	idx := make([]int, l)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return subCosts[idx[a]] > subCosts[idx[b]] })

	var preds []search.Prediction
	taken := 0
	for _, i := range idx {
		if taken >= o.TopK {
			break
		}
		frac := subCosts[i] / total
		if frac < threshold {
			break
		}
		ps, ex := e.Model.MitigateObjective(costs.Raw, i, o.MaxBottlenecksPerSub)
		if em.Enabled() {
			if ex != "" {
				fmt.Fprintf(&explain, "sub-function %d (%.1f%% of cost):\n%s", i, frac*100, ex)
			}
			emitFactors(em, obs.KindBottleneckIdentified, restart, attempt, i, ps)
		}
		preds = append(preds, ps...)
		taken++
	}
	return e.aggregate(o, preds), explain.String()
}

// emitFactors emits one structured event per distinct bottleneck factor (or
// violated constraint) named in a prediction set — the shared provenance
// path of the objective and constraint mitigation analyses. sub is the
// sub-function index, or -1 for whole-solution constraint mitigation.
func emitFactors(em *obs.Emitter, kind obs.Kind, restart, attempt, sub int, preds []search.Prediction) {
	var seen map[string]bool
	for _, pr := range preds {
		if pr.Factor == "" || seen[pr.Factor] {
			continue
		}
		if seen == nil {
			seen = make(map[string]bool, len(preds))
		}
		seen[pr.Factor] = true
		ev := obs.Event{
			Kind: kind, Restart: restart, Attempt: attempt,
			Factor: pr.Factor, Contribution: obs.Float(pr.Contribution), Scaling: obs.Float(pr.Scaling),
		}
		if sub >= 0 {
			ev.Sub = sub
		}
		em.Emit(ev)
	}
}

// aggregate collapses multiple predicted values per parameter (§4.4i).
func (e *Explorer) aggregate(o Options, preds []search.Prediction) []search.Prediction {
	byParam := map[int][]search.Prediction{}
	var order []int
	for _, p := range preds {
		if _, seen := byParam[p.Param]; !seen {
			order = append(order, p.Param)
		}
		byParam[p.Param] = append(byParam[p.Param], p)
	}
	var out []search.Prediction
	for _, param := range order {
		ps := byParam[param]
		agg := ps[0]
		switch o.Aggregate {
		case AggregateMin:
			for _, p := range ps[1:] {
				if less(p, agg) {
					agg = p
				}
			}
		case AggregateMax:
			for _, p := range ps[1:] {
				if less(agg, p) {
					agg = p
				}
			}
		case AggregateMean:
			sum := 0
			for _, p := range ps {
				sum += p.Value
			}
			agg.Value = sum / len(ps)
		}
		out = append(out, agg)
	}
	return out
}

// less orders predictions by aggressiveness: for growth the smaller value
// is less aggressive; for reduction the larger value is.
func less(a, b search.Prediction) bool {
	if a.Reduce {
		return a.Value > b.Value
	}
	return a.Value < b.Value
}

// candidate pairs an acquired point with the prediction that produced it.
type candidate struct {
	pt   arch.Point
	pred *search.Prediction
}

// acquire materializes the candidate set CS: one candidate per aggregated
// prediction, each differing from the current solution in one parameter
// (§4.5), with predicted values rounded up (or down, for reductions) to the
// design space.
func (e *Explorer) acquire(p *search.Problem, cur arch.Point, preds []search.Prediction, blocked map[dirKey]bool) []candidate {
	o := e.opts()
	var cands []candidate
	seen := map[string]bool{cur.Key(): true}
	joint := cur.Clone()
	jointChanged := 0

	// PE-relative parameters resolve against the space's "PEs" parameter
	// when it exists; domains without one have no such parameters.
	pes := basePEs(p.Space, cur)
	for i := range preds {
		pred := preds[i]
		if blocked[dirKey{pred.Param, pred.Reduce}] {
			continue
		}
		var idx int
		if pred.Reduce {
			idx = roundDownPhysical(p.Space, pred.Param, pred.Value, pes)
		} else {
			idx = p.Space.RoundUpPhysical(pred.Param, pred.Value, pes)
		}
		idx = p.Space.Clamp(pred.Param, idx)
		if idx == cur[pred.Param] {
			// The rounding landed on the current value; take one
			// step in the predicted direction instead.
			if pred.Reduce {
				idx = p.Space.Clamp(pred.Param, idx-1)
			} else {
				idx = p.Space.Clamp(pred.Param, idx+1)
			}
			if idx == cur[pred.Param] {
				continue
			}
		}
		joint[pred.Param] = idx
		jointChanged++
		if o.JointAcquisition {
			continue
		}
		pt := cur.Clone()
		pt[pred.Param] = idx
		if seen[pt.Key()] {
			continue
		}
		seen[pt.Key()] = true
		cands = append(cands, candidate{pt, &preds[i]})
	}
	// When several parameters were predicted, also acquire the combined
	// candidate: balanced bottleneck factors (e.g. T_comp == T_dma) can
	// only improve when both are scaled in the same attempt.
	if jointChanged >= 2 || (o.JointAcquisition && jointChanged > 0) {
		if !seen[joint.Key()] {
			seen[joint.Key()] = true
			cands = append(cands, candidate{joint, nil})
		}
	}
	return cands
}

// describePoint renders a point as name=value pairs without assuming the
// accelerator space shape (custom domains have arbitrary parameters).
func describePoint(s *arch.Space, pt arch.Point) string {
	pes := basePEs(s, pt)
	var out strings.Builder
	for i, prm := range s.Params {
		if i > 0 {
			out.WriteByte(' ')
		}
		fmt.Fprintf(&out, "%s=%d", prm.Name, s.PhysicalValue(i, pt[i], pes))
	}
	return out.String()
}

// basePEs returns the physical value of the space's "PEs" parameter at pt,
// or 1 when the domain has no such parameter.
func basePEs(s *arch.Space, pt arch.Point) int {
	for i, prm := range s.Params {
		if prm.Name == "PEs" {
			return prm.Values[pt[i]]
		}
	}
	return 1
}

// roundDownPhysical mirrors Space.RoundUpPhysical for reductions.
func roundDownPhysical(s *arch.Space, param, want, pes int) int {
	prm := s.Params[param]
	if prm.Kind != arch.KindPERelative {
		return prm.RoundDownIndex(want)
	}
	idx := 0
	for i := range prm.Values {
		if s.PhysicalValue(param, i, pes) <= want {
			idx = i
		}
	}
	return idx
}

// neighborCandidates is the black-box fallback: +-1 index moves on a few
// random parameters.
func (e *Explorer) neighborCandidates(p *search.Problem, cur arch.Point, rng *rand.Rand) []candidate {
	var cands []candidate
	seen := map[string]bool{cur.Key(): true}
	for tries := 0; tries < 16 && len(cands) < 5; tries++ {
		param := rng.Intn(len(p.Space.Params))
		delta := 1
		if rng.Intn(2) == 0 {
			delta = -1
		}
		idx := p.Space.Clamp(param, cur[param]+delta)
		if idx == cur[param] {
			continue
		}
		pt := cur.Clone()
		pt[param] = idx
		if seen[pt.Key()] {
			continue
		}
		seen[pt.Key()] = true
		cands = append(cands, candidate{pt, nil})
	}
	return cands
}

// update selects the new solution among the evaluated candidates with
// §4.6 constraint-budget awareness, returning nil when no candidate beats
// the current solution. blockFn is called for every rejected candidate so
// monomodal ranges can be pruned.
func (e *Explorer) update(o Options, curCosts search.Costs, evs []evaluated, blockFn func(evaluated)) (arch.Point, search.Costs, string) {

	var feasible, infeasible []int
	for i, ev := range evs {
		if ev.costs.Feasible {
			feasible = append(feasible, i)
		} else {
			infeasible = append(infeasible, i)
			blockFn(ev)
		}
	}

	score := func(c search.Costs) float64 {
		if o.DisableBudgetAwareUpdate {
			return c.Objective
		}
		return c.Objective * math.Max(c.BudgetUtil, 1e-6)
	}

	// Scenario 2 (§4.6): some candidates satisfy all constraints — pick
	// the lowest objective x budget product, but never regress from a
	// feasible current solution.
	if len(feasible) > 0 {
		best := -1
		for _, i := range feasible {
			if best < 0 || score(evs[i].costs) < score(evs[best].costs) {
				best = i
			}
		}
		ev := evs[best]
		if curCosts.Feasible && ev.costs.Objective >= curCosts.Objective {
			return nil, search.Costs{}, ""
		}
		return ev.pt, ev.costs, "feasible, min objective x budget"
	}

	// Scenario 1: nothing feasible — move toward feasibility by least
	// constraints budget, unless the current solution already uses less.
	if curCosts.Feasible || len(infeasible) == 0 {
		return nil, search.Costs{}, ""
	}
	best := -1
	for _, i := range infeasible {
		if best < 0 || evs[i].costs.BudgetUtil < evs[best].costs.BudgetUtil {
			best = i
		}
	}
	ev := evs[best]
	if ev.costs.BudgetUtil >= curCosts.BudgetUtil {
		return nil, search.Costs{}, ""
	}
	return ev.pt, ev.costs, "infeasible, min constraints budget"
}
