package dse

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"xdse/internal/arch"
	"xdse/internal/bottleneck"
	"xdse/internal/search"
)

// toyEval is the evaluation payload of the synthetic domain below.
type toyEval struct {
	pes, bw  int
	comp     float64
	dma      float64
	area     float64
	areaOver bool
}

// toyModel is a synthetic two-factor bottleneck domain: latency =
// max(compWork/PEs, dmaWork/BW) with an additive area constraint. It lets
// the engine be tested end-to-end without the accelerator substrate.
type toyModel struct {
	space    *arch.Space
	compWork float64
	dmaWork  float64
	areaCap  float64
	// subs splits the workload into sub-functions with different
	// compute/DMA balances to exercise aggregation.
	subs []float64 // fraction of compWork per sub-function
}

func (m *toyModel) evaluate(pt arch.Point) search.Costs {
	d := m.space.MustDecode(pt)
	ev := &toyEval{pes: d.PEs, bw: d.OffchipMBps}
	ev.comp = m.compWork / float64(d.PEs)
	ev.dma = m.dmaWork / float64(d.OffchipMBps)
	ev.area = 0.012*float64(d.PEs) + 0.0002*float64(d.OffchipMBps)
	ev.areaOver = ev.area > m.areaCap
	obj := math.Max(ev.comp, ev.dma)
	feasible := !ev.areaOver
	util := (ev.area / m.areaCap) / 2
	violations := 0
	if ev.areaOver {
		violations++
	}
	return search.Costs{
		Objective:      obj,
		Feasible:       feasible,
		MeetsAreaPower: !ev.areaOver,
		BudgetUtil:     util,
		Violations:     violations,
		Raw:            ev,
	}
}

func (m *toyModel) SubCosts(raw any) []float64 {
	ev := raw.(*toyEval)
	if len(m.subs) == 0 {
		return []float64{math.Max(ev.comp, ev.dma)}
	}
	out := make([]float64, len(m.subs))
	for i, f := range m.subs {
		out[i] = math.Max(ev.comp*f, ev.dma*(1-f))
	}
	return out
}

func (m *toyModel) MitigateObjective(raw any, sub, k int) ([]search.Prediction, string) {
	ev := raw.(*toyEval)
	f := 1.0
	g := 1.0
	if len(m.subs) > 0 {
		f = m.subs[sub]
		g = 1 - f
	}
	root := bottleneck.Max("latency",
		bottleneck.NewLeaf("T_comp", ev.comp*f).WithParams("PEs"),
		bottleneck.NewLeaf("T_dma", ev.dma*g).WithParams("offchip_MBps"),
	)
	var preds []search.Prediction
	for _, bn := range bottleneck.Analyze(root, k) {
		s := bn.Scaling
		if s <= 1.001 {
			s = 2
		}
		switch bn.Factor.Name {
		case "T_comp":
			preds = append(preds, search.Prediction{Param: arch.PPEs, Value: int(s * float64(ev.pes)), Why: "compute bound"})
		case "T_dma":
			preds = append(preds, search.Prediction{Param: arch.PBW, Value: int(s * float64(ev.bw)), Why: "DMA bound"})
		}
	}
	return preds, bottleneck.Render(root)
}

func (m *toyModel) MitigateConstraints(raw any) ([]search.Prediction, string) {
	ev := raw.(*toyEval)
	if !ev.areaOver {
		return nil, ""
	}
	return []search.Prediction{
		{Param: arch.PPEs, Value: ev.pes / 2, Reduce: true, Why: "area over"},
	}, "area bottleneck: PE array"
}

func newToyProblem(m *toyModel, budget int) *search.Problem {
	var mu sync.Mutex
	cache := map[string]search.Costs{}
	return &search.Problem{
		Space:  m.space,
		Budget: budget,
		Evaluate: func(pt arch.Point) search.Costs {
			key := pt.Key()
			mu.Lock()
			defer mu.Unlock()
			if c, ok := cache[key]; ok {
				return c
			}
			c := m.evaluate(pt)
			cache[key] = c
			return c
		},
	}
}

func newToyModel() *toyModel {
	return &toyModel{
		space:    arch.EdgeSpace(),
		compWork: 2e6,
		dmaWork:  2e8,
		areaCap:  50,
	}
}

func TestExplorerConvergesOnToyDomain(t *testing.T) {
	m := newToyModel()
	ex := New(m)
	p := newToyProblem(m, 100)
	tr := ex.Run(p, rand.New(rand.NewSource(1)))

	if tr.Best == nil {
		t.Fatal("no feasible solution found")
	}
	// The DMA work is bandwidth-limited: the best reachable objective is
	// dmaWork / max BW = 2e8/51200 = 3906.25, with PEs scaled to match.
	if tr.BestObjective() > 3906.25*1.01 {
		t.Fatalf("best objective %v, want ~3906 (BW-limited optimum)", tr.BestObjective())
	}
	// Convergence must be far faster than the budget (the headline
	// property of the paper).
	if tr.Evaluations > 80 {
		t.Fatalf("used %d evaluations", tr.Evaluations)
	}
	d := p.Space.MustDecode(tr.Best)
	if d.PEs <= 64 || d.OffchipMBps <= 1024 {
		t.Fatalf("engine never scaled the bottleneck parameters: %v", d)
	}
}

func TestExplorerRespectsBudget(t *testing.T) {
	m := newToyModel()
	ex := New(m)
	tr := ex.Run(newToyProblem(m, 7), rand.New(rand.NewSource(1)))
	if tr.Evaluations > 7 {
		t.Fatalf("budget exceeded: %d", tr.Evaluations)
	}
}

func TestExplorerEmitsExplanations(t *testing.T) {
	m := newToyModel()
	ex := New(m)
	var buf bytes.Buffer
	ex.Opts.Log = &buf
	ex.Run(newToyProblem(m, 40), rand.New(rand.NewSource(1)))
	out := buf.String()
	for _, want := range []string{"T_comp", "T_dma", "new solution", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explanation missing %q", want)
		}
	}
}

func TestExplorerConstraintMitigation(t *testing.T) {
	// Start from an area-violating point; the engine must shrink PEs
	// back into the feasible region via MitigateConstraints.
	m := newToyModel()
	ex := New(m)
	p := newToyProblem(m, 60)
	init := m.space.Initial()
	init[arch.PPEs] = 6 // 4096 PEs -> area 49.2 + bw overage
	init[arch.PBW] = 9  // 51200 MBps -> area 59.4 total, over the cap
	p.Initial = init
	tr := ex.Run(p, rand.New(rand.NewSource(2)))
	if tr.Best == nil {
		t.Fatal("never recovered feasibility")
	}
	d := p.Space.MustDecode(tr.Best)
	if a := 0.012*float64(d.PEs) + 0.0002*float64(d.OffchipMBps); a > m.areaCap {
		t.Fatalf("best design still violates area: %v", a)
	}
}

func TestAggregationRules(t *testing.T) {
	preds := []search.Prediction{
		{Param: 0, Value: 100},
		{Param: 0, Value: 400},
		{Param: 0, Value: 250},
		{Param: 1, Value: 7},
	}
	e := &Explorer{}
	min := e.aggregate(Options{Aggregate: AggregateMin}, preds)
	if len(min) != 2 || min[0].Value != 100 || min[1].Value != 7 {
		t.Fatalf("min aggregation = %+v", min)
	}
	max := e.aggregate(Options{Aggregate: AggregateMax}, preds)
	if max[0].Value != 400 {
		t.Fatalf("max aggregation = %+v", max)
	}
	mean := e.aggregate(Options{Aggregate: AggregateMean}, preds)
	if mean[0].Value != 250 {
		t.Fatalf("mean aggregation = %+v", mean)
	}
}

func TestAggregationReduceDirection(t *testing.T) {
	// For reductions, "min aggressiveness" is the LARGEST value.
	preds := []search.Prediction{
		{Param: 0, Value: 100, Reduce: true},
		{Param: 0, Value: 400, Reduce: true},
	}
	e := &Explorer{}
	got := e.aggregate(Options{Aggregate: AggregateMin}, preds)
	if got[0].Value != 400 {
		t.Fatalf("reduce-min aggregation picked %d, want 400", got[0].Value)
	}
}

func TestMultiSubFunctionAggregationUsesMin(t *testing.T) {
	// Two sub-functions with different balances predict different PE
	// scalings; the engine must acquire the minimum (§4.4i).
	m := newToyModel()
	m.subs = []float64{0.9, 0.5}
	ex := New(m)
	var buf bytes.Buffer
	ex.Opts.Log = &buf
	tr := ex.Run(newToyProblem(m, 50), rand.New(rand.NewSource(3)))
	if tr.Best == nil {
		t.Fatal("no solution")
	}
}

func TestJointAcquisition(t *testing.T) {
	m := newToyModel()
	m.subs = []float64{0.9, 0.1} // one comp-bound, one DMA-bound sub
	ex := New(m)
	ex.Opts.JointAcquisition = true
	tr := ex.Run(newToyProblem(m, 60), rand.New(rand.NewSource(4)))
	if tr.Best == nil {
		t.Fatal("joint acquisition found nothing")
	}
}

func TestUpdateScenarios(t *testing.T) {
	e := New(nil)
	o := e.opts()
	space := arch.EdgeSpace()
	ptA, ptB := space.Initial(), space.Initial()
	ptB[0] = 1

	// Scenario 2: feasible candidates -> min objective x budget wins,
	// and a feasible incumbent is never regressed.
	cur := search.Costs{Feasible: true, Objective: 10, BudgetUtil: 0.5}
	evs := []evaluated{
		{ptA, search.Costs{Feasible: true, Objective: 8, BudgetUtil: 0.9}, nil},
		{ptB, search.Costs{Feasible: true, Objective: 9, BudgetUtil: 0.4}, nil},
	}
	next, costs, _ := e.update(o, cur, evs, func(evaluated) {})
	if next == nil || costs.Objective != 9 {
		t.Fatalf("update picked objective %v, want 9 (lower obj x budget)", costs.Objective)
	}
	worse := []evaluated{{ptA, search.Costs{Feasible: true, Objective: 11, BudgetUtil: 0.1}, nil}}
	if next, _, _ := e.update(o, cur, worse, func(evaluated) {}); next != nil {
		t.Fatal("feasible incumbent regressed")
	}

	// Scenario 1: all infeasible -> min constraints budget, only if it
	// beats the incumbent's.
	curBad := search.Costs{Feasible: false, BudgetUtil: 2.0}
	infeas := []evaluated{
		{ptA, search.Costs{Feasible: false, BudgetUtil: 1.5}, nil},
		{ptB, search.Costs{Feasible: false, BudgetUtil: 1.8}, nil},
	}
	next, costs, _ = e.update(o, curBad, infeas, func(evaluated) {})
	if next == nil || costs.BudgetUtil != 1.5 {
		t.Fatalf("infeasible update picked %v", costs.BudgetUtil)
	}
	if next, _, _ := e.update(o, search.Costs{Feasible: false, BudgetUtil: 1.0}, infeas, func(evaluated) {}); next != nil {
		t.Fatal("accepted a higher-budget infeasible candidate")
	}
}

func TestUpdateBlocksViolationIncrease(t *testing.T) {
	e := New(nil)
	o := e.opts()
	space := arch.EdgeSpace()
	pt := space.Initial()
	pred := &search.Prediction{Param: 0}
	cur := search.Costs{Feasible: false, BudgetUtil: 1.0, Violations: 1}
	blockedCalls := 0
	evs := []evaluated{{pt, search.Costs{Feasible: false, BudgetUtil: 2.0, Violations: 3}, pred}}
	e.update(o, cur, evs, func(ev evaluated) {
		if ev.costs.Violations > cur.Violations {
			blockedCalls++
		}
	})
	if blockedCalls != 1 {
		t.Fatalf("block callback calls = %d, want 1", blockedCalls)
	}
}

func TestOptsDefaults(t *testing.T) {
	e := New(nil)
	o := e.opts()
	if o.TopK != 5 || o.ThresholdScale != 0.5 || o.MaxBottlenecksPerSub != 2 || o.Patience != 5 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if AggregateMin.String() != "min" || AggregateMax.String() != "max" || AggregateMean.String() != "mean" {
		t.Fatal("aggregation names wrong")
	}
}
