package dse

import (
	"fmt"
	"math/rand"
)

// Example runs the engine on the synthetic two-factor domain from the test
// suite: latency = max(compute/PEs, dma/BW) under an area cap. The engine
// alternates compute and bandwidth mitigations until the bandwidth-limited
// optimum is reached.
func Example() {
	model := newToyModel()
	explorer := New(model)
	problem := newToyProblem(model, 60)

	trace := explorer.Run(problem, rand.New(rand.NewSource(1)))

	d := problem.Space.MustDecode(trace.Best)
	fmt.Printf("best objective: %.2f\n", trace.BestObjective())
	fmt.Printf("PEs=%d BW=%d MBps\n", d.PEs, d.OffchipMBps)
	fmt.Println("explored fraction of budget:", trace.Evaluations < 60)
	// Output:
	// best objective: 3906.25
	// PEs=512 BW=51200 MBps
	// explored fraction of budget: true
}
