package exp

import (
	"context"
	"io"
	"testing"

	"xdse/internal/workload"
)

// TestExplainableFindsFeasibleForWholeSuite is the repository's headline
// regression: Explainable-DSE (fixed dataflow) must find a feasible design
// for every one of the 11 benchmark models within the reduced static
// budget — the property behind the paper's Table 2 row.
func TestExplainableFindsFeasibleForWholeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide exploration")
	}
	cfg := Default()
	cfg.Out = io.Discard
	tech := technique("ExplainableDSE-FixDF")
	for _, m := range workload.Suite() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			r := RunOne(context.Background(), cfg, tech, m, cfg.Budget)
			if r.Trace.Best == nil {
				t.Fatalf("no feasible design within %d iterations", cfg.Budget)
			}
			raw := r.Trace.BestCosts
			if raw.Objective > m.MaxLatencyMs {
				t.Fatalf("best latency %.2f > ceiling %.2f", raw.Objective, m.MaxLatencyMs)
			}
			t.Logf("best %.2f ms in %d designs (%.0f%% feasible acquisitions)",
				r.Trace.BestObjective(), r.Evaluations, r.Trace.FeasibleFraction()*100)
		})
	}
}

// TestCodesignFeasibleForHardModels checks the codesign path on the models
// that historically stressed the pruned mapper and the power model.
func TestCodesignFeasibleForHardModels(t *testing.T) {
	if testing.Short() {
		t.Skip("codesign exploration")
	}
	cfg := Default()
	cfg.Out = io.Discard
	cfg.CodesignBudget = 100
	tech := technique("ExplainableDSE-Codesign")
	for _, name := range []string{"VGG16", "YOLOv5", "BERT"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := RunOne(context.Background(), cfg, tech, workload.ByName(name), cfg.CodesignBudget)
			if r.Trace.Best == nil {
				t.Fatalf("no feasible codesign within %d iterations", cfg.CodesignBudget)
			}
			t.Logf("best %.2f ms in %d designs", r.Trace.BestObjective(), r.Evaluations)
		})
	}
}

// technique is shared with the bench harness semantics: resolve by name.
func technique(name string) Technique {
	for _, t := range AllTechniques() {
		if t.Name == name {
			return t
		}
	}
	panic("unknown technique " + name)
}
