package exp

import (
	"context"
	"fmt"
	"math/rand"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/workload"
)

// EdgeRef holds the published reference numbers of a physical edge
// accelerator used in the §E case study (Fig. 14 / Table 4). The paper
// compares against Google's Coral Edge TPU (results scaled to the study's
// 16-bit precision, 1.4 W assumed power per its datasheet note) and the
// Eyeriss chip (65 nm, 12.25 mm^2, 278 mW). Die area for the Edge TPU is
// not published; a common estimate is embedded and flagged in the report.
type EdgeRef struct {
	Name    string
	AreaMM2 float64
	PowerW  float64
	// FPS maps model name -> published throughput (16-bit scaled).
	FPS map[string]float64
}

// EdgeTPURef returns the Coral Edge TPU reference numbers.
func EdgeTPURef() EdgeRef {
	return EdgeRef{
		Name:    "EdgeTPU",
		AreaMM2: 30, // estimated die area (not published)
		PowerW:  1.4,
		FPS: map[string]float64{
			"MobileNetV2":    200,
			"EfficientNetB0": 110,
			"ResNet50":       25,
			"VGG16":          10,
		},
	}
}

// EyerissRef returns the Eyeriss chip reference numbers.
func EyerissRef() EdgeRef {
	return EdgeRef{
		Name:    "Eyeriss",
		AreaMM2: 12.25,
		PowerW:  0.278,
		FPS: map[string]float64{
			"VGG16": 0.7,
		},
	}
}

// Fig14Row compares one model's DSE codesign against the references.
type Fig14Row struct {
	Model      string
	DSEFPS     float64
	DSEAreaMM2 float64
	DSEFPSJ    float64 // inferences per Joule
	Refs       map[string]EdgeRefPoint
}

// EdgeRefPoint is one reference accelerator's derived metrics for a model.
type EdgeRefPoint struct {
	FPS, FPSPerMM2, FPSPerJ float64
}

// RunFig14 runs Explainable-DSE codesign for the case-study CV models and
// derives throughput, area efficiency, and energy efficiency.
func RunFig14(ctx context.Context, cfg Config) []Fig14Row {
	models := []*workload.Model{
		workload.MobileNetV2(), workload.EfficientNetB0(),
		workload.ResNet50(), workload.VGG16(),
	}
	refs := []EdgeRef{EdgeTPURef(), EyerissRef()}

	var rows []Fig14Row
	for _, m := range models {
		space := arch.EdgeSpace()
		cons := eval.EdgeConstraints()
		ev := eval.New(eval.Config{
			Space: space, Models: []*workload.Model{m}, Constraints: cons,
			Mode: eval.PrunedMappings, MapTrials: cfg.MapTrials, Seed: cfg.Seed,
		})
		ex := dse.New(accelmodel.New(space, cons))
		tr := ex.Run(ev.ProblemCtx(ctx, cfg.CodesignBudget), rand.New(rand.NewSource(cfg.Seed)))

		row := Fig14Row{Model: m.Name, Refs: map[string]EdgeRefPoint{}}
		if tr.Best != nil {
			r := ev.Evaluate(tr.Best)
			row.DSEFPS = 1000 / r.LatencyMs
			row.DSEAreaMM2 = r.AreaMM2
			if e := r.Models[0].EnergyMJ; e > 0 {
				row.DSEFPSJ = 1000 / e // inferences per Joule
			}
		}
		for _, ref := range refs {
			fps, ok := ref.FPS[m.Name]
			if !ok {
				continue
			}
			row.Refs[ref.Name] = EdgeRefPoint{
				FPS:       fps,
				FPSPerMM2: fps / ref.AreaMM2,
				FPSPerJ:   fps / ref.PowerW,
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// ReportFig14 renders the case-study comparison.
func ReportFig14(cfg Config, rows []Fig14Row) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Fig14: DSE codesigns vs Edge TPU / Eyeriss (references; EdgeTPU area estimated) ==\n")
	tb := newTable("Model", "DSE FPS", "DSE FPS/mm2", "DSE FPS/J",
		"EdgeTPU FPS", "EdgeTPU FPS/mm2", "EdgeTPU FPS/J",
		"Eyeriss FPS", "Eyeriss FPS/mm2", "Eyeriss FPS/J")
	f := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, r := range rows {
		tpu := r.Refs["EdgeTPU"]
		eye := r.Refs["Eyeriss"]
		area := 0.0
		if r.DSEAreaMM2 > 0 {
			area = r.DSEFPS / r.DSEAreaMM2
		}
		tb.add(r.Model, f(r.DSEFPS), f(area), f(r.DSEFPSJ),
			f(tpu.FPS), f(tpu.FPSPerMM2), f(tpu.FPSPerJ),
			f(eye.FPS), f(eye.FPSPerMM2), f(eye.FPSPerJ))
	}
	tb.write(w)
}
