package exp

import (
	"context"
	"fmt"
	"math/rand"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/opt"
	"xdse/internal/search"
	"xdse/internal/workload"
)

// Fig4Space builds the toy two-parameter space of Fig. 4: only the PE count
// and the shared-memory (L2) size vary; every other parameter is pinned to
// a sensible mid-range value so the walk is about compute-vs-memory
// balancing, as in the paper's illustration.
func Fig4Space() *arch.Space {
	s := arch.EdgeSpace()
	pin := func(i, value int) {
		s.Params[i].Values = []int{value}
	}
	pin(arch.PL1, 256)
	pin(arch.PBW, 8192)
	pin(arch.PNoCWidth, 64)
	for op := 0; op < arch.NumOperands; op++ {
		pin(arch.PPhys0+op, 16)  // PEs/4 physical unicast links
		pin(arch.PVirt0+op, 512) // ample time-sharing
	}
	return s
}

// Fig4Run is one technique's acquisition sequence over the toy space.
type Fig4Run struct {
	Technique string
	Trace     *search.Trace
}

// RunFig4 explores the toy space for the single ResNet CONV5_2b layer with
// HyperMapper 2.0 and Explainable-DSE.
func RunFig4(ctx context.Context, cfg Config) []Fig4Run {
	model := workload.ResNetConv52b()
	budget := 30
	var out []Fig4Run

	runWith := func(name string, mk func(space *arch.Space, cons eval.Constraints) search.Optimizer) {
		space := Fig4Space()
		cons := eval.EdgeConstraints()
		ev := eval.New(eval.Config{
			Space:       space,
			Models:      []*workload.Model{model},
			Constraints: cons,
			Mode:        eval.FixedDataflow,
			Seed:        cfg.Seed,
		})
		tr := mk(space, cons).Run(ev.ProblemCtx(ctx, budget), rand.New(rand.NewSource(cfg.Seed)))
		out = append(out, Fig4Run{Technique: name, Trace: tr})
	}

	runWith("HyperMapper2.0", func(*arch.Space, eval.Constraints) search.Optimizer {
		return opt.HyperMapper{Warmup: 8, Pool: 200}
	})
	runWith("ExplainableDSE", func(space *arch.Space, cons eval.Constraints) search.Optimizer {
		return dse.New(accelmodel.New(space, cons))
	})
	return out
}

// ReportFig4 renders each technique's acquisition walk over (PEs, L2).
func ReportFig4(cfg Config, runs []Fig4Run) {
	w := cfg.out()
	space := Fig4Space()
	fmt.Fprintf(w, "\n== Fig4: toy DSE of #PEs x L2 size for ResNet CONV5_2b ==\n")
	for _, run := range runs {
		fmt.Fprintf(w, "\n-- %s --\n", run.Technique)
		tb := newTable("Iter", "PEs", "L2(KB)", "Latency(ms)", "BestSoFar(ms)")
		for _, s := range run.Trace.Steps {
			d := space.MustDecode(s.Point)
			lat := "-"
			if s.Costs.Feasible {
				lat = fmt.Sprintf("%.3f", s.Costs.Objective)
			}
			best := "-"
			if s.BestSoFar < 1e17 {
				best = fmt.Sprintf("%.3f", s.BestSoFar)
			}
			tb.add(fmt.Sprintf("%d", s.Iter), fmt.Sprintf("%d", d.PEs),
				fmt.Sprintf("%d", d.L2KB), lat, best)
		}
		tb.write(w)
	}
}
