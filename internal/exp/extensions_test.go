package exp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEnergyObjectiveExperiment(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Budget = 80
	runs := RunEnergyObjective(context.Background(), cfg)
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if !r.Feasible {
			t.Fatalf("%v: no feasible design", r.Objective)
		}
	}
	// Minimizing energy must not produce MORE energy than minimizing
	// latency did (the whole point of swapping the bottleneck model).
	if runs[1].EnergyMJ > runs[0].EnergyMJ*1.05 {
		t.Fatalf("min-energy design uses more energy (%v mJ) than min-latency (%v mJ)",
			runs[1].EnergyMJ, runs[0].EnergyMJ)
	}
	ReportEnergyObjective(cfg, runs)
	if !strings.Contains(buf.String(), "min-energy") {
		t.Fatal("report incomplete")
	}
}

func TestMultiWorkloadExperiment(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Budget = 80
	runs := RunMultiWorkload(context.Background(), cfg)
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].Label != "shared accelerator" || len(runs[0].Models) != 2 {
		t.Fatalf("shared run wrong: %+v", runs[0])
	}
	if !runs[0].Feasible {
		t.Fatal("shared accelerator exploration found nothing feasible")
	}
	// The shared design serves both workloads; its summed latency cannot
	// beat the sum of the dedicated optima (sanity of the aggregation).
	dedicatedSum := runs[1].LatencyMs + runs[2].LatencyMs
	if runs[1].Feasible && runs[2].Feasible && runs[0].LatencyMs < dedicatedSum*0.8 {
		t.Fatalf("shared %.2fms implausibly beats dedicated sum %.2fms", runs[0].LatencyMs, dedicatedSum)
	}
	ReportMultiWorkload(cfg, runs)
	if !strings.Contains(buf.String(), "shared accelerator") {
		t.Fatal("report incomplete")
	}
}

func TestJointVsTwoStageExperiment(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.CodesignBudget = 12
	cfg.MapTrials = 100
	runs := RunJointVsTwoStage(context.Background(), cfg)
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	// The two-stage organization spends far more mapping evaluations per
	// hardware trial — the §G cost asymmetry.
	if runs[1].MapEvalTotal <= runs[0].MapEvalTotal*10 {
		t.Fatalf("two-stage mapping evals %d not >> joint %d", runs[1].MapEvalTotal, runs[0].MapEvalTotal)
	}
	ReportJointVsTwoStage(cfg, runs)
	if !strings.Contains(buf.String(), "two-stage") {
		t.Fatal("report incomplete")
	}
}

func TestFig11ReportRenders(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Budget = 30
	cfg.CodesignBudget = 10
	cfg.MapTrials = 100
	c := RunFig11(context.Background(), cfg)
	ReportFig11(cfg, c)
	out := buf.String()
	if !strings.Contains(out, "EfficientNetB0") || !strings.Contains(out, "Transformer") {
		t.Fatalf("fig11 report incomplete:\n%s", out)
	}
	if !strings.Contains(out, "@1") {
		t.Fatal("fig11 checkpoints missing")
	}
}

func TestSummarizeExcludesExplainableFromBaselines(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	techs := []Technique{
		FixDFTechniques()[1], // random
		FixDFTechniques()[7], // explainable fixdf
	}
	c := RunCampaign(context.Background(), cfg, techs, cfg.Models, 0)
	s := Summarize(cfg, c, "ExplainableDSE-FixDF")
	// With only random search as a baseline, the iteration ratio must be
	// (random evals / explainable evals), and explainable converges in
	// far fewer evaluations.
	if s.IterRatio <= 1 {
		t.Fatalf("iteration ratio = %v, want > 1", s.IterRatio)
	}
}

func TestSummarizeVsFiltersBaselines(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	techs := []Technique{
		FixDFTechniques()[1],    // RandomSearch-FixDF
		CodesignTechniques()[0], // RandomSearch-Codesign
		FixDFTechniques()[7],    // ExplainableDSE-FixDF
	}
	c := RunCampaign(context.Background(), cfg, techs, cfg.Models, 0)
	// A filter selecting only codesign baselines must ignore the FixDF run.
	s := SummarizeVs(cfg, c, "ExplainableDSE-FixDF", func(tech string) bool {
		return strings.HasSuffix(tech, "-Codesign")
	})
	all := Summarize(cfg, c, "ExplainableDSE-FixDF")
	if s.IterRatio == all.IterRatio && s.TimeRatio == all.TimeRatio && s.LatencyRatioVsBest == all.LatencyRatioVsBest {
		t.Fatal("filtered summary identical to the unfiltered one")
	}
}

func TestRunOneWritesTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Budget = 10
	cfg.CSVDir = t.TempDir()
	r := RunOne(context.Background(), cfg, FixDFTechniques()[1], cfg.Models[0], cfg.Budget)
	if r.Evaluations == 0 {
		t.Fatal("no evaluations")
	}
	data, err := os.ReadFile(filepath.Join(cfg.CSVDir, "RandomSearch-FixDF_ResNet18.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "iter,objective") {
		t.Fatalf("csv header wrong: %.40s", data)
	}
	lines := strings.Count(string(data), "\n")
	if lines != r.Evaluations+1 {
		t.Fatalf("csv rows = %d, want %d", lines, r.Evaluations+1)
	}
}
