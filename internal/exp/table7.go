package exp

import (
	"fmt"
	"math"
	"math/rand"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// Table7Row is the mapping-space size analysis of one representative layer
// (Table 7 of the paper). All counts are log10 orders of magnitude.
type Table7Row struct {
	Model, Layer string
	// A: tile sizings with arbitrary integer bounds.
	A float64
	// B: tile sizings restricted to valid factorizations.
	B float64
	// C: valid tilings w.r.t. a reference hardware configuration
	// (Monte-Carlo estimate).
	C float64
	// D: loop orderings at a memory level.
	D float64
	// E: orderings with unique/maximum data reuse.
	E float64
	// F, G, H: composed space sizes (full, factorization-constrained,
	// factorization-constrained + reuse-aware).
	F, G, H float64
}

// representativeLayer picks the layer with the largest factorization space.
func representativeLayer(m *workload.Model) workload.Layer {
	best := m.Layers[0]
	bestB := -1.0
	for _, l := range m.Layers {
		if b := layerSplitsLog10(l); b > bestB {
			bestB = b
			best = l
		}
	}
	return best
}

func layerSplitsLog10(l workload.Layer) float64 {
	dims := mapping.Dims(l)
	b := 0.0
	for _, d := range dims {
		b += math.Log10(mapping.NumSplits4(d))
	}
	return b
}

// RunTable7 computes the mapping-space analysis for every suite model.
func RunTable7(cfg Config) []Table7Row {
	space := arch.EdgeSpace()
	ref := referencePoint(space)
	design := space.MustDecode(ref)
	rng := rand.New(rand.NewSource(cfg.Seed))

	var rows []Table7Row
	for _, m := range cfg.Models {
		l := representativeLayer(m)
		dims := mapping.Dims(l)

		var row Table7Row
		row.Model, row.Layer = m.Name, l.Name

		// A: three arbitrary integer cut points per loop (any value in
		// [1, L] at each of the inner levels).
		for _, d := range dims {
			row.A += 3 * math.Log10(float64(d))
		}
		row.B = layerSplitsLog10(l)

		// C: Monte-Carlo fraction of valid-factor tilings that the
		// reference hardware accepts (buffers, PEs, NoC time-sharing).
		const samples = 4000
		valid := 0
		for i := 0; i < samples; i++ {
			mm := mapping.Random(dims, rng)
			if perf.Evaluate(design, l, mm).Valid {
				valid++
			}
		}
		frac := float64(valid) / samples
		if frac == 0 {
			frac = 0.5 / samples // resolution floor
		}
		row.C = row.B + math.Log10(frac)

		// D, E: orderings per memory level; convolutions have 7 loops
		// (7! orderings, 15 unique-reuse), GEMMs 3 (3!, 3).
		if l.Kind == workload.Gemm {
			row.D = math.Log10(6)
			row.E = math.Log10(3)
		} else {
			row.D = math.Log10(5040)
			row.E = math.Log10(15)
		}
		row.F = row.A + 2*row.D
		row.G = row.B + 2*row.D
		row.H = row.B + row.E
		rows = append(rows, row)
	}
	return rows
}

// ReportTable7 renders the analysis as orders of magnitude.
func ReportTable7(cfg Config, rows []Table7Row) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Table7: mapping-space size analysis (orders of magnitude, O(10^x)) ==\n")
	tb := newTable("Model", "Layer", "A", "B", "C", "D", "E", "F=A*D^2", "G=B*D^2", "H=B*E")
	o := func(v float64) string { return fmt.Sprintf("10^%.0f", v) }
	for _, r := range rows {
		tb.add(r.Model, r.Layer, o(r.A), o(r.B), o(r.C), o(r.D), o(r.E), o(r.F), o(r.G), o(r.H))
	}
	tb.write(w)
}

// referencePoint returns the mid-range point of the space, used where an
// experiment needs a fixed plausible hardware configuration.
func referencePoint(s *arch.Space) arch.Point {
	pt := s.Initial()
	for i, p := range s.Params {
		pt[i] = len(p.Values) / 2
	}
	// Ample virtual unicast so the reference accepts spatial mappings.
	for op := 0; op < arch.NumOperands; op++ {
		pt[arch.PVirt0+op] = len(s.Params[arch.PVirt0+op].Values) - 1
	}
	return pt
}
