package exp

import (
	"context"
	"fmt"
	"math/rand"

	"xdse/internal/accelmodel"
	"xdse/internal/arch"
	"xdse/internal/dse"
	"xdse/internal/eval"
	"xdse/internal/opt"
	"xdse/internal/search"
	"xdse/internal/workload"
)

// This file holds the extension experiments beyond the paper's figures:
// the energy objective (the paper presents latency as its running example
// and notes the API generalizes), multi-workload exploration (§4.4's
// multiple-workload aggregation), and the §G joint-vs-two-stage codesign
// comparison.

// EnergyRun is one objective's exploration outcome.
type EnergyRun struct {
	Objective   eval.Objective
	LatencyMs   float64
	EnergyMJ    float64
	Feasible    bool
	Evaluations int
	Design      arch.Design
}

// RunEnergyObjective explores MobileNetV2 twice with Explainable-DSE: once
// minimizing latency and once minimizing energy, demonstrating that the
// same engine drives a different bottleneck model (the additive energy
// tree) toward a different corner of the space.
func RunEnergyObjective(ctx context.Context, cfg Config) []EnergyRun {
	var out []EnergyRun
	for _, obj := range []eval.Objective{eval.MinLatency, eval.MinEnergy} {
		space := arch.EdgeSpace()
		cons := eval.EdgeConstraints()
		ev := eval.New(eval.Config{
			Space: space, Models: []*workload.Model{workload.MobileNetV2()},
			Constraints: cons, Mode: eval.FixedDataflow, Objective: obj, Seed: cfg.Seed,
		})
		model := accelmodel.New(space, cons)
		model.Objective = obj
		ex := dse.New(model)
		tr := ex.Run(ev.ProblemCtx(ctx, cfg.Budget), rand.New(rand.NewSource(cfg.Seed)))

		run := EnergyRun{Objective: obj, Evaluations: ev.Evaluations()}
		if tr.Best != nil {
			r := ev.Evaluate(tr.Best)
			run.LatencyMs = r.LatencyMs
			run.EnergyMJ = r.EnergyMJ
			run.Feasible = true
			run.Design = r.Design
		}
		out = append(out, run)
	}
	return out
}

// ReportEnergyObjective renders the latency/energy trade-off.
func ReportEnergyObjective(cfg Config, runs []EnergyRun) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Extension: objective generality (MobileNetV2, Explainable-DSE) ==\n")
	tb := newTable("Objective", "Latency(ms)", "Energy(mJ)", "Designs", "Chosen design")
	for _, r := range runs {
		if !r.Feasible {
			tb.add(r.Objective.String(), "-", "-", fmt.Sprintf("%d", r.Evaluations), "-")
			continue
		}
		tb.add(r.Objective.String(),
			fmt.Sprintf("%.2f", r.LatencyMs),
			fmt.Sprintf("%.1f", r.EnergyMJ),
			fmt.Sprintf("%d", r.Evaluations),
			r.Design.String())
	}
	tb.write(w)
}

// MultiWorkloadRun compares a single codesigned accelerator serving several
// DNNs against per-model designs.
type MultiWorkloadRun struct {
	Label       string
	Models      []string
	LatencyMs   float64 // summed across workloads
	AreaMM2     float64
	Feasible    bool
	Evaluations int
}

// RunMultiWorkload explores one accelerator for {ResNet18, MobileNetV2}
// (the §4.4 multi-workload aggregation path) and, for reference, dedicated
// per-model designs.
func RunMultiWorkload(ctx context.Context, cfg Config) []MultiWorkloadRun {
	models := []*workload.Model{workload.ResNet18(), workload.MobileNetV2()}

	explore := func(label string, ms []*workload.Model) MultiWorkloadRun {
		space := arch.EdgeSpace()
		cons := eval.EdgeConstraints()
		ev := eval.New(eval.Config{
			Space: space, Models: ms, Constraints: cons,
			Mode: eval.FixedDataflow, Seed: cfg.Seed,
		})
		ex := dse.New(accelmodel.New(space, cons))
		tr := ex.Run(ev.ProblemCtx(ctx, cfg.Budget), rand.New(rand.NewSource(cfg.Seed)))
		run := MultiWorkloadRun{Label: label, Evaluations: ev.Evaluations()}
		for _, m := range ms {
			run.Models = append(run.Models, m.Name)
		}
		if tr.Best != nil {
			r := ev.Evaluate(tr.Best)
			run.LatencyMs = r.LatencyMs
			run.AreaMM2 = r.AreaMM2
			run.Feasible = true
		}
		return run
	}

	out := []MultiWorkloadRun{explore("shared accelerator", models)}
	for _, m := range models {
		out = append(out, explore("dedicated: "+m.Name, []*workload.Model{m}))
	}
	return out
}

// ReportMultiWorkload renders the shared-vs-dedicated comparison.
func ReportMultiWorkload(cfg Config, runs []MultiWorkloadRun) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Extension: multi-workload exploration (one design for several DNNs, §4.4) ==\n")
	tb := newTable("Exploration", "Workloads", "SumLatency(ms)", "Area(mm2)", "Designs")
	for _, r := range runs {
		lat := "-"
		area := "-"
		if r.Feasible {
			lat = fmt.Sprintf("%.2f", r.LatencyMs)
			area = fmt.Sprintf("%.1f", r.AreaMM2)
		}
		tb.add(r.Label, fmt.Sprintf("%v", r.Models), lat, area, fmt.Sprintf("%d", r.Evaluations))
	}
	tb.write(w)
}

// JointRun is one codesign-organization's outcome (§G).
type JointRun struct {
	Label        string
	LatencyMs    float64
	Feasible     bool
	Evaluations  int
	MapEvalTotal int
}

// RunJointVsTwoStage compares the §G codesign organizations with random
// search on EfficientNetB0: joint acquisition (every hardware trial pairs
// with a single random mapping per layer — no inner optimization) versus
// the two-stage partitioned exploration (an inner mapping optimization per
// hardware trial).
func RunJointVsTwoStage(ctx context.Context, cfg Config) []JointRun {
	model := workload.EfficientNetB0()
	explore := func(label string, mapTrials int) JointRun {
		space := arch.EdgeSpace()
		ev := eval.New(eval.Config{
			Space: space, Models: []*workload.Model{model},
			Constraints: eval.EdgeConstraints(), Mode: eval.RandomMappings,
			MapTrials: mapTrials, Seed: cfg.Seed,
		})
		tr := opt.Random{}.Run(ev.ProblemCtx(ctx, cfg.CodesignBudget), rand.New(rand.NewSource(cfg.Seed)))
		run := JointRun{Label: label, Evaluations: ev.Evaluations()}
		if tr.Best != nil {
			r := ev.Evaluate(tr.Best)
			run.LatencyMs = r.LatencyMs
			run.Feasible = true
		}
		// Total mapping evaluations across all visited designs.
		for _, s := range tr.Steps {
			if r, ok := search.ResolveRaw(s.Costs.Raw).(*eval.Result); ok {
				run.MapEvalTotal += r.MapEvaluations
			}
		}
		return run
	}
	return []JointRun{
		explore("joint (1 mapping/trial)", 1),
		explore(fmt.Sprintf("two-stage (%d mapping trials)", cfg.MapTrials), cfg.MapTrials),
	}
}

// ReportJointVsTwoStage renders the §G comparison.
func ReportJointVsTwoStage(cfg Config, runs []JointRun) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Extension (§G): joint vs two-stage codesign organization (random search, EfficientNetB0) ==\n")
	tb := newTable("Organization", "BestLatency(ms)", "HW designs", "Mapping evals")
	for _, r := range runs {
		lat := "-"
		if r.Feasible {
			lat = fmt.Sprintf("%.2f", r.LatencyMs)
		}
		tb.add(r.Label, lat, fmt.Sprintf("%d", r.Evaluations), fmt.Sprintf("%d", r.MapEvalTotal))
	}
	tb.write(w)
}
