package exp

import (
	"context"
	"testing"
	"time"

	"xdse/internal/eval"
	"xdse/internal/workload"
)

// TestTransientFaultDoesNotChangeIncumbent is the satellite regression for
// the memo-poisoning bug: before the retry layer, an injected transient
// evaluation error at ordinal k was permanently memoized as infeasible (and
// replayed from checkpoints), silently changing the exploration's final
// incumbent. With retries enabled the fault heals and the run — trace,
// incumbent, and budget accounting — is bit-identical to a fault-free one.
func TestTransientFaultDoesNotChangeIncumbent(t *testing.T) {
	model := workload.ResNet18()
	// The engine and one batch-streaming baseline, both fixed-dataflow so
	// the ordinal sequence is cheap and deterministic under Workers=1.
	techs := []Technique{resumeTechniques()[0], resumeTechniques()[3]}
	for _, tech := range techs {
		tech := tech
		t.Run(tech.Name, func(t *testing.T) {
			t.Parallel()
			cfg := resumeConfig()
			ref := RunOne(context.Background(), cfg, tech, model, 0)
			if ref.Err != "" {
				t.Fatalf("reference run failed: %v", ref.Err)
			}
			refFP := ref.Trace.Fingerprint()

			for _, k := range []int{0, 2, 4} {
				// The bug: without retries, a transient error at ordinal k
				// poisons the memo and the trace visibly diverges.
				bcfg := cfg
				bcfg.Faults = &eval.FaultPolicy{FailFirstN: map[int]int{k: 1}}
				buggy := RunOne(context.Background(), bcfg, tech, model, 0)
				if got := buggy.Trace.Fingerprint(); got == refFP {
					t.Fatalf("k=%d: fault with retries disabled did not perturb the trace — injection dead?", k)
				}

				// The fix: with retries, the same fault heals invisibly.
				hcfg := bcfg
				hcfg.Retry = eval.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}
				healed := RunOne(context.Background(), hcfg, tech, model, 0)
				if healed.Err != "" {
					t.Fatalf("k=%d: healed run failed: %v", k, healed.Err)
				}
				if got := healed.Trace.Fingerprint(); got != refFP {
					t.Errorf("k=%d: healed trace diverges from fault-free reference:\n%s",
						k, healed.Trace.Diff(ref.Trace))
				}
				if healed.Stats.Retries == 0 {
					t.Errorf("k=%d: healed run performed no retries — fault not exercised", k)
				}
				if healed.Evaluations != ref.Evaluations {
					t.Errorf("k=%d: healed Evaluations = %d, reference %d",
						k, healed.Evaluations, ref.Evaluations)
				}
			}
		})
	}
}
