package exp

import (
	"fmt"
	"math/rand"
	"time"

	"xdse/internal/arch"
	"xdse/internal/mapping"
	"xdse/internal/perf"
	"xdse/internal/workload"
)

// Fig15Result is one black-box mapper's outcome over the ResNet18 layers
// (Fig. 15 / §F: selecting the mapping-optimization technique).
type Fig15Result struct {
	Technique string
	// LayerCycles is the best latency (cycles) per unique layer; +Inf
	// when the mapper failed to find a valid mapping in budget.
	LayerCycles []float64
	// TotalMs is the summed whole-network latency contribution of the
	// mapped layers (multiplicity-weighted), counting failures as 0.
	TotalMs float64
	// Failures counts layers with no valid mapping found.
	Failures int
	// Elapsed is the total mapping-search wall-clock time.
	Elapsed time.Duration
}

// mapperFn is a black-box mapping search.
type mapperFn func(l workload.Layer, trials int, rng *rand.Rand, cost mapping.Cost) mapping.Result

// RunFig15 compares random search, simulated annealing, the genetic
// algorithm, and Bayesian optimization on mapping the ResNet18 layers onto
// a mid-range reference design.
func RunFig15(cfg Config) []Fig15Result {
	model := workload.ResNet18()
	space := arch.EdgeSpace()
	design := space.MustDecode(referencePoint(space))
	trials := cfg.MapTrials

	mappers := []struct {
		name string
		fn   mapperFn
	}{
		{"RandomSearch", mapping.RandomSearch},
		{"SimulatedAnnealing", mapping.AnnealSearch},
		{"GeneticAlgorithm", mapping.GeneticSearch},
		{"BayesianOptimization", mapping.BayesSearch},
	}

	var out []Fig15Result
	for _, mp := range mappers {
		res := Fig15Result{Technique: mp.name}
		start := time.Now()
		rng := rand.New(rand.NewSource(cfg.Seed))
		for _, l := range model.Layers {
			r := mp.fn(l, trials, rng, perf.CostFn(design, l))
			if r.Found {
				res.LayerCycles = append(res.LayerCycles, r.Cycles)
				res.TotalMs += r.Cycles * float64(l.Mult) / (float64(design.FreqMHz) * 1e3)
			} else {
				res.LayerCycles = append(res.LayerCycles, 0)
				res.Failures++
			}
		}
		res.Elapsed = time.Since(start)
		out = append(out, res)
	}
	return out
}

// ReportFig15 renders per-layer best mapping latency and totals.
func ReportFig15(cfg Config, results []Fig15Result) {
	w := cfg.out()
	fmt.Fprintf(w, "\n== Fig15: black-box mapping optimizers on ResNet18 layers (reference design) ==\n")
	model := workload.ResNet18()
	header := []string{"Technique"}
	for _, l := range model.Layers {
		header = append(header, l.Name)
	}
	header = append(header, "Total(ms)", "Fail", "Time(s)")
	tb := newTable(header...)
	for _, r := range results {
		row := []string{r.Technique}
		for _, cyc := range r.LayerCycles {
			if cyc == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.0fk", cyc/1000))
			}
		}
		row = append(row,
			fmt.Sprintf("%.2f", r.TotalMs),
			fmt.Sprintf("%d", r.Failures),
			fmt.Sprintf("%.1f", r.Elapsed.Seconds()))
		tb.add(row...)
	}
	tb.write(w)
}
