package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"xdse/internal/eval"
	"xdse/internal/workload"
)

// tinyConfig is a seconds-scale configuration for test runs.
func tinyConfig(buf *bytes.Buffer) Config {
	cfg := Default()
	cfg.Budget = 40
	cfg.CodesignBudget = 15
	cfg.DynamicBudget = 25
	cfg.MapTrials = 120
	cfg.Models = []*workload.Model{workload.ResNet18()}
	cfg.Out = buf
	return cfg
}

func TestConfigDefaultsAndFull(t *testing.T) {
	d := Default()
	if d.Budget != 300 || d.DynamicBudget != 100 || len(d.Models) != 11 {
		t.Fatalf("defaults wrong: %+v", d)
	}
	f := Full()
	if f.Budget != 2500 || f.MapTrials != 10000 {
		t.Fatalf("full config wrong: %+v", f)
	}
	t.Setenv("XDSE_FULL", "1")
	if FromEnv().Budget != 2500 {
		t.Fatal("XDSE_FULL ignored")
	}
	t.Setenv("XDSE_FULL", "")
	if FromEnv().Budget != 300 {
		t.Fatal("default env config wrong")
	}
}

func TestTechniqueRosters(t *testing.T) {
	fix := FixDFTechniques()
	if len(fix) != 8 {
		t.Fatalf("fixed-DF roster = %d techniques", len(fix))
	}
	for _, tech := range fix {
		if tech.Mode != eval.FixedDataflow {
			t.Errorf("%s: mode %v", tech.Name, tech.Mode)
		}
	}
	co := CodesignTechniques()
	if len(co) != 3 {
		t.Fatalf("codesign roster = %d techniques", len(co))
	}
	if co[2].Name != "ExplainableDSE-Codesign" || co[2].Mode != eval.PrunedMappings {
		t.Fatalf("codesign explainable entry wrong: %+v", co[2])
	}
	if len(AllTechniques()) != 11 {
		t.Fatal("combined roster size wrong")
	}
}

func TestRunOneAndCampaign(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	techs := []Technique{FixDFTechniques()[1], FixDFTechniques()[7]} // random + explainable
	c := RunCampaign(context.Background(), cfg, techs, cfg.Models, 0)
	if len(c.Runs) != 2 {
		t.Fatalf("campaign runs = %d", len(c.Runs))
	}
	r := c.Get("ExplainableDSE-FixDF", "ResNet18")
	if r == nil {
		t.Fatal("campaign lookup failed")
	}
	if r.Evaluations == 0 || r.Evaluations > cfg.Budget {
		t.Fatalf("evaluations = %d", r.Evaluations)
	}
	if c.Get("nope", "ResNet18") != nil {
		t.Fatal("lookup invented a run")
	}

	ReportFig9(cfg, c, "test")
	ReportFig10(cfg, c)
	ReportFig12(cfg, c)
	ReportTable3(cfg, c)
	out := buf.String()
	for _, want := range []string{"RandomSearch-FixDF", "ExplainableDSE-FixDF", "ResNet18", "Fig12", "Table3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}

	s := Summarize(cfg, c, "ExplainableDSE-FixDF")
	if s.IterRatio <= 0 || s.LatencyRatioVsBest <= 0 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestParallelCampaignMatchesSerial pins the campaign-level determinism
// contract: raising Workers (per-run batch pool) and Parallel (concurrent
// runs) must leave every run's trace bit-identical to the serial campaign
// and keep the roster order.
func TestParallelCampaignMatchesSerial(t *testing.T) {
	var bufA, bufB bytes.Buffer
	techs := []Technique{FixDFTechniques()[1], FixDFTechniques()[7]} // random + explainable

	serialCfg := tinyConfig(&bufA)
	serialCfg.Budget = 20
	serialCfg.Workers = 1
	serial := RunCampaign(context.Background(), serialCfg, techs, serialCfg.Models, 0)

	parCfg := tinyConfig(&bufB)
	parCfg.Budget = 20
	parCfg.Workers = 4
	parCfg.Parallel = 2
	par := RunCampaign(context.Background(), parCfg, techs, parCfg.Models, 0)

	if len(serial.Runs) != len(par.Runs) {
		t.Fatalf("campaign sizes differ: %d vs %d", len(serial.Runs), len(par.Runs))
	}
	for i := range serial.Runs {
		a, b := serial.Runs[i], par.Runs[i]
		if a.Technique != b.Technique || a.Model != b.Model {
			t.Fatalf("run %d order differs: %s/%s vs %s/%s",
				i, a.Technique, a.Model, b.Technique, b.Model)
		}
		if a.Trace.Evaluations != b.Trace.Evaluations || a.Trace.RepeatSteps != b.Trace.RepeatSteps {
			t.Fatalf("%s: accounting differs: %d/%d evaluations, %d/%d repeats", a.Technique,
				a.Trace.Evaluations, b.Trace.Evaluations, a.Trace.RepeatSteps, b.Trace.RepeatSteps)
		}
		if len(a.Trace.Steps) != len(b.Trace.Steps) {
			t.Fatalf("%s: %d vs %d steps", a.Technique, len(a.Trace.Steps), len(b.Trace.Steps))
		}
		for s := range a.Trace.Steps {
			sa, sb := a.Trace.Steps[s], b.Trace.Steps[s]
			if sa.Point.Key() != sb.Point.Key() || sa.Costs.Objective != sb.Costs.Objective {
				t.Fatalf("%s: step %d diverged: %v vs %v", a.Technique, s, sa.Point, sb.Point)
			}
		}
		if b.Batch.Points == 0 || b.Batch.Batches == 0 {
			t.Fatalf("%s: batch layer unused: %+v", b.Technique, b.Batch)
		}
		if b.Stats.Evaluations == 0 {
			t.Fatalf("%s: evaluator stats missing: %+v", b.Technique, b.Stats)
		}
	}

	ReportEvalStats(parCfg, par)
	out := bufB.String()
	for _, want := range []string{"Evaluation-layer stats", "CacheHits", "InflightDedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("eval-stats report missing %q", want)
		}
	}
}

func TestFig4(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	runs := RunFig4(context.Background(), cfg)
	if len(runs) != 2 {
		t.Fatalf("fig4 runs = %d", len(runs))
	}
	// The toy space varies only PEs and L2.
	space := Fig4Space()
	if space.Params[1].Options() != 1 || space.Params[0].Options() != 7 {
		t.Fatal("fig4 space pinning wrong")
	}
	ReportFig4(cfg, runs)
	if !strings.Contains(buf.String(), "CONV5_2b") {
		t.Fatal("fig4 report missing layer name")
	}
	// The explainable walk must find a feasible design on the toy space.
	if runs[1].Trace.Best == nil {
		t.Fatal("Explainable-DSE failed on the toy space")
	}
}

func TestTable7(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Models = workload.Suite()
	rows := RunTable7(cfg)
	if len(rows) != 11 {
		t.Fatalf("table7 rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.A > r.B && r.B >= r.C && r.F > r.G && r.G > r.H) {
			t.Errorf("%s: pruning ordering violated: A=%v B=%v C=%v F=%v G=%v H=%v",
				r.Model, r.A, r.B, r.C, r.F, r.G, r.H)
		}
	}
	ReportTable7(cfg, rows)
	if !strings.Contains(buf.String(), "10^") {
		t.Fatal("table7 report missing magnitudes")
	}
}

func TestFig15(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.MapTrials = 150
	res := RunFig15(cfg)
	if len(res) != 4 {
		t.Fatalf("fig15 techniques = %d", len(res))
	}
	for _, r := range res {
		if len(r.LayerCycles) != 9 {
			t.Fatalf("%s: layers = %d", r.Technique, len(r.LayerCycles))
		}
	}
	ReportFig15(cfg, res)
	if !strings.Contains(buf.String(), "RandomSearch") {
		t.Fatal("fig15 report incomplete")
	}
}

func TestFig14(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.CodesignBudget = 25
	rows := RunFig14(context.Background(), cfg)
	if len(rows) != 4 {
		t.Fatalf("fig14 rows = %d", len(rows))
	}
	for _, r := range rows {
		if _, ok := r.Refs["EdgeTPU"]; !ok {
			t.Fatalf("%s: EdgeTPU reference missing", r.Model)
		}
	}
	// Eyeriss only publishes VGG16 among our case-study models.
	ReportFig14(cfg, rows)
	if !strings.Contains(buf.String(), "EdgeTPU") {
		t.Fatal("fig14 report incomplete")
	}
}

func TestFig11Checkpoints(t *testing.T) {
	cps := fig11Checkpoints(120)
	if cps[0] != 1 || cps[len(cps)-1] != 120 {
		t.Fatalf("checkpoints = %v", cps)
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("checkpoints not increasing: %v", cps)
		}
	}
	if got := fig11Checkpoints(100); got[len(got)-1] != 100 {
		t.Fatalf("exact budget missing: %v", got)
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Budget = 60
	res := RunAblations(context.Background(), cfg)
	if len(res) != 7 {
		t.Fatalf("ablations = %d", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Variant] = true
	}
	for _, want := range []string{"paper-defaults", "aggregate-max", "no-budget-aware-update", "joint-acquisition"} {
		if !names[want] {
			t.Fatalf("ablation %q missing", want)
		}
	}
	ReportAblations(cfg, res)
	if !strings.Contains(buf.String(), "paper-defaults") {
		t.Fatal("ablation report incomplete")
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("A", "Blong")
	tb.add("x", "y")
	tb.add("longer", "z")
	tb.write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "------") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestShortModel(t *testing.T) {
	if shortModel("VisionTransformer") != "ViT" || shortModel("BERT") != "BERT" {
		t.Fatal("short names wrong")
	}
}

// TestFig4ExplainableWalkIsNearMonotone pins the paper's headline behavior
// on the toy space: Explainable-DSE reduces the objective at (almost) every
// early acquisition and lands the region's optimum.
func TestFig4ExplainableWalkIsNearMonotone(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	runs := RunFig4(context.Background(), cfg)
	ex := runs[1]
	if ex.Technique != "ExplainableDSE" {
		t.Fatalf("unexpected run order: %s", ex.Technique)
	}
	if ex.Trace.Best == nil {
		t.Fatal("no feasible design")
	}
	// The toy space optimum is ~1.18 ms (512 padded MACs at 256+ PEs with
	// the full 4 MB scratchpad); the walk must land within 10%.
	if best := ex.Trace.BestObjective(); best > 1.18*1.1 {
		t.Fatalf("best = %.3f ms, want ~1.18", best)
	}
	// Count strictly improving early acquisitions (the paper: reduction
	// at almost every attempt).
	improving := 0
	prev := ex.Trace.Steps[0].BestSoFar
	for _, s := range ex.Trace.Steps[1:8] {
		if s.BestSoFar < prev {
			improving++
		}
		prev = s.BestSoFar
	}
	if improving < 4 {
		t.Fatalf("only %d of the first 7 acquisitions improved", improving)
	}
}
